//===- examples/compile_and_link.cpp - The CompCertX pipeline --------------------===//
//
// Demonstrates the thread-safe CompCertX analogue end to end:
//
//   1. parse and typecheck two ClightX modules (a client and a library),
//   2. compile them *separately* (calls to the library stay symbolic),
//   3. link them (the library primitive becomes a direct call; genuinely
//      external primitives stay Prim instructions bound to a layer),
//   4. validate the translation against the reference interpreter,
//   5. run the merged-stack simulation of §5.5 and check the Fig. 12
//      composition invariant at every switch point.
//
//===----------------------------------------------------------------------===//

#include "cert/CertStore.h"
#include "compcertx/CodeGen.h"
#include "compcertx/Linker.h"
#include "compcertx/StackMerge.h"
#include "compcertx/Validate.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "obs/Metrics.h"

#include <cstdio>
#include <filesystem>

using namespace ccal;

int main() {
  std::printf("== CompCertX analogue: compile, link, validate ==\n\n");

  ClightModule Lib = parseModuleOrDie("lib", R"(
    int table[8];
    void put(int i, int v) { table[i % 8] = v; }
    int get(int i) { return table[i % 8]; }
  )");
  typeCheckOrDie(Lib);

  ClightModule App = parseModuleOrDie("app", R"(
    extern void put(int i, int v);
    extern int get(int i);
    extern int now();          // a genuine layer primitive

    int run(int n) {
      int i = 0;
      while (i < n) {
        put(i, i * i + now());
        i = i + 1;
      }
      int s = 0;
      i = 0;
      while (i < n) {
        s = s + get(i);
        i = i + 1;
      }
      return s;
    }
  )");
  typeCheckOrDie(App);

  // Separate compilation: the app's calls are symbolic.
  AsmProgram AppObj = compileModule(App);
  std::printf("[1] separately compiled app (unlinked):\n%s\n",
              AppObj.disassemble().c_str());

  // Linking resolves put/get into Calls and leaves now() as a Prim.
  AsmProgramPtr Linked = compileAndLink("app+lib", {&App, &Lib});
  std::printf("[2] linked program:\n%s\n", Linked->disassemble().c_str());

  // Translation validation: interpreter vs compiled code, traces included.
  auto MakePrims = []() -> PrimHandler {
    auto Clock = std::make_shared<std::int64_t>(100);
    return [Clock](const std::string &Name,
                   const std::vector<std::int64_t> &)
               -> std::optional<std::int64_t> {
      if (Name != "now")
        return std::nullopt;
      return (*Clock)++;
    };
  };
  std::vector<ValidationCase> Cases = {{"run", {0}}, {"run", {3}},
                                       {"run", {7}}, {"run", {12}}};
  // Source-level linking produces a fresh module; resolution (which calls
  // are primitives vs defined functions) must be recomputed for it.
  ClightModule LinkedSrc = linkModules("app+lib.src", {&App, &Lib});
  typeCheckOrDie(LinkedSrc);
  ValidationReport VR = validateTranslation(LinkedSrc, Cases, MakePrims);
  std::printf("[3] translation validation: %s (%llu cases)\n\n",
              VR.Ok ? "OK" : VR.Error.c_str(),
              static_cast<unsigned long long>(VR.CasesChecked));

  // §5.5: merged stacks — frames of two threads in one memory, with the
  // Fig. 12 composition checked at every yield.
  std::printf("[4] merged-stack simulation (Fig. 12 invariant):\n");
  MergedStackSim Sim(2);
  bool AllHeld = true;
  for (int Round = 0; Round != 3; ++Round) {
    for (unsigned T = 0; T != 2; ++T) {
      Sim.yieldTo(T);
      Sim.pushFrame(4);
      Sim.storeTop(0, Round * 10 + static_cast<int>(T));
      AllHeld &= Sim.invariantHolds();
    }
  }
  for (unsigned T = 0; T != 2; ++T) {
    Sim.yieldTo(T);
    while (!Sim.frames(T).empty()) {
      Sim.popFrame();
      AllHeld &= Sim.invariantHolds();
    }
  }
  std::printf("    m1 (*) m2 ~ m held at every switch point: %s\n",
              AllHeld ? "yes" : "NO");
  std::printf("    merged memory: %s\n\n", Sim.merged().toString().c_str());

  // Incremental re-verification through the certificate store: validate
  // the library and the linked program as separate cached checks, repeat
  // (both load from disk), then edit only the app — the library's
  // certificate still hits while the linked program re-validates.
  std::printf("[5] incremental re-verification (certificate store):\n");
  namespace fs = std::filesystem;
  fs::path CacheDir = fs::temp_directory_path() / "ccal_example_cert_store";
  std::error_code Ec;
  fs::remove_all(CacheDir, Ec);
  cert::setStoreDir(CacheDir.string());
  obs::setEnabled(true);
  obs::metricsReset();

  auto Stats = [] {
    return std::make_pair(obs::counterValue("cert.hits"),
                          obs::counterValue("cert.misses"));
  };
  auto Validate = [&](const ClightModule &Src) {
    ValidationOptions VO;
    VO.PrimsKey = "prims:clock@100"; // names the opaque handler factory
    return validateTranslation(Src, Cases, MakePrims, VO);
  };
  std::vector<ValidationCase> LibCases = {{"get", {3}}, {"get", {11}}};
  auto ValidateLib = [&] {
    ValidationOptions VO;
    VO.PrimsKey = "prims:clock@100";
    return validateTranslation(Lib, LibCases, MakePrims, VO);
  };

  bool Ok5 = Validate(LinkedSrc).Ok && ValidateLib().Ok;
  auto [H1, M1] = Stats();
  std::printf("    cold run:  hits=%llu misses=%llu (both checked)\n",
              static_cast<unsigned long long>(H1),
              static_cast<unsigned long long>(M1));

  Ok5 = Ok5 && Validate(LinkedSrc).Ok && ValidateLib().Ok;
  auto [H2, M2] = Stats();
  std::printf("    warm run:  hits=%llu misses=%llu (both loaded)\n",
              static_cast<unsigned long long>(H2),
              static_cast<unsigned long long>(M2));

  // Edit the app only: run() now squares the sum before returning.
  ClightModule App2 = parseModuleOrDie("app", R"(
    extern void put(int i, int v);
    extern int get(int i);
    extern int now();
    int run(int n) {
      int i = 0;
      while (i < n) { put(i, i * i + now()); i = i + 1; }
      int s = 0;
      i = 0;
      while (i < n) { s = s + get(i); i = i + 1; }
      return s * s;
    }
  )");
  typeCheckOrDie(App2);
  ClightModule LinkedSrc2 = linkModules("app+lib.src", {&App2, &Lib});
  typeCheckOrDie(LinkedSrc2);
  Ok5 = Ok5 && Validate(LinkedSrc2).Ok && ValidateLib().Ok;
  auto [H3, M3] = Stats();
  std::printf("    app edit:  hits=%llu misses=%llu "
              "(library reused, app re-validated)\n",
              static_cast<unsigned long long>(H3),
              static_cast<unsigned long long>(M3));

  bool Incremental = M1 == 2 && H2 == 2 && M2 == M1 && H3 == 3 && M3 == 3;
  std::printf("    incremental behavior as expected: %s\n\n",
              Incremental ? "yes" : "NO");
  cert::setStoreDir("");
  fs::remove_all(CacheDir, Ec);

  bool AllOk = VR.Ok && AllHeld && Ok5 && Incremental;
  std::printf("== %s ==\n", AllOk ? "pipeline verified" : "FAIL");
  return AllOk ? 0 : 1;
}
