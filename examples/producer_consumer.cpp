//===- examples/producer_consumer.cpp - The top of the Fig. 1 tower -------------===//
//
// Drives the multithreaded layers: the queuing lock (§5.4), condition
// variables, and the IPC channel, each checked over *every* schedule of
// the multithreaded machine.  Also demonstrates the checker catching the
// classic lost-wakeup deadlock in an under-synchronized variant — the
// point of exhaustive schedule exploration.
//
//===----------------------------------------------------------------------===//

#include "threads/CondVar.h"
#include "threads/Ipc.h"
#include "threads/Linking.h"
#include "threads/QueuingLock.h"

#include <cstdio>

using namespace ccal;

int main() {
  std::printf("== multithreaded layers: qlock -> cv -> ipc ==\n\n");

  std::printf("[1] multithreaded linking (Thm 5.1): scheduler code vs "
              "atomic yield\n");
  LinkingSetup LSetup;
  LSetup.NumThreads = 2;
  LSetup.Rounds = 3;
  LinkingReport Link = checkMultithreadedLinking(LSetup);
  std::printf("    %s -> %s\n",
              Link.Refinement.Holds ? "HOLDS" : "FAILED",
              Link.Cert->statement().c_str());

  std::printf("\n[2] queuing lock refines the blocking atomic lock\n");
  QueuingLockOutcome QL = certifyQueuingLock(2, 1, 2);
  std::printf("    %s; schedules=%llu obligations=%llu\n",
              QL.Report.Holds ? "HOLDS" : QL.Report.Counterexample.c_str(),
              static_cast<unsigned long long>(QL.Report.SchedulesExplored),
              static_cast<unsigned long long>(QL.Report.ObligationsChecked));

  std::printf("\n[3] bounded buffer over qlock + condition variables\n");
  MonitorCheck Buf = checkBoundedBuffer(4);
  std::printf("    %s; schedules=%llu states=%llu\n",
              Buf.Ok ? "all deliveries in order" : Buf.Violation.c_str(),
              static_cast<unsigned long long>(Buf.SchedulesExplored),
              static_cast<unsigned long long>(Buf.StatesExplored));

  std::printf("\n[4] the checker FINDS the classic lost-wakeup deadlock\n");
  MonitorCheck Bug = checkBoundedBufferLostWakeup(2);
  std::printf("    expected failure: %s\n",
              Bug.Ok ? "NOT FOUND (unexpected)" : "found");

  std::printf("\n[5] IPC channel: exactly-once, in-order, all schedules\n");
  MonitorCheck Ipc = checkIpcChannel(IpcRingCap + 2);
  std::printf("    %s; schedules=%llu\n",
              Ipc.Ok ? "delivery verified" : Ipc.Violation.c_str(),
              static_cast<unsigned long long>(Ipc.SchedulesExplored));

  bool AllGood = Link.Refinement.Holds && QL.Report.Holds && Buf.Ok &&
                 !Bug.Ok && Ipc.Ok;
  std::printf("\n== %s ==\n", AllGood ? "all checks passed" : "FAILURES");
  return AllGood ? 0 : 1;
}
