//===- examples/verify_service.cpp - Two clients, one certd, one bill -----------===//
//
// The verification-as-a-service story in one process:
//
//   1. start a certd daemon on a private Unix socket with a shared
//      certificate store,
//   2. client A verifies a lock stack cold — pays the exploration and
//      mints certificates,
//   3. client B verifies an overlapping stack over a fresh connection —
//      the shared store serves the overlapping obligations, so B's bill
//      shows cache hits, zero new stores for the shared jobs, and a
//      fraction of A's wall-clock,
//   4. the daemon drains and shuts down cleanly.
//
// Exits 0 only if client B actually hit the cache.
//
//===----------------------------------------------------------------------===//

#include "serve/Certd.h"
#include "serve/Client.h"

#include "cert/CertStore.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

using namespace ccal;
using namespace ccal::serve;

namespace {

void printBill(const char *Who, const VerifyResponse &R) {
  std::printf("%s (round-trip %.1f ms):\n", Who, R.WallMs);
  for (const JobResult &J : R.Results)
    std::printf("  %-14s %-9s %8.1f ms  schedules=%llu hits=%llu "
                "misses=%llu stores=%llu\n",
                J.Job.c_str(),
                !J.Known      ? "UNKNOWN"
                : J.Holds     ? "HOLDS"
                : J.Complete  ? "FAILS"
                              : "TRUNCATED",
                J.WallMs, static_cast<unsigned long long>(J.Schedules),
                static_cast<unsigned long long>(J.CertHits),
                static_cast<unsigned long long>(J.CertMisses),
                static_cast<unsigned long long>(J.CertStores));
}

} // namespace

int main() {
  namespace fs = std::filesystem;
  const std::string Tag = std::to_string(::getpid());
  const std::string Socket = "/tmp/ccal_example_" + Tag + ".sock";
  const fs::path StoreDir =
      fs::temp_directory_path() / ("ccal_example_store_" + Tag);
  cert::setStoreDir(StoreDir.string());

  CertdOptions O;
  O.SocketPath = Socket;
  O.Workers = 2;
  Certd Daemon(O);
  std::string Err;
  if (!Daemon.start(Err)) {
    std::fprintf(stderr, "certd start failed: %s\n", Err.c_str());
    return 1;
  }
  std::printf("certd up on %s, store in %s\n\n", Socket.c_str(),
              StoreDir.string().c_str());

  // Client A: the ticket-lock stack, cold.  Every obligation is a miss;
  // the daemon explores, checks, and mints certificates into the store.
  VerifyResponse A;
  {
    CertClient C;
    if (!C.connect(Socket, Err) ||
        !C.verify({"ticket.2cpu", "mcs.2cpu"}, {}, A, Err) || !A.Ok) {
      std::fprintf(stderr, "client A failed: %s %s\n", Err.c_str(),
                   A.Error.c_str());
      return 1;
    }
  }
  printBill("client A (cold)", A);

  // Client B: a different connection, overlapping stack.  The store
  // already holds A's certificates, so the overlap is pure cache hits.
  VerifyResponse B;
  {
    CertClient C;
    if (!C.connect(Socket, Err) ||
        !C.verify({"ticket.2cpu", "mcs.2cpu"}, {}, B, Err) || !B.Ok) {
      std::fprintf(stderr, "client B failed: %s %s\n", Err.c_str(),
                   B.Error.c_str());
      return 1;
    }
  }
  std::printf("\n");
  printBill("client B (warm)", B);

  Daemon.shutdown();

  std::uint64_t Hits = 0, Stores = 0;
  double AWall = 0, BWall = 0;
  for (const JobResult &J : B.Results) {
    Hits += J.CertHits;
    Stores += J.CertStores;
    BWall += J.WallMs;
  }
  for (const JobResult &J : A.Results)
    AWall += J.WallMs;
  std::printf("\nA paid %.1f ms of verification; B paid %.1f ms "
              "(%llu cache hits, %llu new certificates)\n",
              AWall, BWall, static_cast<unsigned long long>(Hits),
              static_cast<unsigned long long>(Stores));

  std::error_code Ec;
  fs::remove_all(StoreDir, Ec);
  if (Hits == 0) {
    std::fprintf(stderr, "expected client B to hit the shared store\n");
    return 1;
  }
  std::printf("second client paid nothing for the shared obligations.\n");
  return 0;
}
