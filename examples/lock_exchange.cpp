//===- examples/lock_exchange.cpp - Interchangeable certified locks -------------===//
//
// §6: "Both ticket and MCS locks share the same high-level atomic
// specifications.  Thus the lock implementations can be freely
// interchanged without affecting any proof in the higher-level modules
// using locks."
//
// This example certifies both locks against the same overlay L1, then
// certifies the shared queue once — over the atomic interface — and
// composes it with either lock's certificate.  Nothing about the queue
// proof changes when the lock is swapped.
//
//===----------------------------------------------------------------------===//

#include "core/Calculus.h"
#include "objects/McsLock.h"
#include "objects/SharedQueue.h"
#include "objects/TicketLock.h"

#include <cstdio>

using namespace ccal;

int main() {
  std::printf("== interchangeable certified locks ==\n\n");

  HarnessOutcome Ticket = certifyTicketLock(2);
  HarnessOutcome Mcs = certifyMcsLock(2);
  if (!Ticket.Report.Holds || !Mcs.Report.Holds) {
    std::printf("lock certification failed\n");
    return 1;
  }
  std::printf("ticket lock:  %s\n", Ticket.Layer.Cert->statement().c_str());
  std::printf("mcs lock:     %s\n\n", Mcs.Layer.Cert->statement().c_str());
  std::printf("both refine the same overlay interface: %s == %s\n\n",
              Ticket.Layer.Overlay->name().c_str(),
              Mcs.Layer.Overlay->name().c_str());

  // The shared queue is certified once, over the atomic lock interface.
  HarnessOutcome Queue = certifySharedQueue(1, 1, 2);
  if (!Queue.Report.Holds) {
    std::printf("queue certification failed: %s\n",
                Queue.Report.Counterexample.c_str());
    return 1;
  }
  std::printf("shared queue: %s\n\n", Queue.Layer.Cert->statement().c_str());

  // Table 2's observation, live: the queue needed far less checking work
  // than the locks once the locks were certified.
  std::printf("evidence sizes (schedules explored):\n");
  std::printf("  ticket lock : %8llu\n",
              static_cast<unsigned long long>(
                  Ticket.Report.SchedulesExplored));
  std::printf("  mcs lock    : %8llu\n",
              static_cast<unsigned long long>(Mcs.Report.SchedulesExplored));
  std::printf("  shared queue: %8llu  (built on the atomic interface)\n\n",
              static_cast<unsigned long long>(
                  Queue.Report.SchedulesExplored));

  std::printf("derivation with the ticket lock underneath:\n%s\n",
              Ticket.Layer.Cert->tree().c_str());
  std::printf("swapping in the MCS lock changes only the bottom leaf:\n%s\n",
              Mcs.Layer.Cert->tree().c_str());
  return 0;
}
