//===- examples/quickstart.cpp - The full §2 / Fig. 3 / Fig. 5 story ------------===//
//
// Builds the paper's running example end to end with the public API:
//
//   1. the ticket-lock layer  L0 |-R1 M1 : L1      (Fun + LogLift),
//   2. the foo layer          L1 |-R2 M2 : L2      on top of it,
//   3. their vertical composition (Fig. 5's derivation),
//   4. the Compat side condition of Pcomp, discharged on the corpus of
//      logs gathered during exploration,
//   5. a replay of the §2 schedule "1,2,2,1,1,2,1,2,1,1,2,2" showing the
//      concrete log l'_g and its R1-image l_g.
//
// Run it; it prints the derivation tree and the logs.
//
//===----------------------------------------------------------------------===//

#include "compcertx/Linker.h"
#include "core/Calculus.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "machine/Explorer.h"
#include "objects/Harness.h"
#include "objects/ObjectSpec.h"
#include "objects/TicketLock.h"

#include <cstdio>

using namespace ccal;

namespace {

ClightModule makeFooModule() {
  ClightModule M = parseModuleOrDie("M2_foo", R"(
    extern void acq();
    extern void rel();
    extern int f();
    extern int g();

    int foo() {
      acq();
      int a = f();
      int b = g();
      rel();
      return a * 10 + b;
    }
  )");
  typeCheckOrDie(M);
  return M;
}

/// The atomic interface L2: foo happens in one shot; its return value is
/// replayed from the log (the k-th foo returns 11k: both counters were k).
LayerPtr makeL2() {
  auto L2 = makeInterface("L2");
  addAtomicMethod(*L2, "foo",
                  [](ThreadId, const std::vector<std::int64_t> &,
                     const Log &Prefix) -> AtomicOutcome {
                    std::int64_t K = static_cast<std::int64_t>(
                        logCountKind(Prefix, "foo"));
                    return AtomicOutcome::ok(K * 10 + K);
                  });
  return L2;
}

/// R2 maps the lock acquisition (foo's linearization point) to the atomic
/// foo event and erases the rest of the critical section.
EventMap makeR2() {
  return EventMap("R2", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "acq")
      return Event(E.Tid, "foo");
    return std::nullopt;
  });
}

} // namespace

int main() {
  std::printf("== ccal quickstart: certifying Fig. 3 bottom-up ==\n\n");

  // ---- Step 1: the ticket-lock layer (L0 |- M1 : L1) on CPUs {1,2}.
  HarnessOutcome Ticket = certifyTicketLock(/*NumCpus=*/2);
  if (!Ticket.Report.Holds) {
    std::printf("ticket lock failed: %s\n",
                Ticket.Report.Counterexample.c_str());
    return 1;
  }
  std::printf("[1] %s\n    schedules=%llu obligations=%llu\n\n",
              Ticket.Layer.Cert->statement().c_str(),
              static_cast<unsigned long long>(Ticket.Report.SchedulesExplored),
              static_cast<unsigned long long>(
                  Ticket.Report.ObligationsChecked));

  // ---- Step 2: the foo layer (L1 |- M2 : L2), verified over the *atomic*
  // lock interface — no ticket-lock details appear in this proof.
  static ClightModule Foo = makeFooModule();
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("P", R"(
      extern int foo();
      int t_main() { return foo(); }
    )");
    typeCheckOrDie(M);
    return M;
  }();

  ObjectHarness H;
  H.ObjectName = "foo";
  H.Underlay = Ticket.Layer.Overlay; // vertical composition: reuse L1
  H.Modules = {&Foo};
  H.Overlay = makeL2();
  H.R = makeR2();
  H.Client = &Client;
  H.Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  H.Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  H.ImplOpts.MaxSteps = 256;
  H.SpecOpts.FairnessBound = 1u << 20;
  H.SpecOpts.MaxSteps = 256;
  HarnessOutcome FooOut = runObjectHarness(H);
  if (!FooOut.Report.Holds) {
    std::printf("foo layer failed: %s\n",
                FooOut.Report.Counterexample.c_str());
    return 1;
  }
  std::printf("[2] %s\n\n", FooOut.Layer.Cert->statement().c_str());

  // ---- Step 3: vertical composition (the spine of Fig. 5).
  CertifiedLayer Stack = calculus::vcomp(Ticket.Layer, FooOut.Layer);
  std::printf("[3] Fig. 5 derivation:\n%s\n", Stack.Cert->tree().c_str());

  // ---- Step 4: the Compat side condition (Fig. 9) on real logs.
  static TicketLockLayers Layers = makeTicketLockLayers();
  {
    std::vector<Log> Corpus;
    for (const Log &Lg : Ticket.Report.Corpus)
      Corpus.push_back(Layers.R1.apply(Lg));
    calculus::CompatReport Compat =
        calculus::checkCompat(*Layers.L1, {1}, {2}, Corpus);
    std::printf("[4] compat(L1[1], L1[2], L1[{1,2}]): %s over %llu "
                "explored logs\n\n",
                Compat.Holds ? "holds" : "FAILED",
                static_cast<unsigned long long>(Compat.LogsChecked));
  }

  // ---- Step 5: the §2 schedule, concretely.
  std::printf("[5] replaying the S2 schedule 1,2,2,1,1,2,1,2,1,1,2,2:\n");
  static ClightModule Ticket1;
  Ticket1 = cloneModule(Layers.M1);
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "fig3";
  Cfg->Layer = Layers.L0;
  Cfg->Program = compileAndLink("fig3.lasm", {&Client, &Foo, &Ticket1});
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});

  std::vector<ThreadId> Picks = {1, 2, 2, 1, 1, 2, 1, 2, 1, 1, 2, 2};
  size_t Next = 0;
  Outcome O = runSchedule(
      Cfg,
      [&](const std::vector<ThreadId> &Ready, const Log &) {
        return Next < Picks.size() ? Picks[Next++] : Ready.front();
      },
      nullptr);
  Log LgPrime(O.FinalLog.begin(), O.FinalLog.begin() + 12);
  std::printf("    l'_g = %s\n", logToString(LgPrime).c_str());
  std::printf("    R1(l'_g) = %s\n",
              logToString(Layers.R1.apply(LgPrime)).c_str());
  std::printf("    T1 returned %lld, T2 returned %lld\n\n",
              static_cast<long long>(O.Returns.at(1)[0]),
              static_cast<long long>(O.Returns.at(2)[0]));

  std::printf("== done: the whole stack is certified ==\n");
  return 0;
}
