//===- tests/common/fuzz_support.cpp - Fuzz failure dump & replay ------------===//

#include "tests/common/fuzz_support.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ccal {
namespace test {

namespace {
std::string &replayPathStorage() {
  static std::string Path;
  return Path;
}
} // namespace

const std::string &fuzzReplayPath() { return replayPathStorage(); }

void setFuzzReplayPath(std::string Path) {
  replayPathStorage() = std::move(Path);
}

std::string dumpFailure(const std::string &Kind, std::uint64_t Seed,
                        const std::string &Body) {
  std::string Path =
      "ccal_fuzz_" + Kind + "_seed" + std::to_string(Seed) + ".txt";
  std::ofstream Out(Path);
  if (!Out)
    return "";
  Out << "// ccal-fuzz-dump kind=" << Kind << " seed=" << Seed << "\n";
  Out << Body;
  Out.close();
  std::fprintf(stderr,
               "ccal-fuzz: failing input dumped to %s — replay with "
               "--ccal-fuzz-replay=%s\n",
               Path.c_str(), Path.c_str());
  return Path;
}

bool readFuzzDump(const std::string &Path, FuzzDump &Out,
                  std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open dump file '" + Path + "'";
    return false;
  }
  std::string Header;
  if (!std::getline(In, Header)) {
    Error = "dump file '" + Path + "' is empty";
    return false;
  }
  const std::string Magic = "// ccal-fuzz-dump ";
  if (Header.compare(0, Magic.size(), Magic) != 0) {
    Error = "dump file '" + Path + "' has no ccal-fuzz-dump header";
    return false;
  }
  Out.Kind.clear();
  Out.Seed = 0;
  std::istringstream Fields(Header.substr(Magic.size()));
  std::string Field;
  while (Fields >> Field) {
    auto Eq = Field.find('=');
    if (Eq == std::string::npos)
      continue;
    std::string Key = Field.substr(0, Eq), Val = Field.substr(Eq + 1);
    if (Key == "kind")
      Out.Kind = Val;
    else if (Key == "seed")
      Out.Seed = std::strtoull(Val.c_str(), nullptr, 10);
  }
  if (Out.Kind.empty()) {
    Error = "dump file '" + Path + "' header lacks kind=";
    return false;
  }
  std::ostringstream Body;
  Body << In.rdbuf();
  Out.Body = Body.str();
  return true;
}

std::vector<std::string> corpusFiles(const std::string &Dir,
                                     const std::string &Kind) {
  std::vector<std::string> Paths;
  std::error_code Ec;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, Ec)) {
    if (!Entry.is_regular_file())
      continue;
    FuzzDump D;
    std::string Err;
    if (readFuzzDump(Entry.path().string(), D, Err) && D.Kind == Kind)
      Paths.push_back(Entry.path().string());
  }
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

} // namespace test
} // namespace ccal
