//===- tests/common/test_main.cpp - gtest main with fuzz replay --------------===//
//
// The randomized suites (compcertx fuzz, machine POR property tests) link
// this main instead of gtest_main so failing inputs dumped by
// tests/common/fuzz_support.h can be fed back in:
//
//   ./compcertx_test --ccal-fuzz-replay=ccal_fuzz_clightx_seed42.txt
//
// The flag is stripped before InitGoogleTest so gtest's own flag parsing
// never sees it; the FuzzReplayTest in each suite picks the path up via
// fuzzReplayPath() and re-runs the checker on the dumped input.
//
//===----------------------------------------------------------------------===//

#include "tests/common/fuzz_support.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

int main(int argc, char **argv) {
  const char *Flag = "--ccal-fuzz-replay=";
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], Flag, std::strlen(Flag)) == 0) {
      ccal::test::setFuzzReplayPath(argv[I] + std::strlen(Flag));
      continue; // strip the flag
    }
    argv[Out++] = argv[I];
  }
  argc = Out;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
