//===- tests/common/fuzz_support.h - Fuzz failure dump & replay -*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the randomized suites: when a fuzz or property
/// test fails it dumps the failing seed and a self-contained reproduction
/// (the generated ClightX program, or the generated machine workload) to a
/// file in the test working directory; `--ccal-fuzz-replay=<file>` (parsed
/// by tests/common/test_main.cpp) feeds such a file back through the same
/// checker; and the checked-in corpus under tests/corpus/ replays past
/// failures on every CI run.
///
/// Dump format: a header line
///   // ccal-fuzz-dump kind=<kind> seed=<seed>
/// followed by the kind-specific body verbatim.  Each suite defines what
/// its body means; the header is enough for any suite to recognize (and
/// skip) the kinds it does not own.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_TESTS_COMMON_FUZZ_SUPPORT_H
#define CCAL_TESTS_COMMON_FUZZ_SUPPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {
namespace test {

/// Path passed via --ccal-fuzz-replay= (empty when the flag was absent).
const std::string &fuzzReplayPath();

/// Stores the replay path; called by the custom gtest main.
void setFuzzReplayPath(std::string Path);

/// A parsed dump file.
struct FuzzDump {
  std::string Kind;
  std::uint64_t Seed = 0;
  std::string Body; ///< everything after the header line, verbatim
};

/// Writes `ccal_fuzz_<kind>_seed<seed>.txt` in the current working
/// directory and returns its path ("" if the file could not be written —
/// the caller's assertion message still carries the body).
std::string dumpFailure(const std::string &Kind, std::uint64_t Seed,
                        const std::string &Body);

/// Parses a dump file; returns false (with \p Error set) on missing file
/// or malformed header.
bool readFuzzDump(const std::string &Path, FuzzDump &Out, std::string &Error);

/// All dump files of kind \p Kind in directory \p Dir (sorted by name;
/// empty when the directory is missing).  Used by the corpus regression
/// tests over CCAL_CORPUS_DIR.
std::vector<std::string> corpusFiles(const std::string &Dir,
                                     const std::string &Kind);

} // namespace test
} // namespace ccal

#endif // CCAL_TESTS_COMMON_FUZZ_SUPPORT_H
