//===- tests/audit/audit_checker_test.cpp - Offline audit checker tests ------===//
//
// Unit coverage for the offline half of the trace auditor: window
// partitioning at quiescent cuts, timestamp-derived real-time precedence
// (the thing that makes the audit linearizability, not sequential
// consistency), spec state carried across windows, and — most
// load-bearing — the fail-closed verdict lattice: budget exhaustion,
// window caps, drops, unknown specs and corrupt traces are UNRESOLVED,
// never PASS and never FAIL; FAIL is reserved for a fully-refuted window
// and always comes with the witness window as evidence.  Trace file
// round-trip and fail-closed parsing ride along at the bottom.
//
//===----------------------------------------------------------------------===//

#include "audit/AuditChecker.h"

#include "audit/Trace.h"

#include <gtest/gtest.h>

using namespace ccal;
using namespace ccal::audit;

namespace {

OpRecord op(std::uint64_t Obj, std::uint64_t Tid, Method M, std::int64_t Ret,
            std::uint64_t Inv, std::uint64_t Resp) {
  OpRecord R;
  R.Obj = Obj;
  R.Tid = Tid;
  R.M = M;
  R.Ret = Ret;
  R.InvokeNs = Inv;
  R.ResponseNs = Resp;
  return R;
}

OpRecord enq(std::uint64_t Obj, std::uint64_t Tid, std::int64_t V,
             std::uint64_t Inv, std::uint64_t Resp) {
  OpRecord R = op(Obj, Tid, Method::Enq, 0, Inv, Resp);
  R.HasArg = true;
  R.Arg = V;
  return R;
}

Trace trace(std::string Spec, std::vector<OpRecord> Records,
            std::uint64_t Dropped = 0) {
  Trace T;
  T.Spec = std::move(Spec);
  T.Dropped = Dropped;
  T.Records = std::move(Records);
  return T;
}

} // namespace

TEST(AuditCheckerTest, EmptyTracePasses) {
  AuditReport R = auditTrace(trace("ticket", {}), "ticket");
  EXPECT_EQ(R.Outcome, AuditOutcome::Pass) << R.Detail;
  EXPECT_EQ(R.Objects, 0u);
}

TEST(AuditCheckerTest, TicketHistoryPassesAcrossWindows) {
  // Two overlapping acquisitions, then a quiescent gap, then another
  // thread's pair: two windows, spec state (served counter) carried over.
  AuditReport R = auditTrace(
      trace("ticket",
            {
                op(1, 1, Method::Acq, 0, 10, 20),
                op(1, 2, Method::Acq, 1, 15, 40), // overlaps t1's acq+rel
                op(1, 1, Method::Rel, 0, 25, 30),
                op(1, 2, Method::Rel, 1, 50, 60),
                op(1, 1, Method::Acq, 2, 70, 80), // new window after 60<70
                op(1, 1, Method::Rel, 2, 90, 95),
            }),
      "ticket");
  EXPECT_EQ(R.Outcome, AuditOutcome::Pass) << R.Detail;
  EXPECT_EQ(R.Objects, 1u);
  EXPECT_EQ(R.OpsAudited, 6u);
  EXPECT_GE(R.Windows, 2u);
  EXPECT_EQ(R.MaxWindowSeen, 3u);
}

TEST(AuditCheckerTest, DuplicateTicketsRefutedWithWitnessWindow) {
  // Both threads claim ticket 0 — the broken-lock signature.  No
  // interleaving satisfies the spec, so the verdict is FAIL with the
  // refuted window attached as evidence.
  AuditReport R = auditTrace(
      trace("ticket",
            {
                op(1, 1, Method::Acq, 0, 10, 20),
                op(1, 2, Method::Acq, 0, 15, 40),
                op(1, 1, Method::Rel, 0, 25, 30),
                op(1, 2, Method::Rel, 1, 50, 60),
            }),
      "ticket");
  ASSERT_EQ(R.Outcome, AuditOutcome::Fail) << R.Detail;
  EXPECT_EQ(R.WitnessObj, 1u);
  EXPECT_FALSE(R.WitnessOps.empty());
  EXPECT_NE(R.Detail.find("window"), std::string::npos) << R.Detail;
}

TEST(AuditCheckerTest, MutualExclusionOverlapCaughtAcrossWindows) {
  // Thread 2's whole acq/rel pair sits strictly inside thread 1's lock
  // hold.  The ops land in different windows (t2's pair is quiescent
  // relative to t1's acq), so only the spec state carried across windows
  // — holder = t1 — can refute it.  Rets are uninformative ("lock"
  // spec): the timestamps alone prove the violation.
  AuditReport R = auditTrace(
      trace("lock",
            {
                op(1, 1, Method::Acq, 0, 10, 20),
                op(1, 2, Method::Acq, 0, 30, 40),
                op(1, 2, Method::Rel, 0, 50, 60),
                op(1, 1, Method::Rel, 0, 80, 90),
            }),
      "lock");
  ASSERT_EQ(R.Outcome, AuditOutcome::Fail) << R.Detail;
  EXPECT_EQ(R.WitnessObj, 1u);
}

TEST(AuditCheckerTest, RealTimePrecedenceDistinguishesFromSequentialConsistency) {
  // Same per-thread histories, two timings.  Sequentially consistent
  // either way (reorder t2's acq after t1's rel); linearizable only when
  // the intervals overlap.  A checker ignoring timestamps would pass
  // both.
  std::vector<OpRecord> Overlapping = {
      op(1, 1, Method::Acq, 0, 10, 20),
      op(1, 1, Method::Rel, 0, 40, 50),
      op(1, 2, Method::Acq, 0, 15, 45), // overlaps t1's hold: may
      op(1, 2, Method::Rel, 0, 55, 60), // linearize after the rel
  };
  EXPECT_EQ(auditTrace(trace("lock", Overlapping), "lock").Outcome,
            AuditOutcome::Pass);

  std::vector<OpRecord> Ordered = {
      op(1, 1, Method::Acq, 0, 10, 20),
      op(1, 1, Method::Rel, 0, 40, 50),
      op(1, 2, Method::Acq, 0, 22, 26), // strictly inside t1's hold
      op(1, 2, Method::Rel, 0, 28, 32),
  };
  EXPECT_EQ(auditTrace(trace("lock", Ordered), "lock").Outcome,
            AuditOutcome::Fail);
}

TEST(AuditCheckerTest, QueueFifoPassesIncludingEmptyDeq) {
  AuditReport R = auditTrace(
      trace("queue",
            {
                enq(7, 1, 11, 10, 20),
                enq(7, 2, 22, 15, 25), // concurrent with the first enQ
                op(7, 1, Method::Deq, 11, 30, 40),
                op(7, 2, Method::Deq, 22, 35, 45),
                op(7, 1, Method::Deq, -1, 50, 55),
            }),
      "queue");
  EXPECT_EQ(R.Outcome, AuditOutcome::Pass) << R.Detail;
  EXPECT_EQ(R.OpsAudited, 5u);
}

TEST(AuditCheckerTest, QueueFifoViolationFails) {
  // enQ(1) strictly precedes enQ(2), deQs strictly ordered, yet the
  // values come out LIFO — no linearization exists.
  AuditReport R = auditTrace(
      trace("queue",
            {
                enq(7, 1, 1, 10, 20),
                enq(7, 1, 2, 30, 40),
                op(7, 2, Method::Deq, 2, 50, 60),
                op(7, 2, Method::Deq, 1, 70, 80),
            }),
      "queue");
  EXPECT_EQ(R.Outcome, AuditOutcome::Fail) << R.Detail;
}

TEST(AuditCheckerTest, QueueConcurrentSurvivorsResolvedByLaterDequeue) {
  // Two concurrent enqueues BOTH survive the quiescent cut: the window's
  // post-state depends on which witness the search found ([11,22] or
  // [22,11]), so committing one would make the later dequeues — which
  // observe 22 first — a false FAIL.  The checker must defer (merge the
  // windows) and PASS; a second trace whose dequeue order is genuinely
  // impossible (22 before 11 AND 11 before 22 demanded by two deq pairs)
  // still FAILs, pinning that merging defers the decision rather than
  // abandoning it.
  AuditReport R = auditTrace(
      trace("queue",
            {
                enq(7, 1, 11, 10, 20),
                enq(7, 2, 22, 12, 22), // concurrent with enQ(11); both survive
                op(7, 1, Method::Deq, 22, 100, 110),
                op(7, 1, Method::Deq, 11, 120, 130),
            }),
      "queue");
  EXPECT_EQ(R.Outcome, AuditOutcome::Pass) << R.Detail;
  EXPECT_EQ(R.OpsAudited, 4u);

  AuditReport Bad = auditTrace(
      trace("queue",
            {
                enq(7, 1, 11, 10, 20),
                enq(7, 2, 22, 12, 22),
                op(7, 1, Method::Deq, 22, 100, 110),
                op(7, 1, Method::Deq, 22, 120, 130), // 22 delivered twice
            }),
      "queue");
  EXPECT_EQ(Bad.Outcome, AuditOutcome::Fail) << Bad.Detail;
}

TEST(AuditCheckerTest, ObjectsAuditIndependently) {
  // Object 1 is clean; object 2 has the duplicate-ticket bug.  FAIL on
  // any object dominates the aggregate verdict.
  AuditReport R = auditTrace(
      trace("ticket",
            {
                op(1, 1, Method::Acq, 0, 10, 20),
                op(1, 1, Method::Rel, 0, 30, 40),
                op(2, 1, Method::Acq, 0, 110, 120),
                op(2, 2, Method::Acq, 0, 115, 140),
                op(2, 1, Method::Rel, 0, 125, 130),
                op(2, 2, Method::Rel, 1, 150, 160),
            }),
      "ticket");
  ASSERT_EQ(R.Outcome, AuditOutcome::Fail) << R.Detail;
  EXPECT_EQ(R.Objects, 2u);
  EXPECT_EQ(R.WitnessObj, 2u);
}

//===----------------------------------------------------------------------===//
// Fail-closed verdicts
//===----------------------------------------------------------------------===//

TEST(AuditCheckerTest, DroppedRecordsForceUnresolved) {
  AuditReport R = auditTrace(
      trace("ticket", {op(1, 1, Method::Acq, 0, 10, 20)}, /*Dropped=*/1),
      "ticket");
  EXPECT_EQ(R.Outcome, AuditOutcome::Unresolved);
  EXPECT_NE(R.Detail.find("dropped"), std::string::npos) << R.Detail;
}

TEST(AuditCheckerTest, BudgetExhaustionIsUnresolvedNeverFail) {
  // A heavily concurrent (but linearizable) window with a one-node
  // budget: the search cannot finish, and the honest answer is UNKNOWN.
  AuditOptions Opts;
  Opts.MaxNodesPerWindow = 1;
  AuditReport R = auditTrace(
      trace("lock",
            {
                op(1, 1, Method::Acq, 0, 10, 20),
                op(1, 1, Method::Rel, 0, 25, 90),
                op(1, 2, Method::Acq, 0, 12, 50),
                op(1, 2, Method::Rel, 0, 55, 85),
            }),
      "lock", Opts);
  EXPECT_EQ(R.Outcome, AuditOutcome::Unresolved);
  EXPECT_NE(R.Detail.find("budget"), std::string::npos) << R.Detail;
}

TEST(AuditCheckerTest, WindowOverOpCapIsUnresolved) {
  AuditOptions Opts;
  Opts.MaxWindowOps = 2;
  AuditReport R = auditTrace(
      trace("lock",
            {
                op(1, 1, Method::Acq, 0, 10, 100),
                op(1, 2, Method::Acq, 0, 20, 90),
                op(1, 3, Method::Acq, 0, 30, 80),
            }),
      "lock", Opts);
  EXPECT_EQ(R.Outcome, AuditOutcome::Unresolved);
  EXPECT_NE(R.Detail.find("cap"), std::string::npos) << R.Detail;
}

TEST(AuditCheckerTest, UnknownSpecIsUnresolved) {
  AuditReport R =
      auditTrace(trace("nope", {op(1, 1, Method::Acq, 0, 1, 2)}), "nope");
  EXPECT_EQ(R.Outcome, AuditOutcome::Unresolved);
  EXPECT_NE(R.Detail.find("unknown spec"), std::string::npos);
  EXPECT_FALSE(hasSpec("nope"));
  EXPECT_TRUE(hasSpec("ticket"));
  EXPECT_TRUE(hasSpec("lock"));
  EXPECT_TRUE(hasSpec("queue"));
}

TEST(AuditCheckerTest, CorruptThreadTimestampsAreUnresolved) {
  // Thread 1's second invocation predates its first response — impossible
  // on one monotonic clock, so the trace is corrupt, not non-linearizable.
  AuditReport R = auditTrace(
      trace("lock",
            {
                op(1, 1, Method::Acq, 0, 10, 50),
                op(1, 1, Method::Rel, 0, 20, 60),
            }),
      "lock");
  EXPECT_EQ(R.Outcome, AuditOutcome::Unresolved);
  EXPECT_NE(R.Detail.find("corrupt"), std::string::npos) << R.Detail;
}

TEST(AuditCheckerTest, FailDominatesUnresolved) {
  // Object 1 is corrupt (UNRESOLVED, no search even runs); object 2 is
  // refuted.  The aggregate must report the concrete violation, not the
  // unknown — FAIL > UNRESOLVED > PASS.
  AuditReport R = auditTrace(
      trace("ticket",
            {
                op(1, 1, Method::Acq, 0, 10, 50),
                op(1, 1, Method::Rel, 0, 20, 60), // invoked before prev resp
                op(2, 1, Method::Acq, 0, 110, 120),
                op(2, 2, Method::Acq, 0, 115, 140),
                op(2, 1, Method::Rel, 0, 125, 130),
                op(2, 2, Method::Rel, 1, 150, 160),
            }),
      "ticket");
  ASSERT_EQ(R.Outcome, AuditOutcome::Fail) << R.Detail;
  EXPECT_EQ(R.WitnessObj, 2u);
}

//===----------------------------------------------------------------------===//
// Trace files
//===----------------------------------------------------------------------===//

TEST(AuditTraceTest, JsonRoundTripPreservesEverything) {
  Trace T = trace("queue", {enq(7, 1, -5, 10, 20),
                            op(7, 2, Method::Deq, -1, 15, 25)},
                  /*Dropped=*/3);
  std::string Json = traceToJson(T);
  Trace Back;
  std::string Err;
  ASSERT_TRUE(traceFromJson(Json, Back, Err)) << Err;
  EXPECT_EQ(Back.Spec, "queue");
  EXPECT_EQ(Back.Dropped, 3u);
  ASSERT_EQ(Back.Records.size(), 2u);
  EXPECT_EQ(Back.Records[0].M, Method::Enq);
  EXPECT_TRUE(Back.Records[0].HasArg);
  EXPECT_EQ(Back.Records[0].Arg, -5);
  EXPECT_FALSE(Back.Records[1].HasArg) << "absent arg must stay absent";
  EXPECT_EQ(Back.Records[1].Ret, -1);
  EXPECT_EQ(Back.Records[1].InvokeNs, 15u);
  EXPECT_EQ(Back.Records[1].ResponseNs, 25u);
}

TEST(AuditTraceTest, FileRoundTrip) {
  Trace T = trace("ticket", {op(1, 1, Method::Acq, 0, 10, 20),
                             op(1, 1, Method::Rel, 0, 30, 40)});
  std::string Path = ::testing::TempDir() + "/ccal_audit_roundtrip.json";
  std::string Err;
  ASSERT_TRUE(writeTraceFile(Path, T, Err)) << Err;
  Trace Back;
  ASSERT_TRUE(readTraceFile(Path, Back, Err)) << Err;
  EXPECT_EQ(Back.Records.size(), 2u);
  EXPECT_EQ(traceToJson(Back), traceToJson(T))
      << "streamed writer and in-memory renderer must agree";
  std::remove(Path.c_str());
}

TEST(AuditTraceTest, ParserFailsClosed) {
  Trace Out;
  std::string Err;
  // Not a trace at all.
  EXPECT_FALSE(traceFromJson("{}", Out, Err));
  // Unknown method name.
  EXPECT_FALSE(traceFromJson(
      R"({"ccal_audit_trace":1,"spec":"lock","dropped":0,)"
      R"("records":[{"obj":1,"tid":1,"m":"cas","ret":0,"inv":1,"resp":2}]})",
      Out, Err));
  EXPECT_NE(Err.find("method"), std::string::npos) << Err;
  // Response before invocation.
  EXPECT_FALSE(traceFromJson(
      R"({"ccal_audit_trace":1,"spec":"lock","dropped":0,)"
      R"("records":[{"obj":1,"tid":1,"m":"acq","ret":0,"inv":9,"resp":2}]})",
      Out, Err));
  // Recorder tids are 1-based; 0 marks corruption.
  EXPECT_FALSE(traceFromJson(
      R"({"ccal_audit_trace":1,"spec":"lock","dropped":0,)"
      R"("records":[{"obj":1,"tid":0,"m":"acq","ret":0,"inv":1,"resp":2}]})",
      Out, Err));
  // Missing ret.
  EXPECT_FALSE(traceFromJson(
      R"({"ccal_audit_trace":1,"spec":"lock","dropped":0,)"
      R"("records":[{"obj":1,"tid":1,"m":"acq","inv":1,"resp":2}]})",
      Out, Err));
}
