//===- tests/audit/audit_property_test.cpp - Auditor property tests ----------===//
//
// Randomized end-to-end properties of the trace auditor, in the mold of
// machine/por_property_test.cpp: a generator emits histories that are
// linearizable BY CONSTRUCTION (built in linearization order, with each
// operation's recorded interval containing its linearization time), the
// auditor must PASS every one (positive control), and two targeted
// corruptions — one mutated return value, and one return-value swap
// between two operations the timestamps strictly order — must each flip
// the verdict to FAIL (negative controls: a checker that cannot refute a
// planted bug is as useless as one that refutes correct histories).
//
// Failures dump the full trace JSON via tests/common/fuzz_support.h
// (kinds audit_pass / audit_fail, body = the trace file format), replay
// with --ccal-fuzz-replay=<file>, and past failures live in tests/corpus/.
//
// The file ends with the live half: real contended runtime objects whose
// recorded traces must audit PASS, and the RtBrokenLock seeded-bug
// harness the auditor must catch red-handed.
//
//===----------------------------------------------------------------------===//

#include "audit/AuditChecker.h"
#include "audit/Recorder.h"
#include "audit/Trace.h"
#include "runtime/RtBrokenLock.h"
#include "runtime/RtSharedQueue.h"
#include "runtime/RtTicketLock.h"
#include "tests/common/fuzz_support.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace ccal;
using namespace ccal::audit;

namespace {

/// Builds a linearizable history for \p Spec ("" = pick one from the
/// seed): operations are generated already in a valid linearization
/// order, operation k gets linearization time L = 100*(k+1), its
/// invocation lands in (last response of its thread, L] and its response
/// in [L, L+99].  Every recorded interval therefore contains its
/// linearization point, per-thread intervals never overlap, and the
/// response extension (< the 100ns step) keeps every thread eligible for
/// the next operation while still overlapping neighbors often enough to
/// exercise multi-operation windows.
Trace genHistory(std::uint64_t Seed, std::string Spec = "") {
  std::mt19937_64 Rng(Seed ^ 0x9e3779b97f4a7c15ull);
  if (Spec.empty()) {
    const char *Specs[] = {"ticket", "lock", "queue"};
    Spec = Specs[Rng() % 3];
  }
  const unsigned Threads = 2 + Rng() % 3; // 2..4
  const unsigned Ops = 20 + Rng() % 41;   // 20..60

  Trace Tr;
  Tr.Spec = Spec;
  std::vector<std::uint64_t> LastResp(Threads + 1, 0);
  // Sequential spec state, tracked alongside generation.
  std::uint64_t Holder = 0, Acqs = 0, Rels = 0;
  std::deque<std::int64_t> Items;
  std::int64_t NextVal = 1;
  std::uint64_t LastEnqResp = 0;

  for (unsigned K = 0; K != Ops; ++K) {
    const std::uint64_t L = 100 * (K + 1);
    OpRecord R;
    R.Obj = 0xA0D17;
    if (Spec == "queue") {
      R.Tid = 1 + Rng() % Threads;
      if (Rng() % 5 < 3) {
        R.M = Method::Enq;
        R.HasArg = true;
        R.Arg = NextVal++;
        R.Ret = 0;
        Items.push_back(R.Arg);
      } else {
        R.M = Method::Deq;
        if (Items.empty()) {
          R.Ret = -1;
        } else {
          R.Ret = Items.front();
          Items.pop_front();
        }
      }
    } else { // lock-shaped: acquire and release must alternate
      if (Holder) {
        R.Tid = Holder;
        R.M = Method::Rel;
        R.Ret = Spec == "ticket" ? static_cast<std::int64_t>(Rels++) : 0;
        Holder = 0;
      } else {
        R.Tid = 1 + Rng() % Threads;
        R.M = Method::Acq;
        R.Ret = Spec == "ticket" ? static_cast<std::int64_t>(Acqs++) : 0;
        Holder = R.Tid;
      }
    }
    std::uint64_t Lo = LastResp[R.Tid]; // always < L by construction
    // Keep enqueues timestamp-ordered among THEMSELVES (they still overlap
    // dequeues freely): concurrent enqueues whose values both survive
    // leave a witness-dependent queue order, which the checker handles by
    // merging windows — correct, but the merged search is exactly what
    // this deterministic positive control must not depend on.  The merge
    // path has its own handcrafted regression in audit_checker_test.cpp.
    if (R.M == Method::Enq)
      Lo = std::max(Lo, LastEnqResp);
    R.InvokeNs = Lo + 1 + Rng() % (L - Lo);
    R.ResponseNs = L + Rng() % 100;
    LastResp[R.Tid] = R.ResponseNs;
    if (R.M == Method::Enq)
      LastEnqResp = R.ResponseNs;
    Tr.Records.push_back(R);
  }
  return Tr;
}

/// Seeds-per-test budget; CI's fuzz job raises it via CCAL_FUZZ_HISTORIES.
unsigned historyBudget() {
  if (const char *Env = std::getenv("CCAL_FUZZ_HISTORIES"))
    if (unsigned N = static_cast<unsigned>(std::strtoul(Env, nullptr, 10)))
      return N;
  return 25;
}

class AuditPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

} // namespace

TEST_P(AuditPropertyTest, GeneratedHistoriesAuditPass) {
  const unsigned Budget = historyBudget();
  for (unsigned I = 0; I != Budget; ++I) {
    std::uint64_t Seed = GetParam() * 1000 + I;
    Trace T = genHistory(Seed);
    AuditReport R = auditTrace(T, T.Spec);
    if (R.Outcome != AuditOutcome::Pass) {
      std::string Dump = test::dumpFailure("audit_pass", Seed, traceToJson(T));
      FAIL() << "legal " << T.Spec << " history audited "
             << outcomeName(R.Outcome) << ": " << R.Detail
             << "\nseed: " << Seed << "\ndump: " << Dump;
    }
    EXPECT_EQ(R.OpsAudited, T.Records.size());
    EXPECT_GE(R.Windows, 1u);
  }
}

TEST_P(AuditPropertyTest, MutatedReturnValueIsRefuted) {
  // Bump one return by +1000: no generated history uses values that
  // large, so under every spec the mutated response is unsatisfiable in
  // EVERY interleaving — the auditor must say FAIL, not UNRESOLVED.
  const unsigned Budget = historyBudget();
  for (unsigned I = 0; I != Budget; ++I) {
    std::uint64_t Seed = GetParam() * 1000 + I;
    Trace T = genHistory(Seed);
    std::mt19937_64 Rng(Seed * 31 + 7);
    T.Records[Rng() % T.Records.size()].Ret += 1000;
    AuditReport R = auditTrace(T, T.Spec);
    if (R.Outcome != AuditOutcome::Fail) {
      std::string Dump = test::dumpFailure("audit_fail", Seed, traceToJson(T));
      FAIL() << "mutated " << T.Spec << " history audited "
             << outcomeName(R.Outcome) << " (want fail): " << R.Detail
             << "\nseed: " << Seed << "\ndump: " << Dump;
    }
    EXPECT_FALSE(R.WitnessOps.empty())
        << "a refutation must carry its witness window";
  }
}

TEST_P(AuditPropertyTest, RealTimeOrderViolationIsRefuted) {
  // Swap the tickets of two acquires whose intervals the timestamps
  // strictly order (resp(A) < inv(B)).  The value multiset stays legal —
  // only a checker that actually derives real-time precedence (not mere
  // sequential consistency) can refute the swapped history.
  const unsigned Budget = historyBudget();
  unsigned Swapped = 0;
  for (unsigned I = 0; I != Budget; ++I) {
    std::uint64_t Seed = GetParam() * 1000 + I;
    Trace T = genHistory(Seed, "ticket");
    std::vector<std::size_t> AcqIdx;
    for (std::size_t J = 0; J != T.Records.size(); ++J)
      if (T.Records[J].M == Method::Acq)
        AcqIdx.push_back(J);
    std::size_t A = 0, B = 0;
    bool Found = false;
    for (std::size_t X = 0; X + 1 < AcqIdx.size() && !Found; ++X)
      for (std::size_t Y = X + 1; Y < AcqIdx.size() && !Found; ++Y)
        if (T.Records[AcqIdx[X]].ResponseNs < T.Records[AcqIdx[Y]].InvokeNs) {
          A = AcqIdx[X];
          B = AcqIdx[Y];
          Found = true;
        }
    if (!Found)
      continue; // every pair overlapped; nothing to violate
    ++Swapped;
    std::swap(T.Records[A].Ret, T.Records[B].Ret);
    AuditReport R = auditTrace(T, T.Spec);
    if (R.Outcome != AuditOutcome::Fail) {
      std::string Dump = test::dumpFailure("audit_fail", Seed, traceToJson(T));
      FAIL() << "order-swapped ticket history audited "
             << outcomeName(R.Outcome) << " (want fail): " << R.Detail
             << "\nseed: " << Seed << "\ndump: " << Dump;
    }
  }
  EXPECT_GE(Swapped, Budget / 2)
      << "generator produced too few strictly-ordered acquire pairs for "
         "the control to mean anything";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

namespace {

/// Shared fixture for the live-object tests: recorder off and empty
/// before and after, with a small ring so round-spawned threads stay
/// cheap (each registered thread keeps its ring until reset).
class AuditLiveTest : public ::testing::Test {
protected:
  void SetUp() override {
    audit::setEnabled(false);
    audit::resetForTest();
    audit::setCapacity(1024);
  }
  void TearDown() override {
    audit::setEnabled(false);
    audit::resetForTest();
    audit::setCapacity(std::size_t(1) << 16);
  }
};

/// Runs \p Rounds rounds of \p Threads threads each doing \p Body(tid),
/// joining between rounds (the joins are the quiescent cuts that keep
/// audit windows bounded), collecting each round into \p Out.
template <typename Fn>
void runRounds(int Rounds, int Threads, Trace &Out, Fn Body) {
  for (int R = 0; R != Rounds; ++R) {
    std::vector<std::thread> Ws;
    for (int T = 0; T != Threads; ++T)
      Ws.emplace_back(Body, T);
    for (std::thread &W : Ws)
      W.join();
    Collected C = audit::collect();
    Out.Records.insert(Out.Records.end(), C.Records.begin(), C.Records.end());
    Out.Dropped = C.DroppedTotal;
  }
}

} // namespace

TEST_F(AuditLiveTest, ContendedTicketLockAuditsPass) {
  audit::setEnabled(true);
  rt::TicketLock<false> L;
  Trace Tr;
  Tr.Spec = "ticket";
  runRounds(6, 4, Tr, [&L](int) {
    for (int I = 0; I != 25; ++I) {
      L.acquire();
      L.release();
    }
  });
  audit::setEnabled(false);
  ASSERT_EQ(Tr.Records.size(), 6u * 4 * 25 * 2);
  ASSERT_EQ(Tr.Dropped, 0u);
  AuditReport R = auditTrace(Tr, Tr.Spec);
  EXPECT_EQ(R.Outcome, AuditOutcome::Pass) << R.Detail;
  EXPECT_EQ(R.OpsAudited, Tr.Records.size());
}

TEST_F(AuditLiveTest, ContendedSharedQueueAuditsPass) {
  audit::setEnabled(true);
  rt::SharedQueue<rt::TicketLock<false, false>> Q;
  Trace Tr;
  Tr.Spec = "queue";
  runRounds(6, 4, Tr, [&Q](int T) {
    for (int I = 0; I != 5; ++I) {
      Q.enqueue(T * 1000 + I);
      (void)Q.dequeue();
    }
  });
  audit::setEnabled(false);
  ASSERT_EQ(Tr.Records.size(), 6u * 4 * 5 * 2);
  ASSERT_EQ(Tr.Dropped, 0u);
  AuditReport R = auditTrace(Tr, Tr.Spec);
  EXPECT_EQ(R.Outcome, AuditOutcome::Pass) << R.Detail;
}

TEST_F(AuditLiveTest, AuditorCatchesBrokenLockRedHanded) {
  // The seeded torn-ticket bug (runtime/RtBrokenLock.h) hands duplicate
  // tickets to racing threads.  Hammer the lock in joined rounds until a
  // duplicate lands in the record (near-certain within a few rounds; the
  // cap is pure paranoia), then the auditor must refute the cumulative
  // trace with a concrete witness window.  If this test starts failing
  // at "never produced a duplicate", the scheduler got friendlier —
  // raise the rounds, don't touch the lock.
  audit::setEnabled(true);
  rt::BrokenTicketLock L;
  Trace Tr;
  Tr.Spec = "ticket";
  bool Duplicate = false;
  for (int Round = 0; Round != 200 && !Duplicate; ++Round) {
    runRounds(1, 4, Tr, [&L](int) {
      for (int I = 0; I != 50; ++I) {
        L.acquire();
        L.release();
      }
    });
    std::map<std::int64_t, int> Tickets;
    for (const OpRecord &R : Tr.Records)
      if (R.M == Method::Acq && ++Tickets[R.Ret] > 1)
        Duplicate = true;
  }
  audit::setEnabled(false);
  ASSERT_TRUE(Duplicate)
      << "broken lock never produced a duplicate ticket in "
      << Tr.Records.size() << " records — widen the hammer";
  ASSERT_EQ(Tr.Dropped, 0u);

  AuditReport R = auditTrace(Tr, Tr.Spec);
  EXPECT_EQ(R.Outcome, AuditOutcome::Fail)
      << "auditor must catch the seeded bug, got "
      << outcomeName(R.Outcome) << ": " << R.Detail;
  EXPECT_FALSE(R.WitnessOps.empty());
  EXPECT_NE(R.Detail.find("no linearization"), std::string::npos) << R.Detail;
}

/// Replays a dumped audit trace when --ccal-fuzz-replay=<file> names an
/// audit_pass / audit_fail dump; skipped otherwise.
TEST(FuzzReplayTest, ReplaysDumpedAuditTrace) {
  const std::string &Path = test::fuzzReplayPath();
  if (Path.empty())
    GTEST_SKIP() << "no --ccal-fuzz-replay=<file> given";
  test::FuzzDump D;
  std::string Err;
  ASSERT_TRUE(test::readFuzzDump(Path, D, Err)) << Err;
  if (D.Kind != "audit_pass" && D.Kind != "audit_fail")
    GTEST_SKIP() << "dump kind '" << D.Kind << "' is not handled here";
  Trace T;
  ASSERT_TRUE(traceFromJson(D.Body, T, Err)) << Err;
  AuditReport R = auditTrace(T, T.Spec);
  EXPECT_EQ(R.Outcome, D.Kind == "audit_pass" ? AuditOutcome::Pass
                                              : AuditOutcome::Fail)
      << R.Detail;
}

/// Checked-in past failures keep holding — the audit half of the
/// regression corpus.
TEST(FuzzCorpusTest, PastAuditTracesKeepTheirVerdicts) {
  for (const char *Kind : {"audit_pass", "audit_fail"}) {
    std::vector<std::string> Files = test::corpusFiles(CCAL_CORPUS_DIR, Kind);
    ASSERT_FALSE(Files.empty())
        << "no " << Kind << " corpus entries under " << CCAL_CORPUS_DIR;
    for (const std::string &Path : Files) {
      test::FuzzDump D;
      std::string Err;
      ASSERT_TRUE(test::readFuzzDump(Path, D, Err)) << Err;
      Trace T;
      ASSERT_TRUE(traceFromJson(D.Body, T, Err)) << Path << ": " << Err;
      AuditReport R = auditTrace(T, T.Spec);
      EXPECT_EQ(R.Outcome, std::string(Kind) == "audit_pass"
                               ? AuditOutcome::Pass
                               : AuditOutcome::Fail)
          << Path << ": " << R.Detail;
    }
  }
}
