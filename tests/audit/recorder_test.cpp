//===- tests/audit/recorder_test.cpp - Trace recorder tests ------------------===//
//
// The recorder's three load-bearing properties, each pinned here because
// the auditor's soundness leans on them: (1) disabled mode allocates
// NOTHING — always-on auditing is only deployable if the off switch is
// free; (2) a full ring drops the NEW record and counts it — committed
// history is never overwritten, and the drop count is what forces the
// checker to UNRESOLVED; (3) concurrent epoch collection loses no
// committed record — every record either appears in some epoch or is
// counted as dropped, under an 8-thread hammer (run under TSan in CI,
// where the ring's Head/Tail release/acquire handshake is the claim on
// trial).
//
//===----------------------------------------------------------------------===//

#include "audit/Recorder.h"

#include "audit/AuditChecker.h"
#include "audit/Trace.h"
#include "runtime/RtSharedQueue.h"
#include "runtime/RtTicketLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

using namespace ccal;
using namespace ccal::audit;

namespace {

/// Every test leaves the recorder disabled and empty for the next one.
class RecorderTest : public ::testing::Test {
protected:
  void SetUp() override {
    audit::setEnabled(false);
    audit::resetForTest();
  }
  void TearDown() override {
    audit::setEnabled(false);
    audit::resetForTest();
    audit::setCapacity(std::size_t(1) << 16);
  }
};

} // namespace

TEST_F(RecorderTest, DisabledModeRecordsAndAllocatesNothing) {
  ASSERT_FALSE(audit::enabled());
  EXPECT_EQ(audit::invokeNow(), 0u);

  // Drive real audited objects with recording off: the hooks must not
  // register a thread buffer, let alone a record.
  rt::TicketLock<false> L;
  rt::SharedQueue<rt::TicketLock<false, false>> Q;
  std::thread T([&] {
    for (int I = 0; I != 100; ++I) {
      L.acquire();
      L.release();
      Q.enqueue(I);
      (void)Q.dequeue();
    }
  });
  T.join();

  EXPECT_EQ(audit::threadBufferCount(), 0u)
      << "disabled recording must not allocate thread buffers";
  Collected C = audit::collect();
  EXPECT_TRUE(C.Records.empty());
  EXPECT_EQ(C.Dropped, 0u);
  EXPECT_EQ(audit::droppedTotal(), 0u);
}

TEST_F(RecorderTest, RuntimeObjectsRecordFaithfully) {
  audit::setEnabled(true);
  rt::TicketLock<false> L;
  rt::SharedQueue<rt::TicketLock<false, false>> Q;
  std::thread T([&] {
    for (int I = 0; I != 3; ++I) {
      L.acquire();
      L.release();
    }
    Q.enqueue(41);
    Q.enqueue(42);
    (void)Q.dequeue();
  });
  T.join();
  audit::setEnabled(false);

  Collected C = audit::collect();
  ASSERT_EQ(C.Records.size(), 9u); // 3 acq + 3 rel + 2 enQ + 1 deQ
  EXPECT_EQ(C.Epoch, 1u);
  EXPECT_EQ(C.Dropped, 0u);

  std::map<std::uint64_t, int> PerObj;
  int Acqs = 0;
  for (const OpRecord &R : C.Records) {
    EXPECT_EQ(R.Tid, 1u); // one recording thread, ids are dense from 1
    EXPECT_LE(R.InvokeNs, R.ResponseNs);
    ++PerObj[R.Obj];
    if (R.M == Method::Acq) {
      EXPECT_EQ(R.Ret, Acqs++) << "acq must record its FAI ticket";
    }
    if (R.M == Method::Enq) {
      EXPECT_TRUE(R.HasArg);
      EXPECT_GE(R.Arg, 41);
    }
    if (R.M == Method::Deq) {
      EXPECT_EQ(R.Ret, 41) << "deQ must record the dequeued value";
    }
  }
  ASSERT_EQ(PerObj.size(), 2u)
      << "lock and queue must record distinct object identities (and the "
         "queue's internal Audit=false lock none at all)";

  // The recorded epoch audits PASS end to end.
  for (const auto &[Obj, N] : PerObj) {
    Trace Tr = traceOf(C, N == 6 ? "ticket" : "queue");
    std::vector<OpRecord> Mine;
    for (const OpRecord &R : C.Records)
      if (R.Obj == Obj)
        Mine.push_back(R);
    Tr.Records = Mine;
    AuditReport Rep = auditTrace(Tr, Tr.Spec);
    EXPECT_EQ(Rep.Outcome, AuditOutcome::Pass) << Rep.Detail;
  }
}

TEST_F(RecorderTest, FullRingDropsNewRecordsAndForcesUnresolved) {
  audit::setCapacity(8);
  audit::setEnabled(true);
  rt::TicketLock<false> L;
  std::thread T([&] {
    for (int I = 0; I != 10; ++I) { // 20 records into an 8-slot ring
      L.acquire();
      L.release();
    }
  });
  T.join();
  audit::setEnabled(false);

  Collected C = audit::collect();
  ASSERT_EQ(C.Records.size(), 8u) << "ring holds exactly its capacity";
  EXPECT_EQ(C.Dropped, 12u);
  EXPECT_EQ(C.DroppedTotal, 12u);
  EXPECT_EQ(audit::droppedTotal(), 12u);
  // Drop-new, never overwrite: the survivors are the FIRST eight records
  // (tickets 0..3), not the last.
  int Acqs = 0;
  for (const OpRecord &R : C.Records)
    if (R.M == Method::Acq) {
      EXPECT_EQ(R.Ret, Acqs++);
    }
  EXPECT_EQ(Acqs, 4);

  // The perfectly linearizable survivors still audit UNRESOLVED — the 12
  // missing records could hide anything.
  AuditReport Rep = auditTrace(traceOf(C, "ticket"), "ticket");
  EXPECT_EQ(Rep.Outcome, AuditOutcome::Unresolved);
  EXPECT_NE(Rep.Detail.find("dropped"), std::string::npos) << Rep.Detail;
}

TEST_F(RecorderTest, ConcurrentCollectionLosesNoCommittedEvents) {
  // Small rings + a draining collector: records race collection cuts
  // constantly, and every committed record must land in exactly one epoch
  // (or be counted dropped).  TSan checks the handshake in CI.
  constexpr int Threads = 8;
  constexpr int OpsPerThread = 2000;
  audit::setCapacity(64);
  audit::setEnabled(true);

  std::atomic<bool> Done{false};
  std::uint64_t CollectedCount = 0, DroppedAtEnd = 0;
  std::uint64_t Epochs = 0;
  std::map<std::uint64_t, std::vector<OpRecord>> PerTid;
  std::thread Collector([&] {
    auto Drain = [&](const Collected &C) {
      CollectedCount += C.Records.size();
      DroppedAtEnd = C.DroppedTotal;
      Epochs = C.Epoch;
      for (const OpRecord &R : C.Records)
        PerTid[R.Tid].push_back(R);
    };
    while (!Done.load(std::memory_order_acquire))
      Drain(audit::collect());
    Drain(audit::collect()); // final sweep after all writers joined
  });

  int Dummy = 0;
  std::vector<std::thread> Workers;
  for (int W = 0; W != Threads; ++W)
    Workers.emplace_back([&Dummy] {
      for (int I = 0; I != OpsPerThread; ++I) {
        std::uint64_t Inv = audit::invokeNow();
        audit::record(&Dummy, Method::Acq, /*HasArg=*/false, 0, I, Inv);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  Done.store(true, std::memory_order_release);
  Collector.join();
  audit::setEnabled(false);

  EXPECT_EQ(CollectedCount + DroppedAtEnd,
            static_cast<std::uint64_t>(Threads) * OpsPerThread)
      << "every committed record is collected or counted dropped";
  EXPECT_GE(Epochs, 1u);
  ASSERT_EQ(PerTid.size(), static_cast<std::size_t>(Threads));
  for (const auto &[Tid, Records] : PerTid) {
    // Per-thread program order survives both the ring and the epoch
    // boundaries: rets were written in increasing order.
    for (std::size_t I = 1; I < Records.size(); ++I) {
      ASSERT_LT(Records[I - 1].Ret, Records[I].Ret)
          << "tid " << Tid << " record order broken at " << I;
      ASSERT_LE(Records[I - 1].InvokeNs, Records[I].InvokeNs);
    }
  }
}

TEST_F(RecorderTest, CapacityIsClampedAndAppliesToNewBuffers) {
  audit::setCapacity(1);
  EXPECT_EQ(audit::capacity(), 8u) << "capacity clamps to a minimum of 8";
  audit::setCapacity(1024);
  EXPECT_EQ(audit::capacity(), 1024u);
}

TEST_F(RecorderTest, ReenabledAfterResetStartsClean) {
  audit::setEnabled(true);
  int Dummy = 0;
  std::uint64_t Inv = audit::invokeNow();
  audit::record(&Dummy, Method::Acq, false, 0, 0, Inv);
  EXPECT_EQ(audit::threadBufferCount(), 1u);
  audit::resetForTest();
  EXPECT_EQ(audit::threadBufferCount(), 0u);
  // The thread's cached ring was invalidated: the next record
  // re-registers instead of writing into a forgotten buffer.
  Inv = audit::invokeNow();
  audit::record(&Dummy, Method::Acq, false, 0, 7, Inv);
  Collected C = audit::collect();
  ASSERT_EQ(C.Records.size(), 1u);
  EXPECT_EQ(C.Records[0].Ret, 7);
  EXPECT_EQ(C.Records[0].Tid, 1u) << "tids restart dense after reset";
}
