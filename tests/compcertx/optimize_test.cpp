//===- tests/compcertx/optimize_test.cpp - Peephole optimizer tests -------------===//

#include "compcertx/Optimize.h"

#include "compcertx/CodeGen.h"
#include "compcertx/Linker.h"
#include "compcertx/Validate.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

ClightModule makeModule(const std::string &Src) {
  ClightModule M = parseModuleOrDie("m", Src);
  typeCheckOrDie(M);
  return M;
}

PrimHandler noPrims() {
  return [](const std::string &,
            const std::vector<std::int64_t> &) -> std::optional<std::int64_t> {
    return std::nullopt;
  };
}

/// Compiles with and without optimization and runs both on the same case.
void expectSameBehavior(const ClightModule &M, const std::string &Fn,
                        std::vector<std::int64_t> Args) {
  AsmProgram Plain = compileModule(M);
  AsmProgram Optim = compileModule(M);
  optimizeProgram(Optim);

  AsmProgramPtr PlainP = linkPrograms("plain", {&Plain});
  AsmProgramPtr OptimP = linkPrograms("optim", {&Optim});
  VmRun A = runVmSequential(PlainP, Fn, Args, noPrims());
  VmRun B = runVmSequential(OptimP, Fn, Args, noPrims());
  EXPECT_EQ(A.Ret.has_value(), B.Ret.has_value());
  if (A.Ret && B.Ret)
    EXPECT_EQ(*A.Ret, *B.Ret);
  EXPECT_EQ(A.Globals, B.Globals);
}

} // namespace

TEST(OptimizeTest, ConstantFoldingShrinksCode) {
  ClightModule M = makeModule("int f() { return 2 * 3 + 4 - 1; }");
  AsmProgram P = compileModule(M);
  size_t Before = P.Funcs[0].Code.size();
  OptimizeStats S = optimizeProgram(P);
  EXPECT_GT(S.Folded, 0u);
  EXPECT_LT(P.Funcs[0].Code.size(), Before);
  AsmProgramPtr Linked = linkPrograms("p", {&P});
  EXPECT_EQ(runVmSequential(Linked, "f", {}, noPrims()).Ret, 9);
}

TEST(OptimizeTest, PreservesDivisionByZeroTrap) {
  // `1/0` must still trap after optimization: folding it away would be a
  // miscompilation ("going wrong" must be preserved).
  ClightModule M = makeModule("int f() { return 1 / 0; }");
  AsmProgram P = compileModule(M);
  optimizeProgram(P);
  AsmProgramPtr Linked = linkPrograms("p", {&P});
  VmRun R = runVmSequential(Linked, "f", {}, noPrims());
  EXPECT_FALSE(R.Ret.has_value());
  EXPECT_NE(R.Error.find("division"), std::string::npos);
}

TEST(OptimizeTest, FusesNegatedComparisons) {
  // `!(a < b)` becomes a single Ge.
  ClightModule M = makeModule("int f(int a, int b) { return !(a < b); }");
  AsmProgram P = compileModule(M);
  OptimizeStats S = optimizeProgram(P);
  EXPECT_GT(S.FusedCompares, 0u);
  expectSameBehavior(M, "f", {1, 2});
  expectSameBehavior(M, "f", {2, 1});
  expectSameBehavior(M, "f", {2, 2});
}

TEST(OptimizeTest, ConstantConditionBecomesJump) {
  ClightModule M = makeModule(R"(
    int f(int x) {
      if (1) { return x + 1; }
      return x - 1;
    }
  )");
  AsmProgram P = compileModule(M);
  OptimizeStats S = optimizeProgram(P);
  EXPECT_GT(S.ConstBranches, 0u);
  expectSameBehavior(M, "f", {10});
}

TEST(OptimizeTest, WhileTrueLoopsSurvive) {
  // `while (1)` contains a constant branch and a back jump; optimization
  // must keep the loop structure (and the break) intact.
  ClightModule M = makeModule(R"(
    int f(int n) {
      int i = 0;
      while (1) {
        i = i + 1;
        if (i >= n) { break; }
      }
      return i;
    }
  )");
  AsmProgram P = compileModule(M);
  optimizeProgram(P);
  AsmProgramPtr Linked = linkPrograms("p", {&P});
  EXPECT_EQ(runVmSequential(Linked, "f", {5}, noPrims()).Ret, 5);
  EXPECT_EQ(runVmSequential(Linked, "f", {-3}, noPrims()).Ret, 1);
}

TEST(OptimizeTest, BranchTargetsRemappedThroughDeletions) {
  ClightModule M = makeModule(R"(
    int f(int x) {
      int acc = 0;
      if (x > 0 && 1) { acc = acc + (2 * 3); }
      else { acc = acc - (4 + 5); }
      while (acc > 100) { acc = acc - 100; }
      return acc;
    }
  )");
  expectSameBehavior(M, "f", {1});
  expectSameBehavior(M, "f", {0});
  expectSameBehavior(M, "f", {-7});
}

TEST(OptimizeTest, IdempotentAtFixpoint) {
  ClightModule M = makeModule("int f() { return 1 + 2 * 3; }");
  AsmProgram P = compileModule(M);
  optimizeProgram(P);
  std::vector<Instr> Once = P.Funcs[0].Code;
  OptimizeStats Again = optimizeProgram(P);
  EXPECT_EQ(Again.total(), 0u);
  EXPECT_EQ(P.Funcs[0].Code.size(), Once.size());
}

TEST(OptimizeTest, PrimitiveTracePreserved) {
  ClightModule M = makeModule(R"(
    extern int p(int x);
    int f(int a) { return (0 || p(1 + 2)) + (1 && p(a)); }
  )");
  AsmProgram Plain = compileModule(M);
  AsmProgram Optim = compileModule(M);
  optimizeProgram(Optim);
  AsmProgramPtr PlainP = linkPrograms("plain", {&Plain});
  AsmProgramPtr OptimP = linkPrograms("optim", {&Optim});
  auto Prims = []() {
    return [](const std::string &, const std::vector<std::int64_t> &Args)
               -> std::optional<std::int64_t> { return Args[0] * 2; };
  };
  VmRun A = runVmSequential(PlainP, "f", {5}, Prims());
  VmRun B = runVmSequential(OptimP, "f", {5}, Prims());
  ASSERT_TRUE(A.Ret && B.Ret);
  EXPECT_EQ(*A.Ret, *B.Ret);
  EXPECT_EQ(A.Trace, B.Trace); // same primitive calls in the same order
}

// ---- Randomized: optimized code agrees with the reference interpreter
// on the same fuzz corpus shape the unoptimized fuzzer uses. ----

class OptimizedDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizedDiffTest, OptimizedAgreesWithInterpreter) {
  Rng R(GetParam());
  for (int Prog = 0; Prog != 15; ++Prog) {
    // Small arithmetic-heavy functions exercise the folder hard.
    std::string Src = "int f(int a, int b) { int acc = 0;\n";
    for (int S = 0; S != 6; ++S) {
      std::int64_t K1 = R.range(-9, 9), K2 = R.range(-9, 9);
      switch (R.below(4)) {
      case 0:
        Src += "  acc = acc + (" + std::to_string(K1) + " * " +
               std::to_string(K2) + " + a);\n";
        break;
      case 1:
        Src += "  if (" + std::to_string(K1) + " < " + std::to_string(K2) +
               ") { acc = acc - b; } else { acc = acc + 1; }\n";
        break;
      case 2:
        Src += "  acc = acc + !(a < " + std::to_string(K1) + ");\n";
        break;
      default:
        Src += "  while (acc > 50) { acc = acc - (25 + " +
               std::to_string(K1 < 0 ? -K1 : K1) + "); }\n";
        break;
      }
    }
    Src += "  return acc; }\n";
    ClightModule M = makeModule(Src);

    AsmProgram P = compileModule(M);
    optimizeProgram(P);
    AsmProgramPtr Linked = linkPrograms("p", {&P});

    for (int C = 0; C != 6; ++C) {
      std::vector<std::int64_t> Args = {R.range(-50, 50), R.range(-50, 50)};
      Interp Ref(M, noPrims());
      std::optional<std::int64_t> Want = Ref.call("f", Args);
      VmRun Got = runVmSequential(Linked, "f", Args, noPrims());
      ASSERT_EQ(Want.has_value(), Got.Ret.has_value()) << Src;
      if (Want)
        EXPECT_EQ(*Want, *Got.Ret) << Src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizedDiffTest,
                         ::testing::Values(3, 14, 15, 92, 65, 35));
