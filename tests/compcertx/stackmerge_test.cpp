//===- tests/compcertx/stackmerge_test.cpp - §5.5 merged stacks tests -----------===//

#include "compcertx/StackMerge.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(StackMergeTest, SingleThreadPushPop) {
  MergedStackSim Sim(1);
  Sim.yieldTo(0);
  std::uint32_t B = Sim.pushFrame(4);
  EXPECT_EQ(B, 0u);
  EXPECT_TRUE(Sim.storeTop(1, 42));
  EXPECT_EQ(Sim.loadTop(1), 42);
  EXPECT_TRUE(Sim.invariantHolds());
  Sim.popFrame();
  EXPECT_TRUE(Sim.invariantHolds());
}

TEST(StackMergeTest, TwoThreadsInterleavedFrames) {
  MergedStackSim Sim(2);
  Sim.yieldTo(0);
  Sim.pushFrame(2); // block 0, thread 0
  EXPECT_TRUE(Sim.invariantHolds());

  Sim.yieldTo(1);   // thread 1 lifts a placeholder for block 0
  EXPECT_EQ(Sim.privateMem(1).nb(), 1u);
  Sim.pushFrame(3); // block 1, thread 1
  EXPECT_TRUE(Sim.invariantHolds());

  Sim.yieldTo(0);   // thread 0 lifts a placeholder for block 1
  EXPECT_EQ(Sim.privateMem(0).nb(), 2u);
  Sim.pushFrame(2); // block 2, thread 0 again
  EXPECT_TRUE(Sim.invariantHolds());

  // Loads respect block ownership in the composed memory (axiom Ld).
  EXPECT_TRUE(Sim.storeTop(0, 7));
  EXPECT_EQ(Sim.merged().load(MemLoc{2, 0}), 7);
  EXPECT_FALSE(Sim.privateMem(1).load(MemLoc{2, 0}).has_value());
}

TEST(StackMergeTest, PopKeepsBlockNumbersAllocated) {
  MergedStackSim Sim(2);
  Sim.yieldTo(0);
  Sim.pushFrame(1);
  Sim.popFrame();
  Sim.yieldTo(1);
  Sim.pushFrame(1); // gets a *fresh* block number (CompCert style)
  EXPECT_EQ(Sim.merged().nb(), 2u);
  EXPECT_TRUE(Sim.invariantHolds());
}

TEST(StackMergeTest, CallReturnDepthMirrorsVm) {
  // A call chain of depth 5 then full unwind, with yields interleaved.
  MergedStackSim Sim(2);
  for (int Round = 0; Round != 2; ++Round) {
    for (unsigned T = 0; T != 2; ++T) {
      Sim.yieldTo(T);
      for (int D = 0; D != 5; ++D) {
        Sim.pushFrame(D + 1);
        ASSERT_TRUE(Sim.invariantHolds());
      }
      for (int D = 0; D != 5; ++D) {
        Sim.popFrame();
        ASSERT_TRUE(Sim.invariantHolds());
      }
    }
  }
}

class StackMergeRandomTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StackMergeRandomTest, InvariantHoldsUnderRandomSchedules) {
  Rng R(GetParam());
  unsigned Threads = 2 + static_cast<unsigned>(R.below(3));
  MergedStackSim Sim(Threads);
  Sim.yieldTo(0);
  for (int Op = 0; Op != 300; ++Op) {
    switch (R.below(4)) {
    case 0:
      Sim.yieldTo(static_cast<unsigned>(R.below(Threads)));
      break;
    case 1:
      Sim.pushFrame(R.range(1, 6));
      break;
    case 2:
      if (!Sim.frames(Sim.current()).empty())
        Sim.popFrame();
      break;
    default:
      if (!Sim.frames(Sim.current()).empty())
        Sim.storeTop(0, R.range(-99, 99));
      break;
    }
    ASSERT_TRUE(Sim.invariantHolds()) << "after op " << Op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackMergeRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));
