//===- tests/compcertx/validate_test.cpp - Translation validation tests ---------===//

#include "compcertx/Validate.h"

#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

ClightModule makeModule(const std::string &Src) {
  ClightModule M = parseModuleOrDie("m", Src);
  typeCheckOrDie(M);
  return M;
}

std::function<PrimHandler()> countingPrims() {
  return []() -> PrimHandler {
    auto Counter = std::make_shared<std::int64_t>(0);
    return [Counter](const std::string &Name,
                     const std::vector<std::int64_t> &Args)
               -> std::optional<std::int64_t> {
      // Deterministic in (call index, name, args).
      std::int64_t V = ++*Counter * 7 + static_cast<std::int64_t>(Name.size());
      for (std::int64_t A : Args)
        V += A;
      return V;
    };
  };
}

} // namespace

TEST(ValidateTest, StraightLineProgramsAgree) {
  ClightModule M = makeModule(R"(
    int g = 3;
    int f(int a, int b) {
      g = g + a;
      return g * b - a / (b + 1);
    }
  )");
  std::vector<ValidationCase> Cases = {
      {"f", {1, 2}}, {"f", {-5, 3}}, {"f", {100, 1}}, {"f", {0, 0}}};
  ValidationReport R = validateTranslation(M, Cases, countingPrims());
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.CasesChecked, 4u);
}

TEST(ValidateTest, ControlFlowAgrees) {
  ClightModule M = makeModule(R"(
    int collatz(int n) {
      int steps = 0;
      while (n != 1 && steps < 200) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
      }
      return steps;
    }
  )");
  std::vector<ValidationCase> Cases;
  for (std::int64_t N = 1; N <= 30; ++N)
    Cases.push_back({"collatz", {N}});
  ValidationReport R = validateTranslation(M, Cases, countingPrims());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(ValidateTest, PrimitiveTracesCompared) {
  ClightModule M = makeModule(R"(
    extern int poll(int x);
    int f(int n) {
      int s = 0;
      int i = 0;
      while (i < n) {
        s = s + poll(i);
        i = i + 1;
      }
      return s;
    }
  )");
  std::vector<ValidationCase> Cases = {{"f", {0}}, {"f", {1}}, {"f", {5}}};
  ValidationReport R = validateTranslation(M, Cases, countingPrims());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(ValidateTest, ShortCircuitPrimSkippingAgrees) {
  // The compiled code must skip exactly the same primitive calls as the
  // reference semantics (the classic miscompilation caught by trace
  // comparison).
  ClightModule M = makeModule(R"(
    extern int p(int x);
    int f(int a, int b) { return (a && p(1)) + (b || p(2)); }
  )");
  std::vector<ValidationCase> Cases = {
      {"f", {0, 0}}, {"f", {0, 1}}, {"f", {1, 0}}, {"f", {1, 1}}};
  ValidationReport R = validateTranslation(M, Cases, countingPrims());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(ValidateTest, GoingWrongIsPreservedTogether) {
  // Both sides trap on the same division by zero: validation counts the
  // case as agreeing (the compiler preserved the error).
  ClightModule M = makeModule("int f(int x) { return 10 / x; }");
  std::vector<ValidationCase> Cases = {{"f", {0}}, {"f", {5}}};
  ValidationReport R = validateTranslation(M, Cases, countingPrims());
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.BothStuck, 1u);
}

TEST(ValidateTest, ArraysAndGlobalsAgree) {
  ClightModule M = makeModule(R"(
    int a[8];
    int h = 0;
    void push_val(int v) {
      a[h % 8] = v;
      h = h + 1;
    }
    int sum() {
      int s = 0;
      int i = 0;
      while (i < 8) { s = s + a[i]; i = i + 1; }
      return s;
    }
    int driver(int n) {
      int i = 0;
      while (i < n) { push_val(i * i); i = i + 1; }
      return sum();
    }
  )");
  std::vector<ValidationCase> Cases = {{"driver", {3}}, {"driver", {12}}};
  ValidationReport R = validateTranslation(M, Cases, countingPrims());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(ValidateTest, RecursionAgrees) {
  ClightModule M = makeModule(R"(
    int ack(int m, int n) {
      if (m == 0) { return n + 1; }
      if (n == 0) { return ack(m - 1, 1); }
      return ack(m - 1, ack(m, n - 1));
    }
  )");
  std::vector<ValidationCase> Cases = {{"ack", {2, 3}}, {"ack", {1, 5}}};
  ValidationReport R = validateTranslation(M, Cases, countingPrims());
  EXPECT_TRUE(R.Ok) << R.Error;
}
