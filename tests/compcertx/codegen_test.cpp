//===- tests/compcertx/codegen_test.cpp - Compiler and linker tests -------------===//

#include "compcertx/CodeGen.h"
#include "compcertx/Linker.h"
#include "compcertx/Validate.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

ClightModule makeModule(const std::string &Name, const std::string &Src) {
  ClightModule M = parseModuleOrDie(Name, Src);
  typeCheckOrDie(M);
  return M;
}

PrimHandler echoPrims() {
  return [](const std::string &, const std::vector<std::int64_t> &Args)
             -> std::optional<std::int64_t> {
    return Args.empty() ? 1 : Args[0] + 1;
  };
}

} // namespace

TEST(CodeGenTest, CompilesSimpleFunction) {
  ClightModule M = makeModule("m", "int f(int a) { return a * 2 + 1; }");
  AsmProgram P = compileModule(M);
  ASSERT_EQ(P.Funcs.size(), 1u);
  EXPECT_EQ(P.Funcs[0].Name, "f");
  EXPECT_EQ(P.Funcs[0].NumParams, 1u);
  EXPECT_FALSE(P.Linked);
}

TEST(CodeGenTest, ExternCallsBecomePrims) {
  ClightModule M = makeModule("m", R"(
    extern int p(int x);
    int f() { return p(3); }
  )");
  AsmProgram P = compileModule(M);
  bool SawPrim = false;
  for (const Instr &I : P.Funcs[0].Code)
    if (I.Op == Opcode::Prim && I.Sym == "p")
      SawPrim = true;
  EXPECT_TRUE(SawPrim);
}

TEST(LinkerTest, ResolvesGlobalsSequentially) {
  ClightModule A = makeModule("a", "int x = 1; int arr[3];");
  ClightModule B = makeModule("b", "int y = 2;");
  AsmProgramPtr P = compileAndLink("ab", {&A, &B});
  EXPECT_EQ(P->globalAddr("x"), 0);
  EXPECT_EQ(P->globalAddr("arr"), 1);
  EXPECT_EQ(P->globalAddr("y"), 4);
  EXPECT_EQ(P->globalWords(), 5);
  EXPECT_EQ(P->initialGlobals(),
            (std::vector<std::int64_t>{1, 0, 0, 0, 2}));
}

TEST(LinkerTest, CrossModulePrimBecomesCall) {
  // Module A calls helper() declared extern; module B defines it.  After
  // linking, the Prim must have become a direct Call (§5.5's layer
  // linking: an intermediate layer's primitive turns into plain code).
  ClightModule A = makeModule("a", R"(
    extern int helper(int x);
    int main2() { return helper(20); }
  )");
  ClightModule B = makeModule("b", "int helper(int x) { return x * 2; }");
  AsmProgramPtr P = compileAndLink("ab", {&A, &B});

  const AsmFunc *Main = P->findFunc("main2");
  ASSERT_NE(Main, nullptr);
  bool SawCall = false;
  for (const Instr &I : Main->Code) {
    EXPECT_NE(I.Op, Opcode::Prim); // nothing unresolved left
    if (I.Op == Opcode::Call && I.Sym == "helper")
      SawCall = true;
  }
  EXPECT_TRUE(SawCall);

  VmRun Run = runVmSequential(P, "main2", {}, echoPrims());
  EXPECT_EQ(Run.Ret, 40);
}

TEST(LinkerTest, UnresolvedExternStaysPrim) {
  ClightModule A = makeModule("a", R"(
    extern int prim(int x);
    int main2() { return prim(20); }
  )");
  AsmProgramPtr P = compileAndLink("a", {&A});
  const AsmFunc *Main = P->findFunc("main2");
  bool SawPrim = false;
  for (const Instr &I : Main->Code)
    if (I.Op == Opcode::Prim && I.Sym == "prim")
      SawPrim = true;
  EXPECT_TRUE(SawPrim);
  VmRun Run = runVmSequential(P, "main2", {}, echoPrims());
  EXPECT_EQ(Run.Ret, 21);
}

TEST(LinkerTest, DuplicateDefinitionAborts) {
  ClightModule A = makeModule("a", "int f() { return 1; }");
  ClightModule B = makeModule("b", "int f() { return 2; }");
  EXPECT_DEATH(compileAndLink("ab", {&A, &B}), "duplicate");
}

TEST(LinkerTest, ArityMismatchAcrossModulesAborts) {
  ClightModule A = makeModule("a", R"(
    extern int helper(int x, int y);
    int main2() { return helper(1, 2); }
  )");
  ClightModule B = makeModule("b", "int helper(int x) { return x; }");
  EXPECT_DEATH(compileAndLink("ab", {&A, &B}), "arity");
}

TEST(LinkerTest, DisassemblyMentionsEverything) {
  ClightModule A = makeModule("a", R"(
    int g = 5;
    int f() { return g; }
  )");
  AsmProgramPtr P = compileAndLink("a", {&A});
  std::string Dis = P->disassemble();
  EXPECT_NE(Dis.find("global g"), std::string::npos);
  EXPECT_NE(Dis.find("f(params=0"), std::string::npos);
}
