//===- tests/compcertx/fuzz_test.cpp - Random-program differential testing ------===//
//
// A ClightX program fuzzer: generates random well-typed modules and checks
// that the reference interpreter, the compiled LAsm code, AND the
// Optimize-pass output of that code agree on results, primitive traces,
// and final memory — the per-program form of CompCertX's correctness
// theorem plus translation validation of the optimizer, swept over program
// space.
//
// On failure the generated program is dumped next to the test binary
// (ccal_fuzz_clightx_seed<N>.txt) and can be replayed with
// --ccal-fuzz-replay=<file>; past failures live on as the checked-in
// corpus under tests/corpus/.  CCAL_FUZZ_PROGRAMS scales the per-seed
// program budget (CI's fuzz job raises it well above the default).
//
//===-------------------------------------------------------------------------===//

#include "compcertx/Validate.h"

#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "support/Rng.h"
#include "support/Text.h"
#include "tests/common/fuzz_support.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace ccal;

namespace {

/// Generates random expressions/statements.  Loops are always of the
/// bounded `i < K` counter shape so generated programs terminate.
class ProgramGen {
public:
  explicit ProgramGen(std::uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Src.clear();
    Src += "extern int prim0(int x);\n";
    Src += "extern int prim1(int x, int y);\n";
    NumGlobals = 2 + static_cast<unsigned>(R.below(3));
    for (unsigned G = 0; G != NumGlobals; ++G)
      Src += strFormat("int g%u = %lld;\n", G,
                       static_cast<long long>(R.range(-5, 5)));
    Src += strFormat("int arr0[%u];\n", ArraySize);

    // A couple of helper functions callable from the entry point.
    NumHelpers = 1 + static_cast<unsigned>(R.below(2));
    for (unsigned H = 0; H != NumHelpers; ++H)
      genFunction(strFormat("helper%u", H), /*CanCallHelpers=*/false);
    genFunction("entry", /*CanCallHelpers=*/true);
    return Src;
  }

private:
  void genFunction(const std::string &Name, bool CanCallHelpers) {
    Vars = {"a", "b"};
    NextVar = 0;
    CallHelpers = CanCallHelpers;
    Src += strFormat("int %s(int a, int b) {\n", Name.c_str());
    unsigned NumStmts = 2 + static_cast<unsigned>(R.below(5));
    for (unsigned S = 0; S != NumStmts; ++S)
      genStmt(1, 2);
    Src += strFormat("  return %s;\n}\n", genExpr(2).c_str());
  }

  void indent(unsigned Depth) { Src += std::string(Depth * 2, ' '); }

  void genStmt(unsigned Depth, unsigned MaxDepth) {
    switch (R.below(Depth >= MaxDepth ? 4 : 6)) {
    case 0: { // new local
      std::string V = strFormat("v%u", NextVar++);
      indent(Depth);
      Src += strFormat("int %s = %s;\n", V.c_str(), genExpr(2).c_str());
      Vars.push_back(V);
      return;
    }
    case 1: // assignment to a local
      indent(Depth);
      Src += strFormat("%s = %s;\n",
                       Vars[R.below(Vars.size())].c_str(),
                       genExpr(2).c_str());
      return;
    case 2: // global/array assignment
      indent(Depth);
      if (R.chance(1, 2))
        Src += strFormat("g%llu = %s;\n",
                         static_cast<unsigned long long>(R.below(NumGlobals)),
                         genExpr(2).c_str());
      else
        Src += strFormat("arr0[%s %% %u] = %s;\n", genExpr(1).c_str(),
                         ArraySize, genExpr(2).c_str());
      return;
    case 3: // expression statement (may call primitives)
      indent(Depth);
      Src += genExpr(2) + ";\n";
      return;
    case 4: { // bounded while
      std::string I = strFormat("v%u", NextVar++);
      Vars.push_back(I);
      indent(Depth);
      Src += strFormat("int %s = 0;\n", I.c_str());
      indent(Depth);
      Src += strFormat("while (%s < %lld) {\n", I.c_str(),
                       static_cast<long long>(R.range(1, 4)));
      {
        // Locals declared in the body go out of scope at the brace.
        size_t Scope = Vars.size();
        genStmt(Depth + 1, MaxDepth);
        Vars.resize(Scope);
      }
      indent(Depth + 1);
      Src += strFormat("%s = %s + 1;\n", I.c_str(), I.c_str());
      indent(Depth);
      Src += "}\n";
      return;
    }
    default: // if/else
      indent(Depth);
      Src += strFormat("if (%s) {\n", genExpr(2).c_str());
      {
        size_t Scope = Vars.size();
        genStmt(Depth + 1, MaxDepth);
        Vars.resize(Scope);
      }
      if (R.chance(1, 2)) {
        indent(Depth);
        Src += "} else {\n";
        size_t Scope = Vars.size();
        genStmt(Depth + 1, MaxDepth);
        Vars.resize(Scope);
      }
      indent(Depth);
      Src += "}\n";
      return;
    }
  }

  std::string genExpr(unsigned Depth) {
    if (Depth == 0) {
      switch (R.below(3)) {
      case 0:
        return std::to_string(R.range(-9, 9));
      case 1:
        return Vars[R.below(Vars.size())];
      default:
        return strFormat("g%llu",
                         static_cast<unsigned long long>(R.below(NumGlobals)));
      }
    }
    switch (R.below(8)) {
    case 0:
      return strFormat("(%s + %s)", genExpr(Depth - 1).c_str(),
                       genExpr(Depth - 1).c_str());
    case 1:
      return strFormat("(%s - %s)", genExpr(Depth - 1).c_str(),
                       genExpr(Depth - 1).c_str());
    case 2:
      return strFormat("(%s * %s)", genExpr(Depth - 1).c_str(),
                       genExpr(Depth - 1).c_str());
    case 3: // division kept but may trap identically on both sides
      return strFormat("(%s / (%s * %s + 3))", genExpr(Depth - 1).c_str(),
                       genExpr(Depth - 1).c_str(), genExpr(Depth - 1).c_str());
    case 4:
      return strFormat("(%s %s %s)", genExpr(Depth - 1).c_str(),
                       R.chance(1, 2) ? "<" : "==",
                       genExpr(Depth - 1).c_str());
    case 5:
      return strFormat("(%s %s %s)", genExpr(Depth - 1).c_str(),
                       R.chance(1, 2) ? "&&" : "||",
                       genExpr(Depth - 1).c_str());
    case 6:
      if (R.chance(1, 2))
        return strFormat("prim0(%s)", genExpr(Depth - 1).c_str());
      return strFormat("prim1(%s, %s)", genExpr(Depth - 1).c_str(),
                       genExpr(Depth - 1).c_str());
    default:
      if (CallHelpers && NumHelpers > 0)
        return strFormat(
            "helper%llu(%s, %s)",
            static_cast<unsigned long long>(R.below(NumHelpers)),
            genExpr(Depth - 1).c_str(), genExpr(Depth - 1).c_str());
      return strFormat("arr0[%s %% %u]", genExpr(Depth - 1).c_str(),
                       ArraySize);
    }
  }

  Rng R;
  std::string Src;
  std::vector<std::string> Vars;
  unsigned NextVar = 0;
  unsigned NumGlobals = 0;
  unsigned NumHelpers = 0;
  bool CallHelpers = false;
  static constexpr unsigned ArraySize = 5;
};

std::function<PrimHandler()> fuzzPrims(std::uint64_t Seed) {
  return [Seed]() -> PrimHandler {
    auto State = std::make_shared<Rng>(Seed);
    return [State](const std::string &,
                   const std::vector<std::int64_t> &Args)
               -> std::optional<std::int64_t> {
      std::int64_t V = State->range(-20, 20);
      for (std::int64_t A : Args)
        V ^= (A & 0xff);
      return V;
    };
  };
}

/// Validates one ClightX source under the deterministic environment derived
/// from \p Seed — cases, primitive results, and budgets are all functions
/// of the seed, so a dumped (source, seed) pair replays exactly.
ValidationReport validateFuzzCase(const std::string &Src,
                                  std::uint64_t Seed, std::string &Why) {
  ParseResult PR = parseModule("fuzz", Src);
  if (!PR.ok()) {
    Why = "parse error: " + PR.Error;
    ValidationReport R;
    R.Ok = false;
    R.Error = Why;
    return R;
  }
  TypeCheckResult TR = typeCheck(PR.Module);
  if (!TR.ok()) {
    Why = "type error: " + TR.Error;
    ValidationReport R;
    R.Ok = false;
    R.Error = Why;
    return R;
  }

  std::vector<ValidationCase> Cases;
  Rng ArgsRng(Seed ^ 0x9e3779b97f4a7c15ull);
  for (unsigned C = 0; C != 5; ++C)
    Cases.push_back(
        {"entry", {ArgsRng.range(-10, 10), ArgsRng.range(-10, 10)}});

  // Generated programs can clobber their own loop counters and run to the
  // step limit; a modest budget keeps all sides' traces bounded
  // (divergence is then "all stuck", which counts as agreement).
  ValidationOptions Opts;
  Opts.MaxSteps = 100000;
  Opts.CheckOptimized = true; // three-way: interp vs LAsm vs optimized LAsm
  ValidationReport VR =
      validateTranslation(PR.Module, Cases, fuzzPrims(Seed), Opts);
  Why = VR.Error;
  return VR;
}

/// Per-seed program budget; the CI fuzz job raises it via CCAL_FUZZ_PROGRAMS.
unsigned fuzzProgramBudget() {
  if (const char *Env = std::getenv("CCAL_FUZZ_PROGRAMS"))
    if (unsigned N = static_cast<unsigned>(std::strtoul(Env, nullptr, 10)))
      return N;
  return 20;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

} // namespace

TEST_P(FuzzTest, CompiledAndOptimizedCodeAgreeWithReference) {
  std::uint64_t Seed = GetParam();
  const unsigned Budget = fuzzProgramBudget();
  std::uint64_t Rewrites = 0;
  for (unsigned Prog = 0; Prog != Budget; ++Prog) {
    std::uint64_t CaseSeed = Seed * 1000 + Prog;
    ProgramGen Gen(CaseSeed);
    std::string Src = Gen.generate();

    std::string Why;
    ValidationReport VR = validateFuzzCase(Src, CaseSeed, Why);
    Rewrites += VR.OptimizerRewrites;
    if (!VR.Ok) {
      std::string Dump = test::dumpFailure("clightx", CaseSeed, Src);
      FAIL() << Why << "\nseed: " << CaseSeed << "\ndump: " << Dump
             << "\nprogram:\n" << Src;
    }
  }
  // The differential only exercises the optimizer if it actually rewrote
  // something across the corpus; a silent no-op optimizer must not pass.
  EXPECT_GT(Rewrites, 0u) << "optimizer performed no rewrites over "
                          << Budget << " generated programs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Replays a dumped failing program when --ccal-fuzz-replay=<file> names a
/// kind=clightx dump; skipped otherwise.
TEST(FuzzReplayTest, ReplaysDumpedProgram) {
  const std::string &Path = test::fuzzReplayPath();
  if (Path.empty())
    GTEST_SKIP() << "no --ccal-fuzz-replay=<file> given";
  test::FuzzDump D;
  std::string Err;
  ASSERT_TRUE(test::readFuzzDump(Path, D, Err)) << Err;
  if (D.Kind != "clightx")
    GTEST_SKIP() << "dump kind '" << D.Kind << "' is not handled here";
  std::string Why;
  ValidationReport VR = validateFuzzCase(D.Body, D.Seed, Why);
  EXPECT_TRUE(VR.Ok) << Why << "\nprogram:\n" << D.Body;
}

/// Every checked-in past failure must keep validating — the regression
/// corpus under tests/corpus/.
TEST(FuzzCorpusTest, PastFailuresStayFixed) {
  std::vector<std::string> Files =
      test::corpusFiles(CCAL_CORPUS_DIR, "clightx");
  ASSERT_FALSE(Files.empty())
      << "no clightx corpus entries under " << CCAL_CORPUS_DIR;
  for (const std::string &Path : Files) {
    test::FuzzDump D;
    std::string Err;
    ASSERT_TRUE(test::readFuzzDump(Path, D, Err)) << Err;
    std::string Why;
    ValidationReport VR = validateFuzzCase(D.Body, D.Seed, Why);
    EXPECT_TRUE(VR.Ok) << Path << ": " << Why << "\nprogram:\n" << D.Body;
  }
}
