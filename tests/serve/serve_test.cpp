//===- tests/serve/serve_test.cpp - certd daemon integration tests -------------===//
//
// The verification service end to end, in-process: framing over real
// sockets, the job catalog, and a live daemon exercised the ways the
// ISSUE's acceptance bar demands — two clients paying for shared
// obligations once, a full queue rejecting whole batches, a timeout
// cancelling mid-exploration into a fail-closed truncation with no
// certificate stored, a client crashing mid-job without leaking the
// worker, and hostile frames (malformed, nested 100 deep, oversized)
// bouncing off the depth- and size-capped parser.
//
//===----------------------------------------------------------------------===//

#include "serve/Certd.h"
#include "serve/Client.h"

#include "cert/CertStore.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace ccal;
using namespace ccal::serve;
namespace fs = std::filesystem;

namespace {

/// Each test gets a private socket, a private certificate store, and a
/// clean registry; the global store is detached again afterwards.
class ServeTest : public ::testing::Test {
protected:
  void SetUp() override {
    WasEnabled = obs::enabled();
    obs::setEnabled(true);
    obs::metricsReset();
    static std::atomic<unsigned> Seq{0};
    const std::string Tag = std::to_string(::getpid()) + "_" +
                            std::to_string(Seq.fetch_add(1));
    // sun_path is ~108 bytes; keep the socket name short and unique
    // rather than test-name derived.
    Socket = (fs::path(::testing::TempDir()) / ("ccal_sv_" + Tag + ".sock"))
                 .string();
    StoreDir = fs::path(::testing::TempDir()) / ("ccal_sv_store_" + Tag);
    fs::remove_all(StoreDir);
    cert::setStoreDir(StoreDir.string());
  }
  void TearDown() override {
    cert::setStoreDir("");
    fs::remove_all(StoreDir);
    ::unlink(Socket.c_str());
    obs::metricsReset();
    obs::setEnabled(WasEnabled);
  }

  std::unique_ptr<Certd> startDaemon(unsigned Workers = 2,
                                     std::size_t QueueBound = 64) {
    CertdOptions O;
    O.SocketPath = Socket;
    O.Workers = Workers;
    O.QueueBound = QueueBound;
    auto D = std::make_unique<Certd>(O);
    std::string Err;
    if (!D->start(Err)) {
      ADD_FAILURE() << "daemon start failed: " << Err;
      return nullptr;
    }
    return D;
  }

  CertClient connected() {
    CertClient C;
    std::string Err;
    EXPECT_TRUE(C.connect(Socket, Err)) << Err;
    return C;
  }

  /// refine-* files currently in the store (the entries a verify mints).
  std::vector<fs::path> refineCerts() const {
    std::vector<fs::path> Out;
    std::error_code Ec;
    for (const fs::directory_entry &E :
         fs::directory_iterator(StoreDir, Ec))
      if (E.path().filename().string().rfind("refine-", 0) == 0)
        Out.push_back(E.path());
    return Out;
  }

  static bool waitFor(const std::function<bool()> &Cond,
                      std::chrono::milliseconds Deadline =
                          std::chrono::seconds(10)) {
    auto Until = std::chrono::steady_clock::now() + Deadline;
    while (std::chrono::steady_clock::now() < Until) {
      if (Cond())
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return Cond();
  }

  std::string Socket;
  fs::path StoreDir;
  bool WasEnabled = false;
};

} // namespace

// ---- wire protocol ----

TEST(ServeProtocolTest, FramesRoundTripOverASocketPair) {
  int Sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  std::string Err;
  ASSERT_TRUE(writeFrame(Sv[0], "hello", Err)) << Err;
  ASSERT_TRUE(writeFrame(Sv[0], "", Err)) << Err; // empty payload is legal
  ASSERT_TRUE(writeFrame(Sv[0], std::string(70000, 'x'), Err)) << Err;

  std::string P;
  EXPECT_EQ(readFrame(Sv[1], P, Err), FrameStatus::Ok);
  EXPECT_EQ(P, "hello");
  EXPECT_EQ(readFrame(Sv[1], P, Err), FrameStatus::Ok);
  EXPECT_EQ(P, "");
  EXPECT_EQ(readFrame(Sv[1], P, Err), FrameStatus::Ok);
  EXPECT_EQ(P.size(), 70000u);

  ::close(Sv[0]); // clean EOF lands exactly on a frame boundary
  EXPECT_EQ(readFrame(Sv[1], P, Err), FrameStatus::Eof);
  ::close(Sv[1]);
}

TEST(ServeProtocolTest, TornAndOversizedFramesAreErrors) {
  int Sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  std::string Err;

  // A header promising more bytes than ever arrive: torn frame.
  const unsigned char Short[4] = {0, 0, 0, 9};
  ASSERT_EQ(::write(Sv[0], Short, 4), 4);
  ASSERT_EQ(::write(Sv[0], "abc", 3), 3);
  ::close(Sv[0]);
  std::string P;
  EXPECT_EQ(readFrame(Sv[1], P, Err), FrameStatus::Error);
  ::close(Sv[1]);

  // A declared length beyond the cap errors BEFORE any allocation.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  const unsigned char Huge[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(Sv[0], Huge, 4), 4);
  EXPECT_EQ(readFrame(Sv[1], P, Err), FrameStatus::Error);
  EXPECT_NE(Err.find("cap"), std::string::npos) << Err;
  ::close(Sv[0]);
  ::close(Sv[1]);

  // The writer enforces the same cap.
  EXPECT_FALSE(writeFrame(-1, std::string(MaxFrameBytes + 1, 'x'), Err));
}

TEST(ServeProtocolTest, JobResultJsonRoundTrips) {
  JobResult R;
  R.Job = "ticket.2cpu";
  R.Holds = true;
  R.Complete = true;
  R.Schedules = 1234;
  R.Obligations = 567;
  R.CertHits = 2;
  R.CertMisses = 1;
  R.CertStores = 1;
  R.WallMs = 47.25;
  JobResult Back;
  std::string Err;
  ASSERT_TRUE(jobResultFromJson(jobResultToJson(R), Back, Err)) << Err;
  EXPECT_EQ(Back.Job, R.Job);
  EXPECT_EQ(Back.Holds, R.Holds);
  EXPECT_EQ(Back.Complete, R.Complete);
  EXPECT_EQ(Back.Schedules, R.Schedules);
  EXPECT_EQ(Back.CertHits, R.CertHits);
  EXPECT_EQ(Back.WallMs, R.WallMs);

  EXPECT_FALSE(jobResultFromJson(jsonStr("not an object"), Back, Err));
  JsonValue NoJob;
  NoJob.K = JsonValue::Kind::Object;
  EXPECT_FALSE(jobResultFromJson(NoJob, Back, Err));
}

// ---- daemon lifecycle and basic ops ----

TEST_F(ServeTest, PingListStatsAndGracefulShutdown) {
  auto D = startDaemon();
  ASSERT_NE(D, nullptr);
  EXPECT_FALSE(D->isShutdown());

  CertClient C = connected();
  std::string Err;
  EXPECT_TRUE(C.ping(Err)) << Err;

  std::vector<JobInfo> Catalog;
  ASSERT_TRUE(C.list(Catalog, Err)) << Err;
  auto Has = [&Catalog](const std::string &N) {
    for (const JobInfo &J : Catalog)
      if (J.Name == N)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("ticket.2cpu"));
  EXPECT_TRUE(Has("mcs.2cpu"));

  JsonValue Stats;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  const JsonValue *Counters = Stats.field("counters");
  ASSERT_NE(Counters, nullptr);
  const JsonValue *Requests = Counters->field("serve.requests");
  ASSERT_NE(Requests, nullptr);
  EXPECT_GE(Requests->IntVal, 2); // the ping and the list at least

  // The protocol-level drain: acknowledged, then the daemon winds down,
  // unlinks its socket, and new connections fail.
  EXPECT_TRUE(C.requestShutdown(Err)) << Err;
  D->waitShutdown();
  EXPECT_TRUE(D->isShutdown());
  CertClient After;
  EXPECT_FALSE(After.connect(Socket, Err));
}

TEST_F(ServeTest, SecondClientPaysNothingForSharedObligations) {
  auto D = startDaemon();
  ASSERT_NE(D, nullptr);

  // Client 1, cold: pays the exploration, mints the certificates.
  {
    CertClient C = connected();
    VerifyResponse R;
    std::string Err;
    ASSERT_TRUE(C.verify({"ticket.2cpu"}, {}, R, Err)) << Err;
    ASSERT_TRUE(R.Ok) << R.Error;
    ASSERT_EQ(R.Results.size(), 1u);
    EXPECT_TRUE(R.Results[0].Holds) << R.Results[0].Diagnostic;
    EXPECT_TRUE(R.Results[0].Complete);
    EXPECT_GT(R.Results[0].Schedules, 0u);
    EXPECT_EQ(R.Results[0].CertHits, 0u);
    EXPECT_GE(R.Results[0].CertMisses, 1u);
    EXPECT_GE(R.Results[0].CertStores, 1u);
  }
  ASSERT_GE(refineCerts().size(), 1u);

  // Client 2, same stack, new connection: the shared store serves every
  // obligation — zero new stores, at least one hit, zero re-exploration.
  const std::uint64_t Explored =
      obs::counterValue("explorer.schedules_explored");
  {
    CertClient C = connected();
    VerifyResponse R;
    std::string Err;
    ASSERT_TRUE(C.verify({"ticket.2cpu"}, {}, R, Err)) << Err;
    ASSERT_TRUE(R.Ok) << R.Error;
    ASSERT_EQ(R.Results.size(), 1u);
    EXPECT_TRUE(R.Results[0].Holds);
    EXPECT_GE(R.Results[0].CertHits, 1u);
    EXPECT_EQ(R.Results[0].CertStores, 0u);
  }
  EXPECT_EQ(obs::counterValue("explorer.schedules_explored"), Explored);

  D->shutdown();
}

TEST_F(ServeTest, RaAndScJobsShareStoreWithoutCrossTalk) {
  auto D = startDaemon();
  ASSERT_NE(D, nullptr);
  CertClient C = connected();
  std::string Err;

  // The RA re-verification jobs are in the catalog.
  std::vector<JobInfo> Catalog;
  ASSERT_TRUE(C.list(Catalog, Err)) << Err;
  auto Has = [&Catalog](const std::string &N) {
    for (const JobInfo &J : Catalog)
      if (J.Name == N)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("ticket.2cpu.ra"));
  EXPECT_TRUE(Has("mcs.2cpu.ra"));

  // Cold SC job mints its certificate.
  VerifyResponse Sc;
  ASSERT_TRUE(C.verify({"ticket.2cpu"}, {}, Sc, Err)) << Err;
  ASSERT_TRUE(Sc.Ok && Sc.Results[0].Holds) << Sc.Results[0].Diagnostic;
  const std::size_t ScCerts = refineCerts().size();
  ASSERT_GE(ScCerts, 1u);

  // The RA twin of the same lock is a *different* obligation: it must not
  // hit the SC entry (zero hits — that would be cross-talk trusting an SC
  // proof for a weak-memory claim), and it mints its own certificates
  // alongside in the shared store.
  VerifyResponse Ra;
  ASSERT_TRUE(C.verify({"ticket.2cpu.ra"}, {}, Ra, Err)) << Err;
  ASSERT_TRUE(Ra.Ok && Ra.Results[0].Holds) << Ra.Results[0].Diagnostic;
  EXPECT_TRUE(Ra.Results[0].Complete);
  EXPECT_EQ(Ra.Results[0].CertHits, 0u);
  EXPECT_GE(Ra.Results[0].CertStores, 1u);
  EXPECT_GT(refineCerts().size(), ScCerts);

  // Warm repeats each hit their own entry; neither re-explores.
  const std::uint64_t Explored =
      obs::counterValue("explorer.schedules_explored");
  VerifyResponse Sc2, Ra2;
  ASSERT_TRUE(C.verify({"ticket.2cpu"}, {}, Sc2, Err)) << Err;
  ASSERT_TRUE(C.verify({"ticket.2cpu.ra"}, {}, Ra2, Err)) << Err;
  EXPECT_GE(Sc2.Results[0].CertHits, 1u);
  EXPECT_EQ(Sc2.Results[0].CertStores, 0u);
  EXPECT_GE(Ra2.Results[0].CertHits, 1u);
  EXPECT_EQ(Ra2.Results[0].CertStores, 0u);
  EXPECT_EQ(obs::counterValue("explorer.schedules_explored"), Explored);

  D->shutdown();
}

TEST_F(ServeTest, UnknownJobsAreReportedPerJobNotAsBatchFailure) {
  auto D = startDaemon();
  ASSERT_NE(D, nullptr);
  CertClient C = connected();
  VerifyResponse R;
  std::string Err;
  ASSERT_TRUE(C.verify({"no.such.job", "ticket.2cpu"}, {}, R, Err)) << Err;
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Results.size(), 2u);
  EXPECT_FALSE(R.Results[0].Known);
  EXPECT_NE(R.Results[0].Diagnostic.find("unknown job"), std::string::npos);
  EXPECT_TRUE(R.Results[1].Known);
  EXPECT_TRUE(R.Results[1].Holds);
  D->shutdown();
}

// ---- queue bound ----

namespace {
/// A job that parks until released; lets tests pin the single worker.
struct Blocker {
  std::mutex Mu;
  std::condition_variable Cv;
  bool Released = false;
  std::atomic<int> Started{0};

  void release() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Released = true;
    }
    Cv.notify_all();
  }
};
} // namespace

TEST_F(ServeTest, FullQueueRejectsTheWholeBatch) {
  auto B = std::make_shared<Blocker>();
  registerJob("test.block", "parks until released", [B](const JobContext &) {
    B->Started.fetch_add(1);
    std::unique_lock<std::mutex> L(B->Mu);
    B->Cv.wait(L, [&B] { return B->Released; });
    JobResult R;
    R.Holds = true;
    R.Complete = true;
    return R;
  });

  auto D = startDaemon(/*Workers=*/1, /*QueueBound=*/1);
  ASSERT_NE(D, nullptr);

  // Occupy the single worker; once started the queue itself is empty.
  std::thread First([this] {
    CertClient C = connected();
    VerifyResponse R;
    std::string Err;
    ASSERT_TRUE(C.verify({"test.block"}, {}, R, Err)) << Err;
    EXPECT_TRUE(R.Ok) << R.Error;
  });
  ASSERT_TRUE(waitFor([&B] { return B->Started.load() >= 1; }));

  // A batch of two against bound 1: rejected whole — nothing partial
  // runs, nothing was enqueued.
  {
    CertClient C = connected();
    VerifyResponse R;
    std::string Err;
    ASSERT_TRUE(C.verify({"test.block", "test.block"}, {}, R, Err)) << Err;
    EXPECT_FALSE(R.Ok);
    EXPECT_NE(R.Error.find("queue full"), std::string::npos) << R.Error;
  }
  EXPECT_GE(obs::counterValue("serve.rejected_queue_full"), 1u);
  EXPECT_EQ(B->Started.load(), 1); // the rejected batch never ran

  B->release();
  First.join();
  D->shutdown();
}

// ---- timeout: fail-closed truncation, no certificate ----

TEST_F(ServeTest, TimeoutCancelsIntoTruncationAndStoresNoCertificate) {
  auto D = startDaemon(/*Workers=*/1);
  ASSERT_NE(D, nullptr);

  // ticket.3cpu explores for seconds uncancelled; a 150ms timeout must
  // cancel it mid-exploration.  The diagnostic distinguishes a real
  // cancel ("job timeout") from the job's natural step-budget truncation
  // ("step bound exceeded"), so a broken cancel path fails this test
  // rather than flaking it.
  CertClient C = connected();
  VerifyResponse R;
  std::string Err;
  VerifyOptions VO;
  VO.TimeoutMs = 150;
  ASSERT_TRUE(C.verify({"ticket.3cpu"}, VO, R, Err)) << Err;
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Results.size(), 1u);
  const JobResult &J = R.Results[0];
  EXPECT_FALSE(J.Holds);
  EXPECT_FALSE(J.Complete);
  EXPECT_NE(J.Diagnostic.find("job timeout (150 ms)"), std::string::npos)
      << J.Diagnostic;
  EXPECT_EQ(J.CertStores, 0u);
  EXPECT_GE(obs::counterValue("serve.timeouts"), 1u);
  // Fail-closed all the way down: the store holds no refinement
  // certificate for the cancelled check.
  EXPECT_TRUE(refineCerts().empty());

  D->shutdown();
}

// ---- client crash mid-job ----

TEST_F(ServeTest, ClientCrashMidJobDoesNotLeakTheWorker) {
  auto B = std::make_shared<Blocker>();
  registerJob("test.park", "parks until released", [B](const JobContext &) {
    B->Started.fetch_add(1);
    std::unique_lock<std::mutex> L(B->Mu);
    B->Cv.wait(L, [&B] { return B->Released; });
    JobResult R;
    R.Holds = true;
    R.Complete = true;
    return R;
  });

  auto D = startDaemon(/*Workers=*/1);
  ASSERT_NE(D, nullptr);

  // A raw connection that submits a job and "crashes" (full close) while
  // the job runs.
  std::string Err;
  int Fd = connectUnix(Socket, Err);
  ASSERT_GE(Fd, 0) << Err;
  JsonValue Req;
  Req.K = JsonValue::Kind::Object;
  Req.Fields["op"] = jsonStr("verify");
  Req.Fields["jobs"] = jsonArray({jsonStr("test.park")});
  ASSERT_TRUE(writeFrameJson(Fd, Req, Err)) << Err;
  ASSERT_TRUE(waitFor([&B] { return B->Started.load() >= 1; }));
  ::close(Fd); // the crash

  B->release();
  // The daemon finishes the job, fails the response write, and survives.
  ASSERT_TRUE(waitFor(
      [] { return obs::counterValue("serve.client_disconnects") >= 1; }));

  // The worker is back in the pool: a fresh client gets served.
  CertClient C = connected();
  EXPECT_TRUE(C.ping(Err)) << Err;
  VerifyResponse R;
  ASSERT_TRUE(C.verify({"test.park"}, {}, R, Err)) << Err;
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Results[0].Holds);

  // shutdown() joining proves no thread leaked blocked.
  D->shutdown();
  EXPECT_TRUE(D->isShutdown());
}

// ---- hostile frames ----

TEST_F(ServeTest, MalformedAndDeeplyNestedFramesGetErrorsNotCrashes) {
  auto D = startDaemon();
  ASSERT_NE(D, nullptr);

  std::string Err;
  int Fd = connectUnix(Socket, Err);
  ASSERT_GE(Fd, 0) << Err;

  // Malformed JSON: an error answer, and the connection stays usable
  // (frame boundaries were intact).
  ASSERT_TRUE(writeFrame(Fd, "{ this is not json", Err)) << Err;
  JsonValue Resp;
  ASSERT_EQ(readFrameJson(Fd, Resp, Err), FrameStatus::Ok) << Err;
  const JsonValue *Ok = Resp.field("ok");
  ASSERT_NE(Ok, nullptr);
  EXPECT_FALSE(Ok->BoolVal);

  // 100-deep nesting: the wire parser's depth cap (32) rejects it with a
  // position-tagged error instead of recursing toward a stack overflow.
  std::string Deep(100, '[');
  Deep.append(100, ']');
  ASSERT_TRUE(writeFrame(Fd, Deep, Err)) << Err;
  ASSERT_EQ(readFrameJson(Fd, Resp, Err), FrameStatus::Ok) << Err;
  Ok = Resp.field("ok");
  ASSERT_NE(Ok, nullptr);
  EXPECT_FALSE(Ok->BoolVal);
  const JsonValue *E = Resp.field("error");
  ASSERT_NE(E, nullptr);
  EXPECT_NE(E->StrVal.find("depth"), std::string::npos) << E->StrVal;

  // Same connection still answers an honest request afterwards.
  JsonValue Ping;
  Ping.K = JsonValue::Kind::Object;
  Ping.Fields["op"] = jsonStr("ping");
  ASSERT_TRUE(writeFrameJson(Fd, Ping, Err)) << Err;
  ASSERT_EQ(readFrameJson(Fd, Resp, Err), FrameStatus::Ok) << Err;
  EXPECT_TRUE(Resp.field("ok")->BoolVal);
  ::close(Fd);

  EXPECT_GE(obs::counterValue("serve.bad_frames"), 2u);

  // An oversized declared length drops that connection; the daemon
  // itself shrugs it off.
  int Fd2 = connectUnix(Socket, Err);
  ASSERT_GE(Fd2, 0) << Err;
  const unsigned char Huge[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(Fd2, Huge, 4), 4);
  std::string P;
  EXPECT_NE(readFrame(Fd2, P, Err), FrameStatus::Ok); // dropped on us
  ::close(Fd2);

  CertClient C = connected();
  EXPECT_TRUE(C.ping(Err)) << Err;
  D->shutdown();
}

// ---- drain semantics ----

TEST_F(ServeTest, ShutdownDrainsQueuedJobsAndAnswersWaitingClients) {
  auto B = std::make_shared<Blocker>();
  registerJob("test.drain", "parks until released", [B](const JobContext &) {
    B->Started.fetch_add(1);
    std::unique_lock<std::mutex> L(B->Mu);
    B->Cv.wait(L, [&B] { return B->Released; });
    JobResult R;
    R.Holds = true;
    R.Complete = true;
    return R;
  });

  auto D = startDaemon(/*Workers=*/1);
  ASSERT_NE(D, nullptr);

  // Two jobs: one running, one queued, with a client waiting on both.
  VerifyResponse R;
  std::thread Waiter([this, &R] {
    CertClient C = connected();
    std::string Err;
    ASSERT_TRUE(C.verify({"test.drain", "test.drain"}, {}, R, Err)) << Err;
  });
  ASSERT_TRUE(waitFor([&B] { return B->Started.load() >= 1; }));

  // Shutdown mid-batch: the queued job must still run (drain, don't
  // drop) and the waiting client must still get its full answer.
  D->requestShutdown();
  // New work is rejected the moment the drain begins...
  ASSERT_TRUE(waitFor([this] {
    CertClient C;
    std::string Err;
    if (!C.connect(Socket, Err))
      return true; // socket already unlinked — also "rejected"
    VerifyResponse VR;
    if (!C.verify({"ticket.2cpu"}, {}, VR, Err))
      return true; // connection torn down mid-request
    return !VR.Ok; // or answered with the shutting-down error
  }));

  B->release();
  Waiter.join();
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Results.size(), 2u);
  EXPECT_TRUE(R.Results[0].Holds);
  EXPECT_TRUE(R.Results[1].Holds); // the queued one ran to completion
  EXPECT_GE(obs::counterValue("serve.jobs"), 2u);

  D->waitShutdown();
  EXPECT_TRUE(D->isShutdown());
}
