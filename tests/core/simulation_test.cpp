//===- tests/core/simulation_test.cpp - Def 2.1 checker tests -----------------===//

#include "core/Simulation.h"

#include "core/EnvContext.h"
#include "tests/core/TestStrategies.h"

#include <gtest/gtest.h>

using namespace ccal;
using namespace ccal::testutil;

namespace {

/// A scripted environment with \p Lead leading batches and then enough
/// empty return-control entries.
std::unique_ptr<EnvModel> makeEnv(std::vector<EnvChoice> Lead,
                                  unsigned TrailingReturns) {
  for (unsigned I = 0; I != TrailingReturns; ++I) {
    EnvChoice C;
    C.ReturnsControl = true;
    Lead.push_back(C);
  }
  return makeScriptedEnv(std::move(Lead));
}

std::unique_ptr<Strategy> makeAcqRelImpl(ThreadId Tid) {
  std::vector<std::unique_ptr<Strategy>> Seq;
  Seq.push_back(makeAcqImplStrategy(Tid));
  Seq.push_back(makeRelImplStrategy(Tid));
  return makeSeqStrategy("impl:acq;rel", std::move(Seq));
}

std::unique_ptr<Strategy> makeAcqRelSpec(ThreadId Tid) {
  std::vector<std::unique_ptr<Strategy>> Seq;
  Seq.push_back(makeAcqSpecStrategy(Tid));
  Seq.push_back(makeRelSpecStrategy(Tid));
  return makeSeqStrategy("spec:acq;rel", std::move(Seq));
}

} // namespace

TEST(EventMapTest, IdentityAndCompose) {
  EventMap Id = EventMap::identity();
  Event E(1, "x", {2});
  EXPECT_EQ(Id.map(E), E);

  EventMap R1 = makeR1();
  EventMap Composed = EventMap::compose(Id, R1);
  EXPECT_EQ(Composed.map(Event(1, "hold")), Event(1, "acq"));
  EXPECT_FALSE(Composed.map(Event(1, "get_n")).has_value());
  EXPECT_EQ(Composed.name(), "R1");
}

TEST(EventMapTest, ApplyErasesAndMaps) {
  EventMap R1 = makeR1();
  Log Impl = {Event(1, "FAI_t"), Event(1, "get_n"), Event(1, "hold"),
              Event(1, "f"),     Event(1, "inc_n")};
  Log Expect = {Event(1, "acq"), Event(1, "f"), Event(1, "rel")};
  EXPECT_EQ(R1.apply(Impl), Expect);
}

TEST(SimulationTest, UncontendedAcqRelHolds) {
  // No environment: thread 1 immediately acquires.  The Fun-rule premise
  // L0[1] |- acq : phi'_acq of §2, specialized to an empty context.
  auto Impl = makeAcqRelImpl(1);
  auto Spec = makeAcqRelSpec(1);
  EventMap R1 = makeR1();
  auto Env = makeNullEnv();
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env);
  EXPECT_TRUE(Rep.Holds) << Rep.Counterexample;
  EXPECT_EQ(Rep.Obligations, 2u); // hold->acq and inc_n->rel matched
  EXPECT_EQ(Rep.Runs, 1u);
}

TEST(SimulationTest, ContendedAcqSpinsThenHolds) {
  // The environment (thread 2) fetched the first ticket and holds the
  // lock; it releases at the second query point — a rely-respecting
  // context, under which the spin loop terminates and the simulation
  // holds.
  std::vector<EnvChoice> Lead(2);
  Lead[0].Events = {Event(2, "FAI_t"), Event(2, "hold")};
  Lead[0].ReturnsControl = true; // control back to thread 1: it FAIs, spins
  Lead[1].Events = {Event(2, "inc_n")};
  Lead[1].ReturnsControl = true;
  auto Env = makeEnv(std::move(Lead), 8);

  auto Impl = makeAcqRelImpl(1);
  auto Spec = makeAcqRelSpec(1);
  EventMap R1 = makeR1();
  SimOptions Opts;
  Opts.MaxMoves = 32;
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env, Opts);
  EXPECT_TRUE(Rep.Holds) << Rep.Counterexample;
  EXPECT_GE(Rep.Moves, 4u); // at least one spin iteration happened
}

TEST(SimulationTest, UnfairEnvironmentDivergesAndFails) {
  // If the environment never releases (violating the rely condition that
  // held locks are eventually released), the spin diverges and the checker
  // reports it — the reason L'1[i].R must include definite release (§2).
  std::vector<EnvChoice> Lead(1);
  Lead[0].Events = {Event(2, "FAI_t"), Event(2, "hold")};
  Lead[0].ReturnsControl = true;
  auto Env = makeEnv(std::move(Lead), 64);

  auto Impl = makeAcqRelImpl(1);
  auto Spec = makeAcqRelSpec(1);
  EventMap R1 = makeR1();
  SimOptions Opts;
  Opts.MaxMoves = 16;
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env, Opts);
  EXPECT_FALSE(Rep.Holds);
  EXPECT_NE(Rep.Counterexample.find("divergence"), std::string::npos);
}

TEST(SimulationTest, WrongSpecEventFails) {
  // A spec expecting rel first cannot match the implementation.
  auto Impl = makeAcqRelImpl(1);
  std::vector<std::unique_ptr<Strategy>> Seq;
  Seq.push_back(makeRelSpecStrategy(1));
  Seq.push_back(makeAcqSpecStrategy(1));
  auto Spec = makeSeqStrategy("spec:rel;acq", std::move(Seq));
  EventMap R1 = makeR1();
  auto Env = makeNullEnv();
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env);
  EXPECT_FALSE(Rep.Holds);
  EXPECT_NE(Rep.Counterexample.find("mismatch"), std::string::npos);
}

TEST(SimulationTest, ReturnMismatchFails) {
  // Spec returning 7 from acq while the implementation's hold carries
  // return 0 (makeAcqImplStrategy sets Return only on FAI/get_n moves, so
  // craft a one-move impl with an explicit return).
  auto Impl = makeAtomicCallStrategy(1, "hold", {}, [](const Log &) {
    return std::optional<std::int64_t>(0);
  });
  auto Spec = makeAtomicCallStrategy(1, "acq", {}, [](const Log &) {
    return std::optional<std::int64_t>(7);
  });
  EventMap R1 = makeR1();
  auto Env = makeNullEnv();
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env);
  EXPECT_FALSE(Rep.Holds);
  EXPECT_NE(Rep.Counterexample.find("return mismatch"), std::string::npos);
}

TEST(SimulationTest, LeftoverSpecMovesFail) {
  // Impl finishes after acq but the spec still expects rel.
  auto Impl = makeAtomicCallStrategy(1, "hold", {}, [](const Log &) {
    return std::optional<std::int64_t>(0);
  });
  auto Spec = makeAcqRelSpec(1);
  EventMap R1 = makeR1();
  auto Env = makeNullEnv();
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env);
  EXPECT_FALSE(Rep.Holds);
}

TEST(SimulationTest, FunCertificateRecordsEvidence) {
  auto Impl = makeAcqRelImpl(1);
  auto Spec = makeAcqRelSpec(1);
  EventMap R1 = makeR1();
  auto Env = makeNullEnv();
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env);
  CertPtr C = makeFunCertificate("L0[1]", "M1", "L1[1]", R1, Rep);
  EXPECT_TRUE(C->Valid);
  EXPECT_EQ(C->Rule, "Fun");
  EXPECT_EQ(C->statement(), "L0[1] |-R1 M1 : L1[1]");
  EXPECT_EQ(C->Obligations, Rep.Obligations);
}

TEST(SimulationTest, ContendedAcqUnderEnumeratedFairEnvironment) {
  // The paper's local-verification premise, executably: thread 1's
  // acq;rel is checked against EVERY behavior of an environment context
  // built from thread 2's own ticket-lock strategies plus an enumerated
  // *fair* scheduler (FairReturnBound encodes the rely's fairness).
  std::map<ThreadId, std::shared_ptr<Strategy>> Parts;
  std::vector<std::unique_ptr<Strategy>> Seq2;
  Seq2.push_back(makeAcqImplStrategy(2));
  Seq2.push_back(makeRelImplStrategy(2));
  Parts.emplace(2, std::shared_ptr<Strategy>(
                       makeSeqStrategy("t2:acq;rel", std::move(Seq2))));
  auto Env = makeStrategyEnv(std::move(Parts), /*MaxEnvMoves=*/2,
                             /*FairReturnBound=*/2);

  auto Impl = makeAcqRelImpl(1);
  auto Spec = makeAcqRelSpec(1);
  EventMap R1 = makeR1();
  SimOptions Opts;
  Opts.MaxMoves = 48;
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env, Opts);
  EXPECT_TRUE(Rep.Holds) << Rep.Counterexample;
  EXPECT_GT(Rep.Runs, 1u); // genuinely branched over env behaviors
}

TEST(SimulationTest, UnfairEnumeratedEnvironmentDiverges) {
  // Without the fairness bound the scheduler may never run thread 2 once
  // it holds the ticket ahead of thread 1 — the spin diverges, which is
  // exactly why L'1[i].R must include scheduler fairness (§2).
  std::map<ThreadId, std::shared_ptr<Strategy>> Parts;
  std::vector<std::unique_ptr<Strategy>> Seq2;
  Seq2.push_back(makeAcqImplStrategy(2));
  Seq2.push_back(makeRelImplStrategy(2));
  Parts.emplace(2, std::shared_ptr<Strategy>(
                       makeSeqStrategy("t2:acq;rel", std::move(Seq2))));
  auto Env = makeStrategyEnv(std::move(Parts), /*MaxEnvMoves=*/2,
                             /*FairReturnBound=*/0);

  auto Impl = makeAcqRelImpl(1);
  auto Spec = makeAcqRelSpec(1);
  EventMap R1 = makeR1();
  SimOptions Opts;
  Opts.MaxMoves = 24;
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env, Opts);
  EXPECT_FALSE(Rep.Holds);
  EXPECT_NE(Rep.Counterexample.find("divergence"), std::string::npos);
}
