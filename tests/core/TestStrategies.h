//===- tests/core/TestStrategies.h - Shared §2 strategy builders -*- C++ -*-===//
//
// Strategy automata used across the core tests: the paper's low-level
// ticket-lock acquire strategy phi'_acq[i] and its atomic counterparts.
//
//===----------------------------------------------------------------------===//

#ifndef CCAL_TESTS_CORE_TESTSTRATEGIES_H
#define CCAL_TESTS_CORE_TESTSTRATEGIES_H

#include "core/Simulation.h"
#include "core/Strategy.h"

namespace ccal {
namespace testutil {

/// phi'_acq[Tid] (§2): FAI_t, spin on get_n, then hold (critical).
inline std::unique_ptr<Strategy> makeAcqImplStrategy(ThreadId Tid) {
  auto D = [Tid](AutomatonStrategy::State S, const Log &L)
      -> std::optional<AutomatonStrategy::Transition> {
    AutomatonStrategy::Transition T;
    switch (S) {
    case 0: {
      T.Move.Events.push_back(Event(Tid, "FAI_t"));
      T.Move.Return = static_cast<std::int64_t>(logCountKind(L, "FAI_t"));
      T.Next = 1;
      return T;
    }
    case 1: {
      std::int64_t Mine = -1, Idx = 0;
      for (const Event &E : L) {
        if (E.Kind != "FAI_t")
          continue;
        if (E.Tid == Tid)
          Mine = Idx;
        ++Idx;
      }
      std::int64_t Serving =
          static_cast<std::int64_t>(logCountKind(L, "inc_n"));
      T.Move.Events.push_back(Event(Tid, "get_n"));
      T.Move.Return = Serving;
      T.Next = Serving == Mine ? 2 : 1;
      return T;
    }
    case 2:
      T.Move.Events.push_back(Event(Tid, "hold"));
      T.Move.CriticalAfter = true;
      T.Next = 3;
      return T;
    default:
      return std::nullopt;
    }
  };
  return std::make_unique<AutomatonStrategy>("phi'_acq", 0, 3, std::move(D));
}

/// The low-level release: a single inc_n event.
inline std::unique_ptr<Strategy> makeRelImplStrategy(ThreadId Tid) {
  return makeAtomicCallStrategy(Tid, "inc_n", {}, [](const Log &) {
    return std::optional<std::int64_t>(0);
  });
}

/// The atomic overlay strategies phi_acq / phi_rel (§2).
inline std::unique_ptr<Strategy> makeAcqSpecStrategy(ThreadId Tid) {
  return makeAtomicCallStrategy(Tid, "acq", {}, [](const Log &) {
    return std::optional<std::int64_t>(0);
  });
}
inline std::unique_ptr<Strategy> makeRelSpecStrategy(ThreadId Tid) {
  return makeAtomicCallStrategy(Tid, "rel", {}, [](const Log &) {
    return std::optional<std::int64_t>(0);
  });
}

/// The relation R1 of §2: hold -> acq, inc_n -> rel, other ticket events
/// erased; everything else maps to itself.
inline EventMap makeR1() {
  return EventMap("R1", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "hold")
      return Event(E.Tid, "acq");
    if (E.Kind == "inc_n")
      return Event(E.Tid, "rel");
    if (E.Kind == "FAI_t" || E.Kind == "get_n")
      return std::nullopt;
    return E;
  });
}

} // namespace testutil
} // namespace ccal

#endif // CCAL_TESTS_CORE_TESTSTRATEGIES_H
