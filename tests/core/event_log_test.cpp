//===- tests/core/event_log_test.cpp - Events, logs, replay -------------------===//

#include "core/Log.h"
#include "core/Replay.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(EventTest, ToStringShapes) {
  EXPECT_EQ(Event(1, "FAI_t").toString(), "1.FAI_t");
  EXPECT_EQ(Event(2, "push", {3, 4}).toString(), "2.push(3, 4)");
  EXPECT_EQ(Event::sched(5).toString(), "->5");
}

TEST(EventTest, EqualityAndOrder) {
  Event A(1, "x", {1});
  Event B(1, "x", {1});
  Event C(1, "x", {2});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_TRUE(A < C);
}

TEST(EventTest, HashDistinguishes) {
  EXPECT_NE(hashEvent(Event(1, "a")), hashEvent(Event(2, "a")));
  EXPECT_NE(hashEvent(Event(1, "a")), hashEvent(Event(1, "b")));
  EXPECT_NE(hashEvent(Event(1, "a", {1})), hashEvent(Event(1, "a", {2})));
}

TEST(LogTest, CountAndFilter) {
  Log L = {Event(1, "acq"), Event(2, "acq"), Event(1, "rel")};
  EXPECT_EQ(logCount(L, 1, "acq"), 1u);
  EXPECT_EQ(logCountKind(L, "acq"), 2u);
  EXPECT_EQ(logFilterTid(L, 1).size(), 2u);
  EXPECT_EQ(logFilterKind(L, "rel").size(), 1u);
}

TEST(LogTest, ControlFollowsSchedEvents) {
  Log L;
  EXPECT_EQ(logControl(L, 9), 9u);
  logAppend(L, Event::sched(1));
  logAppend(L, Event(1, "x"));
  logAppend(L, Event::sched(2));
  EXPECT_EQ(logControl(L, 9), 2u);
}

TEST(LogTest, HashIsOrderSensitive) {
  Log A = {Event(1, "x"), Event(2, "y")};
  Log B = {Event(2, "y"), Event(1, "x")};
  EXPECT_NE(hashLog(A), hashLog(B));
}

namespace {

/// A counter replay: "inc" increments, "dec" decrements, stuck below zero.
Replayer<int> makeCounterReplayer() {
  return Replayer<int>(0, [](const int &S, const Event &E) -> std::optional<int> {
    if (E.Kind == "inc")
      return S + 1;
    if (E.Kind == "dec")
      return S > 0 ? std::optional<int>(S - 1) : std::nullopt;
    return S;
  });
}

} // namespace

TEST(ReplayTest, FoldsEvents) {
  Replayer<int> R = makeCounterReplayer();
  Log L = {Event(1, "inc"), Event(2, "inc"), Event(1, "dec")};
  EXPECT_EQ(R.replay(L), 1);
}

TEST(ReplayTest, IgnoresUnknownEvents) {
  Replayer<int> R = makeCounterReplayer();
  Log L = {Event(1, "inc"), Event(1, "whatever", {3})};
  EXPECT_EQ(R.replay(L), 1);
}

TEST(ReplayTest, StuckOnProtocolViolation) {
  Replayer<int> R = makeCounterReplayer();
  Log L = {Event(1, "dec")};
  EXPECT_FALSE(R.replay(L).has_value());
  EXPECT_FALSE(R.wellFormed(L));
}

TEST(ReplayTest, ReplayFromResumesAtIndex) {
  Replayer<int> R = makeCounterReplayer();
  Log L = {Event(1, "inc"), Event(1, "inc"), Event(1, "inc")};
  std::optional<int> Mid = R.replayFrom(2, L, 2);
  EXPECT_EQ(Mid, 3);
}

TEST(ReplayTest, DeterministicReplay) {
  // The same log always reconstructs the same state (the property that
  // justifies representing shared state by the log alone, §7).
  Replayer<int> R = makeCounterReplayer();
  Log L;
  for (int I = 0; I < 50; ++I)
    logAppend(L, Event(static_cast<ThreadId>(I % 3), I % 2 ? "inc" : "inc"));
  EXPECT_EQ(R.replay(L), R.replay(L));
  EXPECT_EQ(R.replay(L), 50);
}
