//===- tests/core/strategy_test.cpp - Strategy automata (§2) ------------------===//

#include "core/Strategy.h"

#include "core/EnvContext.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

/// The paper's low-level acquire strategy phi'_acq[i] (§2): FAI_t fetching
/// ticket t, then spin on get_n until it reads t, then hold (entering the
/// critical state).  States: 0 = before FAI, 1 = spinning, 2 = serving
/// matched (emit hold), 3 = done.
std::unique_ptr<Strategy> makeAcqImplStrategy(ThreadId Tid) {
  auto D = [Tid](AutomatonStrategy::State S, const Log &L)
      -> std::optional<AutomatonStrategy::Transition> {
    AutomatonStrategy::Transition T;
    switch (S) {
    case 0: {
      std::int64_t Ticket =
          static_cast<std::int64_t>(logCountKind(L, "FAI_t"));
      T.Move.Events.push_back(Event(Tid, "FAI_t"));
      T.Move.Return = Ticket;
      T.Next = 1;
      return T;
    }
    case 1: {
      // my ticket = number of FAI_t events before mine... recover it from
      // the log: the ticket this thread fetched is the index of its FAI_t.
      std::int64_t Mine = -1, Idx = 0;
      for (const Event &E : L) {
        if (E.Kind != "FAI_t")
          continue;
        if (E.Tid == Tid)
          Mine = Idx;
        ++Idx;
      }
      std::int64_t Serving =
          static_cast<std::int64_t>(logCountKind(L, "inc_n"));
      T.Move.Events.push_back(Event(Tid, "get_n"));
      T.Move.Return = Serving;
      T.Next = Serving == Mine ? 2 : 1;
      return T;
    }
    case 2:
      T.Move.Events.push_back(Event(Tid, "hold"));
      T.Move.CriticalAfter = true;
      T.Next = 3;
      return T;
    default:
      return std::nullopt;
    }
  };
  return std::make_unique<AutomatonStrategy>("phi'_acq", 0, 3, std::move(D));
}

} // namespace

TEST(StrategyTest, AtomicCallEmitsOneEventAndReturn) {
  auto S = makeAtomicCallStrategy(
      1, "acq", {}, [](const Log &L) -> std::optional<std::int64_t> {
        return static_cast<std::int64_t>(L.size());
      });
  EXPECT_FALSE(S->done());
  Log L;
  std::optional<StrategyMove> M = S->onScheduled(L);
  ASSERT_TRUE(M.has_value());
  ASSERT_EQ(M->Events.size(), 1u);
  EXPECT_EQ(M->Events[0], Event(1, "acq"));
  EXPECT_EQ(M->Return, 1); // computed on the extended log
  EXPECT_TRUE(S->done());
}

TEST(StrategyTest, AtomicCallCanRefuse) {
  auto S = makeAtomicCallStrategy(
      1, "rel", {},
      [](const Log &) -> std::optional<std::int64_t> { return std::nullopt; });
  Log L;
  EXPECT_FALSE(S->onScheduled(L).has_value()); // spec refuses: stuck
}

TEST(StrategyTest, IdleStrategyIsDone) {
  auto S = makeIdleStrategy("idle");
  EXPECT_TRUE(S->done());
  EXPECT_FALSE(S->critical());
}

TEST(StrategyTest, AcqImplSpinsUntilServed) {
  auto S = makeAcqImplStrategy(2);
  Log L = {Event(1, "FAI_t")}; // thread 1 fetched ticket 0 first

  std::optional<StrategyMove> M = S->onScheduled(L);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->Return, 1); // ticket 1
  logAppendAll(L, M->Events);

  // Spin: serving is 0, mine is 1.
  M = S->onScheduled(L);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->Events[0].Kind, "get_n");
  EXPECT_EQ(M->Return, 0);
  logAppendAll(L, M->Events);
  EXPECT_FALSE(S->done());

  // Thread 1 releases.
  logAppend(L, Event(1, "inc_n"));
  M = S->onScheduled(L);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->Return, 1); // now serving matches
  logAppendAll(L, M->Events);

  M = S->onScheduled(L);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->Events[0].Kind, "hold");
  EXPECT_TRUE(S->critical()); // gray state: no env query until release
  EXPECT_TRUE(S->done());
}

TEST(StrategyTest, CloneIsIndependent) {
  auto S = makeAcqImplStrategy(1);
  Log L;
  S->onScheduled(L); // advance original past FAI
  auto C = S->clone();
  // Both are at the spin state; advancing the clone must not move S.
  logAppend(L, Event(1, "FAI_t"));
  logAppend(L, Event(1, "inc_n")); // pretend ticket 0 is served... spin check
  (void)C->onScheduled(L);
  EXPECT_FALSE(S->done());
}

TEST(StrategyTest, SeqStrategyRunsInOrder) {
  std::vector<std::unique_ptr<Strategy>> Seq;
  Seq.push_back(makeAtomicCallStrategy(
      1, "acq", {}, [](const Log &) { return std::optional<std::int64_t>(0); }));
  Seq.push_back(makeAtomicCallStrategy(
      1, "rel", {}, [](const Log &) { return std::optional<std::int64_t>(0); }));
  auto S = makeSeqStrategy("acq;rel", std::move(Seq));
  Log L;
  std::optional<StrategyMove> M = S->onScheduled(L);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->Events[0].Kind, "acq");
  EXPECT_FALSE(S->done());
  M = S->onScheduled(L);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->Events[0].Kind, "rel");
  EXPECT_TRUE(S->done());
}

TEST(EnvContextTest, NullEnvReturnsControlImmediately) {
  auto E = makeNullEnv();
  Log L;
  std::vector<EnvChoice> Choices = E->choices(L);
  ASSERT_EQ(Choices.size(), 1u);
  EXPECT_TRUE(Choices[0].ReturnsControl);
  EXPECT_TRUE(Choices[0].Events.empty());
}

TEST(EnvContextTest, ScriptedEnvPlaysScript) {
  std::vector<EnvChoice> Script(2);
  Script[0].Events = {Event(2, "FAI_t")};
  Script[0].ReturnsControl = false;
  Script[1].ReturnsControl = true;
  auto E = makeScriptedEnv(Script);
  Log L;
  auto C0 = E->choices(L);
  ASSERT_EQ(C0.size(), 1u);
  EXPECT_EQ(C0[0].Events.size(), 1u);
  E->advance(0, L);
  auto C1 = E->choices(L);
  ASSERT_EQ(C1.size(), 1u);
  EXPECT_TRUE(C1[0].ReturnsControl);
  E->advance(0, L);
  EXPECT_TRUE(E->choices(L).empty()); // exhausted
}

TEST(EnvContextTest, StrategyEnvOffersMovesAndReturn) {
  std::map<ThreadId, std::shared_ptr<Strategy>> Parts;
  Parts.emplace(2, std::shared_ptr<Strategy>(makeAtomicCallStrategy(
                       2, "acq", {},
                       [](const Log &) { return std::optional<std::int64_t>(0); })));
  auto E = makeStrategyEnv(std::move(Parts), /*MaxEnvMoves=*/4);
  Log L;
  auto Choices = E->choices(L);
  // Choice 0 returns control; choice 1 schedules participant 2.
  ASSERT_EQ(Choices.size(), 2u);
  EXPECT_TRUE(Choices[0].ReturnsControl);
  ASSERT_EQ(Choices[1].Events.size(), 1u);
  EXPECT_EQ(Choices[1].Events[0].Kind, "acq");

  E->advance(1, L);
  logAppendAll(L, Choices[1].Events);
  // Participant 2 is now done: only the return choice remains.
  auto After = E->choices(L);
  ASSERT_EQ(After.size(), 1u);
  EXPECT_TRUE(After[0].ReturnsControl);
}
