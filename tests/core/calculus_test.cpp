//===- tests/core/calculus_test.cpp - Fig. 9 layer calculus tests -------------===//

#include "core/Calculus.h"

#include "core/EnvContext.h"
#include "tests/core/TestStrategies.h"

#include <gtest/gtest.h>

using namespace ccal;
using namespace ccal::testutil;
using namespace ccal::calculus;

namespace {

LayerPtr makeNamedLayer(const std::string &Name) {
  return std::make_shared<LayerInterface>(Name);
}

/// A valid leaf layer via a real simulation check.
CertifiedLayer makeLeaf(const std::string &Under, const std::string &Module,
                        const std::string &Over,
                        std::vector<ThreadId> Focus) {
  auto Impl = makeAtomicCallStrategy(Focus[0], "hold", {}, [](const Log &) {
    return std::optional<std::int64_t>(0);
  });
  auto Spec = makeAtomicCallStrategy(Focus[0], "acq", {}, [](const Log &) {
    return std::optional<std::int64_t>(0);
  });
  EventMap R1 = makeR1();
  auto Env = makeNullEnv();
  SimReport Rep = checkStrategySimulation(*Impl, *Spec, R1, *Env);
  return fun(makeNamedLayer(Under), Module, makeNamedLayer(Over),
             std::move(Focus), R1, Rep);
}

} // namespace

TEST(CalculusTest, FocusRendering) {
  EXPECT_EQ(CertifiedLayer::atFocus("L0", {1}), "L0[1]");
  EXPECT_EQ(CertifiedLayer::atFocus("L0", {2, 1}), "L0[{2,1}]");
}

TEST(CalculusTest, EmptyRule) {
  CertifiedLayer E = empty(makeNamedLayer("L0"), {1});
  EXPECT_TRUE(E.valid());
  EXPECT_EQ(E.Cert->Rule, "Empty");
  EXPECT_EQ(E.Underlay->name(), E.Overlay->name());
}

TEST(CalculusTest, FunRuleWrapsSimulation) {
  CertifiedLayer L = makeLeaf("L0", "M1", "L1", {1});
  EXPECT_TRUE(L.valid());
  EXPECT_EQ(L.Cert->Rule, "Fun");
  EXPECT_EQ(L.Relation, "R1");
}

TEST(CalculusTest, VcompComposesRelationsAndCounts) {
  CertifiedLayer A = makeLeaf("L0", "M1", "L1", {1});
  CertifiedLayer B = makeLeaf("L1", "M2", "L2", {1});
  CertifiedLayer C = vcomp(A, B);
  EXPECT_TRUE(C.valid());
  EXPECT_EQ(C.Underlay->name(), "L0");
  EXPECT_EQ(C.Overlay->name(), "L2");
  EXPECT_EQ(C.ModuleName, "M1 (+) M2");
  EXPECT_EQ(C.Relation, "R1 o R1");
  EXPECT_EQ(C.Cert->Premises.size(), 2u);
  EXPECT_EQ(C.Cert->totalObligations(),
            A.Cert->totalObligations() + B.Cert->totalObligations());
}

TEST(CalculusTest, VcompRejectsMismatchedInterfaces) {
  CertifiedLayer A = makeLeaf("L0", "M1", "L1", {1});
  CertifiedLayer B = makeLeaf("L9", "M2", "L2", {1});
  EXPECT_DEATH(vcomp(A, B), "Vcomp");
}

TEST(CalculusTest, VcompRejectsMismatchedFocus) {
  CertifiedLayer A = makeLeaf("L0", "M1", "L1", {1});
  CertifiedLayer B = makeLeaf("L1", "M2", "L2", {2});
  EXPECT_DEATH(vcomp(A, B), "focus");
}

TEST(CalculusTest, HcompMergesModules) {
  CertifiedLayer A = makeLeaf("L0", "Macq", "L1a", {1});
  CertifiedLayer B = makeLeaf("L0", "Mrel", "L1b", {1});
  auto La = makeNamedLayer("L1a");
  auto Lb = makeNamedLayer("L1b");
  auto Merged = LayerInterface::merge("L1", *La, *Lb);
  CertifiedLayer C = hcomp(A, B, Merged);
  EXPECT_TRUE(C.valid());
  EXPECT_EQ(C.ModuleName, "Macq (+) Mrel");
  EXPECT_EQ(C.Cert->Rule, "Hcomp");
}

TEST(CalculusTest, PcompUnionsFocusSets) {
  CertifiedLayer A = makeLeaf("L0", "M1", "L1", {1});
  CertifiedLayer B = makeLeaf("L0", "M1", "L1", {2});

  std::vector<Log> Corpus = {{}, {Event(1, "acq")}};
  LayerInterface L0("L0");
  CompatReport Under = checkCompat(L0, {1}, {2}, Corpus);
  CompatReport Over = checkCompat(L0, {1}, {2}, Corpus);
  ASSERT_TRUE(Under.Holds);

  CertifiedLayer C = pcomp(A, B, Under, Over);
  EXPECT_TRUE(C.valid());
  EXPECT_EQ(C.Focus, (std::vector<ThreadId>{1, 2}));
  EXPECT_EQ(C.Cert->Rule, "Pcomp");
  EXPECT_EQ(C.Cert->Premises.size(), 4u); // two layers + two compat certs
}

TEST(CalculusTest, PcompRejectsOverlappingFocus) {
  CertifiedLayer A = makeLeaf("L0", "M1", "L1", {1});
  CertifiedLayer B = makeLeaf("L0", "M1", "L1", {1});
  std::vector<Log> Corpus = {{}};
  LayerInterface L0("L0");
  EXPECT_DEATH(checkCompat(L0, {1}, {1}, Corpus), "disjoint");
  (void)A;
  (void)B;
}

TEST(CalculusTest, CompatDetectsGuaranteeRelyGap) {
  // G says "log has an acq"; R demands "log has a rel": the implication
  // fails on a log with acq but no rel.
  LayerInterface L("L");
  L.rg().Guar.emplace(
      1, LogInvariant{"has-acq", [](const Log &Lg) {
                        return logCountKind(Lg, "acq") > 0;
                      }});
  L.rg().Rely.emplace(
      1, LogInvariant{"has-rel", [](const Log &Lg) {
                        return logCountKind(Lg, "rel") > 0;
                      }});
  std::vector<Log> Corpus = {{Event(1, "acq")}};
  CompatReport Rep = checkCompat(L, {1}, {2}, Corpus);
  EXPECT_FALSE(Rep.Holds);
  CertPtr C = Rep.cert("L");
  EXPECT_FALSE(C->Valid);
  EXPECT_FALSE(C->Notes.empty());
}

TEST(CalculusTest, WeakeningComposesRelations) {
  CertifiedLayer Mid = makeLeaf("L1'", "M", "L2'", {1});
  auto PreCert = std::make_shared<RefinementCertificate>();
  PreCert->Rule = "InterfaceSim";
  PreCert->Relation = "Rpre";
  PreCert->Valid = true;
  PreCert->CoverageComplete = true;
  PreCert->Coverage = "exhaustive";
  auto PostCert = std::make_shared<RefinementCertificate>();
  PostCert->Rule = "InterfaceSim";
  PostCert->Relation = "Rpost";
  PostCert->Valid = true;
  PostCert->CoverageComplete = true;
  PostCert->Coverage = "exhaustive";

  CertifiedLayer W = wk(makeNamedLayer("L1"), PreCert, Mid, PostCert,
                        makeNamedLayer("L2"));
  EXPECT_TRUE(W.valid());
  EXPECT_EQ(W.Underlay->name(), "L1");
  EXPECT_EQ(W.Overlay->name(), "L2");
  EXPECT_EQ(W.Relation, "Rpre o R1 o Rpost");
  EXPECT_EQ(W.Cert->Premises.size(), 3u);
}

TEST(CalculusTest, DerivationTreeRendersAllRules) {
  CertifiedLayer A = makeLeaf("L0", "M1", "L1", {1});
  CertifiedLayer B = makeLeaf("L1", "M2", "L2", {1});
  CertifiedLayer C = vcomp(A, B);
  std::string Tree = C.Cert->tree();
  EXPECT_NE(Tree.find("[Vcomp]"), std::string::npos);
  EXPECT_NE(Tree.find("[Fun]"), std::string::npos);
  EXPECT_NE(Tree.find("L0[1]"), std::string::npos);
}

TEST(RelyGuaranteeTest, ConjDisjAndDefaults) {
  LogInvariant HasAcq{"has-acq", [](const Log &L) {
                        return logCountKind(L, "acq") > 0;
                      }};
  LogInvariant HasRel{"has-rel", [](const Log &L) {
                        return logCountKind(L, "rel") > 0;
                      }};
  Log Both = {Event(1, "acq"), Event(1, "rel")};
  Log OnlyAcq = {Event(1, "acq")};
  EXPECT_TRUE(LogInvariant::conj(HasAcq, HasRel).Holds(Both));
  EXPECT_FALSE(LogInvariant::conj(HasAcq, HasRel).Holds(OnlyAcq));
  EXPECT_TRUE(LogInvariant::disj(HasAcq, HasRel).Holds(OnlyAcq));

  RelyGuarantee RG;
  EXPECT_TRUE(RG.rely(42).Holds(Both)); // missing participant: top
}

TEST(RelyGuaranteeTest, ComposeIntersectsRelyUnionsGuar) {
  LogInvariant HasAcq{"has-acq", [](const Log &L) {
                        return logCountKind(L, "acq") > 0;
                      }};
  LogInvariant HasRel{"has-rel", [](const Log &L) {
                        return logCountKind(L, "rel") > 0;
                      }};
  RelyGuarantee A, B;
  A.Rely.emplace(1, HasAcq);
  B.Rely.emplace(1, HasRel);
  A.Guar.emplace(1, HasAcq);
  B.Guar.emplace(1, HasRel);
  RelyGuarantee C = RelyGuarantee::compose(A, B, {1}, {2});

  Log OnlyAcq = {Event(1, "acq")};
  EXPECT_FALSE(C.rely(1).Holds(OnlyAcq)); // intersection
  EXPECT_TRUE(C.guar(1).Holds(OnlyAcq));  // union
}

TEST(LayerInterfaceTest, MergeUnionsPrimitives) {
  LayerInterface A("La"), B("Lb");
  A.addShared("acq", [](const PrimCall &) -> std::optional<PrimResult> {
    return PrimResult{};
  });
  B.addPrivate("get_tid", [](const PrimCall &) -> std::optional<PrimResult> {
    return PrimResult{};
  });
  auto M = LayerInterface::merge("Lab", A, B);
  EXPECT_TRUE(M->provides("acq"));
  EXPECT_TRUE(M->provides("get_tid"));
  EXPECT_TRUE(M->lookup("acq")->Shared);
  EXPECT_FALSE(M->lookup("get_tid")->Shared);
  EXPECT_EQ(M->primNames(), (std::vector<std::string>{"acq", "get_tid"}));
}

TEST(LayerInterfaceTest, MergeRejectsClashes) {
  LayerInterface A("La"), B("Lb");
  auto Sem = [](const PrimCall &) -> std::optional<PrimResult> {
    return PrimResult{};
  };
  A.addShared("acq", Sem);
  B.addShared("acq", Sem);
  EXPECT_DEATH(LayerInterface::merge("Lab", A, B), "disjoint");
}

TEST(LayerInterfaceTest, DuplicatePrimitiveAborts) {
  LayerInterface A("La");
  auto Sem = [](const PrimCall &) -> std::optional<PrimResult> {
    return PrimResult{};
  };
  A.addShared("x", Sem);
  EXPECT_DEATH(A.addShared("x", Sem), "duplicate");
}

TEST(CertificateTest, TotalsAggregateRecursively) {
  auto Leaf1 = std::make_shared<RefinementCertificate>();
  Leaf1->Obligations = 3;
  Leaf1->Runs = 2;
  Leaf1->Invariants = 1;
  auto Leaf2 = std::make_shared<RefinementCertificate>();
  Leaf2->Obligations = 4;
  auto Root = std::make_shared<RefinementCertificate>();
  Root->Obligations = 1;
  Root->Premises = {Leaf1, Leaf2};
  EXPECT_EQ(Root->totalObligations(), 8u);
  EXPECT_EQ(Root->totalRuns(), 2u);
  EXPECT_EQ(Root->totalInvariants(), 1u);
}

TEST(EnvContextTest, FairReturnBoundForcesProgress) {
  // With a fairness bound of 1, the second consecutive "return control"
  // is forbidden while a live participant exists.
  std::map<ThreadId, std::shared_ptr<Strategy>> Parts;
  Parts.emplace(2, std::shared_ptr<Strategy>(makeAtomicCallStrategy(
                       2, "f", {},
                       [](const Log &) { return std::optional<std::int64_t>(0); })));
  auto E = makeStrategyEnv(std::move(Parts), /*MaxEnvMoves=*/2,
                           /*FairReturnBound=*/1);
  Log L;
  auto C0 = E->choices(L);
  ASSERT_FALSE(C0.empty());
  ASSERT_TRUE(C0[0].ReturnsControl);
  E->advance(0, L); // one return consumed
  auto C1 = E->choices(L);
  // Now progress is forced: no return-control choice offered.
  for (const EnvChoice &C : C1)
    EXPECT_FALSE(C.ReturnsControl);
}
