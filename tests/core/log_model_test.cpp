//===- tests/core/log_model_test.cpp - Persistent log vs reference model ------===//
//
// Property-based check of the chunked copy-on-write Log against the data
// structure it replaced: a plain std::vector<Event>.  Random interleavings
// of append, copy, pop_back, and clear across a population of logs must
// leave every Log observationally identical to its shadow vector —
// size/indexing/iteration, equality between every pair, hashLog equality
// exactly when contents are equal, and isPrefixOf agreeing with a direct
// prefix scan.  This is the safety net under the Explorer's snapshot
// sharing: sealed chunks are shared between machine copies, so an aliasing
// bug here would corrupt counterexamples, not just benchmarks.
//
//===----------------------------------------------------------------------===//

#include "core/Log.h"

#include "core/Replay.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace ccal;

namespace {

/// A Log under test paired with its reference model.
struct Pair {
  Log L;
  std::vector<Event> Ref;
};

Event randomEvent(Rng &R) {
  static const char *const Kinds[] = {"acq", "rel",  "FAI_t", "hold",
                                      "f",   "push", "pop",   "sched"};
  Event E(static_cast<ThreadId>(R.below(4)),
          Kinds[R.below(sizeof(Kinds) / sizeof(Kinds[0]))]);
  std::uint64_t NArgs = R.below(3);
  for (std::uint64_t I = 0; I != NArgs; ++I)
    E.Args.push_back(R.range(-100, 100));
  return E;
}

bool refIsPrefix(const std::vector<Event> &A, const std::vector<Event> &B) {
  if (A.size() > B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (!(A[I] == B[I]))
      return false;
  return true;
}

void checkAgainstModel(const Pair &P, const std::string &Ctx) {
  ASSERT_EQ(P.L.size(), P.Ref.size()) << Ctx;
  ASSERT_EQ(P.L.empty(), P.Ref.empty()) << Ctx;
  for (size_t I = 0; I != P.Ref.size(); ++I)
    ASSERT_EQ(P.L[I], P.Ref[I]) << Ctx << " at index " << I;
  if (!P.Ref.empty())
    ASSERT_EQ(P.L.back(), P.Ref.back()) << Ctx;
  // Iteration visits the same sequence as indexing.
  size_t I = 0;
  for (const Event &E : P.L)
    ASSERT_EQ(E, P.Ref[I++]) << Ctx;
  ASSERT_EQ(I, P.Ref.size()) << Ctx;
  // The implicit vector-to-Log view is the identity on contents.
  ASSERT_EQ(P.L, Log(P.Ref)) << Ctx;
  ASSERT_EQ(hashLog(P.L), hashLog(Log(P.Ref))) << Ctx;
}

} // namespace

TEST(LogModelTest, RandomOpsMatchVectorModel) {
  const unsigned Trials = 30;
  const unsigned Steps = 120;
  for (unsigned T = 0; T != Trials; ++T) {
    Rng R(0x10d0000ULL + T);
    std::vector<Pair> Pop(1);
    for (unsigned S = 0; S != Steps; ++S) {
      size_t Who = R.below(Pop.size());
      Pair &P = Pop[Who];
      switch (R.below(5)) {
      case 0:
      case 1: { // append (biased: logs mostly grow)
        Event E = randomEvent(R);
        P.L.push_back(E);
        P.Ref.push_back(E);
        break;
      }
      case 2: // copy: sealed chunks are shared with the original
        if (Pop.size() < 8)
          Pop.push_back(Pop[Who]);
        break;
      case 3:
        if (!P.Ref.empty()) {
          P.L.pop_back();
          P.Ref.pop_back();
        }
        break;
      case 4:
        if (R.chance(1, 4)) {
          P.L.clear();
          P.Ref.clear();
        }
        break;
      }
      // Mutating one member of the population must not disturb another
      // (copy-on-write isolation), so re-check everybody every step.
      for (size_t J = 0; J != Pop.size(); ++J)
        checkAgainstModel(Pop[J],
                          "trial " + std::to_string(T) + " step " +
                              std::to_string(S) + " log " + std::to_string(J));
      // Pairwise equality, hash consistency, and prefix agreement.
      for (size_t A = 0; A != Pop.size(); ++A)
        for (size_t B = 0; B != Pop.size(); ++B) {
          bool RefEq = Pop[A].Ref == Pop[B].Ref;
          ASSERT_EQ(Pop[A].L == Pop[B].L, RefEq)
              << "trial " << T << " step " << S << " pair " << A << "," << B;
          if (RefEq)
            ASSERT_EQ(hashLog(Pop[A].L), hashLog(Pop[B].L));
          ASSERT_EQ(Pop[A].L.isPrefixOf(Pop[B].L),
                    refIsPrefix(Pop[A].Ref, Pop[B].Ref))
              << "trial " << T << " step " << S << " pair " << A << "," << B;
        }
    }
  }
}

TEST(LogModelTest, ChunkBoundaryEquality) {
  // Equality and prefix checks right at the sealing boundary (16 events),
  // where one operand's events live in a sealed chunk and the other's were
  // appended one by one into a fresh tail.
  for (size_t N : {15u, 16u, 17u, 31u, 32u, 33u}) {
    Log A, B;
    for (size_t I = 0; I != N; ++I) {
      Event E(1, "e", {static_cast<std::int64_t>(I)});
      A.push_back(E);
      B.push_back(E);
    }
    EXPECT_EQ(A, B) << N;
    EXPECT_EQ(hashLog(A), hashLog(B)) << N;
    EXPECT_TRUE(A.isPrefixOf(B)) << N;
    Log C = A; // shares A's sealed chunks
    C.push_back(Event(2, "x"));
    EXPECT_NE(A, C) << N;
    EXPECT_TRUE(A.isPrefixOf(C)) << N;
    EXPECT_FALSE(C.isPrefixOf(A)) << N;
  }
}

namespace {

/// A counting replayer whose step also records how many events it folded,
/// so memo hits (which skip the fold) are observable while remaining
/// semantically invisible.
Replayer<int> makeSumReplayer(unsigned long long *FoldCount) {
  return Replayer<int>(
      0, [FoldCount](const int &S, const Event &E) -> std::optional<int> {
        ++*FoldCount;
        if (E.Kind == "stuck")
          return std::nullopt;
        return S + (E.Args.empty() ? 1 : static_cast<int>(E.Args[0]));
      });
}

} // namespace

TEST(LogModelTest, ReplayMemoIsSemanticallyInvisible) {
  static unsigned long long Folds = 0;
  Replayer<int> R = makeSumReplayer(&Folds);
  Log L;
  int Expect = 0;
  for (int I = 1; I <= 40; ++I) {
    L.push_back(Event(1, "add", {I}));
    Expect += I;
    // Repeated replays of the same and extended logs: values must always
    // match the full fold, whatever the memo serves.
    for (int Rep = 0; Rep != 3; ++Rep) {
      std::optional<int> Got = R.replay(L);
      ASSERT_TRUE(Got.has_value());
      EXPECT_EQ(*Got, Expect) << "length " << I;
    }
  }
  // The memo must have saved most of the 40*3 full folds.
  EXPECT_LT(Folds, 40ull * 3 * 41);
}

TEST(LogModelTest, ReplayMemoDistinguishesReplayers) {
  // Two replayers with different semantics replaying the SAME log must
  // never see each other's memo entries.
  static unsigned long long FoldsA = 0, FoldsB = 0;
  Replayer<int> A = makeSumReplayer(&FoldsA);
  Replayer<int> B(100, [](const int &S, const Event &) -> std::optional<int> {
    return S - 1;
  });
  Log L = {Event(1, "add", {5}), Event(1, "add", {7})};
  for (int Rep = 0; Rep != 4; ++Rep) {
    EXPECT_EQ(A.replay(L), std::optional<int>(12));
    EXPECT_EQ(B.replay(L), std::optional<int>(98));
  }
}

TEST(LogModelTest, ReplayMemoStuckPrefixStaysStuck) {
  static unsigned long long Folds = 0;
  Replayer<int> R = makeSumReplayer(&Folds);
  Log L = {Event(1, "add", {1}), Event(1, "stuck")};
  EXPECT_FALSE(R.replay(L).has_value());
  // Extending a stuck log keeps it stuck — including via the memoized
  // prefix path.
  L.push_back(Event(1, "add", {2}));
  EXPECT_FALSE(R.replay(L).has_value());
  EXPECT_FALSE(R.replay(L).has_value());
}

TEST(LogModelTest, ReplayMemoCopiesShareSemantics) {
  // A copied Replayer has identical semantics, so serving it from the
  // original's memo (or vice versa) must be invisible.
  static unsigned long long Folds = 0;
  Replayer<int> A = makeSumReplayer(&Folds);
  Replayer<int> B = A;
  Log L = {Event(1, "add", {3}), Event(1, "add", {4})};
  EXPECT_EQ(A.replay(L), std::optional<int>(7));
  EXPECT_EQ(B.replay(L), std::optional<int>(7));
}
