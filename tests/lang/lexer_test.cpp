//===- tests/lang/lexer_test.cpp - ClightX lexer tests -------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

std::vector<TokenKind> kindsOf(const std::string &Src) {
  LexResult R = lex(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  std::vector<TokenKind> Out;
  for (const Token &T : R.Tokens)
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Kinds = kindsOf("int foo while whilex");
  EXPECT_EQ(Kinds,
            (std::vector<TokenKind>{TokenKind::KwInt, TokenKind::Ident,
                                    TokenKind::KwWhile, TokenKind::Ident,
                                    TokenKind::Eof}));
}

TEST(LexerTest, IntegerLiterals) {
  LexResult R = lex("0 42 0x2a 7u");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Tokens[0].IntVal, 0);
  EXPECT_EQ(R.Tokens[1].IntVal, 42);
  EXPECT_EQ(R.Tokens[2].IntVal, 42);
  EXPECT_EQ(R.Tokens[3].IntVal, 7);
}

TEST(LexerTest, TwoCharOperators) {
  auto Kinds = kindsOf("== != <= >= && || = < >");
  EXPECT_EQ(Kinds,
            (std::vector<TokenKind>{
                TokenKind::EqEq, TokenKind::NotEq, TokenKind::LessEq,
                TokenKind::GreaterEq, TokenKind::AmpAmp, TokenKind::PipePipe,
                TokenKind::Assign, TokenKind::Less, TokenKind::Greater,
                TokenKind::Eof}));
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Kinds = kindsOf("a // line comment\n /* block\n comment */ b");
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{TokenKind::Ident, TokenKind::Ident,
                                           TokenKind::Eof}));
}

TEST(LexerTest, LineNumbersTracked) {
  LexResult R = lex("a\nb\n\nc");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Tokens[0].Line, 1);
  EXPECT_EQ(R.Tokens[1].Line, 2);
  EXPECT_EQ(R.Tokens[2].Line, 4);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  LexResult R = lex("a $ b");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unexpected"), std::string::npos);
}

TEST(LexerTest, RejectsUnterminatedBlockComment) {
  LexResult R = lex("a /* never closed");
  EXPECT_FALSE(R.ok());
}
