//===- tests/lang/typecheck_test.cpp - ClightX semantic analysis tests ---------===//

#include "lang/TypeCheck.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

TypeCheckResult checkSrc(const std::string &Src) {
  ParseResult R = parseModule("m", Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return typeCheck(R.Module);
}

} // namespace

TEST(TypeCheckTest, ResolvesLocalsAndParams) {
  ParseResult R = parseModule("m", R"(
    int f(int a, int b) {
      int c = a + b;
      return c;
    }
  )");
  ASSERT_TRUE(R.ok());
  ASSERT_TRUE(typeCheck(R.Module).ok());
  const FuncDecl *F = R.Module.findFunc("f");
  EXPECT_EQ(F->NumSlots, 3);
  const Stmt &Decl = *F->Body->Body[0];
  EXPECT_EQ(Decl.LocalSlot, 2); // after params a=0, b=1
}

TEST(TypeCheckTest, ShadowingInNestedScopes) {
  TypeCheckResult R = checkSrc(R"(
    int f(int x) {
      int y = x;
      { int x = 2; y = y + x; }
      return y;
    }
  )");
  EXPECT_TRUE(R.ok()) << R.Error;
}

TEST(TypeCheckTest, RedeclarationInSameScopeFails) {
  TypeCheckResult R = checkSrc("int f() { int x = 1; int x = 2; return x; }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("redeclaration"), std::string::npos);
}

TEST(TypeCheckTest, UndeclaredVariableFails) {
  TypeCheckResult R = checkSrc("int f() { return nope; }");
  EXPECT_FALSE(R.ok());
}

TEST(TypeCheckTest, UndeclaredFunctionFails) {
  TypeCheckResult R = checkSrc("int f() { return g(); }");
  EXPECT_FALSE(R.ok());
}

TEST(TypeCheckTest, ArityMismatchFails) {
  TypeCheckResult R = checkSrc(R"(
    int g(int a) { return a; }
    int f() { return g(1, 2); }
  )");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("arguments"), std::string::npos);
}

TEST(TypeCheckTest, VoidValueUseFails) {
  TypeCheckResult R = checkSrc(R"(
    void g() { return; }
    int f() { return g(); }
  )");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("void"), std::string::npos);
}

TEST(TypeCheckTest, VoidCallAsStatementIsFine) {
  TypeCheckResult R = checkSrc(R"(
    void g() { return; }
    int f() { g(); return 0; }
  )");
  EXPECT_TRUE(R.ok()) << R.Error;
}

TEST(TypeCheckTest, ArrayUsedAsScalarFails) {
  TypeCheckResult R = checkSrc(R"(
    int a[3];
    int f() { return a; }
  )");
  EXPECT_FALSE(R.ok());
}

TEST(TypeCheckTest, ScalarAssignToArrayFails) {
  TypeCheckResult R = checkSrc(R"(
    int a[3];
    void f() { a = 1; }
  )");
  EXPECT_FALSE(R.ok());
}

TEST(TypeCheckTest, BreakOutsideLoopFails) {
  TypeCheckResult R = checkSrc("void f() { break; }");
  EXPECT_FALSE(R.ok());
}

TEST(TypeCheckTest, DuplicateFunctionFails) {
  TypeCheckResult R = checkSrc("int f() { return 1; } int f() { return 2; }");
  EXPECT_FALSE(R.ok());
}

TEST(TypeCheckTest, ExternMarksCalleeExtern) {
  ParseResult R = parseModule("m", R"(
    extern int prim(int x);
    int g(int x) { return x; }
    int f() { return prim(1) + g(2); }
  )");
  ASSERT_TRUE(R.ok());
  ASSERT_TRUE(typeCheck(R.Module).ok());
  const Stmt &Ret = *R.Module.findFunc("f")->Body->Body[0];
  const Expr &Sum = *Ret.A;
  EXPECT_TRUE(Sum.Args[0]->CalleeExtern);
  EXPECT_FALSE(Sum.Args[1]->CalleeExtern);
}
