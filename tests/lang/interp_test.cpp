//===- tests/lang/interp_test.cpp - ClightX interpreter tests -------------------===//

#include "lang/Interp.h"

#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

ClightModule makeModule(const std::string &Src) {
  ClightModule M = parseModuleOrDie("m", Src);
  typeCheckOrDie(M);
  return M;
}

PrimHandler noPrims() {
  return [](const std::string &,
            const std::vector<std::int64_t> &) -> std::optional<std::int64_t> {
    return std::nullopt;
  };
}

} // namespace

TEST(InterpTest, ArithmeticAndComparisons) {
  ClightModule M = makeModule(R"(
    int f(int a, int b) { return (a + b) * 2 - a % b; }
    int cmp(int a, int b) { return (a < b) + (a <= b) * 10 + (a == b) * 100; }
  )");
  Interp I(M, noPrims());
  EXPECT_EQ(I.call("f", {5, 3}), 14);
  EXPECT_EQ(I.call("cmp", {3, 3}), 110);
  EXPECT_EQ(I.call("cmp", {2, 3}), 11);
}

TEST(InterpTest, WhileLoopAndLocals) {
  ClightModule M = makeModule(R"(
    int sum(int n) {
      int s = 0;
      int i = 1;
      while (i <= n) { s = s + i; i = i + 1; }
      return s;
    }
  )");
  Interp I(M, noPrims());
  EXPECT_EQ(I.call("sum", {10}), 55);
  EXPECT_EQ(I.call("sum", {0}), 0);
}

TEST(InterpTest, BreakAndContinue) {
  ClightModule M = makeModule(R"(
    int f(int n) {
      int s = 0;
      int i = 0;
      while (1) {
        i = i + 1;
        if (i > n) { break; }
        if (i % 2 == 0) { continue; }
        s = s + i;
      }
      return s;
    }
  )");
  Interp I(M, noPrims());
  EXPECT_EQ(I.call("f", {6}), 9); // 1 + 3 + 5
}

TEST(InterpTest, GlobalsPersistAcrossCalls) {
  ClightModule M = makeModule(R"(
    int counter = 10;
    int bump() { counter = counter + 1; return counter; }
  )");
  Interp I(M, noPrims());
  EXPECT_EQ(I.call("bump", {}), 11);
  EXPECT_EQ(I.call("bump", {}), 12);
  EXPECT_EQ(I.globals()[static_cast<size_t>(I.globalAddr("counter"))], 12);
}

TEST(InterpTest, ArraysWithBoundsChecking) {
  ClightModule M = makeModule(R"(
    int a[4];
    void set(int i, int v) { a[i] = v; }
    int get(int i) { return a[i]; }
  )");
  Interp I(M, noPrims());
  EXPECT_TRUE(I.call("set", {2, 99}).has_value());
  EXPECT_EQ(I.call("get", {2}), 99);
  EXPECT_FALSE(I.call("get", {4}).has_value()); // out of bounds traps
  EXPECT_NE(I.error().find("out of bounds"), std::string::npos);
}

TEST(InterpTest, ShortCircuitSkipsPrimCalls) {
  ClightModule M = makeModule(R"(
    extern int p();
    int andf(int x) { return x && p(); }
    int orf(int x) { return x || p(); }
  )");
  unsigned Calls = 0;
  Interp I(M, [&Calls](const std::string &, const std::vector<std::int64_t> &)
               -> std::optional<std::int64_t> {
    ++Calls;
    return 1;
  });
  EXPECT_EQ(I.call("andf", {0}), 0);
  EXPECT_EQ(Calls, 0u); // RHS skipped
  EXPECT_EQ(I.call("orf", {5}), 1);
  EXPECT_EQ(Calls, 0u);
  EXPECT_EQ(I.call("andf", {1}), 1);
  EXPECT_EQ(Calls, 1u);
}

TEST(InterpTest, PrimTraceRecordsCalls) {
  ClightModule M = makeModule(R"(
    extern int p(int x);
    int f() { return p(1) + p(2); }
  )");
  Interp I(M, [](const std::string &, const std::vector<std::int64_t> &Args)
               -> std::optional<std::int64_t> { return Args[0] * 10; });
  EXPECT_EQ(I.call("f", {}), 30);
  ASSERT_EQ(I.trace().size(), 2u);
  EXPECT_EQ(I.trace()[0].Args, (std::vector<std::int64_t>{1}));
  EXPECT_EQ(I.trace()[1].Ret, 20);
}

TEST(InterpTest, StuckPrimFailsRun) {
  ClightModule M = makeModule(R"(
    extern int p();
    int f() { return p(); }
  )");
  Interp I(M, noPrims());
  EXPECT_FALSE(I.call("f", {}).has_value());
  EXPECT_NE(I.error().find("stuck"), std::string::npos);
}

TEST(InterpTest, DivisionByZeroTraps) {
  ClightModule M = makeModule("int f(int x) { return 1 / x; }");
  Interp I(M, noPrims());
  EXPECT_FALSE(I.call("f", {0}).has_value());
  EXPECT_EQ(I.call("f", {2}), 0);
}

TEST(InterpTest, InfiniteLoopHitsStepLimit) {
  ClightModule M = makeModule("void f() { while (1) {} }");
  InterpOptions Opts;
  Opts.MaxSteps = 1000;
  Interp I(M, noPrims(), Opts);
  EXPECT_FALSE(I.call("f", {}).has_value());
  EXPECT_NE(I.error().find("step limit"), std::string::npos);
}

TEST(InterpTest, RecursionWorks) {
  ClightModule M = makeModule(R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
  )");
  Interp I(M, noPrims());
  EXPECT_EQ(I.call("fib", {10}), 55);
}

TEST(InterpTest, DeepRecursionTraps) {
  ClightModule M = makeModule("int f(int n) { return f(n + 1); }");
  Interp I(M, noPrims());
  EXPECT_FALSE(I.call("f", {0}).has_value());
}

TEST(InterpTest, VoidFunctionReturnsZero) {
  ClightModule M = makeModule("void f() { return; }");
  Interp I(M, noPrims());
  EXPECT_EQ(I.call("f", {}), 0);
}

TEST(InterpTest, UnaryOperators) {
  ClightModule M = makeModule("int f(int x) { return -x + !x * 10; }");
  Interp I(M, noPrims());
  EXPECT_EQ(I.call("f", {5}), -5);
  EXPECT_EQ(I.call("f", {0}), 10);
}
