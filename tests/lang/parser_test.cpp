//===- tests/lang/parser_test.cpp - ClightX parser tests -----------------------===//

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(ParserTest, ParsesFig3Module) {
  // The paper's M1 (Fig. 3) parses unchanged.
  ParseResult R = parseModule("m1", R"(
    extern uint FAI_t();
    extern uint get_n();
    extern void inc_n();
    extern void hold();
    void acq() {
      uint my_t = FAI_t();
      while (get_n() != my_t) {}
      hold();
    }
    void rel() { inc_n(); }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Module.Funcs.size(), 6u);
  const FuncDecl *Acq = R.Module.findFunc("acq");
  ASSERT_NE(Acq, nullptr);
  EXPECT_FALSE(Acq->IsExtern);
  EXPECT_TRUE(R.Module.findFunc("FAI_t")->IsExtern);
}

TEST(ParserTest, GlobalsWithInitializersAndArrays) {
  ParseResult R = parseModule("g", R"(
    int x = 3;
    int y = -1;
    int a[4];
    int h = -1, t = -1;
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Module.Globals.size(), 5u);
  EXPECT_EQ(R.Module.findGlobal("x")->Init[0], 3);
  EXPECT_EQ(R.Module.findGlobal("y")->Init[0], -1);
  EXPECT_EQ(R.Module.findGlobal("a")->Size, 4);
  EXPECT_EQ(R.Module.findGlobal("t")->Init[0], -1);
}

TEST(ParserTest, PrecedenceAndAssociativity) {
  ParseResult R = parseModule("p", "int f() { return 1 + 2 * 3 < 7 && 1; }");
  ASSERT_TRUE(R.ok()) << R.Error;
  const FuncDecl *F = R.Module.findFunc("f");
  const Stmt &Ret = *F->Body->Body[0];
  ASSERT_EQ(Ret.K, Stmt::Kind::Return);
  // Top-level operator must be &&.
  EXPECT_EQ(Ret.A->Op, "&&");
  EXPECT_EQ(Ret.A->Args[0]->Op, "<");
  EXPECT_EQ(Ret.A->Args[0]->Args[0]->Op, "+");
  EXPECT_EQ(Ret.A->Args[0]->Args[0]->Args[1]->Op, "*");
}

TEST(ParserTest, IfElseAndDanglingElse) {
  ParseResult R = parseModule("p", R"(
    int f(int x) {
      if (x > 0)
        if (x > 10) return 2;
        else return 1;
      return 0;
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Stmt &If = *R.Module.findFunc("f")->Body->Body[0];
  ASSERT_EQ(If.K, Stmt::Kind::If);
  EXPECT_EQ(If.Else, nullptr); // else binds to the inner if
  EXPECT_NE(If.Then->Else, nullptr);
}

TEST(ParserTest, ForLoopDesugarsToWhile) {
  ParseResult R = parseModule("p", R"(
    int sum(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) { s = s + i; }
      return s;
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  // The desugared body contains a While somewhere.
  const FuncDecl *F = R.Module.findFunc("sum");
  const Stmt &Outer = *F->Body->Body[1];
  ASSERT_EQ(Outer.K, Stmt::Kind::Block);
  EXPECT_EQ(Outer.Body[1]->K, Stmt::Kind::While);
}

TEST(ParserTest, ArrayAssignAndIndexExpr) {
  ParseResult R = parseModule("p", R"(
    int a[8];
    int f(int i) {
      a[i] = a[i + 1] + 2;
      return a[0];
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Stmt &S = *R.Module.findFunc("f")->Body->Body[0];
  EXPECT_EQ(S.K, Stmt::Kind::IndexAssign);
  EXPECT_EQ(S.Name, "a");
}

TEST(ParserTest, BreakContinueParse) {
  ParseResult R = parseModule("p", R"(
    void f() {
      while (1) {
        if (2) { break; }
        continue;
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
}

TEST(ParserTest, VoidParameterList) {
  ParseResult R = parseModule("p", "int f(void) { return 1; }");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Module.findFunc("f")->Params.empty());
}

TEST(ParserTest, ReportsSyntaxErrorWithLine) {
  ParseResult R = parseModule("p", "int f() {\n return ; ;\n}");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("line"), std::string::npos);
}

TEST(ParserTest, RejectsExternGlobal) {
  ParseResult R = parseModule("p", "extern int g;");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, LinkModulesDropsSatisfiedExterns) {
  ClightModule A = parseModuleOrDie("a", R"(
    extern int helper();
    int main2() { return helper(); }
  )");
  ClightModule B = parseModuleOrDie("b", "int helper() { return 7; }");
  ClightModule L = linkModules("ab", {&A, &B});
  const FuncDecl *H = L.findFunc("helper");
  ASSERT_NE(H, nullptr);
  EXPECT_FALSE(H->IsExtern);
  EXPECT_EQ(L.Funcs.size(), 2u);
}

TEST(ParserTest, LinkModulesKeepsUnresolvedExterns) {
  ClightModule A = parseModuleOrDie("a", R"(
    extern int prim();
    int main2() { return prim(); }
  )");
  ClightModule L = linkModules("a2", {&A});
  const FuncDecl *P = L.findFunc("prim");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->IsExtern);
}
