//===- tests/mem/pushpull_test.cpp - Push/pull memory model tests --------------===//

#include "mem/PushPull.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

PushPullModel makeModel() {
  PushPullModel M;
  PushPullModel::Location Cell;
  Cell.Loc = 0;
  Cell.LocalBase = 10;
  Cell.Size = 2;
  Cell.Init = {5, 6};
  M.addLocation(Cell);
  return M;
}

} // namespace

TEST(PushPullTest, InitialReplayState) {
  PushPullModel M = makeModel();
  std::optional<SharedMemState> S = M.replay({});
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->at(0).Contents, (std::vector<std::int64_t>{5, 6}));
  EXPECT_FALSE(S->at(0).Owner.has_value());
}

TEST(PushPullTest, PullTakesOwnership) {
  PushPullModel M = makeModel();
  Log L = {Event(1, PullEventKind, {0})};
  std::optional<SharedMemState> S = M.replay(L);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->at(0).Owner, 1u);
}

TEST(PushPullTest, DoublePullIsARace) {
  PushPullModel M = makeModel();
  Log L = {Event(1, PullEventKind, {0}), Event(2, PullEventKind, {0})};
  EXPECT_FALSE(M.replay(L).has_value()); // stuck: Fig. 6's None case
}

TEST(PushPullTest, PushWithoutOwnershipIsARace) {
  PushPullModel M = makeModel();
  Log L = {Event(1, PushEventKind, {0, 7, 8})};
  EXPECT_FALSE(M.replay(L).has_value());
}

TEST(PushPullTest, PushByNonOwnerIsARace) {
  PushPullModel M = makeModel();
  Log L = {Event(1, PullEventKind, {0}), Event(2, PushEventKind, {0, 7, 8})};
  EXPECT_FALSE(M.replay(L).has_value());
}

TEST(PushPullTest, PushPublishesAndFrees) {
  PushPullModel M = makeModel();
  Log L = {Event(1, PullEventKind, {0}), Event(1, PushEventKind, {0, 7, 8}),
           Event(2, PullEventKind, {0})};
  std::optional<SharedMemState> S = M.replay(L);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->at(0).Contents, (std::vector<std::int64_t>{7, 8}));
  EXPECT_EQ(S->at(0).Owner, 2u);
}

TEST(PushPullTest, WrongAritypushIsStuck) {
  PushPullModel M = makeModel();
  Log L = {Event(1, PullEventKind, {0}), Event(1, PushEventKind, {0, 7})};
  EXPECT_FALSE(M.replay(L).has_value()); // contents must match cell size
}

TEST(PushPullTest, UnknownLocationIsStuck) {
  PushPullModel M = makeModel();
  Log L = {Event(1, PullEventKind, {42})};
  EXPECT_FALSE(M.replay(L).has_value());
}

TEST(PushPullTest, PrimSemanticsDeliverContents) {
  PushPullModel M = makeModel();
  LayerInterface L("Lmem");
  M.installPrims(L);

  const Primitive *Pull = L.lookup(PullEventKind);
  ASSERT_NE(Pull, nullptr);
  EXPECT_TRUE(Pull->Shared);

  Log Empty;
  std::vector<std::int64_t> LocalMem(16, 0);
  PrimCall Call;
  Call.Tid = 3;
  Call.Args = {0};
  Call.L = &Empty;
  Call.LocalMem = &LocalMem;
  std::optional<PrimResult> Res = Pull->Sem(Call);
  ASSERT_TRUE(Res.has_value());
  ASSERT_EQ(Res->Events.size(), 1u);
  EXPECT_EQ(Res->Events[0].Kind, PullEventKind);
  // Contents delivered at the local base.
  ASSERT_EQ(Res->LocalWrites.size(), 2u);
  EXPECT_EQ(Res->LocalWrites[0], std::make_pair(10, std::int64_t(5)));
  EXPECT_EQ(Res->LocalWrites[1], std::make_pair(11, std::int64_t(6)));
}

TEST(PushPullTest, PrimPushReadsLocalCopy) {
  PushPullModel M = makeModel();
  LayerInterface L("Lmem");
  M.installPrims(L);
  const Primitive *Push = L.lookup(PushEventKind);
  ASSERT_NE(Push, nullptr);

  Log Pulled = {Event(3, PullEventKind, {0})};
  std::vector<std::int64_t> LocalMem(16, 0);
  LocalMem[10] = 70;
  LocalMem[11] = 71;
  PrimCall Call;
  Call.Tid = 3;
  Call.Args = {0};
  Call.L = &Pulled;
  Call.LocalMem = &LocalMem;
  std::optional<PrimResult> Res = Push->Sem(Call);
  ASSERT_TRUE(Res.has_value());
  ASSERT_EQ(Res->Events.size(), 1u);
  EXPECT_EQ(Res->Events[0].Args,
            (std::vector<std::int64_t>{0, 70, 71}));
}

TEST(PushPullTest, PrimPullOfOwnedCellGetsStuck) {
  PushPullModel M = makeModel();
  LayerInterface L("Lmem");
  M.installPrims(L);
  const Primitive *Pull = L.lookup(PullEventKind);

  Log Owned = {Event(1, PullEventKind, {0})};
  std::vector<std::int64_t> LocalMem(16, 0);
  PrimCall Call;
  Call.Tid = 2;
  Call.Args = {0};
  Call.L = &Owned;
  Call.LocalMem = &LocalMem;
  EXPECT_FALSE(Pull->Sem(Call).has_value());
}
