//===- tests/mem/algmem_test.cpp - Fig. 12 algebraic memory model tests --------===//

#include "mem/AlgebraicMemory.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ccal;
using namespace ccal::memaxioms;

namespace {

/// Builds a random memory with \p N blocks, each permissioned with
/// probability PermNum/8 and randomly initialized.
AlgMem randomMem(Rng &R, unsigned N, unsigned PermNum) {
  AlgMem M;
  for (unsigned I = 0; I != N; ++I) {
    if (R.chance(PermNum, 8)) {
      std::uint32_t B = M.alloc(0, R.range(1, 4));
      for (std::int64_t Off = 0; Off < 4; ++Off)
        M.store(MemLoc{B, Off}, R.range(-100, 100)); // OOB stores ignored
    } else {
      M.liftnb(1);
    }
  }
  return M;
}

/// Builds a *composable pair*: at every index at most one side has
/// permissions.
std::pair<AlgMem, AlgMem> composablePair(Rng &R, unsigned N) {
  AlgMem A, B;
  for (unsigned I = 0; I != N; ++I) {
    switch (R.below(3)) {
    case 0: {
      std::uint32_t Blk = A.alloc(0, 2);
      A.store(MemLoc{Blk, 0}, R.range(0, 9));
      B.liftnb(1);
      break;
    }
    case 1: {
      A.liftnb(1);
      std::uint32_t Blk = B.alloc(0, 2);
      B.store(MemLoc{Blk, 1}, R.range(0, 9));
      break;
    }
    default:
      A.liftnb(1);
      B.liftnb(1);
      break;
    }
  }
  return {std::move(A), std::move(B)};
}

} // namespace

TEST(AlgMemTest, AllocLoadStoreBasics) {
  AlgMem M;
  std::uint32_t B = M.alloc(0, 3);
  EXPECT_EQ(M.nb(), 1u);
  EXPECT_TRUE(M.store(MemLoc{B, 2}, 42));
  EXPECT_EQ(M.load(MemLoc{B, 2}), 42);
  EXPECT_FALSE(M.store(MemLoc{B, 3}, 1)); // out of bounds
  EXPECT_FALSE(M.load(MemLoc{B, -1}).has_value());
  EXPECT_FALSE(M.load(MemLoc{B + 1, 0}).has_value()); // no such block
}

TEST(AlgMemTest, FreeDropsPermissionsKeepsBlockNumber) {
  AlgMem M;
  std::uint32_t B = M.alloc(0, 2);
  EXPECT_TRUE(M.freeBlock(B));
  EXPECT_EQ(M.nb(), 1u);
  EXPECT_FALSE(M.load(MemLoc{B, 0}).has_value());
  EXPECT_FALSE(M.freeBlock(B)); // already empty
}

TEST(AlgMemTest, LiftnbAddsPlaceholders) {
  AlgMem M;
  M.liftnb(3);
  EXPECT_EQ(M.nb(), 3u);
  EXPECT_FALSE(M.load(MemLoc{1, 0}).has_value());
}

TEST(AlgMemTest, ComposeRejectsDoubleOwnership) {
  AlgMem A, B;
  A.alloc(0, 1);
  B.alloc(0, 1);
  EXPECT_FALSE(AlgMem::compose(A, B).has_value());
}

TEST(AlgMemTest, ComposeTakesThePermissionedSide) {
  AlgMem A, B;
  std::uint32_t Blk = A.alloc(0, 1);
  A.store(MemLoc{Blk, 0}, 9);
  B.liftnb(1);
  std::optional<AlgMem> M = AlgMem::compose(A, B);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->load(MemLoc{0, 0}), 9);
}

TEST(AlgMemTest, ComposeWithDifferentLengths) {
  AlgMem A, B;
  A.alloc(0, 1);
  B.liftnb(3);
  std::optional<AlgMem> M = AlgMem::compose(A, B);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->nb(), 3u); // axiom Nb
}

// ---- Property sweeps over the seven Fig. 12 axioms. ----

class AlgMemAxiomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgMemAxiomTest, NbAndComm) {
  Rng R(GetParam());
  for (int Iter = 0; Iter != 50; ++Iter) {
    auto [A, B] = composablePair(R, 1 + static_cast<unsigned>(R.below(6)));
    EXPECT_TRUE(checkNb(A, B));
    EXPECT_TRUE(checkComm(A, B));
    // Also on possibly-noncomposable random pairs (vacuous cases).
    AlgMem X = randomMem(R, 4, 4), Y = randomMem(R, 4, 4);
    EXPECT_TRUE(checkNb(X, Y));
    EXPECT_TRUE(checkComm(X, Y));
  }
}

TEST_P(AlgMemAxiomTest, LdAndSt) {
  Rng R(GetParam() + 1000);
  for (int Iter = 0; Iter != 50; ++Iter) {
    auto [A, B] = composablePair(R, 1 + static_cast<unsigned>(R.below(6)));
    MemLoc Loc{static_cast<std::uint32_t>(R.below(7)),
               static_cast<std::int64_t>(R.below(3))};
    EXPECT_TRUE(checkLd(A, B, Loc));
    EXPECT_TRUE(checkSt(A, B, Loc, R.range(-5, 5)));
  }
}

TEST_P(AlgMemAxiomTest, AllocAndLifts) {
  Rng R(GetParam() + 2000);
  for (int Iter = 0; Iter != 50; ++Iter) {
    auto [A, B] = composablePair(R, 1 + static_cast<unsigned>(R.below(6)));
    EXPECT_TRUE(checkAlloc(A, B, 0, R.range(1, 4)));
    EXPECT_TRUE(checkLiftR(A, B, static_cast<std::uint32_t>(R.below(4))));
    EXPECT_TRUE(checkLiftL(A, B, static_cast<std::uint32_t>(R.below(4))));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgMemAxiomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));
