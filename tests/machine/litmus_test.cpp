//===- tests/machine/litmus_test.cpp - Weak-memory litmus tests -----------------===//
//
// Classic litmus shapes (MP, SB, LB, CoRR, IRIW) run on the multicore
// machine under both memory models, with the full allowed-outcome set
// pinned against the RC11 reference semantics (with SC fences; our RaMemory
// documents two strengthenings — SeqCst loads and atomic RMW reads always
// read the latest write — which these shapes do not distinguish).
//
// Encoding: a store to location x is the event-appending primitive wx
// (Writes = {x}); a load of x is rx, returning the number of wx events in
// the primitive's *visible* log (Reads = {x}) — so "x == 1" reads as "the
// one store to x is visible".  Observer programs fold their registers into
// the return value (a * 10 + b), and multi-observer outcomes concatenate
// per-CPU returns in CPU order (r3 * 100 + r4).

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "machine/Explorer.h"
#include "machine/MemoryModel.h"

#include <gtest/gtest.h>

#include <set>

using namespace ccal;

namespace {

/// Read/write primitive footprints for one location, with the given orders.
Footprint wfoot(const char *Loc, MemOrder W) {
  return Footprint::of({}, {Loc}).withOrders(MemOrder::Relaxed, W);
}
Footprint rfoot(const char *Loc, MemOrder R) {
  return Footprint::of({Loc}, {}).withOrders(R, MemOrder::Relaxed);
}

/// A two-location layer: wx/wy store, rx/ry load, with per-side orders.
LayerPtr makeXyLayer(MemOrder Wx, MemOrder Wy, MemOrder Rx, MemOrder Ry) {
  auto L = makeInterface("Llitmus");
  L->addShared("wx", makeEventPrim("wx"), wfoot("x", Wx));
  L->addShared("wy", makeEventPrim("wy"), wfoot("y", Wy));
  L->addShared("rx", makeReadCounterPrim("rx", "wx"), rfoot("x", Rx));
  L->addShared("ry", makeReadCounterPrim("ry", "wy"), rfoot("y", Ry));
  return L;
}

/// Compiles \p Source, runs \p Mains one per CPU (1-based, in order) under
/// \p Model, and returns the set of outcomes encoded as the base-100
/// concatenation of the listed observers' return values.
std::set<long long> outcomesOf(LayerPtr L, const std::string &Source,
                               const std::vector<std::string> &Mains,
                               const std::vector<ThreadId> &Observers,
                               MemoryModelPtr Model) {
  static thread_local ClightModule M; // outlives the machine config
  M = parseModuleOrDie("litmus", Source);
  typeCheckOrDie(M);
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "litmus";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("litmus.lasm", {&M});
  Cfg->Model = std::move(Model);
  for (ThreadId C = 0; C < Mains.size(); ++C)
    Cfg->Work.emplace(C + 1,
                      std::vector<CpuWorkItem>{{Mains[C], {}}});
  ExploreOptions Opts;
  Opts.FairnessBound = 1u << 20; // straight-line programs, no spins
  ExploreResult Res = exploreMachine(Cfg, Opts);
  EXPECT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_TRUE(Res.Complete) << Res.Truncation;
  std::set<long long> Out;
  for (const Outcome &O : Res.Outcomes) {
    long long V = 0;
    for (ThreadId T : Observers)
      V = V * 100 + O.Returns.at(T).at(0);
    Out.insert(V);
  }
  return Out;
}

const std::string MpSource = R"(
  extern void wx();
  extern void wy();
  extern int rx();
  extern int ry();
  int w_main() { wx(); wy(); return 0; }
  int r_main() { int a = ry(); int b = rx(); return a * 10 + b; }
)";

const std::string SbSource = R"(
  extern void wx();
  extern void wy();
  extern int rx();
  extern int ry();
  int sb1_main() { wx(); return ry(); }
  int sb2_main() { wy(); return rx(); }
)";

const std::string LbSource = R"(
  extern void wx();
  extern void wy();
  extern int rx();
  extern int ry();
  int lb1_main() { int a = rx(); wy(); return a; }
  int lb2_main() { int b = ry(); wx(); return b; }
)";

const std::string CorrSource = R"(
  extern void wx();
  extern int rx();
  int w_main() { wx(); wx(); return 0; }
  int r_main() { int a = rx(); int b = rx(); return a * 10 + b; }
)";

const std::string IriwSource = R"(
  extern void wx();
  extern void wy();
  extern int rx();
  extern int ry();
  int wx_main() { wx(); return 0; }
  int wy_main() { wy(); return 0; }
  int r1_main() { int a = rx(); int b = ry(); return a * 10 + b; }
  int r2_main() { int c = ry(); int d = rx(); return c * 10 + d; }
)";

} // namespace

// --- MP (message passing): data x, flag y -------------------------------

TEST(LitmusMpTest, ReleaseAcquirePinsScSet) {
  // wy is a release store, ry an acquire load: seeing the flag implies
  // seeing the data, so flag-without-data (a=1, b=0 -> 10) is forbidden
  // and the outcome set collapses to the SC one.
  LayerPtr L = makeXyLayer(MemOrder::Relaxed, MemOrder::Release,
                           MemOrder::Relaxed, MemOrder::Acquire);
  const std::set<long long> Pinned = {0, 1, 11};
  EXPECT_EQ(outcomesOf(L, MpSource, {"w_main", "r_main"}, {2}, scMemory()),
            Pinned);
  EXPECT_EQ(outcomesOf(L, MpSource, {"w_main", "r_main"}, {2}, raMemory()),
            Pinned);
}

TEST(LitmusMpTest, RelaxedAdmitsStaleData) {
  // Fully relaxed: the load of x may ignore the store even after the flag
  // was seen; all four outcomes appear.
  LayerPtr L = makeXyLayer(MemOrder::Relaxed, MemOrder::Relaxed,
                           MemOrder::Relaxed, MemOrder::Relaxed);
  EXPECT_EQ(outcomesOf(L, MpSource, {"w_main", "r_main"}, {2}, raMemory()),
            (std::set<long long>{0, 1, 10, 11}));
  // The SC backend never produces the weak outcome, annotations or not.
  EXPECT_EQ(outcomesOf(L, MpSource, {"w_main", "r_main"}, {2}, scMemory()),
            (std::set<long long>{0, 1, 11}));
}

TEST(LitmusMpTest, NegativeControlMissingReleaseAdmitsForbiddenOutcome) {
  // The deliberate mis-annotation: acquire load, but the flag store is
  // demoted to relaxed.  The synchronization edge disappears and the
  // MP-forbidden outcome 10 must be admitted — this is the test that
  // proves the checker would catch a lock annotated weaker than its
  // implementation.
  LayerPtr L = makeXyLayer(MemOrder::Relaxed, MemOrder::Relaxed,
                           MemOrder::Relaxed, MemOrder::Acquire);
  std::set<long long> Out =
      outcomesOf(L, MpSource, {"w_main", "r_main"}, {2}, raMemory());
  EXPECT_TRUE(Out.count(10)) << "missing release must admit stale data";
  EXPECT_EQ(Out, (std::set<long long>{0, 1, 10, 11}));
}

// --- SB (store buffering) -----------------------------------------------

TEST(LitmusSbTest, RelaxedAndReleaseAcquireAdmitBothStale) {
  // SB is the shape release/acquire does NOT forbid: neither load reads
  // from the other thread's store, so 0/0 (both stale) is allowed under
  // RC11 unless the accesses are SC.
  const std::set<long long> Weak = {0, 1, 100, 101};
  LayerPtr Rlx = makeXyLayer(MemOrder::Relaxed, MemOrder::Relaxed,
                             MemOrder::Relaxed, MemOrder::Relaxed);
  EXPECT_EQ(outcomesOf(Rlx, SbSource, {"sb1_main", "sb2_main"}, {1, 2},
                       raMemory()),
            Weak);
  LayerPtr RelAcq = makeXyLayer(MemOrder::Release, MemOrder::Release,
                                MemOrder::Acquire, MemOrder::Acquire);
  EXPECT_EQ(outcomesOf(RelAcq, SbSource, {"sb1_main", "sb2_main"}, {1, 2},
                       raMemory()),
            Weak);
}

TEST(LitmusSbTest, SeqCstForbidsBothStale)
{
  // SC accesses (or the SC model) restore the interleaving semantics:
  // one of the two stores is first, so at least one load sees a store.
  const std::set<long long> Pinned = {1, 100, 101};
  LayerPtr Sc = makeXyLayer(MemOrder::SeqCst, MemOrder::SeqCst,
                            MemOrder::SeqCst, MemOrder::SeqCst);
  EXPECT_EQ(outcomesOf(Sc, SbSource, {"sb1_main", "sb2_main"}, {1, 2},
                       raMemory()),
            Pinned);
  LayerPtr Rlx = makeXyLayer(MemOrder::Relaxed, MemOrder::Relaxed,
                             MemOrder::Relaxed, MemOrder::Relaxed);
  EXPECT_EQ(outcomesOf(Rlx, SbSource, {"sb1_main", "sb2_main"}, {1, 2},
                       scMemory()),
            Pinned);
}

// --- LB (load buffering) ------------------------------------------------

TEST(LitmusLbTest, OutOfThinAirForbiddenUnderBothModels) {
  // 1/1 would need each load to read a write that is only performed later;
  // our reads-from enumeration ranges over the log so far, which is the
  // operational face of RC11's po ∪ rf acyclicity.  LB stays forbidden
  // even fully relaxed.
  const std::set<long long> Pinned = {0, 1, 100};
  LayerPtr Rlx = makeXyLayer(MemOrder::Relaxed, MemOrder::Relaxed,
                             MemOrder::Relaxed, MemOrder::Relaxed);
  EXPECT_EQ(outcomesOf(Rlx, LbSource, {"lb1_main", "lb2_main"}, {1, 2},
                       raMemory()),
            Pinned);
  EXPECT_EQ(outcomesOf(Rlx, LbSource, {"lb1_main", "lb2_main"}, {1, 2},
                       scMemory()),
            Pinned);
}

// --- CoRR (coherence of read-read) --------------------------------------

TEST(LitmusCorrTest, ReadsNeverGoBackwards) {
  // Two relaxed loads of the same location: the second may not observe
  // *fewer* writes than the first (per-location view fronts only advance),
  // so a <= b is pinned; everything coherent appears.
  const std::set<long long> Pinned = {0, 1, 2, 11, 12, 22};
  LayerPtr Rlx = makeXyLayer(MemOrder::Relaxed, MemOrder::Relaxed,
                             MemOrder::Relaxed, MemOrder::Relaxed);
  EXPECT_EQ(outcomesOf(Rlx, CorrSource, {"w_main", "r_main"}, {2},
                       raMemory()),
            Pinned);
  EXPECT_EQ(outcomesOf(Rlx, CorrSource, {"w_main", "r_main"}, {2},
                       scMemory()),
            Pinned);
}

// --- IRIW (independent reads of independent writes) ---------------------

TEST(LitmusIriwTest, ReleaseAcquireAdmitsDisagreeingReaders) {
  // The two observers may disagree on the order of the two independent
  // stores (r1 = 10, r2 = 10): release/acquire gives no total store
  // order.  Pinned superset-free: the weak outcome 10*100+10 = 1010 is in,
  // and under the SC model it is out.
  LayerPtr RelAcq = makeXyLayer(MemOrder::Release, MemOrder::Release,
                                MemOrder::Acquire, MemOrder::Acquire);
  std::set<long long> Ra =
      outcomesOf(RelAcq, IriwSource,
                 {"wx_main", "wy_main", "r1_main", "r2_main"}, {3, 4},
                 raMemory());
  EXPECT_TRUE(Ra.count(1010)) << "RA must admit disagreeing readers";
  std::set<long long> Sc =
      outcomesOf(RelAcq, IriwSource,
                 {"wx_main", "wy_main", "r1_main", "r2_main"}, {3, 4},
                 scMemory());
  EXPECT_FALSE(Sc.count(1010));
  // RA admits every SC outcome (variant 0 is the all-latest choice).
  for (long long V : Sc)
    EXPECT_TRUE(Ra.count(V)) << V;
}

TEST(LitmusIriwTest, SeqCstLoadsRestoreAgreement) {
  // With SC loads both readers read the latest store in modification
  // order, which restores a total order on what they can see — the
  // documented SeqCst strengthening of RaMemory.
  LayerPtr ScLoads = makeXyLayer(MemOrder::Release, MemOrder::Release,
                                 MemOrder::SeqCst, MemOrder::SeqCst);
  std::set<long long> Out =
      outcomesOf(ScLoads, IriwSource,
                 {"wx_main", "wy_main", "r1_main", "r2_main"}, {3, 4},
                 raMemory());
  EXPECT_FALSE(Out.count(1010));
}

// --- POR differential under RaMemory ------------------------------------

TEST(LitmusPorTest, PorEquivalentOnRelaxedMp) {
  // The ordering-aware conflict relation (same-location read/read pairs
  // conflict once a footprint is weakly ordered) must keep DPOR exact
  // under reads-from enumeration: POR and full exploration agree on the
  // canonical outcome set of the relaxed MP machine.
  static ClightModule M;
  M = parseModuleOrDie("litmus_por", MpSource);
  typeCheckOrDie(M);
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "litmus_por";
  Cfg->Layer = makeXyLayer(MemOrder::Relaxed, MemOrder::Relaxed,
                           MemOrder::Relaxed, MemOrder::Relaxed);
  Cfg->Program = compileAndLink("litmus_por.lasm", {&M});
  Cfg->Model = raMemory();
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"w_main", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"r_main", {}}});
  ExploreOptions Opts;
  Opts.MaxParticipantSteps = 64;
  PorEquivalenceReport Rep = checkPorEquivalence(Cfg, Opts);
  ASSERT_TRUE(Rep.Ok) << Rep.Detail;
  EXPECT_TRUE(Rep.Match) << Rep.Detail;
}
