//===- tests/machine/determinism_test.cpp - Worker-count invariance -----------===//
//
// The sharded-recording contract (machine/Explorer.h): per-worker outcome
// shards merged at the join must make every counter and the outcome SET
// independent of the worker count.  Schedules/states/outcomes are
// schedule-deterministic (every node is expanded exactly once regardless
// of which worker expands it), while stored-outcome *order* is search-
// order dependent under work stealing — so counters compare exactly and
// outcomes compare as sets.  Threads=1 additionally pins the exact
// sequential baseline ordering.
//
//===----------------------------------------------------------------------===//

#include "machine/Explorer.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "objects/TicketLock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace ccal;

namespace {

/// The atomic ticket-lock spec layer (the bench workload's shape, sized
/// for a test): blocking acq exercises the schedulable() dry-run path,
/// and f/g make return values schedule-sensitive.
MachineConfigPtr makeSpecConfig(unsigned Cpus, unsigned Rounds) {
  static TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule Client = cloneModule(makeTicketClient());
  static AsmProgramPtr Prog =
      compileAndLink("tickspec_det.lasm", {&Client});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "tickspec_det";
  Cfg->Layer = Layers.L1;
  Cfg->Program = Prog;
  for (ThreadId C = 1; C <= Cpus; ++C) {
    std::vector<CpuWorkItem> Items;
    for (unsigned I = 0; I != Rounds; ++I)
      Items.push_back({"t_main", {}});
    Cfg->Work.emplace(C, std::move(Items));
  }
  return Cfg;
}

/// Canonical rendering of one outcome: the final log plus per-thread
/// returns, so set comparison sees full observable behavior.
std::string outcomeKey(const Outcome &O) {
  std::string S = logToString(O.FinalLog);
  for (const auto &[Tid, Rets] : O.Returns) {
    S += " | " + std::to_string(Tid) + ":";
    for (std::int64_t R : Rets)
      S += std::to_string(R) + ",";
  }
  return S;
}

std::multiset<std::string> outcomeSet(const ExploreResult &Res) {
  std::multiset<std::string> Out;
  for (const Outcome &O : Res.Outcomes)
    Out.insert(outcomeKey(O));
  return Out;
}

} // namespace

TEST(DeterminismTest, CountersAndOutcomeSetInvariantAcrossWorkerCounts) {
  std::map<unsigned, ExploreResult> Results;
  for (unsigned Threads : {1u, 2u, 4u}) {
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 512;
    Opts.Threads = Threads;
    Results.emplace(Threads, exploreMachine(makeSpecConfig(4, 2), Opts));
  }
  const ExploreResult &Base = Results.at(1);
  ASSERT_TRUE(Base.Ok) << Base.Violation;
  ASSERT_TRUE(Base.Complete);
  ASSERT_GT(Base.SchedulesExplored, 100u); // non-trivial state space
  std::multiset<std::string> BaseSet = outcomeSet(Base);
  for (unsigned Threads : {2u, 4u}) {
    const ExploreResult &Res = Results.at(Threads);
    ASSERT_TRUE(Res.Ok) << "Threads=" << Threads << ": " << Res.Violation;
    EXPECT_TRUE(Res.Complete) << Threads;
    EXPECT_EQ(Res.SchedulesExplored, Base.SchedulesExplored) << Threads;
    EXPECT_EQ(Res.StatesExplored, Base.StatesExplored) << Threads;
    EXPECT_EQ(Res.MaxLogLen, Base.MaxLogLen) << Threads;
    EXPECT_EQ(Res.Outcomes.size(), Base.Outcomes.size()) << Threads;
    EXPECT_EQ(outcomeSet(Res), BaseSet) << Threads;
  }
}

TEST(DeterminismTest, InvariantAcrossStealBatchSizes) {
  // Donations move contiguous frontier batches of up to StealBatch
  // frames; the batch size decides WHERE work lands, never WHAT is
  // explored.  Counters and the outcome set must agree with the
  // sequential baseline for every (Threads, StealBatch) combination,
  // including the degenerate single-frame batch (the pre-batching
  // behavior) and a batch larger than any plausible frontier.
  ExploreOptions Base;
  Base.FairnessBound = 2;
  Base.MaxSteps = 512;
  Base.Threads = 1;
  ExploreResult Seq = exploreMachine(makeSpecConfig(4, 2), Base);
  ASSERT_TRUE(Seq.Ok) << Seq.Violation;
  ASSERT_TRUE(Seq.Complete);
  std::multiset<std::string> SeqSet = outcomeSet(Seq);
  for (unsigned Threads : {2u, 4u})
    for (unsigned Batch : {1u, 8u, 64u}) {
      ExploreOptions Opts = Base;
      Opts.Threads = Threads;
      Opts.StealBatch = Batch;
      ExploreResult Res = exploreMachine(makeSpecConfig(4, 2), Opts);
      ASSERT_TRUE(Res.Ok) << "Threads=" << Threads << " Batch=" << Batch
                          << ": " << Res.Violation;
      EXPECT_TRUE(Res.Complete) << Threads << "/" << Batch;
      EXPECT_EQ(Res.SchedulesExplored, Seq.SchedulesExplored)
          << Threads << "/" << Batch;
      EXPECT_EQ(Res.StatesExplored, Seq.StatesExplored)
          << Threads << "/" << Batch;
      EXPECT_EQ(outcomeSet(Res), SeqSet) << Threads << "/" << Batch;
      // Donations count frames, StealBatches counts lock acquisitions
      // that moved them: batching can only shrink the batch count, and
      // every batch carries at least one frame.
      EXPECT_LE(Res.StealBatches, Res.Donations) << Threads << "/" << Batch;
      EXPECT_LE(Res.Donations, Res.StealBatches * Batch)
          << Threads << "/" << Batch;
    }
}

TEST(DeterminismTest, SequentialRunsAreBitIdentical) {
  // Threads=1 twice: not just the same sets — the same order, entry for
  // entry, because the sequential engine is a deterministic DFS and the
  // shard merge with one worker is the identity.
  ExploreOptions Opts;
  Opts.FairnessBound = 2;
  Opts.MaxSteps = 512;
  Opts.Threads = 1;
  ExploreResult A = exploreMachine(makeSpecConfig(3, 1), Opts);
  ExploreResult B = exploreMachine(makeSpecConfig(3, 1), Opts);
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  EXPECT_EQ(A.SchedulesExplored, B.SchedulesExplored);
  EXPECT_EQ(A.StatesExplored, B.StatesExplored);
  ASSERT_EQ(A.Outcomes.size(), B.Outcomes.size());
  for (size_t I = 0; I != A.Outcomes.size(); ++I) {
    EXPECT_EQ(A.Outcomes[I].FinalLog, B.Outcomes[I].FinalLog) << I;
    EXPECT_EQ(A.Outcomes[I].Returns, B.Outcomes[I].Returns) << I;
  }
}

TEST(DeterminismTest, OnOutcomeCallbackFiresOncePerDistinctOutcome) {
  // The callback path keeps the global deduper under ResMu precisely so
  // this invariant (checkers count calls) survives sharding: the number
  // of callback invocations equals the number of distinct outcomes, at
  // every worker count.
  std::uint64_t Distinct;
  {
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 512;
    ExploreResult Res = exploreMachine(makeSpecConfig(3, 1), Opts);
    ASSERT_TRUE(Res.Ok) << Res.Violation;
    Distinct = Res.Outcomes.size();
    ASSERT_GT(Distinct, 1u);
  }
  for (unsigned Threads : {1u, 4u}) {
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 512;
    Opts.Threads = Threads;
    std::atomic<std::uint64_t> Calls{0};
    Opts.OnOutcome = [&Calls](const Outcome &) -> std::string {
      Calls.fetch_add(1, std::memory_order_relaxed);
      return "";
    };
    ExploreResult Res = exploreMachine(makeSpecConfig(3, 1), Opts);
    ASSERT_TRUE(Res.Ok) << Res.Violation;
    EXPECT_EQ(Calls.load(), Distinct) << Threads;
  }
}
