//===- tests/machine/hardware_test.cpp - Thm 3.1 multicore linking --------------===//

#include "machine/HardwareMachine.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

/// A client with a little CPU-private computation around shared ticks, so
/// the hardware machine has many instruction interleavings that all
/// collapse to the same query-point behaviors.  Kept tiny: instruction-
/// granularity exploration is exponential in code length.
MachineConfigPtr makeLinkConfig(unsigned Cpus, unsigned Ticks) {
  static ClightModule Client1 = [] {
    ClightModule M = parseModuleOrDie("c1", R"(
      extern int tick();
      int scratch = 0;
      int t_main() {
        scratch = scratch + 1;   // CPU-private work before the query point
        return tick() * 10 + scratch;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  static ClightModule Client2 = [] {
    ClightModule M = parseModuleOrDie("c2", R"(
      extern int tick();
      int t_main() { return tick() * 10 + tick(); }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  const ClightModule *Client = Ticks >= 2 ? &Client2 : &Client1;
  auto L = makeInterface("Lx86");
  L->addShared("tick", makeFetchIncPrim("tick"));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "linkcfg";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("linkcfg.lasm", {Client});
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

} // namespace

TEST(HardwareMachineTest, SingleCpuStepsInstructions) {
  HardwareMachine M(makeLinkConfig(1, 1));
  ASSERT_TRUE(M.ok());
  std::uint64_t Steps = 0;
  while (!M.allIdle()) {
    std::vector<ThreadId> Ready = M.schedulable();
    ASSERT_EQ(Ready.size(), 1u);
    ASSERT_TRUE(M.step(Ready[0])) << M.error();
    ++Steps;
  }
  // Far more hardware cycles than the single query point.
  EXPECT_GT(Steps, 8u);
  EXPECT_EQ(M.log().size(), 1u);
  EXPECT_EQ(M.returns().at(1),
            std::vector<std::int64_t>{1}); // tick 0 * 10 + scratch 1
}

TEST(HardwareMachineTest, PreemptionBetweenInstructions) {
  // Run CPU 1 for a few instruction cycles (it does local work but has
  // not yet committed its shared tick), then let CPU 2 run to completion:
  // CPU 2 wins the tick even though CPU 1 started first — hardware
  // preemption at instruction granularity.
  HardwareMachine M(makeLinkConfig(2, 1));
  for (int Cycle = 0; Cycle != 3; ++Cycle)
    ASSERT_TRUE(M.step(1)) << M.error();
  EXPECT_TRUE(M.log().empty()); // CPU 1's tick not yet committed
  while (M.log().empty())
    ASSERT_TRUE(M.step(2)) << M.error();
  EXPECT_EQ(M.log()[0].Tid, 2u);
}

TEST(MulticoreLinkTest, Thm31HoldsTwoCpus) {
  // Fairness bound 16 exceeds the longest local stretch, so the hardware
  // sweep is rich enough to check *exactness*: the reduction is lossless.
  MulticoreLinkReport Rep =
      checkMulticoreLinking(makeLinkConfig(2, 1), /*FairnessBound=*/16,
                            /*MaxSchedules=*/1u << 22,
                            /*CheckExactness=*/true);
  ASSERT_TRUE(Rep.Holds) << Rep.Counterexample;
  // The hardware machine explores many more schedules but produces
  // exactly the layer machine's outcomes.
  EXPECT_GT(Rep.HardwareSchedules, Rep.LayerSchedules);
  EXPECT_EQ(Rep.HardwareOutcomes, Rep.LayerOutcomes);
  EXPECT_EQ(Rep.ObligationsChecked, Rep.HardwareOutcomes);
}

TEST(MulticoreLinkTest, Thm31HoldsTwoTicks) {
  MulticoreLinkReport Rep =
      checkMulticoreLinking(makeLinkConfig(2, 2), /*FairnessBound=*/2);
  ASSERT_TRUE(Rep.Holds) << Rep.Counterexample;
  EXPECT_GE(Rep.HardwareOutcomes, 2u);
}

TEST(MulticoreLinkTest, CertificateRecordsEvidence) {
  MulticoreLinkReport Rep =
      checkMulticoreLinking(makeLinkConfig(2, 1), /*FairnessBound=*/2);
  CertPtr C = makeMulticoreLinkCertificate("linkcfg", Rep);
  EXPECT_TRUE(C->Valid);
  EXPECT_EQ(C->Rule, "MulticoreLink");
  EXPECT_GT(C->Runs, 0u);
}

TEST(MulticoreLinkTest, SharedLocalMemoryWouldBreakTheTheorem) {
  // Negative control: if a "private" primitive actually observed shared
  // state (here: the log length), instruction interleavings become
  // observable and the hardware machine produces outcomes the layer
  // machine cannot.  The checker must catch this modeling error.
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int tick();
      extern int leak();
      int t_main() { return leak() * 100 + tick(); }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Lleaky");
  L->addShared("tick", makeFetchIncPrim("tick"));
  // A *private* primitive that reads the global log: a modeling bug.
  L->addPrivate("leak", [](const PrimCall &Call)
                    -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = static_cast<std::int64_t>(Call.L->size());
    return Res;
  });
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "leaky";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("leaky.lasm", {&Client});
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});

  MulticoreLinkReport Rep = checkMulticoreLinking(Cfg, /*FairnessBound=*/3);
  EXPECT_FALSE(Rep.Holds);
}
