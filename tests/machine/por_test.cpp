//===- tests/machine/por_test.cpp - Partial-order reduction tests ---------------===//
//
// Differential soundness of the sleep-set reduction (POR must preserve the
// deduplicated outcome set on every seed workload), the negative control
// (an under-reported footprint must be caught, not silently accepted), and
// the truncation regressions (no Valid certificate from an incomplete
// exploration).
//
//===----------------------------------------------------------------------===//

#include "machine/Explorer.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "machine/Soundness.h"
#include "objects/Harness.h"
#include "objects/McsLock.h"
#include "objects/SharedQueue.h"
#include "objects/TicketLock.h"
#include "threads/Sched.h"
#include "threads/ThreadMachine.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace ccal;

namespace {

/// Fully independent workload: each CPU bumps its own counter through its
/// own primitive, with honestly disjoint declared footprints.  Every
/// interleaving reaches the same outcome, so POR should collapse the
/// schedule space to (nearly) one representative per Mazurkiewicz trace.
MachineConfigPtr makeIndependentCountersConfig() {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int tick1();
      extern int tick2();
      extern int tick3();
      int t1() { tick1(); tick1(); return 0; }
      int t2() { tick2(); tick2(); return 0; }
      int t3() { tick3(); tick3(); return 0; }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Lindep");
  L->addShared("tick1", makeFetchIncPrim("tick1"),
               Footprint::of({"c1"}, {"c1"}));
  L->addShared("tick2", makeFetchIncPrim("tick2"),
               Footprint::of({"c2"}, {"c2"}));
  L->addShared("tick3", makeFetchIncPrim("tick3"),
               Footprint::of({"c3"}, {"c3"}));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "indep";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("indep.lasm", {&Client});
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t1", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t2", {}}});
  Cfg->Work.emplace(3, std::vector<CpuWorkItem>{{"t3", {}}});
  return Cfg;
}

/// The Fig. 3 stack over the concrete L0 ticket-lock layer: two CPUs
/// contending for the lock, with genuinely dependent (lock words) and
/// genuinely independent (f vs g) primitives mixed.
MachineConfigPtr makeFig3Config() {
  static TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("P", R"(
      extern void acq();
      extern void rel();
      extern int f();
      extern int g();
      int t_main() {
        acq();
        int a = f();
        int b = g();
        rel();
        return a * 10 + b;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  static ClightModule Ticket = cloneModule(Layers.M1);
  static AsmProgramPtr Prog =
      compileAndLink("fig3_por.lasm", {&Client, &Ticket});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "fig3";
  Cfg->Layer = Layers.L0;
  Cfg->Program = Prog;
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

/// The atomic ticket-lock spec layer L1 under the same client shape.
MachineConfigPtr makeTicketSpecConfig(unsigned Cpus) {
  static TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule Client = cloneModule(makeTicketClient());
  static AsmProgramPtr Prog =
      compileAndLink("tickspec_por.lasm", {&Client});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "tickspec";
  Cfg->Layer = Layers.L1;
  Cfg->Program = Prog;
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

/// The atomic MCS spec layer under the same client shape.
MachineConfigPtr makeMcsSpecConfig(unsigned Cpus) {
  static McsLockLayers Layers = makeMcsLockLayers();
  static ClightModule Client = cloneModule(makeTicketClient());
  static AsmProgramPtr Prog =
      compileAndLink("mcsspec_por.lasm", {&Client});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "mcsspec";
  Cfg->Layer = Layers.L1;
  Cfg->Program = Prog;
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

/// Two-CPU layer whose declared footprints LIE: `r` reads the counter
/// that `w` bumps, but declares a footprint disjoint from `w`'s.  The
/// differential check must catch the resulting missed outcome.
MachineConfigPtr makeLyingFootprintConfig() {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int w();
      extern int r();
      int t_w() { return w(); }
      int t_r() { return r(); }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Llying");
  L->addShared("w", makeFetchIncPrim("w"), Footprint::of({"w"}, {"w"}));
  // r's return value depends on the number of w events, but its declared
  // footprint omits the read — the under-reporting POR must not trust.
  L->addShared("r", makeReadCounterPrim("r", "w"),
               Footprint::of({"r"}, {"r"}));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "lying";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("lying.lasm", {&Client});
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_w", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t_r", {}}});
  return Cfg;
}

/// Plain shared-counter workload (every step conflicts with every other):
/// the truncation regressions only need a machine with >1 schedule.
MachineConfigPtr makeTickConfig(unsigned Cpus, unsigned Ticks) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int tick();
      int t_main(int k) {
        int acc = 0;
        int i = 0;
        while (i < k) {
          acc = acc * 10 + tick();
          i = i + 1;
        }
        return acc;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Ltick");
  L->addShared("tick", makeFetchIncPrim("tick"));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "tick";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("tick_por.lasm", {&Client});
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{
                             {"t_main", {static_cast<std::int64_t>(Ticks)}}});
  return Cfg;
}

/// Two threads on two CPUs over the high-level scheduler prims; the
/// threaded machine declares opaque footprints, so POR must degrade to a
/// full exploration (zero skips) while staying equivalent.
ThreadedConfigPtr makeThreadedConfig() {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern void yield();
      extern int bump();
      int t_main() {
        int a = bump();
        yield();
        int b = bump();
        return a * 100 + b;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 1}};
  auto L = makeInterface("Lhtd_por");
  installHighSchedPrims(*L, CpuOf);
  L->addShared("bump", makeFetchIncPrim("bump"));
  auto Cfg = std::make_shared<ThreadedConfig>();
  Cfg->Name = "htd_por";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("htd_por.lasm", {&Client});
  Cfg->Sched = makeHighSchedFn(CpuOf);
  Cfg->Threads.push_back({0, 0, {{"t_main", {}}}});
  Cfg->Threads.push_back({1, 1, {{"t_main", {}}}});
  return Cfg;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential POR soundness (tentpole)
//===----------------------------------------------------------------------===//

TEST(PorTest, IndependentCountersReduction) {
  // 3 CPUs x 2 fully independent steps: 6!/(2!2!2!) = 90 schedules in
  // full, one Mazurkiewicz trace under POR.  Source-set DPOR detects no
  // race anywhere (disjoint footprints), so no backtrack point is ever
  // scheduled and exactly ONE schedule is explored — where sleep sets
  // alone still walked every child and pruned late.
  ExploreOptions Opts;
  PorEquivalenceReport R =
      checkPorEquivalence(makeIndependentCountersConfig(), Opts);
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_TRUE(R.Match) << R.Detail;
  EXPECT_EQ(R.FullSchedules, 90u);
  EXPECT_EQ(R.PorSchedules, 1u);
  EXPECT_EQ(R.Backtracks, 0u);
}

TEST(PorTest, EquivalenceFig3) {
  // The concrete ticket-lock stack: dependent lock words, independent
  // f/g.  FairnessBound is linearization-dependent, so the differential
  // check bounds the spinning acq with the trace-invariant per-CPU cap.
  // The lock-word conflicts force genuine races, so DPOR must both
  // schedule reversals (backtracks) and still come out strictly smaller
  // than the full sweep.
  ExploreOptions Opts;
  Opts.MaxParticipantSteps = 10;
  Opts.MaxSteps = 256;
  PorEquivalenceReport R = checkPorEquivalence(makeFig3Config(), Opts);
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_TRUE(R.Match) << R.Detail;
  EXPECT_LT(R.PorSchedules, R.FullSchedules);
  EXPECT_GT(R.Backtracks, 0u);
}

TEST(PorTest, EquivalenceTicketSpec) {
  // The atomic L1 layer: blocking acq means no spinning, so no divergence
  // bound is needed even with fairness cleared.
  ExploreOptions Opts;
  Opts.MaxSteps = 4096;
  PorEquivalenceReport R =
      checkPorEquivalence(makeTicketSpecConfig(3), Opts);
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_TRUE(R.Match) << R.Detail;
  EXPECT_LE(R.PorSchedules, R.FullSchedules);
}

TEST(PorTest, EquivalenceMcsSpec) {
  ExploreOptions Opts;
  Opts.MaxSteps = 4096;
  PorEquivalenceReport R = checkPorEquivalence(makeMcsSpecConfig(2), Opts);
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_TRUE(R.Match) << R.Detail;
}

TEST(PorTest, EquivalenceSharedQueue) {
  // Producer/consumer over the atomic-lock underlay (blocking acq;
  // terminates without a fairness bound).
  SharedQueueSetup Setup = makeSharedQueueSetup(1, 1, 1);
  ExploreOptions Opts;
  Opts.MaxSteps = 512;
  PorEquivalenceReport R = checkPorEquivalence(Setup.ImplConfig, Opts);
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_TRUE(R.Match) << R.Detail;
}

TEST(PorTest, EquivalenceThreadedOpaque) {
  // The threaded machine declares opaque footprints (settle() hides the
  // dispatcher's side effects), so POR must not skip anything — and the
  // differential check must still report equality.
  ThreadedMachine Root(makeThreadedConfig());
  ASSERT_TRUE(Root.ok()) << Root.error();
  ThreadedExploreOptions Opts;
  PorEquivalenceReport R = checkPorEquivalence(Root, Opts);
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_TRUE(R.Match) << R.Detail;
  EXPECT_EQ(R.SleepSkips, 0u);
  EXPECT_EQ(R.PorSchedules, R.FullSchedules);
}

TEST(PorTest, UnderReportedFootprintCaught) {
  // Negative control: `r` reads the counter `w` bumps but declares a
  // disjoint footprint.  POR trusts the declaration, collapses the two
  // orders, and loses the r-before-w outcome — the differential check
  // must report the divergence instead of Match.
  ExploreOptions Opts;
  PorEquivalenceReport R =
      checkPorEquivalence(makeLyingFootprintConfig(), Opts);
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_FALSE(R.Match);
  EXPECT_NE(R.Detail.find("missing under POR"), std::string::npos)
      << R.Detail;
  EXPECT_GT(R.FullOutcomes, R.PorOutcomes);
}

/// Two CPUs calling an event-free shared primitive whose DECLARED
/// footprint conflicts with itself across CPUs — an honest
/// over-approximation (the primitive touches nothing at all, so
/// declaring {x} is pessimistic, not a lie).  DPOR must treat the calls
/// as dependent and explore both orders, but the orders reconverge on
/// bit-identical snapshots (no events, no writes): exactly the shape the
/// POR-aware StateCache is allowed to prune.
MachineConfigPtr makeOverApproxNopConfig(unsigned Cpus) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int onop();
      int t_main() {
        onop();
        onop();
        return 0;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Lonop");
  L->addShared("onop", makeConstPrim(0), Footprint::of({"x"}, {"x"}));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "onop";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("onop.lasm", {&Client});
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

TEST(PorTest, StateCacheSoundUnderPor) {
  // PR 2 bypassed the StateCache whenever POR was on (a cached state may
  // have been reached with a different sleep set).  The bounded cache
  // lifts that: entries are inserted only for FULLY explored subtrees at
  // frame pop, carry the frame's sleep set and step tally, hit only when
  // the cached context is no stronger than the probing frame's, and
  // replay the pruned subtree's race detection from a step summary.  On
  // a workload with over-approximated footprints — where DPOR alone
  // degrades toward full exploration but states genuinely reconverge —
  // the cache must fire AND the outcome set must stay exactly the full
  // exploration's.
  MachineConfigPtr Cfg = makeOverApproxNopConfig(2);
  ExploreOptions Cached;
  Cached.Por = true;
  Cached.StateCache = true;
  ExploreResult Res = exploreMachine(Cfg, Cached);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_TRUE(Res.Complete);
  EXPECT_TRUE(Res.PorApplied);
  EXPECT_GT(Res.CacheHits, 0u);

  ExploreResult Full = exploreMachine(Cfg, ExploreOptions());
  ASSERT_TRUE(Full.Ok) << Full.Violation;
  auto Key = [](const Outcome &O) {
    std::string K = logToString(O.FinalLog);
    for (const auto &[Tid, Rets] : O.Returns) {
      K += "|" + std::to_string(Tid) + ":";
      for (std::int64_t V : Rets)
        K += std::to_string(V) + ",";
    }
    return K;
  };
  std::set<std::string> KeysPor, KeysFull;
  for (const Outcome &O : Res.Outcomes)
    KeysPor.insert(Key(O));
  for (const Outcome &O : Full.Outcomes)
    KeysFull.insert(Key(O));
  EXPECT_EQ(KeysPor, KeysFull);

  // The differential checker agrees on the honest lock workloads too,
  // with the cache enabled on the POR side throughout.
  ExploreOptions Opts;
  Opts.MaxSteps = 4096;
  Opts.StateCache = true;
  PorEquivalenceReport R =
      checkPorEquivalence(makeTicketSpecConfig(3), Opts);
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_TRUE(R.Match) << R.Detail;
}

TEST(PorTest, TicketHarnessUnderPor) {
  // End-to-end: the full ticket-lock contextual refinement with POR on
  // both machines.  FairnessBound is ignored under POR, so the spinning
  // L0 acq is bounded by the trace-invariant per-CPU step cap instead.
  TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule M1;
  static ClightModule Client;
  M1 = cloneModule(Layers.M1);
  Client = makeTicketClient();

  ObjectHarness H;
  H.ObjectName = "ticket_lock_por";
  H.Underlay = Layers.L0;
  H.Modules = {&M1};
  H.Overlay = Layers.L1;
  H.R = Layers.R1;
  H.Client = &Client;
  H.Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  H.Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  H.ImplOpts.Por = true;
  H.ImplOpts.MaxParticipantSteps = 10;
  H.ImplOpts.MaxSteps = 512;
  H.ImplOpts.Invariant = ticketMutexInvariant;
  H.SpecOpts.Por = true;
  H.SpecOpts.MaxSteps = 512;

  HarnessOutcome Out = runObjectHarness(H);
  EXPECT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
  EXPECT_TRUE(Out.Report.SpecComplete);
  EXPECT_TRUE(Out.Report.ImplComplete);
  ASSERT_TRUE(Out.Layer.Cert != nullptr);
  EXPECT_TRUE(Out.Layer.Cert->Valid);
  EXPECT_TRUE(Out.Layer.Cert->CoverageComplete);
}

//===----------------------------------------------------------------------===//
// Truncated explorations must not mint certificates (satellites)
//===----------------------------------------------------------------------===//

TEST(PorTest, MaxSchedulesOneIsNotValid) {
  // A single-schedule budget covers a prefix of the space; the check must
  // fail closed, name the truncating budget, and the certificate must not
  // come out Valid.
  MachineConfigPtr Cfg = makeTickConfig(2, 1);
  ExploreOptions ImplOpts;
  ImplOpts.MaxSchedules = 1;
  ContextualRefinementReport Rep = checkContextualRefinement(
      Cfg, makeTickConfig(2, 1), EventMap::identity(), ImplOpts,
      ExploreOptions());
  EXPECT_FALSE(Rep.Holds);
  EXPECT_TRUE(Rep.SpecComplete);
  EXPECT_FALSE(Rep.ImplComplete);
  EXPECT_NE(Rep.Counterexample.find("MaxSchedules"), std::string::npos)
      << Rep.Counterexample;

  CertPtr C = makeMachineCertificate("Soundness", "L", "P", "L",
                                     EventMap::identity(), Rep);
  EXPECT_FALSE(C->Valid);
  EXPECT_FALSE(C->CoverageComplete);
  EXPECT_NE(C->Coverage.find("MaxSchedules"), std::string::npos)
      << C->Coverage;
  // The partial coverage is visible in the rendered derivation tree.
  EXPECT_NE(C->tree().find("PARTIAL-COVERAGE"), std::string::npos);
}

TEST(PorTest, SpecOutcomeCapProducesDiagnosticNotFalseCounterexample) {
  // A capped spec outcome set used to surface as a bogus "impl outcome
  // not admitted" counterexample; it must instead be an explicit
  // truncation diagnostic naming MaxStoredOutcomes.
  ExploreOptions SpecOpts;
  SpecOpts.MaxStoredOutcomes = 1;
  ContextualRefinementReport Rep = checkContextualRefinement(
      makeTickConfig(2, 1), makeTickConfig(2, 1), EventMap::identity(),
      ExploreOptions(), SpecOpts);
  EXPECT_FALSE(Rep.Holds);
  EXPECT_FALSE(Rep.SpecComplete);
  EXPECT_NE(Rep.Counterexample.find("MaxStoredOutcomes"), std::string::npos)
      << Rep.Counterexample;
  EXPECT_NE(Rep.Counterexample.find("raise"), std::string::npos)
      << Rep.Counterexample;
  // Not a false refinement counterexample:
  EXPECT_EQ(Rep.Counterexample.find("not admitted"), std::string::npos)
      << Rep.Counterexample;
}

TEST(PorTest, ExplorerTruncationNamesTheBudget) {
  ExploreOptions Opts;
  Opts.MaxSchedules = 1;
  ExploreResult Res = exploreMachine(makeTickConfig(2, 1), Opts);
  ASSERT_TRUE(Res.Ok);
  EXPECT_FALSE(Res.Complete);
  EXPECT_NE(Res.Truncation.find("MaxSchedules"), std::string::npos)
      << Res.Truncation;
}
