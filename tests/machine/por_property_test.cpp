//===- tests/machine/por_property_test.cpp - POR property-based testing ---------===//
//
// Property-based hardening of the source-set DPOR reduction: random small
// object workloads — random CPU counts, per-CPU operation sequences over a
// small shared-variable pool, each primitive declaring its honest
// footprint — are swept through checkPorEquivalence, asserting that the
// reduced exploration preserves the full exploration's deduplicated
// outcome set on every one.  A deterministic negative control checks the
// other direction: a workload whose footprints LIE must make the
// differential check fail, or the property suite could not distinguish a
// sound reduction from one that ignores footprints entirely.  Failures
// dump the workload (replay with --ccal-fuzz-replay=<file>); past
// failures are pinned by the checked-in corpus (workload_dpor_initials
// pins the source-set insertion bug where backtracking the racing thread
// itself, when it is not an initial of the reversal sequence, lost a
// trace class under sleep sets).  Also home of the PorTest acceptance
// check that the obs registry's counters agree with ExploreResult.
//
//===-------------------------------------------------------------------------===//

#include "machine/Explorer.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "obs/Metrics.h"
#include "support/Rng.h"
#include "support/Text.h"
#include "tests/common/fuzz_support.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace ccal;

namespace {

/// One random workload: per-CPU sequences of operations over shared
/// variables.  Op names double as primitive names: `inc_<v>` (reads and
/// writes v) or `read_<v>` (reads v) — honest footprints by construction.
struct Workload {
  std::vector<std::vector<std::string>> OpsPerCpu; ///< index 0 = CPU 1

  /// Dump body: one `cpu <id>: op op ...` line per CPU.
  std::string toBody() const {
    std::string S;
    for (size_t C = 0; C != OpsPerCpu.size(); ++C) {
      S += "cpu " + std::to_string(C + 1) + ":";
      for (const std::string &Op : OpsPerCpu[C])
        S += " " + Op;
      S += "\n";
    }
    return S;
  }

  static bool parseBody(const std::string &Body, Workload &Out,
                        std::string &Error) {
    Out.OpsPerCpu.clear();
    std::istringstream In(Body);
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.empty())
        continue;
      std::istringstream Fields(Line);
      std::string Tag;
      unsigned Cpu = 0;
      char Colon = 0;
      if (!(Fields >> Tag >> Cpu >> Colon) || Tag != "cpu" || Colon != ':' ||
          Cpu == 0) {
        Error = "bad workload line: " + Line;
        return false;
      }
      if (Cpu != Out.OpsPerCpu.size() + 1) {
        Error = "non-consecutive cpu id in line: " + Line;
        return false;
      }
      std::vector<std::string> Ops;
      std::string Op;
      while (Fields >> Op) {
        if (Op.compare(0, 4, "inc_") != 0 &&
            Op.compare(0, 5, "read_") != 0) {
          Error = "unknown op '" + Op + "' in line: " + Line;
          return false;
        }
        Ops.push_back(Op);
      }
      if (Ops.empty()) {
        Error = "cpu with no ops in line: " + Line;
        return false;
      }
      Out.OpsPerCpu.push_back(std::move(Ops));
    }
    if (Out.OpsPerCpu.empty()) {
      Error = "workload body has no cpu lines";
      return false;
    }
    return true;
  }
};

Workload randomWorkload(std::uint64_t Seed) {
  Rng R(Seed);
  static const char *Vars[] = {"x", "y", "z"};
  unsigned NumVars = 1 + static_cast<unsigned>(R.below(3));
  unsigned Cpus = 2 + static_cast<unsigned>(R.below(2));
  Workload W;
  for (unsigned C = 0; C != Cpus; ++C) {
    unsigned NumOps = 1 + static_cast<unsigned>(R.below(3));
    std::vector<std::string> Ops;
    for (unsigned O = 0; O != NumOps; ++O) {
      std::string V = Vars[R.below(NumVars)];
      Ops.push_back((R.chance(1, 2) ? "inc_" : "read_") + V);
    }
    W.OpsPerCpu.push_back(std::move(Ops));
  }
  return W;
}

/// Builds the machine for a workload: a ClightX client with one entry per
/// CPU, over an interface where every op is a shared primitive with its
/// honest footprint.  With \p LyingReads, read_<v> ops instead declare a
/// purely local footprint — a deliberate under-report for the negative
/// control below.
MachineConfigPtr makeWorkloadConfig(const Workload &W,
                                    bool LyingReads = false) {
  std::set<std::string> OpNames;
  for (const auto &Ops : W.OpsPerCpu)
    OpNames.insert(Ops.begin(), Ops.end());

  std::string Src;
  for (const std::string &Op : OpNames)
    Src += "extern int " + Op + "();\n";
  // Accumulate op results into the return value: outcomes then
  // distinguish WHAT each read observed, not just the event order — a
  // read whose result depends on an undeclared conflict surfaces as a
  // divergent outcome even though its log events canonicalize away.
  for (size_t C = 0; C != W.OpsPerCpu.size(); ++C) {
    Src += strFormat("int t%zu() {\n  int acc = 0;\n", C + 1);
    for (const std::string &Op : W.OpsPerCpu[C])
      Src += "  acc = acc * 10 + " + Op + "();\n";
    Src += "  return acc;\n}\n";
  }

  ClightModule Client = parseModuleOrDie("w", Src);
  typeCheckOrDie(Client);

  auto L = makeInterface("Lworkload");
  for (const std::string &Op : OpNames) {
    std::string Var = Op.substr(Op.find('_') + 1);
    if (Op.compare(0, 4, "inc_") == 0)
      L->addShared(Op, makeFetchIncPrim(Op), Footprint::of({Var}, {Var}));
    else
      // read_<v> counts the inc_<v> events so far — a genuine read of v.
      L->addShared(Op, makeReadCounterPrim(Op, "inc_" + Var),
                   LyingReads ? Footprint() : Footprint::of({Var}, {}));
  }

  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "workload";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("workload.lasm", {&Client});
  for (size_t C = 0; C != W.OpsPerCpu.size(); ++C)
    Cfg->Work.emplace(static_cast<ThreadId>(C + 1),
                      std::vector<CpuWorkItem>{
                          {strFormat("t%zu", C + 1), {}}});
  return Cfg;
}

PorEquivalenceReport checkWorkload(const Workload &W) {
  ExploreOptions Opts;
  Opts.MaxSteps = 4096;
  return checkPorEquivalence(makeWorkloadConfig(W), Opts);
}

/// Workload budget per seed; CI's fuzz job raises it via CCAL_FUZZ_WORKLOADS.
unsigned workloadBudget() {
  if (const char *Env = std::getenv("CCAL_FUZZ_WORKLOADS"))
    if (unsigned N = static_cast<unsigned>(std::strtoul(Env, nullptr, 10)))
      return N;
  return 10;
}

class PorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

} // namespace

TEST_P(PorPropertyTest, ReductionPreservesOutcomeSets) {
  std::uint64_t Seed = GetParam();
  const unsigned Budget = workloadBudget();
  for (unsigned I = 0; I != Budget; ++I) {
    std::uint64_t CaseSeed = Seed * 1000 + I;
    Workload W = randomWorkload(CaseSeed);
    PorEquivalenceReport R = checkWorkload(W);
    if (!R.Ok || !R.Match) {
      std::string Dump = test::dumpFailure("workload", CaseSeed, W.toBody());
      FAIL() << R.Detail << "\nseed: " << CaseSeed << "\ndump: " << Dump
             << "\nworkload:\n" << W.toBody();
    }
    // Sanity on the generator, not the reduction: the full exploration
    // must not be trivial or the property is vacuous.
    EXPECT_GE(R.FullSchedules, 1u);
    EXPECT_LE(R.PorSchedules, R.FullSchedules);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PorPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

/// Negative control: the SAME workload builder, but read_x declares a
/// purely local footprint while it genuinely reads the counter inc_x
/// bumps.  DPOR trusts the declaration, treats the read as racing with
/// nothing, and collapses both orders into one trace — the differential
/// check must report the missing outcome, not Match.  This is what keeps
/// the positive sweep above honest: a checker that could not fail here
/// would also accept a reduction that ignores footprints.
TEST(PorPropertyTest, LyingFootprintMustFailTheDifferentialCheck) {
  Workload W;
  W.OpsPerCpu = {{"inc_x"}, {"read_x"}};
  ExploreOptions Opts;
  Opts.MaxSteps = 4096;
  PorEquivalenceReport R =
      checkPorEquivalence(makeWorkloadConfig(W, /*LyingReads=*/true), Opts);
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_FALSE(R.Match)
      << "a lying footprint slipped past the differential check";
  EXPECT_NE(R.Detail.find("missing under POR"), std::string::npos)
      << R.Detail;
  EXPECT_GT(R.FullOutcomes, R.PorOutcomes);

  // The honest twin of the same workload passes, isolating the lie as
  // the only difference.
  PorEquivalenceReport Honest =
      checkPorEquivalence(makeWorkloadConfig(W), Opts);
  ASSERT_TRUE(Honest.Ok) << Honest.Detail;
  EXPECT_TRUE(Honest.Match) << Honest.Detail;
}

/// Replays a dumped failing workload when --ccal-fuzz-replay=<file> names
/// a kind=workload dump; skipped otherwise.
TEST(FuzzReplayTest, ReplaysDumpedWorkload) {
  const std::string &Path = test::fuzzReplayPath();
  if (Path.empty())
    GTEST_SKIP() << "no --ccal-fuzz-replay=<file> given";
  test::FuzzDump D;
  std::string Err;
  ASSERT_TRUE(test::readFuzzDump(Path, D, Err)) << Err;
  if (D.Kind != "workload")
    GTEST_SKIP() << "dump kind '" << D.Kind << "' is not handled here";
  Workload W;
  ASSERT_TRUE(Workload::parseBody(D.Body, W, Err)) << Err;
  PorEquivalenceReport R = checkWorkload(W);
  EXPECT_TRUE(R.Ok && R.Match) << R.Detail << "\nworkload:\n" << D.Body;
}

/// Checked-in past failures keep holding — the workload half of the
/// regression corpus.
TEST(FuzzCorpusTest, PastWorkloadsStayEquivalent) {
  std::vector<std::string> Files =
      test::corpusFiles(CCAL_CORPUS_DIR, "workload");
  ASSERT_FALSE(Files.empty())
      << "no workload corpus entries under " << CCAL_CORPUS_DIR;
  for (const std::string &Path : Files) {
    test::FuzzDump D;
    std::string Err;
    ASSERT_TRUE(test::readFuzzDump(Path, D, Err)) << Err;
    Workload W;
    ASSERT_TRUE(Workload::parseBody(D.Body, W, Err)) << Path << ": " << Err;
    PorEquivalenceReport R = checkWorkload(W);
    EXPECT_TRUE(R.Ok && R.Match)
        << Path << ": " << R.Detail << "\nworkload:\n" << D.Body;
  }
}

/// Acceptance: the obs registry's view of a POR run must agree with the
/// ExploreResult it was published from — the reduced schedule count, the
/// sleep-set prunes, the DPOR backtrack insertions, and (StateCache off
/// here) zero cache activity.
TEST(PorTest, RegistryCountersMatchExploreResult) {
  bool WasEnabled = obs::enabled();
  obs::setEnabled(true);
  obs::metricsReset();

  // inc_x on two CPUs forces genuine races (so dpor.backtracks > 0);
  // inc_z stays independent.
  Workload W;
  W.OpsPerCpu = {{"inc_x", "inc_y"}, {"inc_x"}, {"inc_z"}};
  ExploreOptions Opts;
  Opts.Por = true;
  Opts.MaxSteps = 4096;
  ExploreResult Res = exploreMachine(makeWorkloadConfig(W), Opts);

  EXPECT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_TRUE(Res.PorApplied);
  EXPECT_GT(Res.DporBacktracks, 0u);
  EXPECT_EQ(obs::counterValue("explorer.schedules_explored"),
            Res.SchedulesExplored);
  EXPECT_EQ(obs::counterValue("explorer.sleep_skips"), Res.PorSleepSkips);
  EXPECT_EQ(obs::counterValue("dpor.backtracks"), Res.DporBacktracks);
  EXPECT_EQ(obs::counterValue("explorer.cache_hits"), 0u);
  EXPECT_EQ(obs::counterValue("cache.evictions"), 0u);
  EXPECT_EQ(obs::counterValue("explorer.por_runs"), 1u);

  obs::metricsReset();
  obs::setEnabled(WasEnabled);
}
