//===- tests/machine/paper_example_test.cpp - The §2 worked example -------------===//
//
// Reconstructs the paper's running example end to end: the Fig. 3 program
// (client P with threads T1/T2 calling foo, module M2 implementing foo over
// acq/rel/f/g, module M1 implementing the ticket lock over L0), run under
// the §2 schedule "1, 2, 2, 1, 1, 2, 1, 2, 1, 1, 2, 2", producing exactly
// the log l'_g, whose R1-image is exactly l_g.
//
//===----------------------------------------------------------------------===//

#include "machine/Explorer.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "objects/TicketLock.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

ClightModule makeFooModule() {
  // Fig. 3, M2.
  ClightModule M = parseModuleOrDie("M2_foo", R"(
    extern void acq();
    extern void rel();
    extern int f();
    extern int g();

    int foo() {
      acq();
      int a = f();
      int b = g();
      rel();
      return a * 10 + b;
    }
  )");
  typeCheckOrDie(M);
  return M;
}

ClightModule makeFig3Client() {
  // Fig. 3, client P: threads T1 and T2 both call foo.
  ClightModule M = parseModuleOrDie("P_fig3", R"(
    extern int foo();
    int t_main() { return foo(); }
  )");
  typeCheckOrDie(M);
  return M;
}

MachineConfigPtr makeFig3ImplConfig() {
  static ClightModule Client;
  static ClightModule Foo;
  static ClightModule Ticket;
  static TicketLockLayers Layers = makeTicketLockLayers();
  Client = makeFig3Client();
  Foo = makeFooModule();
  Ticket = cloneModule(Layers.M1);

  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "fig3.impl";
  Cfg->Layer = Layers.L0;
  Cfg->Program =
      compileAndLink("fig3.impl.lasm", {&Client, &Foo, &Ticket});
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

} // namespace

TEST(PaperExampleTest, Section2ScheduleProducesLogLgPrime) {
  // The §2 hardware schedule.
  std::vector<ThreadId> Picks = {1, 2, 2, 1, 1, 2, 1, 2, 1, 1, 2, 2};
  size_t Next = 0;
  std::string Error;
  Outcome O = runSchedule(
      makeFig3ImplConfig(),
      [&](const std::vector<ThreadId> &Ready, const Log &) -> ThreadId {
        if (Next < Picks.size()) {
          ThreadId P = Picks[Next++];
          EXPECT_NE(std::find(Ready.begin(), Ready.end(), P), Ready.end())
              << "schedule step " << Next - 1 << " not runnable";
          return P;
        }
        return Ready.front(); // drain the rest deterministically
      },
      &Error);
  ASSERT_TRUE(Error.empty()) << Error;

  // l'_g from §2.
  Log LgPrime = {
      Event(1, "FAI_t"), Event(2, "FAI_t"), Event(2, "get_n"),
      Event(1, "get_n"), Event(1, "hold"),  Event(2, "get_n"),
      Event(1, "f"),     Event(2, "get_n"), Event(1, "g"),
      Event(1, "inc_n"), Event(2, "get_n"), Event(2, "hold"),
  };
  ASSERT_GE(O.FinalLog.size(), LgPrime.size());
  for (size_t I = 0; I != LgPrime.size(); ++I)
    EXPECT_EQ(O.FinalLog[I], LgPrime[I]) << "at index " << I;

  // The R1 image of the l'_g prefix is l_g from §2.
  TicketLockLayers Layers = makeTicketLockLayers();
  Log Mapped = Layers.R1.apply(LgPrime);
  Log Lg = {Event(1, "acq"), Event(1, "f"), Event(1, "g"), Event(1, "rel"),
            Event(2, "acq")};
  EXPECT_EQ(Mapped, Lg);
}

TEST(PaperExampleTest, MutualExclusionHoldsOnEverySchedule) {
  ExploreOptions Opts;
  Opts.FairnessBound = 2;
  Opts.MaxSteps = 256;
  Opts.Invariant = ticketMutexInvariant;
  ExploreResult Res = exploreMachine(makeFig3ImplConfig(), Opts);
  EXPECT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_TRUE(Res.Complete);
  EXPECT_GT(Res.SchedulesExplored, 1u);
  // Both lock-acquisition orders are reachable.
  bool OneFirst = false, TwoFirst = false;
  for (const Outcome &O : Res.Outcomes) {
    Log Holds = logFilterKind(O.FinalLog, "hold");
    ASSERT_EQ(Holds.size(), 2u);
    OneFirst |= Holds[0].Tid == 1;
    TwoFirst |= Holds[0].Tid == 2;
  }
  EXPECT_TRUE(OneFirst);
  EXPECT_TRUE(TwoFirst);
}

TEST(PaperExampleTest, ClientReturnValuesFollowCriticalSectionOrder) {
  // Whoever enters the critical section first returns f=0,g=0 -> 0; the
  // second returns f=1,g=1 -> 11.
  ExploreOptions Opts;
  Opts.FairnessBound = 2;
  Opts.MaxSteps = 256;
  ExploreResult Res = exploreMachine(makeFig3ImplConfig(), Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  for (const Outcome &O : Res.Outcomes) {
    Log Holds = logFilterKind(O.FinalLog, "hold");
    ASSERT_EQ(Holds.size(), 2u);
    ThreadId First = Holds[0].Tid;
    ThreadId Second = Holds[1].Tid;
    EXPECT_EQ(O.Returns.at(First), std::vector<std::int64_t>{0});
    EXPECT_EQ(O.Returns.at(Second), std::vector<std::int64_t>{11});
  }
}

TEST(PaperExampleTest, SequentialExplorationMatchesSeedBaseline) {
  // Regression pin for the Threads=1 determinism guarantee: the explicit
  // stack engine must reproduce the recursive Explorer's exact traversal.
  // These numbers (and the first outcome's log) were captured from the
  // sequential implementation on this §2 configuration.
  ExploreOptions Opts;
  Opts.FairnessBound = 2;
  Opts.MaxSteps = 256;
  ExploreResult Res = exploreMachine(makeFig3ImplConfig(), Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_TRUE(Res.Complete);
  EXPECT_EQ(Res.SchedulesExplored, 328u);
  EXPECT_EQ(Res.StatesExplored, 2533u);
  EXPECT_EQ(Res.Outcomes.size(), 328u);
  EXPECT_EQ(Res.MaxLogLen, 21u);
  ASSERT_FALSE(Res.Outcomes.empty());
  EXPECT_EQ(logToString(Res.Outcomes[0].FinalLog),
            "1.FAI_t \xE2\x80\xA2 1.get_n \xE2\x80\xA2 2.FAI_t \xE2\x80\xA2 "
            "1.hold \xE2\x80\xA2 1.f \xE2\x80\xA2 2.get_n \xE2\x80\xA2 1.g "
            "\xE2\x80\xA2 1.inc_n \xE2\x80\xA2 2.get_n \xE2\x80\xA2 2.hold "
            "\xE2\x80\xA2 2.f \xE2\x80\xA2 2.g \xE2\x80\xA2 2.inc_n");
}

TEST(PaperExampleTest, ParallelExplorationAgreesWithBaseline) {
  ExploreOptions Opts;
  Opts.FairnessBound = 2;
  Opts.MaxSteps = 256;
  Opts.Threads = 4;
  ExploreResult Res = exploreMachine(makeFig3ImplConfig(), Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_TRUE(Res.Complete);
  EXPECT_EQ(Res.SchedulesExplored, 328u);
  EXPECT_EQ(Res.StatesExplored, 2533u);
  EXPECT_EQ(Res.Outcomes.size(), 328u);
  EXPECT_EQ(Res.MaxLogLen, 21u);
}
