//===- tests/machine/explorer_test.cpp - Schedule enumeration tests -------------===//

#include "machine/Explorer.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "machine/Soundness.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

using namespace ccal;

namespace {

/// Client: each CPU performs K shared ticks and returns the accumulated
/// tick values.
MachineConfigPtr makeTickConfig(unsigned Cpus, unsigned Ticks) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int tick();
      int t_main(int k) {
        int acc = 0;
        int i = 0;
        while (i < k) {
          acc = acc * 10 + tick();
          i = i + 1;
        }
        return acc;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Ltick");
  L->addShared("tick", makeFetchIncPrim("tick"));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "tick";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("tick.lasm", {&Client});
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{
                             {"t_main", {static_cast<std::int64_t>(Ticks)}}});
  return Cfg;
}

} // namespace

TEST(ExplorerTest, EnumeratesAllInterleavings) {
  // 2 CPUs x 2 ticks: C(4,2) = 6 interleavings, each a distinct outcome.
  ExploreOptions Opts;
  ExploreResult Res = exploreMachine(makeTickConfig(2, 2), Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_TRUE(Res.Complete);
  EXPECT_EQ(Res.SchedulesExplored, 6u);
  EXPECT_EQ(Res.Outcomes.size(), 6u);
  // Every outcome log has exactly 4 tick events.
  for (const Outcome &O : Res.Outcomes)
    EXPECT_EQ(O.FinalLog.size(), 4u);
}

TEST(ExplorerTest, ThreeCpusCountMatchesMultinomial) {
  // 3 CPUs x 1 tick each: 3! = 6 schedules.
  ExploreOptions Opts;
  ExploreResult Res = exploreMachine(makeTickConfig(3, 1), Opts);
  ASSERT_TRUE(Res.Ok);
  EXPECT_EQ(Res.SchedulesExplored, 6u);
}

TEST(ExplorerTest, FairnessBoundPrunesRuns) {
  ExploreOptions Strict;
  Strict.FairnessBound = 1;
  ExploreResult A = exploreMachine(makeTickConfig(2, 3), Strict);
  ExploreOptions Loose;
  Loose.FairnessBound = 8;
  ExploreResult B = exploreMachine(makeTickConfig(2, 3), Loose);
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  EXPECT_LT(A.SchedulesExplored, B.SchedulesExplored);
}

TEST(ExplorerTest, InvariantViolationIsReported) {
  ExploreOptions Opts;
  Opts.Invariant = [](const MultiCoreMachine &M) -> std::string {
    if (logCountKind(M.log(), "tick") >= 3)
      return "too many ticks";
    return "";
  };
  ExploreResult Res = exploreMachine(makeTickConfig(2, 2), Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Violation.find("too many ticks"), std::string::npos);
}

TEST(ExplorerTest, ScheduleBudgetMarksIncomplete) {
  ExploreOptions Opts;
  Opts.MaxSchedules = 2;
  ExploreResult Res = exploreMachine(makeTickConfig(2, 2), Opts);
  EXPECT_TRUE(Res.Ok);
  EXPECT_FALSE(Res.Complete);
}

TEST(ExplorerTest, CorpusCollected) {
  ExploreOptions Opts;
  Opts.CollectCorpus = true;
  ExploreResult Res = exploreMachine(makeTickConfig(2, 1), Opts);
  ASSERT_TRUE(Res.Ok);
  EXPECT_FALSE(Res.Corpus.empty());
}

TEST(ExplorerTest, RunScheduleFollowsPicks) {
  std::vector<ThreadId> Picks = {2, 2, 1, 1};
  size_t Next = 0;
  std::string Error;
  Outcome O = runSchedule(
      makeTickConfig(2, 2),
      [&](const std::vector<ThreadId> &Ready, const Log &) {
        ThreadId P = Picks[Next++ % Picks.size()];
        EXPECT_NE(std::find(Ready.begin(), Ready.end(), P), Ready.end());
        return P;
      },
      &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(O.FinalLog.size(), 4u);
  EXPECT_EQ(O.FinalLog[0].Tid, 2u);
  EXPECT_EQ(O.FinalLog[2].Tid, 1u);
  EXPECT_EQ(O.Returns.at(2), std::vector<std::int64_t>{1});  // 0 then 1
  EXPECT_EQ(O.Returns.at(1), std::vector<std::int64_t>{23}); // 2 then 3
}

TEST(SoundnessTest, IdenticalMachinesRefineEachOther) {
  ContextualRefinementReport Rep = checkContextualRefinement(
      makeTickConfig(2, 1), makeTickConfig(2, 1), EventMap::identity(),
      ExploreOptions(), ExploreOptions());
  EXPECT_TRUE(Rep.Holds) << Rep.Counterexample;
  EXPECT_EQ(Rep.ImplOutcomes, Rep.SpecOutcomes);
}

TEST(SoundnessTest, SmallerWorkloadDoesNotRefineLarger) {
  ContextualRefinementReport Rep = checkContextualRefinement(
      makeTickConfig(2, 2), makeTickConfig(2, 1), EventMap::identity(),
      ExploreOptions(), ExploreOptions());
  EXPECT_FALSE(Rep.Holds);
  EXPECT_FALSE(Rep.Counterexample.empty());
}

TEST(SoundnessTest, CertificateCarriesEvidence) {
  ContextualRefinementReport Rep = checkContextualRefinement(
      makeTickConfig(2, 1), makeTickConfig(2, 1), EventMap::identity(),
      ExploreOptions(), ExploreOptions());
  CertPtr C = makeMachineCertificate("Soundness", "L[D]", "P", "L[D]",
                                     EventMap::identity(), Rep);
  EXPECT_TRUE(C->Valid);
  EXPECT_EQ(C->Obligations, Rep.ObligationsChecked);
  EXPECT_GT(C->Runs, 0u);
}

namespace {

/// Stable textual key of an outcome, for order-insensitive set comparison
/// between sequential and parallel explorations.
std::string outcomeKey(const Outcome &O) {
  std::string Key = logToString(O.FinalLog);
  for (const auto &[Tid, Rets] : O.Returns) {
    Key += "|" + std::to_string(Tid) + ":";
    for (std::int64_t R : Rets)
      Key += std::to_string(R) + ",";
  }
  return Key;
}

std::multiset<std::string> outcomeKeys(const ExploreResult &Res) {
  std::multiset<std::string> Keys;
  for (const Outcome &O : Res.Outcomes)
    Keys.insert(outcomeKey(O));
  return Keys;
}

/// Client: each CPU performs two silent shared nops.  Because nops emit no
/// events, different interleavings converge on identical machine
/// snapshots — the workload the state-dedup cache prunes.
MachineConfigPtr makeNopConfig(unsigned Cpus) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int nop();
      int t_main() {
        nop();
        nop();
        return 0;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Lnop");
  L->addShared("nop", makeConstPrim(0));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "nop";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("nop.lasm", {&Client});
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

} // namespace

TEST(ExplorerTest, RunScheduleRejectsInvalidPick) {
  // A pick outside the schedulable set must be reported as a schedule
  // callback bug, not surface as a machine-level error.
  std::string Error;
  runSchedule(
      makeTickConfig(2, 1),
      [](const std::vector<ThreadId> &, const Log &) -> ThreadId {
        return 99;
      },
      &Error);
  ASSERT_FALSE(Error.empty());
  EXPECT_NE(Error.find("schedule callback"), std::string::npos) << Error;
  EXPECT_NE(Error.find("99"), std::string::npos) << Error;
}

TEST(ExplorerTest, OutcomeDedupRetainsCollidingOutcomes) {
  // Under the old separator-free chain hash these two outcomes collided
  // (hash(L, {1:[], 2:[]}) == hash(L, {1:[2]})) and the second was
  // silently dropped.  Both must be retained as distinct.
  Outcome A;
  A.Returns[1] = {};
  A.Returns[2] = {};
  Outcome B;
  B.Returns[1] = {2};
  detail::OutcomeDeduper Dedup;
  EXPECT_TRUE(Dedup.insert(A));
  EXPECT_TRUE(Dedup.insert(B));
  // Genuine duplicates are still deduplicated.
  EXPECT_FALSE(Dedup.insert(A));
  EXPECT_FALSE(Dedup.insert(B));
}

TEST(ExplorerTest, ParallelExplorationMatchesSequential) {
  MachineConfigPtr Cfg = makeTickConfig(3, 2);
  ExploreOptions Seq;
  Seq.Threads = 1;
  ExploreResult A = exploreMachine(Cfg, Seq);
  ExploreOptions Par;
  Par.Threads = 4;
  ExploreResult B = exploreMachine(Cfg, Par);
  ASSERT_TRUE(A.Ok) << A.Violation;
  ASSERT_TRUE(B.Ok) << B.Violation;
  EXPECT_TRUE(A.Complete);
  EXPECT_TRUE(B.Complete);
  // Every node is expanded exactly once regardless of worker count, so
  // the counters agree; only outcome *order* may differ.
  EXPECT_EQ(A.SchedulesExplored, B.SchedulesExplored);
  EXPECT_EQ(A.StatesExplored, B.StatesExplored);
  EXPECT_EQ(A.InvariantChecks, B.InvariantChecks);
  EXPECT_EQ(A.MaxLogLen, B.MaxLogLen);
  EXPECT_EQ(outcomeKeys(A), outcomeKeys(B));
}

TEST(ExplorerTest, ParallelInvariantViolationReported) {
  ExploreOptions Opts;
  Opts.Threads = 4;
  Opts.Invariant = [](const MultiCoreMachine &M) -> std::string {
    if (logCountKind(M.log(), "tick") >= 3)
      return "too many ticks";
    return "";
  };
  ExploreResult Res = exploreMachine(makeTickConfig(2, 2), Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Violation.find("too many ticks"), std::string::npos);
  EXPECT_NE(Res.Violation.find("log:"), std::string::npos);
}

TEST(ExplorerTest, StateCachePrunesConvergentStates) {
  MachineConfigPtr Cfg = makeNopConfig(2);
  ExploreOptions Plain;
  ExploreResult A = exploreMachine(Cfg, Plain);
  ExploreOptions Cached;
  Cached.StateCache = true;
  ExploreResult B = exploreMachine(Cfg, Cached);
  ASSERT_TRUE(A.Ok) << A.Violation;
  ASSERT_TRUE(B.Ok) << B.Violation;
  EXPECT_EQ(A.CacheHits, 0u);
  EXPECT_GT(B.CacheHits, 0u);
  EXPECT_LT(B.StatesExplored, A.StatesExplored);
  // Pruning drops revisits, never outcomes.
  std::set<std::string> KeysA, KeysB;
  for (const Outcome &O : A.Outcomes)
    KeysA.insert(outcomeKey(O));
  for (const Outcome &O : B.Outcomes)
    KeysB.insert(outcomeKey(O));
  EXPECT_EQ(KeysA, KeysB);
}

TEST(ExplorerTest, StateCacheByteBudgetEvictsAndStaysSound) {
  // A byte budget far below the workload's resident-state footprint must
  // trigger LRU evictions while losing only pruning power, never
  // outcomes: the cached run still matches the uncached outcome set and
  // still terminates Complete.
  MachineConfigPtr Cfg = makeNopConfig(3);
  ExploreOptions Plain;
  ExploreResult A = exploreMachine(Cfg, Plain);
  ASSERT_TRUE(A.Ok) << A.Violation;
  ExploreOptions Tight;
  Tight.StateCache = true;
  Tight.CacheBudgetBytes = 4096;
  ExploreResult B = exploreMachine(Cfg, Tight);
  ASSERT_TRUE(B.Ok) << B.Violation;
  EXPECT_TRUE(B.Complete);
  EXPECT_GT(B.CacheEvictions, 0u);
  EXPECT_EQ(outcomeKeys(A), outcomeKeys(B));
  // An unbounded cache on the same workload evicts nothing and prunes at
  // least as hard — the budget only ever trades memory for revisits.
  ExploreOptions Unbounded;
  Unbounded.StateCache = true;
  ExploreResult C = exploreMachine(Cfg, Unbounded);
  ASSERT_TRUE(C.Ok) << C.Violation;
  EXPECT_EQ(C.CacheEvictions, 0u);
  EXPECT_LE(C.StatesExplored, B.StatesExplored);
  EXPECT_EQ(outcomeKeys(A), outcomeKeys(C));
}

TEST(ExplorerTest, StateCacheSpillRoundTrip) {
  // With a spill directory, fingerprints of evicted plain-DFS entries
  // keep pruning revisits after their snapshots left RAM, and the sorted
  // spill file lands on disk via the temp+rename idiom (no .tmp residue).
  namespace fs = std::filesystem;
  const fs::path Dir =
      fs::path(::testing::TempDir()) /
      (std::string("ccal_spill_") +
       ::testing::UnitTest::GetInstance()->current_test_info()->name());
  fs::remove_all(Dir);
  MachineConfigPtr Cfg = makeNopConfig(3);
  ExploreOptions Plain;
  ExploreResult A = exploreMachine(Cfg, Plain);
  ASSERT_TRUE(A.Ok) << A.Violation;
  ExploreOptions Spilling;
  Spilling.StateCache = true;
  Spilling.CacheBudgetBytes = 4096;
  Spilling.CacheSpillDir = Dir.string();
  ExploreResult B = exploreMachine(Cfg, Spilling);
  ASSERT_TRUE(B.Ok) << B.Violation;
  EXPECT_TRUE(B.Complete);
  EXPECT_GT(B.CacheEvictions, 0u);
  EXPECT_GT(B.CacheSpillHits, 0u);
  // Spill pruning is pruning: outcome set identical to the uncached run.
  EXPECT_EQ(outcomeKeys(A), outcomeKeys(B));
  const fs::path Spill = Dir / "statecache.spill";
  ASSERT_TRUE(fs::exists(Spill));
  EXPECT_GT(fs::file_size(Spill), 0u);
  EXPECT_FALSE(fs::exists(Dir / "statecache.spill.tmp"));
  fs::remove_all(Dir);
}

TEST(ExplorerTest, StateCacheEntryCapStopsRememberingWithoutEvicting) {
  // MaxStateCache keeps the pre-budget "stop remembering, stay sound"
  // semantics: once the count cap is reached nothing new is cached and
  // nothing is evicted, so the search degrades toward the uncached run
  // instead of thrashing.
  MachineConfigPtr Cfg = makeNopConfig(3);
  ExploreOptions Plain;
  ExploreResult A = exploreMachine(Cfg, Plain);
  ASSERT_TRUE(A.Ok) << A.Violation;
  ExploreOptions Capped;
  Capped.StateCache = true;
  Capped.MaxStateCache = 2;
  ExploreResult B = exploreMachine(Cfg, Capped);
  ASSERT_TRUE(B.Ok) << B.Violation;
  EXPECT_TRUE(B.Complete);
  EXPECT_EQ(B.CacheEvictions, 0u);
  EXPECT_EQ(outcomeKeys(A), outcomeKeys(B));
  ExploreOptions Uncapped;
  Uncapped.StateCache = true;
  ExploreResult C = exploreMachine(Cfg, Uncapped);
  ASSERT_TRUE(C.Ok) << C.Violation;
  // The cap can only cost pruning, not add states beyond uncached.
  EXPECT_LE(C.StatesExplored, B.StatesExplored);
  EXPECT_LE(B.StatesExplored, A.StatesExplored);
}
