//===- tests/machine/explorer_test.cpp - Schedule enumeration tests -------------===//

#include "machine/Explorer.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "machine/Soundness.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

/// Client: each CPU performs K shared ticks and returns the accumulated
/// tick values.
MachineConfigPtr makeTickConfig(unsigned Cpus, unsigned Ticks) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int tick();
      int t_main(int k) {
        int acc = 0;
        int i = 0;
        while (i < k) {
          acc = acc * 10 + tick();
          i = i + 1;
        }
        return acc;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Ltick");
  L->addShared("tick", makeFetchIncPrim("tick"));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "tick";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("tick.lasm", {&Client});
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{
                             {"t_main", {static_cast<std::int64_t>(Ticks)}}});
  return Cfg;
}

} // namespace

TEST(ExplorerTest, EnumeratesAllInterleavings) {
  // 2 CPUs x 2 ticks: C(4,2) = 6 interleavings, each a distinct outcome.
  ExploreOptions Opts;
  ExploreResult Res = exploreMachine(makeTickConfig(2, 2), Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_TRUE(Res.Complete);
  EXPECT_EQ(Res.SchedulesExplored, 6u);
  EXPECT_EQ(Res.Outcomes.size(), 6u);
  // Every outcome log has exactly 4 tick events.
  for (const Outcome &O : Res.Outcomes)
    EXPECT_EQ(O.FinalLog.size(), 4u);
}

TEST(ExplorerTest, ThreeCpusCountMatchesMultinomial) {
  // 3 CPUs x 1 tick each: 3! = 6 schedules.
  ExploreOptions Opts;
  ExploreResult Res = exploreMachine(makeTickConfig(3, 1), Opts);
  ASSERT_TRUE(Res.Ok);
  EXPECT_EQ(Res.SchedulesExplored, 6u);
}

TEST(ExplorerTest, FairnessBoundPrunesRuns) {
  ExploreOptions Strict;
  Strict.FairnessBound = 1;
  ExploreResult A = exploreMachine(makeTickConfig(2, 3), Strict);
  ExploreOptions Loose;
  Loose.FairnessBound = 8;
  ExploreResult B = exploreMachine(makeTickConfig(2, 3), Loose);
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  EXPECT_LT(A.SchedulesExplored, B.SchedulesExplored);
}

TEST(ExplorerTest, InvariantViolationIsReported) {
  ExploreOptions Opts;
  Opts.Invariant = [](const MultiCoreMachine &M) -> std::string {
    if (logCountKind(M.log(), "tick") >= 3)
      return "too many ticks";
    return "";
  };
  ExploreResult Res = exploreMachine(makeTickConfig(2, 2), Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Violation.find("too many ticks"), std::string::npos);
}

TEST(ExplorerTest, ScheduleBudgetMarksIncomplete) {
  ExploreOptions Opts;
  Opts.MaxSchedules = 2;
  ExploreResult Res = exploreMachine(makeTickConfig(2, 2), Opts);
  EXPECT_TRUE(Res.Ok);
  EXPECT_FALSE(Res.Complete);
}

TEST(ExplorerTest, CorpusCollected) {
  ExploreOptions Opts;
  Opts.CollectCorpus = true;
  ExploreResult Res = exploreMachine(makeTickConfig(2, 1), Opts);
  ASSERT_TRUE(Res.Ok);
  EXPECT_FALSE(Res.Corpus.empty());
}

TEST(ExplorerTest, RunScheduleFollowsPicks) {
  std::vector<ThreadId> Picks = {2, 2, 1, 1};
  size_t Next = 0;
  std::string Error;
  Outcome O = runSchedule(
      makeTickConfig(2, 2),
      [&](const std::vector<ThreadId> &Ready, const Log &) {
        ThreadId P = Picks[Next++ % Picks.size()];
        EXPECT_NE(std::find(Ready.begin(), Ready.end(), P), Ready.end());
        return P;
      },
      &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(O.FinalLog.size(), 4u);
  EXPECT_EQ(O.FinalLog[0].Tid, 2u);
  EXPECT_EQ(O.FinalLog[2].Tid, 1u);
  EXPECT_EQ(O.Returns.at(2), std::vector<std::int64_t>{1});  // 0 then 1
  EXPECT_EQ(O.Returns.at(1), std::vector<std::int64_t>{23}); // 2 then 3
}

TEST(SoundnessTest, IdenticalMachinesRefineEachOther) {
  ContextualRefinementReport Rep = checkContextualRefinement(
      makeTickConfig(2, 1), makeTickConfig(2, 1), EventMap::identity(),
      ExploreOptions(), ExploreOptions());
  EXPECT_TRUE(Rep.Holds) << Rep.Counterexample;
  EXPECT_EQ(Rep.ImplOutcomes, Rep.SpecOutcomes);
}

TEST(SoundnessTest, SmallerWorkloadDoesNotRefineLarger) {
  ContextualRefinementReport Rep = checkContextualRefinement(
      makeTickConfig(2, 2), makeTickConfig(2, 1), EventMap::identity(),
      ExploreOptions(), ExploreOptions());
  EXPECT_FALSE(Rep.Holds);
  EXPECT_FALSE(Rep.Counterexample.empty());
}

TEST(SoundnessTest, CertificateCarriesEvidence) {
  ContextualRefinementReport Rep = checkContextualRefinement(
      makeTickConfig(2, 1), makeTickConfig(2, 1), EventMap::identity(),
      ExploreOptions(), ExploreOptions());
  CertPtr C = makeMachineCertificate("Soundness", "L[D]", "P", "L[D]",
                                     EventMap::identity(), Rep);
  EXPECT_TRUE(C->Valid);
  EXPECT_EQ(C->Obligations, Rep.ObligationsChecked);
  EXPECT_GT(C->Runs, 0u);
}
