//===- tests/machine/multicore_test.cpp - Multicore machine tests ---------------===//

#include "machine/MultiCore.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

ClightModule makeClient() {
  ClightModule M = parseModuleOrDie("client", R"(
    extern int tick();
    extern int local_work(int x);

    int t_main(int k) {
      int a = local_work(k);
      int b = tick();
      return a * 100 + b;
    }
  )");
  typeCheckOrDie(M);
  return M;
}

MachineConfigPtr makeConfig(unsigned Cpus) {
  static ClightModule Client;
  Client = makeClient();
  auto L = makeInterface("Lbase");
  L->addShared("tick", makeFetchIncPrim("tick"));
  L->addPrivate("local_work", [](const PrimCall &Call)
                    -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = Call.Args.empty() ? 0 : Call.Args[0] * 2;
    return Res;
  });
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "basic";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("basic.lasm", {&Client});
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{
                             {"t_main", {static_cast<std::int64_t>(C)}}});
  return Cfg;
}

} // namespace

TEST(MultiCoreTest, SingleCpuRunsToCompletion) {
  MultiCoreMachine M(makeConfig(1));
  ASSERT_TRUE(M.ok()) << M.error();
  // CPU 1 is parked at the shared tick (local_work ran silently).
  EXPECT_EQ(M.schedulable(), std::vector<ThreadId>{1});
  EXPECT_EQ(M.pendingPrim(1), "tick");
  ASSERT_TRUE(M.step(1));
  EXPECT_TRUE(M.allIdle());
  EXPECT_EQ(M.log().size(), 1u);
  EXPECT_EQ(M.returns().at(1), std::vector<std::int64_t>{200});
}

TEST(MultiCoreTest, PrivatePrimsEmitNoEvents) {
  MultiCoreMachine M(makeConfig(1));
  EXPECT_TRUE(M.log().empty()); // local_work already executed silently
}

TEST(MultiCoreTest, TwoCpusInterleaveSharedPrims) {
  MultiCoreMachine M(makeConfig(2));
  ASSERT_TRUE(M.ok());
  EXPECT_EQ(M.schedulable().size(), 2u);
  ASSERT_TRUE(M.step(2)); // CPU 2 ticks first: gets 0
  ASSERT_TRUE(M.step(1));
  EXPECT_TRUE(M.allIdle());
  // CPU 2 ticked first: local_work(2) * 100 + tick 0 = 400; CPU 1 got
  // tick 1: local_work(1) * 100 + 1 = 201.
  EXPECT_EQ(M.returns().at(2), std::vector<std::int64_t>{400});
  EXPECT_EQ(M.returns().at(1), std::vector<std::int64_t>{201});
}

TEST(MultiCoreTest, ReturnsDependOnScheduleOrder) {
  MultiCoreMachine A(makeConfig(2));
  A.step(1);
  A.step(2);
  MultiCoreMachine B(makeConfig(2));
  B.step(2);
  B.step(1);
  EXPECT_NE(A.returns(), B.returns());
}

TEST(MultiCoreTest, CopyIsIndependentSnapshot) {
  MultiCoreMachine M(makeConfig(2));
  MultiCoreMachine Snapshot = M;
  ASSERT_TRUE(M.step(1));
  EXPECT_EQ(M.log().size(), 1u);
  EXPECT_TRUE(Snapshot.log().empty());
  ASSERT_TRUE(Snapshot.step(2));
  EXPECT_EQ(Snapshot.log()[0].Tid, 2u);
}

TEST(MultiCoreTest, UnknownPrimFaults) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int nosuch();
      int t_main() { return nosuch(); }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "bad";
  Cfg->Layer = makeInterface("Lempty");
  Cfg->Program = compileAndLink("bad.lasm", {&Client});
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  MultiCoreMachine M(Cfg);
  EXPECT_FALSE(M.ok());
  EXPECT_NE(M.error().find("not provided"), std::string::npos);
}

TEST(MultiCoreTest, StuckSharedPrimFaultsAtStep) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int sticky();
      int t_main() { return sticky(); }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Lsticky");
  L->addShared("sticky", [](const PrimCall &) -> std::optional<PrimResult> {
    return std::nullopt;
  });
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "sticky";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("sticky.lasm", {&Client});
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  MultiCoreMachine M(Cfg);
  ASSERT_TRUE(M.ok());
  EXPECT_FALSE(M.step(1));
  EXPECT_NE(M.error().find("stuck"), std::string::npos);
}

TEST(MultiCoreTest, BlockedPrimIsNotSchedulable) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int gate();
      int t_main() { return gate(); }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Lgate");
  // gate blocks until some event exists in the log.
  L->addShared("gate", [](const PrimCall &Call) -> std::optional<PrimResult> {
    if (Call.L->empty())
      return PrimResult::blocked();
    PrimResult Res;
    Res.Ret = 1;
    Res.Events.push_back(Event(Call.Tid, "gate"));
    return Res;
  });
  L->addShared("tick", makeFetchIncPrim("tick"));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "gate";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("gate.lasm", {&Client});
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  MultiCoreMachine M(Cfg);
  ASSERT_TRUE(M.ok());
  EXPECT_TRUE(M.schedulable().empty()); // blocked, not schedulable
  EXPECT_FALSE(M.allIdle());            // ... but not done: a deadlock state
}
