//===- tests/lasm/vm_test.cpp - LAsm VM tests ----------------------------------===//

#include "lasm/Vm.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

/// Hand-assembles a one-function program.
AsmProgramPtr makeProgram(std::vector<Instr> Code, unsigned Params = 0,
                          unsigned Slots = 0,
                          std::vector<AsmGlobal> Globals = {}) {
  auto P = std::make_shared<AsmProgram>();
  P->Name = "test";
  AsmFunc F;
  F.Name = "main";
  F.NumParams = Params;
  F.NumSlots = Slots < Params ? Params : Slots;
  F.Code = std::move(Code);
  P->Funcs.push_back(std::move(F));
  std::int32_t Addr = 0;
  for (AsmGlobal &G : Globals) {
    G.Addr = Addr;
    Addr += G.Size;
    P->Globals.push_back(G);
  }
  P->Linked = true;
  return P;
}

std::optional<std::int64_t> runMain(AsmProgramPtr P,
                                    std::vector<std::int64_t> Args = {}) {
  Vm M(P);
  M.start("main", std::move(Args));
  std::vector<std::int64_t> Globals = P->initialGlobals();
  Vm::Status St = M.run(Globals, 1u << 16);
  if (St != Vm::Status::Done)
    return std::nullopt;
  return M.result();
}

} // namespace

TEST(VmTest, PushRet) {
  auto P = makeProgram({Instr::push(42), Instr(Opcode::Ret)});
  EXPECT_EQ(runMain(P), 42);
}

TEST(VmTest, Arithmetic) {
  // (7 - 2) * 3 = 15
  auto P = makeProgram({Instr::push(7), Instr::push(2), Instr(Opcode::Sub),
                        Instr::push(3), Instr(Opcode::Mul),
                        Instr(Opcode::Ret)});
  EXPECT_EQ(runMain(P), 15);
}

TEST(VmTest, DivisionByZeroTraps) {
  auto P = makeProgram({Instr::push(1), Instr::push(0), Instr(Opcode::Div),
                        Instr(Opcode::Ret)});
  Vm M(P);
  M.start("main", {});
  std::vector<std::int64_t> Globals;
  EXPECT_EQ(M.run(Globals, 100), Vm::Status::Error);
  EXPECT_NE(M.error().find("division"), std::string::npos);
}

TEST(VmTest, LocalsAndParams) {
  // main(a): local = a + 1; return local * 2
  auto P = makeProgram({Instr(Opcode::LoadL, 0), Instr::push(1),
                        Instr(Opcode::Add), Instr(Opcode::StoreL, 1),
                        Instr(Opcode::LoadL, 1), Instr::push(2),
                        Instr(Opcode::Mul), Instr(Opcode::Ret)},
                       /*Params=*/1, /*Slots=*/2);
  EXPECT_EQ(runMain(P, {20}), 42);
}

TEST(VmTest, GlobalsLoadStore) {
  AsmGlobal G;
  G.Name = "g";
  G.Size = 1;
  G.Init = {7};
  auto P = makeProgram({Instr(Opcode::LoadG, 0), Instr::push(1),
                        Instr(Opcode::Add), Instr(Opcode::StoreG, 0),
                        Instr(Opcode::LoadG, 0), Instr(Opcode::Ret)},
                       0, 0, {G});
  EXPECT_EQ(runMain(P), 8);
}

TEST(VmTest, IndexedGlobalBoundsCheck) {
  AsmGlobal G;
  G.Name = "a";
  G.Size = 3;
  G.Init = {0, 0, 0};
  // a[5] with declared size 3 must trap.
  Instr Bad(Opcode::LoadGI, 0, /*Imm=size*/ 3);
  auto P = makeProgram({Instr::push(5), Bad, Instr(Opcode::Ret)}, 0, 0, {G});
  Vm M(P);
  M.start("main", {});
  std::vector<std::int64_t> Globals = P->initialGlobals();
  EXPECT_EQ(M.run(Globals, 100), Vm::Status::Error);
}

TEST(VmTest, JumpsImplementLoops) {
  // sum 1..n with a Jz loop. slots: 0=n, 1=acc, 2=i
  std::vector<Instr> Code = {
      Instr::push(0), Instr(Opcode::StoreL, 1),   // acc = 0
      Instr::push(1), Instr(Opcode::StoreL, 2),   // i = 1
      // loop head (4): i <= n ?
      Instr(Opcode::LoadL, 2), Instr(Opcode::LoadL, 0), Instr(Opcode::Le),
      Instr(Opcode::Jz, 16),
      Instr(Opcode::LoadL, 1), Instr(Opcode::LoadL, 2), Instr(Opcode::Add),
      Instr(Opcode::StoreL, 1),
      Instr(Opcode::LoadL, 2), Instr::push(1), Instr(Opcode::Add),
      // 15: i = i + 1... wait index
      Instr(Opcode::StoreL, 2),
      // 16 is here only if the count matches; recompute: entries 0..15
  };
  Code.push_back(Instr(Opcode::Jmp, 4));          // 16 -> fix Jz target
  Code.push_back(Instr(Opcode::LoadL, 1));        // 17
  Code.push_back(Instr(Opcode::Ret));             // 18
  Code[7] = Instr(Opcode::Jz, 17);
  auto P = makeProgram(Code, 1, 3);
  EXPECT_EQ(runMain(P, {10}), 55);
}

TEST(VmTest, PrimPausesAndResumes) {
  auto P = makeProgram({Instr::push(5), Instr::withSym(Opcode::Prim, "p", 1),
                        Instr::push(1), Instr(Opcode::Add),
                        Instr(Opcode::Ret)});
  Vm M(P);
  M.start("main", {});
  std::vector<std::int64_t> Globals;
  ASSERT_EQ(M.run(Globals, 100), Vm::Status::AtPrim);
  EXPECT_EQ(M.primName(), "p");
  EXPECT_EQ(M.primArgs(), (std::vector<std::int64_t>{5}));
  M.resumePrim(100);
  ASSERT_EQ(M.run(Globals, 100), Vm::Status::Done);
  EXPECT_EQ(M.result(), 101);
}

TEST(VmTest, CopyableMidExecution) {
  auto P = makeProgram({Instr::push(5), Instr::withSym(Opcode::Prim, "p", 1),
                        Instr(Opcode::Ret)});
  Vm M(P);
  M.start("main", {});
  std::vector<std::int64_t> Globals;
  ASSERT_EQ(M.run(Globals, 100), Vm::Status::AtPrim);

  Vm Copy = M; // snapshot at the query point
  M.resumePrim(1);
  ASSERT_EQ(M.run(Globals, 100), Vm::Status::Done);
  EXPECT_EQ(M.result(), 1);

  Copy.resumePrim(2);
  ASSERT_EQ(Copy.run(Globals, 100), Vm::Status::Done);
  EXPECT_EQ(Copy.result(), 2);
}

TEST(VmTest, BudgetExhaustionTraps) {
  auto P = makeProgram({Instr(Opcode::Jmp, 0)});
  Vm M(P);
  M.start("main", {});
  std::vector<std::int64_t> Globals;
  EXPECT_EQ(M.run(Globals, 100), Vm::Status::Error);
  EXPECT_NE(M.error().find("budget"), std::string::npos);
}

TEST(VmTest, StackUnderflowTraps) {
  auto P = makeProgram({Instr(Opcode::Add), Instr(Opcode::Ret)});
  Vm M(P);
  M.start("main", {});
  std::vector<std::int64_t> Globals;
  EXPECT_EQ(M.run(Globals, 100), Vm::Status::Error);
}

TEST(VmTest, DisassembleRoundTripNames) {
  EXPECT_STREQ(opcodeName(Opcode::Push), "push");
  Instr I = Instr::withSym(Opcode::Prim, "acq", 2);
  EXPECT_EQ(I.toString(), "prim acq/2");
}
