//===- tests/objects/mcslock_test.cpp - Certified MCS lock tests ----------------===//

#include "objects/McsLock.h"

#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "objects/TicketLock.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(McsReplayTest, SwapSetsTail) {
  Replayer<McsState> R = makeMcsReplayer();
  Log L = {Event(1, "mcs_init"), Event(1, "mcs_swap_tail")};
  std::optional<McsState> S = R.replay(L);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Tail, 1);
  EXPECT_EQ(S->Busy.at(1), 1);
  EXPECT_EQ(S->Next.at(1), -1);
}

TEST(McsReplayTest, HandoffProtocol) {
  Log L = {
      Event(1, "mcs_init"),      Event(1, "mcs_swap_tail"),
      Event(1, "hold"),          Event(2, "mcs_init"),
      Event(2, "mcs_swap_tail"), Event(2, "mcs_set_next", {1}),
      Event(1, "mcs_get_next"),  Event(1, "mcs_clear_busy", {2}),
      Event(2, "mcs_get_busy"),  Event(2, "hold"),
  };
  Replayer<McsState> R = makeMcsReplayer();
  std::optional<McsState> S = R.replay(L);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Holder, 2u);
  EXPECT_EQ(S->Busy.at(2), 0);
}

TEST(McsReplayTest, CasSuccessWithoutBeingTailIsStuck) {
  Log L = {Event(1, "mcs_init"), Event(1, "mcs_cas_tail", {1})};
  Replayer<McsState> R = makeMcsReplayer();
  EXPECT_FALSE(R.replay(L).has_value()); // tail is -1, not 1
}

TEST(McsReplayTest, ClearBusyByNonHolderIsStuck) {
  Log L = {Event(1, "mcs_init"), Event(1, "mcs_clear_busy", {1})};
  Replayer<McsState> R = makeMcsReplayer();
  EXPECT_FALSE(R.replay(L).has_value());
}

TEST(McsReplayTest, DoubleHoldIsStuck) {
  Log L = {Event(1, "hold"), Event(2, "hold")};
  Replayer<McsState> R = makeMcsReplayer();
  EXPECT_FALSE(R.replay(L).has_value());
}

TEST(McsLockTest, CertifiesOnTwoCpus) {
  HarnessOutcome Out = certifyMcsLock(2);
  ASSERT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
  EXPECT_TRUE(Out.Layer.valid());
  EXPECT_GT(Out.Report.ObligationsChecked, 0u);
}

TEST(McsLockTest, SharesAtomicInterfaceWithTicketLock) {
  // §6: the two locks refine the same overlay, so they are
  // interchangeable above this layer.
  McsLockLayers Mcs = makeMcsLockLayers();
  EXPECT_TRUE(Mcs.L1->provides("acq"));
  EXPECT_TRUE(Mcs.L1->provides("rel"));
  EXPECT_EQ(Mcs.L1->name(), "L1");
}

TEST(McsLockTest, BuggyReleaseIsCaught) {
  // A release that clears the successor's flag without waiting for the
  // successor to link (skipping the spin after a failed CAS) breaks the
  // handoff; the machine must get stuck or violate mutual exclusion on
  // some schedule.
  McsLockLayers Layers = makeMcsLockLayers();
  static ClightModule Broken;
  Broken = parseModuleOrDie("M1_mcs_broken", R"(
    extern void mcs_init();
    extern int mcs_swap_tail();
    extern void mcs_set_next(int prev);
    extern int mcs_get_busy();
    extern int mcs_get_next();
    extern int mcs_cas_tail();
    extern void mcs_clear_busy(int t);
    extern void hold();

    void acq() {
      mcs_init();
      int prev = mcs_swap_tail();
      if (prev != -1) {
        mcs_set_next(prev);
        while (mcs_get_busy() != 0) {}
      }
      hold();
    }

    void rel() {
      // BUG: ignores the queue and "releases" by clearing its own flag.
      mcs_clear_busy(0);
    }
  )");
  typeCheckOrDie(Broken);
  static ClightModule Client;
  Client = makeTicketClient();

  ObjectHarness H;
  H.ObjectName = "mcs_broken";
  H.Underlay = Layers.L0;
  H.Modules = {&Broken};
  H.Overlay = Layers.L1;
  H.R = Layers.R1;
  H.Client = &Client;
  H.Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  H.Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  H.ImplOpts.FairnessBound = 2;
  H.ImplOpts.MaxSteps = 200;
  H.ImplOpts.Invariant = mcsMutexInvariant;
  H.SpecOpts.FairnessBound = 1u << 20;
  H.SpecOpts.MaxSteps = 200;
  HarnessOutcome Out = runObjectHarness(H);
  EXPECT_FALSE(Out.Report.Holds);
}
