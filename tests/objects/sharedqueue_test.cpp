//===- tests/objects/sharedqueue_test.cpp - Shared queue refinement tests -------===//

#include "objects/SharedQueue.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(SharedQueueReplayTest, EnqDeqFifo) {
  Replayer<AbstractSharedQueue> R = makeSharedQueueReplayer();
  Log L = {Event(1, "enQ", {10}), Event(1, "enQ", {20}), Event(2, "deQ")};
  std::optional<AbstractSharedQueue> S = R.replay(L);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Items, (std::vector<std::int64_t>{20}));
}

TEST(SharedQueueReplayTest, DeqOnEmptyIsNoop) {
  Replayer<AbstractSharedQueue> R = makeSharedQueueReplayer();
  Log L = {Event(1, "deQ"), Event(1, "enQ", {5})};
  std::optional<AbstractSharedQueue> S = R.replay(L);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Items, (std::vector<std::int64_t>{5}));
}

TEST(SharedQueueReplayTest, CapacityBounded) {
  Replayer<AbstractSharedQueue> R = makeSharedQueueReplayer();
  Log L;
  for (int I = 0; I != SharedQueueCap + 3; ++I)
    logAppend(L, Event(1, "enQ", {I}));
  std::optional<AbstractSharedQueue> S = R.replay(L);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Items.size(), static_cast<size_t>(SharedQueueCap));
}

TEST(SharedQueueTest, CertifiesOneProducerOneConsumer) {
  HarnessOutcome Out = certifySharedQueue(1, 1, 2);
  ASSERT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
  EXPECT_TRUE(Out.Layer.valid());
  EXPECT_GT(Out.Report.ObligationsChecked, 0u);
  // Vertical composition target: the underlay is the lock's atomic
  // interface, not the ticket machine.
  EXPECT_EQ(Out.Layer.Underlay->name(), "L1_lock_pp");
  EXPECT_EQ(Out.Layer.Overlay->name(), "Lq");
}

TEST(SharedQueueTest, CertifiesTwoProducers) {
  HarnessOutcome Out = certifySharedQueue(2, 1, 1);
  ASSERT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
}

TEST(SharedQueueTest, SetupWiring) {
  SharedQueueSetup S = makeSharedQueueSetup(1, 1, 1);
  EXPECT_TRUE(S.Underlay->provides("acq"));
  EXPECT_TRUE(S.Underlay->provides("pull"));
  EXPECT_TRUE(S.Underlay->provides("deq_done"));
  EXPECT_TRUE(S.Overlay->provides("deQ"));
  EXPECT_TRUE(S.Overlay->provides("enQ"));
  // The commit relation maps markers to atomic events and hides the rest.
  EXPECT_EQ(S.R.map(Event(1, "deq_done", {5})), Event(1, "deQ"));
  EXPECT_EQ(S.R.map(Event(1, "enq_done", {5})), Event(1, "enQ", {5}));
  EXPECT_FALSE(S.R.map(Event(1, "acq")).has_value());
  EXPECT_FALSE(S.R.map(Event(1, "pull", {0})).has_value());
}

TEST(SharedQueueTest, ImplMachineUsesPushPullSafely) {
  // Direct exploration of the implementation: no data race (no stuck
  // pull/push) on any schedule, thanks to the lock protocol.
  SharedQueueSetup S = makeSharedQueueSetup(1, 1, 2);
  ExploreOptions Opts;
  Opts.FairnessBound = 4;
  Opts.MaxSteps = 512;
  ExploreResult Res = exploreMachine(S.ImplConfig, Opts);
  EXPECT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_TRUE(Res.Complete);
}

TEST(SharedQueueTest, UnlockedPushPullRaceIsCaught) {
  // Fig. 6's data-race story end to end: the same pull/push cell accessed
  // WITHOUT the lock.  On some schedule both CPUs pull concurrently; the
  // machine gets stuck and the explorer reports it.
  static ClightModule Racy = [] {
    ClightModule M = parseModuleOrDie("racy", R"(
      extern void pull(int b);
      extern void push(int b);

      int c_data[2];

      int racy() {
        pull(0);
        c_data[0] = c_data[0] + 1;
        push(0);
        return c_data[0];
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();

  AsmProgramPtr Prog = compileAndLink("racy.lasm", {&Racy});
  PushPullModel Mem;
  PushPullModel::Location Cell;
  Cell.Loc = 0;
  Cell.LocalBase = Prog->globalAddr("c_data");
  Cell.Size = 2;
  Mem.addLocation(Cell);
  auto L = std::make_shared<LayerInterface>("Lracy");
  Mem.installPrims(*L);

  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "racy";
  Cfg->Layer = L;
  Cfg->Program = Prog;
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"racy", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"racy", {}}});

  ExploreOptions Opts;
  Opts.MaxSteps = 64;
  ExploreResult Res = exploreMachine(Cfg, Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Violation.find("stuck"), std::string::npos);
}

TEST(SharedQueueTest, SerializedPushPullIsRaceFree) {
  // The same cell accessed by one CPU at a time (single CPU): no schedule
  // gets stuck, and the increments accumulate through the log.
  static ClightModule Racy = [] {
    ClightModule M = parseModuleOrDie("ser", R"(
      extern void pull(int b);
      extern void push(int b);

      int c_data[2];

      int bump_cell() {
        pull(0);
        c_data[0] = c_data[0] + 1;
        push(0);
        return c_data[0];
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();

  AsmProgramPtr Prog = compileAndLink("ser.lasm", {&Racy});
  PushPullModel Mem;
  PushPullModel::Location Cell;
  Cell.Loc = 0;
  Cell.LocalBase = Prog->globalAddr("c_data");
  Cell.Size = 2;
  Mem.addLocation(Cell);
  auto L = std::make_shared<LayerInterface>("Lser");
  Mem.installPrims(*L);

  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "ser";
  Cfg->Layer = L;
  Cfg->Program = Prog;
  Cfg->Work.emplace(
      1, std::vector<CpuWorkItem>{{"bump_cell", {}}, {"bump_cell", {}}});

  ExploreOptions Opts;
  ExploreResult Res = exploreMachine(Cfg, Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  ASSERT_EQ(Res.Outcomes.size(), 1u);
  EXPECT_EQ(Res.Outcomes[0].Returns.at(1),
            (std::vector<std::int64_t>{1, 2})); // state carried via the log
}
