//===- tests/objects/ralock_test.cpp - Locks under release/acquire memory -------===//
//
// Re-verification of the runtime locks under the RaMemory model: the
// correctly annotated ticket and MCS locks must still certify against the
// same atomic overlay L1, while the broken ticket lock's model twin — the
// torn relaxed ticket grab of rt::BrokenTicketLock — must be *refuted by
// exploration alone*, with a concrete duplicate-ticket counterexample.

#include "objects/McsLock.h"
#include "objects/TicketLock.h"

#include "machine/MemoryModel.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(RaTicketLockTest, CertifiesOnTwoCpus) {
  HarnessOutcome Out = certifyTicketLockRa(2);
  ASSERT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
  EXPECT_TRUE(Out.Layer.valid());
  EXPECT_GT(Out.Report.ObligationsChecked, 0u);
  EXPECT_EQ(Out.Layer.Cert->Rule, "LogLift");
}

TEST(RaTicketLockTest, SameOutcomesAsScOnTwoCpus) {
  // The annotated lock's synchronization collapses every reads-from menu
  // back to the latest write, so the RA implementation machine admits
  // exactly the SC outcome set — the refinement is not weakened, just
  // re-established against a strictly larger candidate space.
  ObjectHarness ScH = makeTicketLockHarness(2);
  ObjectHarness RaH = makeTicketLockHarnessRa(2);
  ExploreResult Sc = exploreMachine(ScH.implConfig(), ScH.ImplOpts);
  ExploreResult Ra = exploreMachine(RaH.implConfig(), RaH.ImplOpts);
  ASSERT_TRUE(Sc.Ok) << Sc.Violation;
  ASSERT_TRUE(Ra.Ok) << Ra.Violation;
  ASSERT_EQ(Sc.Outcomes.size(), Ra.Outcomes.size());
  OutcomeSet ScSet;
  for (const Outcome &O : Sc.Outcomes)
    ScSet.insert(O);
  for (const Outcome &O : Ra.Outcomes)
    EXPECT_FALSE(ScSet.insert(O)) << "RA-only outcome under the "
                                     "correctly annotated lock";
}

TEST(RaTicketLockTest, BrokenGrabIsRefutedByExploration) {
  // rt::BrokenTicketLock's model twin: the ticket grab demoted to a torn
  // relaxed load/store pair.  Under RaMemory the stale ticket read is an
  // enumerable reads-from choice, so some exploration branch hands the
  // same ticket to both CPUs, both pass the now-serving gate, and the
  // double hold wedges the ticket replay — the "ticket.mutex" invariant
  // must refute the refinement without any external oracle.
  HarnessOutcome Out = certifyTicketLockRa(2, 1, /*BrokenGrab=*/true);
  ASSERT_FALSE(Out.Report.Holds);
  EXPECT_FALSE(Out.Layer.valid());
  // The counterexample is concrete: it carries an implementation log in
  // which the torn grab handed out a stale ticket.  (Whether DFS first
  // hits the double-hold invariant or a stale-counter refinement mismatch
  // depends on exploration order; both are weak-memory counterexamples.)
  EXPECT_NE(Out.Report.Counterexample.find("FAI_t"), std::string::npos)
      << Out.Report.Counterexample;
}

TEST(RaTicketLockTest, BrokenGrabReachesDoubleHold) {
  // The duplicate-ticket double hold specifically: explore the broken
  // implementation machine with only the mutual-exclusion invariant armed
  // (no refinement comparison to trip first).  Some branch must hand the
  // same ticket to both CPUs, pass both through the now-serving gate, and
  // wedge the ticket replay on the second hold.
  ObjectHarness H = makeTicketLockHarnessRa(2, 1, /*BrokenGrab=*/true);
  ExploreResult Res = exploreMachine(H.implConfig(), H.ImplOpts);
  ASSERT_FALSE(Res.Ok);
  EXPECT_NE(Res.Violation.find("invariant violated"), std::string::npos)
      << Res.Violation;
  // The violating log is part of the diagnostic and shows both grabs.
  EXPECT_NE(Res.Violation.find("1.FAI_t"), std::string::npos)
      << Res.Violation;
  EXPECT_NE(Res.Violation.find("2.FAI_t"), std::string::npos)
      << Res.Violation;
}

TEST(RaTicketLockTest, BrokenGrabStillPassesUnderScMemory) {
  // Control: the same torn-grab layers explored under ScMemory (where a
  // read always sees the latest write) show no violation — the bug is a
  // weak-memory bug, only visible once stale reads are enumerated.  This
  // is exactly why the RA backend exists.
  ObjectHarness H = makeTicketLockHarnessRa(2, 1, /*BrokenGrab=*/true);
  H.ImplModel = scMemory();
  HarnessOutcome Out = runObjectHarness(H);
  EXPECT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
}

TEST(RaMcsLockTest, CertifiesOnTwoCpus) {
  HarnessOutcome Out = certifyMcsLockRa(2);
  ASSERT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
  EXPECT_TRUE(Out.Layer.valid());
  EXPECT_GT(Out.Report.ObligationsChecked, 0u);
}

TEST(RaMcsLockTest, RefinesSameOverlayAsTicket) {
  // §6's interchangeability survives the memory-model change: both RA
  // locks certify against the *same* L1, so higher layers keep their
  // proofs whichever lock (and whichever memory model) sits below.
  HarnessOutcome Ticket = certifyTicketLockRa(2);
  HarnessOutcome Mcs = certifyMcsLockRa(2);
  ASSERT_TRUE(Ticket.Report.Holds) << Ticket.Report.Counterexample;
  ASSERT_TRUE(Mcs.Report.Holds) << Mcs.Report.Counterexample;
  ASSERT_TRUE(Ticket.Layer.Overlay && Mcs.Layer.Overlay);
  EXPECT_EQ(Ticket.Layer.Overlay->name(), Mcs.Layer.Overlay->name());
}
