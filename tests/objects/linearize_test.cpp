//===- tests/objects/linearize_test.cpp - Linearizability search tests ----------===//

#include "objects/Linearize.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

/// Sequential counter spec: "inc" returns the number of previous incs.
SeqSpec counterSpec() {
  return [](const Log &SoFar, ThreadId,
            const ObservedOp &Op) -> std::optional<std::int64_t> {
    if (Op.Method != "inc")
      return std::nullopt;
    return static_cast<std::int64_t>(logCountKind(SoFar, "inc"));
  };
}

/// Sequential FIFO queue spec over enQ/deQ.
SeqSpec queueSpec() {
  return [](const Log &SoFar, ThreadId,
            const ObservedOp &Op) -> std::optional<std::int64_t> {
    std::vector<std::int64_t> Q;
    for (const Event &E : SoFar) {
      if (E.Kind == "enQ")
        Q.push_back(E.Args[0]);
      else if (E.Kind == "deQ" && !Q.empty())
        Q.erase(Q.begin());
    }
    if (Op.Method == "enQ")
      return 0;
    if (Op.Method == "deQ")
      return Q.empty() ? -1 : Q.front();
    return std::nullopt;
  };
}

} // namespace

TEST(LinearizeTest, SequentialHistoryIsLinearizable) {
  std::map<ThreadId, std::vector<ObservedOp>> H;
  H[1] = {{"inc", {}, 0}, {"inc", {}, 1}};
  LinearizeResult R = findLinearization(H, counterSpec());
  EXPECT_TRUE(R.Linearizable);
  EXPECT_EQ(R.Witness.size(), 2u);
}

TEST(LinearizeTest, ConcurrentCounterHistory) {
  // Thread 1 saw 0 then 2; thread 2 saw 1: the only witness interleaves
  // t2's inc between t1's two.
  std::map<ThreadId, std::vector<ObservedOp>> H;
  H[1] = {{"inc", {}, 0}, {"inc", {}, 2}};
  H[2] = {{"inc", {}, 1}};
  LinearizeResult R = findLinearization(H, counterSpec());
  ASSERT_TRUE(R.Linearizable);
  ASSERT_EQ(R.Witness.size(), 3u);
  EXPECT_EQ(R.Witness[1].Tid, 2u);
}

TEST(LinearizeTest, ImpossibleHistoryRejected) {
  // Two operations both claiming to be the first inc.
  std::map<ThreadId, std::vector<ObservedOp>> H;
  H[1] = {{"inc", {}, 0}};
  H[2] = {{"inc", {}, 0}};
  LinearizeResult R = findLinearization(H, counterSpec());
  EXPECT_FALSE(R.Linearizable);
}

TEST(LinearizeTest, ProgramOrderRespected) {
  // Thread 1 claims 1 then 0 — impossible in program order even though a
  // reordering would satisfy the spec.
  std::map<ThreadId, std::vector<ObservedOp>> H;
  H[1] = {{"inc", {}, 1}, {"inc", {}, 0}};
  H[2] = {{"inc", {}, 2}};
  LinearizeResult R = findLinearization(H, counterSpec());
  EXPECT_FALSE(R.Linearizable);
}

TEST(LinearizeTest, QueueHistoryWithValues) {
  std::map<ThreadId, std::vector<ObservedOp>> H;
  H[1] = {{"enQ", {7}, 0}, {"enQ", {8}, 0}};
  H[2] = {{"deQ", {}, 7}, {"deQ", {}, 8}};
  LinearizeResult R = findLinearization(H, queueSpec());
  EXPECT_TRUE(R.Linearizable);
}

TEST(LinearizeTest, QueueDuplicateDeliveryRejected) {
  std::map<ThreadId, std::vector<ObservedOp>> H;
  H[1] = {{"enQ", {7}, 0}};
  H[2] = {{"deQ", {}, 7}, {"deQ", {}, 7}};
  LinearizeResult R = findLinearization(H, queueSpec());
  EXPECT_FALSE(R.Linearizable);
}

TEST(LinearizeTest, BudgetExhaustionReported) {
  // Large symmetric history with an unsatisfiable tail and a tiny budget.
  std::map<ThreadId, std::vector<ObservedOp>> H;
  for (ThreadId T = 1; T <= 6; ++T)
    H[T] = {{"inc", {}, 0}, {"inc", {}, 0}};
  LinearizeResult R = findLinearization(H, counterSpec(), /*MaxNodes=*/50);
  EXPECT_FALSE(R.Linearizable);
}

TEST(LinearizeTest, OutcomeIsThreeWayNeverConflated) {
  // The same unsatisfiable history under three budgets, pinning the
  // fail-closed contract every caller leans on: a cut-off search is
  // BudgetExhausted — it must never read as Refuted (false alarm) and can
  // of course never read as Linearizable (unsound).
  // Concurrent enqueues branch freely (every order is legal), and the
  // one impossible dequeue only refutes after the whole product of
  // enqueue interleavings is exhausted — a tiny budget cuts that off.
  std::map<ThreadId, std::vector<ObservedOp>> H;
  for (ThreadId T = 1; T <= 5; ++T)
    H[T] = {{"enQ", {T}, 0}, {"enQ", {T + 10}, 0}};
  H[1].push_back({"deQ", {}, 99}); // 99 was never enqueued

  LinearizeResult Cut = findLinearization(H, queueSpec(), /*MaxNodes=*/50);
  EXPECT_TRUE(Cut.BudgetExhausted);
  EXPECT_EQ(Cut.outcome(), LinearizeOutcome::BudgetExhausted);

  LinearizeResult Full = findLinearization(H, queueSpec());
  EXPECT_FALSE(Full.BudgetExhausted);
  EXPECT_EQ(Full.outcome(), LinearizeOutcome::Refuted);

  std::map<ThreadId, std::vector<ObservedOp>> Ok;
  Ok[1] = {{"inc", {}, 0}};
  Ok[2] = {{"inc", {}, 1}};
  EXPECT_EQ(findLinearization(Ok, counterSpec()).outcome(),
            LinearizeOutcome::Linearizable);
}

TEST(LinearizeTest, PrecedenceTurnsSequentialConsistencyIntoLinearizability) {
  // t1 saw inc->1, t2 saw inc->0: sequentially consistent (t2 first).  A
  // real-time edge "t2's op follows t1's full history" contradicts that
  // only order, so with precedence supplied the history must be Refuted.
  std::map<ThreadId, std::vector<ObservedOp>> H;
  H[1] = {{"inc", {}, 1}};
  H[2] = {{"inc", {}, 0}};
  EXPECT_EQ(findLinearization(H, counterSpec()).outcome(),
            LinearizeOutcome::Linearizable);

  PrecedenceMap P;
  P[{2, 0}] = {{1, 1}}; // thread 1 must have placed 1 op before (2,0)
  LinearizeResult R =
      findLinearization(H, counterSpec(), 1u << 22, &P);
  EXPECT_EQ(R.outcome(), LinearizeOutcome::Refuted);
}

TEST(LinearizeTest, PriorityChangesSearchOrderNeverOutcome) {
  std::map<ThreadId, std::vector<ObservedOp>> H;
  H[1] = {{"inc", {}, 0}, {"inc", {}, 2}};
  H[2] = {{"inc", {}, 1}};
  for (bool TwoFirst : {false, true}) {
    PriorityMap Pri;
    Pri[{1, 0}] = TwoFirst ? 10 : 0;
    Pri[{1, 1}] = TwoFirst ? 11 : 1;
    Pri[{2, 0}] = TwoFirst ? 0 : 10;
    LinearizeResult R =
        findLinearization(H, counterSpec(), 1u << 22, nullptr, &Pri);
    ASSERT_EQ(R.outcome(), LinearizeOutcome::Linearizable);
    ASSERT_EQ(R.Witness.size(), 3u);
    EXPECT_EQ(R.Witness[1].Tid, 2u)
        << "only one witness exists; priority may not invent another";
  }
}
