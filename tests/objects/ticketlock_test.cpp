//===- tests/objects/ticketlock_test.cpp - Certified ticket lock tests ----------===//

#include "objects/TicketLock.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(TicketReplayTest, TracksCountersAndHolder) {
  Replayer<TicketState> R = makeTicketReplayer();
  Log L = {Event(1, "FAI_t"), Event(2, "FAI_t"), Event(1, "hold")};
  std::optional<TicketState> S = R.replay(L);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->NextTicket, 2);
  EXPECT_EQ(S->NowServing, 0);
  EXPECT_EQ(S->Holder, 1u);
}

TEST(TicketReplayTest, DoubleHoldIsStuck) {
  Replayer<TicketState> R = makeTicketReplayer();
  Log L = {Event(1, "hold"), Event(2, "hold")};
  EXPECT_FALSE(R.replay(L).has_value());
}

TEST(TicketReplayTest, ReleaseByNonHolderIsStuck) {
  Replayer<TicketState> R = makeTicketReplayer();
  Log L = {Event(1, "hold"), Event(2, "inc_n")};
  EXPECT_FALSE(R.replay(L).has_value());
}

TEST(TicketReplayTest, FifoOrderChecked) {
  Log Good = {Event(1, "FAI_t"), Event(2, "FAI_t"), Event(1, "hold"),
              Event(1, "inc_n"), Event(2, "hold")};
  EXPECT_EQ(checkTicketFifo(Good), "");
  Log Bad = {Event(1, "FAI_t"), Event(2, "FAI_t"), Event(2, "hold")};
  EXPECT_NE(checkTicketFifo(Bad), "");
}

TEST(TicketLockTest, CertifiesOnTwoCpus) {
  HarnessOutcome Out = certifyTicketLock(2);
  ASSERT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
  EXPECT_TRUE(Out.Layer.valid());
  EXPECT_GT(Out.Report.ObligationsChecked, 0u);
  EXPECT_GT(Out.Report.SchedulesExplored, 2u);
  EXPECT_EQ(Out.Layer.Cert->Rule, "LogLift");
  EXPECT_EQ(Out.Layer.Relation, "R1");
}

TEST(TicketLockTest, CertifiesTwoRoundsSingleCpu) {
  // Re-acquisition across rounds: the replayed counters must keep working
  // after release (single CPU keeps the schedule space small; the
  // concurrent case is covered by CertifiesOnTwoCpus).
  HarnessOutcome Out = certifyTicketLock(1, /*Rounds=*/2);
  ASSERT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
}

TEST(TicketLockTest, BuggyLockIsCaught) {
  // A lock that skips the spin loop (acquires immediately) violates
  // mutual exclusion and the checker must find it.
  TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule Broken;
  Broken = parseModuleOrDie("M1_broken", R"(
    extern int FAI_t();
    extern int get_n();
    extern void inc_n();
    extern void hold();
    void acq() {
      int my_t = FAI_t();
      hold();
    }
    void rel() { inc_n(); }
  )");
  typeCheckOrDie(Broken);
  static ClightModule Client;
  Client = makeTicketClient();

  ObjectHarness H;
  H.ObjectName = "broken_lock";
  H.Underlay = Layers.L0;
  H.Modules = {&Broken};
  H.Overlay = Layers.L1;
  H.R = Layers.R1;
  H.Client = &Client;
  H.Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  H.Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  H.ImplOpts.FairnessBound = 2;
  H.ImplOpts.MaxSteps = 256;
  H.ImplOpts.Invariant = ticketMutexInvariant;
  H.SpecOpts.FairnessBound = 1u << 20;
  H.SpecOpts.MaxSteps = 256;

  HarnessOutcome Out = runObjectHarness(H);
  EXPECT_FALSE(Out.Report.Holds);
  EXPECT_NE(Out.Report.Counterexample.find("violat"), std::string::npos);
}

TEST(TicketLockTest, UnfairnessWouldStarve) {
  // Without the FIFO discipline, a non-ticket "test-and-set-like" lock
  // can acquire out of ticket order; the FIFO whole-log check rejects it.
  Log OutOfOrder = {Event(1, "FAI_t"), Event(2, "FAI_t"), Event(2, "hold"),
                    Event(2, "inc_n"), Event(1, "hold")};
  EXPECT_NE(checkTicketFifo(OutOfOrder), "");
}

TEST(TicketLockTest, LayerPiecesAreWellFormed) {
  TicketLockLayers Layers = makeTicketLockLayers();
  EXPECT_TRUE(Layers.L0->provides("FAI_t"));
  EXPECT_TRUE(Layers.L0->provides("get_n"));
  EXPECT_TRUE(Layers.L1->provides("acq"));
  EXPECT_TRUE(Layers.L1->provides("rel"));
  EXPECT_FALSE(Layers.L1->provides("FAI_t")); // hidden by the layer
  EXPECT_EQ(Layers.M1.definedFuncs(),
            (std::vector<std::string>{"acq", "rel"}));
}

TEST(TicketLockTest, StarvationFreedomBoundHolds) {
  // §4.1: "the while-loop in acq terminates in n x m x #CPU steps" — the
  // executable form measures the worst wait over every fair schedule.
  StarvationReport Rep =
      checkTicketStarvationFreedom(/*NumCpus=*/2, /*FairnessBound=*/2);
  ASSERT_TRUE(Rep.Ok) << Rep.Violation;
  EXPECT_TRUE(Rep.WithinBound)
      << "worst wait " << Rep.WorstWait << " exceeds " << Rep.Bound;
  EXPECT_GT(Rep.WorstWait, 0u); // some schedule really made a CPU wait
}

TEST(TicketLockTest, StarvationBoundScalesWithFairness) {
  StarvationReport Tight =
      checkTicketStarvationFreedom(/*NumCpus=*/2, /*FairnessBound=*/1);
  StarvationReport Loose =
      checkTicketStarvationFreedom(/*NumCpus=*/2, /*FairnessBound=*/3);
  ASSERT_TRUE(Tight.Ok && Loose.Ok);
  EXPECT_LE(Tight.WorstWait, Loose.WorstWait);
  EXPECT_TRUE(Tight.WithinBound);
  EXPECT_TRUE(Loose.WithinBound);
}

TEST(TicketLockTest, HarnessStatsPopulated) {
  HarnessOutcome Out = certifyTicketLock(2);
  EXPECT_GT(Out.ImplLoC, 5u);
  EXPECT_GE(Out.SpecPrimCount, 4u);
}

TEST(TicketLockTest, CompatCheckedOnExploredCorpus) {
  // Pcomp's Compat side condition (Fig. 9), discharged on *real* logs:
  // the corpus gathered while exploring the implementation machine,
  // mapped to the overlay's vocabulary through R1, must satisfy the
  // guarantee-implies-rely implications of L1 for both focus sets.
  TicketLockLayers Layers = makeTicketLockLayers();
  HarnessOutcome Out = certifyTicketLock(2);
  ASSERT_TRUE(Out.Report.Holds);
  ASSERT_FALSE(Out.Report.Corpus.empty());

  std::vector<Log> Corpus;
  for (const Log &L : Out.Report.Corpus)
    Corpus.push_back(Layers.R1.apply(L));

  calculus::CompatReport Compat =
      calculus::checkCompat(*Layers.L1, {1}, {2}, Corpus);
  EXPECT_TRUE(Compat.Holds);
  EXPECT_GT(Compat.LogsChecked, 0u);
  CertPtr C = Compat.cert("L1");
  EXPECT_TRUE(C->Valid);
  EXPECT_EQ(C->Rule, "Compat");
}
