//===- tests/objects/localqueue_test.cpp - Local queue refinement tests ---------===//

#include "objects/LocalQueue.h"

#include "lang/Interp.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(AbstractLocalQueueTest, FifoWithSetSemantics) {
  AbstractLocalQueue Q;
  Q.enQ(3);
  Q.enQ(5);
  Q.enQ(3); // duplicate ignored
  EXPECT_EQ(Q.size(), 2);
  EXPECT_EQ(Q.deQ(), 3);
  EXPECT_EQ(Q.deQ(), 5);
  EXPECT_EQ(Q.deQ(), -1);
}

TEST(AbstractLocalQueueTest, RemoveFromMiddle) {
  AbstractLocalQueue Q;
  Q.enQ(1);
  Q.enQ(2);
  Q.enQ(3);
  Q.rmQ(2);
  EXPECT_EQ(Q.size(), 2);
  EXPECT_EQ(Q.deQ(), 1);
  EXPECT_EQ(Q.deQ(), 3);
}

TEST(AbstractLocalQueueTest, OutOfRangeIgnored) {
  AbstractLocalQueue Q;
  Q.enQ(-1);
  Q.enQ(LocalQueueCap);
  EXPECT_EQ(Q.size(), 0);
}

TEST(LocalQueueModuleTest, BasicSequenceThroughInterpreter) {
  ClightModule M = makeLocalQueueModule();
  Interp I(M, [](const std::string &, const std::vector<std::int64_t> &)
                  -> std::optional<std::int64_t> { return std::nullopt; });
  ASSERT_TRUE(I.call("q_init", {}).has_value());
  I.call("enQ", {4});
  I.call("enQ", {9});
  EXPECT_EQ(I.call("q_len", {}), 2);
  EXPECT_EQ(I.call("q_head_val", {}), 4);
  EXPECT_EQ(I.call("deQ", {}), 4);
  EXPECT_EQ(I.call("deQ", {}), 9);
  EXPECT_EQ(I.call("deQ", {}), -1);
}

TEST(LocalQueueModuleTest, RemoveHeadMiddleTail) {
  ClightModule M = makeLocalQueueModule();
  Interp I(M, [](const std::string &, const std::vector<std::int64_t> &)
                  -> std::optional<std::int64_t> { return std::nullopt; });
  I.call("q_init", {});
  for (std::int64_t V : {1, 2, 3, 4})
    I.call("enQ", {V});
  I.call("rmQ", {1}); // head
  I.call("rmQ", {3}); // middle
  I.call("rmQ", {4}); // tail
  EXPECT_EQ(I.call("q_len", {}), 1);
  EXPECT_EQ(I.call("deQ", {}), 2);
}

class LocalQueueDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalQueueDifferentialTest, InterpreterAgreesWithModel) {
  std::string Err =
      runLocalQueueDifferential(GetParam(), /*NumOps=*/400,
                                /*ThroughVm=*/false);
  EXPECT_EQ(Err, "");
}

TEST_P(LocalQueueDifferentialTest, CompiledCodeAgreesWithModel) {
  std::string Err =
      runLocalQueueDifferential(GetParam(), /*NumOps=*/400,
                                /*ThroughVm=*/true);
  EXPECT_EQ(Err, "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalQueueDifferentialTest,
                         ::testing::Values(1, 2, 3, 7, 42, 1234, 99999));
