//===- tests/cert/certstore_test.cpp - Certificate store tests -----------------===//
//
// The content-addressed store end to end: a cold refinement check persists
// its certificate, a warm repeat serves it back byte-identically with ZERO
// re-exploration (asserted through the explorer's own counters), and every
// fail-closed rule — corruption, tampered Valid/CoverageComplete, truncated
// evidence, anonymous (unhashable) inputs — rejects the entry and re-checks
// instead of trusting it.
//
//===----------------------------------------------------------------------===//

#include "cert/CertStore.h"

#include "compcertx/Linker.h"
#include "compcertx/Validate.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "machine/Soundness.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ccal;
namespace fs = std::filesystem;

namespace {

/// Each test gets a private store directory and a clean metrics registry;
/// the global store is always detached again so suites sharing the process
/// never cache behind each other's back.
class CertStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    WasEnabled = obs::enabled();
    obs::setEnabled(true);
    obs::metricsReset();
    Dir = fs::path(::testing::TempDir()) /
          (std::string("ccal_cert_store_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(Dir);
    cert::setStoreDir(Dir.string());
  }
  void TearDown() override {
    cert::setStoreDir("");
    fs::remove_all(Dir);
    obs::metricsReset();
    obs::setEnabled(WasEnabled);
  }

  std::vector<fs::path> storedFiles() const {
    std::vector<fs::path> Out;
    std::error_code Ec;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec))
      Out.push_back(E.path());
    return Out;
  }

  static std::string slurp(const fs::path &P) {
    std::ifstream In(P, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    return Buf.str();
  }

  fs::path Dir;
  bool WasEnabled = false;
};

/// The explorer_test tick machine: each CPU bumps a shared counter K times.
MachineConfigPtr makeTickConfig(unsigned Cpus, unsigned Ticks) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int tick();
      int t_main(int k) {
        int acc = 0;
        int i = 0;
        while (i < k) {
          acc = acc * 10 + tick();
          i = i + 1;
        }
        return acc;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Ltick");
  L->addShared("tick", makeFetchIncPrim("tick"));
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "tick";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("tick.lasm", {&Client});
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{
                             {"t_main", {static_cast<std::int64_t>(Ticks)}}});
  return Cfg;
}

ContextualRefinementReport runTickRefinement() {
  return checkContextualRefinement(makeTickConfig(2, 1), makeTickConfig(2, 1),
                                   EventMap::identity(), ExploreOptions(),
                                   ExploreOptions());
}

/// A minting-grade entry for the unit tests that drive load/store directly.
cert::CertStore::Entry makeGoodEntry() {
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "Fun";
  C->Underlay = "L0";
  C->Module = "M";
  C->Overlay = "L1";
  C->Relation = "R";
  C->Valid = true;
  C->CoverageComplete = true;
  C->Coverage = "exhaustive";
  C->Obligations = 3;
  cert::CertStore::Entry E;
  E.Cert = C;
  E.Payload = jsonStr("payload");
  return E;
}

cert::CertKey makeKey(const std::string &Checker, std::uint64_t Hash) {
  cert::CertKey K;
  K.Checker = Checker;
  K.Version = "test-v1";
  K.Hash = Hash;
  K.Desc = "unit-test entry";
  return K;
}

} // namespace

TEST_F(CertStoreTest, StoreThenLoadRoundTripsBytes) {
  cert::CertStore Store(Dir.string());
  cert::CertKey Key = makeKey("refine", 0x1234);
  cert::CertStore::Entry E = makeGoodEntry();
  Store.store(Key, E);

  cert::CertStore::Entry Back;
  ASSERT_TRUE(Store.load(Key, Back));
  EXPECT_EQ(cert::CertStore::render(Key, E),
            cert::CertStore::render(Key, Back));
  EXPECT_TRUE(Back.Cert->Valid);
  EXPECT_EQ(Back.Payload.StrVal, "payload");
}

TEST_F(CertStoreTest, WarmRefinementHitRunsZeroExplorations) {
  ContextualRefinementReport Cold = runTickRefinement();
  ASSERT_TRUE(Cold.Holds) << Cold.Counterexample;
  EXPECT_EQ(obs::counterValue("cert.misses"), 1u);
  EXPECT_EQ(obs::counterValue("cert.stores"), 1u);
  EXPECT_EQ(obs::counterValue("cert.hits"), 0u);

  std::vector<fs::path> Files = storedFiles();
  ASSERT_EQ(Files.size(), 1u);
  std::string ColdBytes = slurp(Files[0]);
  std::uint64_t Explored = obs::counterValue("explorer.schedules_explored");
  ASSERT_GT(Explored, 0u);

  ContextualRefinementReport Warm = runTickRefinement();
  EXPECT_EQ(obs::counterValue("cert.hits"), 1u);
  EXPECT_EQ(obs::counterValue("cert.misses"), 1u);
  // The load-bearing claim: a warm run re-explores nothing — the monotone
  // explorer counters do not move at all.
  EXPECT_EQ(obs::counterValue("explorer.schedules_explored"), Explored);
  EXPECT_EQ(obs::counterValue("explorer.runs"), 2u); // 1 impl + 1 spec

  // The served report matches the computed one, and the stored bytes are
  // untouched (what the CI warm-cache job checks by checksum).
  EXPECT_EQ(Warm.Holds, Cold.Holds);
  EXPECT_EQ(Warm.ObligationsChecked, Cold.ObligationsChecked);
  EXPECT_EQ(Warm.SchedulesExplored, Cold.SchedulesExplored);
  EXPECT_EQ(Warm.Coverage, Cold.Coverage);
  EXPECT_EQ(slurp(Files[0]), ColdBytes);
}

TEST_F(CertStoreTest, CorruptedEntryIsRejectedAndRechecked) {
  ContextualRefinementReport Cold = runTickRefinement();
  ASSERT_TRUE(Cold.Holds);
  std::vector<fs::path> Files = storedFiles();
  ASSERT_EQ(Files.size(), 1u);
  std::string GoodBytes = slurp(Files[0]);

  { // Truncate-and-scribble: the entry no longer parses.
    std::ofstream Out(Files[0], std::ios::binary | std::ios::trunc);
    Out << "{\"schema\":1,\"checker\":\"refine\",  corrupted";
  }
  std::uint64_t Explored = obs::counterValue("explorer.schedules_explored");

  ContextualRefinementReport Again = runTickRefinement();
  EXPECT_TRUE(Again.Holds) << Again.Counterexample;
  EXPECT_GE(obs::counterValue("cert.rejections"), 1u);
  EXPECT_EQ(obs::counterValue("cert.hits"), 0u);
  // Rejection forces a genuine re-check (the explorer ran again)...
  EXPECT_GT(obs::counterValue("explorer.schedules_explored"), Explored);
  // ...and the re-check re-mints the identical entry.
  std::vector<fs::path> After = storedFiles();
  ASSERT_EQ(After.size(), 1u);
  EXPECT_EQ(slurp(After[0]), GoodBytes);
}

TEST_F(CertStoreTest, TamperedValidWithoutCoverageIsRejected) {
  cert::CertStore Store(Dir.string());
  cert::CertKey Key = makeKey("refine", 0x77);
  Store.store(Key, makeGoodEntry());
  std::vector<fs::path> Files = storedFiles();
  ASSERT_EQ(Files.size(), 1u);

  // Flip coverage_complete while leaving valid=true: a combination no
  // honest checker mints, so the load must treat it as tampering.
  std::string Text = slurp(Files[0]);
  std::string Needle = "\"coverage_complete\":true";
  auto Pos = Text.find(Needle);
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos, Needle.size(), "\"coverage_complete\":false");
  {
    std::ofstream Out(Files[0], std::ios::binary | std::ios::trunc);
    Out << Text;
  }

  cert::CertStore::Entry Back;
  EXPECT_FALSE(Store.load(Key, Back));
  EXPECT_GE(obs::counterValue("cert.rejections"), 1u);
  // Rejected evidence is deleted so the next run re-checks, not re-rejects.
  EXPECT_TRUE(storedFiles().empty());
}

TEST_F(CertStoreTest, WrongKeyOrVersionUnderTheSameFileNameIsRejected) {
  cert::CertStore Store(Dir.string());
  cert::CertKey Key = makeKey("refine", 0xabc);
  Store.store(Key, makeGoodEntry());

  // Same address, different version tag: the recorded "test-v1" no longer
  // answers the question "test-v2" asks.
  cert::CertKey Bumped = Key;
  Bumped.Version = "test-v2";
  // A version bump changes the file name in real use; simulate a collision
  // by renaming the stored file to the bumped key's address.
  std::vector<fs::path> Files = storedFiles();
  ASSERT_EQ(Files.size(), 1u);
  fs::rename(Files[0], Dir / (Bumped.fileStem() + ".cert.json"));

  cert::CertStore::Entry Back;
  EXPECT_FALSE(Store.load(Bumped, Back));
  EXPECT_GE(obs::counterValue("cert.rejections"), 1u);
}

TEST_F(CertStoreTest, TruncatedEvidenceIsNeverPersisted) {
  cert::CertStore Store(Dir.string());
  cert::CertStore::Entry E = makeGoodEntry();
  auto C = std::make_shared<RefinementCertificate>(*E.Cert);
  C->Valid = false;
  C->CoverageComplete = false;
  C->Coverage = "schedule budget exhausted";
  E.Cert = C;
  Store.store(makeKey("refine", 0x5), E);
  EXPECT_TRUE(storedFiles().empty());

  cert::CertStore::Entry Null;
  Null.Payload = jsonNull();
  Store.store(makeKey("refine", 0x6), Null); // no certificate at all
  EXPECT_TRUE(storedFiles().empty());
}

TEST_F(CertStoreTest, CompleteNegativeEvidenceIsServed) {
  // A refutation whose exploration DID run to completion is reusable
  // evidence — the counterexample is as stable as a proof — so Valid=false
  // with CoverageComplete=true passes every load rule.
  cert::CertStore Store(Dir.string());
  cert::CertKey Key = makeKey("refine", 0x9);
  cert::CertStore::Entry E = makeGoodEntry();
  auto C = std::make_shared<RefinementCertificate>(*E.Cert);
  C->Valid = false;
  C->Notes.push_back("counterexample trace");
  E.Cert = C;
  Store.store(Key, E);

  cert::CertStore::Entry Back;
  ASSERT_TRUE(Store.load(Key, Back));
  EXPECT_FALSE(Back.Cert->Valid);
  EXPECT_TRUE(Back.Cert->CoverageComplete);
  ASSERT_EQ(Back.Cert->Notes.size(), 1u);
  EXPECT_EQ(Back.Cert->Notes[0], "counterexample trace");
  EXPECT_EQ(obs::counterValue("cert.rejections"), 0u);
}

TEST_F(CertStoreTest, AnonymousInvariantBypassesTheStore) {
  ExploreOptions Opts;
  Opts.Invariant = [](const MultiCoreMachine &) { return std::string(); };
  // No InvariantName: the key cannot see the callable's semantics, so the
  // check must run uncached rather than alias every anonymous invariant.
  ContextualRefinementReport Rep = checkContextualRefinement(
      makeTickConfig(2, 1), makeTickConfig(2, 1), EventMap::identity(), Opts,
      ExploreOptions());
  EXPECT_TRUE(Rep.Holds) << Rep.Counterexample;
  EXPECT_TRUE(storedFiles().empty());
  EXPECT_EQ(obs::counterValue("cert.misses"), 0u);
  EXPECT_EQ(obs::counterValue("cert.hits"), 0u);
}

TEST_F(CertStoreTest, EvictionCapsTheEntryCount) {
  cert::CertStore Store(Dir.string(), /*MaxEntries=*/2);
  for (std::uint64_t I = 0; I != 4; ++I)
    Store.store(makeKey("refine", I), makeGoodEntry());
  EXPECT_LE(storedFiles().size(), 2u);
  EXPECT_GE(obs::counterValue("cert.evictions"), 2u);
}

TEST_F(CertStoreTest, EvictionSkipsUnstattableEntries) {
  // Regression: a directory entry whose stat fails (here a dangling
  // symlink with the store's .json extension) used to yield an epoch
  // mtime that sorted OLDEST, so eviction rounds deleted it (or, once
  // deleted, the next-oldest healthy entry) while the count stayed
  // inflated.  The fix skips it, bumps cert.evict_stat_errors, and
  // orders only the stattable entries.
  cert::CertStore Store(Dir.string(), /*MaxEntries=*/2);
  Store.store(makeKey("refine", 1), makeGoodEntry());
  const fs::path File1 = Dir / "refine-0000000000000001.cert.json";
  const fs::path File2 = Dir / "refine-0000000000000002.cert.json";
  ASSERT_TRUE(fs::exists(File1));

  const fs::path Broken = Dir / "aaa-broken.cert.json";
  std::error_code Ec;
  fs::create_symlink("no-such-target", Broken, Ec);
  if (Ec)
    GTEST_SKIP() << "filesystem does not support symlinks: " << Ec.message();

  // One healthy entry + one unstattable: below the cap, so storing must
  // evict nothing — in particular not the healthy entry.
  Store.store(makeKey("refine", 2), makeGoodEntry());
  EXPECT_TRUE(fs::exists(File1));
  EXPECT_TRUE(fs::exists(File2));
  EXPECT_GE(obs::counterValue("cert.evict_stat_errors"), 1u);
  EXPECT_EQ(obs::counterValue("cert.evictions"), 0u);

  // At the cap the OLDEST healthy entry goes; the broken one is never a
  // victim and never shields a healthy entry from eviction.
  Store.store(makeKey("refine", 3), makeGoodEntry());
  EXPECT_FALSE(fs::exists(File1));
  EXPECT_TRUE(fs::exists(File2));
  EXPECT_TRUE(fs::exists(Dir / "refine-0000000000000003.cert.json"));
  EXPECT_EQ(obs::counterValue("cert.evictions"), 1u);
  EXPECT_TRUE(fs::symlink_status(Broken).type() ==
              fs::file_type::symlink);
}

TEST_F(CertStoreTest, EvictionTiesOnMtimeBreakByPath) {
  // Filesystem mtime granularity is coarse enough that entries minted in
  // one burst share a timestamp.  Eviction order must not then depend on
  // directory iteration order: ties break lexicographically by path, so
  // two runs over the same store evict the same entry.
  cert::CertStore Store(Dir.string(), /*MaxEntries=*/2);
  Store.store(makeKey("refine", 1), makeGoodEntry());
  Store.store(makeKey("refine", 2), makeGoodEntry());
  const fs::path File1 = Dir / "refine-0000000000000001.cert.json";
  const fs::path File2 = Dir / "refine-0000000000000002.cert.json";
  ASSERT_TRUE(fs::exists(File1));
  ASSERT_TRUE(fs::exists(File2));

  // Force an exact tie: both entries in the same mtime tick.
  const fs::file_time_type Same = fs::last_write_time(File2);
  fs::last_write_time(File1, Same);
  fs::last_write_time(File2, Same);

  Store.store(makeKey("refine", 3), makeGoodEntry());
  EXPECT_FALSE(fs::exists(File1)); // smaller path loses the tie
  EXPECT_TRUE(fs::exists(File2));
  EXPECT_TRUE(fs::exists(Dir / "refine-0000000000000003.cert.json"));
  EXPECT_EQ(obs::counterValue("cert.evictions"), 1u);
}

TEST_F(CertStoreTest, ValidationCachesWhenPrimsAreNamed) {
  ClightModule M = parseModuleOrDie("v", R"(
    int f(int x) { return x * 2 + 1; }
  )");
  typeCheckOrDie(M);
  std::vector<ValidationCase> Cases = {{"f", {20}}, {"f", {-3}}};
  auto MakePrims = [] {
    return [](const std::string &,
              const std::vector<std::int64_t> &) -> std::optional<std::int64_t> {
      return std::nullopt;
    };
  };

  ValidationOptions Opts;
  Opts.PrimsKey = "prims:none";
  ValidationReport Cold = validateTranslation(M, Cases, MakePrims, Opts);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  EXPECT_EQ(obs::counterValue("cert.misses"), 1u);

  ValidationReport Warm = validateTranslation(M, Cases, MakePrims, Opts);
  EXPECT_EQ(obs::counterValue("cert.hits"), 1u);
  EXPECT_EQ(Warm.CasesChecked, Cold.CasesChecked);
  EXPECT_EQ(Warm.Ok, Cold.Ok);

  // Unnamed prims bypass: no extra store traffic.
  ValidationOptions Anon;
  validateTranslation(M, Cases, MakePrims, Anon);
  EXPECT_EQ(obs::counterValue("cert.misses"), 1u);
}

TEST_F(CertStoreTest, VanishedEntryIsAPlainMissNotARejection) {
  // Cross-process contract: with N processes sharing the directory, an
  // entry can be evicted by a peer between ANY two of this process's
  // steps.  A vanished file is indistinguishable from never-stored, so it
  // must load as a miss — a rejection here would count corruption that
  // never happened and delete (already deleted) evidence.
  cert::CertStore Store(Dir.string());
  cert::CertKey Key = makeKey("refine", 0xfeed);
  Store.store(Key, makeGoodEntry());
  std::vector<fs::path> Files = storedFiles();
  ASSERT_EQ(Files.size(), 1u);
  fs::remove(Files[0]); // the "peer eviction"

  cert::CertStore::Entry Back;
  EXPECT_FALSE(Store.load(Key, Back));
  EXPECT_EQ(obs::counterValue("cert.rejections"), 0u);

  // Through the getOrCheck front-end the same situation is a clean
  // miss+recheck+restore cycle.
  bool Ran = false;
  EXPECT_FALSE(Store.getOrCheck(
      Key, [](const cert::CertStore::Entry &) { return true; },
      [&] {
        Ran = true;
        return makeGoodEntry();
      }));
  EXPECT_TRUE(Ran);
  EXPECT_EQ(obs::counterValue("cert.misses"), 1u);
  EXPECT_EQ(obs::counterValue("cert.rejections"), 0u);
  EXPECT_EQ(storedFiles().size(), 1u); // re-minted
}

TEST_F(CertStoreTest, LoadFromAMissingDirectoryIsAMiss) {
  // The whole store directory vanishing (operator rm -rf while daemons
  // run) is the same contract at directory granularity.
  cert::CertStore Store(Dir.string());
  fs::remove_all(Dir);
  cert::CertStore::Entry Back;
  EXPECT_FALSE(Store.load(makeKey("refine", 0x1), Back));
  EXPECT_EQ(obs::counterValue("cert.rejections"), 0u);
}

TEST_F(CertStoreTest, ConcurrentStoresOfTheSameKeyLeaveOneWholeEntry) {
  // Writer-unique temp names: threads sharing one CertStore (the daemon's
  // workers) racing store() on the same key must each write their own
  // temp file — a pid-only suffix would interleave two writers into one
  // file and publish a torn entry.
  cert::CertStore Store(Dir.string());
  cert::CertKey Key = makeKey("refine", 0xbeef);
  std::vector<std::thread> Writers;
  for (int I = 0; I != 8; ++I)
    Writers.emplace_back([&] { Store.store(Key, makeGoodEntry()); });
  for (std::thread &W : Writers)
    W.join();

  std::vector<fs::path> Files = storedFiles();
  ASSERT_EQ(Files.size(), 1u); // no leftover temp files, one final entry
  cert::CertStore::Entry Back;
  EXPECT_TRUE(Store.load(Key, Back));
  EXPECT_EQ(cert::CertStore::render(Key, Back),
            cert::CertStore::render(Key, makeGoodEntry()));
}
