//===- tests/cert/certstore_mp_test.cpp - Cross-process store hammer -----------===//
//
// The CertStore's cross-process contract under real contention: N forked
// writer processes hammer one directory with overlapping keys and a tiny
// eviction cap, so every TOCTOU window — vanish between walk and stat,
// between stat and remove, between open and read — is hit for real.  The
// invariants: no child crashes, loads either miss or serve a byte-exact
// entry (fail-closed rejections are the only third outcome), and the
// final directory holds only whole, parsable entries within the cap.
//
//===----------------------------------------------------------------------===//

#include "cert/CertStore.h"

#include "obs/Metrics.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace ccal;
namespace fs = std::filesystem;

namespace {

cert::CertStore::Entry goodEntry(std::uint64_t Seed) {
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "Fun";
  C->Underlay = "L0";
  C->Module = "M" + std::to_string(Seed);
  C->Overlay = "L1";
  C->Relation = "R";
  C->Valid = true;
  C->CoverageComplete = true;
  C->Coverage = "exhaustive";
  C->Obligations = Seed + 1;
  cert::CertStore::Entry E;
  E.Cert = C;
  E.Payload = jsonStr("payload-" + std::to_string(Seed));
  return E;
}

cert::CertKey keyFor(std::uint64_t I) {
  cert::CertKey K;
  K.Checker = "refine";
  K.Version = "mp-v1";
  K.Hash = I;
  K.Desc = "mp hammer entry";
  return K;
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

TEST(CertStoreMpTest, ForkedWritersShareOneTinyStoreWithoutTearing) {
#if defined(_WIN32)
  GTEST_SKIP() << "fork-based test is POSIX-only";
#else
  const fs::path Dir =
      fs::path(::testing::TempDir()) /
      ("ccal_cert_mp_" + std::to_string(::getpid()));
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  // Keys deliberately overlap across children, and the cap is far below
  // the key count so eviction runs constantly — maximum race surface.
  constexpr int NumChildren = 8;
  constexpr int RoundsPerChild = 60;
  constexpr std::uint64_t NumKeys = 6;
  constexpr std::size_t CacheMax = 3; // tiny CCAL_CERT_CACHE_MAX analogue

  std::vector<pid_t> Children;
  for (int Child = 0; Child != NumChildren; ++Child) {
    pid_t Pid = ::fork();
    ASSERT_GE(Pid, 0) << "fork failed";
    if (Pid == 0) {
      // Child: its own CertStore over the shared directory (what separate
      // daemon/CLI processes sharing CCAL_CERT_CACHE look like).  Any
      // deviation from the contract exits nonzero; a crash is caught by
      // the parent's WIFSIGNALED check.
      cert::CertStore Store(Dir.string(), CacheMax);
      for (int R = 0; R != RoundsPerChild; ++R) {
        std::uint64_t I =
            (static_cast<std::uint64_t>(Child) * 31 + R) % NumKeys;
        cert::CertKey K = keyFor(I);
        Store.store(K, goodEntry(I));
        cert::CertStore::Entry Back;
        if (Store.load(K, Back)) {
          // A served entry must be byte-exact: every writer of key I
          // renders identical bytes, so any tearing shows up here.
          if (cert::CertStore::render(K, Back) !=
              cert::CertStore::render(K, goodEntry(I)))
            ::_exit(3);
        }
      }
      ::_exit(0);
    }
    Children.push_back(Pid);
  }

  for (pid_t Pid : Children) {
    int Status = 0;
    ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
    ASSERT_TRUE(WIFEXITED(Status))
        << "child crashed (signal " << WTERMSIG(Status) << ")";
    EXPECT_EQ(WEXITSTATUS(Status), 0) << "child saw a torn entry";
  }

  // Post-mortem: whatever survived is whole — parsable, schema-tagged,
  // byte-identical to a fresh rendering of its key — and no temp files
  // leaked past the atomic-rename protocol.
  std::size_t Entries = 0;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir)) {
    const std::string Name = DE.path().filename().string();
    ASSERT_EQ(Name.find(".tmp."), std::string::npos)
        << "leaked temp file: " << Name;
    ++Entries;
    const std::string Text = slurp(DE.path());
    JsonParseResult P = parseJson(Text);
    ASSERT_TRUE(P.Ok) << "torn entry " << Name << ": " << P.Error;
    const JsonValue *KeyHex = P.Value.field("key");
    ASSERT_NE(KeyHex, nullptr);
    const std::uint64_t I =
        std::stoull(KeyHex->StrVal, nullptr, 16);
    EXPECT_EQ(Text, cert::CertStore::render(keyFor(I), goodEntry(I)))
        << "entry " << Name << " differs from a fresh rendering";
  }
  // The cap is advisory under cross-process racing: two writers can both
  // evict down and then both publish, overshooting by one each — but
  // never by more than one per concurrent writer, and the next store in
  // any process pulls the count back down.
  EXPECT_LE(Entries, CacheMax + NumChildren);

  fs::remove_all(Dir);
#endif
}
