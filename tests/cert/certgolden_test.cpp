//===- tests/cert/certgolden_test.cpp - Byte-pinned certificate goldens -------===//
//
// The interning refactor's compatibility contract: event kinds are integer
// ids in memory, but everything that leaves the process — serialized logs
// in certificates, content-addressed store keys — still goes through the
// kind *string*, so stored certificates from before the change verify
// byte-identically after it.  These goldens were captured from the
// pre-interning representation (std::string Event::Kind, plain
// std::vector<Event> log); any byte difference here means existing
// certificate stores would silently miss (or worse, collide).
//
//===----------------------------------------------------------------------===//

#include "cert/CertJson.h"

#include "cert/CertKey.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

using namespace ccal;
using namespace ccal::cert;

namespace {

/// A log exercising every serialization shape: sched events, no-arg and
/// multi-arg kinds, negative numbers, and both int64 extremes.
Log makeGoldenLog() {
  Log L;
  L.push_back(Event::sched(1));
  L.push_back(Event(1, "FAI_t"));
  L.push_back(Event(1, "hold"));
  L.push_back(Event(2, "FAI_t", {7, -3}));
  L.push_back(Event(1, "f", {0}));
  L.push_back(Event(1, "g"));
  L.push_back(Event(1, "inc_n"));
  L.push_back(Event::sched(2));
  L.push_back(Event(2, "push",
                    {42, std::numeric_limits<std::int64_t>::max()}));
  L.push_back(Event(3, "pop", {std::numeric_limits<std::int64_t>::min()}));
  L.push_back(Event(2, "acq"));
  L.push_back(Event(2, "rel"));
  return L;
}

} // namespace

TEST(CertGoldenTest, LogJsonBytesMatchPreInterningCapture) {
  // Captured from the seed (string-kinded) serializer on the same log.
  const std::string Golden =
      "[[1,\"sched\",[]],[1,\"FAI_t\",[]],[1,\"hold\",[]],"
      "[2,\"FAI_t\",[7,-3]],[1,\"f\",[0]],[1,\"g\",[]],[1,\"inc_n\",[]],"
      "[2,\"sched\",[]],[2,\"push\",[42,9223372036854775807]],"
      "[3,\"pop\",[-9223372036854775808]],[2,\"acq\",[]],[2,\"rel\",[]]]";
  EXPECT_EQ(jsonToString(logToJson(makeGoldenLog())), Golden);
}

TEST(CertGoldenTest, LogJsonRoundTripsThroughInternedEvents) {
  Log L = makeGoldenLog();
  Log Back;
  ASSERT_TRUE(logFromJson(logToJson(L), Back));
  EXPECT_EQ(Back, L);
  EXPECT_EQ(jsonToString(logToJson(Back)), jsonToString(logToJson(L)));
}

TEST(CertGoldenTest, CertKeyLogHashMatchesPreInterningCapture) {
  // keyAddLog hashes the kind *string* (not the id, not the cached
  // strHash seed path), so store addresses survive the representation
  // change.  Captured from the seed Hasher on this log.
  Log L;
  L.push_back(Event::sched(1));
  L.push_back(Event(1, "FAI_t"));
  L.push_back(Event(2, "hold", {7, -3}));
  L.push_back(Event(1, "inc_n", {0}));
  Hasher H;
  keyAddLog(H, L);
  EXPECT_EQ(H.value(), 0x434aa5b685e27c8bULL);
}

TEST(CertGoldenTest, EventJsonUsesStringsNotIds) {
  // Intern two fresh kinds in reverse lexicographic order: the serialized
  // form must depend only on the strings.
  Event B(1, "zz_golden_kind");
  Event A(1, "aa_golden_kind");
  EXPECT_EQ(jsonToString(eventToJson(A)), "[1,\"aa_golden_kind\",[]]");
  EXPECT_EQ(jsonToString(eventToJson(B)), "[1,\"zz_golden_kind\",[]]");
}
