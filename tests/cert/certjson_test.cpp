//===- tests/cert/certjson_test.cpp - Certificate JSON round trips -------------===//
//
// Property-based hardening of the certificate serializer: randomly composed
// Fig. 9 derivation trees (random rules, fanouts, counters, and strings
// exercising every JSON escape class) must survive serialize -> parse ->
// serialize as a byte-level fixed point, and the parsed tree must render
// (tree()) identically to the original.  Failures dump the serialized
// derivation (replay the seed from the header).  Also home of the strict-
// reader rejection checks and the integer-exactness tests the store's
// evidence counters rely on.
//
//===----------------------------------------------------------------------===//

#include "cert/CertJson.h"

#include "support/Json.h"
#include "support/Rng.h"
#include "tests/common/fuzz_support.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace ccal;
using namespace ccal::cert;

namespace {

const char *const Rules[] = {"Fun",   "Vcomp",    "Hcomp",          "Wk",
                             "Pcomp", "Soundness", "MultithreadLink"};

/// Random strings drawn to hit every escape class the writer handles:
/// quotes, backslashes, control characters, and plain text.
std::string randomName(Rng &R) {
  static const char *const Pool[] = {
      "L0[1]",           "M_ticket",       "quoted \"name\"",
      "back\\slash",     "line\nbreak",    "tab\there",
      "ctrl\x01\x1f",    "",               "plain",
      "R1 o R2",
  };
  return Pool[R.below(sizeof(Pool) / sizeof(Pool[0]))];
}

std::shared_ptr<RefinementCertificate> randomCert(Rng &R, unsigned Depth) {
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = Rules[R.below(sizeof(Rules) / sizeof(Rules[0]))];
  C->Underlay = randomName(R);
  C->Module = randomName(R);
  C->Overlay = randomName(R);
  C->Relation = randomName(R);
  C->CoverageComplete = R.chance(1, 2);
  // Valid=true with CoverageComplete=false is rejected by the *store*, but
  // the serializer must round-trip every representable tree faithfully.
  C->Valid = R.chance(1, 2);
  C->Coverage = randomName(R);
  // Counters span the full honest domain [0, INT64_MAX]; values beyond it
  // are unreachable for real evidence counts (see jsonUInt) and the strict
  // reader rejects them by design.
  C->Obligations = R.next() >> 1;
  C->Runs = R.next() >> 1;
  C->Moves = R.next() >> 1;
  C->Invariants = R.next() >> 1;
  if (R.chance(1, 3))
    C->Notes.push_back(randomName(R));
  if (Depth > 0) {
    std::uint64_t Fanout = R.below(3);
    for (std::uint64_t I = 0; I != Fanout; ++I)
      C->Premises.push_back(randomCert(R, Depth - 1));
  }
  return C;
}

} // namespace

TEST(CertJsonPropertyTest, SerializeParseSerializeIsAFixedPoint) {
  const unsigned Trials = 200;
  for (unsigned T = 0; T != Trials; ++T) {
    std::uint64_t Seed = 0xcafe0000 + T;
    Rng R(Seed);
    std::shared_ptr<RefinementCertificate> C = randomCert(R, 3);

    std::string First = jsonToString(certToJson(*C));
    JsonParseResult Parsed = parseJson(First);
    if (!Parsed) {
      test::dumpFailure("certjson", Seed, First);
      FAIL() << "serialized derivation does not parse: " << Parsed.Error;
    }
    std::string Error;
    CertPtr Back = certFromJson(Parsed.Value, Error);
    if (!Back) {
      test::dumpFailure("certjson", Seed, First);
      FAIL() << "strict reader rejected its own writer's output: " << Error;
    }
    std::string Second = jsonToString(certToJson(*Back));
    if (First != Second || C->tree() != Back->tree()) {
      test::dumpFailure("certjson", Seed, First);
      ASSERT_EQ(First, Second) << "round trip is not a byte fixed point";
      ASSERT_EQ(C->tree(), Back->tree());
    }
    // The derivation-wide evidence totals survive too (premise recursion).
    EXPECT_EQ(C->totalObligations(), Back->totalObligations());
    EXPECT_EQ(C->totalRuns(), Back->totalRuns());
  }
}

TEST(CertJsonTest, StrictReaderRejectsMissingAndIllTypedFields) {
  RefinementCertificate C;
  C.Rule = "Fun";
  C.Valid = true;
  C.CoverageComplete = true;
  JsonValue V = certToJson(C);
  std::string Error;
  ASSERT_NE(certFromJson(V, Error), nullptr) << Error;

  JsonValue Missing = V;
  Missing.Fields.erase("valid");
  EXPECT_EQ(certFromJson(Missing, Error), nullptr);

  JsonValue IllTyped = V;
  IllTyped.Fields["runs"] = jsonStr("not a number");
  EXPECT_EQ(certFromJson(IllTyped, Error), nullptr);

  JsonValue BadPremise = V;
  BadPremise.Fields["premises"] = jsonArray({jsonBool(true)});
  EXPECT_EQ(certFromJson(BadPremise, Error), nullptr);
}

TEST(CertJsonTest, EventAndLogRoundTrip) {
  Log L = {Event(1, "FAI_t"), Event(2, "done", {-7, 42}),
           Event(0, "weird \"kind\"\n", {INT64_MIN, INT64_MAX})};
  JsonValue V = logToJson(L);
  Log Back;
  ASSERT_TRUE(logFromJson(V, Back));
  EXPECT_EQ(L, Back);

  std::vector<Log> Corpus = {L, {}, {Event(3, "x")}};
  std::vector<Log> CorpusBack;
  ASSERT_TRUE(logsFromJson(logsToJson(Corpus), CorpusBack));
  EXPECT_EQ(Corpus, CorpusBack);

  Event E;
  EXPECT_FALSE(eventFromJson(jsonStr("not an event"), E));
  EXPECT_FALSE(eventFromJson(jsonArray({jsonInt(1)}), E));
}

TEST(CertJsonTest, ImplicationRoundTrip) {
  ImplicationReport R;
  R.Premise = "mutex";
  R.Conclusion = "no-double-hold";
  R.LogsChecked = 17;
  R.Holds = false;
  R.Counterexample = {Event(1, "hold"), Event(2, "hold")};
  ImplicationReport Back;
  ASSERT_TRUE(implicationFromJson(implicationToJson(R), Back));
  EXPECT_EQ(R.Premise, Back.Premise);
  EXPECT_EQ(R.Conclusion, Back.Conclusion);
  EXPECT_EQ(R.LogsChecked, Back.LogsChecked);
  EXPECT_EQ(R.Holds, Back.Holds);
  EXPECT_EQ(R.Counterexample, Back.Counterexample);
}

TEST(CertJsonTest, EvidenceCountersSurviveBeyondDoublePrecision) {
  // 2^53 + 1 is the first integer a double silently rounds; the store's
  // obligation counters must not pass through one.
  RefinementCertificate C;
  C.Rule = "Fun";
  C.Obligations = (1ULL << 53) + 1;
  C.Runs = 0xffffffffffffffffULL >> 1; // INT64_MAX
  std::string Text = jsonToString(certToJson(C));
  JsonParseResult Parsed = parseJson(Text);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.Error;
  std::string Error;
  CertPtr Back = certFromJson(Parsed.Value, Error);
  ASSERT_NE(Back, nullptr) << Error;
  EXPECT_EQ(Back->Obligations, (1ULL << 53) + 1);
  EXPECT_EQ(Back->Runs, static_cast<std::uint64_t>(INT64_MAX));
}

TEST(CertJsonTest, JsonIntegersParseExactAndRenderWithoutDecimal) {
  JsonParseResult P = parseJson("[9007199254740993, -5, 2.5, 1e3]");
  ASSERT_TRUE(static_cast<bool>(P)) << P.Error;
  ASSERT_EQ(P.Value.Items.size(), 4u);
  EXPECT_TRUE(P.Value.Items[0].IsInt);
  EXPECT_EQ(P.Value.Items[0].IntVal, 9007199254740993LL);
  EXPECT_TRUE(P.Value.Items[1].IsInt);
  EXPECT_EQ(P.Value.Items[1].IntVal, -5);
  EXPECT_FALSE(P.Value.Items[2].IsInt);
  EXPECT_FALSE(P.Value.Items[3].IsInt); // exponent form stays a double
  EXPECT_EQ(jsonToString(P.Value.Items[0]), "9007199254740993");
}
