//===- tests/cert/certmemmodel_test.cpp - Memory-model tags in cert keys --------===//
//
// The memory model is part of a check's content address: an SC certificate
// presented for an RA job must be a fail-closed MISS (plain key mismatch,
// or — if someone aliases the file on disk — a load rejection that bumps
// the rejection counter, deletes the lie, and re-runs the check).  It must
// never be served as a hit.  Conversely the tags fold only when the model
// is weak, so every key minted before the memory-model refactor still
// hashes byte-identically and warm SC caches keep working.

#include "cert/CertKeys.h"
#include "cert/CertStore.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "machine/MemoryModel.h"
#include "machine/Soundness.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace ccal;
namespace fs = std::filesystem;

namespace {

class CertMemModelTest : public ::testing::Test {
protected:
  void SetUp() override {
    WasEnabled = obs::enabled();
    obs::setEnabled(true);
    obs::metricsReset();
    Dir = fs::path(::testing::TempDir()) /
          (std::string("ccal_cert_memmodel_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(Dir);
    cert::setStoreDir(Dir.string());
  }
  void TearDown() override {
    cert::setStoreDir("");
    fs::remove_all(Dir);
    obs::metricsReset();
    obs::setEnabled(WasEnabled);
  }

  std::set<fs::path> storedFiles() const {
    std::set<fs::path> Out;
    std::error_code Ec;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec))
      Out.insert(E.path());
    return Out;
  }

  static std::string slurp(const fs::path &P) {
    std::ifstream In(P, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    return Buf.str();
  }

  static void spit(const fs::path &P, const std::string &Bytes) {
    std::ofstream Out(P, std::ios::binary | std::ios::trunc);
    Out << Bytes;
  }

  fs::path Dir;
  bool WasEnabled = false;
};

/// A tiny refinement job, parameterized by memory model.  The layer's
/// footprints are annotated (relaxed counter), so the RA machine has real
/// reads-from choices — but on one CPU the outcome set is the same either
/// way, keeping both checks green.
MachineConfigPtr makeCounterConfig(MemoryModelPtr Model,
                                   unsigned ReadsFromBudget = 64) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int bump();
      int t_main() { return bump(); }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  auto L = makeInterface("Lbump");
  L->addShared("bump", makeFetchIncPrim("bump"),
               Footprint::of({"b"}, {"b"})
                   .withOrders(MemOrder::Relaxed, MemOrder::Relaxed)
                   .nonAtomic());
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "bump";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("bump.lasm", {&Client});
  Cfg->Model = std::move(Model);
  Cfg->MaxReadsFromPerStep = ReadsFromBudget;
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

ContextualRefinementReport runRefinement(MemoryModelPtr Model) {
  return checkContextualRefinement(makeCounterConfig(Model),
                                   makeCounterConfig(nullptr),
                                   EventMap::identity(), ExploreOptions(),
                                   ExploreOptions());
}

} // namespace

TEST(CertMemModelKeyTest, MachineKeyFoldsModelOnlyWhenWeak) {
  MachineConfigPtr A = makeCounterConfig(nullptr);
  Hasher HA;
  cert::keyAddMachineConfig(HA, *A);

  // A null model and an explicit ScMemory hash identically — the SC tag
  // is the absence of a tag, which is what keeps pre-refactor keys (and
  // the certificates stored under them) verifying byte-for-byte.
  MachineConfigPtr B = makeCounterConfig(scMemory());
  Hasher HB;
  cert::keyAddMachineConfig(HB, *B);
  EXPECT_EQ(HA.value(), HB.value());

  MachineConfigPtr C = makeCounterConfig(raMemory());
  Hasher HC;
  cert::keyAddMachineConfig(HC, *C);
  EXPECT_NE(HA.value(), HC.value());

  // The reads-from budget shapes which RA explorations fault, so it is
  // part of the weak key too.
  MachineConfigPtr D = makeCounterConfig(raMemory(), /*ReadsFromBudget=*/128);
  Hasher HD;
  cert::keyAddMachineConfig(HD, *D);
  EXPECT_NE(HC.value(), HD.value());
}

TEST(CertMemModelKeyTest, FootprintKeyFoldsOrderingOnlyWhenAnnotated) {
  Footprint Sc = Footprint::of({"x"}, {"x"});
  Hasher HSc;
  cert::keyAddFootprint(HSc, Sc);

  // Explicit SeqCst/SeqCst/atomic is the default: same bytes.
  Footprint ScExplicit =
      Sc.withOrders(MemOrder::SeqCst, MemOrder::SeqCst);
  Hasher HSc2;
  cert::keyAddFootprint(HSc2, ScExplicit);
  EXPECT_EQ(HSc.value(), HSc2.value());

  Footprint Ra = Sc.withOrders(MemOrder::AcqRel, MemOrder::AcqRel);
  Hasher HRa;
  cert::keyAddFootprint(HRa, Ra);
  EXPECT_NE(HSc.value(), HRa.value());

  // Every annotation is distinguishing: a torn access and a fair read
  // hash apart from the plain acq_rel RMW.
  Hasher HTorn, HFair;
  cert::keyAddFootprint(HTorn, Ra.nonAtomic());
  cert::keyAddFootprint(HFair, Ra.fairRead());
  EXPECT_NE(HRa.value(), HTorn.value());
  EXPECT_NE(HRa.value(), HFair.value());
}

TEST_F(CertMemModelTest, RaJobMissesScCertificate) {
  // Cold SC run populates the store.
  ContextualRefinementReport Sc = runRefinement(nullptr);
  ASSERT_TRUE(Sc.Holds) << Sc.Counterexample;
  EXPECT_EQ(obs::counterValue("cert.misses"), 1u);
  EXPECT_EQ(obs::counterValue("cert.hits"), 0u);
  ASSERT_EQ(storedFiles().size(), 1u);

  // The same job under RaMemory is a *different* check: plain miss, fresh
  // exploration, second stored certificate — never a hit on the SC entry.
  ContextualRefinementReport Ra = runRefinement(raMemory());
  ASSERT_TRUE(Ra.Holds) << Ra.Counterexample;
  EXPECT_EQ(obs::counterValue("cert.misses"), 2u);
  EXPECT_EQ(obs::counterValue("cert.hits"), 0u);
  EXPECT_EQ(storedFiles().size(), 2u);

  // Warm repeats of each now hit their own entry.
  runRefinement(nullptr);
  runRefinement(raMemory());
  EXPECT_EQ(obs::counterValue("cert.hits"), 2u);
  EXPECT_EQ(obs::counterValue("cert.misses"), 2u);
}

TEST_F(CertMemModelTest, AliasedScCertificateIsRejectedAndRechecked) {
  // Populate both entries, note which file belongs to which job.
  ASSERT_TRUE(runRefinement(nullptr).Holds);
  std::set<fs::path> ScFiles = storedFiles();
  ASSERT_EQ(ScFiles.size(), 1u);
  const fs::path ScFile = *ScFiles.begin();
  ASSERT_TRUE(runRefinement(raMemory()).Holds);
  fs::path RaFile;
  for (const fs::path &P : storedFiles())
    if (P != ScFile)
      RaFile = P;
  ASSERT_FALSE(RaFile.empty());
  const std::string RaBytes = slurp(RaFile);

  // Alias the SC certificate under the RA job's address — the attack (or
  // sync bug) the store must fail closed against.
  spit(RaFile, slurp(ScFile));
  obs::metricsReset();

  ContextualRefinementReport Again = runRefinement(raMemory());
  ASSERT_TRUE(Again.Holds) << Again.Counterexample;
  // Not a hit: the entry self-identifies as a different check, so load
  // rejects it, deletes the file, and the checker re-runs and re-stores.
  EXPECT_EQ(obs::counterValue("cert.hits"), 0u);
  EXPECT_GE(obs::counterValue("cert.rejections"), 1u);
  EXPECT_EQ(obs::counterValue("cert.misses"), 1u);
  EXPECT_GT(obs::counterValue("explorer.schedules_explored"), 0u);
  EXPECT_EQ(slurp(RaFile), RaBytes); // honest entry re-minted in place
}
