//===- tests/support/intern_test.cpp - Interned event kinds -------------------===//
//
// The KindId determinism contract (support/Intern.h): ids are stable
// within a process and equality is exact, but everything observable —
// strings, content hashes, ordering — must be independent of interning
// order, because worker threads intern concurrently in nondeterministic
// order while certificates and canonical logs are pinned byte for byte.
//
//===----------------------------------------------------------------------===//

#include "support/Intern.h"

#include "support/Hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace ccal;

TEST(InternTest, RoundTripsStrings) {
  KindId A("acq");
  EXPECT_EQ(A.str(), "acq");
  EXPECT_EQ(std::string(A.c_str()), "acq");
  KindId B(std::string("rel"));
  EXPECT_EQ(B.str(), "rel");
  KindId C(std::string_view("FAI_t"));
  EXPECT_EQ(C.str(), "FAI_t");
}

TEST(InternTest, SameStringSameId) {
  KindId A("intern_test_kind");
  KindId B(std::string("intern_test_kind"));
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.id(), B.id());
  EXPECT_NE(A, KindId("intern_test_other"));
}

TEST(InternTest, EmptyKindIsIdZero) {
  KindId E;
  EXPECT_TRUE(E.empty());
  EXPECT_EQ(E.id(), 0u);
  EXPECT_EQ(E.str(), "");
  EXPECT_EQ(E, KindId(""));
}

TEST(InternTest, IdsAreStableAcrossRepeatedInterning) {
  KindId First("intern_test_stable");
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(KindId("intern_test_stable").id(), First.id());
}

TEST(InternTest, StrHashIsContentHashNotIdHash) {
  // The cached hash must equal hashing the string directly, so it cannot
  // leak interning order into hashEvent/certificate keys.
  KindId A("intern_test_hash");
  EXPECT_EQ(A.strHash(), Hasher().str("intern_test_hash").value());
  EXPECT_EQ(KindId("").strHash(), Hasher().str("").value());
  EXPECT_NE(A.strHash(), KindId("intern_test_hash2").strHash());
}

TEST(InternTest, OrderingFollowsStringsNotIds) {
  // Intern in an order opposite to the string order: comparisons must
  // still follow the strings.
  KindId Z("intern_test_zzz");
  KindId A("intern_test_aaa");
  EXPECT_LT(Z.str(), std::string("intern_test_zzza"));
  EXPECT_TRUE(A < Z);
  EXPECT_FALSE(Z < A);
  EXPECT_FALSE(A < A);
}

TEST(InternTest, ConcurrentInterningAgrees) {
  // Many threads intern overlapping vocabularies; every thread must see
  // the same id for the same string and round-trip it faithfully.
  const unsigned NumThreads = 8;
  const unsigned Kinds = 64;
  std::vector<std::vector<std::uint32_t>> Ids(
      NumThreads, std::vector<std::uint32_t>(Kinds));
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != NumThreads; ++T)
    Ts.emplace_back([T, &Ids] {
      for (unsigned K = 0; K != Kinds; ++K) {
        std::string S = "intern_test_conc_" + std::to_string(K);
        KindId Id(S);
        EXPECT_EQ(Id.str(), S);
        Ids[T][K] = Id.id();
      }
    });
  for (std::thread &T : Ts)
    T.join();
  std::set<std::uint32_t> Distinct;
  for (unsigned K = 0; K != Kinds; ++K) {
    for (unsigned T = 1; T != NumThreads; ++T)
      EXPECT_EQ(Ids[T][K], Ids[0][K]) << "thread " << T << " kind " << K;
    Distinct.insert(Ids[0][K]);
  }
  EXPECT_EQ(Distinct.size(), Kinds);
}
