//===- tests/support/support_test.cpp - Support utilities tests --------------===//

#include "support/Rng.h"
#include "support/Table.h"
#include "support/Text.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(TextTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> Parts = {"a", "bb", "", "c"};
  std::string Joined = strJoin(Parts, ",");
  EXPECT_EQ(Joined, "a,bb,,c");
  EXPECT_EQ(strSplit(Joined, ','), Parts);
}

TEST(TextTest, SplitSingle) {
  EXPECT_EQ(strSplit("abc", ','), std::vector<std::string>{"abc"});
}

TEST(TextTest, Trim) {
  EXPECT_EQ(strTrim("  x y\t\n"), "x y");
  EXPECT_EQ(strTrim(""), "");
  EXPECT_EQ(strTrim(" \t "), "");
}

TEST(TextTest, StartsWith) {
  EXPECT_TRUE(strStartsWith("foobar", "foo"));
  EXPECT_FALSE(strStartsWith("fo", "foo"));
  EXPECT_TRUE(strStartsWith("x", ""));
}

TEST(TextTest, Format) {
  EXPECT_EQ(strFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strFormat("%s", ""), "");
}

TEST(TextTest, IntList) {
  EXPECT_EQ(intListToString({}), "[]");
  EXPECT_EQ(intListToString({1, -2, 3}), "[1, -2, 3]");
}

TEST(TableTest, AlignsColumns) {
  Table T("title");
  T.addRow({"a", "long-cell"});
  T.addRow({"longer", "b"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("title"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // The header separator line exists.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, BelowRespectsBound) {
  Rng R(123);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng R(5);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    std::int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}
