//===- tests/support/clock_test.cpp - Shared monotonic clock tests -----------===//
//
// The clock's contract is small but load-bearing: the audit checker
// derives real-time precedence from these stamps, so monotonicity (within
// a thread and across synchronizing threads) and the shared process-wide
// origin are exactly what keep precedence edges honest.
//
//===----------------------------------------------------------------------===//

#include "support/Clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using ccal::support::monotonicNowNs;

TEST(ClockTest, NeverDecreasesWithinAThread) {
  std::uint64_t Prev = monotonicNowNs();
  for (int I = 0; I != 100000; ++I) {
    std::uint64_t Now = monotonicNowNs();
    ASSERT_GE(Now, Prev);
    Prev = Now;
  }
}

TEST(ClockTest, AdvancesAcrossASleep) {
  std::uint64_t Before = monotonicNowNs();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(monotonicNowNs(), Before + 1000000u /* 1ms, generous slack */);
}

TEST(ClockTest, SharedOriginOrdersSynchronizingThreads) {
  // A reading taken before a thread is spawned precedes every reading the
  // spawned thread takes, and its readings precede everything after the
  // join — the cross-thread half of the precedence contract.
  std::uint64_t Before = monotonicNowNs();
  std::uint64_t InThreadFirst = 0, InThreadLast = 0;
  std::thread T([&] {
    InThreadFirst = monotonicNowNs();
    for (int I = 0; I != 1000; ++I)
      InThreadLast = monotonicNowNs();
  });
  T.join();
  std::uint64_t After = monotonicNowNs();
  EXPECT_LE(Before, InThreadFirst);
  EXPECT_LE(InThreadFirst, InThreadLast);
  EXPECT_LE(InThreadLast, After);
}
