//===- tests/threads/linking_test.cpp - Thm 5.1 multithreaded linking -----------===//

#include "threads/Linking.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(LinkingTest, TwoWorkersTwoRounds) {
  LinkingSetup Setup;
  Setup.NumThreads = 2;
  Setup.Rounds = 2;
  LinkingReport Rep = checkMultithreadedLinking(Setup);
  EXPECT_TRUE(Rep.Refinement.Holds) << Rep.Refinement.Counterexample;
  EXPECT_TRUE(Rep.Cert->Valid);
  EXPECT_EQ(Rep.Cert->Rule, "MultithreadLink");
  // One CPU, non-preemptive: deterministic on both levels.
  EXPECT_EQ(Rep.Refinement.ImplOutcomes, 1u);
  EXPECT_EQ(Rep.Refinement.SpecOutcomes, 1u);
}

TEST(LinkingTest, ThreeWorkers) {
  LinkingSetup Setup;
  Setup.NumThreads = 3;
  Setup.Rounds = 1;
  LinkingReport Rep = checkMultithreadedLinking(Setup);
  EXPECT_TRUE(Rep.Refinement.Holds) << Rep.Refinement.Counterexample;
}

TEST(LinkingTest, ManyRounds) {
  LinkingSetup Setup;
  Setup.NumThreads = 2;
  Setup.Rounds = 5;
  LinkingReport Rep = checkMultithreadedLinking(Setup);
  EXPECT_TRUE(Rep.Refinement.Holds) << Rep.Refinement.Counterexample;
  EXPECT_GT(Rep.Refinement.ObligationsChecked, 0u);
}
