//===- tests/threads/queuinglock_test.cpp - Queuing lock tests -------------------===//

#include "threads/QueuingLock.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(QueuingLockTest, CertifiesTwoCpus) {
  QueuingLockOutcome Out = certifyQueuingLock(2, 1, 2);
  EXPECT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
  EXPECT_TRUE(Out.Cert->Valid);
  EXPECT_GT(Out.Report.ObligationsChecked, 0u);
  EXPECT_GT(Out.Report.SchedulesExplored, 1u);
}

TEST(QueuingLockTest, CertifiesThreeCpus) {
  QueuingLockOutcome Out = certifyQueuingLock(3, 1, 1);
  EXPECT_TRUE(Out.Report.Holds) << Out.Report.Counterexample;
}

TEST(QueuingLockTest, SetupWiring) {
  QueuingLockSetup S = makeQueuingLockSetup(2, 1, 1);
  EXPECT_TRUE(S.Underlay->provides("acq"));
  EXPECT_TRUE(S.Underlay->provides("sleep_q"));
  EXPECT_TRUE(S.Underlay->provides("wakeup_q"));
  EXPECT_TRUE(S.Overlay->provides("acq_q"));
  EXPECT_TRUE(S.Overlay->provides("rel_q"));
  // Both acquisition paths map to the same atomic event.
  EXPECT_EQ(S.RImpl.map(Event(1, "qlock_hold")), Event(1, "acq_q"));
  EXPECT_EQ(S.RImpl.map(Event(1, "qlock_wake_hold")), Event(1, "acq_q"));
  EXPECT_EQ(S.RImpl.map(Event(1, "qlock_pass")), Event(1, "rel_q"));
  EXPECT_FALSE(S.RImpl.map(Event(1, "sleep", {0})).has_value());
}

TEST(QueuingLockTest, SleepersActuallySleepUnderContention) {
  // Directly explore the implementation and check that on some schedule a
  // thread really sleeps (the waiting path is exercised, §5.4's point).
  QueuingLockSetup S = makeQueuingLockSetup(2, 1, 2);
  ThreadedExploreOptions Opts;
  Opts.FairnessBound = 2;
  Opts.MaxSteps = 1024;
  ExploreResult Res = exploreThreaded(S.ImplConfig, Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  bool SomeoneSlept = false;
  for (const Outcome &O : Res.Outcomes)
    SomeoneSlept |= logCountKind(O.FinalLog, "sleep") > 0;
  EXPECT_TRUE(SomeoneSlept);
}

TEST(QueuingLockTest, NoSpinningEver) {
  // Unlike the ticket lock, the queuing lock never busy-waits: no
  // schedule's log contains consecutive polling reads by a waiter.  We
  // check the stronger structural fact that the only lock-state reads
  // happen under the spinlock (ql_get_busy while holding).
  QueuingLockSetup S = makeQueuingLockSetup(2, 1, 1);
  ThreadedExploreOptions Opts;
  Opts.MaxSteps = 512;
  ExploreResult Res = exploreThreaded(S.ImplConfig, Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  Replayer<AbstractLockState> Spin = makeAbstractLockReplayer("acq", "rel");
  for (const Outcome &O : Res.Outcomes) {
    for (size_t I = 0; I != O.FinalLog.size(); ++I) {
      if (O.FinalLog[I].Kind != "ql_get_busy")
        continue;
      Log Prefix(O.FinalLog.begin(),
                 O.FinalLog.begin() + static_cast<std::ptrdiff_t>(I));
      std::optional<AbstractLockState> St = Spin.replay(Prefix);
      ASSERT_TRUE(St.has_value());
      EXPECT_EQ(St->Holder, O.FinalLog[I].Tid);
    }
  }
}

TEST(QueuingLockTest, HandoffIsFifo) {
  // Sleepers are woken in FIFO order: the k-th sleep's thread is the
  // k-th woken-handoff acquisition among qlock_wake_hold events.
  QueuingLockSetup S = makeQueuingLockSetup(3, 1, 1);
  ThreadedExploreOptions Opts;
  Opts.FairnessBound = 2;
  Opts.MaxSteps = 1024;
  Opts.MaxSchedules = 20000; // property sweep over a bounded prefix
  ExploreResult Res = exploreThreaded(S.ImplConfig, Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  for (const Outcome &O : Res.Outcomes) {
    std::vector<ThreadId> SleepOrder, WakeHoldOrder;
    for (const Event &E : O.FinalLog) {
      if (E.Kind == "sleep")
        SleepOrder.push_back(E.Tid);
      if (E.Kind == "qlock_wake_hold")
        WakeHoldOrder.push_back(E.Tid);
    }
    EXPECT_EQ(SleepOrder, WakeHoldOrder);
  }
}
