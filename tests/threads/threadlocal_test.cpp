//===- tests/threads/threadlocal_test.cpp - §5.3 thread-local interfaces --------===//
//
// The thread-local layer interface (§5.3): when a single thread is
// focused, scheduling primitives "always end up switching back to the same
// thread; they do not modify the kernel context and effectively act as a
// 'no-op', except that the shared log gets updated."
//
// Executable form: for a thread whose computation touches only its own
// locals, (a) its projected event sequence and return value are identical
// across every schedule of the multithreaded machine, and (b) they equal
// a solo run in which yield is replaced by a literal no-op primitive.
//
//===----------------------------------------------------------------------===//

#include "threads/Sched.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

const char *const WorkerSrc = R"(
  extern void yield();
  extern void done(int v);

  int t_worker(int seed) {
    int acc = seed;
    int i = 0;
    while (i < 3) {
      acc = acc * 7 + i;
      yield();
      i = i + 1;
    }
    done(acc);
    return acc;
  }
)";

ThreadedConfigPtr makeMultiConfig(unsigned Threads) {
  static ClightModule Client;
  Client = parseModuleOrDie("tl_client", WorkerSrc);
  typeCheckOrDie(Client);

  std::map<ThreadId, ThreadId> CpuOf;
  for (ThreadId T = 0; T != Threads; ++T)
    CpuOf.emplace(T, 0);

  auto L = makeInterface("Lhtd_tl");
  installHighSchedPrims(*L, CpuOf);
  L->addShared("done", makeEventPrim("done"));

  auto Cfg = std::make_shared<ThreadedConfig>();
  Cfg->Name = "threadlocal";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("tl.lasm", {&Client});
  Cfg->Sched = makeHighSchedFn(CpuOf);
  for (ThreadId T = 0; T != Threads; ++T)
    Cfg->Threads.push_back(
        {T, 0, {{"t_worker", {static_cast<std::int64_t>(T + 10)}}}});
  return Cfg;
}

/// Projects the log onto thread \p T, dropping machine-internal and
/// scheduling events — the thread-local view.
Log projectOwn(const Log &L, ThreadId T) {
  Log Out;
  for (const Event &E : L) {
    if (E.Tid != T)
      continue;
    if (E.Kind == "yield" || E.Kind == ThreadExitEventKind ||
        E.Kind == ReschedEventKind)
      continue;
    Out.push_back(E);
  }
  return Out;
}

} // namespace

TEST(ThreadLocalTest, ProjectionIsScheduleInvariant) {
  ThreadedExploreOptions Opts;
  Opts.MaxSteps = 1024;
  ExploreResult Res = exploreThreaded(makeMultiConfig(3), Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  ASSERT_FALSE(Res.Outcomes.empty());
  // Every schedule yields the same per-thread projection and returns.
  for (ThreadId T = 0; T != 3; ++T) {
    Log First = projectOwn(Res.Outcomes[0].FinalLog, T);
    for (const Outcome &O : Res.Outcomes) {
      EXPECT_EQ(projectOwn(O.FinalLog, T), First);
      EXPECT_EQ(O.Returns.at(T), Res.Outcomes[0].Returns.at(T));
    }
  }
}

TEST(ThreadLocalTest, YieldActsAsNoOpForTheFocusedThread) {
  // Multi-thread run vs a solo machine where yield is a pure no-op
  // primitive: thread 0's projection and return must coincide (§5.3's
  // "effectively act as a no-op").
  ThreadedExploreOptions Opts;
  Opts.MaxSteps = 1024;
  ExploreResult Multi = exploreThreaded(makeMultiConfig(2), Opts);
  ASSERT_TRUE(Multi.Ok) << Multi.Violation;

  static ClightModule Client;
  Client = parseModuleOrDie("tl_solo", WorkerSrc);
  typeCheckOrDie(Client);
  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}};
  auto L = makeInterface("Lsolo");
  // yield: a no-op that only asks the environment (here: nothing).
  L->addPrivate("yield", makeConstPrim(0));
  L->addShared("done", makeEventPrim("done"));
  auto Solo = std::make_shared<ThreadedConfig>();
  Solo->Name = "solo";
  Solo->Layer = L;
  Solo->Program = compileAndLink("tl_solo.lasm", {&Client});
  Solo->Sched = makeHighSchedFn(CpuOf);
  Solo->Threads.push_back({0, 0, {{"t_worker", {10}}}});
  ExploreResult SoloRes = exploreThreaded(Solo, Opts);
  ASSERT_TRUE(SoloRes.Ok) << SoloRes.Violation;
  ASSERT_EQ(SoloRes.Outcomes.size(), 1u);

  for (const Outcome &O : Multi.Outcomes) {
    EXPECT_EQ(projectOwn(O.FinalLog, 0),
              projectOwn(SoloRes.Outcomes[0].FinalLog, 0));
    EXPECT_EQ(O.Returns.at(0), SoloRes.Outcomes[0].Returns.at(0));
  }
}
