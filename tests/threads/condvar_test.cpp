//===- tests/threads/condvar_test.cpp - Condition variable tests -----------------===//

#include "threads/CondVar.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(CondVarTest, BoundedBufferDeliversInOrder) {
  MonitorCheck C = checkBoundedBuffer(3);
  EXPECT_TRUE(C.Ok) << C.Violation;
  EXPECT_GE(C.SchedulesExplored, 1u);
}

TEST(CondVarTest, BoundedBufferMoreItems) {
  MonitorCheck C = checkBoundedBuffer(5);
  EXPECT_TRUE(C.Ok) << C.Violation;
}

TEST(CondVarTest, LostWakeupDeadlockIsFound) {
  // The classic single-CV, wake-one, two-producer bug: the explorer must
  // expose a deadlock on some schedule (this is the checker *working*, not
  // a library bug).
  MonitorCheck C = checkBoundedBufferLostWakeup(3);
  EXPECT_FALSE(C.Ok);
  EXPECT_NE(C.Violation.find("deadlock"), std::string::npos)
      << C.Violation;
}

TEST(CondVarTest, ModuleShapes) {
  ClightModule Cv = makeCondVarModule();
  EXPECT_NE(Cv.findFunc("cv_wait"), nullptr);
  EXPECT_NE(Cv.findFunc("cv_signal"), nullptr);
  EXPECT_TRUE(Cv.findFunc("acq_q")->IsExtern); // monitor lock from below
}
