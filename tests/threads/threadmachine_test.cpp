//===- tests/threads/threadmachine_test.cpp - Multithreaded machine tests -------===//

#include "threads/ThreadMachine.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "threads/Sched.h"

#include <gtest/gtest.h>

using namespace ccal;

namespace {

/// Two threads on one CPU sharing a CPU-local counter global; bump is a
/// shared observable prim, yield transfers control.
ThreadedConfigPtr makeYieldConfig(unsigned Rounds) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern void yield();
      extern int bump();
      int shared_counter = 0;

      int t_main(int rounds) {
        int acc = 0;
        int i = 0;
        while (i < rounds) {
          shared_counter = shared_counter + 1;
          acc = acc * 100 + bump();
          yield();
          i = i + 1;
        }
        return acc * 1000 + shared_counter;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();

  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 0}};
  auto L = makeInterface("Lhtd_test");
  installHighSchedPrims(*L, CpuOf);
  L->addShared("bump", makeFetchIncPrim("bump"));

  auto Cfg = std::make_shared<ThreadedConfig>();
  Cfg->Name = "yield2";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("yield2.lasm", {&Client});
  Cfg->Sched = makeHighSchedFn(CpuOf);
  Cfg->Threads.push_back(
      {0, 0, {{"t_main", {static_cast<std::int64_t>(Rounds)}}}});
  Cfg->Threads.push_back(
      {1, 0, {{"t_main", {static_cast<std::int64_t>(Rounds)}}}});
  return Cfg;
}

} // namespace

TEST(ThreadMachineTest, NonPreemptiveSingleCpuIsDeterministic) {
  ThreadedMachine M(makeYieldConfig(2));
  ASSERT_TRUE(M.ok()) << M.error();
  // Exactly one schedulable thread at a time on one CPU.
  while (!M.allIdle()) {
    std::vector<ThreadId> Ready = M.schedulable();
    ASSERT_EQ(Ready.size(), 1u);
    ASSERT_TRUE(M.step(Ready[0])) << M.error();
  }
  // Thread 0 ran first (idle dispatcher picks the lowest id); alternation
  // via yield gives bump values 0,2 to thread 0 and 1,3 to thread 1.
  auto Rets = M.returns();
  EXPECT_EQ(Rets.at(0), std::vector<std::int64_t>{2 * 1000 + 4});
  EXPECT_EQ(Rets.at(1), std::vector<std::int64_t>{103 * 1000 + 4});
}

TEST(ThreadMachineTest, ThreadsShareCpuLocalMemory) {
  ThreadedMachine M(makeYieldConfig(1));
  while (!M.allIdle()) {
    std::vector<ThreadId> Ready = M.schedulable();
    ASSERT_FALSE(Ready.empty());
    ASSERT_TRUE(M.step(Ready[0]));
  }
  // shared_counter reached 2: both threads incremented the same global.
  std::int64_t Counter = M.cpuMemory(0)[0];
  EXPECT_EQ(Counter, 2);
}

TEST(ThreadMachineTest, ExitEventsAppendedOnCompletion) {
  ThreadedMachine M(makeYieldConfig(1));
  while (!M.allIdle()) {
    std::vector<ThreadId> Ready = M.schedulable();
    ASSERT_FALSE(Ready.empty());
    ASSERT_TRUE(M.step(Ready[0]));
  }
  EXPECT_EQ(logCountKind(M.log(), ThreadExitEventKind), 2u);
  EXPECT_GE(logCountKind(M.log(), ReschedEventKind), 1u);
}

TEST(ThreadMachineTest, ExploreSingleCpuHasOneSchedule) {
  ThreadedExploreOptions Opts;
  ExploreResult Res = exploreThreaded(makeYieldConfig(2), Opts);
  ASSERT_TRUE(Res.Ok) << Res.Violation;
  EXPECT_EQ(Res.SchedulesExplored, 1u); // non-preemptive determinism
}

TEST(HighSchedReplayTest, YieldRotatesReadyQueue) {
  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 0}, {2, 0}};
  Replayer<HighSchedState> R = makeHighSchedReplayer(CpuOf);
  Log L = {Event(0, ReschedEventKind), Event(0, "spawn", {1}),
           Event(0, "spawn", {2}), Event(0, "yield")};
  std::optional<HighSchedState> S = R.replay(L);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Current.at(0), 1);
  ASSERT_EQ(S->Ready.at(0).size(), 2u);
  EXPECT_EQ(S->Ready.at(0)[0], 2u);
  EXPECT_EQ(S->Ready.at(0)[1], 0u);
}

TEST(HighSchedReplayTest, SleepAndWakeupAcrossCpus) {
  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 1}};
  Replayer<HighSchedState> R = makeHighSchedReplayer(CpuOf);
  Log L = {Event(0, ReschedEventKind), Event(1, ReschedEventKind),
           Event(0, "sleep", {9}), Event(1, "wakeup", {9})};
  std::optional<HighSchedState> S = R.replay(L);
  ASSERT_TRUE(S.has_value());
  // Thread 0 slept; CPU 0 became idle; the wakeup dispatched it directly.
  EXPECT_EQ(S->Current.at(0), 0);
  EXPECT_TRUE(S->Sleeping.empty());
}

TEST(HighSchedReplayTest, YieldByNonCurrentIsStuck) {
  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 0}};
  Replayer<HighSchedState> R = makeHighSchedReplayer(CpuOf);
  Log L = {Event(0, ReschedEventKind), Event(1, "yield")};
  EXPECT_FALSE(R.replay(L).has_value());
}

TEST(LowSchedReplayTest, CswitchTransfersControl) {
  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 0}};
  SchedReplayFn Low = makeLowSchedFn(CpuOf);
  Log L = {Event(0, ReschedEventKind), Event(0, "cswitch", {1}),
           Event(1, "cswitch", {0})};
  std::optional<SchedView> V = Low(L);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Current.at(0), 0);
}

TEST(LowSchedReplayTest, CswitchByNonCurrentIsStuck) {
  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 0}};
  SchedReplayFn Low = makeLowSchedFn(CpuOf);
  Log L = {Event(0, ReschedEventKind), Event(1, "cswitch", {0})};
  EXPECT_FALSE(Low(L).has_value());
}

TEST(ThreadMachineTest, CrossCpuWakeup) {
  // §5.1's cross-CPU path: a thread sleeping on CPU 0 is woken by a
  // thread on CPU 1; the idle CPU dispatches the woken thread directly
  // (the collapsed pending-queue semantics).
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("xc", R"(
      extern void sleep(int q);
      extern int wakeup(int q);
      extern void done(int v);

      int t_sleeper() {
        sleep(5);
        done(42);
        return 42;
      }

      int t_waker() { return wakeup(5); }
    )");
    typeCheckOrDie(M);
    return M;
  }();

  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 1}};
  auto L = makeInterface("Lxc");
  installHighSchedPrims(*L, CpuOf);
  L->addShared("done", makeEventPrim("done"));

  auto Cfg = std::make_shared<ThreadedConfig>();
  Cfg->Name = "crosscpu";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("crosscpu.lasm", {&Client});
  Cfg->Sched = makeHighSchedFn(CpuOf);
  Cfg->Threads.push_back({0, 0, {{"t_sleeper", {}}}});
  Cfg->Threads.push_back({1, 1, {{"t_waker", {}}}});

  // Drive the sleep before the wakeup (the other order is a lost wakeup;
  // see the deadlock test below).
  ThreadedMachine M(Cfg);
  ASSERT_TRUE(M.ok()) << M.error();
  ASSERT_TRUE(M.step(0)) << M.error(); // thread 0 sleeps; CPU 0 idles
  ASSERT_TRUE(M.step(1)) << M.error(); // thread 1 wakes it cross-CPU
  while (!M.allIdle()) {
    std::vector<ThreadId> Ready = M.schedulable();
    ASSERT_FALSE(Ready.empty()) << "deadlock: " << logToString(M.log());
    ASSERT_TRUE(M.step(Ready[0])) << M.error();
  }
  EXPECT_EQ(M.returns().at(0), std::vector<std::int64_t>{42});
  EXPECT_EQ(M.returns().at(1), std::vector<std::int64_t>{0}); // woke tid 0
  EXPECT_EQ(logCountKind(M.log(), "done"), 1u);
}

TEST(ThreadMachineTest, LostCrossCpuWakeupIsADeadlock) {
  // The same program with the wakeup committed *before* the sleep: the
  // wakeup is a no-op (empty queue), the sleeper then sleeps forever, and
  // the explorer must report the deadlock on that schedule.
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("xc2", R"(
      extern void sleep(int q);
      extern int wakeup(int q);

      int t_sleeper() {
        sleep(5);
        return 1;
      }

      int t_waker() { return wakeup(5); }
    )");
    typeCheckOrDie(M);
    return M;
  }();

  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 1}};
  auto L = makeInterface("Lxc2");
  installHighSchedPrims(*L, CpuOf);

  auto Cfg = std::make_shared<ThreadedConfig>();
  Cfg->Name = "lostwakeup";
  Cfg->Layer = L;
  Cfg->Program = compileAndLink("lostwakeup.lasm", {&Client});
  Cfg->Sched = makeHighSchedFn(CpuOf);
  Cfg->Threads.push_back({0, 0, {{"t_sleeper", {}}}});
  Cfg->Threads.push_back({1, 1, {{"t_waker", {}}}});

  ThreadedExploreOptions Opts;
  Opts.MaxSteps = 64;
  ExploreResult Res = exploreThreaded(Cfg, Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Violation.find("deadlock"), std::string::npos);
}
