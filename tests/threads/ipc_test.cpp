//===- tests/threads/ipc_test.cpp - IPC channel tests ----------------------------===//

#include "threads/Ipc.h"

#include <gtest/gtest.h>

using namespace ccal;

TEST(IpcTest, ExactlyOnceInOrderSmall) {
  MonitorCheck C = checkIpcChannel(2);
  EXPECT_TRUE(C.Ok) << C.Violation;
}

TEST(IpcTest, RingOverflowForcesBothBlockingPaths) {
  // Items > capacity: the sender must block on not-full at least once and
  // the receiver on not-empty.
  MonitorCheck C = checkIpcChannel(IpcRingCap + 2);
  EXPECT_TRUE(C.Ok) << C.Violation;
}

TEST(IpcTest, ChannelModuleUsesRing) {
  ClightModule M = makeIpcChannelModule();
  EXPECT_NE(M.findFunc("send"), nullptr);
  EXPECT_NE(M.findFunc("recv"), nullptr);
  EXPECT_NE(M.findGlobal("ring"), nullptr);
  EXPECT_EQ(M.findGlobal("ring")->Size, IpcRingCap);
}
