//===- tests/obs/metrics_test.cpp - Observability layer self-tests --------------===//
//
// The metrics/tracing subsystem is itself under test: counters are
// monotone, the disabled mode is a true no-op (no registry entries, no
// trace events, no file), the Chrome trace export is valid JSON of the
// trace_event schema, and the registry survives concurrent hammering
// without losing increments (the CI TSan job runs this suite on purpose).
//
//===-------------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

using namespace ccal;

namespace {

/// Every test runs with a clean registry/trace and restores the previous
/// enablement, so suites sharing the process don't see our metrics.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    WasEnabled = obs::enabled();
    obs::setEnabled(true);
    obs::metricsReset();
    obs::traceReset();
  }
  void TearDown() override {
    obs::metricsReset();
    obs::traceReset();
    obs::setEnabled(WasEnabled);
  }
  bool WasEnabled = false;
};

} // namespace

TEST_F(ObsTest, CountersAreMonotoneAndAccumulate) {
  EXPECT_EQ(obs::counterValue("t.c"), 0u);
  obs::counterAdd("t.c");
  obs::counterAdd("t.c", 4);
  EXPECT_EQ(obs::counterValue("t.c"), 5u);
  // There is no decrement in the API; re-adding zero keeps the value.
  obs::counterAdd("t.c", 0);
  EXPECT_EQ(obs::counterValue("t.c"), 5u);
}

TEST_F(ObsTest, GaugesOverwriteAndCountersDoNot) {
  obs::gaugeSet("t.g", 7);
  obs::gaugeSet("t.g", -2);
  EXPECT_EQ(obs::gaugeValue("t.g"), -2);
}

TEST_F(ObsTest, HistogramQuantilesBracketTheData) {
  for (std::uint64_t V = 1; V <= 1000; ++V)
    obs::histRecord("t.h", V);
  obs::HistogramData H = obs::histData("t.h");
  EXPECT_EQ(H.Count, 1000u);
  EXPECT_EQ(H.Min, 1u);
  EXPECT_EQ(H.Max, 1000u);
  // Power-of-two buckets: quantiles are 2x estimates, so bracket loosely.
  EXPECT_GE(H.quantile(0.5), 256u);
  EXPECT_LE(H.quantile(0.5), 1024u);
  EXPECT_GE(H.quantile(0.99), H.quantile(0.5));
}

TEST_F(ObsTest, DisabledModeCreatesNoRegistryEntries) {
  obs::setEnabled(false);
  obs::counterAdd("off.c", 10);
  obs::gaugeSet("off.g", 1);
  obs::histRecord("off.h", 1);
  obs::timerRecordNs("off.t", 1);
  { obs::ScopedTimer T("off.scoped"); }
  { obs::Span S("off.span", "test"); }
  obs::traceInstant("off.instant", "test");
  EXPECT_EQ(obs::metricsCount(), 0u);
  EXPECT_EQ(obs::traceEventCount(), 0u);
  EXPECT_EQ(obs::counterValue("off.c"), 0u);
}

TEST_F(ObsTest, DisabledModeWritesNoTraceFile) {
  obs::setEnabled(false);
  { obs::Span S("off.span", "test"); }
  const std::string Path = "obs_test_disabled_trace.json";
  std::remove(Path.c_str());
  // writeChromeTrace with an empty buffer must not create the file.
  EXPECT_FALSE(obs::writeChromeTrace(Path));
  std::FILE *F = std::fopen(Path.c_str(), "r");
  EXPECT_EQ(F, nullptr);
  if (F)
    std::fclose(F);
}

TEST_F(ObsTest, SpansRecordTimersAndTraceEvents) {
  {
    obs::Span S("t.work", "test");
  }
  obs::traceInstant("t.marker", "test");
  EXPECT_EQ(obs::traceEventCount(), 2u);
  std::vector<obs::MetricSample> All = obs::metricsSnapshot();
  bool SawTimer = false;
  for (const obs::MetricSample &M : All)
    if (M.Name == "t.work" && M.K == obs::MetricSample::Kind::Timer) {
      SawTimer = true;
      EXPECT_EQ(M.Count, 1u);
    }
  EXPECT_TRUE(SawTimer);
}

TEST_F(ObsTest, ChromeTraceJsonMatchesTheTraceEventSchema) {
  {
    obs::Span S("phase \"one\"", "cat\\a"); // escaping must hold up
  }
  obs::traceInstant("marker", "test");
  std::string Json = obs::chromeTraceJson();

  JsonParseResult P = parseJson(Json);
  ASSERT_TRUE(P.Ok) << P.Error << "\n" << Json;
  const JsonValue *Events = P.Value.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, JsonValue::Kind::Array);
  ASSERT_EQ(Events->Items.size(), 2u);
  for (const JsonValue &E : Events->Items) {
    ASSERT_EQ(E.K, JsonValue::Kind::Object);
    const JsonValue *Name = E.field("name");
    const JsonValue *Cat = E.field("cat");
    const JsonValue *Ph = E.field("ph");
    const JsonValue *Ts = E.field("ts");
    const JsonValue *Pid = E.field("pid");
    const JsonValue *Tid = E.field("tid");
    ASSERT_NE(Name, nullptr);
    ASSERT_NE(Cat, nullptr);
    ASSERT_NE(Ph, nullptr);
    ASSERT_NE(Ts, nullptr);
    ASSERT_NE(Pid, nullptr);
    ASSERT_NE(Tid, nullptr);
    EXPECT_EQ(Name->K, JsonValue::Kind::String);
    EXPECT_EQ(Cat->K, JsonValue::Kind::String);
    ASSERT_EQ(Ph->K, JsonValue::Kind::String);
    EXPECT_TRUE(Ph->StrVal == "X" || Ph->StrVal == "i") << Ph->StrVal;
    EXPECT_EQ(Ts->K, JsonValue::Kind::Number);
    EXPECT_EQ(Pid->K, JsonValue::Kind::Number);
    EXPECT_EQ(Tid->K, JsonValue::Kind::Number);
    if (Ph->StrVal == "X") {
      const JsonValue *Dur = E.field("dur");
      ASSERT_NE(Dur, nullptr);
      EXPECT_EQ(Dur->K, JsonValue::Kind::Number);
      EXPECT_EQ(Name->StrVal, "phase \"one\"");
    }
  }
}

TEST_F(ObsTest, MetricsJsonParses) {
  obs::counterAdd("j.c", 3);
  obs::gaugeSet("j.g", -1);
  obs::timerRecordNs("j.t", 1000);
  obs::histRecord("j.h", 42);
  JsonParseResult P = parseJson(obs::metricsJson());
  ASSERT_TRUE(P.Ok) << P.Error;
  const JsonValue *Counters = P.Value.field("counters");
  ASSERT_NE(Counters, nullptr);
  const JsonValue *C = Counters->field("j.c");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->NumVal, 3.0);
}

TEST_F(ObsTest, WriteChromeTraceProducesAParsableFile) {
  { obs::Span S("file.span", "test"); }
  const std::string Path = "obs_test_trace.json";
  ASSERT_TRUE(obs::writeChromeTrace(Path));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string Content;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Content.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());
  JsonParseResult P = parseJson(Content);
  EXPECT_TRUE(P.Ok) << P.Error;
}

/// TSan target: concurrent counter increments must be exact and the
/// registry must not race (mutex-guarded map, atomic flag).
TEST_F(ObsTest, ConcurrentIncrementsAreExact) {
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 2000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([T] {
      for (unsigned I = 0; I != PerThread; ++I) {
        obs::counterAdd("conc.total");
        obs::counterAdd("conc.t" + std::to_string(T));
        obs::histRecord("conc.h", I);
        if (I % 256 == 0) {
          obs::Span S("conc.span", "test");
          obs::gaugeSet("conc.g", static_cast<std::int64_t>(I));
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(obs::counterValue("conc.total"),
            static_cast<std::uint64_t>(Threads) * PerThread);
  for (unsigned T = 0; T != Threads; ++T)
    EXPECT_EQ(obs::counterValue("conc.t" + std::to_string(T)), PerThread);
  EXPECT_EQ(obs::histData("conc.h").Count,
            static_cast<std::uint64_t>(Threads) * PerThread);
}

/// Concurrent enable/disable races against recording — the flag is the
/// only lock-free part, so TSan gets to see both orders.
TEST_F(ObsTest, TogglingWhileRecordingIsRaceFree) {
  std::thread Toggler([] {
    for (unsigned I = 0; I != 500; ++I)
      obs::setEnabled(I % 2 == 0);
  });
  for (unsigned I = 0; I != 5000; ++I)
    obs::counterAdd("toggle.c");
  Toggler.join();
  obs::setEnabled(true);
  EXPECT_LE(obs::counterValue("toggle.c"), 5000u);
}

// ---- support/Json parser (used by the schema checks above) ----

TEST(JsonTest, ParsesScalarsArraysAndObjects) {
  JsonParseResult P = parseJson(
      R"({"a": 1.5, "b": [true, false, null, "sA"], "c": {"d": -2}})");
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Value.field("a")->NumVal, 1.5);
  const JsonValue *B = P.Value.field("b");
  ASSERT_EQ(B->Items.size(), 4u);
  EXPECT_EQ(B->Items[0].K, JsonValue::Kind::Bool);
  EXPECT_TRUE(B->Items[0].BoolVal);
  EXPECT_EQ(B->Items[2].K, JsonValue::Kind::Null);
  EXPECT_EQ(B->Items[3].StrVal, "sA");
  EXPECT_EQ(P.Value.field("c")->field("d")->NumVal, -2.0);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(parseJson("{").Ok);
  EXPECT_FALSE(parseJson("[1,]").Ok);
  EXPECT_FALSE(parseJson("{\"a\" 1}").Ok);
  EXPECT_FALSE(parseJson("\"unterminated").Ok);
  EXPECT_FALSE(parseJson("{} trailing").Ok);
  EXPECT_FALSE(parseJson("").Ok);
}

// ---- bounded trace ring (drop-oldest + explicit flush) ----

namespace {
/// Restores the default ring capacity even when an assertion bails out.
struct CapacityGuard {
  ~CapacityGuard() { obs::traceSetCapacity(obs::TraceDefaultCapacity); }
};
} // namespace

TEST_F(ObsTest, TraceRingDropsOldestAtCapacity) {
  CapacityGuard Restore;
  obs::traceSetCapacity(4);
  for (int I = 0; I != 10; ++I)
    obs::traceInstant("ev" + std::to_string(I), "test");
  EXPECT_EQ(obs::traceEventCount(), 4u);
  EXPECT_EQ(obs::traceDropped(), 6u);
  EXPECT_EQ(obs::counterValue("obs.trace_dropped"), 6u);
  // The surviving window is the most recent one, in order.
  std::vector<obs::TraceEvent> Events = obs::traceEvents();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Events.front().Name, "ev6");
  EXPECT_EQ(Events.back().Name, "ev9");
}

TEST_F(ObsTest, ShrinkingCapacityDropsExistingOverflow) {
  CapacityGuard Restore;
  for (int I = 0; I != 8; ++I)
    obs::traceInstant("ev" + std::to_string(I), "test");
  EXPECT_EQ(obs::traceDropped(), 0u);
  obs::traceSetCapacity(3);
  EXPECT_EQ(obs::traceEventCount(), 3u);
  EXPECT_EQ(obs::traceDropped(), 5u);
  EXPECT_EQ(obs::traceEvents().front().Name, "ev5");
}

TEST_F(ObsTest, TraceResetClearsTheDroppedTally) {
  CapacityGuard Restore;
  obs::traceSetCapacity(1);
  obs::traceInstant("a", "test");
  obs::traceInstant("b", "test");
  EXPECT_EQ(obs::traceDropped(), 1u);
  obs::traceReset();
  EXPECT_EQ(obs::traceDropped(), 0u);
  EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST_F(ObsTest, FlushTraceWithoutAConfiguredPathIsFalse) {
  // CCAL_TRACE names no file in the test environment, so the explicit
  // flush reports it had nowhere to write (the daemon treats that as a
  // no-op, not an error).
  obs::traceInstant("ev", "test");
  if (obs::traceFilePath().empty())
    EXPECT_FALSE(obs::flushTrace());
  else
    EXPECT_TRUE(obs::flushTrace()); // env-driven runs do get the file
}

// ---- nesting-depth cap (untrusted socket input must not overflow the
// parser's stack) ----

namespace {
std::string nestedArrays(std::size_t Depth) {
  std::string S(Depth, '[');
  S.append(Depth, ']');
  return S;
}
} // namespace

TEST(JsonTest, DepthAtTheCapParses) {
  std::string Doc = nestedArrays(JsonMaxDepth);
  JsonParseResult P = parseJson(Doc);
  EXPECT_TRUE(P.Ok) << P.Error;

  // Mixed-container nesting counts every level, not just arrays.
  JsonParseResult Mixed = parseJson(R"({"a":[{"b":[1]}]})", 4);
  EXPECT_TRUE(Mixed.Ok) << Mixed.Error;
}

TEST(JsonTest, DepthOnePastTheCapIsAPositionTaggedError) {
  JsonParseResult P = parseJson(nestedArrays(JsonMaxDepth + 1));
  ASSERT_FALSE(P.Ok);
  EXPECT_NE(P.Error.find("depth"), std::string::npos) << P.Error;
  EXPECT_NE(P.Error.find("offset"), std::string::npos) << P.Error;

  JsonParseResult Mixed = parseJson(R"({"a":[{"b":[1]}]})", 3);
  EXPECT_FALSE(Mixed.Ok);
}

TEST(JsonTest, HundredThousandDeepArrayFailsInsteadOfOverflowing) {
  // The motivating attack: before the cap this input recursed 100k
  // frames and took the process down with a stack overflow.
  JsonParseResult P = parseJson(nestedArrays(100000));
  ASSERT_FALSE(P.Ok);
  EXPECT_NE(P.Error.find("depth"), std::string::npos) << P.Error;
}

TEST(JsonTest, DepthCapDoesNotCountSiblings) {
  // 1000 sibling arrays at depth 2: breadth must not trip a depth cap.
  std::string Doc = "[";
  for (int I = 0; I != 1000; ++I)
    Doc += I ? ",[]" : "[]";
  Doc += "]";
  EXPECT_TRUE(parseJson(Doc, 8).Ok);
}
