//===- tests/runtime/runtime_test.cpp - Real-hardware lock tests -----------------===//

#include "runtime/RtMcsLock.h"
#include "runtime/RtQueuingLock.h"
#include "runtime/RtSharedQueue.h"
#include "runtime/RtTicketLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace ccal::rt;

namespace {

/// Hammers a critical section from \p NumThreads threads; returns true
/// when every increment was mutually exclusive.
template <typename AcquireFn, typename ReleaseFn>
bool hammer(unsigned NumThreads, unsigned Iters, AcquireFn Acquire,
            ReleaseFn Release) {
  long Counter = 0; // intentionally non-atomic: the lock must protect it
  std::atomic<bool> Torn{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&] {
      for (unsigned I = 0; I != Iters; ++I) {
        Acquire();
        long Seen = Counter;
        Counter = Seen + 1;
        Release();
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  return !Torn.load() &&
         Counter == static_cast<long>(NumThreads) * Iters;
}

} // namespace

TEST(RuntimeTicketLockTest, MutualExclusionUnderContention) {
  TicketLock<false> L;
  EXPECT_TRUE(hammer(4, 20000, [&] { L.acquire(); }, [&] { L.release(); }));
}

TEST(RuntimeTicketLockTest, GhostVariantBehavesIdentically) {
  TicketLock<true> L;
  EXPECT_TRUE(hammer(4, 5000, [&] { L.acquire(); }, [&] { L.release(); }));
  EXPECT_GT(threadGhostLog().size() + 1, 0u); // main thread may log nothing
}

TEST(RuntimeMcsLockTest, MutualExclusionWithScopes) {
  McsLock<false> L;
  long Counter = 0;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([&] {
      for (unsigned I = 0; I != 20000; ++I) {
        LockScope<McsLock<false>> Guard(L);
        Counter = Counter + 1;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter, 4 * 20000);
}

TEST(RuntimeQueuingLockTest, MutualExclusionWithSleepers) {
  QueuingLock L;
  EXPECT_TRUE(hammer(8, 2000, [&] { L.acquire(); }, [&] { L.release(); }));
}

TEST(RuntimeSharedQueueTest, TicketBackedMpmc) {
  SharedQueue<TicketLock<false>> Q;
  constexpr int PerProducer = 5000;
  std::vector<std::thread> Producers;
  for (int P = 0; P != 3; ++P)
    Producers.emplace_back([&Q, P] {
      for (int I = 0; I != PerProducer; ++I)
        Q.enqueue(P * PerProducer + I);
    });
  std::atomic<long> Sum{0};
  std::atomic<int> Got{0};
  std::vector<std::thread> Consumers;
  for (int C = 0; C != 3; ++C)
    Consumers.emplace_back([&] {
      while (Got.load() < 3 * PerProducer) {
        if (std::optional<std::int64_t> V = Q.dequeue()) {
          Sum += *V;
          ++Got;
        }
      }
    });
  for (auto &T : Producers)
    T.join();
  for (auto &T : Consumers)
    T.join();
  long Expected = 0;
  for (int V = 0; V != 3 * PerProducer; ++V)
    Expected += V;
  EXPECT_EQ(Sum.load(), Expected);
}

TEST(RuntimeSharedQueueTest, McsBackedInterchangeable) {
  // §6: swapping the lock under the queue requires no other change.
  SharedQueue<McsLock<false>> Q;
  Q.enqueue(1);
  Q.enqueue(2);
  EXPECT_EQ(Q.dequeue(), 1);
  EXPECT_EQ(Q.dequeue(), 2);
  EXPECT_EQ(Q.dequeue(), std::nullopt);
}

TEST(RuntimeGhostLogTest, RecordsAndClears) {
  GhostLog &Log = threadGhostLog();
  Log.clear();
  Log.record(GhostFai, 1);
  Log.record(GhostHold, 2);
  EXPECT_EQ(Log.size(), 2u);
  Log.clear();
  EXPECT_EQ(Log.size(), 0u);
}
