file(REMOVE_RECURSE
  "CMakeFiles/bench_memmodel.dir/bench_memmodel.cpp.o"
  "CMakeFiles/bench_memmodel.dir/bench_memmodel.cpp.o.d"
  "bench_memmodel"
  "bench_memmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
