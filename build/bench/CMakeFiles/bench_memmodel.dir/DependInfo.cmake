
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_memmodel.cpp" "bench/CMakeFiles/bench_memmodel.dir/bench_memmodel.cpp.o" "gcc" "bench/CMakeFiles/bench_memmodel.dir/bench_memmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccal_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_compcertx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_lasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
