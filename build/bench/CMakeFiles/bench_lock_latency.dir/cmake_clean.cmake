file(REMOVE_RECURSE
  "CMakeFiles/bench_lock_latency.dir/bench_lock_latency.cpp.o"
  "CMakeFiles/bench_lock_latency.dir/bench_lock_latency.cpp.o.d"
  "bench_lock_latency"
  "bench_lock_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lock_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
