# Empty compiler generated dependencies file for bench_lock_latency.
# This may be replaced when dependencies are built.
