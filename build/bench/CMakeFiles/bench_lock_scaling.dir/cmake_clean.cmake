file(REMOVE_RECURSE
  "CMakeFiles/bench_lock_scaling.dir/bench_lock_scaling.cpp.o"
  "CMakeFiles/bench_lock_scaling.dir/bench_lock_scaling.cpp.o.d"
  "bench_lock_scaling"
  "bench_lock_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lock_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
