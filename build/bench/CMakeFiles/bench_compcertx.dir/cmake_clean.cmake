file(REMOVE_RECURSE
  "CMakeFiles/bench_compcertx.dir/bench_compcertx.cpp.o"
  "CMakeFiles/bench_compcertx.dir/bench_compcertx.cpp.o.d"
  "bench_compcertx"
  "bench_compcertx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compcertx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
