# Empty dependencies file for bench_compcertx.
# This may be replaced when dependencies are built.
