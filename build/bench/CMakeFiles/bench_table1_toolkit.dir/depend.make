# Empty dependencies file for bench_table1_toolkit.
# This may be replaced when dependencies are built.
