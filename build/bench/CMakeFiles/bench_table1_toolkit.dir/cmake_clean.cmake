file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_toolkit.dir/bench_table1_toolkit.cpp.o"
  "CMakeFiles/bench_table1_toolkit.dir/bench_table1_toolkit.cpp.o.d"
  "bench_table1_toolkit"
  "bench_table1_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
