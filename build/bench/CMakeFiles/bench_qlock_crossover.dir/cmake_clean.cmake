file(REMOVE_RECURSE
  "CMakeFiles/bench_qlock_crossover.dir/bench_qlock_crossover.cpp.o"
  "CMakeFiles/bench_qlock_crossover.dir/bench_qlock_crossover.cpp.o.d"
  "bench_qlock_crossover"
  "bench_qlock_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qlock_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
