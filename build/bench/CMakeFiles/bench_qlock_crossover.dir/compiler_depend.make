# Empty compiler generated dependencies file for bench_qlock_crossover.
# This may be replaced when dependencies are built.
