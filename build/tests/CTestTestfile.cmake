# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/lasm_test[1]_include.cmake")
include("/root/repo/build/tests/compcertx_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/objects_test[1]_include.cmake")
include("/root/repo/build/tests/threads_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
