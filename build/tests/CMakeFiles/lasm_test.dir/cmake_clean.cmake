file(REMOVE_RECURSE
  "CMakeFiles/lasm_test.dir/lasm/vm_test.cpp.o"
  "CMakeFiles/lasm_test.dir/lasm/vm_test.cpp.o.d"
  "lasm_test"
  "lasm_test.pdb"
  "lasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
