# Empty compiler generated dependencies file for lasm_test.
# This may be replaced when dependencies are built.
