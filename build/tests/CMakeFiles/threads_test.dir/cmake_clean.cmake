file(REMOVE_RECURSE
  "CMakeFiles/threads_test.dir/threads/condvar_test.cpp.o"
  "CMakeFiles/threads_test.dir/threads/condvar_test.cpp.o.d"
  "CMakeFiles/threads_test.dir/threads/ipc_test.cpp.o"
  "CMakeFiles/threads_test.dir/threads/ipc_test.cpp.o.d"
  "CMakeFiles/threads_test.dir/threads/linking_test.cpp.o"
  "CMakeFiles/threads_test.dir/threads/linking_test.cpp.o.d"
  "CMakeFiles/threads_test.dir/threads/queuinglock_test.cpp.o"
  "CMakeFiles/threads_test.dir/threads/queuinglock_test.cpp.o.d"
  "CMakeFiles/threads_test.dir/threads/threadlocal_test.cpp.o"
  "CMakeFiles/threads_test.dir/threads/threadlocal_test.cpp.o.d"
  "CMakeFiles/threads_test.dir/threads/threadmachine_test.cpp.o"
  "CMakeFiles/threads_test.dir/threads/threadmachine_test.cpp.o.d"
  "threads_test"
  "threads_test.pdb"
  "threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
