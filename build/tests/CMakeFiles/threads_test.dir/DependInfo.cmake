
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/threads/condvar_test.cpp" "tests/CMakeFiles/threads_test.dir/threads/condvar_test.cpp.o" "gcc" "tests/CMakeFiles/threads_test.dir/threads/condvar_test.cpp.o.d"
  "/root/repo/tests/threads/ipc_test.cpp" "tests/CMakeFiles/threads_test.dir/threads/ipc_test.cpp.o" "gcc" "tests/CMakeFiles/threads_test.dir/threads/ipc_test.cpp.o.d"
  "/root/repo/tests/threads/linking_test.cpp" "tests/CMakeFiles/threads_test.dir/threads/linking_test.cpp.o" "gcc" "tests/CMakeFiles/threads_test.dir/threads/linking_test.cpp.o.d"
  "/root/repo/tests/threads/queuinglock_test.cpp" "tests/CMakeFiles/threads_test.dir/threads/queuinglock_test.cpp.o" "gcc" "tests/CMakeFiles/threads_test.dir/threads/queuinglock_test.cpp.o.d"
  "/root/repo/tests/threads/threadlocal_test.cpp" "tests/CMakeFiles/threads_test.dir/threads/threadlocal_test.cpp.o" "gcc" "tests/CMakeFiles/threads_test.dir/threads/threadlocal_test.cpp.o.d"
  "/root/repo/tests/threads/threadmachine_test.cpp" "tests/CMakeFiles/threads_test.dir/threads/threadmachine_test.cpp.o" "gcc" "tests/CMakeFiles/threads_test.dir/threads/threadmachine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccal_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_compcertx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_lasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
