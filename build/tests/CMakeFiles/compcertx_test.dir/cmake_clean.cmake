file(REMOVE_RECURSE
  "CMakeFiles/compcertx_test.dir/compcertx/codegen_test.cpp.o"
  "CMakeFiles/compcertx_test.dir/compcertx/codegen_test.cpp.o.d"
  "CMakeFiles/compcertx_test.dir/compcertx/fuzz_test.cpp.o"
  "CMakeFiles/compcertx_test.dir/compcertx/fuzz_test.cpp.o.d"
  "CMakeFiles/compcertx_test.dir/compcertx/optimize_test.cpp.o"
  "CMakeFiles/compcertx_test.dir/compcertx/optimize_test.cpp.o.d"
  "CMakeFiles/compcertx_test.dir/compcertx/stackmerge_test.cpp.o"
  "CMakeFiles/compcertx_test.dir/compcertx/stackmerge_test.cpp.o.d"
  "CMakeFiles/compcertx_test.dir/compcertx/validate_test.cpp.o"
  "CMakeFiles/compcertx_test.dir/compcertx/validate_test.cpp.o.d"
  "compcertx_test"
  "compcertx_test.pdb"
  "compcertx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compcertx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
