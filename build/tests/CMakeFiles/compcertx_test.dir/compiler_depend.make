# Empty compiler generated dependencies file for compcertx_test.
# This may be replaced when dependencies are built.
