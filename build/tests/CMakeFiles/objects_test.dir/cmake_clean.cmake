file(REMOVE_RECURSE
  "CMakeFiles/objects_test.dir/objects/linearize_test.cpp.o"
  "CMakeFiles/objects_test.dir/objects/linearize_test.cpp.o.d"
  "CMakeFiles/objects_test.dir/objects/localqueue_test.cpp.o"
  "CMakeFiles/objects_test.dir/objects/localqueue_test.cpp.o.d"
  "CMakeFiles/objects_test.dir/objects/mcslock_test.cpp.o"
  "CMakeFiles/objects_test.dir/objects/mcslock_test.cpp.o.d"
  "CMakeFiles/objects_test.dir/objects/sharedqueue_test.cpp.o"
  "CMakeFiles/objects_test.dir/objects/sharedqueue_test.cpp.o.d"
  "CMakeFiles/objects_test.dir/objects/ticketlock_test.cpp.o"
  "CMakeFiles/objects_test.dir/objects/ticketlock_test.cpp.o.d"
  "objects_test"
  "objects_test.pdb"
  "objects_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
