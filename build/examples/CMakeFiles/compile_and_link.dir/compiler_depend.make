# Empty compiler generated dependencies file for compile_and_link.
# This may be replaced when dependencies are built.
