file(REMOVE_RECURSE
  "CMakeFiles/compile_and_link.dir/compile_and_link.cpp.o"
  "CMakeFiles/compile_and_link.dir/compile_and_link.cpp.o.d"
  "compile_and_link"
  "compile_and_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
