# Empty compiler generated dependencies file for lock_exchange.
# This may be replaced when dependencies are built.
