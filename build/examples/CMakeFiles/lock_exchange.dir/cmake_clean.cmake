file(REMOVE_RECURSE
  "CMakeFiles/lock_exchange.dir/lock_exchange.cpp.o"
  "CMakeFiles/lock_exchange.dir/lock_exchange.cpp.o.d"
  "lock_exchange"
  "lock_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
