file(REMOVE_RECURSE
  "CMakeFiles/ccal_support.dir/support/Check.cpp.o"
  "CMakeFiles/ccal_support.dir/support/Check.cpp.o.d"
  "CMakeFiles/ccal_support.dir/support/Rng.cpp.o"
  "CMakeFiles/ccal_support.dir/support/Rng.cpp.o.d"
  "CMakeFiles/ccal_support.dir/support/Table.cpp.o"
  "CMakeFiles/ccal_support.dir/support/Table.cpp.o.d"
  "CMakeFiles/ccal_support.dir/support/Text.cpp.o"
  "CMakeFiles/ccal_support.dir/support/Text.cpp.o.d"
  "libccal_support.a"
  "libccal_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
