# Empty compiler generated dependencies file for ccal_support.
# This may be replaced when dependencies are built.
