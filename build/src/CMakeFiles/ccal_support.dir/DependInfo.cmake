
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Check.cpp" "src/CMakeFiles/ccal_support.dir/support/Check.cpp.o" "gcc" "src/CMakeFiles/ccal_support.dir/support/Check.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/ccal_support.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/ccal_support.dir/support/Rng.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/ccal_support.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/ccal_support.dir/support/Table.cpp.o.d"
  "/root/repo/src/support/Text.cpp" "src/CMakeFiles/ccal_support.dir/support/Text.cpp.o" "gcc" "src/CMakeFiles/ccal_support.dir/support/Text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
