file(REMOVE_RECURSE
  "libccal_support.a"
)
