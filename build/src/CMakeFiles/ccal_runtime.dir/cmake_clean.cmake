file(REMOVE_RECURSE
  "CMakeFiles/ccal_runtime.dir/runtime/GhostLog.cpp.o"
  "CMakeFiles/ccal_runtime.dir/runtime/GhostLog.cpp.o.d"
  "CMakeFiles/ccal_runtime.dir/runtime/RtMcsLock.cpp.o"
  "CMakeFiles/ccal_runtime.dir/runtime/RtMcsLock.cpp.o.d"
  "CMakeFiles/ccal_runtime.dir/runtime/RtQueuingLock.cpp.o"
  "CMakeFiles/ccal_runtime.dir/runtime/RtQueuingLock.cpp.o.d"
  "CMakeFiles/ccal_runtime.dir/runtime/RtSharedQueue.cpp.o"
  "CMakeFiles/ccal_runtime.dir/runtime/RtSharedQueue.cpp.o.d"
  "CMakeFiles/ccal_runtime.dir/runtime/RtTicketLock.cpp.o"
  "CMakeFiles/ccal_runtime.dir/runtime/RtTicketLock.cpp.o.d"
  "libccal_runtime.a"
  "libccal_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
