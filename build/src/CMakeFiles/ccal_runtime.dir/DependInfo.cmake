
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/GhostLog.cpp" "src/CMakeFiles/ccal_runtime.dir/runtime/GhostLog.cpp.o" "gcc" "src/CMakeFiles/ccal_runtime.dir/runtime/GhostLog.cpp.o.d"
  "/root/repo/src/runtime/RtMcsLock.cpp" "src/CMakeFiles/ccal_runtime.dir/runtime/RtMcsLock.cpp.o" "gcc" "src/CMakeFiles/ccal_runtime.dir/runtime/RtMcsLock.cpp.o.d"
  "/root/repo/src/runtime/RtQueuingLock.cpp" "src/CMakeFiles/ccal_runtime.dir/runtime/RtQueuingLock.cpp.o" "gcc" "src/CMakeFiles/ccal_runtime.dir/runtime/RtQueuingLock.cpp.o.d"
  "/root/repo/src/runtime/RtSharedQueue.cpp" "src/CMakeFiles/ccal_runtime.dir/runtime/RtSharedQueue.cpp.o" "gcc" "src/CMakeFiles/ccal_runtime.dir/runtime/RtSharedQueue.cpp.o.d"
  "/root/repo/src/runtime/RtTicketLock.cpp" "src/CMakeFiles/ccal_runtime.dir/runtime/RtTicketLock.cpp.o" "gcc" "src/CMakeFiles/ccal_runtime.dir/runtime/RtTicketLock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
