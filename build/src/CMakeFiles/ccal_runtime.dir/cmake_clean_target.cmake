file(REMOVE_RECURSE
  "libccal_runtime.a"
)
