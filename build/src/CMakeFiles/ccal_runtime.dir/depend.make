# Empty dependencies file for ccal_runtime.
# This may be replaced when dependencies are built.
