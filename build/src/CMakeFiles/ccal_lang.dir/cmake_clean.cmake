file(REMOVE_RECURSE
  "CMakeFiles/ccal_lang.dir/lang/Ast.cpp.o"
  "CMakeFiles/ccal_lang.dir/lang/Ast.cpp.o.d"
  "CMakeFiles/ccal_lang.dir/lang/Interp.cpp.o"
  "CMakeFiles/ccal_lang.dir/lang/Interp.cpp.o.d"
  "CMakeFiles/ccal_lang.dir/lang/Lexer.cpp.o"
  "CMakeFiles/ccal_lang.dir/lang/Lexer.cpp.o.d"
  "CMakeFiles/ccal_lang.dir/lang/Parser.cpp.o"
  "CMakeFiles/ccal_lang.dir/lang/Parser.cpp.o.d"
  "CMakeFiles/ccal_lang.dir/lang/Token.cpp.o"
  "CMakeFiles/ccal_lang.dir/lang/Token.cpp.o.d"
  "CMakeFiles/ccal_lang.dir/lang/TypeCheck.cpp.o"
  "CMakeFiles/ccal_lang.dir/lang/TypeCheck.cpp.o.d"
  "libccal_lang.a"
  "libccal_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
