file(REMOVE_RECURSE
  "libccal_lang.a"
)
