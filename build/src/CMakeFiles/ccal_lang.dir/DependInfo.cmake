
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/Ast.cpp" "src/CMakeFiles/ccal_lang.dir/lang/Ast.cpp.o" "gcc" "src/CMakeFiles/ccal_lang.dir/lang/Ast.cpp.o.d"
  "/root/repo/src/lang/Interp.cpp" "src/CMakeFiles/ccal_lang.dir/lang/Interp.cpp.o" "gcc" "src/CMakeFiles/ccal_lang.dir/lang/Interp.cpp.o.d"
  "/root/repo/src/lang/Lexer.cpp" "src/CMakeFiles/ccal_lang.dir/lang/Lexer.cpp.o" "gcc" "src/CMakeFiles/ccal_lang.dir/lang/Lexer.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/CMakeFiles/ccal_lang.dir/lang/Parser.cpp.o" "gcc" "src/CMakeFiles/ccal_lang.dir/lang/Parser.cpp.o.d"
  "/root/repo/src/lang/Token.cpp" "src/CMakeFiles/ccal_lang.dir/lang/Token.cpp.o" "gcc" "src/CMakeFiles/ccal_lang.dir/lang/Token.cpp.o.d"
  "/root/repo/src/lang/TypeCheck.cpp" "src/CMakeFiles/ccal_lang.dir/lang/TypeCheck.cpp.o" "gcc" "src/CMakeFiles/ccal_lang.dir/lang/TypeCheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
