# Empty compiler generated dependencies file for ccal_lang.
# This may be replaced when dependencies are built.
