file(REMOVE_RECURSE
  "libccal_machine.a"
)
