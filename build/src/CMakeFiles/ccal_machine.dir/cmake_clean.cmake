file(REMOVE_RECURSE
  "CMakeFiles/ccal_machine.dir/machine/CpuLocal.cpp.o"
  "CMakeFiles/ccal_machine.dir/machine/CpuLocal.cpp.o.d"
  "CMakeFiles/ccal_machine.dir/machine/Explorer.cpp.o"
  "CMakeFiles/ccal_machine.dir/machine/Explorer.cpp.o.d"
  "CMakeFiles/ccal_machine.dir/machine/HardwareMachine.cpp.o"
  "CMakeFiles/ccal_machine.dir/machine/HardwareMachine.cpp.o.d"
  "CMakeFiles/ccal_machine.dir/machine/MultiCore.cpp.o"
  "CMakeFiles/ccal_machine.dir/machine/MultiCore.cpp.o.d"
  "CMakeFiles/ccal_machine.dir/machine/Soundness.cpp.o"
  "CMakeFiles/ccal_machine.dir/machine/Soundness.cpp.o.d"
  "libccal_machine.a"
  "libccal_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
