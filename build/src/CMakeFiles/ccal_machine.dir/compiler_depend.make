# Empty compiler generated dependencies file for ccal_machine.
# This may be replaced when dependencies are built.
