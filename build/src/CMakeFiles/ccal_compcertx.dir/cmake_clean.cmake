file(REMOVE_RECURSE
  "CMakeFiles/ccal_compcertx.dir/compcertx/CodeGen.cpp.o"
  "CMakeFiles/ccal_compcertx.dir/compcertx/CodeGen.cpp.o.d"
  "CMakeFiles/ccal_compcertx.dir/compcertx/Linker.cpp.o"
  "CMakeFiles/ccal_compcertx.dir/compcertx/Linker.cpp.o.d"
  "CMakeFiles/ccal_compcertx.dir/compcertx/Optimize.cpp.o"
  "CMakeFiles/ccal_compcertx.dir/compcertx/Optimize.cpp.o.d"
  "CMakeFiles/ccal_compcertx.dir/compcertx/StackMerge.cpp.o"
  "CMakeFiles/ccal_compcertx.dir/compcertx/StackMerge.cpp.o.d"
  "CMakeFiles/ccal_compcertx.dir/compcertx/Validate.cpp.o"
  "CMakeFiles/ccal_compcertx.dir/compcertx/Validate.cpp.o.d"
  "libccal_compcertx.a"
  "libccal_compcertx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_compcertx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
