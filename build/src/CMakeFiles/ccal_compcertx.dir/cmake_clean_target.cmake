file(REMOVE_RECURSE
  "libccal_compcertx.a"
)
