# Empty compiler generated dependencies file for ccal_compcertx.
# This may be replaced when dependencies are built.
