
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compcertx/CodeGen.cpp" "src/CMakeFiles/ccal_compcertx.dir/compcertx/CodeGen.cpp.o" "gcc" "src/CMakeFiles/ccal_compcertx.dir/compcertx/CodeGen.cpp.o.d"
  "/root/repo/src/compcertx/Linker.cpp" "src/CMakeFiles/ccal_compcertx.dir/compcertx/Linker.cpp.o" "gcc" "src/CMakeFiles/ccal_compcertx.dir/compcertx/Linker.cpp.o.d"
  "/root/repo/src/compcertx/Optimize.cpp" "src/CMakeFiles/ccal_compcertx.dir/compcertx/Optimize.cpp.o" "gcc" "src/CMakeFiles/ccal_compcertx.dir/compcertx/Optimize.cpp.o.d"
  "/root/repo/src/compcertx/StackMerge.cpp" "src/CMakeFiles/ccal_compcertx.dir/compcertx/StackMerge.cpp.o" "gcc" "src/CMakeFiles/ccal_compcertx.dir/compcertx/StackMerge.cpp.o.d"
  "/root/repo/src/compcertx/Validate.cpp" "src/CMakeFiles/ccal_compcertx.dir/compcertx/Validate.cpp.o" "gcc" "src/CMakeFiles/ccal_compcertx.dir/compcertx/Validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccal_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_lasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
