
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threads/CondVar.cpp" "src/CMakeFiles/ccal_threads.dir/threads/CondVar.cpp.o" "gcc" "src/CMakeFiles/ccal_threads.dir/threads/CondVar.cpp.o.d"
  "/root/repo/src/threads/Ipc.cpp" "src/CMakeFiles/ccal_threads.dir/threads/Ipc.cpp.o" "gcc" "src/CMakeFiles/ccal_threads.dir/threads/Ipc.cpp.o.d"
  "/root/repo/src/threads/Linking.cpp" "src/CMakeFiles/ccal_threads.dir/threads/Linking.cpp.o" "gcc" "src/CMakeFiles/ccal_threads.dir/threads/Linking.cpp.o.d"
  "/root/repo/src/threads/QueuingLock.cpp" "src/CMakeFiles/ccal_threads.dir/threads/QueuingLock.cpp.o" "gcc" "src/CMakeFiles/ccal_threads.dir/threads/QueuingLock.cpp.o.d"
  "/root/repo/src/threads/Sched.cpp" "src/CMakeFiles/ccal_threads.dir/threads/Sched.cpp.o" "gcc" "src/CMakeFiles/ccal_threads.dir/threads/Sched.cpp.o.d"
  "/root/repo/src/threads/ThreadMachine.cpp" "src/CMakeFiles/ccal_threads.dir/threads/ThreadMachine.cpp.o" "gcc" "src/CMakeFiles/ccal_threads.dir/threads/ThreadMachine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccal_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_compcertx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_lasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
