# Empty compiler generated dependencies file for ccal_threads.
# This may be replaced when dependencies are built.
