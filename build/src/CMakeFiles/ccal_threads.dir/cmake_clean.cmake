file(REMOVE_RECURSE
  "CMakeFiles/ccal_threads.dir/threads/CondVar.cpp.o"
  "CMakeFiles/ccal_threads.dir/threads/CondVar.cpp.o.d"
  "CMakeFiles/ccal_threads.dir/threads/Ipc.cpp.o"
  "CMakeFiles/ccal_threads.dir/threads/Ipc.cpp.o.d"
  "CMakeFiles/ccal_threads.dir/threads/Linking.cpp.o"
  "CMakeFiles/ccal_threads.dir/threads/Linking.cpp.o.d"
  "CMakeFiles/ccal_threads.dir/threads/QueuingLock.cpp.o"
  "CMakeFiles/ccal_threads.dir/threads/QueuingLock.cpp.o.d"
  "CMakeFiles/ccal_threads.dir/threads/Sched.cpp.o"
  "CMakeFiles/ccal_threads.dir/threads/Sched.cpp.o.d"
  "CMakeFiles/ccal_threads.dir/threads/ThreadMachine.cpp.o"
  "CMakeFiles/ccal_threads.dir/threads/ThreadMachine.cpp.o.d"
  "libccal_threads.a"
  "libccal_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
