file(REMOVE_RECURSE
  "libccal_threads.a"
)
