
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objects/Harness.cpp" "src/CMakeFiles/ccal_objects.dir/objects/Harness.cpp.o" "gcc" "src/CMakeFiles/ccal_objects.dir/objects/Harness.cpp.o.d"
  "/root/repo/src/objects/Linearize.cpp" "src/CMakeFiles/ccal_objects.dir/objects/Linearize.cpp.o" "gcc" "src/CMakeFiles/ccal_objects.dir/objects/Linearize.cpp.o.d"
  "/root/repo/src/objects/LocalQueue.cpp" "src/CMakeFiles/ccal_objects.dir/objects/LocalQueue.cpp.o" "gcc" "src/CMakeFiles/ccal_objects.dir/objects/LocalQueue.cpp.o.d"
  "/root/repo/src/objects/McsLock.cpp" "src/CMakeFiles/ccal_objects.dir/objects/McsLock.cpp.o" "gcc" "src/CMakeFiles/ccal_objects.dir/objects/McsLock.cpp.o.d"
  "/root/repo/src/objects/ObjectSpec.cpp" "src/CMakeFiles/ccal_objects.dir/objects/ObjectSpec.cpp.o" "gcc" "src/CMakeFiles/ccal_objects.dir/objects/ObjectSpec.cpp.o.d"
  "/root/repo/src/objects/SharedQueue.cpp" "src/CMakeFiles/ccal_objects.dir/objects/SharedQueue.cpp.o" "gcc" "src/CMakeFiles/ccal_objects.dir/objects/SharedQueue.cpp.o.d"
  "/root/repo/src/objects/TicketLock.cpp" "src/CMakeFiles/ccal_objects.dir/objects/TicketLock.cpp.o" "gcc" "src/CMakeFiles/ccal_objects.dir/objects/TicketLock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccal_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_compcertx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_lasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
