file(REMOVE_RECURSE
  "libccal_objects.a"
)
