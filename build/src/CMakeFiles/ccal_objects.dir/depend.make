# Empty dependencies file for ccal_objects.
# This may be replaced when dependencies are built.
