file(REMOVE_RECURSE
  "CMakeFiles/ccal_objects.dir/objects/Harness.cpp.o"
  "CMakeFiles/ccal_objects.dir/objects/Harness.cpp.o.d"
  "CMakeFiles/ccal_objects.dir/objects/Linearize.cpp.o"
  "CMakeFiles/ccal_objects.dir/objects/Linearize.cpp.o.d"
  "CMakeFiles/ccal_objects.dir/objects/LocalQueue.cpp.o"
  "CMakeFiles/ccal_objects.dir/objects/LocalQueue.cpp.o.d"
  "CMakeFiles/ccal_objects.dir/objects/McsLock.cpp.o"
  "CMakeFiles/ccal_objects.dir/objects/McsLock.cpp.o.d"
  "CMakeFiles/ccal_objects.dir/objects/ObjectSpec.cpp.o"
  "CMakeFiles/ccal_objects.dir/objects/ObjectSpec.cpp.o.d"
  "CMakeFiles/ccal_objects.dir/objects/SharedQueue.cpp.o"
  "CMakeFiles/ccal_objects.dir/objects/SharedQueue.cpp.o.d"
  "CMakeFiles/ccal_objects.dir/objects/TicketLock.cpp.o"
  "CMakeFiles/ccal_objects.dir/objects/TicketLock.cpp.o.d"
  "libccal_objects.a"
  "libccal_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
