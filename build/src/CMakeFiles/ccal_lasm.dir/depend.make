# Empty dependencies file for ccal_lasm.
# This may be replaced when dependencies are built.
