
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lasm/Instr.cpp" "src/CMakeFiles/ccal_lasm.dir/lasm/Instr.cpp.o" "gcc" "src/CMakeFiles/ccal_lasm.dir/lasm/Instr.cpp.o.d"
  "/root/repo/src/lasm/Program.cpp" "src/CMakeFiles/ccal_lasm.dir/lasm/Program.cpp.o" "gcc" "src/CMakeFiles/ccal_lasm.dir/lasm/Program.cpp.o.d"
  "/root/repo/src/lasm/Vm.cpp" "src/CMakeFiles/ccal_lasm.dir/lasm/Vm.cpp.o" "gcc" "src/CMakeFiles/ccal_lasm.dir/lasm/Vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ccal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
