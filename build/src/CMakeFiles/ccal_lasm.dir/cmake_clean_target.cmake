file(REMOVE_RECURSE
  "libccal_lasm.a"
)
