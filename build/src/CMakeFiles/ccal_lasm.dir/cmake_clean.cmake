file(REMOVE_RECURSE
  "CMakeFiles/ccal_lasm.dir/lasm/Instr.cpp.o"
  "CMakeFiles/ccal_lasm.dir/lasm/Instr.cpp.o.d"
  "CMakeFiles/ccal_lasm.dir/lasm/Program.cpp.o"
  "CMakeFiles/ccal_lasm.dir/lasm/Program.cpp.o.d"
  "CMakeFiles/ccal_lasm.dir/lasm/Vm.cpp.o"
  "CMakeFiles/ccal_lasm.dir/lasm/Vm.cpp.o.d"
  "libccal_lasm.a"
  "libccal_lasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_lasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
