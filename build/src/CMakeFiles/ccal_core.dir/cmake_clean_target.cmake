file(REMOVE_RECURSE
  "libccal_core.a"
)
