file(REMOVE_RECURSE
  "CMakeFiles/ccal_core.dir/core/Calculus.cpp.o"
  "CMakeFiles/ccal_core.dir/core/Calculus.cpp.o.d"
  "CMakeFiles/ccal_core.dir/core/Certificate.cpp.o"
  "CMakeFiles/ccal_core.dir/core/Certificate.cpp.o.d"
  "CMakeFiles/ccal_core.dir/core/EnvContext.cpp.o"
  "CMakeFiles/ccal_core.dir/core/EnvContext.cpp.o.d"
  "CMakeFiles/ccal_core.dir/core/Event.cpp.o"
  "CMakeFiles/ccal_core.dir/core/Event.cpp.o.d"
  "CMakeFiles/ccal_core.dir/core/LayerInterface.cpp.o"
  "CMakeFiles/ccal_core.dir/core/LayerInterface.cpp.o.d"
  "CMakeFiles/ccal_core.dir/core/Log.cpp.o"
  "CMakeFiles/ccal_core.dir/core/Log.cpp.o.d"
  "CMakeFiles/ccal_core.dir/core/RelyGuarantee.cpp.o"
  "CMakeFiles/ccal_core.dir/core/RelyGuarantee.cpp.o.d"
  "CMakeFiles/ccal_core.dir/core/Replay.cpp.o"
  "CMakeFiles/ccal_core.dir/core/Replay.cpp.o.d"
  "CMakeFiles/ccal_core.dir/core/Simulation.cpp.o"
  "CMakeFiles/ccal_core.dir/core/Simulation.cpp.o.d"
  "CMakeFiles/ccal_core.dir/core/Strategy.cpp.o"
  "CMakeFiles/ccal_core.dir/core/Strategy.cpp.o.d"
  "libccal_core.a"
  "libccal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
