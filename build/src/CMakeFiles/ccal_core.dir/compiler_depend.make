# Empty compiler generated dependencies file for ccal_core.
# This may be replaced when dependencies are built.
