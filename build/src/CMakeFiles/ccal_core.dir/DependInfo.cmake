
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Calculus.cpp" "src/CMakeFiles/ccal_core.dir/core/Calculus.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/Calculus.cpp.o.d"
  "/root/repo/src/core/Certificate.cpp" "src/CMakeFiles/ccal_core.dir/core/Certificate.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/Certificate.cpp.o.d"
  "/root/repo/src/core/EnvContext.cpp" "src/CMakeFiles/ccal_core.dir/core/EnvContext.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/EnvContext.cpp.o.d"
  "/root/repo/src/core/Event.cpp" "src/CMakeFiles/ccal_core.dir/core/Event.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/Event.cpp.o.d"
  "/root/repo/src/core/LayerInterface.cpp" "src/CMakeFiles/ccal_core.dir/core/LayerInterface.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/LayerInterface.cpp.o.d"
  "/root/repo/src/core/Log.cpp" "src/CMakeFiles/ccal_core.dir/core/Log.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/Log.cpp.o.d"
  "/root/repo/src/core/RelyGuarantee.cpp" "src/CMakeFiles/ccal_core.dir/core/RelyGuarantee.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/RelyGuarantee.cpp.o.d"
  "/root/repo/src/core/Replay.cpp" "src/CMakeFiles/ccal_core.dir/core/Replay.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/Replay.cpp.o.d"
  "/root/repo/src/core/Simulation.cpp" "src/CMakeFiles/ccal_core.dir/core/Simulation.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/Simulation.cpp.o.d"
  "/root/repo/src/core/Strategy.cpp" "src/CMakeFiles/ccal_core.dir/core/Strategy.cpp.o" "gcc" "src/CMakeFiles/ccal_core.dir/core/Strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
