file(REMOVE_RECURSE
  "libccal_mem.a"
)
