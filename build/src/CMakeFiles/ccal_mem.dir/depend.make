# Empty dependencies file for ccal_mem.
# This may be replaced when dependencies are built.
