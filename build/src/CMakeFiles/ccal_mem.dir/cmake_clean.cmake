file(REMOVE_RECURSE
  "CMakeFiles/ccal_mem.dir/mem/AlgebraicMemory.cpp.o"
  "CMakeFiles/ccal_mem.dir/mem/AlgebraicMemory.cpp.o.d"
  "CMakeFiles/ccal_mem.dir/mem/PushPull.cpp.o"
  "CMakeFiles/ccal_mem.dir/mem/PushPull.cpp.o.d"
  "libccal_mem.a"
  "libccal_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccal_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
