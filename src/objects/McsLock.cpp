//===- objects/McsLock.cpp - Certified MCS lock -------------------------------===//

#include "objects/McsLock.h"

#include "machine/CpuLocal.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "objects/TicketLock.h" // for makeTicketClient (same client shape)

using namespace ccal;

Replayer<McsState> ccal::makeMcsReplayer() {
  auto Step = [](const McsState &S,
                 const Event &E) -> std::optional<McsState> {
    McsState N = S;
    if (E.Kind == "mcs_init") {
      N.Busy[E.Tid] = 1;
      N.Next[E.Tid] = -1;
      return N;
    }
    if (E.Kind == "mcs_swap_tail") {
      N.Tail = E.Tid;
      return N;
    }
    if (E.Kind == "mcs_set_next") {
      if (E.Args.size() != 1 || E.Args[0] < 0)
        return std::nullopt;
      N.Next[static_cast<ThreadId>(E.Args[0])] = E.Tid;
      return N;
    }
    if (E.Kind == "mcs_get_busy" || E.Kind == "mcs_get_next")
      return N; // reads only append evidence
    if (E.Kind == "mcs_cas_tail") {
      if (E.Args.size() != 1)
        return std::nullopt;
      bool Success = E.Args[0] != 0;
      if (Success) {
        if (S.Tail != static_cast<std::int64_t>(E.Tid))
          return std::nullopt; // claimed success without being tail
        if (!S.Holder || *S.Holder != E.Tid)
          return std::nullopt; // release commit by non-holder
        N.Tail = -1;
        N.Holder.reset();
      } else if (S.Tail == static_cast<std::int64_t>(E.Tid)) {
        return std::nullopt; // claimed failure while being tail
      }
      return N;
    }
    if (E.Kind == "mcs_clear_busy") {
      if (E.Args.size() != 1 || E.Args[0] < 0)
        return std::nullopt;
      if (!S.Holder || *S.Holder != E.Tid)
        return std::nullopt; // handoff by non-holder
      N.Busy[static_cast<ThreadId>(E.Args[0])] = 0;
      N.Holder.reset();
      return N;
    }
    if (E.Kind == "hold") {
      if (S.Holder.has_value())
        return std::nullopt; // mutual exclusion violated
      N.Holder = E.Tid;
      return N;
    }
    return N;
  };
  Replayer<McsState> R(McsState{}, std::move(Step));
  R.onlyKinds({KindId("mcs_init"), KindId("mcs_swap_tail"),
               KindId("mcs_set_next"), KindId("mcs_get_busy"),
               KindId("mcs_get_next"), KindId("mcs_cas_tail"),
               KindId("mcs_clear_busy"), KindId("hold")});
  return R;
}

McsLockLayers ccal::makeMcsLockLayers() {
  McsLockLayers Out;
  Replayer<McsState> R = makeMcsReplayer();

  auto L0 = makeInterface("L0_mcs");
  // The MCS queue (tail/busy/next/holder) is one intertwined structure, so
  // every mutating primitive gets the coarse read+write footprint over the
  // single location "mcs"; only the two pure reads (get_busy/get_next)
  // commute with each other.  Coarser than necessary, but sound — and the
  // lock's realistic contention means there is little to reduce anyway.
  Footprint McsRw = Footprint::of({"mcs"}, {"mcs"});
  Footprint McsRd = Footprint::of({"mcs"}, {});
  // mcs_init: busy = 1, next = nil for the caller's node.
  L0->addShared("mcs_init", makeEventPrim("mcs_init"), McsRw);
  // mcs_swap_tail: atomically tail <- self, returns the previous tail.
  L0->addShared("mcs_swap_tail",
                [R](const PrimCall &Call) -> std::optional<PrimResult> {
                  std::optional<McsState> S = R.replay(*Call.L);
                  if (!S)
                    return std::nullopt;
                  PrimResult Res;
                  Res.Ret = S->Tail;
                  Res.Events.push_back(
                      Event(Call.Tid, "mcs_swap_tail"));
                  return Res;
                },
                McsRw);
  L0->addShared("mcs_set_next", makeEventPrim("mcs_set_next"), McsRw);
  L0->addShared("mcs_get_busy",
                [R](const PrimCall &Call) -> std::optional<PrimResult> {
                  std::optional<McsState> S = R.replay(*Call.L);
                  if (!S)
                    return std::nullopt;
                  PrimResult Res;
                  auto It = S->Busy.find(Call.Tid);
                  Res.Ret = It == S->Busy.end() ? 1 : It->second;
                  Res.Events.push_back(Event(Call.Tid, "mcs_get_busy"));
                  return Res;
                },
                McsRd);
  L0->addShared("mcs_get_next",
                [R](const PrimCall &Call) -> std::optional<PrimResult> {
                  std::optional<McsState> S = R.replay(*Call.L);
                  if (!S)
                    return std::nullopt;
                  PrimResult Res;
                  auto It = S->Next.find(Call.Tid);
                  Res.Ret = It == S->Next.end() ? -1 : It->second;
                  Res.Events.push_back(Event(Call.Tid, "mcs_get_next"));
                  return Res;
                },
                McsRd);
  // mcs_cas_tail: CAS(tail, self, nil); the success bit is recorded in the
  // event so the relation can treat a successful CAS as the release commit.
  L0->addShared("mcs_cas_tail",
                [R](const PrimCall &Call) -> std::optional<PrimResult> {
                  std::optional<McsState> S = R.replay(*Call.L);
                  if (!S)
                    return std::nullopt;
                  bool Success =
                      S->Tail == static_cast<std::int64_t>(Call.Tid);
                  PrimResult Res;
                  Res.Ret = Success ? 1 : 0;
                  Res.Events.push_back(Event(Call.Tid, "mcs_cas_tail",
                                             {Success ? 1 : 0}));
                  return Res;
                },
                McsRw);
  L0->addShared("mcs_clear_busy", makeEventPrim("mcs_clear_busy"), McsRw);
  L0->addShared("hold", makeEventPrim("hold"), McsRw);
  L0->addShared("f", makeFetchIncPrim("f"), Footprint::of({"f"}, {"f"}));
  L0->addShared("g", makeFetchIncPrim("g"), Footprint::of({"g"}, {"g"}));
  Out.L0 = L0;

  Out.M1 = parseModuleOrDie("M1_mcs", R"(
    extern void mcs_init();
    extern int mcs_swap_tail();
    extern void mcs_set_next(int prev);
    extern int mcs_get_busy();
    extern int mcs_get_next();
    extern int mcs_cas_tail();
    extern void mcs_clear_busy(int t);
    extern void hold();

    void acq() {
      mcs_init();
      int prev = mcs_swap_tail();
      if (prev != -1) {
        mcs_set_next(prev);
        while (mcs_get_busy() != 0) {}
      }
      hold();
    }

    void rel() {
      int nxt = mcs_get_next();
      if (nxt == -1) {
        if (mcs_cas_tail() == 1) {
          return;
        }
        while (nxt == -1) {
          nxt = mcs_get_next();
        }
      }
      mcs_clear_busy(nxt);
    }
  )");
  typeCheckOrDie(Out.M1);

  // Same atomic overlay as the ticket lock (§6: interchangeable).
  auto L1 = makeInterface("L1");
  addAtomicLock(*L1, "acq", "rel");
  L1->addShared("f", makeFetchIncPrim("f"), Footprint::of({"f"}, {"f"}));
  L1->addShared("g", makeFetchIncPrim("g"), Footprint::of({"g"}, {"g"}));
  Out.L1 = L1;

  Out.R1 = EventMap("R1_mcs", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "hold")
      return Event(E.Tid, "acq");
    if (E.Kind == "mcs_cas_tail")
      return E.Args == std::vector<std::int64_t>{1}
                 ? std::optional<Event>(Event(E.Tid, "rel"))
                 : std::nullopt;
    if (E.Kind == "mcs_clear_busy")
      return Event(E.Tid, "rel");
    if (E.Kind == "mcs_init" || E.Kind == "mcs_swap_tail" ||
        E.Kind == "mcs_set_next" || E.Kind == "mcs_get_busy" ||
        E.Kind == "mcs_get_next")
      return std::nullopt;
    return E;
  });
  return Out;
}

McsLockLayers ccal::makeMcsLockLayersRa() {
  McsLockLayers Out = makeMcsLockLayers();

  // Same semantics, re-registered under ordering-annotated footprints
  // mirroring RtMcsLock.h: Tail.exchange(acq_rel), Prev->Next.store
  // (release, but the coarse-location RMW shape makes it acq_rel here),
  // Locked.load(acquire) spin, release CAS acq_rel.  Every queue mutation
  // being a release of the whole coarse "mcs" location is what keeps the
  // acquire chain unbroken at two CPUs.
  const Footprint McsRw =
      Footprint::of({"mcs"}, {"mcs"})
          .withOrders(MemOrder::AcqRel, MemOrder::AcqRel);
  const Footprint McsSpin =
      Footprint::of({"mcs"}, {})
          .withOrders(MemOrder::Acquire, MemOrder::SeqCst)
          .fairRead();
  auto PlainCounter = [](const char *Loc) {
    return Footprint::of({Loc}, {Loc})
        .withOrders(MemOrder::Relaxed, MemOrder::Relaxed)
        .nonAtomic();
  };

  auto L0 = makeInterface("L0ra_mcs");
  for (const std::string &N : Out.L0->primNames()) {
    const Primitive *P = Out.L0->lookup(N);
    Footprint F;
    if (N == "f" || N == "g")
      F = PlainCounter(N.c_str());
    else if (N == "mcs_get_busy" || N == "mcs_get_next")
      F = McsSpin; // the two spin loops: memory-fair acquire loads
    else
      F = McsRw;
    L0->addShared(N, P->Sem, F);
  }
  Out.L0 = L0;
  return Out;
}

std::string ccal::mcsMutexInvariant(const MultiCoreMachine &M) {
  static const Replayer<McsState> R = makeMcsReplayer();
  if (!R.wellFormed(M.log()))
    return "mcs replay stuck: mutual exclusion or handoff protocol violated";
  return "";
}

ObjectHarness ccal::makeMcsLockHarness(unsigned NumCpus, unsigned Rounds) {
  McsLockLayers Layers = makeMcsLockLayers();
  // Owned modules, not function-local statics — see makeTicketLockHarness.
  auto M1 = std::make_shared<ClightModule>(cloneModule(Layers.M1));
  auto Client = std::make_shared<ClightModule>(
      makeTicketClient()); // same acq/f/g/rel client shape

  ObjectHarness H;
  H.Owned = {M1, Client};
  H.ObjectName = "mcs_lock";
  H.Underlay = Layers.L0;
  H.Modules = {M1.get()};
  H.Overlay = Layers.L1;
  H.R = Layers.R1;
  H.Client = Client.get();
  for (unsigned C = 1; C <= NumCpus; ++C) {
    std::vector<CpuWorkItem> Items;
    for (unsigned I = 0; I != Rounds; ++I)
      Items.push_back({"t_main", {}});
    H.Work.emplace(C, std::move(Items));
  }
  H.ImplOpts.FairnessBound = 2;
  H.ImplOpts.MaxSteps = 512;
  H.ImplOpts.Invariant = mcsMutexInvariant;
  H.ImplOpts.InvariantName = "mcs.mutex";
  H.SpecOpts.FairnessBound = 1u << 20;
  H.SpecOpts.MaxSteps = 512;
  return H;
}

HarnessOutcome ccal::certifyMcsLock(unsigned NumCpus, unsigned Rounds) {
  return runObjectHarness(makeMcsLockHarness(NumCpus, Rounds));
}

ObjectHarness ccal::makeMcsLockHarnessRa(unsigned NumCpus,
                                         unsigned Rounds) {
  McsLockLayers Layers = makeMcsLockLayersRa();
  auto M1 = std::make_shared<ClightModule>(cloneModule(Layers.M1));
  auto Client = std::make_shared<ClightModule>(makeTicketClient());

  ObjectHarness H;
  H.Owned = {M1, Client};
  H.ObjectName = "mcs_lock_ra";
  H.Underlay = Layers.L0;
  H.Modules = {M1.get()};
  H.Overlay = Layers.L1;
  H.R = Layers.R1;
  H.Client = Client.get();
  for (unsigned C = 1; C <= NumCpus; ++C) {
    std::vector<CpuWorkItem> Items;
    for (unsigned I = 0; I != Rounds; ++I)
      Items.push_back({"t_main", {}});
    H.Work.emplace(C, std::move(Items));
  }
  H.ImplOpts.FairnessBound = 2;
  H.ImplOpts.MaxSteps = 512;
  H.ImplOpts.Invariant = mcsMutexInvariant;
  H.ImplOpts.InvariantName = "mcs.mutex";
  H.SpecOpts.FairnessBound = 1u << 20;
  H.SpecOpts.MaxSteps = 512;
  H.ImplModel = raMemory();
  return H;
}

HarnessOutcome ccal::certifyMcsLockRa(unsigned NumCpus, unsigned Rounds) {
  return runObjectHarness(makeMcsLockHarnessRa(NumCpus, Rounds));
}
