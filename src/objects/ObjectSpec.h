//===- objects/ObjectSpec.h - Atomic object specifications -----*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for *atomic* overlay interfaces: each method call appends
/// exactly one event and computes its return value by replaying the log —
/// the shape of every high-level strategy in the paper (§2: "each
/// invocation produces exactly one event in the log").  Methods may also be
/// blocking (acq on a held lock) or refuse a call outright (rel by a
/// non-holder: a protocol violation that makes the spec machine stuck).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBJECTS_OBJECTSPEC_H
#define CCAL_OBJECTS_OBJECTSPEC_H

#include "core/LayerInterface.h"
#include "core/Replay.h"

#include <functional>
#include <optional>

namespace ccal {

/// What an atomic method does once the event is (tentatively) appended.
struct AtomicOutcome {
  enum class Kind {
    Ok,      ///< event committed, Ret returned
    Blocked, ///< cannot proceed yet; retried when the log grows
    Stuck,   ///< protocol violation; the machine faults
  };
  Kind K = Kind::Ok;
  std::int64_t Ret = 0;

  static AtomicOutcome ok(std::int64_t Ret = 0) { return {Kind::Ok, Ret}; }
  static AtomicOutcome blocked() { return {Kind::Blocked, 0}; }
  static AtomicOutcome stuck() { return {Kind::Stuck, 0}; }
};

/// Semantics of one atomic method: \p Prefix is the log *before* the call;
/// the event `Tid.Name(Args)` is appended by the machine iff the outcome is
/// Ok.
using AtomicSemantics = std::function<AtomicOutcome(
    ThreadId Tid, const std::vector<std::int64_t> &Args, const Log &Prefix)>;

/// Installs an atomic method into interface \p L: a shared primitive
/// emitting the single event `tid.Name(args)`.  \p Foot declares the
/// method's footprint for the Explorer's partial-order reduction (see
/// core/Footprint.h for the contract it must honor — in particular, the
/// Reads must cover everything the semantics replays from the log,
/// including its blocking condition); the default opaque footprint is
/// always sound.
void addAtomicMethod(LayerInterface &L, const std::string &Name,
                     AtomicSemantics Sem,
                     Footprint Foot = Footprint::opaque());

/// Abstract lock state replayed from atomic `AcqKind`/`RelKind` events —
/// shared by the ticket and MCS lock specifications ("both share the same
/// high-level atomic specification", §6).
struct AbstractLockState {
  std::optional<ThreadId> Holder;
  std::uint64_t Acquisitions = 0;
};

/// Replayer over atomic lock events; stuck when acq happens while held or
/// rel by a non-holder (mutual exclusion as a replay invariant).
Replayer<AbstractLockState> makeAbstractLockReplayer(std::string AcqKind,
                                                     std::string RelKind);

/// Installs blocking atomic `acq`/`rel` methods over the abstract lock
/// replayer into \p L.  Both methods read and write the single abstract
/// location `lock.<AcqKind>` (acq's blocking condition reads the holder,
/// its event writes it; rel likewise), so two operations on the same lock
/// never commute while operations on distinct locks always do.
void addAtomicLock(LayerInterface &L, const std::string &AcqKind,
                   const std::string &RelKind);

} // namespace ccal

#endif // CCAL_OBJECTS_OBJECTSPEC_H
