//===- objects/McsLock.h - Certified MCS lock ------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MCS queue lock (Mellor-Crummey & Scott; verified layer by layer in
/// Kim et al., APLAS'17, using this toolkit — §6 evaluates it alongside the
/// ticket lock).  Each CPU owns a queue node (busy flag + next pointer);
/// acquisition swaps itself into the shared tail and spins on its *own*
/// flag — the cache-local spinning that makes MCS scale (§6's motivation).
///
/// Crucially, the MCS lock refines the *same* atomic interface L1 as the
/// ticket lock, so the two "can be freely interchanged without affecting
/// any proof in the higher-level modules using locks" (§6) — the mcs tests
/// re-certify the shared queue over the MCS lock to demonstrate exactly
/// that.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBJECTS_MCSLOCK_H
#define CCAL_OBJECTS_MCSLOCK_H

#include "objects/Harness.h"
#include "objects/ObjectSpec.h"

namespace ccal {

/// The MCS node/tail state replayed from L0_mcs events.
struct McsState {
  std::int64_t Tail = -1;
  std::map<ThreadId, std::int64_t> Busy; ///< spin flag per CPU (1 = wait)
  std::map<ThreadId, std::int64_t> Next; ///< successor per CPU (-1 = none)
  std::optional<ThreadId> Holder;
};

/// Replays the MCS state; stuck on protocol violations (CAS success
/// without being tail, hold while held, ...).
Replayer<McsState> makeMcsReplayer();

/// All MCS layer pieces; the overlay L1 and relation target the same
/// atomic acq/rel events as the ticket lock.
struct McsLockLayers {
  LayerPtr L0;
  ClightModule M1;
  LayerPtr L1;
  EventMap R1;
};

McsLockLayers makeMcsLockLayers();

/// Mutual-exclusion invariant over the implementation machine.
std::string mcsMutexInvariant(const MultiCoreMachine &M);

/// Builds (without running) the harness certifyMcsLock runs — see
/// makeTicketLockHarness for why factories exist.
ObjectHarness makeMcsLockHarness(unsigned NumCpus, unsigned Rounds = 1);

/// Certifies `L0_mcs[{1..NumCpus}] |- mcs_lock : L1[{1..NumCpus}]`.
HarnessOutcome certifyMcsLock(unsigned NumCpus, unsigned Rounds = 1);

/// Release/acquire variant, annotated after the runtime lock
/// (src/runtime/RtMcsLock.h): queue mutations are acq_rel RMWs over the
/// coarse "mcs" location, the two spins (busy flag during acquire, next
/// pointer during release handoff) are memory-fair acquire loads, and f/g
/// are plain relaxed non-atomic counters protected by the lock.  The
/// coarse single-location footprint makes every queue write a release of
/// the *whole* queue, which keeps the synchronization chain intact at two
/// CPUs; see DESIGN.md §13 for why finer RA precision would need
/// per-field locations.  Layer name "L0ra_mcs" keeps certificates
/// disjoint from the SC ones.
McsLockLayers makeMcsLockLayersRa();

/// The RA harness: implementation machine under raMemory(), SC spec.
ObjectHarness makeMcsLockHarnessRa(unsigned NumCpus, unsigned Rounds = 1);

/// Certifies the MCS lock under release/acquire memory.
HarnessOutcome certifyMcsLockRa(unsigned NumCpus, unsigned Rounds = 1);

} // namespace ccal

#endif // CCAL_OBJECTS_MCSLOCK_H
