//===- objects/TicketLock.h - Certified ticket lock ------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (§2, §4.1): the ticket lock.
///
///   L0:  FAI_t (fetch the next ticket), get_n (read "now serving"),
///        inc_n (serve the next ticket), hold (announce acquisition),
///        plus pass-through f and g — all atomic x86-level primitives whose
///        values replay from the log (Rticket).
///   M1:  acq/rel in ClightX, verbatim Fig. 3.
///   L1:  atomic blocking acq / rel (+ f, g).
///   R1:  i.hold -> i.acq, i.inc_n -> i.rel, other lock events erased —
///        exactly the relation of §2.
///
/// certifyTicketLock() runs the full §2/Fig. 5 story for a Fig. 3-style
/// client and returns the certified layer `L0[D] |-R1 M1 : L1[D]`.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBJECTS_TICKETLOCK_H
#define CCAL_OBJECTS_TICKETLOCK_H

#include "objects/Harness.h"
#include "objects/ObjectSpec.h"

namespace ccal {

/// The concrete ticket state (next ticket t, now-serving n) replayed from
/// L0 events — the paper's Rticket.
struct TicketState {
  std::int64_t NextTicket = 0; ///< #FAI_t events
  std::int64_t NowServing = 0; ///< #inc_n events
  std::optional<ThreadId> Holder; ///< from hold/inc_n pairing
};

/// Replays the ticket state; stuck when hold/inc_n violate the protocol.
Replayer<TicketState> makeTicketReplayer();

/// Checks the starvation-freedom *order* property of the ticket lock: the
/// k-th acquisition (hold event) must belong to the CPU that fetched the
/// k-th ticket (FIFO handout); returns "" when it holds.
std::string checkTicketFifo(const Log &L);

/// All ticket-lock layer pieces.
struct TicketLockLayers {
  LayerPtr L0;
  ClightModule M1;
  LayerPtr L1;
  EventMap R1;
};

/// Builds L0, M1, L1, and R1.
TicketLockLayers makeTicketLockLayers();

/// The Fig. 3 client: `void t_main() { foo-ish critical section }` — it
/// calls acq, f, g, rel directly so the ticket layer can be certified in
/// isolation; the foo module (M2) of Fig. 3 lives in the quickstart
/// example and tests.
ClightModule makeTicketClient();

/// Mutual-exclusion invariant over the implementation machine, expressed
/// on the replayed ticket state; returns "" when it holds.
std::string ticketMutexInvariant(const MultiCoreMachine &M);

/// Builds (without running) the harness certifyTicketLock runs: callers
/// that need to inject exploration knobs — the certd daemon threads a
/// cancel token and a Threads count into ImplOpts/SpecOpts — start here.
/// The returned harness owns its modules (ObjectHarness::Owned), so
/// concurrent harnesses never share mutable state.
ObjectHarness makeTicketLockHarness(unsigned NumCpus, unsigned Rounds = 1);

/// Certifies `L0[{1..NumCpus}] |- ticket_lock : L1[{1..NumCpus}]` with
/// each CPU performing \p Rounds acquire/release rounds.
HarnessOutcome certifyTicketLock(unsigned NumCpus, unsigned Rounds = 1);

/// Release/acquire variants.  Same primitive semantics and module, but the
/// L0 footprints carry the ordering annotations of the *real* runtime lock
/// (src/runtime/RtTicketLock.h): the ticket grab is an acq_rel RMW, the
/// now-serving spin is an acquire load (memory-fair, the spin-assume of
/// weak-memory model checking), the release bump is acq_rel, and the
/// critical-section counters f/g are plain relaxed non-atomic accesses —
/// protected by the lock, not by their own ordering.  The layer is named
/// "L0ra" ("L0ra_broken" for the twin) so its certificates never alias the
/// SC ones.
///
/// With \p BrokenGrab the ticket grab is demoted to the torn
/// relaxed-load/relaxed-store pair of rt::BrokenTicketLock: under RaMemory
/// the stale read becomes enumerable, two CPUs can fetch the same ticket,
/// and exploration alone must refute the refinement with a duplicate-ticket
/// counterexample (the "ticket.mutex" invariant catches the double hold).
TicketLockLayers makeTicketLockLayersRa(bool BrokenGrab = false);

/// The RA harness: makeTicketLockHarness with the annotated L0 and the
/// implementation machine running under raMemory().  The spec machine
/// stays SC — the atomic overlay has no weak behaviors to model.
ObjectHarness makeTicketLockHarnessRa(unsigned NumCpus, unsigned Rounds = 1,
                                      bool BrokenGrab = false);

/// Certifies the ticket lock under release/acquire memory.
HarnessOutcome certifyTicketLockRa(unsigned NumCpus, unsigned Rounds = 1,
                                   bool BrokenGrab = false);

/// The §4.1 starvation-freedom bound, measured: across *all* schedules of
/// the ticket-lock implementation machine, the worst-case number of events
/// between a CPU's FAI_t (taking a ticket) and its hold (acquiring) must
/// stay within `n x m x #CPU`, where n bounds the events a holder emits
/// per critical section and m is the scheduler fairness bound.
struct StarvationReport {
  std::uint64_t WorstWait = 0; ///< max events between FAI_t and hold
  std::uint64_t Bound = 0;     ///< n * m * #CPU
  std::uint64_t SchedulesExplored = 0;
  bool WithinBound = false;
  bool Ok = false; ///< exploration succeeded
  std::string Violation;
};
StarvationReport checkTicketStarvationFreedom(unsigned NumCpus,
                                              unsigned FairnessBound);

} // namespace ccal

#endif // CCAL_OBJECTS_TICKETLOCK_H
