//===- objects/Harness.cpp - Object layer refinement harness -----------------===//

#include "objects/Harness.h"

#include "compcertx/Linker.h"
#include "support/Check.h"

using namespace ccal;

MachineConfigPtr ObjectHarness::implConfig() const {
  CCAL_CHECK(Client != nullptr, "harness needs a client module");
  std::vector<const ClightModule *> All;
  All.push_back(Client);
  for (const ClightModule *M : Modules)
    All.push_back(M);
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = ObjectName + ".impl";
  Cfg->Layer = Underlay;
  Cfg->Program = compileAndLink(ObjectName + ".impl.lasm", All);
  Cfg->Work = Work;
  Cfg->Model = ImplModel;
  return Cfg;
}

MachineConfigPtr ObjectHarness::specConfig() const {
  CCAL_CHECK(Client != nullptr, "harness needs a client module");
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = ObjectName + ".spec";
  Cfg->Layer = Overlay;
  Cfg->Program = compileAndLink(ObjectName + ".spec.lasm", {Client});
  Cfg->Work = Work;
  return Cfg;
}

HarnessOutcome ccal::runObjectHarness(const ObjectHarness &H) {
  HarnessOutcome Out;
  Out.Report = checkContextualRefinement(H.implConfig(), H.specConfig(), H.R,
                                         H.ImplOpts, H.SpecOpts);
  CertPtr Cert = makeMachineCertificate(
      "LogLift", CertifiedLayer::atFocus(H.Underlay->name(), focusOf(H)),
      H.ObjectName, CertifiedLayer::atFocus(H.Overlay->name(), focusOf(H)),
      H.R, Out.Report);
  if (Out.Report.Holds)
    Out.Layer = calculus::fromCertificate(H.Underlay, H.ObjectName,
                                          H.Overlay, focusOf(H),
                                          H.R.name(), Cert);
  else
    Out.Layer.Cert = Cert;

  for (const ClightModule *M : H.Modules)
    Out.ImplLoC += moduleLoC(*M);
  Out.SpecPrimCount = H.Overlay->primNames().size();
  return Out;
}

std::vector<ThreadId> ccal::focusOf(const ObjectHarness &H) {
  std::vector<ThreadId> Out;
  for (const auto &[Tid, Items] : H.Work) {
    (void)Items;
    Out.push_back(Tid);
  }
  return Out;
}

namespace {

std::uint64_t stmtCount(const Stmt &S) {
  std::uint64_t N = 1;
  for (const StmtPtr &C : S.Body)
    N += stmtCount(*C);
  if (S.Then)
    N += stmtCount(*S.Then);
  if (S.Else)
    N += stmtCount(*S.Else);
  return N;
}

} // namespace

std::uint64_t ccal::moduleLoC(const ClightModule &M) {
  std::uint64_t N = 0;
  for (const GlobalDecl &G : M.Globals) {
    (void)G;
    ++N;
  }
  for (const FuncDecl &F : M.Funcs) {
    ++N; // signature
    if (F.Body)
      N += stmtCount(*F.Body);
  }
  return N;
}
