//===- objects/LocalQueue.cpp - Certified local (sequential) queue ------------===//

#include "objects/LocalQueue.h"

#include "compcertx/Validate.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "compcertx/Linker.h"
#include "support/Rng.h"
#include "support/Text.h"

#include <algorithm>

using namespace ccal;

void AbstractLocalQueue::enQ(std::int64_t T) {
  if (T < 0 || T >= LocalQueueCap || contains(T))
    return;
  Items.push_back(T);
}

std::int64_t AbstractLocalQueue::deQ() {
  if (Items.empty())
    return -1;
  std::int64_t T = Items.front();
  Items.pop_front();
  return T;
}

void AbstractLocalQueue::rmQ(std::int64_t T) {
  auto It = std::find(Items.begin(), Items.end(), T);
  if (It != Items.end())
    Items.erase(It);
}

bool AbstractLocalQueue::contains(std::int64_t T) const {
  return std::find(Items.begin(), Items.end(), T) != Items.end();
}

ClightModule ccal::makeLocalQueueModule() {
  ClightModule M = parseModuleOrDie("M_local_queue", R"(
    // Doubly linked queue of TCB indices over index arrays (the concrete
    // representation the paper abstracts into a logical list).
    int q_head = -1;
    int q_tail = -1;
    int q_next[16];
    int q_prev[16];
    int q_inq[16];

    void q_init() {
      q_head = -1;
      q_tail = -1;
      int i = 0;
      while (i < 16) {
        q_next[i] = -1;
        q_prev[i] = -1;
        q_inq[i] = 0;
        i = i + 1;
      }
    }

    void enQ(int t) {
      if (t < 0 || t >= 16) { return; }
      if (q_inq[t] == 1) { return; }
      q_inq[t] = 1;
      q_next[t] = -1;
      q_prev[t] = q_tail;
      if (q_tail == -1) {
        q_head = t;
      } else {
        q_next[q_tail] = t;
      }
      q_tail = t;
    }

    int deQ() {
      if (q_head == -1) { return -1; }
      int t = q_head;
      q_head = q_next[t];
      if (q_head == -1) {
        q_tail = -1;
      } else {
        q_prev[q_head] = -1;
      }
      q_inq[t] = 0;
      q_next[t] = -1;
      q_prev[t] = -1;
      return t;
    }

    void rmQ(int t) {
      if (t < 0 || t >= 16) { return; }
      if (q_inq[t] == 0) { return; }
      if (q_prev[t] == -1) {
        q_head = q_next[t];
      } else {
        q_next[q_prev[t]] = q_next[t];
      }
      if (q_next[t] == -1) {
        q_tail = q_prev[t];
      } else {
        q_prev[q_next[t]] = q_prev[t];
      }
      q_inq[t] = 0;
      q_next[t] = -1;
      q_prev[t] = -1;
    }

    int q_len() {
      int n = 0;
      int i = q_head;
      while (i != -1) {
        n = n + 1;
        i = q_next[i];
      }
      return n;
    }

    int q_head_val() { return q_head; }
  )");
  typeCheckOrDie(M);
  return M;
}

std::string ccal::runLocalQueueDifferential(std::uint64_t Seed,
                                            unsigned NumOps, bool ThroughVm) {
  ClightModule M = makeLocalQueueModule();
  AbstractLocalQueue Model;
  Rng R(Seed);

  PrimHandler NoPrims = [](const std::string &,
                           const std::vector<std::int64_t> &)
      -> std::optional<std::int64_t> { return std::nullopt; };

  // Interpreter state persists across calls; the VM path replays the whole
  // op prefix each call on fresh globals... that would be O(n^2), so the
  // VM path instead drives one persistent global image.
  Interp Ref(M, NoPrims);
  AsmProgramPtr Compiled;
  std::vector<std::int64_t> VmGlobals;
  if (ThroughVm) {
    Compiled = compileAndLink("local_queue.lasm", {&M});
    VmGlobals = Compiled->initialGlobals();
  }

  auto CallImpl =
      [&](const std::string &Fn,
          std::vector<std::int64_t> Args) -> std::optional<std::int64_t> {
    if (!ThroughVm)
      return Ref.call(Fn, std::move(Args));
    Vm Machine(Compiled);
    Machine.start(Fn, std::move(Args));
    Vm::Status St = Machine.run(VmGlobals, 1u << 20);
    if (St != Vm::Status::Done)
      return std::nullopt;
    return Machine.result();
  };

  if (!CallImpl("q_init", {}))
    return "q_init failed";

  for (unsigned I = 0; I != NumOps; ++I) {
    unsigned Kind = static_cast<unsigned>(R.below(5));
    std::int64_t T = R.range(-1, LocalQueueCap); // includes invalid edges
    std::optional<std::int64_t> Got;
    std::int64_t Want = 0;
    std::string OpName;
    switch (Kind) {
    case 0:
      OpName = strFormat("enQ(%lld)", static_cast<long long>(T));
      Got = CallImpl("enQ", {T});
      Model.enQ(T);
      break;
    case 1:
      OpName = "deQ()";
      Want = Model.deQ();
      Got = CallImpl("deQ", {});
      break;
    case 2:
      OpName = strFormat("rmQ(%lld)", static_cast<long long>(T));
      Got = CallImpl("rmQ", {T});
      Model.rmQ(T);
      break;
    case 3:
      OpName = "q_len()";
      Want = Model.size();
      Got = CallImpl("q_len", {});
      break;
    default:
      OpName = "q_head_val()";
      Want = Model.head();
      Got = CallImpl("q_head_val", {});
      break;
    }
    if (!Got)
      return strFormat("op %u (%s): implementation faulted", I,
                       OpName.c_str());
    bool Observes = Kind == 1 || Kind == 3 || Kind == 4;
    if (Observes && *Got != Want)
      return strFormat("op %u (%s): impl %lld vs model %lld", I,
                       OpName.c_str(), static_cast<long long>(*Got),
                       static_cast<long long>(Want));
  }
  return "";
}
