//===- objects/Harness.h - Object layer refinement harness -----*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-object certification harness.  Given an object's underlay
/// interface, its ClightX module(s), its atomic overlay interface, the
/// commit-point relation R, and a client workload, the harness builds the
/// two machines of Thm 2.2 —
///
///   implementation: CompCertX(Client (+) Modules) over the underlay,
///   specification:  CompCertX(Client)             over the overlay
///
/// — explores every schedule of both, checks the contextual refinement,
/// and wraps the evidence into a certified layer usable by the calculus.
/// Extra invariants (mutual exclusion, guarantee conditions) are checked
/// on every implementation state.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBJECTS_HARNESS_H
#define CCAL_OBJECTS_HARNESS_H

#include "core/Calculus.h"
#include "lang/Ast.h"
#include "machine/Soundness.h"

namespace ccal {

/// Everything needed to certify one object layer on one workload.
struct ObjectHarness {
  std::string ObjectName;

  LayerPtr Underlay;
  std::vector<const ClightModule *> Modules; ///< the implementation M
  LayerPtr Overlay;
  EventMap R = EventMap::identity();

  /// Client program P; its calls to overlay methods must be extern
  /// declarations so they stay primitives on the spec machine.
  const ClightModule *Client = nullptr;

  /// Storage backing the raw module pointers above.  The certify*
  /// front-ends used to park their modules in function-local statics,
  /// which two concurrent callers (certd worker threads running the same
  /// job family) would reassign under each other; harness factories
  /// allocate here instead, so each harness owns its modules for exactly
  /// its own lifetime.
  std::vector<std::shared_ptr<ClightModule>> Owned;

  /// Per-CPU client workload (same on both machines).
  std::map<ThreadId, std::vector<CpuWorkItem>> Work;

  ExploreOptions ImplOpts;
  ExploreOptions SpecOpts;

  /// Memory model of the *implementation* machine (null = ScMemory).  The
  /// specification machine is always SC: an atomic overlay has no weak
  /// behaviors to model, so "RA impl refines SC spec" is exactly the
  /// Dalvandi & Dongol statement that every weak execution of the lock
  /// body is some atomic execution of its spec.
  MemoryModelPtr ImplModel;

  /// Builds the two machine configs (exposed for benches/tests).
  MachineConfigPtr implConfig() const;
  MachineConfigPtr specConfig() const;
};

/// Result of certifying an object layer.
struct HarnessOutcome {
  ContextualRefinementReport Report;
  CertifiedLayer Layer; ///< valid only when Report.Holds
  std::uint64_t ImplLoC = 0;
  std::uint64_t SpecPrimCount = 0;
};

/// Runs the harness; aborts only on configuration errors — a failed
/// refinement is reported, not fatal, so tests can assert on negatives.
HarnessOutcome runObjectHarness(const ObjectHarness &H);

/// The focused CPU set of a harness: the CPUs with workloads.
std::vector<ThreadId> focusOf(const ObjectHarness &H);

/// Counts non-empty source lines of a module's functions (a Table 2
/// "Source" analogue; uses the pretty-printed AST, so comments don't
/// count).
std::uint64_t moduleLoC(const ClightModule &M);

} // namespace ccal

#endif // CCAL_OBJECTS_HARNESS_H
