//===- objects/Linearize.cpp - Linearizability search ------------------------===//

#include "objects/Linearize.h"

using namespace ccal;

namespace {

class Search {
public:
  Search(const std::map<ThreadId, std::vector<ObservedOp>> &Histories,
         const SeqSpec &Spec, std::uint64_t MaxNodes, LinearizeResult &Res)
      : Histories(Histories), Spec(Spec), MaxNodes(MaxNodes), Res(Res) {
    for (const auto &[Tid, Ops] : Histories) {
      (void)Ops;
      Pos[Tid] = 0;
    }
  }

  bool dfs(Log &SoFar) {
    if (++Res.NodesExplored > MaxNodes) {
      Res.BudgetExhausted = true;
      return false;
    }
    bool AllDone = true;
    for (const auto &[Tid, Ops] : Histories) {
      size_t &P = Pos[Tid];
      if (P >= Ops.size())
        continue;
      AllDone = false;
      const ObservedOp &Op = Ops[P];
      std::optional<std::int64_t> Expected = Spec(SoFar, Tid, Op);
      if (!Expected || *Expected != Op.Ret)
        continue; // the spec refuses this op here, or returns differently
      SoFar.push_back(Event(Tid, Op.Method, Op.Args));
      ++P;
      if (dfs(SoFar))
        return true;
      --P;
      SoFar.pop_back();
      if (Res.BudgetExhausted)
        return false;
    }
    if (AllDone) {
      Res.Linearizable = true;
      Res.Witness = SoFar;
      return true;
    }
    return false;
  }

private:
  const std::map<ThreadId, std::vector<ObservedOp>> &Histories;
  const SeqSpec &Spec;
  std::uint64_t MaxNodes;
  LinearizeResult &Res;
  std::map<ThreadId, size_t> Pos;
};

} // namespace

LinearizeResult ccal::findLinearization(
    const std::map<ThreadId, std::vector<ObservedOp>> &Histories,
    const SeqSpec &Spec, std::uint64_t MaxNodes) {
  LinearizeResult Res;
  Search S(Histories, Spec, MaxNodes, Res);
  Log SoFar;
  S.dfs(SoFar);
  return Res;
}
