//===- objects/Linearize.cpp - Linearizability search ------------------------===//

#include "objects/Linearize.h"

#include <algorithm>

using namespace ccal;

namespace {

class Search {
public:
  Search(const std::map<ThreadId, std::vector<ObservedOp>> &Histories,
         const SeqSpec &Spec, std::uint64_t MaxNodes,
         const PrecedenceMap *Precedence, const PriorityMap *Priority,
         LinearizeResult &Res)
      : Histories(Histories), Spec(Spec), MaxNodes(MaxNodes),
        Precedence(Precedence), Priority(Priority), Res(Res) {
    for (const auto &[Tid, Ops] : Histories) {
      (void)Ops;
      Pos[Tid] = 0;
    }
  }

  bool dfs(Log &SoFar) {
    if (++Res.NodesExplored > MaxNodes) {
      Res.BudgetExhausted = true;
      return false;
    }
    bool AllDone = true;
    for (ThreadId Tid : candidateOrder()) {
      const std::vector<ObservedOp> &Ops = Histories.find(Tid)->second;
      size_t &P = Pos[Tid];
      if (P >= Ops.size())
        continue;
      AllDone = false;
      if (!precedenceSatisfied(Tid, P))
        continue; // a real-time predecessor is still pending
      const ObservedOp &Op = Ops[P];
      std::optional<std::int64_t> Expected = Spec(SoFar, Tid, Op);
      if (!Expected || *Expected != Op.Ret)
        continue; // the spec refuses this op here, or returns differently
      SoFar.push_back(Event(Tid, Op.Method, Op.Args));
      ++P;
      if (dfs(SoFar))
        return true;
      --P;
      SoFar.pop_back();
      if (Res.BudgetExhausted)
        return false;
    }
    if (AllDone) {
      Res.Linearizable = true;
      Res.Witness = SoFar;
      return true;
    }
    return false;
  }

private:
  /// Thread ids in the order candidates are tried at this node: map order
  /// (deterministic, matches the pre-hint behavior) unless a PriorityMap
  /// ranks each thread's next pending operation.
  std::vector<ThreadId> candidateOrder() const {
    std::vector<ThreadId> Tids;
    Tids.reserve(Histories.size());
    for (const auto &[Tid, Ops] : Histories) {
      (void)Ops;
      Tids.push_back(Tid);
    }
    if (Priority) {
      auto Rank = [this](ThreadId Tid) -> std::uint64_t {
        auto H = Histories.find(Tid);
        size_t P = Pos.find(Tid)->second;
        if (P >= H->second.size())
          return ~std::uint64_t(0);
        auto It = Priority->find(OpRef(Tid, P));
        return It == Priority->end() ? ~std::uint64_t(0) : It->second;
      };
      std::stable_sort(Tids.begin(), Tids.end(),
                       [&Rank](ThreadId A, ThreadId B) {
                         return Rank(A) < Rank(B);
                       });
    }
    return Tids;
  }

  /// True when every operation the real-time order places before
  /// (\p Tid, \p Idx) has already been linearized.
  bool precedenceSatisfied(ThreadId Tid, std::size_t Idx) const {
    if (!Precedence)
      return true;
    auto It = Precedence->find(OpRef(Tid, Idx));
    if (It == Precedence->end())
      return true;
    for (const auto &[PredTid, Count] : It->second) {
      auto P = Pos.find(PredTid);
      if (P == Pos.end() || P->second < Count)
        return false;
    }
    return true;
  }

  const std::map<ThreadId, std::vector<ObservedOp>> &Histories;
  const SeqSpec &Spec;
  std::uint64_t MaxNodes;
  const PrecedenceMap *Precedence;
  const PriorityMap *Priority;
  LinearizeResult &Res;
  std::map<ThreadId, size_t> Pos;
};

} // namespace

LinearizeResult ccal::findLinearization(
    const std::map<ThreadId, std::vector<ObservedOp>> &Histories,
    const SeqSpec &Spec, std::uint64_t MaxNodes,
    const PrecedenceMap *Precedence, const PriorityMap *Priority) {
  LinearizeResult Res;
  Search S(Histories, Spec, MaxNodes, Precedence, Priority, Res);
  Log SoFar;
  S.dfs(SoFar);
  return Res;
}
