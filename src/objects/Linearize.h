//===- objects/Linearize.h - Linearizability search ------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A general linearizability checker (Herlihy & Wing; Filipovic et al.
/// showed it equivalent to contextual refinement, which §7 discusses).  It
/// searches for a sequential witness: an interleaving of the per-thread
/// operation histories, preserving each thread's program order, that a
/// sequential specification accepts with the observed return values.
///
/// The commit-point harness (objects/Harness.h) is the main verification
/// path; this checker is the fallback for objects whose relations carry no
/// explicit commit events, and a cross-check for those that do.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBJECTS_LINEARIZE_H
#define CCAL_OBJECTS_LINEARIZE_H

#include "core/Log.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ccal {

/// One completed operation observed on some thread.
struct ObservedOp {
  std::string Method;
  std::vector<std::int64_t> Args;
  std::int64_t Ret = 0;
};

/// Sequential specification: given the spec log so far and the candidate
/// next operation by \p Tid, return the value the spec would produce, or
/// std::nullopt when the spec refuses the operation in this state.
using SeqSpec = std::function<std::optional<std::int64_t>(
    const Log &SoFar, ThreadId Tid, const ObservedOp &Op)>;

/// Search outcome.
struct LinearizeResult {
  bool Linearizable = false;
  Log Witness; ///< accepted sequential order, when found
  std::uint64_t NodesExplored = 0;
  bool BudgetExhausted = false;
};

/// Searches for a linearization of \p Histories against \p Spec.
LinearizeResult
findLinearization(const std::map<ThreadId, std::vector<ObservedOp>> &Histories,
                  const SeqSpec &Spec, std::uint64_t MaxNodes = 1u << 22);

} // namespace ccal

#endif // CCAL_OBJECTS_LINEARIZE_H
