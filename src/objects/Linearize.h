//===- objects/Linearize.h - Linearizability search ------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A general linearizability checker (Herlihy & Wing; Filipovic et al.
/// showed it equivalent to contextual refinement, which §7 discusses).  It
/// searches for a sequential witness: an interleaving of the per-thread
/// operation histories, preserving each thread's program order, that a
/// sequential specification accepts with the observed return values.
///
/// The commit-point harness (objects/Harness.h) is the main verification
/// path; this checker is the fallback for objects whose relations carry no
/// explicit commit events, and a cross-check for those that do.  The audit
/// subsystem (src/audit/) drives it over histories recorded from the real
/// std::atomic objects, with the real-time precedence order derived from
/// invocation/response timestamps supplied as a PrecedenceMap.
///
/// The search is three-way, and callers must treat it that way: a result
/// with BudgetExhausted set means UNKNOWN — the search space was cut off
/// before either finding a witness or refuting all of them.  Reporting it
/// as "not linearizable" is a false alarm; reporting it as a pass is
/// unsound.  Use outcome() instead of reading Linearizable directly.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBJECTS_LINEARIZE_H
#define CCAL_OBJECTS_LINEARIZE_H

#include "core/Log.h"

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ccal {

/// One completed operation observed on some thread.
struct ObservedOp {
  std::string Method;
  std::vector<std::int64_t> Args;
  std::int64_t Ret = 0;
};

/// Sequential specification: given the spec log so far and the candidate
/// next operation by \p Tid, return the value the spec would produce, or
/// std::nullopt when the spec refuses the operation in this state.
using SeqSpec = std::function<std::optional<std::int64_t>(
    const Log &SoFar, ThreadId Tid, const ObservedOp &Op)>;

/// Identifies one operation in a history map: (thread, index within that
/// thread's vector).
using OpRef = std::pair<ThreadId, std::size_t>;

/// Real-time precedence constraints on the search: before operation
/// `Key = (T, I)` may be linearized, thread T' must already have `K` of
/// its operations placed, for every (T', K) listed under Key.  Derived
/// from timestamps by the audit checker (response(A) < invoke(B) forces A
/// before B; per-thread response monotonicity means one covering count per
/// predecessor thread suffices).  Program order within each thread is
/// always enforced and need not be repeated here.
using PrecedenceMap = std::map<OpRef, std::vector<std::pair<ThreadId, std::size_t>>>;

/// The three-way answer every caller must respect.
enum class LinearizeOutcome {
  Linearizable,    ///< a sequential witness was found
  Refuted,         ///< the full search space was exhausted: no witness
  BudgetExhausted, ///< search cut off: UNKNOWN, neither pass nor refutation
};

/// Search outcome.
struct LinearizeResult {
  bool Linearizable = false;
  Log Witness; ///< accepted sequential order, when found
  std::uint64_t NodesExplored = 0;
  bool BudgetExhausted = false;

  /// The only safe way to consume the result: collapses the two flags into
  /// the three-way outcome so budget exhaustion can be conflated with
  /// neither a pass nor a refutation.
  LinearizeOutcome outcome() const {
    if (Linearizable)
      return LinearizeOutcome::Linearizable;
    return BudgetExhausted ? LinearizeOutcome::BudgetExhausted
                           : LinearizeOutcome::Refuted;
  }
};

/// Optional search-order hint: candidates with a smaller value are tried
/// first at each node.  Purely a heuristic — it changes which witness is
/// found first and how much backtracking happens, never the outcome.  The
/// audit checker passes invocation timestamps, which makes the search on
/// real lock traces near-greedy.
using PriorityMap = std::map<OpRef, std::uint64_t>;

/// Searches for a linearization of \p Histories against \p Spec.  When
/// \p Precedence is non-null the witness must additionally respect its
/// real-time order (the Herlihy–Wing side condition; without it this
/// checks sequential consistency of the history, not linearizability).
LinearizeResult
findLinearization(const std::map<ThreadId, std::vector<ObservedOp>> &Histories,
                  const SeqSpec &Spec, std::uint64_t MaxNodes = 1u << 22,
                  const PrecedenceMap *Precedence = nullptr,
                  const PriorityMap *Priority = nullptr);

} // namespace ccal

#endif // CCAL_OBJECTS_LINEARIZE_H
