//===- objects/ObjectSpec.cpp - Atomic object specifications ----------------===//

#include "objects/ObjectSpec.h"

using namespace ccal;

void ccal::addAtomicMethod(LayerInterface &L, const std::string &Name,
                           AtomicSemantics Sem, Footprint Foot) {
  KindId Id(Name); // interned once; event construction is an integer copy
  L.addShared(Name, [Id, Sem](const PrimCall &Call)
                  -> std::optional<PrimResult> {
    AtomicOutcome O = Sem(Call.Tid, Call.Args, *Call.L);
    switch (O.K) {
    case AtomicOutcome::Kind::Stuck:
      return std::nullopt;
    case AtomicOutcome::Kind::Blocked:
      return PrimResult::blocked();
    case AtomicOutcome::Kind::Ok: {
      PrimResult Res;
      Res.Events.push_back(Event(Call.Tid, Id, Call.Args));
      Res.Ret = O.Ret;
      return Res;
    }
    }
    return std::nullopt;
  }, std::move(Foot));
}

Replayer<AbstractLockState>
ccal::makeAbstractLockReplayer(std::string AcqKind, std::string RelKind) {
  KindId AcqId(AcqKind), RelId(RelKind);
  auto Step = [AcqId, RelId](
                  const AbstractLockState &S,
                  const Event &E) -> std::optional<AbstractLockState> {
    if (E.Kind == AcqId) {
      if (S.Holder.has_value())
        return std::nullopt; // acq while held: mutual exclusion violated
      AbstractLockState Next = S;
      Next.Holder = E.Tid;
      ++Next.Acquisitions;
      return Next;
    }
    if (E.Kind == RelId) {
      if (!S.Holder || *S.Holder != E.Tid)
        return std::nullopt; // rel by a non-holder
      AbstractLockState Next = S;
      Next.Holder.reset();
      return Next;
    }
    return S;
  };
  Replayer<AbstractLockState> R(AbstractLockState{}, std::move(Step));
  // The fold returns S unchanged for every other kind — declare that so
  // replay skips them without the type-erased call.
  R.onlyKinds({AcqId, RelId});
  return R;
}

void ccal::addAtomicLock(LayerInterface &L, const std::string &AcqKind,
                         const std::string &RelKind) {
  Replayer<AbstractLockState> R = makeAbstractLockReplayer(AcqKind, RelKind);

  // Both methods replay the holder and mutate it with their event:
  // read+write of one abstract location per lock.
  Footprint LockFoot =
      Footprint::of({"lock." + AcqKind}, {"lock." + AcqKind});

  addAtomicMethod(L, AcqKind,
                  [R](ThreadId Tid, const std::vector<std::int64_t> &,
                      const Log &Prefix) -> AtomicOutcome {
                    std::optional<AbstractLockState> S = R.replay(Prefix);
                    if (!S)
                      return AtomicOutcome::stuck();
                    if (S->Holder.has_value()) {
                      // Re-acquiring while holding is a protocol violation;
                      // waiting for another holder is a normal Blocked.
                      return *S->Holder == Tid ? AtomicOutcome::stuck()
                                               : AtomicOutcome::blocked();
                    }
                    return AtomicOutcome::ok(0);
                  },
                  LockFoot);

  addAtomicMethod(L, RelKind,
                  [R](ThreadId Tid, const std::vector<std::int64_t> &,
                      const Log &Prefix) -> AtomicOutcome {
                    std::optional<AbstractLockState> S = R.replay(Prefix);
                    if (!S || !S->Holder || *S->Holder != Tid)
                      return AtomicOutcome::stuck();
                    return AtomicOutcome::ok(0);
                  },
                  LockFoot);
}
