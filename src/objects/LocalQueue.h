//===- objects/LocalQueue.h - Certified local (sequential) queue -*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The local (sequential) thread-queue library of §4.2 and Table 2: a
/// doubly linked list over index arrays (the concrete representation) that
/// refines an abstract list of TCB indices (the paper's `tdqp`).
///
/// Being CPU-private, this layer is *sequential*: its refinement proof in
/// the paper is a sequential simulation with an abstraction function from
/// memory to logical lists.  Executably, we (a) run the ClightX module and
/// the abstract model side by side over randomized operation sequences
/// (through both the reference interpreter and the compiled VM), and
/// (b) reuse it as linked code inside the shared queue and the scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBJECTS_LOCALQUEUE_H
#define CCAL_OBJECTS_LOCALQUEUE_H

#include "lang/Ast.h"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace ccal {

/// Capacity of the queue module (TCB index range).
inline constexpr int LocalQueueCap = 16;

/// The abstract queue of TCB indices (the paper's logical list): a list
/// with set semantics — an element can be queued at most once, mirroring
/// TCBs living in at most one queue.
class AbstractLocalQueue {
public:
  /// enQ: appends \p T; out-of-range or already-queued values are ignored
  /// (the module's defensive behavior).
  void enQ(std::int64_t T);

  /// deQ: pops the head or returns -1.
  std::int64_t deQ();

  /// rmQ: removes \p T wherever it is (needed to wake a specific thread).
  void rmQ(std::int64_t T);

  std::int64_t head() const { return Items.empty() ? -1 : Items.front(); }
  std::int64_t size() const { return static_cast<std::int64_t>(Items.size()); }
  bool contains(std::int64_t T) const;

  const std::deque<std::int64_t> &items() const { return Items; }

private:
  std::deque<std::int64_t> Items;
};

/// The ClightX module: q_init / enQ / deQ / rmQ / q_len / q_head over
/// head/tail/next/prev/inq arrays.
ClightModule makeLocalQueueModule();

/// One randomized differential run of the module against the abstract
/// model; returns "" on agreement or a mismatch description.
/// \p ThroughVm selects compiled LAsm execution instead of the reference
/// interpreter, exercising the compiler on the same module.
std::string runLocalQueueDifferential(std::uint64_t Seed, unsigned NumOps,
                                      bool ThroughVm);

} // namespace ccal

#endif // CCAL_OBJECTS_LOCALQUEUE_H
