//===- objects/SharedQueue.h - Certified shared queue ----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared queue object of §4.2: lock-protected queue operations over
/// the push/pull memory model.  deQ/enQ acquire the (already certified,
/// atomic) lock, pull the queue's shared cell into the CPU-local copy,
/// operate on it as plain sequential code, announce their commit with a
/// ghost marker event (`deq_done`/`enq_done` — logical primitives in the
/// paper's sense, cf. §6's performance note about removing them), push the
/// cell back, and release.
///
/// The underlay is the lock's *overlay* L1 — building this layer on the
/// atomic lock interface is the vertical composition the paper emphasizes
/// ("we simply wrap the local queue operations with lock acquire and
/// release", §6).  The overlay is an atomic enQ/deQ interface whose state
/// replays from the commit events.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBJECTS_SHAREDQUEUE_H
#define CCAL_OBJECTS_SHAREDQUEUE_H

#include "mem/PushPull.h"
#include "objects/Harness.h"
#include "objects/ObjectSpec.h"

namespace ccal {

/// Capacity of the shared queue cell.
inline constexpr int SharedQueueCap = 8;

/// Abstract queue replayed from atomic enQ/deQ (or commit-marker) events.
struct AbstractSharedQueue {
  std::vector<std::int64_t> Items;
};

/// Replays the abstract queue from `enQ`/`deQ` events (spec level).
Replayer<AbstractSharedQueue> makeSharedQueueReplayer();

/// The pieces of the shared-queue certification, built around a concrete
/// linked program (the push/pull cell needs the linked global addresses).
struct SharedQueueSetup {
  ClightModule Module;           ///< deQ/enQ implementation
  ClightModule Client;           ///< producer/consumer client
  LayerPtr Underlay;             ///< atomic lock + pull/push + markers
  LayerPtr Overlay;              ///< atomic enQ/deQ
  EventMap R;                    ///< commit mapping
  MachineConfigPtr ImplConfig;   ///< client (+) module over Underlay
  MachineConfigPtr SpecConfig;   ///< client over Overlay
};

/// Builds the full setup.  \p Producers enqueue Rounds values each and
/// \p Consumers dequeue Rounds times each.
SharedQueueSetup makeSharedQueueSetup(unsigned Producers, unsigned Consumers,
                                      unsigned Rounds);

/// Certifies the shared queue layer `L1[..] |- shared_queue : Lq[..]`.
HarnessOutcome certifySharedQueue(unsigned Producers = 1,
                                  unsigned Consumers = 1,
                                  unsigned Rounds = 2);

} // namespace ccal

#endif // CCAL_OBJECTS_SHAREDQUEUE_H
