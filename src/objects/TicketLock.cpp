//===- objects/TicketLock.cpp - Certified ticket lock ------------------------===//

#include "objects/TicketLock.h"

#include "machine/CpuLocal.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "support/Text.h"

#include <map>

using namespace ccal;

Replayer<TicketState> ccal::makeTicketReplayer() {
  // Folds mutual exclusion (hold requires free, inc_n requires holder) and
  // the ticket counters; FIFO acquisition order is the separate whole-log
  // property checkTicketFifo.
  auto Step = [](const TicketState &S,
                 const Event &E) -> std::optional<TicketState> {
    TicketState Next = S;
    if (E.Kind == "FAI_t") {
      ++Next.NextTicket;
      return Next;
    }
    if (E.Kind == "hold") {
      if (S.Holder.has_value())
        return std::nullopt; // mutual exclusion violated
      Next.Holder = E.Tid;
      return Next;
    }
    if (E.Kind == "inc_n") {
      if (!S.Holder || *S.Holder != E.Tid)
        return std::nullopt; // release by non-holder
      ++Next.NowServing;
      Next.Holder.reset();
      return Next;
    }
    return Next;
  };
  Replayer<TicketState> R(TicketState{}, std::move(Step));
  R.onlyKinds({KindId("FAI_t"), KindId("hold"), KindId("inc_n")});
  return R;
}

std::string ccal::checkTicketFifo(const Log &L) {
  std::vector<ThreadId> TicketOrder; // tid that fetched the k-th ticket
  size_t NextServed = 0;
  for (const Event &E : L) {
    if (E.Kind == "FAI_t") {
      TicketOrder.push_back(E.Tid);
      continue;
    }
    if (E.Kind != "hold")
      continue;
    if (NextServed >= TicketOrder.size())
      return "hold without a fetched ticket";
    if (TicketOrder[NextServed] != E.Tid)
      return strFormat("FIFO violated: ticket %zu belongs to CPU %u but "
                       "CPU %u acquired",
                       NextServed, TicketOrder[NextServed], E.Tid);
    ++NextServed;
  }
  return "";
}

TicketLockLayers ccal::makeTicketLockLayers() {
  TicketLockLayers Out;

  // --- L0: the x86 atomic primitives (Fig. 3's "Methods provided by L0").
  // Footprints over the abstract ticket-lock state: FAI_t owns the ticket
  // counter; get_n reads the now-serving counter that inc_n bumps; hold
  // additionally reads the ticket counter because the FIFO invariant
  // (checkTicketFifo) is sensitive to the FAI_t/hold order.
  auto L0 = makeInterface("L0");
  L0->addShared("FAI_t", makeFetchIncPrim("FAI_t"),
                Footprint::of({"tkt.next"}, {"tkt.next"}));
  L0->addShared("get_n", makeReadCounterPrim("get_n", "inc_n"),
                Footprint::of({"tkt.serving"}, {}));
  L0->addShared("inc_n", makeEventPrim("inc_n"),
                Footprint::of({"tkt.holder"},
                              {"tkt.serving", "tkt.holder"}));
  L0->addShared("hold", makeEventPrim("hold"),
                Footprint::of({"tkt.next", "tkt.holder"}, {"tkt.holder"}));
  // Pass-through critical-section work: f and g return how many times each
  // has run before (a log-replayed counter), so client return values are
  // schedule-sensitive and the refinement compares them meaningfully.
  L0->addShared("f", makeFetchIncPrim("f"), Footprint::of({"f"}, {"f"}));
  L0->addShared("g", makeFetchIncPrim("g"), Footprint::of({"g"}, {"g"}));
  Out.L0 = L0;

  // --- M1: Fig. 3's module, verbatim ClightX.
  Out.M1 = parseModuleOrDie("M1_ticket", R"(
    extern int FAI_t();
    extern int get_n();
    extern void inc_n();
    extern void hold();

    void acq() {
      int my_t = FAI_t();
      while (get_n() != my_t) {}
      hold();
    }

    void rel() { inc_n(); }
  )");
  typeCheckOrDie(Out.M1);

  // --- L1: the atomic interface (blocking acq, protocol-checked rel).
  auto L1 = makeInterface("L1");
  addAtomicLock(*L1, "acq", "rel");
  L1->addShared("f", makeFetchIncPrim("f"), Footprint::of({"f"}, {"f"}));
  L1->addShared("g", makeFetchIncPrim("g"), Footprint::of({"g"}, {"g"}));
  // Rely/guarantee conditions (§2): every participant guarantees that it
  // releases a held lock, i.e. the log never shows it acquiring twice
  // without a release in between — expressed as the abstract lock replay
  // not getting stuck.
  {
    Replayer<AbstractLockState> AR = makeAbstractLockReplayer("acq", "rel");
    LogInvariant LockOk{"lock-protocol-respected", [AR](const Log &L) {
                          return AR.wellFormed(L);
                        }};
    for (ThreadId Tid = 0; Tid < 8; ++Tid) {
      L1->rg().Rely.emplace(Tid, LockOk);
      L1->rg().Guar.emplace(Tid, LockOk);
    }
  }
  Out.L1 = L1;

  // --- R1 (§2): map i.hold to i.acq, i.inc_n to i.rel, and the other
  // lock-related events to empty ones.
  Out.R1 = EventMap("R1", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "hold")
      return Event(E.Tid, "acq");
    if (E.Kind == "inc_n")
      return Event(E.Tid, "rel");
    if (E.Kind == "FAI_t" || E.Kind == "get_n")
      return std::nullopt;
    return E;
  });
  return Out;
}

TicketLockLayers ccal::makeTicketLockLayersRa(bool BrokenGrab) {
  TicketLockLayers Out = makeTicketLockLayers();

  // Same primitives, ordering-annotated footprints mirroring the runtime
  // lock (RtTicketLock.h): Next.fetch_add(acq_rel), NowServing spin
  // load(acquire), NowServing.fetch_add(acq_rel).
  auto L0 = makeInterface(BrokenGrab ? "L0ra_broken" : "L0ra");
  Footprint Grab = Footprint::of({"tkt.next"}, {"tkt.next"})
                       .withOrders(MemOrder::AcqRel, MemOrder::AcqRel);
  if (BrokenGrab)
    // rt::BrokenTicketLock's seeded bug: the grab is a separate relaxed
    // load and relaxed store, so another CPU's increment can land in
    // between — or, equivalently here, the load may read a stale ticket.
    Grab = Footprint::of({"tkt.next"}, {"tkt.next"})
               .withOrders(MemOrder::Relaxed, MemOrder::Relaxed)
               .nonAtomic();
  L0->addShared("FAI_t", makeFetchIncPrim("FAI_t"), Grab);
  // The spin read: acquire (joins the releaser's view, which is what
  // collapses the f/g reads-from menus inside the critical section) and
  // memory-fair (the await eventually sees the latest now-serving).
  L0->addShared("get_n", makeReadCounterPrim("get_n", "inc_n"),
                Footprint::of({"tkt.serving"}, {})
                    .withOrders(MemOrder::Acquire, MemOrder::SeqCst)
                    .fairRead());
  L0->addShared("inc_n", makeEventPrim("inc_n"),
                Footprint::of({"tkt.holder"}, {"tkt.serving", "tkt.holder"})
                    .withOrders(MemOrder::AcqRel, MemOrder::AcqRel));
  // hold is ghost bookkeeping (the linearization-point announcement); its
  // tkt.next read exists for invariant order-sensitivity, not for a real
  // shared load, so it is relaxed and memory-fair rather than enumerable.
  L0->addShared("hold", makeEventPrim("hold"),
                Footprint::of({"tkt.next", "tkt.holder"}, {"tkt.holder"})
                    .withOrders(MemOrder::Relaxed, MemOrder::Relaxed)
                    .fairRead());
  // The critical-section counters are deliberately *unordered*: plain
  // non-atomic relaxed accesses whose consistency is the lock's job.  A
  // correctly synchronized lock makes their reads-from menus collapse to
  // the latest write (via the release/acquire chain); a broken lock lets
  // exploration pick stale values and the refinement refutes.
  L0->addShared("f", makeFetchIncPrim("f"),
                Footprint::of({"f"}, {"f"})
                    .withOrders(MemOrder::Relaxed, MemOrder::Relaxed)
                    .nonAtomic());
  L0->addShared("g", makeFetchIncPrim("g"),
                Footprint::of({"g"}, {"g"})
                    .withOrders(MemOrder::Relaxed, MemOrder::Relaxed)
                    .nonAtomic());
  Out.L0 = L0;
  return Out;
}

ClightModule ccal::makeTicketClient() {
  ClightModule Client = parseModuleOrDie("P_ticket_client", R"(
    extern void acq();
    extern void rel();
    extern int f();
    extern int g();

    int t_main() {
      acq();
      int a = f();
      int b = g();
      rel();
      return a * 10 + b;
    }
  )");
  typeCheckOrDie(Client);
  return Client;
}

std::string ccal::ticketMutexInvariant(const MultiCoreMachine &M) {
  static const Replayer<TicketState> R = makeTicketReplayer();
  if (!R.wellFormed(M.log()))
    return "ticket replay stuck: mutual exclusion or release protocol "
           "violated";
  return checkTicketFifo(M.log());
}

StarvationReport
ccal::checkTicketStarvationFreedom(unsigned NumCpus,
                                   unsigned FairnessBound) {
  TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule M1;
  static ClightModule Client;
  M1 = cloneModule(Layers.M1);
  Client = makeTicketClient();

  ObjectHarness H;
  H.ObjectName = "ticket_starvation";
  H.Underlay = Layers.L0;
  H.Modules = {&M1};
  H.Overlay = Layers.L1;
  H.Client = &Client;
  for (unsigned C = 1; C <= NumCpus; ++C)
    H.Work.emplace(C, std::vector<CpuWorkItem>{{"t_main", {}}});

  StarvationReport Report;
  // n: events a holder emits from hold to inc_n inclusive (hold, f, g,
  // inc_n) plus its pre-acquisition FAI/get_n traffic; 6 is a safe
  // per-cycle cap for this client.
  const std::uint64_t N = 6;
  Report.Bound = N * FairnessBound * NumCpus;

  GenericExploreOptions<MultiCoreMachine> Opts;
  Opts.FairnessBound = FairnessBound;
  Opts.MaxSteps = 2048;
  Opts.Invariant = ticketMutexInvariant;
  Opts.InvariantName = "ticket.mutex";
  Opts.OnOutcome = [&Report](const Outcome &O) -> std::string {
    // Wait of each CPU: #events strictly between its FAI_t and its hold.
    std::map<ThreadId, size_t> FaiAt;
    for (size_t I = 0; I != O.FinalLog.size(); ++I) {
      const Event &E = O.FinalLog[I];
      if (E.Kind == "FAI_t")
        FaiAt[E.Tid] = I;
      else if (E.Kind == "hold") {
        auto It = FaiAt.find(E.Tid);
        if (It == FaiAt.end())
          return "hold without a ticket";
        Report.WorstWait =
            std::max(Report.WorstWait,
                     static_cast<std::uint64_t>(I - It->second - 1));
      }
    }
    return "";
  };
  ExploreResult Res = exploreMachine(H.implConfig(), Opts);
  Report.SchedulesExplored = Res.SchedulesExplored;
  Report.Ok = Res.Ok;
  if (!Res.Ok)
    Report.Violation = Res.Violation;
  Report.WithinBound = Report.WorstWait <= Report.Bound;
  return Report;
}

ObjectHarness ccal::makeTicketLockHarness(unsigned NumCpus,
                                          unsigned Rounds) {
  TicketLockLayers Layers = makeTicketLockLayers();
  // The harness owns its modules (no function-local statics): concurrent
  // callers — certd workers certifying different CPU counts — must not
  // reassign each other's ASTs mid-exploration.
  auto M1 = std::make_shared<ClightModule>(cloneModule(Layers.M1));
  auto Client = std::make_shared<ClightModule>(makeTicketClient());

  ObjectHarness H;
  H.Owned = {M1, Client};
  H.ObjectName = "ticket_lock";
  H.Underlay = Layers.L0;
  H.Modules = {M1.get()};
  H.Overlay = Layers.L1;
  H.R = Layers.R1;
  H.Client = Client.get();
  for (unsigned C = 1; C <= NumCpus; ++C) {
    std::vector<CpuWorkItem> Items;
    for (unsigned I = 0; I != Rounds; ++I)
      Items.push_back({"t_main", {}});
    H.Work.emplace(C, std::move(Items));
  }
  H.ImplOpts.FairnessBound = 2;
  H.ImplOpts.MaxSteps = 512;
  H.ImplOpts.Invariant = ticketMutexInvariant;
  H.ImplOpts.InvariantName = "ticket.mutex";
  // The atomic spec never spins; no fairness pruning on the spec side.
  H.SpecOpts.FairnessBound = 1u << 20;
  H.SpecOpts.MaxSteps = 512;
  return H;
}

HarnessOutcome ccal::certifyTicketLock(unsigned NumCpus, unsigned Rounds) {
  return runObjectHarness(makeTicketLockHarness(NumCpus, Rounds));
}

ObjectHarness ccal::makeTicketLockHarnessRa(unsigned NumCpus,
                                            unsigned Rounds,
                                            bool BrokenGrab) {
  TicketLockLayers Layers = makeTicketLockLayersRa(BrokenGrab);
  auto M1 = std::make_shared<ClightModule>(cloneModule(Layers.M1));
  auto Client = std::make_shared<ClightModule>(makeTicketClient());

  ObjectHarness H;
  H.Owned = {M1, Client};
  H.ObjectName = BrokenGrab ? "ticket_lock_ra_broken" : "ticket_lock_ra";
  H.Underlay = Layers.L0;
  H.Modules = {M1.get()};
  H.Overlay = Layers.L1;
  H.R = Layers.R1;
  H.Client = Client.get();
  for (unsigned C = 1; C <= NumCpus; ++C) {
    std::vector<CpuWorkItem> Items;
    for (unsigned I = 0; I != Rounds; ++I)
      Items.push_back({"t_main", {}});
    H.Work.emplace(C, std::move(Items));
  }
  H.ImplOpts.FairnessBound = 2;
  H.ImplOpts.MaxSteps = 512;
  H.ImplOpts.Invariant = ticketMutexInvariant;
  H.ImplOpts.InvariantName = "ticket.mutex";
  H.SpecOpts.FairnessBound = 1u << 20;
  H.SpecOpts.MaxSteps = 512;
  H.ImplModel = raMemory();
  return H;
}

HarnessOutcome ccal::certifyTicketLockRa(unsigned NumCpus, unsigned Rounds,
                                         bool BrokenGrab) {
  return runObjectHarness(makeTicketLockHarnessRa(NumCpus, Rounds,
                                                  BrokenGrab));
}
