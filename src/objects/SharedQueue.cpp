//===- objects/SharedQueue.cpp - Certified shared queue ----------------------===//

#include "objects/SharedQueue.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "support/Check.h"
#include "support/Text.h"

using namespace ccal;

Replayer<AbstractSharedQueue> ccal::makeSharedQueueReplayer() {
  auto Step = [](const AbstractSharedQueue &S,
                 const Event &E) -> std::optional<AbstractSharedQueue> {
    AbstractSharedQueue N = S;
    if (E.Kind == "enQ") {
      if (E.Args.size() != 1)
        return std::nullopt;
      if (N.Items.size() < SharedQueueCap)
        N.Items.push_back(E.Args[0]);
      return N;
    }
    if (E.Kind == "deQ") {
      if (!N.Items.empty())
        N.Items.erase(N.Items.begin());
      return N;
    }
    return N;
  };
  Replayer<AbstractSharedQueue> R(AbstractSharedQueue{}, std::move(Step));
  R.onlyKinds({KindId("enQ"), KindId("deQ")});
  return R;
}

static ClightModule makeSharedQueueModule() {
  ClightModule M = parseModuleOrDie("M_shared_queue", R"(
    extern void acq();
    extern void rel();
    extern void pull(int b);
    extern void push(int b);
    extern void deq_done(int r);
    extern void enq_done(int v);

    // CPU-local copy of the shared queue cell (materialized by pull,
    // published by push).
    int sq_data[8];
    int sq_len;

    int deQ() {
      acq();
      pull(0);
      int r = -1;
      if (sq_len > 0) {
        r = sq_data[0];
        int i = 0;
        while (i < sq_len - 1) {
          sq_data[i] = sq_data[i + 1];
          i = i + 1;
        }
        sq_len = sq_len - 1;
      }
      deq_done(r);
      push(0);
      rel();
      return r;
    }

    void enQ(int v) {
      acq();
      pull(0);
      if (sq_len < 8) {
        sq_data[sq_len] = v;
        sq_len = sq_len + 1;
      }
      enq_done(v);
      push(0);
      rel();
    }
  )");
  typeCheckOrDie(M);
  return M;
}

static ClightModule makeSharedQueueClient() {
  ClightModule M = parseModuleOrDie("P_shared_queue_client", R"(
    extern int deQ();
    extern void enQ(int v);

    int produce(int v) {
      enQ(v);
      return v;
    }

    int consume() { return deQ(); }
  )");
  typeCheckOrDie(M);
  return M;
}

SharedQueueSetup ccal::makeSharedQueueSetup(unsigned Producers,
                                            unsigned Consumers,
                                            unsigned Rounds) {
  SharedQueueSetup Out;
  Out.Module = makeSharedQueueModule();
  Out.Client = makeSharedQueueClient();

  // Link the implementation first: the push/pull cell needs the linked
  // addresses of the CPU-local copy.
  AsmProgramPtr ImplProg =
      compileAndLink("shared_queue.impl.lasm", {&Out.Client, &Out.Module});

  PushPullModel Mem;
  {
    PushPullModel::Location Cell;
    Cell.Loc = 0;
    Cell.LocalBase = ImplProg->globalAddr("sq_data");
    Cell.Size = SharedQueueCap + 1; // sq_data[8] then sq_len
    CCAL_CHECK(ImplProg->globalAddr("sq_len") ==
                   Cell.LocalBase + SharedQueueCap,
               "sq_len must follow sq_data in the linked layout");
    Mem.addLocation(Cell);
  }

  // Underlay: the certified lock's atomic interface, the push/pull
  // primitives, and the ghost commit markers.
  auto Under = makeInterface("L1_lock_pp");
  addAtomicLock(*Under, "acq", "rel");
  Mem.installPrims(*Under);
  // The commit markers ARE the queue operations after R, so their mutual
  // order is observable and they must never commute with one another.
  Under->addShared("deq_done", makeEventPrim("deq_done"),
                   Footprint::of({"sq"}, {"sq"}));
  Under->addShared("enq_done", makeEventPrim("enq_done"),
                   Footprint::of({"sq"}, {"sq"}));
  Out.Underlay = Under;

  // Overlay: atomic enQ/deQ over the abstract queue replay.
  Replayer<AbstractSharedQueue> QR = makeSharedQueueReplayer();
  auto Over = makeInterface("Lq");
  addAtomicMethod(*Over, "deQ",
                  [QR](ThreadId, const std::vector<std::int64_t> &,
                       const Log &Prefix) -> AtomicOutcome {
                    std::optional<AbstractSharedQueue> S = QR.replay(Prefix);
                    if (!S)
                      return AtomicOutcome::stuck();
                    return AtomicOutcome::ok(
                        S->Items.empty() ? -1 : S->Items.front());
                  },
                  Footprint::of({"sq"}, {"sq"}));
  addAtomicMethod(*Over, "enQ",
                  [QR](ThreadId, const std::vector<std::int64_t> &Args,
                       const Log &Prefix) -> AtomicOutcome {
                    if (Args.size() != 1)
                      return AtomicOutcome::stuck();
                    if (!QR.replay(Prefix))
                      return AtomicOutcome::stuck();
                    return AtomicOutcome::ok(0);
                  },
                  Footprint::of({"sq"}, {"sq"}));
  Out.Overlay = Over;

  // R: commit markers become the atomic events; lock and memory-model
  // events are internal.
  Out.R = EventMap("Rq", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "deq_done")
      return Event(E.Tid, "deQ");
    if (E.Kind == "enq_done")
      return Event(E.Tid, "enQ", E.Args);
    return std::nullopt;
  });

  // Workloads: producers enqueue distinct values, consumers dequeue.
  std::map<ThreadId, std::vector<CpuWorkItem>> Work;
  ThreadId NextCpu = 1;
  for (unsigned P = 0; P != Producers; ++P, ++NextCpu) {
    std::vector<CpuWorkItem> Items;
    for (unsigned I = 0; I != Rounds; ++I)
      Items.push_back(
          {"produce", {static_cast<std::int64_t>(NextCpu * 100 + I)}});
    Work.emplace(NextCpu, std::move(Items));
  }
  for (unsigned C = 0; C != Consumers; ++C, ++NextCpu) {
    std::vector<CpuWorkItem> Items;
    for (unsigned I = 0; I != Rounds; ++I)
      Items.push_back({"consume", {}});
    Work.emplace(NextCpu, std::move(Items));
  }

  auto ImplCfg = std::make_shared<MachineConfig>();
  ImplCfg->Name = "shared_queue.impl";
  ImplCfg->Layer = Out.Underlay;
  ImplCfg->Program = ImplProg;
  ImplCfg->Work = Work;
  Out.ImplConfig = ImplCfg;

  auto SpecCfg = std::make_shared<MachineConfig>();
  SpecCfg->Name = "shared_queue.spec";
  SpecCfg->Layer = Out.Overlay;
  SpecCfg->Program = compileAndLink("shared_queue.spec.lasm", {&Out.Client});
  SpecCfg->Work = Work;
  Out.SpecConfig = SpecCfg;
  return Out;
}

HarnessOutcome ccal::certifySharedQueue(unsigned Producers,
                                        unsigned Consumers,
                                        unsigned Rounds) {
  SharedQueueSetup Setup =
      makeSharedQueueSetup(Producers, Consumers, Rounds);

  ExploreOptions ImplOpts;
  ImplOpts.FairnessBound = 4;
  ImplOpts.MaxSteps = 512;
  // Safety invariant: the lock protocol and the push/pull model must stay
  // race free along every interleaving.
  Replayer<AbstractLockState> LockR = makeAbstractLockReplayer("acq", "rel");
  ImplOpts.Invariant = [LockR](const MultiCoreMachine &M) -> std::string {
    if (!LockR.wellFormed(M.log()))
      return "lock protocol violated";
    return "";
  };
  ImplOpts.InvariantName = "shared_queue.lock-protocol";
  ExploreOptions SpecOpts;
  SpecOpts.FairnessBound = 1u << 20;
  SpecOpts.MaxSteps = 512;

  HarnessOutcome Out;
  Out.Report = checkContextualRefinement(Setup.ImplConfig, Setup.SpecConfig,
                                         Setup.R, ImplOpts, SpecOpts);
  std::vector<ThreadId> Focus;
  for (const auto &[Tid, Items] : Setup.ImplConfig->Work) {
    (void)Items;
    Focus.push_back(Tid);
  }
  CertPtr Cert = makeMachineCertificate(
      "LogLift", CertifiedLayer::atFocus(Setup.Underlay->name(), Focus),
      "shared_queue", CertifiedLayer::atFocus(Setup.Overlay->name(), Focus),
      Setup.R, Out.Report);
  if (Out.Report.Holds)
    Out.Layer = calculus::fromCertificate(Setup.Underlay, "shared_queue",
                                          Setup.Overlay, Focus,
                                          Setup.R.name(), Cert);
  else
    Out.Layer.Cert = Cert;
  Out.ImplLoC = moduleLoC(Setup.Module);
  Out.SpecPrimCount = Setup.Overlay->primNames().size();
  return Out;
}
