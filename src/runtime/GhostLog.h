//===- runtime/GhostLog.h - Logical-primitive instrumentation --*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime counterpart of the model's "logical primitives".  §6
/// recounts that the verified ticket lock initially took 87 cycles because
/// calls to logical primitives (ghost-state manipulation) had not been
/// removed, and 35 cycles after removing them.  The runtime locks can be
/// built with ghost calls compiled in (GhostEnabled = true, recording each
/// abstract event into a per-thread buffer) or compiled out — letting the
/// lock-latency bench regenerate exactly that before/after comparison.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_RUNTIME_GHOSTLOG_H
#define CCAL_RUNTIME_GHOSTLOG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccal {
namespace rt {

/// A per-thread buffer of abstract events (kind id + argument), the
/// runtime stand-in for appending to the global log.
class GhostLog {
public:
  struct Entry {
    std::uint32_t Kind;
    std::uint64_t Arg;
  };

  /// Records one logical-primitive call.  Deliberately not inlined, like
  /// the function calls the paper forgot to remove.
  void record(std::uint32_t Kind, std::uint64_t Arg);

  size_t size() const { return Entries.size(); }
  void clear() { Entries.clear(); }

  /// The recorded events, oldest first (bounded — see record()).
  const std::vector<Entry> &entries() const { return Entries; }

private:
  std::vector<Entry> Entries;
};

/// The calling thread's ghost log.
GhostLog &threadGhostLog();

/// Contention statistics reconstructed from one thread's ghost log — the
/// observability counters §6's latency story needs.  An acquire is a
/// GhostFai (ticket) or GhostSwapTail (MCS) event; it counts as contended
/// when the log shows waiting (a GhostGetNow poll that read a serving
/// number other than the held ticket, or a swap that returned a non-null
/// predecessor).
struct GhostStats {
  std::uint64_t Acquires = 0;
  std::uint64_t Contended = 0;        ///< acquires that had to wait
  std::uint64_t SpinObservations = 0; ///< failed polls across all acquires
};

GhostStats ghostStats(const GhostLog &L);

/// Ghost event kinds used by the runtime locks.
enum GhostKind : std::uint32_t {
  GhostFai = 1,
  GhostGetNow,
  GhostIncNow,
  GhostHold,
  GhostSwapTail,
  GhostCasTail,
  GhostClearBusy,
  GhostSleep,
  GhostWakeup,
  GhostEnq,
  GhostDeq,
};

} // namespace rt
} // namespace ccal

#endif // CCAL_RUNTIME_GHOSTLOG_H
