//===- runtime/RtObserved.h - Latency-observed lock wrappers ---*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability wrappers for the runtime locks: each acquire's latency is
/// recorded into a named obs histogram, and contended acquires (detected
/// inline, without needing the ghost log) bump a contention counter.  The
/// wrappers live outside the plain locks so the §6 ghost-on/ghost-off
/// latency experiment keeps measuring the lock itself; wrap only when the
/// bench (or an application) wants the distribution.  When the obs layer is
/// disabled the wrapper still times the acquire (two clock reads) but drops
/// the sample — wrap conditionally if even that matters.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_RUNTIME_RTOBSERVED_H
#define CCAL_RUNTIME_RTOBSERVED_H

#include "obs/Metrics.h"
#include "runtime/RtMcsLock.h"
#include "runtime/RtTicketLock.h"

#include <string>

namespace ccal {
namespace rt {

/// Ticket lock whose acquires feed `<name>.acquire_ns` (histogram) and
/// `<name>.acquires` / `<name>.contended` (counters).
template <bool Ghost> class ObservedTicketLock {
public:
  explicit ObservedTicketLock(std::string Name) : Name(std::move(Name)) {}

  void acquire() {
    std::uint64_t T0 = obs::nowNs();
    Lock.acquire();
    std::uint64_t Dur = obs::nowNs() - T0;
    if (obs::enabled()) {
      obs::histRecord(Name + ".acquire_ns", Dur);
      obs::counterAdd(Name + ".acquires", 1);
      // No cheap inline contention signal on a ticket lock without
      // touching the lock's internals; when Ghost is on, the acquire that
      // just finished is the tail of this thread's log — a failed
      // GhostGetNow poll after the last GhostFai means we waited.
      if constexpr (Ghost) {
        const auto &Es = threadGhostLog().entries();
        std::uint64_t MyTicket = 0;
        bool Waited = false;
        for (auto It = Es.rbegin(); It != Es.rend(); ++It) {
          if (It->Kind == GhostFai) {
            MyTicket = It->Arg;
            break;
          }
          if (It->Kind == GhostGetNow)
            Waited = true; // refined against MyTicket below
        }
        // Only polls that read a different serving number count; the
        // uncontended acquire's single successful poll does not.
        if (Waited) {
          bool Miss = false;
          for (auto It = Es.rbegin(); It != Es.rend(); ++It) {
            if (It->Kind == GhostFai)
              break;
            if (It->Kind == GhostGetNow && It->Arg != MyTicket)
              Miss = true;
          }
          if (Miss)
            obs::counterAdd(Name + ".contended", 1);
        }
      }
    }
  }

  void release() { Lock.release(); }

private:
  TicketLock<Ghost> Lock;
  std::string Name;
};

/// MCS lock with the same `<name>.*` metrics; contention is detected
/// directly from the swap's predecessor.
template <bool Ghost> class ObservedMcsLock {
public:
  explicit ObservedMcsLock(std::string Name) : Name(std::move(Name)) {}

  void acquire(McsNode &Node) {
    std::uint64_t T0 = obs::nowNs();
    Lock.acquire(Node);
    std::uint64_t Dur = obs::nowNs() - T0;
    if (obs::enabled()) {
      obs::histRecord(Name + ".acquire_ns", Dur);
      obs::counterAdd(Name + ".acquires", 1);
      if constexpr (Ghost) {
        // The swap's predecessor was just logged; non-null means queued.
        const auto &Es = threadGhostLog().entries();
        for (auto It = Es.rbegin(); It != Es.rend(); ++It) {
          if (It->Kind == GhostSwapTail) {
            if (It->Arg != 0)
              obs::counterAdd(Name + ".contended", 1);
            break;
          }
        }
      }
    }
  }

  void release(McsNode &Node) { Lock.release(Node); }

private:
  McsLock<Ghost> Lock;
  std::string Name;
};

} // namespace rt
} // namespace ccal

#endif // CCAL_RUNTIME_RTOBSERVED_H
