//===- runtime/RtQueuingLock.cpp - Runtime queuing lock ------------------------===//

#include "runtime/RtQueuingLock.h"

#include "audit/Recorder.h"

using namespace ccal;
using namespace ccal::rt;

void QueuingLock::acquire() {
  const std::uint64_t AInv = audit::invokeNow();
  Spin.acquire();
  if (!Busy) {
    Busy = true; // fast path: ql_busy = get_tid()
    Spin.release();
    if (AInv)
      audit::record(this, audit::Method::Acq, /*HasArg=*/false, 0, 0, AInv);
    return;
  }
  // Slow path: sleep on the lock's queue (the spinlock is released before
  // parking, and the lock is handed to us by the releaser).
  Waiter W;
  Sleepers.push_back(&W);
  Spin.release();
  std::unique_lock<std::mutex> Guard(W.M);
  W.Cv.wait(Guard, [&W] { return W.Granted; });
  if (AInv)
    audit::record(this, audit::Method::Acq, /*HasArg=*/false, 0, 0, AInv);
}

void QueuingLock::release() {
  const std::uint64_t AInv = audit::invokeNow();
  Spin.acquire();
  if (Sleepers.empty()) {
    Busy = false; // ql_busy = -1
    Spin.release();
    if (AInv)
      audit::record(this, audit::Method::Rel, /*HasArg=*/false, 0, 0, AInv);
    return;
  }
  Waiter *Next = Sleepers.front();
  Sleepers.pop_front(); // ql_busy = wakeup(): direct handoff
  Spin.release();
  {
    std::lock_guard<std::mutex> Guard(Next->M);
    Next->Granted = true;
  }
  Next->Cv.notify_one();
  if (AInv)
    audit::record(this, audit::Method::Rel, /*HasArg=*/false, 0, 0, AInv);
}
