//===- runtime/RtQueuingLock.cpp - Runtime queuing lock ------------------------===//

#include "runtime/RtQueuingLock.h"

using namespace ccal::rt;

void QueuingLock::acquire() {
  Spin.acquire();
  if (!Busy) {
    Busy = true; // fast path: ql_busy = get_tid()
    Spin.release();
    return;
  }
  // Slow path: sleep on the lock's queue (the spinlock is released before
  // parking, and the lock is handed to us by the releaser).
  Waiter W;
  Sleepers.push_back(&W);
  Spin.release();
  std::unique_lock<std::mutex> Guard(W.M);
  W.Cv.wait(Guard, [&W] { return W.Granted; });
}

void QueuingLock::release() {
  Spin.acquire();
  if (Sleepers.empty()) {
    Busy = false; // ql_busy = -1
    Spin.release();
    return;
  }
  Waiter *Next = Sleepers.front();
  Sleepers.pop_front(); // ql_busy = wakeup(): direct handoff
  Spin.release();
  {
    std::lock_guard<std::mutex> Guard(Next->M);
    Next->Granted = true;
  }
  Next->Cv.notify_one();
}
