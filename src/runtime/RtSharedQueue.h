//===- runtime/RtSharedQueue.h - Runtime shared queue ----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime shared queue (§4.2's pattern, §6's point): "to implement
/// the atomic queue object, we simply wrap the local queue operations with
/// lock acquire and release".  Templated over the lock so the ticket and
/// MCS locks can be interchanged without touching the queue — the runtime
/// mirror of the interchangeability the model certifies.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_RUNTIME_RTSHAREDQUEUE_H
#define CCAL_RUNTIME_RTSHAREDQUEUE_H

#include "audit/Recorder.h"
#include "runtime/RtMcsLock.h"
#include "runtime/RtTicketLock.h"

#include <cstdint>
#include <deque>
#include <optional>

namespace ccal {
namespace rt {

/// Lock adapter concept: defaulted for locks with argumentless
/// acquire/release (ticket, queuing); specialized for MCS which threads a
/// node through.
template <typename LockT> struct LockScope {
  explicit LockScope(LockT &L) : L(L) { L.acquire(); }
  ~LockScope() { L.release(); }
  LockT &L;
};

template <bool Ghost, bool Audit> struct LockScope<McsLock<Ghost, Audit>> {
  explicit LockScope(McsLock<Ghost, Audit> &L) : L(L) { L.acquire(Node); }
  ~LockScope() { L.release(Node); }
  McsLock<Ghost, Audit> &L;
  McsNode Node;
};

/// Lock-wrapped queue of 64-bit values.
///
/// The queue audits at its own abstraction level: enqueue/dequeue feed the
/// trace auditor as enQ/deQ records (the model-side SharedQueue spec event
/// names), replayable against the FIFO "queue" spec.  Instantiate with an
/// Audit=false lock (e.g. TicketLock<false, false>) so the internal lock's
/// acq/rel — implementation detail at this level — stays out of the trace.
template <typename LockT> class SharedQueue {
public:
  void enqueue(std::int64_t V) {
    const std::uint64_t AInv = audit::invokeNow();
    {
      LockScope<LockT> Guard(Lock);
      Items.push_back(V);
    }
    if (AInv)
      audit::record(this, audit::Method::Enq, /*HasArg=*/true, V, 0, AInv);
  }

  std::optional<std::int64_t> dequeue() {
    const std::uint64_t AInv = audit::invokeNow();
    std::optional<std::int64_t> Out;
    {
      LockScope<LockT> Guard(Lock);
      if (!Items.empty()) {
        Out = Items.front();
        Items.pop_front();
      }
    }
    if (AInv)
      audit::record(this, audit::Method::Deq, /*HasArg=*/false, 0,
                    Out ? *Out : -1, AInv);
    return Out;
  }

  size_t sizeUnlocked() const { return Items.size(); }

private:
  LockT Lock;
  std::deque<std::int64_t> Items;
};

} // namespace rt
} // namespace ccal

#endif // CCAL_RUNTIME_RTSHAREDQUEUE_H
