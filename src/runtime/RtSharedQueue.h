//===- runtime/RtSharedQueue.h - Runtime shared queue ----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime shared queue (§4.2's pattern, §6's point): "to implement
/// the atomic queue object, we simply wrap the local queue operations with
/// lock acquire and release".  Templated over the lock so the ticket and
/// MCS locks can be interchanged without touching the queue — the runtime
/// mirror of the interchangeability the model certifies.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_RUNTIME_RTSHAREDQUEUE_H
#define CCAL_RUNTIME_RTSHAREDQUEUE_H

#include "runtime/RtMcsLock.h"
#include "runtime/RtTicketLock.h"

#include <cstdint>
#include <deque>
#include <optional>

namespace ccal {
namespace rt {

/// Lock adapter concept: defaulted for locks with argumentless
/// acquire/release (ticket, queuing); specialized for MCS which threads a
/// node through.
template <typename LockT> struct LockScope {
  explicit LockScope(LockT &L) : L(L) { L.acquire(); }
  ~LockScope() { L.release(); }
  LockT &L;
};

template <bool Ghost> struct LockScope<McsLock<Ghost>> {
  explicit LockScope(McsLock<Ghost> &L) : L(L) { L.acquire(Node); }
  ~LockScope() { L.release(Node); }
  McsLock<Ghost> &L;
  McsNode Node;
};

/// Lock-wrapped queue of 64-bit values.
template <typename LockT> class SharedQueue {
public:
  void enqueue(std::int64_t V) {
    LockScope<LockT> Guard(Lock);
    Items.push_back(V);
  }

  std::optional<std::int64_t> dequeue() {
    LockScope<LockT> Guard(Lock);
    if (Items.empty())
      return std::nullopt;
    std::int64_t V = Items.front();
    Items.pop_front();
    return V;
  }

  size_t sizeUnlocked() const { return Items.size(); }

private:
  LockT Lock;
  std::deque<std::int64_t> Items;
};

} // namespace rt
} // namespace ccal

#endif // CCAL_RUNTIME_RTSHAREDQUEUE_H
