//===- runtime/RtQueuingLock.h - Runtime queuing lock ----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime queuing lock (Fig. 11's shape): a ticket-lock-protected
/// busy word plus a sleep queue; waiting threads block on an OS futex-like
/// primitive (std::condition-variable-free: a per-thread parking slot)
/// instead of spinning.  bench_qlock_crossover sweeps critical-section
/// length and oversubscription to regenerate the spin-vs-sleep crossover
/// §5.4 motivates.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_RUNTIME_RTQUEUINGLOCK_H
#define CCAL_RUNTIME_RTQUEUINGLOCK_H

#include "runtime/RtTicketLock.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace ccal {
namespace rt {

/// Queuing lock: mutual exclusion with sleeping waiters and FIFO handoff.
class QueuingLock {
public:
  void acquire();
  void release();

private:
  struct Waiter {
    std::mutex M;
    std::condition_variable Cv;
    bool Granted = false;
  };

  // The spinlock-protected lock state (Fig. 11's ql_busy + sleep queue).
  // The internal spinlock must not feed the trace auditor: the queuing
  // lock records its own acquire/release at its own abstraction level,
  // and a trace mixing both would audit implementation detail against
  // the object's spec.
  TicketLock</*Ghost=*/false, /*Audit=*/false> Spin;
  bool Busy = false;
  std::deque<Waiter *> Sleepers;
};

} // namespace rt
} // namespace ccal

#endif // CCAL_RUNTIME_RTQUEUINGLOCK_H
