//===- runtime/GhostLog.cpp - Logical-primitive instrumentation ---------------===//

#include "runtime/GhostLog.h"

namespace ccal {
namespace rt {

// Out of line on purpose: the measured cost is a real call + vector append,
// the same shape as the "extra null calls" of §6.
__attribute__((noinline)) void GhostLog::record(std::uint32_t Kind,
                                                std::uint64_t Arg) {
  Entries.push_back(Entry{Kind, Arg});
  if (Entries.size() >= (1u << 16))
    Entries.clear(); // bound memory during long benches
}

GhostLog &threadGhostLog() {
  thread_local GhostLog Log;
  return Log;
}

GhostStats ghostStats(const GhostLog &L) {
  GhostStats S;
  bool InAcquire = false;
  bool Waited = false;
  std::uint64_t MyTicket = 0;
  auto Close = [&] {
    if (InAcquire && Waited)
      ++S.Contended;
    InAcquire = false;
    Waited = false;
  };
  for (const GhostLog::Entry &E : L.entries()) {
    switch (E.Kind) {
    case GhostFai: // ticket acquire begins; Arg = my ticket
      Close();
      InAcquire = true;
      ++S.Acquires;
      MyTicket = E.Arg;
      break;
    case GhostGetNow: // Arg = now-serving read by the poll
      if (InAcquire && E.Arg != MyTicket) {
        ++S.SpinObservations;
        Waited = true;
      }
      break;
    case GhostSwapTail: // MCS acquire; Arg = predecessor pointer
      Close();
      ++S.Acquires;
      if (E.Arg != 0)
        ++S.Contended;
      break;
    case GhostHold: // acquire completed
      Close();
      break;
    default:
      break;
    }
  }
  Close();
  return S;
}

} // namespace rt
} // namespace ccal
