//===- runtime/GhostLog.cpp - Logical-primitive instrumentation ---------------===//

#include "runtime/GhostLog.h"

namespace ccal {
namespace rt {

// Out of line on purpose: the measured cost is a real call + vector append,
// the same shape as the "extra null calls" of §6.
__attribute__((noinline)) void GhostLog::record(std::uint32_t Kind,
                                                std::uint64_t Arg) {
  Entries.push_back(Entry{Kind, Arg});
  if (Entries.size() >= (1u << 16))
    Entries.clear(); // bound memory during long benches
}

GhostLog &threadGhostLog() {
  thread_local GhostLog Log;
  return Log;
}

} // namespace rt
} // namespace ccal
