//===- runtime/RtBrokenLock.h - Deliberately broken ticket lock -*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ticket lock with a SEEDED BUG, kept as the trace auditor's negative
/// control: the ticket grab is a torn memory_order_relaxed load + store
/// instead of the atomic fetch-and-increment the verified module (Fig. 3)
/// compiles to.  Two threads racing the grab read the same counter value
/// and both take the same ticket, so both pass the "now serving" gate at
/// once — mutual exclusion is gone, and the trace records two acquires
/// returning the same ticket inside one concurrency window, which no
/// interleaving satisfies under the "ticket" spec.  bench_audit_hammer and
/// the audit tests require the auditor to refute this object (and a
/// recorded witness window to prove it); if RtBrokenLock ever audits PASS,
/// the auditor is broken, not the lock fixed.
///
/// The race window is widened with a yield between the torn load and
/// store.  On x86/TSO a plain racy increment loses updates only inside a
/// nanoseconds-wide window, which a test cannot count on; the yield makes
/// duplicate tickets near-certain within a few thousand contended
/// acquisitions on any scheduler, keeping the negative control
/// deterministic in practice without changing what the bug is.
///
/// The gate spins on `now_serving < my_ticket` rather than the verified
/// module's equality test: a torn grab can rewind the ticket counter, so
/// an equality spin could wait for a value "now serving" has already
/// passed, hanging the harness.  With `<` the negative control is
/// deadlock-free — issued ticket values always form a gapless set
/// starting at 0, so whenever nobody holds the lock some outstanding
/// ticket is <= the serving counter and that thread proceeds (stale
/// duplicates barge straight in, which is more of the violation, not a
/// masking of it).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_RUNTIME_RTBROKENLOCK_H
#define CCAL_RUNTIME_RTBROKENLOCK_H

#include "audit/Recorder.h"

#include <atomic>
#include <cstdint>
#include <thread>

namespace ccal {
namespace rt {

/// Ticket lock with a torn ticket grab; audit-instrumented like
/// TicketLock so the auditor can catch it in the act.
class BrokenTicketLock {
public:
  void acquire() {
    const std::uint64_t AInv = audit::invokeNow();
    // SEEDED BUG: load + store instead of fetch_add — the relaxed orders
    // are each individually fine for a counter, but splitting the RMW
    // loses the atomicity the ticket discipline depends on.
    std::uint64_t MyTicket = Next.load(std::memory_order_relaxed);
    std::this_thread::yield(); // widen the torn window (see file comment)
    Next.store(MyTicket + 1, std::memory_order_relaxed);
    std::uint32_t Spins = 0;
    // `<`, not the verified module's `!=`: see the file comment.
    while (NowServing.load(std::memory_order_acquire) < MyTicket) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
      if (++Spins >= 1024) {
        Spins = 0;
        std::this_thread::yield();
      }
    }
    if (AInv)
      audit::record(this, audit::Method::Acq, /*HasArg=*/false, 0,
                    static_cast<std::int64_t>(MyTicket), AInv);
  }

  void release() {
    const std::uint64_t AInv = audit::invokeNow();
    std::uint64_t Served = NowServing.fetch_add(1, std::memory_order_acq_rel);
    if (AInv)
      audit::record(this, audit::Method::Rel, /*HasArg=*/false, 0,
                    static_cast<std::int64_t>(Served), AInv);
  }

private:
  alignas(64) std::atomic<std::uint64_t> Next{0};
  alignas(64) std::atomic<std::uint64_t> NowServing{0};
};

} // namespace rt
} // namespace ccal

#endif // CCAL_RUNTIME_RTBROKENLOCK_H
