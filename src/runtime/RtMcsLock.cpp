//===- runtime/RtMcsLock.cpp - Runtime MCS lock --------------------------------===//

#include "runtime/RtMcsLock.h"

template class ccal::rt::McsLock<true>;
template class ccal::rt::McsLock<false>;
template class ccal::rt::McsLock<false, /*Audit=*/false>;
