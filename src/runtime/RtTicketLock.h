//===- runtime/RtTicketLock.h - Runtime ticket lock ------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The std::atomic ticket lock matching the verified ClightX module
/// line for line (Fig. 3/10), used by the §6 performance benches.  The
/// Ghost template parameter compiles the logical-primitive calls in or
/// out, reproducing the 87-to-35-cycle experiment.
///
/// The Audit parameter (default on) wires the operation into the trace
/// auditor (audit/Recorder.h): when recording is enabled at runtime, each
/// acquire/release logs invocation/response timestamps plus the FAI ticket
/// — the return value that makes the offline linearizability search on
/// ticket traces near-deterministic.  Disabled, the cost is one relaxed
/// load per operation; composite objects that audit at their own level
/// (SharedQueue, QueuingLock) instantiate their internal locks with
/// Audit=false so a trace never mixes an object's operations with its
/// implementation details.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_RUNTIME_RTTICKETLOCK_H
#define CCAL_RUNTIME_RTTICKETLOCK_H

#include "audit/Recorder.h"
#include "runtime/GhostLog.h"

#include <atomic>
#include <thread>

namespace ccal {
namespace rt {

/// Ticket lock; \p Ghost selects the instrumented build, \p Audit the
/// trace-recorder hooks.
template <bool Ghost, bool Audit = true> class TicketLock {
public:
  void acquire() {
    const std::uint64_t AInv = Audit ? audit::invokeNow() : 0;
    // uint my_t = FAI_t();
    std::uint64_t MyTicket = Next.fetch_add(1, std::memory_order_acq_rel);
    if constexpr (Ghost)
      threadGhostLog().record(GhostFai, MyTicket);
    // while (get_n() != my_t) {}  — with the standard spin-then-yield
    // fallback so oversubscribed hosts (or single-core ones) make
    // progress at OS-scheduling rate instead of burning whole quanta.
    std::uint32_t Spins = 0;
    while (true) {
      std::uint64_t Serving = NowServing.load(std::memory_order_acquire);
      if constexpr (Ghost)
        threadGhostLog().record(GhostGetNow, Serving);
      if (Serving == MyTicket)
        break;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
      if (++Spins >= 1024) {
        Spins = 0;
        std::this_thread::yield();
      }
    }
    // hold();
    if constexpr (Ghost)
      threadGhostLog().record(GhostHold, MyTicket);
    if constexpr (Audit)
      if (AInv)
        audit::record(this, audit::Method::Acq, /*HasArg=*/false, 0,
                      static_cast<std::int64_t>(MyTicket), AInv);
  }

  void release() {
    const std::uint64_t AInv = Audit ? audit::invokeNow() : 0;
    // rel() { inc_n(); }
    std::uint64_t Served =
        NowServing.fetch_add(1, std::memory_order_acq_rel);
    if constexpr (Ghost)
      threadGhostLog().record(GhostIncNow, Served);
    if constexpr (Audit)
      if (AInv)
        audit::record(this, audit::Method::Rel, /*HasArg=*/false, 0,
                      static_cast<std::int64_t>(Served), AInv);
  }

private:
  alignas(64) std::atomic<std::uint64_t> Next{0};
  alignas(64) std::atomic<std::uint64_t> NowServing{0};
};

} // namespace rt
} // namespace ccal

#endif // CCAL_RUNTIME_RTTICKETLOCK_H
