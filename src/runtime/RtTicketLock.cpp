//===- runtime/RtTicketLock.cpp - Runtime ticket lock --------------------------===//

#include "runtime/RtTicketLock.h"

// Explicit instantiations keep the template out of every bench TU.
template class ccal::rt::TicketLock<true>;
template class ccal::rt::TicketLock<false>;
template class ccal::rt::TicketLock<false, /*Audit=*/false>;
