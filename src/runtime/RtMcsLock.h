//===- runtime/RtMcsLock.h - Runtime MCS lock ------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The std::atomic MCS queue lock matching the verified module: each
/// thread spins on its own cache line, which is why MCS scales under
/// contention where the ticket lock's shared "now serving" line does not —
/// the shape bench_lock_scaling regenerates.
///
/// The Audit parameter mirrors RtTicketLock.h: acquire/release feed the
/// trace auditor when recording is enabled.  MCS operations have no
/// informative return value, so records carry Ret = 0 and the offline
/// audit runs against the "lock" spec, where mutual exclusion is enforced
/// by the timestamp-derived real-time order alone.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_RUNTIME_RTMCSLOCK_H
#define CCAL_RUNTIME_RTMCSLOCK_H

#include "audit/Recorder.h"
#include "runtime/GhostLog.h"

#include <atomic>
#include <thread>

namespace ccal {
namespace rt {

/// MCS lock node; one per thread per lock acquisition scope.
struct McsNode {
  alignas(64) std::atomic<McsNode *> Next{nullptr};
  alignas(64) std::atomic<bool> Locked{false};
};

/// MCS lock; \p Ghost selects the instrumented build, \p Audit the
/// trace-recorder hooks.
template <bool Ghost, bool Audit = true> class McsLock {
public:
  void acquire(McsNode &Node) {
    const std::uint64_t AInv = Audit ? audit::invokeNow() : 0;
    Node.Next.store(nullptr, std::memory_order_relaxed);
    Node.Locked.store(true, std::memory_order_relaxed);
    McsNode *Prev = Tail.exchange(&Node, std::memory_order_acq_rel);
    if constexpr (Ghost)
      threadGhostLog().record(GhostSwapTail,
                              reinterpret_cast<std::uintptr_t>(Prev));
    if (Prev) {
      Prev->Next.store(&Node, std::memory_order_release);
      std::uint32_t Spins = 0;
      while (Node.Locked.load(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
        if (++Spins >= 1024) {
          Spins = 0;
          std::this_thread::yield();
        }
      }
    }
    if constexpr (Ghost)
      threadGhostLog().record(GhostHold, 0);
    if constexpr (Audit)
      if (AInv)
        audit::record(this, audit::Method::Acq, /*HasArg=*/false, 0, 0, AInv);
  }

  void release(McsNode &Node) {
    const std::uint64_t AInv = Audit ? audit::invokeNow() : 0;
    McsNode *Successor = Node.Next.load(std::memory_order_acquire);
    if (!Successor) {
      McsNode *Expected = &Node;
      if (Tail.compare_exchange_strong(Expected, nullptr,
                                       std::memory_order_acq_rel)) {
        if constexpr (Ghost)
          threadGhostLog().record(GhostCasTail, 1);
        if constexpr (Audit)
          if (AInv)
            audit::record(this, audit::Method::Rel, /*HasArg=*/false, 0, 0,
                          AInv);
        return;
      }
      if constexpr (Ghost)
        threadGhostLog().record(GhostCasTail, 0);
      std::uint32_t Spins = 0;
      while (!(Successor = Node.Next.load(std::memory_order_acquire))) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
        if (++Spins >= 1024) {
          Spins = 0;
          std::this_thread::yield();
        }
      }
    }
    Successor->Locked.store(false, std::memory_order_release);
    if constexpr (Ghost)
      threadGhostLog().record(GhostClearBusy,
                              reinterpret_cast<std::uintptr_t>(Successor));
    if constexpr (Audit)
      if (AInv)
        audit::record(this, audit::Method::Rel, /*HasArg=*/false, 0, 0, AInv);
  }

private:
  alignas(64) std::atomic<McsNode *> Tail{nullptr};
};

} // namespace rt
} // namespace ccal

#endif // CCAL_RUNTIME_RTMCSLOCK_H
