//===- runtime/RtMcsLock.h - Runtime MCS lock ------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The std::atomic MCS queue lock matching the verified module: each
/// thread spins on its own cache line, which is why MCS scales under
/// contention where the ticket lock's shared "now serving" line does not —
/// the shape bench_lock_scaling regenerates.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_RUNTIME_RTMCSLOCK_H
#define CCAL_RUNTIME_RTMCSLOCK_H

#include "runtime/GhostLog.h"

#include <atomic>
#include <thread>

namespace ccal {
namespace rt {

/// MCS lock node; one per thread per lock acquisition scope.
struct McsNode {
  alignas(64) std::atomic<McsNode *> Next{nullptr};
  alignas(64) std::atomic<bool> Locked{false};
};

/// MCS lock; \p Ghost selects the instrumented build.
template <bool Ghost> class McsLock {
public:
  void acquire(McsNode &Node) {
    Node.Next.store(nullptr, std::memory_order_relaxed);
    Node.Locked.store(true, std::memory_order_relaxed);
    McsNode *Prev = Tail.exchange(&Node, std::memory_order_acq_rel);
    if constexpr (Ghost)
      threadGhostLog().record(GhostSwapTail,
                              reinterpret_cast<std::uintptr_t>(Prev));
    if (Prev) {
      Prev->Next.store(&Node, std::memory_order_release);
      std::uint32_t Spins = 0;
      while (Node.Locked.load(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
        if (++Spins >= 1024) {
          Spins = 0;
          std::this_thread::yield();
        }
      }
    }
    if constexpr (Ghost)
      threadGhostLog().record(GhostHold, 0);
  }

  void release(McsNode &Node) {
    McsNode *Successor = Node.Next.load(std::memory_order_acquire);
    if (!Successor) {
      McsNode *Expected = &Node;
      if (Tail.compare_exchange_strong(Expected, nullptr,
                                       std::memory_order_acq_rel)) {
        if constexpr (Ghost)
          threadGhostLog().record(GhostCasTail, 1);
        return;
      }
      if constexpr (Ghost)
        threadGhostLog().record(GhostCasTail, 0);
      std::uint32_t Spins = 0;
      while (!(Successor = Node.Next.load(std::memory_order_acquire))) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
        if (++Spins >= 1024) {
          Spins = 0;
          std::this_thread::yield();
        }
      }
    }
    Successor->Locked.store(false, std::memory_order_release);
    if constexpr (Ghost)
      threadGhostLog().record(GhostClearBusy,
                              reinterpret_cast<std::uintptr_t>(Successor));
  }

private:
  alignas(64) std::atomic<McsNode *> Tail{nullptr};
};

} // namespace rt
} // namespace ccal

#endif // CCAL_RUNTIME_RTMCSLOCK_H
