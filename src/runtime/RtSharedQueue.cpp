//===- runtime/RtSharedQueue.cpp - Runtime shared queue ------------------------===//

#include "runtime/RtSharedQueue.h"

// Header-only templates; this file anchors the translation unit.
