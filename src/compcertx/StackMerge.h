//===- compcertx/StackMerge.h - Thread-safe stack merging ------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread-safe compilation story of §5.5, executable.  On the
/// thread-local layer each thread allocates stack frames into its private
/// memory; on the CPU-local layer all frames live in one thread-shared
/// memory.  The extended semantics of yield/sleep allocates *empty
/// placeholder blocks* in the yielding thread's private memory for the
/// frames other threads created meanwhile, so that the ternary relation
/// `m1 (*) m2 (*) ... ~ m` of the algebraic memory model (Fig. 12) holds at
/// every switch point.
///
/// MergedStackSim maintains both views and checks the invariant; the
/// compcertx tests drive it with real compiled code (frame push/pop per
/// Call/Ret) and randomized schedules.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_COMPCERTX_STACKMERGE_H
#define CCAL_COMPCERTX_STACKMERGE_H

#include "mem/AlgebraicMemory.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {

/// Simulates N threads on one CPU sharing a merged frame memory.
class MergedStackSim {
public:
  explicit MergedStackSim(unsigned NumThreads);

  unsigned numThreads() const {
    return static_cast<unsigned>(Private.size());
  }

  /// The currently running thread.
  unsigned current() const { return Cur; }

  /// The extended scheduling primitive: switches to \p To, first lifting
  /// \p To's private memory with placeholders for every block allocated
  /// since \p To last ran (the paper's `liftnb`).
  void yieldTo(unsigned To);

  /// The running thread calls a function: a frame block with \p Words
  /// words is allocated in its private memory and in the merged memory.
  /// Returns the block index (equal in both by construction).
  std::uint32_t pushFrame(std::int64_t Words);

  /// The running thread returns: permissions on its newest frame are
  /// freed in both memories.
  void popFrame();

  /// Stores into the running thread's newest frame.
  bool storeTop(std::int64_t Off, std::int64_t V);

  /// Loads from the running thread's newest frame.
  std::optional<std::int64_t> loadTop(std::int64_t Off) const;

  /// Checks `m1 (*) m2 (*) ... (*) mN ~ m` via the N-ary fold described at
  /// the end of §5.5.
  bool invariantHolds() const;

  const AlgMem &merged() const { return Merged; }
  const AlgMem &privateMem(unsigned T) const { return Private[T]; }

  /// Frame stack (block ids) of thread \p T.
  const std::vector<std::uint32_t> &frames(unsigned T) const {
    return FrameStacks[T];
  }

private:
  AlgMem Merged;
  std::vector<AlgMem> Private;
  std::vector<std::vector<std::uint32_t>> FrameStacks;
  unsigned Cur = 0;
};

} // namespace ccal

#endif // CCAL_COMPCERTX_STACKMERGE_H
