//===- compcertx/Validate.cpp - Translation validation ----------------------===//

#include "compcertx/Validate.h"

#include "cert/CertKeys.h"
#include "cert/CertStore.h"
#include "compcertx/Linker.h"
#include "compcertx/Optimize.h"
#include "core/Certificate.h"
#include "obs/Trace.h"
#include "support/Text.h"

using namespace ccal;

namespace {

const char ValidateCheckerVersion[] = "validate-v1";

JsonValue validationToPayload(const ValidationReport &R) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["ok"] = jsonBool(R.Ok);
  V.Fields["cases_checked"] = jsonUInt(R.CasesChecked);
  V.Fields["error"] = jsonStr(R.Error);
  V.Fields["both_stuck"] = jsonUInt(R.BothStuck);
  V.Fields["optimizer_rewrites"] = jsonUInt(R.OptimizerRewrites);
  return V;
}

bool validationFromPayload(const JsonValue &V, ValidationReport &R) {
  const JsonValue *Ok = V.field("ok");
  const JsonValue *Cases = V.field("cases_checked");
  const JsonValue *Err = V.field("error");
  const JsonValue *Stuck = V.field("both_stuck");
  const JsonValue *Rw = V.field("optimizer_rewrites");
  if (!Ok || !Ok->isBool() || !Cases || !Cases->IsInt || !Err ||
      !Err->isString() || !Stuck || !Stuck->IsInt || !Rw || !Rw->IsInt)
    return false;
  R.Ok = Ok->BoolVal;
  R.CasesChecked = static_cast<std::uint64_t>(Cases->IntVal);
  R.Error = Err->StrVal;
  R.BothStuck = static_cast<std::uint64_t>(Stuck->IntVal);
  R.OptimizerRewrites = static_cast<std::uint64_t>(Rw->IntVal);
  return true;
}

} // namespace

VmRun ccal::runVmSequential(const AsmProgramPtr &Prog, const std::string &Fn,
                            std::vector<std::int64_t> Args,
                            const PrimHandler &Prims,
                            std::uint64_t MaxSteps) {
  VmRun Out;
  Vm Machine(Prog);
  Machine.start(Fn, std::move(Args));
  Out.Globals = Prog->initialGlobals();

  while (true) {
    // The budget spans primitive resumptions: a loop around a primitive
    // call must not get a fresh budget per iteration.
    std::uint64_t Remaining =
        MaxSteps > Machine.steps() ? MaxSteps - Machine.steps() : 1;
    Vm::Status St = Machine.run(Out.Globals, Remaining);
    if (St == Vm::Status::Done) {
      Out.Ret = Machine.result();
      Out.Steps = Machine.steps();
      return Out;
    }
    if (St == Vm::Status::Error) {
      Out.Error = Machine.error();
      Out.Steps = Machine.steps();
      return Out;
    }
    // At a primitive.
    std::optional<std::int64_t> Ret =
        Prims(Machine.primName(), Machine.primArgs());
    if (!Ret) {
      Out.Error = "primitive '" + Machine.primName() + "' got stuck";
      Out.Steps = Machine.steps();
      return Out;
    }
    Out.Trace.push_back({Machine.primName(), Machine.primArgs(), *Ret});
    Machine.resumePrim(*Ret);
  }
}

namespace {

ValidationReport
validateTranslationImpl(const ClightModule &Src,
                        const std::vector<ValidationCase> &Cases,
                        const std::function<PrimHandler()> &MakePrims,
                        const ValidationOptions &Opts) {
  obs::Span ValidateSpan("compcertx.validate", "compcertx");
  ValidationReport Report;
  AsmProgramPtr Compiled = compileAndLink(Src.Name + ".lasm", {&Src});

  // The optimized program is a third, independent execution of the same
  // source: AsmProgram is a plain value, so copy then rewrite in place.
  AsmProgramPtr Optimized;
  if (Opts.CheckOptimized) {
    auto Copy = std::make_shared<AsmProgram>(*Compiled);
    Report.OptimizerRewrites = optimizeProgram(*Copy).total();
    Optimized = std::move(Copy);
  }

  for (const ValidationCase &Case : Cases) {
    ++Report.CasesChecked;

    InterpOptions RefOpts;
    RefOpts.MaxSteps = Opts.MaxSteps;
    Interp Ref(Src, MakePrims(), RefOpts);
    std::optional<std::int64_t> RefRet = Ref.call(Case.Fn, Case.Args);

    VmRun Compiled2 = runVmSequential(Compiled, Case.Fn, Case.Args,
                                      MakePrims(), Opts.MaxSteps);

    auto Mismatch = [&](const std::string &What) {
      Report.Ok = false;
      Report.Error = strFormat(
          "case %s%s: %s", Case.Fn.c_str(),
          intListToString(Case.Args).c_str(), What.c_str());
    };

    if (RefRet.has_value() != Compiled2.Ret.has_value()) {
      Mismatch(strFormat(
          "one side got stuck (interp: %s / vm: %s)",
          RefRet ? "ok" : Ref.error().c_str(),
          Compiled2.Ret ? "ok" : Compiled2.Error.c_str()));
      return Report;
    }
    bool AllStuck = !RefRet;
    if (RefRet) {
      if (*RefRet != *Compiled2.Ret) {
        Mismatch(strFormat("result mismatch: interp %lld vs vm %lld",
                           static_cast<long long>(*RefRet),
                           static_cast<long long>(*Compiled2.Ret)));
        return Report;
      }
      if (Ref.trace() != Compiled2.Trace) {
        Mismatch("primitive trace mismatch");
        return Report;
      }
      if (Ref.globals() != Compiled2.Globals) {
        Mismatch("final global memory mismatch");
        return Report;
      }
    }

    if (Opts.CheckOptimized) {
      VmRun Opt = runVmSequential(Optimized, Case.Fn, Case.Args, MakePrims(),
                                  Opts.MaxSteps);
      if (RefRet.has_value() != Opt.Ret.has_value()) {
        Mismatch(strFormat(
            "optimized code diverges on stuckness (interp: %s / opt vm: %s)",
            RefRet ? "ok" : Ref.error().c_str(),
            Opt.Ret ? "ok" : Opt.Error.c_str()));
        return Report;
      }
      if (RefRet) {
        if (*RefRet != *Opt.Ret) {
          Mismatch(strFormat(
              "optimizer changed the result: interp %lld vs opt vm %lld",
              static_cast<long long>(*RefRet),
              static_cast<long long>(*Opt.Ret)));
          return Report;
        }
        if (Ref.trace() != Opt.Trace) {
          Mismatch("optimizer changed the primitive trace");
          return Report;
        }
        if (Ref.globals() != Opt.Globals) {
          Mismatch("optimizer changed the final global memory");
          return Report;
        }
      }
    }

    if (AllStuck)
      // Every execution went wrong; the compiler (and, when checked, the
      // optimizer) preserved the error behavior.
      ++Report.BothStuck;
  }
  return Report;
}

} // namespace

ValidationReport
ccal::validateTranslation(const ClightModule &Src,
                          const std::vector<ValidationCase> &Cases,
                          const std::function<PrimHandler()> &MakePrims,
                          const ValidationOptions &Opts) {
  // Load-or-recheck front-end: cacheable only when the caller named the
  // opaque primitive-handler factory via ValidationOptions::PrimsKey.
  cert::CertStore *Store = cert::store();
  if (!Store || Opts.PrimsKey.empty())
    return validateTranslationImpl(Src, Cases, MakePrims, Opts);

  cert::CertKey Key;
  Key.Checker = "validate";
  Key.Version = ValidateCheckerVersion;
  Key.Desc = strFormat("translation validation: %s (%zu cases)",
                       Src.Name.c_str(), Cases.size());
  Hasher H;
  cert::keyAddModule(H, Src);
  H.u64(Cases.size());
  for (const ValidationCase &Case : Cases) {
    H.str(Case.Fn);
    H.i64s(Case.Args);
  }
  H.u64(Opts.MaxSteps).b(Opts.CheckOptimized).str(Opts.PrimsKey);
  Key.Hash = H.value();

  ValidationReport Report;
  Store->getOrCheck(
      Key,
      [&](const cert::CertStore::Entry &E) {
        return validationFromPayload(E.Payload, Report);
      },
      [&] {
        Report = validateTranslationImpl(Src, Cases, MakePrims, Opts);
        cert::CertStore::Entry Out;
        auto C = std::make_shared<RefinementCertificate>();
        C->Rule = "Validate";
        C->Underlay = Src.Name + ".lasm";
        C->Module = Src.Name;
        C->Overlay = Src.Name + " (ClightX reference)";
        C->Relation = "trace-equality";
        // Every requested case was executed to a verdict, so coverage is
        // complete by construction even when the verdict is a mismatch.
        C->CoverageComplete = true;
        C->Coverage = strFormat("%llu of %zu cases",
                                static_cast<unsigned long long>(
                                    Report.CasesChecked),
                                Cases.size());
        C->Valid = Report.Ok;
        C->Obligations = Report.CasesChecked;
        if (!Report.Ok)
          C->Notes.push_back(Report.Error);
        Out.Cert = std::move(C);
        Out.Payload = validationToPayload(Report);
        return Out;
      });
  return Report;
}

ValidationReport
ccal::validateTranslation(const ClightModule &Src,
                          const std::vector<ValidationCase> &Cases,
                          const std::function<PrimHandler()> &MakePrims,
                          std::uint64_t MaxSteps) {
  ValidationOptions Opts;
  Opts.MaxSteps = MaxSteps;
  return validateTranslation(Src, Cases, MakePrims, Opts);
}
