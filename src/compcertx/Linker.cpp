//===- compcertx/Linker.cpp - Certified LAsm linking ------------------------===//

#include "compcertx/Linker.h"

#include "compcertx/CodeGen.h"
#include "obs/Trace.h"
#include "support/Check.h"

#include <map>

using namespace ccal;

AsmProgramPtr
ccal::linkPrograms(std::string Name,
                   const std::vector<const AsmProgram *> &Mods) {
  obs::Span LinkSpan("compcertx.link", "compcertx");
  auto Out = std::make_shared<AsmProgram>();
  Out->Name = std::move(Name);

  // Pass 1: lay out globals and collect function definitions.
  std::map<std::string, const AsmGlobal *> GlobalBySym;
  std::int32_t NextAddr = 0;
  for (const AsmProgram *M : Mods) {
    for (const AsmGlobal &G : M->Globals) {
      CCAL_CHECK(!GlobalBySym.count(G.Name), "link: duplicate global");
      AsmGlobal Laid = G;
      Laid.Addr = NextAddr;
      NextAddr += G.Size;
      Out->Globals.push_back(std::move(Laid));
      GlobalBySym.emplace(G.Name, &Out->Globals.back());
    }
  }
  // (Re)build the map: the vector may have reallocated.
  GlobalBySym.clear();
  for (const AsmGlobal &G : Out->Globals)
    GlobalBySym.emplace(G.Name, &G);

  std::map<std::string, int> FuncIdx;
  for (const AsmProgram *M : Mods)
    for (const AsmFunc &F : M->Funcs) {
      CCAL_CHECK(!FuncIdx.count(F.Name), "link: duplicate function");
      FuncIdx.emplace(F.Name, static_cast<int>(Out->Funcs.size()));
      Out->Funcs.push_back(F);
    }

  // Pass 2: resolve symbolic references.
  for (AsmFunc &F : Out->Funcs) {
    for (Instr &I : F.Code) {
      switch (I.Op) {
      case Opcode::LoadG:
      case Opcode::StoreG:
      case Opcode::LoadGI:
      case Opcode::StoreGI: {
        auto It = GlobalBySym.find(I.Sym);
        CCAL_CHECK(It != GlobalBySym.end(), "link: undefined global symbol");
        I.Target = It->second->Addr;
        break;
      }
      case Opcode::Call:
      case Opcode::Prim: {
        auto It = FuncIdx.find(I.Sym);
        if (It != FuncIdx.end()) {
          // Defined here: a Prim to an intermediate layer becomes a Call.
          I.Op = Opcode::Call;
          I.Target = It->second;
          const AsmFunc &Callee = Out->Funcs[static_cast<size_t>(It->second)];
          CCAL_CHECK(Callee.NumParams == static_cast<unsigned>(I.Imm),
                     "link: call arity mismatch");
        } else {
          // Stays an underlay primitive, bound at run time.
          CCAL_CHECK(I.Op == Opcode::Prim || !I.Sym.empty(),
                     "link: unresolved call");
          I.Op = Opcode::Prim;
        }
        break;
      }
      default:
        break;
      }
    }
  }

  Out->Linked = true;
  return Out;
}

AsmProgramPtr
ccal::compileAndLink(std::string Name,
                     const std::vector<const ClightModule *> &Mods) {
  std::vector<AsmProgram> Compiled;
  Compiled.reserve(Mods.size());
  for (const ClightModule *M : Mods)
    Compiled.push_back(compileModule(*M));
  std::vector<const AsmProgram *> Ptrs;
  Ptrs.reserve(Compiled.size());
  for (const AsmProgram &P : Compiled)
    Ptrs.push_back(&P);
  return linkPrograms(std::move(Name), Ptrs);
}
