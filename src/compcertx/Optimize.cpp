//===- compcertx/Optimize.cpp - LAsm peephole optimizer -----------------------===//

#include "compcertx/Optimize.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Check.h"

#include <optional>
#include <set>

using namespace ccal;

namespace {

bool isBranch(Opcode Op) {
  return Op == Opcode::Jmp || Op == Opcode::Jz || Op == Opcode::Jnz;
}

/// Folds `A op B`; returns std::nullopt when the operator is not a pure
/// total binary operation on these operands (division by zero traps and
/// must be preserved).
std::optional<std::int64_t> foldBinary(Opcode Op, std::int64_t A,
                                       std::int64_t B) {
  switch (Op) {
  case Opcode::Add:
    return A + B;
  case Opcode::Sub:
    return A - B;
  case Opcode::Mul:
    return A * B;
  case Opcode::Div:
    return B == 0 ? std::nullopt : std::optional<std::int64_t>(A / B);
  case Opcode::Mod:
    return B == 0 ? std::nullopt : std::optional<std::int64_t>(A % B);
  case Opcode::Eq:
    return A == B ? 1 : 0;
  case Opcode::Ne:
    return A != B ? 1 : 0;
  case Opcode::Lt:
    return A < B ? 1 : 0;
  case Opcode::Le:
    return A <= B ? 1 : 0;
  case Opcode::Gt:
    return A > B ? 1 : 0;
  case Opcode::Ge:
    return A >= B ? 1 : 0;
  default:
    return std::nullopt;
  }
}

/// The logical negation of a comparison opcode, if any.
std::optional<Opcode> negatedCompare(Opcode Op) {
  switch (Op) {
  case Opcode::Eq:
    return Opcode::Ne;
  case Opcode::Ne:
    return Opcode::Eq;
  case Opcode::Lt:
    return Opcode::Ge;
  case Opcode::Le:
    return Opcode::Gt;
  case Opcode::Gt:
    return Opcode::Le;
  case Opcode::Ge:
    return Opcode::Lt;
  default:
    return std::nullopt;
  }
}

/// One rewrite pass; returns true when anything changed.
bool runPass(AsmFunc &F, OptimizeStats &Stats) {
  const std::vector<Instr> &Code = F.Code;
  size_t N = Code.size();

  std::set<std::int32_t> Targets;
  for (const Instr &I : Code)
    if (isBranch(I.Op))
      Targets.insert(I.Target);

  // A window starting at i may consume instructions i+1.. only when none
  // of them is a branch target (a branch into the middle of a rewritten
  // window would observe a different operand stack).
  auto Free = [&](size_t Idx) {
    return !Targets.count(static_cast<std::int32_t>(Idx));
  };

  std::vector<Instr> Out;
  std::vector<std::int32_t> OldToNew(N + 1, 0);
  bool Changed = false;

  size_t I = 0;
  while (I < N) {
    OldToNew[I] = static_cast<std::int32_t>(Out.size());
    const Instr &A = Code[I];

    // push a; push b; <binop>  ->  push (a op b)
    if (A.Op == Opcode::Push && I + 2 < N && Free(I + 1) && Free(I + 2) &&
        Code[I + 1].Op == Opcode::Push) {
      std::optional<std::int64_t> V =
          foldBinary(Code[I + 2].Op, A.Imm, Code[I + 1].Imm);
      if (V) {
        OldToNew[I + 1] = static_cast<std::int32_t>(Out.size());
        OldToNew[I + 2] = static_cast<std::int32_t>(Out.size());
        Out.push_back(Instr::push(*V));
        ++Stats.Folded;
        Changed = true;
        I += 3;
        continue;
      }
    }

    // push v; not/neg  ->  push (!v / -v)
    if (A.Op == Opcode::Push && I + 1 < N && Free(I + 1) &&
        (Code[I + 1].Op == Opcode::Not || Code[I + 1].Op == Opcode::Neg)) {
      std::int64_t V =
          Code[I + 1].Op == Opcode::Not ? (A.Imm == 0 ? 1 : 0) : -A.Imm;
      OldToNew[I + 1] = static_cast<std::int32_t>(Out.size());
      Out.push_back(Instr::push(V));
      ++Stats.Folded;
      Changed = true;
      I += 2;
      continue;
    }

    // push v; pop  ->  (nothing)
    if (A.Op == Opcode::Push && I + 1 < N && Free(I + 1) &&
        Code[I + 1].Op == Opcode::Pop) {
      OldToNew[I] = static_cast<std::int32_t>(Out.size());
      OldToNew[I + 1] = static_cast<std::int32_t>(Out.size());
      ++Stats.DeadPushes;
      Changed = true;
      I += 2;
      continue;
    }

    // <cmp>; not  ->  <negated cmp>
    if (I + 1 < N && Free(I + 1) && Code[I + 1].Op == Opcode::Not) {
      if (std::optional<Opcode> Neg = negatedCompare(A.Op)) {
        OldToNew[I + 1] = static_cast<std::int32_t>(Out.size());
        Out.push_back(Instr(*Neg));
        ++Stats.FusedCompares;
        Changed = true;
        I += 2;
        continue;
      }
    }

    // push k; jz/jnz L  ->  jmp L or nothing
    if (A.Op == Opcode::Push && I + 1 < N && Free(I + 1) &&
        (Code[I + 1].Op == Opcode::Jz || Code[I + 1].Op == Opcode::Jnz)) {
      bool Taken = Code[I + 1].Op == Opcode::Jz ? A.Imm == 0 : A.Imm != 0;
      OldToNew[I + 1] = static_cast<std::int32_t>(Out.size());
      if (Taken)
        Out.push_back(Instr(Opcode::Jmp, Code[I + 1].Target));
      ++Stats.ConstBranches;
      Changed = true;
      I += 2;
      continue;
    }

    // jmp (next)  ->  (nothing)
    if (A.Op == Opcode::Jmp &&
        A.Target == static_cast<std::int32_t>(I) + 1) {
      ++Stats.JumpThreads;
      Changed = true;
      I += 1;
      continue;
    }

    Out.push_back(A);
    ++I;
  }
  OldToNew[N] = static_cast<std::int32_t>(Out.size());

  if (!Changed)
    return false;

  // Remap branch targets through the deletions.
  for (Instr &Ins : Out) {
    if (!isBranch(Ins.Op))
      continue;
    CCAL_CHECK(Ins.Target >= 0 &&
                   static_cast<size_t>(Ins.Target) < OldToNew.size(),
               "optimizer: branch target out of range");
    Ins.Target = OldToNew[static_cast<size_t>(Ins.Target)];
  }
  F.Code = std::move(Out);
  return true;
}

} // namespace

OptimizeStats ccal::optimizeFunction(AsmFunc &F) {
  OptimizeStats Stats;
  for (unsigned Pass = 0; Pass != 8; ++Pass) {
    ++Stats.Passes;
    if (!runPass(F, Stats))
      break;
  }
  return Stats;
}

OptimizeStats ccal::optimizeProgram(AsmProgram &P) {
  obs::Span OptSpan("compcertx.optimize", "compcertx");
  OptimizeStats Total;
  for (AsmFunc &F : P.Funcs) {
    OptimizeStats S = optimizeFunction(F);
    Total.Folded += S.Folded;
    Total.DeadPushes += S.DeadPushes;
    Total.FusedCompares += S.FusedCompares;
    Total.ConstBranches += S.ConstBranches;
    Total.JumpThreads += S.JumpThreads;
    Total.Passes += S.Passes;
  }
  if (obs::enabled()) {
    obs::counterAdd("compcertx.opt.folded", Total.Folded);
    obs::counterAdd("compcertx.opt.dead_pushes", Total.DeadPushes);
    obs::counterAdd("compcertx.opt.fused_compares", Total.FusedCompares);
    obs::counterAdd("compcertx.opt.const_branches", Total.ConstBranches);
    obs::counterAdd("compcertx.opt.jump_threads", Total.JumpThreads);
  }
  return Total;
}
