//===- compcertx/CodeGen.cpp - ClightX -> LAsm compiler ---------------------===//

#include "compcertx/CodeGen.h"

#include "obs/Trace.h"
#include "support/Check.h"

using namespace ccal;

namespace {

/// Compiles one function body to stack code.
class FuncCompiler {
public:
  FuncCompiler(const ClightModule &M, const FuncDecl &F) : M(M), F(F) {}

  AsmFunc run() {
    AsmFunc Out;
    Out.Name = F.Name;
    Out.NumParams = static_cast<unsigned>(F.Params.size());
    Out.NumSlots = static_cast<unsigned>(F.NumSlots);
    genStmt(*F.Body);
    // Falling off the end returns 0 (covers void functions).
    emit(Instr::push(0));
    emit(Instr(Opcode::Ret));
    Out.Code = std::move(Code);
    return Out;
  }

private:
  std::int32_t here() const { return static_cast<std::int32_t>(Code.size()); }
  void emit(Instr I) { Code.push_back(std::move(I)); }

  /// Emits a jump with a to-be-patched target; returns its index.
  size_t emitJump(Opcode Op) {
    emit(Instr(Op, -1));
    return Code.size() - 1;
  }
  void patch(size_t JumpIdx, std::int32_t Target) {
    Code[JumpIdx].Target = Target;
  }

  void genStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Block:
      for (const StmtPtr &Child : S.Body)
        genStmt(*Child);
      return;
    case Stmt::Kind::If: {
      genExpr(*S.Cond);
      size_t ToElse = emitJump(Opcode::Jz);
      genStmt(*S.Then);
      if (S.Else) {
        size_t ToEnd = emitJump(Opcode::Jmp);
        patch(ToElse, here());
        genStmt(*S.Else);
        patch(ToEnd, here());
      } else {
        patch(ToElse, here());
      }
      return;
    }
    case Stmt::Kind::While: {
      std::int32_t Start = here();
      genExpr(*S.Cond);
      size_t ToEnd = emitJump(Opcode::Jz);
      BreakPatches.emplace_back();
      ContinueTargets.push_back(Start);
      genStmt(*S.Then);
      emit(Instr(Opcode::Jmp, Start));
      patch(ToEnd, here());
      for (size_t J : BreakPatches.back())
        patch(J, here());
      BreakPatches.pop_back();
      ContinueTargets.pop_back();
      return;
    }
    case Stmt::Kind::Return:
      if (S.A)
        genExpr(*S.A);
      else
        emit(Instr::push(0));
      emit(Instr(Opcode::Ret));
      return;
    case Stmt::Kind::LocalDecl:
      if (S.A)
        genExpr(*S.A);
      else
        emit(Instr::push(0));
      emit(Instr(Opcode::StoreL, S.LocalSlot));
      return;
    case Stmt::Kind::Assign:
      genExpr(*S.A);
      if (S.LocalSlot >= 0) {
        emit(Instr(Opcode::StoreL, S.LocalSlot));
      } else {
        emit(Instr::withSym(Opcode::StoreG, S.Name));
      }
      return;
    case Stmt::Kind::IndexAssign: {
      const GlobalDecl *G = M.findGlobal(S.Name);
      CCAL_CHECK(G != nullptr, "codegen: unresolved global");
      genExpr(*S.B); // index
      genExpr(*S.A); // value
      emit(Instr::withSym(Opcode::StoreGI, S.Name, G->Size));
      return;
    }
    case Stmt::Kind::ExprStmt:
      genExpr(*S.A);
      emit(Instr(Opcode::Pop));
      return;
    case Stmt::Kind::Break: {
      CCAL_CHECK(!BreakPatches.empty(), "codegen: break outside loop");
      size_t J = emitJump(Opcode::Jmp);
      BreakPatches.back().push_back(J);
      return;
    }
    case Stmt::Kind::Continue:
      CCAL_CHECK(!ContinueTargets.empty(), "codegen: continue outside loop");
      emit(Instr(Opcode::Jmp, ContinueTargets.back()));
      return;
    }
    CCAL_UNREACHABLE("unknown statement kind");
  }

  void genExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      emit(Instr::push(E.IntVal));
      return;
    case Expr::Kind::Var:
      if (E.LocalSlot >= 0)
        emit(Instr(Opcode::LoadL, E.LocalSlot));
      else
        emit(Instr::withSym(Opcode::LoadG, E.Name));
      return;
    case Expr::Kind::Index: {
      const GlobalDecl *G = M.findGlobal(E.Name);
      CCAL_CHECK(G != nullptr, "codegen: unresolved global");
      genExpr(*E.Args[0]);
      emit(Instr::withSym(Opcode::LoadGI, E.Name, G->Size));
      return;
    }
    case Expr::Kind::Call: {
      for (const ExprPtr &A : E.Args)
        genExpr(*A);
      Opcode Op = E.CalleeExtern ? Opcode::Prim : Opcode::Call;
      emit(Instr::withSym(Op, E.Name,
                          static_cast<std::int64_t>(E.Args.size())));
      return;
    }
    case Expr::Kind::Unary:
      genExpr(*E.Args[0]);
      emit(Instr(E.Op == "!" ? Opcode::Not : Opcode::Neg));
      return;
    case Expr::Kind::Binary:
      genBinary(E);
      return;
    }
    CCAL_UNREACHABLE("unknown expression kind");
  }

  void genBinary(const Expr &E) {
    // Short-circuit forms must match the reference interpreter: the right
    // operand (and any primitive calls in it) is skipped when the left
    // operand decides.
    if (E.Op == "&&") {
      genExpr(*E.Args[0]);
      size_t ToFalse1 = emitJump(Opcode::Jz);
      genExpr(*E.Args[1]);
      size_t ToFalse2 = emitJump(Opcode::Jz);
      emit(Instr::push(1));
      size_t ToEnd = emitJump(Opcode::Jmp);
      patch(ToFalse1, here());
      patch(ToFalse2, here());
      emit(Instr::push(0));
      patch(ToEnd, here());
      return;
    }
    if (E.Op == "||") {
      genExpr(*E.Args[0]);
      size_t ToTrue1 = emitJump(Opcode::Jnz);
      genExpr(*E.Args[1]);
      size_t ToTrue2 = emitJump(Opcode::Jnz);
      emit(Instr::push(0));
      size_t ToEnd = emitJump(Opcode::Jmp);
      patch(ToTrue1, here());
      patch(ToTrue2, here());
      emit(Instr::push(1));
      patch(ToEnd, here());
      return;
    }
    genExpr(*E.Args[0]);
    genExpr(*E.Args[1]);
    Opcode Op;
    if (E.Op == "+")
      Op = Opcode::Add;
    else if (E.Op == "-")
      Op = Opcode::Sub;
    else if (E.Op == "*")
      Op = Opcode::Mul;
    else if (E.Op == "/")
      Op = Opcode::Div;
    else if (E.Op == "%")
      Op = Opcode::Mod;
    else if (E.Op == "==")
      Op = Opcode::Eq;
    else if (E.Op == "!=")
      Op = Opcode::Ne;
    else if (E.Op == "<")
      Op = Opcode::Lt;
    else if (E.Op == "<=")
      Op = Opcode::Le;
    else if (E.Op == ">")
      Op = Opcode::Gt;
    else if (E.Op == ">=")
      Op = Opcode::Ge;
    else
      CCAL_UNREACHABLE("unknown binary operator");
    emit(Instr(Op));
  }

  const ClightModule &M;
  const FuncDecl &F;
  std::vector<Instr> Code;
  std::vector<std::vector<size_t>> BreakPatches;
  std::vector<std::int32_t> ContinueTargets;
};

} // namespace

AsmProgram ccal::compileModule(const ClightModule &M) {
  obs::Span CgSpan("compcertx.codegen", "compcertx");
  AsmProgram Out;
  Out.Name = M.Name;
  Out.Linked = false;
  for (const GlobalDecl &G : M.Globals) {
    AsmGlobal AG;
    AG.Name = G.Name;
    AG.Size = G.Size;
    AG.Init = G.Init;
    AG.Addr = -1;
    Out.Globals.push_back(std::move(AG));
  }
  for (const FuncDecl &F : M.Funcs) {
    if (F.IsExtern)
      continue;
    FuncCompiler FC(M, F);
    Out.Funcs.push_back(FC.run());
  }
  return Out;
}
