//===- compcertx/CodeGen.h - ClightX -> LAsm compiler ----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CompCertX-analogue code generator: compiles one ClightX module into
/// an unlinked LAsm module.  Like CompCertX, compilation is *per module*
/// (separate compilation): calls to functions the module does not define —
/// the primitives of its underlay interface — become symbolic Prim
/// instructions, resolved or preserved by the linker.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_COMPCERTX_CODEGEN_H
#define CCAL_COMPCERTX_CODEGEN_H

#include "lang/Ast.h"
#include "lasm/Program.h"

namespace ccal {

/// Compiles a typechecked module; aborts on internal inconsistencies (the
/// type checker must have accepted the module first).
AsmProgram compileModule(const ClightModule &M);

} // namespace ccal

#endif // CCAL_COMPCERTX_CODEGEN_H
