//===- compcertx/Validate.h - Translation validation -----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation for the CompCertX analogue.  The paper proves the
/// compiler correct once and for all in Coq; here each (program, input)
/// pair is validated: the ClightX reference interpreter and the compiled
/// LAsm code must produce identical results, identical primitive traces
/// (the observable events), and identical final global memories.  The
/// ClightX program fuzzer in tests widens this to randomly generated
/// programs.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_COMPCERTX_VALIDATE_H
#define CCAL_COMPCERTX_VALIDATE_H

#include "lang/Interp.h"
#include "lasm/Vm.h"

#include <optional>
#include <string>
#include <vector>

namespace ccal {

/// Outcome of a sequential LAsm run driven by a PrimHandler.
struct VmRun {
  std::optional<std::int64_t> Ret; ///< nullopt on trap / stuck primitive
  std::vector<PrimTraceEntry> Trace;
  std::vector<std::int64_t> Globals;
  std::string Error;
  std::uint64_t Steps = 0;
};

/// Runs \p Fn of the linked program sequentially, dispatching primitives
/// to \p Prims.
VmRun runVmSequential(const AsmProgramPtr &Prog, const std::string &Fn,
                      std::vector<std::int64_t> Args, const PrimHandler &Prims,
                      std::uint64_t MaxSteps = 1u << 22);

/// One validation case: a function to call and its arguments.
struct ValidationCase {
  std::string Fn;
  std::vector<std::int64_t> Args;
};

/// Knobs for validateTranslation.
struct ValidationOptions {
  std::uint64_t MaxSteps = 1u << 22;

  /// Three-way differential: additionally run the Optimize-pass output and
  /// require it to agree with the interpreter and the unoptimized LAsm on
  /// result, primitive trace, and final memory (CompCert proves its
  /// optimizations; this validates ours per run).
  bool CheckOptimized = false;

  /// Stable name identifying MakePrims' semantics in certificate-store
  /// keys ("prims:counter-v1", ...).  The handler factory is an opaque
  /// callable the key cannot hash, so validations are cacheable only when
  /// the caller names it; the default empty key bypasses the store (fail
  /// closed).  Everything else — the module AST, the cases, the budgets —
  /// is hashed structurally.
  std::string PrimsKey;
};

/// Result of validating a compilation.
struct ValidationReport {
  bool Ok = true;
  std::uint64_t CasesChecked = 0;
  std::string Error; ///< first mismatch, with context

  /// Both executions diverged/trapped identically on this many cases; such
  /// cases count as agreeing (the compiler must preserve going wrong).
  std::uint64_t BothStuck = 0;

  /// Rewrites the optimizer performed on the program under test (0 when
  /// CheckOptimized is off) — fuzz coverage of the optimizer is only as
  /// good as this stays non-trivial across the corpus.
  std::uint64_t OptimizerRewrites = 0;
};

/// Validates that the compiled-and-linked form of \p Src agrees with the
/// reference interpreter on every case.  \p MakePrims builds a fresh
/// deterministic primitive handler per execution so that all sides see
/// identical primitive behavior.
ValidationReport
validateTranslation(const ClightModule &Src,
                    const std::vector<ValidationCase> &Cases,
                    const std::function<PrimHandler()> &MakePrims,
                    const ValidationOptions &Opts);

/// Back-compat form: two-way (interpreter vs unoptimized LAsm) only.
ValidationReport
validateTranslation(const ClightModule &Src,
                    const std::vector<ValidationCase> &Cases,
                    const std::function<PrimHandler()> &MakePrims,
                    std::uint64_t MaxSteps = 1u << 22);

} // namespace ccal

#endif // CCAL_COMPCERTX_VALIDATE_H
