//===- compcertx/Optimize.h - LAsm peephole optimizer ----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A peephole optimizer over LAsm, in the spirit of CompCert's verified
/// optimization passes — here each run is *validated* instead of verified:
/// the fuzz and validation suites execute optimized and unoptimized code
/// side by side and require identical results, traces, and memories.
///
/// Rewrites (iterated to a fixpoint):
///   * constant folding:        push a; push b; add   ->  push (a+b)
///                              (division left alone when it could trap)
///   * dead push:               push v; pop           ->  (nothing)
///   * comparison fusion:       eq; not               ->  ne   (and duals)
///   * constant branches:       push 0; jz L          ->  jmp L
///                              push k; jz L (k != 0) ->  (nothing)
///   * jump-to-next:            jmp (pc+1)            ->  (nothing)
///
/// Deletions remap every branch target; the optimizer refuses functions
/// whose targets it cannot account for (there are none produced by the
/// code generator).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_COMPCERTX_OPTIMIZE_H
#define CCAL_COMPCERTX_OPTIMIZE_H

#include "lasm/Program.h"

namespace ccal {

/// Statistics of one optimization run.
struct OptimizeStats {
  std::uint64_t Folded = 0;
  std::uint64_t DeadPushes = 0;
  std::uint64_t FusedCompares = 0;
  std::uint64_t ConstBranches = 0;
  std::uint64_t JumpThreads = 0;
  std::uint64_t Passes = 0;

  std::uint64_t total() const {
    return Folded + DeadPushes + FusedCompares + ConstBranches + JumpThreads;
  }
};

/// Optimizes one function in place.
OptimizeStats optimizeFunction(AsmFunc &F);

/// Optimizes every function of a (linked or unlinked) program in place.
OptimizeStats optimizeProgram(AsmProgram &P);

} // namespace ccal

#endif // CCAL_COMPCERTX_OPTIMIZE_H
