//===- compcertx/Linker.h - Certified LAsm linking -------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LAsm linker: the `(+)` operator at the assembly level.  It lays out
/// the global memory of all modules, resolves symbolic references, turns
/// cross-module Prim calls into direct Calls when a sibling module defines
/// the symbol (the layer-linking story of §5.5: primitives of an
/// intermediate interface become plain code once their implementation is
/// linked in), and leaves genuinely external symbols as Prim instructions
/// bound to the underlay interface at run time.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_COMPCERTX_LINKER_H
#define CCAL_COMPCERTX_LINKER_H

#include "lang/Ast.h"
#include "lasm/Program.h"

#include <vector>

namespace ccal {

/// Links the given compiled modules into one runnable program.  Duplicate
/// function or global definitions abort (certified linking rejects them).
AsmProgramPtr linkPrograms(std::string Name,
                           const std::vector<const AsmProgram *> &Mods);

/// Compiles and links one or more ClightX modules (they must already be
/// typechecked).
AsmProgramPtr compileAndLink(std::string Name,
                             const std::vector<const ClightModule *> &Mods);

} // namespace ccal

#endif // CCAL_COMPCERTX_LINKER_H
