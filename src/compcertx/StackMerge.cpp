//===- compcertx/StackMerge.cpp - Thread-safe stack merging -----------------===//

#include "compcertx/StackMerge.h"

#include "support/Check.h"

using namespace ccal;

MergedStackSim::MergedStackSim(unsigned NumThreads)
    : Private(NumThreads), FrameStacks(NumThreads) {
  CCAL_CHECK(NumThreads >= 1, "need at least one thread");
}

void MergedStackSim::yieldTo(unsigned To) {
  CCAL_CHECK(To < Private.size(), "yield target out of range");
  Cur = To;
  // Extended yield semantics: placeholders for frames allocated by other
  // threads while `To` was off-CPU.
  std::uint32_t Gap = Merged.nb() - Private[To].nb();
  Private[To].liftnb(Gap);
}

std::uint32_t MergedStackSim::pushFrame(std::int64_t Words) {
  AlgMem &Mine = Private[Cur];
  // The running thread is always fully lifted (yieldTo maintains this).
  CCAL_CHECK(Mine.nb() == Merged.nb(),
             "running thread's private memory must be current");
  std::uint32_t BPriv = Mine.alloc(0, Words);
  std::uint32_t BMerged = Merged.alloc(0, Words);
  CCAL_CHECK(BPriv == BMerged, "frame block ids must agree");
  FrameStacks[Cur].push_back(BMerged);
  return BMerged;
}

void MergedStackSim::popFrame() {
  auto &Stack = FrameStacks[Cur];
  CCAL_CHECK(!Stack.empty(), "popFrame: no live frame");
  std::uint32_t B = Stack.back();
  Stack.pop_back();
  CCAL_CHECK(Private[Cur].freeBlock(B), "popFrame: private free failed");
  CCAL_CHECK(Merged.freeBlock(B), "popFrame: merged free failed");
}

bool MergedStackSim::storeTop(std::int64_t Off, std::int64_t V) {
  auto &Stack = FrameStacks[Cur];
  if (Stack.empty())
    return false;
  MemLoc Loc{Stack.back(), Off};
  bool OkPriv = Private[Cur].store(Loc, V);
  bool OkMerged = Merged.store(Loc, V);
  CCAL_CHECK(OkPriv == OkMerged, "store must agree between views");
  return OkMerged;
}

std::optional<std::int64_t> MergedStackSim::loadTop(std::int64_t Off) const {
  const auto &Stack = FrameStacks[Cur];
  if (Stack.empty())
    return std::nullopt;
  return Merged.load(MemLoc{Stack.back(), Off});
}

bool MergedStackSim::invariantHolds() const {
  // m' = m1 (*) ... (*) m(N-1), then mN (*) m' ~ m (§5.5's N-ary
  // generalization).  Composition of private memories must be defined and
  // equal to the merged memory up to trailing placeholder blocks, which we
  // normalize by lifting the fold result to nb(Merged).
  AlgMem Acc = Private[0];
  for (size_t T = 1; T != Private.size(); ++T) {
    std::optional<AlgMem> Next = AlgMem::compose(Acc, Private[T]);
    if (!Next)
      return false;
    Acc = std::move(*Next);
  }
  if (Acc.nb() < Merged.nb())
    Acc.liftnb(Merged.nb() - Acc.nb());
  return Acc == Merged;
}
