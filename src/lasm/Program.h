//===- lasm/Program.h - LAsm programs and modules --------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LAsm functions, object modules (separately compiled, with symbolic
/// references), and linked programs runnable by the VM.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_LASM_PROGRAM_H
#define CCAL_LASM_PROGRAM_H

#include "lasm/Instr.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ccal {

/// One compiled function.
struct AsmFunc {
  std::string Name;
  unsigned NumParams = 0;
  unsigned NumSlots = 0; ///< params + locals
  std::vector<Instr> Code;

  std::string disassemble() const;
};

/// A global reservation in CPU-local memory.
struct AsmGlobal {
  std::string Name;
  std::int32_t Addr = -1; ///< assigned by the linker
  std::int32_t Size = 1;
  std::vector<std::int64_t> Init;
};

/// A compiled (possibly unlinked) LAsm module/program.  Before linking,
/// Call/LoadG/etc. carry symbolic references; after linking every Target is
/// resolved, unresolved Calls have become Prims (underlay primitives), and
/// the program is immutable and shareable between VMs.
struct AsmProgram {
  std::string Name;
  std::vector<AsmFunc> Funcs;
  std::vector<AsmGlobal> Globals;
  bool Linked = false;

  const AsmFunc *findFunc(const std::string &Name) const;
  int funcIndex(const std::string &Name) const; ///< -1 when absent
  const AsmGlobal *findGlobal(const std::string &Name) const;

  /// Total words of global memory (after linking).
  std::int32_t globalWords() const;

  /// The initial CPU-local memory image (after linking).
  std::vector<std::int64_t> initialGlobals() const;

  /// Address of global \p Name; aborts when absent or unlinked.
  std::int32_t globalAddr(const std::string &Name) const;

  std::string disassemble() const;
};

using AsmProgramPtr = std::shared_ptr<const AsmProgram>;

} // namespace ccal

#endif // CCAL_LASM_PROGRAM_H
