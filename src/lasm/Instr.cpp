//===- lasm/Instr.cpp - LAsm instruction set --------------------------------===//

#include "lasm/Instr.h"

#include "support/Text.h"

using namespace ccal;

const char *ccal::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Push:
    return "push";
  case Opcode::Pop:
    return "pop";
  case Opcode::LoadL:
    return "loadl";
  case Opcode::StoreL:
    return "storel";
  case Opcode::LoadG:
    return "loadg";
  case Opcode::StoreG:
    return "storeg";
  case Opcode::LoadGI:
    return "loadgi";
  case Opcode::StoreGI:
    return "storegi";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Mod:
    return "mod";
  case Opcode::Eq:
    return "eq";
  case Opcode::Ne:
    return "ne";
  case Opcode::Lt:
    return "lt";
  case Opcode::Le:
    return "le";
  case Opcode::Gt:
    return "gt";
  case Opcode::Ge:
    return "ge";
  case Opcode::Not:
    return "not";
  case Opcode::Neg:
    return "neg";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Jz:
    return "jz";
  case Opcode::Jnz:
    return "jnz";
  case Opcode::Call:
    return "call";
  case Opcode::Prim:
    return "prim";
  case Opcode::Ret:
    return "ret";
  case Opcode::Halt:
    return "halt";
  }
  return "?";
}

std::string Instr::toString() const {
  std::string Out = opcodeName(Op);
  switch (Op) {
  case Opcode::Push:
    return Out + " " + std::to_string(Imm);
  case Opcode::LoadL:
  case Opcode::StoreL:
  case Opcode::Jmp:
  case Opcode::Jz:
  case Opcode::Jnz:
    return Out + " " + std::to_string(Target);
  case Opcode::LoadG:
  case Opcode::StoreG:
  case Opcode::LoadGI:
  case Opcode::StoreGI:
    return Out + " " +
           (Sym.empty() ? std::to_string(Target) : Sym + "@" +
                                                       std::to_string(Target));
  case Opcode::Call:
  case Opcode::Prim:
    return strFormat("%s %s/%lld", Out.c_str(),
                     Sym.empty() ? std::to_string(Target).c_str()
                                 : Sym.c_str(),
                     static_cast<long long>(Imm));
  default:
    return Out;
  }
}
