//===- lasm/Instr.h - LAsm instruction set ---------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LAsm instruction set: the assembly-level target of the CompCertX
/// analogue.  LAsm is a stack bytecode with per-function local slots,
/// CPU-local global memory, and an explicit PRIM instruction for calls into
/// the underlay layer interface — the assembly-machine counterpart of the
/// paper's `AsmFn`/`AsmModule` (Fig. 7).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_LASM_INSTR_H
#define CCAL_LASM_INSTR_H

#include "support/Intern.h"

#include <cstdint>
#include <string>

namespace ccal {

enum class Opcode : std::uint8_t {
  Push,    ///< push Imm
  Pop,     ///< drop top of stack
  LoadL,   ///< push locals[Target]
  StoreL,  ///< locals[Target] = pop
  LoadG,   ///< push globals[Target]            (Sym pre-link)
  StoreG,  ///< globals[Target] = pop           (Sym pre-link)
  LoadGI,  ///< i = pop; push globals[Target+i], bounds-checked by Imm=size
  StoreGI, ///< v = pop; i = pop; globals[Target+i] = v
  Add,
  Sub,
  Mul,
  Div, ///< traps on zero divisor
  Mod, ///< traps on zero divisor
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Not, ///< logical negation
  Neg, ///< arithmetic negation
  Jmp, ///< unconditional jump to Target
  Jz,  ///< pop; jump to Target when zero
  Jnz, ///< pop; jump to Target when nonzero
  Call, ///< call function Target with Imm args  (Sym pre-link)
  Prim, ///< call underlay primitive Sym with Imm args
  Ret,  ///< return; top of stack is the return value
  Halt, ///< stop the machine (entry frame only)
};

const char *opcodeName(Opcode Op);

/// One LAsm instruction.  Target carries slot/address/jump/function
/// operands; Imm carries immediates and argument counts; Sym carries
/// symbolic references until the linker resolves them.
struct Instr {
  Opcode Op = Opcode::Halt;
  std::int32_t Target = 0;
  std::int64_t Imm = 0;
  std::string Sym;
  /// Interned form of Sym, assigned at construction so the VM's Prim
  /// handler records the pending primitive as one integer instead of
  /// copying the symbol string on every call.
  KindId SymId;

  Instr() = default;
  explicit Instr(Opcode Op) : Op(Op) {}
  Instr(Opcode Op, std::int32_t Target) : Op(Op), Target(Target) {}
  Instr(Opcode Op, std::int32_t Target, std::int64_t Imm)
      : Op(Op), Target(Target), Imm(Imm) {}

  static Instr push(std::int64_t V) {
    Instr I(Opcode::Push);
    I.Imm = V;
    return I;
  }
  static Instr withSym(Opcode Op, std::string Sym, std::int64_t Imm = 0) {
    Instr I(Op);
    I.SymId = KindId(Sym);
    I.Sym = std::move(Sym);
    I.Imm = Imm;
    return I;
  }

  std::string toString() const;
};

} // namespace ccal

#endif // CCAL_LASM_INSTR_H
