//===- lasm/Program.cpp - LAsm programs and modules --------------------------===//

#include "lasm/Program.h"

#include "support/Check.h"
#include "support/Text.h"

using namespace ccal;

std::string AsmFunc::disassemble() const {
  std::string Out =
      strFormat("%s(params=%u, slots=%u):\n", Name.c_str(), NumParams,
                NumSlots);
  for (size_t I = 0, E = Code.size(); I != E; ++I)
    Out += strFormat("  %4zu: %s\n", I, Code[I].toString().c_str());
  return Out;
}

const AsmFunc *AsmProgram::findFunc(const std::string &FName) const {
  for (const AsmFunc &F : Funcs)
    if (F.Name == FName)
      return &F;
  return nullptr;
}

int AsmProgram::funcIndex(const std::string &FName) const {
  for (size_t I = 0, E = Funcs.size(); I != E; ++I)
    if (Funcs[I].Name == FName)
      return static_cast<int>(I);
  return -1;
}

const AsmGlobal *AsmProgram::findGlobal(const std::string &GName) const {
  for (const AsmGlobal &G : Globals)
    if (G.Name == GName)
      return &G;
  return nullptr;
}

std::int32_t AsmProgram::globalWords() const {
  std::int32_t N = 0;
  for (const AsmGlobal &G : Globals)
    N += G.Size;
  return N;
}

std::vector<std::int64_t> AsmProgram::initialGlobals() const {
  CCAL_CHECK(Linked, "global image requires a linked program");
  std::vector<std::int64_t> Out(static_cast<size_t>(globalWords()), 0);
  for (const AsmGlobal &G : Globals)
    for (std::int32_t I = 0; I != G.Size; ++I)
      Out[static_cast<size_t>(G.Addr + I)] =
          I < static_cast<std::int32_t>(G.Init.size()) ? G.Init[I] : 0;
  return Out;
}

std::int32_t AsmProgram::globalAddr(const std::string &GName) const {
  CCAL_CHECK(Linked, "global addresses require a linked program");
  const AsmGlobal *G = findGlobal(GName);
  CCAL_CHECK(G != nullptr, "unknown global");
  return G->Addr;
}

std::string AsmProgram::disassemble() const {
  std::string Out = "; module " + Name + (Linked ? " (linked)\n" : "\n");
  for (const AsmGlobal &G : Globals)
    Out += strFormat("; global %s size=%d addr=%d\n", G.Name.c_str(), G.Size,
                     G.Addr);
  for (const AsmFunc &F : Funcs)
    Out += F.disassemble();
  return Out;
}
