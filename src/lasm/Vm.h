//===- lasm/Vm.h - LAsm virtual machine ------------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LAsm virtual machine: a small-step, *copyable* execution state, so
/// the multicore Explorer can snapshot a machine at every interleaving
/// point and enumerate hardware schedules by depth-first search — the
/// executable counterpart of quantifying over all interleavings in Coq.
///
/// The VM pauses at every Prim instruction and hands the call to its
/// driver: the driver decides (via the layer interface) whether the
/// primitive is private (executed silently) or shared (a query point that
/// appends events to the global log, §3.1).  CPU-local global memory is
/// owned by the driver and passed into run(), because threads on the same
/// CPU share it (§5.5) while each keeps its own frame stack.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_LASM_VM_H
#define CCAL_LASM_VM_H

#include "lasm/Program.h"

#include <optional>
#include <string>
#include <vector>

namespace ccal {

/// Execution state of one hardware thread over a linked AsmProgram.
/// Copying a Vm copies the whole frame stack; the program is shared.
class Vm {
public:
  enum class Status {
    Ready,  ///< start() not yet called
    AtPrim, ///< paused at a Prim instruction; resumePrim() to continue
    Done,   ///< entry function returned; result() is valid
    Error,  ///< trapped; error() is valid
  };

  explicit Vm(AsmProgramPtr Prog) : Prog(std::move(Prog)) {}

  /// Prepares a run of function \p Fn; aborts when unknown or wrong arity.
  void start(const std::string &Fn, std::vector<std::int64_t> Args);

  /// Executes instructions until a Prim, completion, a trap, or the step
  /// budget runs out (which is a trap: divergence).  \p Globals is the
  /// CPU-local memory image, shared with other threads of the same CPU.
  Status run(std::vector<std::int64_t> &Globals, std::uint64_t MaxSteps);

  /// Like run() but stops after \p MaxSteps without trapping, reporting
  /// via \p Exhausted — the hardware-machine mode (Mx86, §3.1), where the
  /// scheduler may preempt between any two instructions.
  Status runBounded(std::vector<std::int64_t> &Globals,
                    std::uint64_t MaxSteps, bool &Exhausted);

  /// Valid while AtPrim.  The reference is stable (interned storage).
  const std::string &primName() const { return PrimKind.str(); }
  /// Interned form of primName() — the machines' O(1) layer-lookup key.
  KindId primKind() const { return PrimKind; }
  const std::vector<std::int64_t> &primArgs() const { return PrimArgVals; }

  /// Delivers the primitive's return value and resumes.
  void resumePrim(std::int64_t Ret);

  Status status() const { return St; }
  std::int64_t result() const { return Result; }
  const std::string &error() const { return Err; }

  /// Total instructions executed since start().
  std::uint64_t steps() const { return Steps; }

  /// Number of live frames (the merged-stack demo reads this).
  size_t frameDepth() const { return Frames.size(); }

  /// Structural hash of the execution state (frames, status, pending
  /// primitive) for the Explorer's state-dedup cache.  The instruction
  /// counter is excluded: it never influences execution, only statistics.
  std::uint64_t stateHash() const;

  /// Exact structural equality of two execution states over the same
  /// program; resolves stateHash collisions (never merges silently).
  bool sameState(const Vm &O) const;

private:
  struct Frame {
    std::int32_t Func = 0;
    std::int32_t PC = 0;
    std::vector<std::int64_t> Slots;
    std::vector<std::int64_t> Stack;
  };

  void trap(const std::string &Msg);
  bool pop(std::int64_t &V);

  AsmProgramPtr Prog;
  std::vector<Frame> Frames;
  Status St = Status::Ready;
  std::int64_t Result = 0;
  std::string Err;
  KindId PrimKind; ///< pending primitive while AtPrim (default: "")
  std::vector<std::int64_t> PrimArgVals;
  std::uint64_t Steps = 0;
};

} // namespace ccal

#endif // CCAL_LASM_VM_H
