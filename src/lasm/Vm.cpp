//===- lasm/Vm.cpp - LAsm virtual machine -----------------------------------===//

#include "lasm/Vm.h"

#include "core/Log.h"
#include "support/Check.h"
#include "support/Text.h"

using namespace ccal;

void Vm::start(const std::string &Fn, std::vector<std::int64_t> Args) {
  CCAL_CHECK(Prog && Prog->Linked, "VM needs a linked program");
  int Idx = Prog->funcIndex(Fn);
  CCAL_CHECK(Idx >= 0, "VM start: unknown function");
  const AsmFunc &F = Prog->Funcs[static_cast<size_t>(Idx)];
  CCAL_CHECK(Args.size() == F.NumParams, "VM start: wrong arity");

  Frames.clear();
  Frame Entry;
  Entry.Func = Idx;
  Entry.PC = 0;
  Entry.Slots.assign(F.NumSlots, 0);
  for (size_t I = 0; I != Args.size(); ++I)
    Entry.Slots[I] = Args[I];
  Frames.push_back(std::move(Entry));
  St = Status::Ready;
  Result = 0;
  Err.clear();
  Steps = 0;
}

void Vm::trap(const std::string &Msg) {
  St = Status::Error;
  if (Err.empty())
    Err = Msg;
}

bool Vm::pop(std::int64_t &V) {
  Frame &F = Frames.back();
  if (F.Stack.empty()) {
    trap("operand stack underflow");
    return false;
  }
  V = F.Stack.back();
  F.Stack.pop_back();
  return true;
}

Vm::Status Vm::run(std::vector<std::int64_t> &Globals,
                   std::uint64_t MaxSteps) {
  bool Exhausted = false;
  Status S = runBounded(Globals, MaxSteps, Exhausted);
  if (Exhausted) {
    trap("instruction budget exhausted (possible divergence)");
    return St;
  }
  return S;
}

Vm::Status Vm::runBounded(std::vector<std::int64_t> &Globals,
                          std::uint64_t MaxSteps, bool &Exhausted) {
  CCAL_CHECK(St == Status::Ready || St == Status::AtPrim,
             "VM run: not runnable");
  CCAL_CHECK(St != Status::AtPrim || PrimKind.empty(),
             "VM run: pending primitive not resumed");
  St = Status::Ready;
  Exhausted = false;

  std::uint64_t Budget = MaxSteps;
  while (true) {
    if (Frames.empty()) {
      St = Status::Done;
      return St;
    }
    if (Budget-- == 0) {
      Exhausted = true;
      return St;
    }
    ++Steps;

    Frame &F = Frames.back();
    const AsmFunc &Fn = Prog->Funcs[static_cast<size_t>(F.Func)];
    if (F.PC < 0 || static_cast<size_t>(F.PC) >= Fn.Code.size()) {
      trap("program counter out of range");
      return St;
    }
    const Instr &I = Fn.Code[static_cast<size_t>(F.PC)];
    ++F.PC;

    auto Binary = [&](auto Apply) {
      std::int64_t B, A;
      if (!pop(B) || !pop(A))
        return;
      Frames.back().Stack.push_back(Apply(A, B));
    };

    switch (I.Op) {
    case Opcode::Push:
      F.Stack.push_back(I.Imm);
      break;
    case Opcode::Pop: {
      std::int64_t V;
      pop(V);
      break;
    }
    case Opcode::LoadL:
      if (I.Target < 0 || static_cast<size_t>(I.Target) >= F.Slots.size()) {
        trap("local slot out of range");
        break;
      }
      F.Stack.push_back(F.Slots[static_cast<size_t>(I.Target)]);
      break;
    case Opcode::StoreL: {
      std::int64_t V;
      if (!pop(V))
        break;
      Frame &Cur = Frames.back();
      if (I.Target < 0 || static_cast<size_t>(I.Target) >= Cur.Slots.size()) {
        trap("local slot out of range");
        break;
      }
      Cur.Slots[static_cast<size_t>(I.Target)] = V;
      break;
    }
    case Opcode::LoadG:
      if (I.Target < 0 || static_cast<size_t>(I.Target) >= Globals.size()) {
        trap("global address out of range");
        break;
      }
      F.Stack.push_back(Globals[static_cast<size_t>(I.Target)]);
      break;
    case Opcode::StoreG: {
      std::int64_t V;
      if (!pop(V))
        break;
      if (I.Target < 0 || static_cast<size_t>(I.Target) >= Globals.size()) {
        trap("global address out of range");
        break;
      }
      Globals[static_cast<size_t>(I.Target)] = V;
      break;
    }
    case Opcode::LoadGI: {
      std::int64_t Idx;
      if (!pop(Idx))
        break;
      if (Idx < 0 || Idx >= I.Imm) {
        trap(strFormat("array index %lld out of bounds (size %lld)",
                       static_cast<long long>(Idx),
                       static_cast<long long>(I.Imm)));
        break;
      }
      size_t Addr = static_cast<size_t>(I.Target + Idx);
      if (Addr >= Globals.size()) {
        trap("global address out of range");
        break;
      }
      Frames.back().Stack.push_back(Globals[Addr]);
      break;
    }
    case Opcode::StoreGI: {
      std::int64_t V, Idx;
      if (!pop(V) || !pop(Idx))
        break;
      if (Idx < 0 || Idx >= I.Imm) {
        trap(strFormat("array index %lld out of bounds (size %lld)",
                       static_cast<long long>(Idx),
                       static_cast<long long>(I.Imm)));
        break;
      }
      size_t Addr = static_cast<size_t>(I.Target + Idx);
      if (Addr >= Globals.size()) {
        trap("global address out of range");
        break;
      }
      Globals[Addr] = V;
      break;
    }
    case Opcode::Add:
      Binary([](std::int64_t A, std::int64_t B) { return A + B; });
      break;
    case Opcode::Sub:
      Binary([](std::int64_t A, std::int64_t B) { return A - B; });
      break;
    case Opcode::Mul:
      Binary([](std::int64_t A, std::int64_t B) { return A * B; });
      break;
    case Opcode::Div:
    case Opcode::Mod: {
      std::int64_t B, A;
      if (!pop(B) || !pop(A))
        break;
      if (B == 0) {
        trap("division by zero");
        break;
      }
      Frames.back().Stack.push_back(I.Op == Opcode::Div ? A / B : A % B);
      break;
    }
    case Opcode::Eq:
      Binary([](std::int64_t A, std::int64_t B) { return A == B ? 1 : 0; });
      break;
    case Opcode::Ne:
      Binary([](std::int64_t A, std::int64_t B) { return A != B ? 1 : 0; });
      break;
    case Opcode::Lt:
      Binary([](std::int64_t A, std::int64_t B) { return A < B ? 1 : 0; });
      break;
    case Opcode::Le:
      Binary([](std::int64_t A, std::int64_t B) { return A <= B ? 1 : 0; });
      break;
    case Opcode::Gt:
      Binary([](std::int64_t A, std::int64_t B) { return A > B ? 1 : 0; });
      break;
    case Opcode::Ge:
      Binary([](std::int64_t A, std::int64_t B) { return A >= B ? 1 : 0; });
      break;
    case Opcode::Not: {
      std::int64_t V;
      if (!pop(V))
        break;
      Frames.back().Stack.push_back(V == 0 ? 1 : 0);
      break;
    }
    case Opcode::Neg: {
      std::int64_t V;
      if (!pop(V))
        break;
      Frames.back().Stack.push_back(-V);
      break;
    }
    case Opcode::Jmp:
      F.PC = I.Target;
      break;
    case Opcode::Jz: {
      std::int64_t V;
      if (!pop(V))
        break;
      if (V == 0)
        Frames.back().PC = I.Target;
      break;
    }
    case Opcode::Jnz: {
      std::int64_t V;
      if (!pop(V))
        break;
      if (V != 0)
        Frames.back().PC = I.Target;
      break;
    }
    case Opcode::Call: {
      if (I.Target < 0 ||
          static_cast<size_t>(I.Target) >= Prog->Funcs.size()) {
        trap("call target out of range (unlinked program?)");
        break;
      }
      const AsmFunc &Callee = Prog->Funcs[static_cast<size_t>(I.Target)];
      Frame New;
      New.Func = I.Target;
      New.PC = 0;
      New.Slots.assign(Callee.NumSlots, 0);
      // Arguments were pushed left to right; pop right to left.
      bool Ok = true;
      for (size_t A = Callee.NumParams; A-- > 0;) {
        std::int64_t V;
        if (!pop(V)) {
          Ok = false;
          break;
        }
        New.Slots[A] = V;
      }
      if (!Ok)
        break;
      Frames.push_back(std::move(New));
      break;
    }
    case Opcode::Prim: {
      PrimKind = I.SymId;
      PrimArgVals.clear();
      bool Ok = true;
      for (std::int64_t A = I.Imm; A-- > 0;) {
        std::int64_t V;
        if (!pop(V)) {
          Ok = false;
          break;
        }
        PrimArgVals.insert(PrimArgVals.begin(), V);
      }
      if (!Ok)
        break;
      St = Status::AtPrim;
      return St;
    }
    case Opcode::Ret: {
      std::int64_t V;
      if (!pop(V))
        break;
      Frames.pop_back();
      if (Frames.empty()) {
        Result = V;
        St = Status::Done;
        return St;
      }
      Frames.back().Stack.push_back(V);
      break;
    }
    case Opcode::Halt:
      St = Status::Done;
      Frames.clear();
      return St;
    }

    if (St == Status::Error)
      return St;
  }
}

void Vm::resumePrim(std::int64_t Ret) {
  CCAL_CHECK(St == Status::AtPrim, "resumePrim: VM is not at a primitive");
  CCAL_CHECK(!Frames.empty(), "resumePrim: no live frame");
  Frames.back().Stack.push_back(Ret);
  PrimKind = KindId();
  PrimArgVals.clear();
}

std::uint64_t Vm::stateHash() const {
  std::uint64_t H = hashMix64(static_cast<std::uint64_t>(St));
  H = hashCombine(H, static_cast<std::uint64_t>(Result));
  // Content hash, not the interning-order id, so values are stable.
  H = hashCombine(H, PrimKind.strHash());
  H = hashCombine(H, PrimArgVals.size());
  for (std::int64_t V : PrimArgVals)
    H = hashCombine(H, static_cast<std::uint64_t>(V));
  H = hashCombine(H, Frames.size());
  for (const Frame &F : Frames) {
    H = hashCombine(H, static_cast<std::uint64_t>(F.Func));
    H = hashCombine(H, static_cast<std::uint64_t>(F.PC));
    H = hashCombine(H, F.Slots.size());
    for (std::int64_t V : F.Slots)
      H = hashCombine(H, static_cast<std::uint64_t>(V));
    H = hashCombine(H, F.Stack.size());
    for (std::int64_t V : F.Stack)
      H = hashCombine(H, static_cast<std::uint64_t>(V));
  }
  return H;
}

bool Vm::sameState(const Vm &O) const {
  if (Prog.get() != O.Prog.get() || St != O.St || Result != O.Result ||
      Err != O.Err || PrimKind != O.PrimKind ||
      PrimArgVals != O.PrimArgVals ||
      Frames.size() != O.Frames.size())
    return false;
  for (size_t I = 0, E = Frames.size(); I != E; ++I) {
    const Frame &A = Frames[I];
    const Frame &B = O.Frames[I];
    if (A.Func != B.Func || A.PC != B.PC || A.Slots != B.Slots ||
        A.Stack != B.Stack)
      return false;
  }
  return true;
}
