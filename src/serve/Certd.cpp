//===- serve/Certd.cpp - the certd verification daemon --------------------===//

#include "serve/Certd.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Text.h"

#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ccal;
using namespace ccal::serve;

namespace {

JsonValue errorResponse(const std::string &Msg) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["ok"] = jsonBool(false);
  V.Fields["error"] = jsonStr(Msg);
  return V;
}

JsonValue okResponse() {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["ok"] = jsonBool(true);
  return V;
}

} // namespace

Certd::Certd(CertdOptions O) : Opts(std::move(O)) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
  if (Opts.ThreadsPerJob == 0)
    Opts.ThreadsPerJob = 1;
}

Certd::~Certd() {
  if (Started.load() && !Stopped.load())
    shutdown();
}

bool Certd::start(std::string &Err) {
  if (Started.exchange(true)) {
    Err = "certd already started";
    return false;
  }
  // The serve.* counters are part of the daemon's contract (the smoke
  // test asserts on them), so the daemon enables the registry itself.
  obs::setEnabled(true);

  if (::pipe(WakePipe) != 0) {
    Err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  ListenFd = listenUnix(Opts.SocketPath, 64, Err);
  if (ListenFd < 0)
    return false;

  for (unsigned I = 0; I != Opts.Workers; ++I)
    Workers.emplace_back([this] { workerMain(); });
  MonitorThread = std::thread([this] { monitorMain(); });
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Certd::requestShutdown() {
  // Async-signal-safe: one atomic store, one write.  Everything that
  // needs locks or condition variables happens on the accept thread
  // (beginDrain), which this write wakes.
  ShutdownRequested.store(true);
  if (WakePipe[1] >= 0) {
    char C = 1;
    ssize_t Ignored = ::write(WakePipe[1], &C, 1);
    (void)Ignored;
  }
}

void Certd::shutdown() {
  requestShutdown();
  waitShutdown();
}

void Certd::waitShutdown() {
  if (!Started.load() || Joining.exchange(true)) {
    // Someone else is (or was) already joining; wait for them to finish
    // so every caller returns only once the drain completed.
    while (Started.load() && !Stopped.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return;
  }
  if (AcceptThread.joinable())
    AcceptThread.join(); // returns once beginDrain() ran
  for (std::thread &W : Workers)
    W.join(); // drain: workers exit only when the queue is empty
  {
    std::lock_guard<std::mutex> L(RunMu);
    MonitorStop = true;
  }
  MonCv.notify_all();
  if (MonitorThread.joinable())
    MonitorThread.join();
  // Connection threads: batches completed above, reads were shut down by
  // beginDrain, so each is on its way out.
  std::vector<std::thread> Conns;
  {
    std::lock_guard<std::mutex> L(ConnMu);
    Conns.swap(ConnThreads);
  }
  for (std::thread &C : Conns)
    C.join();
  ::close(WakePipe[0]);
  ::close(WakePipe[1]);
  WakePipe[0] = WakePipe[1] = -1;
  // The ring may have dropped events under load and atexit would lose a
  // crash-adjacent tail anyway; the daemon flushes deliberately at the
  // end of its drain.
  obs::flushTrace();
  Stopped.store(true);
}

void Certd::acceptLoop() {
  while (true) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int R = ::poll(Fds, 2, -1);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break; // unrecoverable; drain below
    }
    if (ShutdownRequested.load())
      break;
    if (Fds[0].revents & POLLIN) {
      int C = ::accept(ListenFd, nullptr, nullptr);
      if (C < 0)
        continue;
      obs::counterAdd("serve.connections");
      std::lock_guard<std::mutex> L(ConnMu);
      ConnFds.insert(C);
      ConnThreads.emplace_back([this, C] { serveConnection(C); });
    }
  }
  beginDrain();
}

void Certd::beginDrain() {
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(Opts.SocketPath.c_str());
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Draining = true;
  }
  QueueCv.notify_all();
  // Unblock connection threads parked in readFrame; SHUT_RD only — the
  // write side stays open so in-flight batch responses still reach their
  // clients.
  std::lock_guard<std::mutex> L(ConnMu);
  for (int Fd : ConnFds)
    ::shutdown(Fd, SHUT_RD);
}

void Certd::workerMain() {
  while (true) {
    QueuedJob J;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      QueueCv.wait(L, [this] { return !Queue.empty() || Draining; });
      if (Queue.empty())
        break; // Draining && empty: drain complete for this worker
      J = std::move(Queue.front());
      Queue.pop_front();
      obs::gaugeSet("serve.queue_depth",
                    static_cast<std::int64_t>(Queue.size()));
    }
    runQueued(J);
  }
}

void Certd::runQueued(const QueuedJob &J) {
  obs::gaugeSet("serve.worker_busy", BusyWorkers.fetch_add(1) + 1);
  obs::counterAdd("serve.jobs");

  JobContext Ctx;
  Ctx.Threads = J.Threads != 0 ? J.Threads : Opts.ThreadsPerJob;
  Ctx.Cancel = std::make_shared<std::atomic<bool>>(false);
  Ctx.CancelReason =
      strFormat("job timeout (%llu ms)",
                static_cast<unsigned long long>(J.TimeoutMs));

  std::uint64_t RunId;
  {
    std::lock_guard<std::mutex> L(RunMu);
    RunId = NextRunId++;
    RunningJob RJ;
    RJ.Cancel = Ctx.Cancel;
    if (J.TimeoutMs != 0) {
      RJ.HasDeadline = true;
      RJ.Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(J.TimeoutMs);
    }
    Running.emplace(RunId, std::move(RJ));
  }

  JobResult R;
  {
    obs::Span JobSpan("serve.job", "serve");
    R = runJob(J.Name, Ctx);
  }

  {
    std::lock_guard<std::mutex> L(RunMu);
    Running.erase(RunId);
  }
  obs::gaugeSet("serve.worker_busy", BusyWorkers.fetch_sub(1) - 1);

  {
    std::lock_guard<std::mutex> L(J.B->Mu);
    J.B->Results[J.Slot] = std::move(R);
    if (--J.B->Remaining == 0)
      J.B->Cv.notify_all();
  }
}

void Certd::monitorMain() {
  std::unique_lock<std::mutex> L(RunMu);
  while (!MonitorStop) {
    MonCv.wait_for(L, std::chrono::milliseconds(20));
    auto Now = std::chrono::steady_clock::now();
    for (auto &[Id, RJ] : Running) {
      if (RJ.HasDeadline && Now >= RJ.Deadline &&
          !RJ.Cancel->exchange(true))
        obs::counterAdd("serve.timeouts");
    }
  }
}

void Certd::serveConnection(int Fd) {
  while (true) {
    std::string Payload, Err;
    FrameStatus S = readFrame(Fd, Payload, Err);
    if (S == FrameStatus::Eof)
      break;
    if (S == FrameStatus::Error) {
      // Oversized or torn frame: framing cannot resync, drop the
      // connection (the daemon itself is unaffected).
      obs::counterAdd("serve.bad_frames");
      break;
    }
    JsonValue Resp;
    JsonParseResult P = parseJson(Payload, WireJsonMaxDepth);
    if (!P) {
      // Frame boundaries are intact, so this connection can continue
      // after an error answer.
      obs::counterAdd("serve.bad_frames");
      Resp = errorResponse("bad request: " + P.Error);
    } else {
      Resp = handleRequest(P.Value);
    }
    if (!writeFrameJson(Fd, Resp, Err)) {
      obs::counterAdd("serve.client_disconnects");
      break;
    }
  }
  // De-register before close: beginDrain shutdown()s every fd still in
  // the set, and a closed number could have been recycled by then.
  {
    std::lock_guard<std::mutex> L(ConnMu);
    ConnFds.erase(Fd);
  }
  ::close(Fd);
}

JsonValue Certd::handleRequest(const JsonValue &Req) {
  obs::counterAdd("serve.requests");
  const JsonValue *Op = Req.field("op");
  if (!Op || !Op->isString())
    return errorResponse("bad request: missing \"op\"");

  if (Op->StrVal == "ping") {
    JsonValue V = okResponse();
    V.Fields["pong"] = jsonBool(true);
    return V;
  }
  if (Op->StrVal == "list") {
    JsonValue Arr;
    Arr.K = JsonValue::Kind::Array;
    for (const JobInfo &J : listJobs()) {
      JsonValue E;
      E.K = JsonValue::Kind::Object;
      E.Fields["name"] = jsonStr(J.Name);
      E.Fields["desc"] = jsonStr(J.Desc);
      Arr.Items.push_back(std::move(E));
    }
    JsonValue V = okResponse();
    V.Fields["jobs"] = std::move(Arr);
    return V;
  }
  if (Op->StrVal == "stats") {
    JsonValue Counters, Gauges;
    Counters.K = JsonValue::Kind::Object;
    Gauges.K = JsonValue::Kind::Object;
    for (const obs::MetricSample &M : obs::metricsSnapshot()) {
      if (M.K == obs::MetricSample::Kind::Counter)
        Counters.Fields[M.Name] = jsonUInt(M.Count);
      else if (M.K == obs::MetricSample::Kind::Gauge)
        Gauges.Fields[M.Name] = jsonInt(M.Value);
    }
    JsonValue Stats;
    Stats.K = JsonValue::Kind::Object;
    Stats.Fields["counters"] = std::move(Counters);
    Stats.Fields["gauges"] = std::move(Gauges);
    JsonValue V = okResponse();
    V.Fields["stats"] = std::move(Stats);
    return V;
  }
  if (Op->StrVal == "shutdown") {
    requestShutdown();
    return okResponse();
  }
  if (Op->StrVal == "verify")
    return handleVerify(Req);
  return errorResponse("unknown op: " + Op->StrVal);
}

JsonValue Certd::handleVerify(const JsonValue &Req) {
  const JsonValue *Jobs = Req.field("jobs");
  if (!Jobs || !Jobs->isArray() || Jobs->Items.empty())
    return errorResponse("bad request: \"jobs\" must be a non-empty array");
  std::vector<QueuedJob> Staged;
  for (const JsonValue &J : Jobs->Items) {
    if (!J.isString())
      return errorResponse("bad request: job names must be strings");
    QueuedJob Q;
    Q.Name = J.StrVal;
    Staged.push_back(std::move(Q));
  }

  std::uint64_t TimeoutMs = Opts.DefaultTimeoutMs;
  if (const JsonValue *T = Req.field("timeout_ms");
      T && T->isNumber() && T->IsInt && T->IntVal >= 0)
    TimeoutMs = static_cast<std::uint64_t>(T->IntVal);
  unsigned Threads = 0;
  if (const JsonValue *T = Req.field("threads");
      T && T->isNumber() && T->IsInt && T->IntVal > 0 && T->IntVal <= 256)
    Threads = static_cast<unsigned>(T->IntVal);

  auto B = std::make_shared<Batch>();
  B->Results.resize(Staged.size());
  B->Remaining = Staged.size();
  for (std::size_t I = 0; I != Staged.size(); ++I) {
    Staged[I].B = B;
    Staged[I].Slot = I;
    Staged[I].TimeoutMs = TimeoutMs;
    Staged[I].Threads = Threads;
  }

  {
    std::lock_guard<std::mutex> L(QueueMu);
    // Draining is checked under the same mutex workers exit under, so a
    // rejected request can never race past a worker that already left.
    if (Draining) {
      obs::counterAdd("serve.rejected_shutdown");
      return errorResponse("shutting down");
    }
    if (Queue.size() + Staged.size() > Opts.QueueBound) {
      // All or nothing: partial enqueue would answer the client with a
      // batch that silently never ran some of its jobs.
      obs::counterAdd("serve.rejected_queue_full");
      return errorResponse(
          strFormat("queue full (%zu queued, bound %zu, batch %zu)",
                    Queue.size(), Opts.QueueBound, Staged.size()));
    }
    for (QueuedJob &Q : Staged)
      Queue.push_back(std::move(Q));
    obs::gaugeSet("serve.queue_depth",
                  static_cast<std::int64_t>(Queue.size()));
  }
  QueueCv.notify_all();

  {
    std::unique_lock<std::mutex> L(B->Mu);
    B->Cv.wait(L, [&B] { return B->Remaining == 0; });
  }

  JsonValue Arr;
  Arr.K = JsonValue::Kind::Array;
  for (const JobResult &R : B->Results)
    Arr.Items.push_back(jobResultToJson(R));
  JsonValue V = okResponse();
  V.Fields["results"] = std::move(Arr);
  return V;
}
