//===- serve/ccal_verify_main.cpp - ccal-verify CLI -----------------------===//
//
// Usage:
//   ccal-verify --socket PATH [--timeout-ms N] [--threads N] [--json]
//               JOB [JOB...]
//   ccal-verify --socket PATH --list | --stats | --ping | --shutdown
//
// Exit status: 0 when every requested job verified (Holds), 1 when any
// failed or was truncated/timed out, 2 on usage or transport errors.
// --json prints one machine-readable line (the CI smoke job parses it).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace ccal;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [--timeout-ms N] [--threads N] [--json] "
      "JOB [JOB...]\n"
      "       %s --socket PATH --list | --stats | --ping | --shutdown\n",
      Argv0, Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string Socket;
  serve::VerifyOptions Opts;
  bool Json = false, List = false, Stats = false, Ping = false,
       Shutdown = false;
  std::vector<std::string> Jobs;

  for (int I = 1; I < argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (std::strcmp(argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (const char *V = Value("--socket"))
      Socket = V;
    else if (const char *V = Value("--timeout-ms"))
      Opts.TimeoutMs = std::strtoull(V, nullptr, 10);
    else if (const char *V = Value("--threads"))
      Opts.Threads = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--list") == 0)
      List = true;
    else if (std::strcmp(argv[I], "--stats") == 0)
      Stats = true;
    else if (std::strcmp(argv[I], "--ping") == 0)
      Ping = true;
    else if (std::strcmp(argv[I], "--shutdown") == 0)
      Shutdown = true;
    else if (argv[I][0] == '-')
      return usage(argv[0]);
    else
      Jobs.push_back(argv[I]);
  }
  if (Socket.empty())
    return usage(argv[0]);

  serve::CertClient Client;
  std::string Err;
  if (!Client.connect(Socket, Err)) {
    std::fprintf(stderr, "ccal-verify: %s\n", Err.c_str());
    return 2;
  }

  if (Ping) {
    if (!Client.ping(Err)) {
      std::fprintf(stderr, "ccal-verify: ping: %s\n", Err.c_str());
      return 2;
    }
    std::printf("pong\n");
    return 0;
  }
  if (List) {
    std::vector<serve::JobInfo> Catalog;
    if (!Client.list(Catalog, Err)) {
      std::fprintf(stderr, "ccal-verify: list: %s\n", Err.c_str());
      return 2;
    }
    for (const serve::JobInfo &J : Catalog)
      std::printf("%-18s %s\n", J.Name.c_str(), J.Desc.c_str());
    return 0;
  }
  if (Stats) {
    JsonValue S;
    if (!Client.stats(S, Err)) {
      std::fprintf(stderr, "ccal-verify: stats: %s\n", Err.c_str());
      return 2;
    }
    std::printf("%s\n", jsonToString(S).c_str());
    return 0;
  }
  if (Shutdown) {
    if (!Client.requestShutdown(Err)) {
      std::fprintf(stderr, "ccal-verify: shutdown: %s\n", Err.c_str());
      return 2;
    }
    std::printf("shutdown requested\n");
    return 0;
  }
  if (Jobs.empty())
    return usage(argv[0]);

  serve::VerifyResponse Resp;
  if (!Client.verify(Jobs, Opts, Resp, Err)) {
    std::fprintf(stderr, "ccal-verify: %s\n", Err.c_str());
    return 2;
  }
  if (!Resp.Ok) {
    std::fprintf(stderr, "ccal-verify: rejected: %s\n", Resp.Error.c_str());
    return 2;
  }

  bool AllHold = true;
  for (const serve::JobResult &R : Resp.Results)
    AllHold = AllHold && R.Known && R.Holds;

  if (Json) {
    JsonValue Out;
    Out.K = JsonValue::Kind::Object;
    Out.Fields["ok"] = jsonBool(AllHold);
    Out.Fields["wall_ms"] = jsonNum(Resp.WallMs);
    JsonValue Arr;
    Arr.K = JsonValue::Kind::Array;
    for (const serve::JobResult &R : Resp.Results)
      Arr.Items.push_back(serve::jobResultToJson(R));
    Out.Fields["results"] = std::move(Arr);
    std::printf("%s\n", jsonToString(Out).c_str());
  } else {
    for (const serve::JobResult &R : Resp.Results) {
      const char *Status = !R.Known         ? "UNKNOWN"
                           : R.Holds        ? "HOLDS"
                           : R.Complete     ? "FAILS"
                                            : "TRUNCATED";
      std::printf("%-18s %-9s %8.1f ms  schedules=%llu hits=%llu "
                  "misses=%llu stores=%llu\n",
                  R.Job.c_str(), Status, R.WallMs,
                  static_cast<unsigned long long>(R.Schedules),
                  static_cast<unsigned long long>(R.CertHits),
                  static_cast<unsigned long long>(R.CertMisses),
                  static_cast<unsigned long long>(R.CertStores));
      if (!R.Holds && !R.Diagnostic.empty())
        std::printf("  %s\n", R.Diagnostic.c_str());
    }
    std::printf("total: %zu job(s), %.1f ms round-trip\n",
                Resp.Results.size(), Resp.WallMs);
  }
  return AllHold ? 0 : 1;
}
