//===- serve/Protocol.h - certd wire protocol ------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The certd wire protocol: length-prefixed JSON frames over a Unix-domain
/// stream socket.
///
/// Frame format (both directions):
///
///   +-------------------+----------------------+
///   | u32 length (BE)   | length bytes of JSON |
///   +-------------------+----------------------+
///
/// Requests are JSON objects dispatched on "op":
///
///   {"op":"ping"}                          -> {"ok":true,"pong":true}
///   {"op":"list"}                          -> {"ok":true,"jobs":[{"name","desc"},...]}
///   {"op":"stats"}                         -> {"ok":true,"stats":{counters...}}
///   {"op":"shutdown"}                      -> {"ok":true} then graceful drain
///   {"op":"verify","jobs":["ticket.2cpu",...],
///    "timeout_ms":N?, "threads":K?}        -> {"ok":true,"results":[JobResult...]}
///
/// A verify request is one BATCH: the daemon enqueues every named job,
/// fans them out across its worker pool, and answers with a single frame
/// once all of them finished — results arrive batched, in request order.
/// Errors are `{"ok":false,"error":"..."}` (queue full, shutting down,
/// malformed request).
///
/// Everything read from the socket is UNTRUSTED: frames are capped at
/// MaxFrameBytes before any allocation, and payloads parse with a tight
/// nesting-depth cap (WireJsonMaxDepth) so a hostile client can neither
/// balloon daemon memory nor overflow the parser's stack.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SERVE_PROTOCOL_H
#define CCAL_SERVE_PROTOCOL_H

#include "support/Json.h"

#include <cstdint>
#include <string>

namespace ccal {
namespace serve {

/// Hard cap on one frame's payload; a declared length beyond it is a
/// protocol error and the connection is dropped (framing cannot resync).
constexpr std::size_t MaxFrameBytes = 16u << 20;

/// Nesting-depth cap for socket JSON — far tighter than the library-wide
/// JsonMaxDepth: no legitimate request or response nests deeper than a
/// handful of levels.
constexpr std::size_t WireJsonMaxDepth = 32;

/// Result of reading one frame.
enum class FrameStatus {
  Ok,    ///< one complete frame read
  Eof,   ///< clean end of stream at a frame boundary
  Error, ///< I/O failure, oversized frame, or torn frame
};

/// Reads one length-prefixed frame from \p Fd into \p Payload.
/// Retries EINTR; a peer that closes mid-frame is Error, at a frame
/// boundary Eof.
FrameStatus readFrame(int Fd, std::string &Payload, std::string &Err);

/// Writes one length-prefixed frame (EINTR-safe, EPIPE reported as an
/// error instead of a process-killing SIGPIPE).
bool writeFrame(int Fd, const std::string &Payload, std::string &Err);

/// readFrame + depth-capped parse.
FrameStatus readFrameJson(int Fd, JsonValue &Out, std::string &Err);

/// jsonToString + writeFrame.
bool writeFrameJson(int Fd, const JsonValue &V, std::string &Err);

/// Binds and listens on a Unix-domain socket at \p Path (an existing
/// socket file is unlinked first — a previous daemon's leftover).
/// Returns the fd, or -1 with \p Err.
int listenUnix(const std::string &Path, int Backlog, std::string &Err);

/// Connects to the daemon at \p Path; returns the fd, or -1 with \p Err.
int connectUnix(const std::string &Path, std::string &Err);

/// One job's verification result as it travels over the wire.
struct JobResult {
  std::string Job;
  bool Known = true;     ///< false: no such job in the catalog
  bool Holds = false;    ///< the refinement held (implies Complete)
  bool Complete = false; ///< exploration ran to completion
  /// Counterexample, truncation reason ("job timeout (2000 ms)"), or ""
  /// — a timed-out job reports the Explorer's fail-closed truncation
  /// diagnostic here, never a false Holds.
  std::string Diagnostic;
  std::uint64_t Schedules = 0;
  std::uint64_t Obligations = 0;
  /// Certificate-store traffic attributed to this job (registry deltas
  /// sampled around the run; exact when jobs run serially, approximate
  /// under concurrent jobs on one daemon).
  std::uint64_t CertHits = 0;
  std::uint64_t CertMisses = 0;
  std::uint64_t CertStores = 0;
  double WallMs = 0;
};

JsonValue jobResultToJson(const JobResult &R);
bool jobResultFromJson(const JsonValue &V, JobResult &Out, std::string &Err);

} // namespace serve
} // namespace ccal

#endif // CCAL_SERVE_PROTOCOL_H
