//===- serve/Jobs.h - certd verification job catalog -----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's job catalog.  A verification workload is C++ all the way
/// down — layers are closures, relations are lambdas — so clients cannot
/// ship machines over the wire; instead they name jobs from this catalog
/// and the daemon builds the harness locally.  Built-ins cover the two
/// certified locks at the CPU counts the test suite exercises; tests
/// register synthetic jobs (a blocker for the queue-full path, a
/// schedule-space bomb for the timeout path) through registerJob.
///
/// Every job honours the JobContext cancel token by threading it into the
/// Explorer's options: a cancelled exploration reports Complete=false with
/// the cancel reason as its truncation, the refinement checker then
/// refuses Holds, and the certificate store refuses to persist — the
/// timeout path is fail-closed by construction, never a false "Holds".
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SERVE_JOBS_H
#define CCAL_SERVE_JOBS_H

#include "serve/Protocol.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ccal {
namespace serve {

/// What the daemon threads into a running job.
struct JobContext {
  /// Set by the timeout monitor (or shutdown); jobs poll it via the
  /// Explorer's GenericExploreOptions::Cancel.  May be null (no timeout).
  std::shared_ptr<std::atomic<bool>> Cancel;
  /// The truncation diagnostic a cancelled exploration reports.
  std::string CancelReason = "cancelled";
  /// Explorer workers per job (the daemon's ThreadsPerJob knob).
  unsigned Threads = 1;
};

using JobFn = std::function<JobResult(const JobContext &)>;

/// All catalog entries, name-sorted.
struct JobInfo {
  std::string Name;
  std::string Desc;
};
std::vector<JobInfo> listJobs();

bool haveJob(const std::string &Name);

/// Runs \p Name under \p Ctx.  Unknown names return Known=false (the
/// daemon answers per-job instead of failing the whole batch).  Fills the
/// JobResult cert traffic fields from registry deltas around the run.
JobResult runJob(const std::string &Name, const JobContext &Ctx);

/// Registers (or replaces) a job; tests inject deterministic blockers and
/// schedule-space bombs this way.  The function must be callable from any
/// daemon worker thread.
void registerJob(const std::string &Name, const std::string &Desc,
                 JobFn Fn);

} // namespace serve
} // namespace ccal

#endif // CCAL_SERVE_JOBS_H
