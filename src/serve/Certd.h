//===- serve/Certd.h - the certd verification daemon -----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// certd: verification-as-a-service over a Unix-domain socket.
///
/// N clients re-verifying overlapping layer stacks each pay the full
/// exploration cost when they run alone; routed through one certd they
/// share a process-wide certificate store (cert::CertStore), so every
/// obligation in the overlap is explored once and served from cache ever
/// after.  The daemon:
///
///   * accepts length-prefixed JSON requests (serve/Protocol.h),
///   * enqueues each verify batch's jobs into a bounded queue (full
///     queue: the request is rejected whole, nothing partial runs),
///   * fans jobs out across a persistent worker pool, each of which may
///     further fan its job's schedule space across Explorer workers
///     (ThreadsPerJob -> GenericExploreOptions::Threads),
///   * batches results back to the client in one response frame,
///   * enforces per-job timeouts through the Explorer's cancel token —
///     a timed-out job reports a truncation diagnostic and stores no
///     certificate (fail-closed), never a false "Holds",
///   * drains gracefully on SIGTERM / the shutdown op: stop accepting,
///     reject new verify requests, finish queued and running jobs,
///     answer waiting clients, flush the trace buffer.
///
/// Worker-pool lifecycle follows the certified thread-machine shape
/// (create -> start -> stop -> is_shutdown): start() brings the pool up,
/// requestShutdown() is the async-signal-safe stop request (signal
/// handlers may call it), waitShutdown() joins everything, isShutdown()
/// observes the terminal state.
///
/// Observability: counters serve.jobs, serve.requests, serve.connections,
/// serve.timeouts, serve.rejected_queue_full, serve.rejected_shutdown,
/// serve.bad_frames, serve.client_disconnects; gauges serve.queue_depth,
/// serve.worker_busy; a serve.job span per executed job.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SERVE_CERTD_H
#define CCAL_SERVE_CERTD_H

#include "serve/Jobs.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace ccal {
namespace serve {

struct CertdOptions {
  std::string SocketPath;
  /// Persistent verification workers (jobs in flight at once).
  unsigned Workers = 2;
  /// Max jobs waiting in the queue (not counting running ones); a verify
  /// batch that does not fit entirely is rejected entirely.
  std::size_t QueueBound = 64;
  /// Per-job wall-clock timeout applied when a request names none;
  /// 0 = unlimited.
  std::uint64_t DefaultTimeoutMs = 0;
  /// Explorer workers per job (requests may override).
  unsigned ThreadsPerJob = 1;
};

class Certd {
public:
  explicit Certd(CertdOptions O);
  ~Certd(); ///< drains (requestShutdown + waitShutdown) if still running

  Certd(const Certd &) = delete;
  Certd &operator=(const Certd &) = delete;

  /// Binds the socket and starts the pool; false + \p Err on failure.
  bool start(std::string &Err);

  /// Requests a graceful drain.  Async-signal-safe (one atomic store and
  /// one pipe write) — SIGTERM/SIGINT handlers call this directly.
  void requestShutdown();

  /// Joins the accept loop, workers, monitor, and connection threads;
  /// flushes the trace buffer.  Returns once the drain is complete.
  void waitShutdown();

  /// requestShutdown + waitShutdown.
  void shutdown();

  bool isShutdown() const { return Stopped.load(); }

  const CertdOptions &options() const { return Opts; }

private:
  /// One verify request's jobs: results land in slots, the connection
  /// thread wakes when the last one finishes.
  struct Batch {
    std::mutex Mu;
    std::condition_variable Cv;
    std::vector<JobResult> Results;
    std::size_t Remaining = 0;
  };

  struct QueuedJob {
    std::string Name;
    std::shared_ptr<Batch> B;
    std::size_t Slot = 0;
    std::uint64_t TimeoutMs = 0;
    unsigned Threads = 0; ///< 0 = daemon default
  };

  /// A job in execution, visible to the timeout monitor.
  struct RunningJob {
    std::shared_ptr<std::atomic<bool>> Cancel;
    std::chrono::steady_clock::time_point Deadline{};
    bool HasDeadline = false;
  };

  void acceptLoop();
  void beginDrain(); ///< accept thread only: ordered half of shutdown
  void workerMain();
  void runQueued(const QueuedJob &J);
  void monitorMain();
  void serveConnection(int Fd);
  JsonValue handleRequest(const JsonValue &Req);
  JsonValue handleVerify(const JsonValue &Req);

  CertdOptions Opts;
  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};

  std::atomic<bool> Started{false};
  std::atomic<bool> ShutdownRequested{false}; ///< signal-safe flag
  std::atomic<bool> Joining{false}; ///< a waitShutdown is in progress
  std::atomic<bool> Stopped{false}; ///< drain fully complete

  std::thread AcceptThread;
  std::thread MonitorThread;
  std::vector<std::thread> Workers;

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<QueuedJob> Queue;
  /// Set under QueueMu by beginDrain: after it, verify requests are
  /// rejected and workers exit once the queue is empty.  Mutex-ordered on
  /// purpose — the atomic flag alone cannot order "worker exited" against
  /// "request enqueued".
  bool Draining = false;

  std::mutex RunMu;
  std::condition_variable MonCv;
  std::map<std::uint64_t, RunningJob> Running;
  std::uint64_t NextRunId = 0;
  bool MonitorStop = false;

  std::mutex ConnMu;
  std::vector<std::thread> ConnThreads;
  std::set<int> ConnFds;

  std::atomic<std::int64_t> BusyWorkers{0};
};

} // namespace serve
} // namespace ccal

#endif // CCAL_SERVE_CERTD_H
