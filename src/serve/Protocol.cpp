//===- serve/Protocol.cpp - certd wire protocol ---------------------------===//

#include "serve/Protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ccal;
using namespace ccal::serve;

namespace {

std::string errnoStr(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

/// Reads exactly N bytes; 1 = ok, 0 = clean EOF before any byte, -1 = error
/// (including EOF mid-buffer — a torn frame).
int readExact(int Fd, char *Buf, std::size_t N, std::string &Err) {
  std::size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoStr("read");
      return -1;
    }
    if (R == 0) {
      if (Got == 0)
        return 0;
      Err = "peer closed mid-frame";
      return -1;
    }
    Got += static_cast<std::size_t>(R);
  }
  return 1;
}

bool writeExact(int Fd, const char *Buf, std::size_t N, std::string &Err) {
  std::size_t Sent = 0;
  while (Sent < N) {
    // MSG_NOSIGNAL: a client that crashed mid-job must surface as an
    // EPIPE error on the daemon's write, not a SIGPIPE killing it.
    ssize_t R = ::send(Fd, Buf + Sent, N - Sent, MSG_NOSIGNAL);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoStr("send");
      return false;
    }
    Sent += static_cast<std::size_t>(R);
  }
  return true;
}

} // namespace

FrameStatus serve::readFrame(int Fd, std::string &Payload, std::string &Err) {
  unsigned char Hdr[4];
  int R = readExact(Fd, reinterpret_cast<char *>(Hdr), 4, Err);
  if (R == 0)
    return FrameStatus::Eof;
  if (R < 0)
    return FrameStatus::Error;
  std::uint32_t Len = (std::uint32_t(Hdr[0]) << 24) |
                      (std::uint32_t(Hdr[1]) << 16) |
                      (std::uint32_t(Hdr[2]) << 8) | std::uint32_t(Hdr[3]);
  if (Len > MaxFrameBytes) {
    // Cap checked before the allocation: a hostile header must not make
    // the daemon reserve gigabytes.
    Err = "frame length " + std::to_string(Len) + " exceeds cap " +
          std::to_string(MaxFrameBytes);
    return FrameStatus::Error;
  }
  Payload.resize(Len);
  if (Len != 0 && readExact(Fd, &Payload[0], Len, Err) != 1)
    return FrameStatus::Error;
  return FrameStatus::Ok;
}

bool serve::writeFrame(int Fd, const std::string &Payload, std::string &Err) {
  if (Payload.size() > MaxFrameBytes) {
    Err = "frame payload exceeds cap";
    return false;
  }
  std::uint32_t Len = static_cast<std::uint32_t>(Payload.size());
  char Hdr[4] = {static_cast<char>(Len >> 24), static_cast<char>(Len >> 16),
                 static_cast<char>(Len >> 8), static_cast<char>(Len)};
  return writeExact(Fd, Hdr, 4, Err) &&
         writeExact(Fd, Payload.data(), Payload.size(), Err);
}

FrameStatus serve::readFrameJson(int Fd, JsonValue &Out, std::string &Err) {
  std::string Payload;
  FrameStatus S = readFrame(Fd, Payload, Err);
  if (S != FrameStatus::Ok)
    return S;
  JsonParseResult P = parseJson(Payload, WireJsonMaxDepth);
  if (!P) {
    Err = "bad frame payload: " + P.Error;
    return FrameStatus::Error;
  }
  Out = std::move(P.Value);
  return FrameStatus::Ok;
}

bool serve::writeFrameJson(int Fd, const JsonValue &V, std::string &Err) {
  return writeFrame(Fd, jsonToString(V), Err);
}

int serve::listenUnix(const std::string &Path, int Backlog,
                      std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoStr("socket");
    return -1;
  }
  ::unlink(Path.c_str()); // leftover from a previous daemon; ENOENT is fine
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = errnoStr(("bind " + Path).c_str());
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, Backlog) != 0) {
    Err = errnoStr("listen");
    ::close(Fd);
    ::unlink(Path.c_str());
    return -1;
  }
  return Fd;
}

int serve::connectUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoStr("socket");
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = errnoStr(("connect " + Path).c_str());
    ::close(Fd);
    return -1;
  }
  return Fd;
}

JsonValue serve::jobResultToJson(const JobResult &R) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["job"] = jsonStr(R.Job);
  V.Fields["known"] = jsonBool(R.Known);
  V.Fields["holds"] = jsonBool(R.Holds);
  V.Fields["complete"] = jsonBool(R.Complete);
  V.Fields["diagnostic"] = jsonStr(R.Diagnostic);
  V.Fields["schedules"] = jsonUInt(R.Schedules);
  V.Fields["obligations"] = jsonUInt(R.Obligations);
  V.Fields["cert_hits"] = jsonUInt(R.CertHits);
  V.Fields["cert_misses"] = jsonUInt(R.CertMisses);
  V.Fields["cert_stores"] = jsonUInt(R.CertStores);
  V.Fields["wall_ms"] = jsonNum(R.WallMs);
  return V;
}

bool serve::jobResultFromJson(const JsonValue &V, JobResult &Out,
                              std::string &Err) {
  if (!V.isObject()) {
    Err = "job result is not an object";
    return false;
  }
  auto Str = [&V](const char *F, std::string &Into) {
    if (const JsonValue *X = V.field(F); X && X->isString())
      Into = X->StrVal;
  };
  auto Flag = [&V](const char *F, bool &Into) {
    if (const JsonValue *X = V.field(F); X && X->isBool())
      Into = X->BoolVal;
  };
  auto UInt = [&V](const char *F, std::uint64_t &Into) {
    if (const JsonValue *X = V.field(F); X && X->isNumber() && X->IsInt &&
                                         X->IntVal >= 0)
      Into = static_cast<std::uint64_t>(X->IntVal);
  };
  const JsonValue *Job = V.field("job");
  if (!Job || !Job->isString()) {
    Err = "job result missing \"job\"";
    return false;
  }
  Out = JobResult();
  Out.Job = Job->StrVal;
  Flag("known", Out.Known);
  Flag("holds", Out.Holds);
  Flag("complete", Out.Complete);
  Str("diagnostic", Out.Diagnostic);
  UInt("schedules", Out.Schedules);
  UInt("obligations", Out.Obligations);
  UInt("cert_hits", Out.CertHits);
  UInt("cert_misses", Out.CertMisses);
  UInt("cert_stores", Out.CertStores);
  if (const JsonValue *W = V.field("wall_ms"); W && W->isNumber())
    Out.WallMs = W->NumVal;
  return true;
}
