//===- serve/certd_main.cpp - certd entry point ---------------------------===//
//
// Usage:
//   certd --socket PATH [--workers N] [--queue-bound N]
//         [--default-timeout-ms N] [--threads-per-job N]
//
// Runs until SIGTERM/SIGINT or a client's shutdown op, then drains
// gracefully: stops accepting, finishes queued and running jobs, answers
// waiting clients, flushes the trace buffer.  Point CCAL_CERT_CACHE at a
// directory to share verified obligations across every client (and every
// future daemon run).
//
//===----------------------------------------------------------------------===//

#include "serve/Certd.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace ccal;

namespace {

serve::Certd *GlobalDaemon = nullptr;

// Only async-signal-safe work here: requestShutdown is one atomic store
// plus one pipe write by design.
void onSignal(int) {
  if (GlobalDaemon)
    GlobalDaemon->requestShutdown();
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--workers N] [--queue-bound N]\n"
               "          [--default-timeout-ms N] [--threads-per-job N]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  serve::CertdOptions Opts;
  for (int I = 1; I < argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (std::strcmp(argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (const char *V = Value("--socket"))
      Opts.SocketPath = V;
    else if (const char *V = Value("--workers"))
      Opts.Workers = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else if (const char *V = Value("--queue-bound"))
      Opts.QueueBound = std::strtoul(V, nullptr, 10);
    else if (const char *V = Value("--default-timeout-ms"))
      Opts.DefaultTimeoutMs = std::strtoull(V, nullptr, 10);
    else if (const char *V = Value("--threads-per-job"))
      Opts.ThreadsPerJob =
          static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else
      return usage(argv[0]);
  }
  if (Opts.SocketPath.empty())
    return usage(argv[0]);

  serve::Certd Daemon(Opts);
  GlobalDaemon = &Daemon;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  // A client gone mid-response must surface as a send error, not kill us.
  std::signal(SIGPIPE, SIG_IGN);

  std::string Err;
  if (!Daemon.start(Err)) {
    std::fprintf(stderr, "certd: %s\n", Err.c_str());
    return 1;
  }
  std::printf("certd: listening on %s (workers=%u queue-bound=%zu "
              "threads-per-job=%u)\n",
              Opts.SocketPath.c_str(), Daemon.options().Workers,
              Daemon.options().QueueBound, Daemon.options().ThreadsPerJob);
  std::fflush(stdout);

  Daemon.waitShutdown();
  std::printf("certd: drained, bye\n");
  return 0;
}
