//===- serve/Jobs.cpp - certd verification job catalog --------------------===//

#include "serve/Jobs.h"

#include "objects/Harness.h"
#include "objects/McsLock.h"
#include "objects/TicketLock.h"
#include "obs/Metrics.h"

#include <chrono>
#include <map>
#include <mutex>

using namespace ccal;
using namespace ccal::serve;

namespace {

struct Registry {
  std::mutex Mu;
  std::map<std::string, std::pair<std::string, JobFn>> Jobs;
};

/// Wraps a harness factory: injects the job context into both machines'
/// exploration options, runs, and translates the refinement report.
JobFn harnessJob(std::function<ObjectHarness()> Make) {
  return [Make = std::move(Make)](const JobContext &Ctx) {
    ObjectHarness H = Make();
    H.ImplOpts.Cancel = Ctx.Cancel;
    H.ImplOpts.CancelReason = Ctx.CancelReason;
    H.SpecOpts.Cancel = Ctx.Cancel;
    H.SpecOpts.CancelReason = Ctx.CancelReason;
    if (Ctx.Threads > 1) {
      H.ImplOpts.Threads = Ctx.Threads;
      H.SpecOpts.Threads = Ctx.Threads;
    }
    HarnessOutcome Out = runObjectHarness(H);

    JobResult R;
    R.Holds = Out.Report.Holds;
    R.Complete = Out.Report.SpecComplete && Out.Report.ImplComplete;
    R.Diagnostic = Out.Report.Holds ? "" : Out.Report.Counterexample;
    R.Schedules = Out.Report.SchedulesExplored;
    R.Obligations = Out.Report.ObligationsChecked;
    return R;
  };
}

Registry &registry() {
  static Registry *R = [] {
    auto *Reg = new Registry();
    auto Add = [&Reg](std::string Name, std::string Desc,
                      std::function<ObjectHarness()> Make) {
      Reg->Jobs.emplace(std::move(Name),
                        std::make_pair(std::move(Desc),
                                       harnessJob(std::move(Make))));
    };
    // The built-in catalog: the two certified locks at the configurations
    // the suite exercises.  Both refine the same atomic L1, so a stack
    // mixing them shares overlapping obligations — that overlap is what
    // the daemon's shared store monetizes.
    Add("ticket.2cpu", "ticket lock, 2 CPUs x 1 round (~50ms cold)",
        [] { return makeTicketLockHarness(2, 1); });
    Add("ticket.1cpu.2r", "ticket lock, 1 CPU x 2 rounds (fast)",
        [] { return makeTicketLockHarness(1, 2); });
    Add("ticket.2cpu.2r",
        "ticket lock, 2 CPUs x 2 rounds (heavy: ~3.5M schedules, minutes "
        "cold — submit with a timeout unless you mean it)",
        [] { return makeTicketLockHarness(2, 2); });
    // 3 CPUs of spinning exceed the harness's 512-step budget, so this
    // job truthfully reports TRUNCATED after several seconds of
    // exploration — kept in the catalog as the natural stress/timeout
    // subject (the serve tests cancel it mid-flight).
    Add("ticket.3cpu",
        "ticket lock, 3 CPUs x 1 round (exceeds the step budget: "
        "truncates, never Holds)",
        [] { return makeTicketLockHarness(3, 1); });
    Add("mcs.2cpu", "MCS lock, 2 CPUs x 1 round (~90ms cold)",
        [] { return makeMcsLockHarness(2, 1); });
    // Release/acquire re-verification of the same locks: the annotated
    // implementation machine runs under RaMemory (stale reads enumerated),
    // the spec machine stays SC.  Their certificates carry the memory
    // model in the key, so they share the store with the SC jobs without
    // ever aliasing them.
    Add("ticket.2cpu.ra",
        "ticket lock under release/acquire memory, 2 CPUs x 1 round",
        [] { return makeTicketLockHarnessRa(2, 1); });
    Add("mcs.2cpu.ra",
        "MCS lock under release/acquire memory, 2 CPUs x 1 round",
        [] { return makeMcsLockHarnessRa(2, 1); });
    return Reg;
  }();
  return *R;
}

} // namespace

std::vector<JobInfo> serve::listJobs() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  std::vector<JobInfo> Out;
  for (const auto &[Name, Entry] : R.Jobs)
    Out.push_back({Name, Entry.first});
  return Out;
}

bool serve::haveJob(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  return R.Jobs.count(Name) != 0;
}

void serve::registerJob(const std::string &Name, const std::string &Desc,
                        JobFn Fn) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  R.Jobs[Name] = {Desc, std::move(Fn)};
}

JobResult serve::runJob(const std::string &Name, const JobContext &Ctx) {
  JobFn Fn;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> L(R.Mu);
    auto It = R.Jobs.find(Name);
    if (It != R.Jobs.end())
      Fn = It->second.second; // copy out: don't run under the registry lock
  }
  if (!Fn) {
    JobResult R;
    R.Job = Name;
    R.Known = false;
    R.Diagnostic = "unknown job: " + Name;
    return R;
  }

  // Cert traffic attribution: registry deltas around the run.  Exact when
  // the daemon runs jobs serially; under concurrent jobs a neighbour's
  // traffic can land in this window — documented as approximate.
  std::uint64_t Hits0 = obs::counterValue("cert.hits");
  std::uint64_t Misses0 = obs::counterValue("cert.misses");
  std::uint64_t Stores0 = obs::counterValue("cert.stores");
  auto T0 = std::chrono::steady_clock::now();

  JobResult R = Fn(Ctx);

  auto T1 = std::chrono::steady_clock::now();
  R.Job = Name;
  R.WallMs =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          T1 - T0)
          .count();
  R.CertHits = obs::counterValue("cert.hits") - Hits0;
  R.CertMisses = obs::counterValue("cert.misses") - Misses0;
  R.CertStores = obs::counterValue("cert.stores") - Stores0;
  return R;
}
