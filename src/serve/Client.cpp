//===- serve/Client.cpp - certd client library ----------------------------===//

#include "serve/Client.h"

#include <chrono>

#include <unistd.h>

using namespace ccal;
using namespace ccal::serve;

CertClient::~CertClient() { close(); }

bool CertClient::connect(const std::string &SocketPath, std::string &Err) {
  close();
  Fd = connectUnix(SocketPath, Err);
  return Fd >= 0;
}

void CertClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool CertClient::rpc(const JsonValue &Req, JsonValue &Resp,
                     std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  if (!writeFrameJson(Fd, Req, Err))
    return false;
  FrameStatus S = readFrameJson(Fd, Resp, Err);
  if (S == FrameStatus::Eof) {
    Err = "daemon closed the connection";
    return false;
  }
  return S == FrameStatus::Ok;
}

namespace {
JsonValue opRequest(const char *Op) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["op"] = jsonStr(Op);
  return V;
}

/// Daemon-level rejection ({"ok":false,...}) extracted into \p Err.
bool okOf(const JsonValue &Resp, std::string &Err) {
  const JsonValue *Ok = Resp.field("ok");
  if (Ok && Ok->isBool() && Ok->BoolVal)
    return true;
  const JsonValue *E = Resp.field("error");
  Err = E && E->isString() ? E->StrVal : "daemon error";
  return false;
}
} // namespace

bool CertClient::ping(std::string &Err) {
  JsonValue Resp;
  return rpc(opRequest("ping"), Resp, Err) && okOf(Resp, Err);
}

bool CertClient::list(std::vector<JobInfo> &Out, std::string &Err) {
  JsonValue Resp;
  if (!rpc(opRequest("list"), Resp, Err) || !okOf(Resp, Err))
    return false;
  Out.clear();
  const JsonValue *Jobs = Resp.field("jobs");
  if (!Jobs || !Jobs->isArray()) {
    Err = "malformed list response";
    return false;
  }
  for (const JsonValue &J : Jobs->Items) {
    const JsonValue *Name = J.field("name");
    const JsonValue *Desc = J.field("desc");
    if (!Name || !Name->isString())
      continue;
    Out.push_back(
        {Name->StrVal, Desc && Desc->isString() ? Desc->StrVal : ""});
  }
  return true;
}

bool CertClient::stats(JsonValue &Out, std::string &Err) {
  JsonValue Resp;
  if (!rpc(opRequest("stats"), Resp, Err) || !okOf(Resp, Err))
    return false;
  const JsonValue *Stats = Resp.field("stats");
  if (!Stats || !Stats->isObject()) {
    Err = "malformed stats response";
    return false;
  }
  Out = *Stats;
  return true;
}

bool CertClient::requestShutdown(std::string &Err) {
  JsonValue Resp;
  return rpc(opRequest("shutdown"), Resp, Err) && okOf(Resp, Err);
}

bool CertClient::verify(const std::vector<std::string> &Jobs,
                        const VerifyOptions &Opts, VerifyResponse &Out,
                        std::string &Err) {
  JsonValue Req = opRequest("verify");
  JsonValue Arr;
  Arr.K = JsonValue::Kind::Array;
  for (const std::string &J : Jobs)
    Arr.Items.push_back(jsonStr(J));
  Req.Fields["jobs"] = std::move(Arr);
  if (Opts.TimeoutMs != 0)
    Req.Fields["timeout_ms"] = jsonUInt(Opts.TimeoutMs);
  if (Opts.Threads != 0)
    Req.Fields["threads"] = jsonUInt(Opts.Threads);

  auto T0 = std::chrono::steady_clock::now();
  JsonValue Resp;
  if (!rpc(Req, Resp, Err))
    return false;
  auto T1 = std::chrono::steady_clock::now();

  Out = VerifyResponse();
  Out.WallMs =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          T1 - T0)
          .count();
  if (!okOf(Resp, Out.Error))
    return true; // daemon-level rejection: transported fine, Ok stays false
  const JsonValue *Results = Resp.field("results");
  if (!Results || !Results->isArray()) {
    Err = "malformed verify response";
    return false;
  }
  for (const JsonValue &R : Results->Items) {
    JobResult JR;
    if (!jobResultFromJson(R, JR, Err))
      return false;
    Out.Results.push_back(std::move(JR));
  }
  Out.Ok = true;
  return true;
}
