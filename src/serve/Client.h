//===- serve/Client.h - certd client library -------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin client side of the certd protocol: connect, fire one request
/// frame, block on the one response frame.  The ccal-verify CLI, the
/// verify_service example, and the serve tests all speak through this —
/// nothing outside serve/ touches the wire format directly.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SERVE_CLIENT_H
#define CCAL_SERVE_CLIENT_H

#include "serve/Jobs.h" // JobInfo for list(); pulls in Protocol.h

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {
namespace serve {

/// Per-request knobs (both optional; 0 = daemon default).
struct VerifyOptions {
  std::uint64_t TimeoutMs = 0;
  unsigned Threads = 0;
};

/// One verify batch's answer.
struct VerifyResponse {
  bool Ok = false;
  std::string Error; ///< daemon-side rejection (queue full, draining, ...)
  std::vector<JobResult> Results;
  double WallMs = 0; ///< client-side round-trip
};

class CertClient {
public:
  CertClient() = default;
  ~CertClient();

  CertClient(const CertClient &) = delete;
  CertClient &operator=(const CertClient &) = delete;

  // Movable: the connection is a plain fd handle, so factories can hand
  // connected clients around.
  CertClient(CertClient &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  CertClient &operator=(CertClient &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Other.Fd = -1;
    }
    return *this;
  }

  bool connect(const std::string &SocketPath, std::string &Err);
  void close();
  bool connected() const { return Fd >= 0; }

  bool ping(std::string &Err);
  bool list(std::vector<JobInfo> &Out, std::string &Err);
  /// The daemon's metrics registry as {"counters":{...},"gauges":{...}}.
  bool stats(JsonValue &Out, std::string &Err);
  /// Asks the daemon to drain; returns once it acknowledged (the drain
  /// itself finishes asynchronously).
  bool requestShutdown(std::string &Err);

  /// Submits one batch and blocks until all its jobs finished (or the
  /// daemon rejected it — Out.Ok false with Out.Error set; the call
  /// itself then still returns true).  False only on transport errors.
  bool verify(const std::vector<std::string> &Jobs,
              const VerifyOptions &Opts, VerifyResponse &Out,
              std::string &Err);

private:
  bool rpc(const JsonValue &Req, JsonValue &Resp, std::string &Err);

  int Fd = -1;
};

} // namespace serve
} // namespace ccal

#endif // CCAL_SERVE_CLIENT_H
