//===- threads/QueuingLock.cpp - Certified queuing lock -----------------------===//

#include "threads/QueuingLock.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "objects/Harness.h"
#include "threads/Sched.h"
#include "support/Text.h"

using namespace ccal;

namespace {

/// Replays the queuing lock's busy word from ql_set_busy events.
std::int64_t replayBusy(const Log &L) {
  std::int64_t Busy = -1;
  for (const Event &E : L)
    if (E.Kind == "ql_set_busy" && E.Args.size() == 1)
      Busy = E.Args[0];
  return Busy;
}

ClightModule makeQueuingLockModule() {
  // Fig. 11, with the ghost commit markers made explicit (qlock_hold /
  // qlock_wake_hold / qlock_pass) and the single lock index dropped.
  ClightModule M = parseModuleOrDie("M_queuing_lock", R"(
    extern void acq();
    extern void rel();
    extern void sleep_q();
    extern int wakeup_q();
    extern int ql_get_busy();
    extern void ql_set_busy(int v);
    extern int get_tid();
    extern void qlock_hold();
    extern void qlock_wake_hold();
    extern void qlock_pass();

    void acq_q() {
      acq();
      if (ql_get_busy() != -1) {
        sleep_q();
        qlock_wake_hold();
      } else {
        ql_set_busy(get_tid());
        qlock_hold();
        rel();
      }
    }

    void rel_q() {
      acq();
      qlock_pass();
      ql_set_busy(wakeup_q());
      rel();
    }
  )");
  typeCheckOrDie(M);
  return M;
}

ClightModule makeQueuingLockClient() {
  ClightModule M = parseModuleOrDie("P_qlock_client", R"(
    extern void acq_q();
    extern void rel_q();
    extern int crit();
    extern void done(int v);

    int t_main(int rounds) {
      int acc = 0;
      int i = 0;
      while (i < rounds) {
        acq_q();
        acc = acc * 100 + crit();
        rel_q();
        i = i + 1;
      }
      done(acc);
      return acc;
    }
  )");
  typeCheckOrDie(M);
  return M;
}

} // namespace

QueuingLockSetup ccal::makeQueuingLockSetup(unsigned Cpus,
                                            unsigned ThreadsPerCpu,
                                            unsigned Rounds) {
  QueuingLockSetup Out;
  Out.Module = makeQueuingLockModule();
  Out.Client = makeQueuingLockClient();

  for (ThreadId Cpu = 0; Cpu != Cpus; ++Cpu)
    for (unsigned K = 0; K != ThreadsPerCpu; ++K)
      Out.CpuOf.emplace(Cpu * ThreadsPerCpu + K, Cpu);

  // --- Underlay: atomic spinlock + scheduler sleep/wakeup + busy word.
  Replayer<AbstractLockState> SpinR = makeAbstractLockReplayer("acq", "rel");
  Replayer<HighSchedState> SchedR = makeHighSchedReplayer(Out.CpuOf);

  auto Under = makeInterface("Lhtd_qlock");
  addAtomicLock(*Under, "acq", "rel");
  // sleep_q: atomically release the spinlock and sleep on queue 0 ("sleep
  // on queue i while holding the lock lk", §5.1).
  Under->addShared("sleep_q", [SpinR](const PrimCall &Call)
                       -> std::optional<PrimResult> {
    std::optional<AbstractLockState> S = SpinR.replay(*Call.L);
    if (!S || !S->Holder || *S->Holder != Call.Tid)
      return std::nullopt; // must hold the spinlock to sleep
    PrimResult Res;
    Res.Events.push_back(Event(Call.Tid, "rel"));
    Res.Events.push_back(Event(Call.Tid, "sleep", {0}));
    return Res;
  });
  Under->addShared("wakeup_q", [SchedR](const PrimCall &Call)
                       -> std::optional<PrimResult> {
    std::optional<HighSchedState> S = SchedR.replay(*Call.L);
    if (!S)
      return std::nullopt;
    PrimResult Res;
    auto It = S->Sleep.find(0);
    Res.Ret = (It == S->Sleep.end() || It->second.empty())
                  ? -1
                  : static_cast<std::int64_t>(It->second.front());
    Res.Events.push_back(Event(Call.Tid, "wakeup", {0}));
    return Res;
  });
  Under->addShared("ql_get_busy", [SpinR](const PrimCall &Call)
                       -> std::optional<PrimResult> {
    std::optional<AbstractLockState> S = SpinR.replay(*Call.L);
    if (!S || !S->Holder || *S->Holder != Call.Tid)
      return std::nullopt; // busy word is spinlock-protected
    PrimResult Res;
    Res.Ret = replayBusy(*Call.L);
    Res.Events.push_back(Event(Call.Tid, "ql_get_busy"));
    return Res;
  });
  Under->addShared("ql_set_busy", [SpinR](const PrimCall &Call)
                       -> std::optional<PrimResult> {
    if (Call.Args.size() != 1)
      return std::nullopt;
    std::optional<AbstractLockState> S = SpinR.replay(*Call.L);
    if (!S || !S->Holder || *S->Holder != Call.Tid)
      return std::nullopt;
    PrimResult Res;
    Res.Events.push_back(Event(Call.Tid, "ql_set_busy", Call.Args));
    return Res;
  });
  Under->addShared("qlock_hold", makeEventPrim("qlock_hold"));
  Under->addShared("qlock_wake_hold", makeEventPrim("qlock_wake_hold"));
  Under->addShared("qlock_pass", makeEventPrim("qlock_pass"));
  Under->addShared("crit", makeFetchIncPrim("crit"));
  Under->addShared("done", makeEventPrim("done"));
  Under->addPrivate("get_tid", makeSelfIdPrim());
  Out.Underlay = Under;

  // --- Overlay: blocking atomic acq_q/rel_q.
  auto Over = makeInterface("Lqlock");
  addAtomicLock(*Over, "acq_q", "rel_q");
  Over->addShared("crit", makeFetchIncPrim("crit"));
  Over->addShared("done", makeEventPrim("done"));
  Out.Overlay = Over;

  Out.RImpl =
      EventMap("Rqlock", [](const Event &E) -> std::optional<Event> {
        if (E.Kind == "qlock_hold" || E.Kind == "qlock_wake_hold")
          return Event(E.Tid, "acq_q");
        if (E.Kind == "qlock_pass")
          return Event(E.Tid, "rel_q");
        if (E.Kind == "crit" || E.Kind == "done")
          return E;
        return std::nullopt;
      });
  Out.RSpec =
      EventMap("RqlockSpec", [](const Event &E) -> std::optional<Event> {
        if (E.Kind == ThreadExitEventKind || E.Kind == ReschedEventKind)
          return std::nullopt;
        return E;
      });

  // --- Machines.
  auto ImplCfg = std::make_shared<ThreadedConfig>();
  ImplCfg->Name = "qlock.impl";
  ImplCfg->Layer = Out.Underlay;
  ImplCfg->Program =
      compileAndLink("qlock.impl.lasm", {&Out.Client, &Out.Module});
  ImplCfg->Sched = makeHighSchedFn(Out.CpuOf);

  auto SpecCfg = std::make_shared<ThreadedConfig>();
  SpecCfg->Name = "qlock.spec";
  SpecCfg->Layer = Out.Overlay;
  SpecCfg->Program = compileAndLink("qlock.spec.lasm", {&Out.Client});
  SpecCfg->Sched = makeHighSchedFn(Out.CpuOf);

  for (const auto &[Tid, Cpu] : Out.CpuOf) {
    ThreadSpec TS;
    TS.Tid = Tid;
    TS.Cpu = Cpu;
    TS.Items.push_back({"t_main", {static_cast<std::int64_t>(Rounds)}});
    ImplCfg->Threads.push_back(TS);
    SpecCfg->Threads.push_back(TS);
  }
  Out.ImplConfig = ImplCfg;
  Out.SpecConfig = SpecCfg;

  // Keep the parsed modules alive: configs reference only compiled code,
  // so moving the setup out is safe.
  return Out;
}

QueuingLockOutcome ccal::certifyQueuingLock(unsigned Cpus,
                                            unsigned ThreadsPerCpu,
                                            unsigned Rounds) {
  QueuingLockSetup Setup =
      makeQueuingLockSetup(Cpus, ThreadsPerCpu, Rounds);

  // Mutual exclusion of the queuing lock at the marker level: the marker
  // events must satisfy the abstract lock protocol along every state.
  Replayer<AbstractLockState> MarkerR =
      makeAbstractLockReplayer("qlock_hold_any", "qlock_pass");
  // qlock_hold and qlock_wake_hold are both acquisitions; normalize first.
  EventMap Normalize("norm", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "qlock_hold" || E.Kind == "qlock_wake_hold")
      return Event(E.Tid, "qlock_hold_any");
    return E;
  });

  // The queuing lock never spins, so every schedule terminates; a small
  // fairness bound keeps the (complete-for-that-bound) space tractable.
  ThreadedExploreOptions ImplOpts;
  ImplOpts.FairnessBound = 2;
  ImplOpts.MaxSteps = 1024;
  ImplOpts.Invariant =
      [MarkerR, Normalize](const ThreadedMachine &M) -> std::string {
    if (!MarkerR.wellFormed(Normalize.apply(M.log())))
      return "queuing-lock mutual exclusion violated";
    return "";
  };
  ImplOpts.InvariantName = "qlock.mutex";
  // The spec machine must admit every schedule the implementation's
  // mapped behaviors need, so its fairness bound is looser.
  // The atomic spec machine never spins, so every schedule terminates and
  // no fairness pruning is needed (pruning would wrongly shrink the set of
  // admissible spec behaviors).
  ThreadedExploreOptions SpecOpts;
  SpecOpts.FairnessBound = 1u << 20;
  SpecOpts.MaxSteps = 1024;

  QueuingLockOutcome Out;
  Out.Report =
      checkThreadedRefinement(Setup.ImplConfig, Setup.SpecConfig,
                              Setup.RImpl, Setup.RSpec, ImplOpts, SpecOpts);
  Out.ImplLoC = moduleLoC(Setup.Module);

  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "LogLift";
  C->Underlay = Setup.Underlay->name();
  C->Module = "queuing_lock";
  C->Overlay = Setup.Overlay->name();
  C->Relation = Setup.RImpl.name();
  C->CoverageComplete = Out.Report.SpecComplete && Out.Report.ImplComplete;
  C->Coverage = Out.Report.Coverage;
  C->Valid = Out.Report.Holds && C->CoverageComplete;
  C->Obligations = Out.Report.ObligationsChecked;
  C->Runs = Out.Report.SchedulesExplored;
  C->Moves = Out.Report.StatesExplored;
  if (!Out.Report.Holds)
    C->Notes.push_back(Out.Report.Counterexample);
  Out.Cert = C;
  return Out;
}
