//===- threads/Ipc.cpp - Message-passing IPC -----------------------------------===//

#include "threads/Ipc.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "threads/Sched.h"
#include "support/Text.h"

using namespace ccal;

ClightModule ccal::makeIpcChannelModule() {
  ClightModule M = parseModuleOrDie("M_ipc_channel", R"(
    extern void acq_q();
    extern void rel_q();
    extern void cv_wait(int q);
    extern void cv_signal(int q);

    int ring[2];
    int r_head = 0;
    int r_tail = 0;
    int r_count = 0;

    void send(int v) {
      acq_q();
      while (r_count == 2) { cv_wait(0); }  // 0: not-full
      ring[r_tail] = v;
      r_tail = (r_tail + 1) % 2;
      r_count = r_count + 1;
      cv_signal(1);                          // 1: not-empty
      rel_q();
    }

    int recv() {
      acq_q();
      while (r_count == 0) { cv_wait(1); }
      int v = ring[r_head];
      r_head = (r_head + 1) % 2;
      r_count = r_count - 1;
      cv_signal(0);
      rel_q();
      return v;
    }
  )");
  typeCheckOrDie(M);
  return M;
}

MonitorCheck ccal::checkIpcChannel(unsigned Items) {
  std::map<ThreadId, ThreadId> CpuOf = {{0, 0}, {1, 0}};

  static ClightModule Channel;
  static ClightModule Cv;
  static ClightModule Client;
  Channel = makeIpcChannelModule();
  Cv = makeCondVarModule();
  Client = parseModuleOrDie("P_ipc_client", R"(
    extern void send(int v);
    extern int recv();
    extern void done(int v);

    int t_sender(int n) {
      int i = 0;
      while (i < n) {
        send(7 + i);
        i = i + 1;
      }
      return 0;
    }

    int t_receiver(int n) {
      int acc = 0;
      int i = 0;
      while (i < n) {
        acc = acc * 100 + recv();
        i = i + 1;
      }
      done(acc);
      return acc;
    }
  )");
  typeCheckOrDie(Client);

  auto Cfg = std::make_shared<ThreadedConfig>();
  Cfg->Name = "ipc";
  Cfg->Layer = makeMonitorLayer(CpuOf);
  Cfg->Program = compileAndLink("ipc.lasm", {&Client, &Channel, &Cv});
  Cfg->Sched = makeHighSchedFn(CpuOf);
  Cfg->Threads.push_back(
      {0, 0, {{"t_receiver", {static_cast<std::int64_t>(Items)}}}});
  Cfg->Threads.push_back(
      {1, 0, {{"t_sender", {static_cast<std::int64_t>(Items)}}}});

  ThreadedExploreOptions Opts;
  Opts.MaxSteps = 4096;
  ExploreResult Res = exploreThreaded(Cfg, Opts);

  MonitorCheck Out;
  Out.SchedulesExplored = Res.SchedulesExplored;
  Out.StatesExplored = Res.StatesExplored;
  if (!Res.Ok) {
    Out.Violation = Res.Violation;
    return Out;
  }
  std::int64_t Expected = 0;
  for (unsigned I = 0; I != Items; ++I)
    Expected = Expected * 100 + (7 + I);
  for (const Outcome &O : Res.Outcomes) {
    auto It = O.Returns.find(0);
    if (It == O.Returns.end() || It->second.size() != 1 ||
        It->second[0] != Expected) {
      Out.Violation = "channel lost, duplicated, or reordered a message";
      return Out;
    }
  }
  Out.Ok = true;
  return Out;
}
