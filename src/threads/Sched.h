//===- threads/Sched.h - Thread schedulers ---------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The certified scheduling layers of §5.1/§5.2:
///
///   * the *high* scheduler replay `Rsched` interprets atomic scheduling
///     events (spawn / yield / sleep / wakeup / texit / resched) over
///     abstract per-CPU ready queues and shared sleep queues — the
///     interface Lhtd[c][Tc];
///
///   * the *low* scheduler replay interprets concrete context-switch
///     events (cswitch / texit) — the interface Lbtd[c], where the ready
///     queue lives in CPU-local memory and is manipulated by linked
///     local-queue *code*;
///
///   * the scheduler module M_sched implements yield/spawn/thread_exit in
///     ClightX over the local-queue module plus the cswitch primitive.
///
/// threads/Linking.h uses both to check the multithreaded linking theorem
/// (Thm 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_THREADS_SCHED_H
#define CCAL_THREADS_SCHED_H

#include "core/Replay.h"
#include "lang/Ast.h"
#include "threads/ThreadMachine.h"

namespace ccal {

/// The abstract scheduler state replayed by the high-level Rsched.
struct HighSchedState {
  std::map<ThreadId, std::int64_t> Current;            ///< cpu -> tid/-1
  std::map<ThreadId, std::vector<ThreadId>> Ready;     ///< cpu -> rdq
  std::map<std::int64_t, std::vector<ThreadId>> Sleep; ///< q -> sleepers
  std::set<ThreadId> Sleeping;
};

/// Builds the high-level scheduler replayer over the given thread->CPU
/// placement.  Event protocol:
///   t.spawn(t'):   rdq(cpu(t')) += t'
///   t.yield:       rdq(cpu) += t; cur = pop rdq
///   t.sleep(q):    slpq(q) += t;  cur = pop rdq or -1
///   t.wakeup(q):   w = pop slpq(q); if cpu(w) idle -> cur(cpu(w)) = w
///                  else rdq(cpu(w)) += w
///   t.texit:       cur = pop rdq or -1
///   t.resched:     cur(cpu(t)) = t (idle dispatcher), t removed from rdq
/// When \p PreloadReady is true every thread starts in its CPU's ready
/// queue (the usual case); when false, threads must be spawn()ed (the
/// Thm 5.1 linking demo, where the low level's ready queue in memory also
/// starts empty).  spawn has set semantics: re-spawning a queued or
/// running thread is a no-op, mirroring the local-queue module's inq flag.
Replayer<HighSchedState>
makeHighSchedReplayer(std::map<ThreadId, ThreadId> CpuOf,
                      bool PreloadReady = true);

/// Adapts the replayer to the machine's SchedReplayFn.
SchedReplayFn makeHighSchedFn(std::map<ThreadId, ThreadId> CpuOf,
                              bool PreloadReady = true);

/// The low-level scheduler view: cur(cpu) follows cswitch/texit(next)
/// events verbatim; resched dispatches on idle CPUs.
SchedReplayFn makeLowSchedFn(std::map<ThreadId, ThreadId> CpuOf);

/// Installs the atomic scheduling primitives (yield, spawn, thread_exit,
/// sleep, wakeup) into \p L, validated against the high replayer.
/// `sleep(q)` emits only the sleep event; lock layers that need
/// release-and-sleep install their own composite primitive.
void installHighSchedPrims(LayerInterface &L,
                           std::map<ThreadId, ThreadId> CpuOf,
                           bool PreloadReady = true);

/// Installs the low-level primitives (cswitch, texit, get_tid) into \p L.
void installLowSchedPrims(LayerInterface &L,
                          std::map<ThreadId, ThreadId> CpuOf);

/// The scheduler module: yield/spawn/thread_exit over local-queue code and
/// cswitch/texit primitives (link with makeLocalQueueModule()).
ClightModule makeSchedModule();

} // namespace ccal

#endif // CCAL_THREADS_SCHED_H
