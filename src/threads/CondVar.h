//===- threads/CondVar.h - Condition variables -----------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Condition variables over the certified queuing lock (§1/Fig. 1's
/// "Sync. Libs": QLock -> CV).  `cv_wait` atomically releases the monitor
/// lock and sleeps on the CV's queue, then re-acquires on wakeup (Mesa
/// semantics); `cv_signal` wakes one sleeper.
///
/// Verified properties (checked over *all* schedules by the explorer):
/// monitor mutual exclusion, absence of deadlock and lost wakeups for the
/// single-producer/single-consumer bounded buffer, and in-order delivery.
/// A deliberately under-synchronized two-producer variant demonstrates the
/// checker *finding* the classic lost-wakeup deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_THREADS_CONDVAR_H
#define CCAL_THREADS_CONDVAR_H

#include "lang/Ast.h"
#include "threads/ThreadMachine.h"

namespace ccal {

/// The CV module: cv_wait(q)/cv_signal(q) over cv_sleep/cv_wake and the
/// atomic queuing lock.
ClightModule makeCondVarModule();

/// Builds the CV/monitor underlay interface: atomic acq_q/rel_q, the
/// composite cv_sleep(q) (release monitor + sleep), cv_wake(q), get_tid,
/// and a `done` marker.
LayerPtr makeMonitorLayer(const std::map<ThreadId, ThreadId> &CpuOf);

/// Outcome of a monitor property check.
struct MonitorCheck {
  bool Ok = false;
  std::string Violation;
  std::uint64_t SchedulesExplored = 0;
  std::uint64_t StatesExplored = 0;
};

/// One-slot bounded buffer with one producer and one consumer on a single
/// CPU: every schedule must terminate with the consumer observing exactly
/// the produced sequence, in order.
MonitorCheck checkBoundedBuffer(unsigned Items);

/// The under-synchronized variant (signal instead of broadcast with two
/// producers sharing one CV): the explorer must *find* a deadlock.
MonitorCheck checkBoundedBufferLostWakeup(unsigned Items);

} // namespace ccal

#endif // CCAL_THREADS_CONDVAR_H
