//===- threads/CondVar.cpp - Condition variables -------------------------------===//

#include "threads/CondVar.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "objects/ObjectSpec.h"
#include "threads/Sched.h"
#include "support/Text.h"

using namespace ccal;

ClightModule ccal::makeCondVarModule() {
  ClightModule M = parseModuleOrDie("M_condvar", R"(
    extern void acq_q();
    extern void rel_q();
    extern void cv_sleep(int q);
    extern int cv_wake(int q);

    // Mesa-style wait: atomically release the monitor and sleep, then
    // re-acquire before returning (callers re-test their predicate).
    void cv_wait(int q) {
      cv_sleep(q);
      acq_q();
    }

    void cv_signal(int q) { cv_wake(q); }
  )");
  typeCheckOrDie(M);
  return M;
}

LayerPtr ccal::makeMonitorLayer(const std::map<ThreadId, ThreadId> &CpuOf) {
  Replayer<AbstractLockState> LockR =
      makeAbstractLockReplayer("acq_q", "rel_q");
  Replayer<HighSchedState> SchedR = makeHighSchedReplayer(CpuOf);

  auto L = makeInterface("Lmonitor");
  addAtomicLock(*L, "acq_q", "rel_q");
  L->addShared("cv_sleep", [LockR](const PrimCall &Call)
                   -> std::optional<PrimResult> {
    if (Call.Args.size() != 1)
      return std::nullopt;
    std::optional<AbstractLockState> S = LockR.replay(*Call.L);
    if (!S || !S->Holder || *S->Holder != Call.Tid)
      return std::nullopt; // must hold the monitor to wait
    PrimResult Res;
    Res.Events.push_back(Event(Call.Tid, "rel_q"));
    Res.Events.push_back(Event(Call.Tid, "sleep", Call.Args));
    return Res;
  });
  L->addShared("cv_wake", [SchedR](const PrimCall &Call)
                   -> std::optional<PrimResult> {
    if (Call.Args.size() != 1)
      return std::nullopt;
    std::optional<HighSchedState> S = SchedR.replay(*Call.L);
    if (!S)
      return std::nullopt;
    PrimResult Res;
    auto It = S->Sleep.find(Call.Args[0]);
    Res.Ret = (It == S->Sleep.end() || It->second.empty())
                  ? -1
                  : static_cast<std::int64_t>(It->second.front());
    Res.Events.push_back(Event(Call.Tid, "wakeup", Call.Args));
    return Res;
  });
  L->addShared("done", makeEventPrim("done"));
  L->addPrivate("get_tid", makeSelfIdPrim());
  return L;
}

namespace {

ClightModule makeBufferModule(bool SharedCv) {
  // SharedCv = true builds the under-synchronized variant: both sides
  // wait on and signal the same CV, the classic lost-wakeup bug.
  const char *WaitFull = SharedCv ? "0" : "0";
  const char *WaitEmpty = SharedCv ? "0" : "1";
  std::string Src = strFormat(R"(
    extern void acq_q();
    extern void rel_q();
    extern void cv_wait(int q);
    extern void cv_signal(int q);

    int buf_full = 0;
    int buf_val = 0;

    void put(int v) {
      acq_q();
      while (buf_full == 1) { cv_wait(%s); }
      buf_val = v;
      buf_full = 1;
      cv_signal(%s);
      rel_q();
    }

    int get() {
      acq_q();
      while (buf_full == 0) { cv_wait(%s); }
      int v = buf_val;
      buf_full = 0;
      cv_signal(%s);
      rel_q();
      return v;
    }
  )",
                              WaitFull, WaitEmpty, WaitEmpty, WaitFull);
  ClightModule M = parseModuleOrDie(
      SharedCv ? "M_buffer_shared_cv" : "M_buffer", Src);
  typeCheckOrDie(M);
  return M;
}

ClightModule makeBufferClient() {
  ClightModule M = parseModuleOrDie("P_buffer_client", R"(
    extern void put(int v);
    extern int get();
    extern void done(int v);

    int t_producer(int n, int base) {
      int i = 0;
      while (i < n) {
        put(base + i);
        i = i + 1;
      }
      return 0;
    }

    int t_consumer(int n) {
      int acc = 0;
      int i = 0;
      while (i < n) {
        acc = acc * 100 + get();
        i = i + 1;
      }
      done(acc);
      return acc;
    }
  )");
  typeCheckOrDie(M);
  return M;
}

MonitorCheck runBufferCheck(unsigned Items, unsigned Producers,
                            bool SharedCv) {
  std::map<ThreadId, ThreadId> CpuOf;
  for (ThreadId T = 0; T <= Producers; ++T)
    CpuOf.emplace(T, 0);

  static ClightModule Buffer;
  static ClightModule Cv;
  static ClightModule Client;
  Buffer = makeBufferModule(SharedCv);
  Cv = makeCondVarModule();
  Client = makeBufferClient();

  auto Cfg = std::make_shared<ThreadedConfig>();
  Cfg->Name = SharedCv ? "buffer.sharedcv" : "buffer";
  Cfg->Layer = makeMonitorLayer(CpuOf);
  Cfg->Program =
      compileAndLink(Cfg->Name + ".lasm", {&Client, &Buffer, &Cv});
  Cfg->Sched = makeHighSchedFn(CpuOf);
  // Thread 0 consumes everything; threads 1..P produce Items each.
  Cfg->Threads.push_back(
      {0, 0, {{"t_consumer", {static_cast<std::int64_t>(Items * Producers)}}}});
  for (ThreadId T = 1; T <= Producers; ++T)
    Cfg->Threads.push_back(
        {T, 0,
         {{"t_producer",
           {static_cast<std::int64_t>(Items),
            static_cast<std::int64_t>(T * 10)}}}});

  ThreadedExploreOptions Opts;
  Opts.MaxSteps = 2048;
  ExploreResult Res = exploreThreaded(Cfg, Opts);

  MonitorCheck Out;
  Out.SchedulesExplored = Res.SchedulesExplored;
  Out.StatesExplored = Res.StatesExplored;
  if (!Res.Ok) {
    Out.Violation = Res.Violation;
    return Out;
  }
  // Every schedule must deliver all items; with one producer, in exactly
  // the produced order.
  for (const Outcome &O : Res.Outcomes) {
    auto It = O.Returns.find(0);
    if (It == O.Returns.end() || It->second.size() != 1) {
      Out.Violation = "consumer did not finish";
      return Out;
    }
    if (Producers == 1) {
      std::int64_t Expected = 0;
      for (unsigned I = 0; I != Items; ++I)
        Expected = Expected * 100 + (10 + I);
      if (It->second[0] != Expected) {
        Out.Violation = strFormat("out-of-order delivery: got %lld",
                                  static_cast<long long>(It->second[0]));
        return Out;
      }
    }
  }
  Out.Ok = true;
  return Out;
}

} // namespace

MonitorCheck ccal::checkBoundedBuffer(unsigned Items) {
  return runBufferCheck(Items, /*Producers=*/1, /*SharedCv=*/false);
}

MonitorCheck ccal::checkBoundedBufferLostWakeup(unsigned Items) {
  return runBufferCheck(Items, /*Producers=*/2, /*SharedCv=*/true);
}
