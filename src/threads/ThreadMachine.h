//===- threads/ThreadMachine.h - The multithreaded machine -----*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multithreaded machine of §5: several threads per CPU, each with its
/// own LAsm execution state, sharing the CPU-local memory (the §5.5 story:
/// private frame stacks, thread-shared globals).  Scheduling is
/// *non-preemptive* ("our machine model does not allow preemption", §5.2):
/// on each CPU only the current thread runs, and control transfers only at
/// scheduling events.
///
/// Which thread is current is itself *replayed from the log* by a
/// scheduler replay function, supplied by the scheduler layer: the
/// high-level one interprets yield/sleep/wakeup events (§5.1), the
/// low-level one interprets concrete cswitch events (§5.2's Lbtd[c]) —
/// letting the multithreaded linking theorem (Thm 5.1) compare the two
/// machines over the same notion of execution.
///
/// Two machine-internal bookkeeping events exist at every level:
/// `texit` (a thread finished its workload) and `resched` (an idle CPU
/// dispatched the lowest-id unfinished thread).  Relations erase them.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_THREADS_THREADMACHINE_H
#define CCAL_THREADS_THREADMACHINE_H

#include "core/LayerInterface.h"
#include "core/Simulation.h"
#include "lasm/Vm.h"
#include "machine/Explorer.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

namespace ccal {

/// Machine-internal event kinds.
inline const char *const ThreadExitEventKind = "texit";
inline const char *const ReschedEventKind = "resched";

/// The per-CPU view a scheduler replay produces.
struct SchedView {
  /// Current thread of each CPU; -1 when the CPU has nothing to run.
  std::map<ThreadId, std::int64_t> Current;

  /// Threads asleep on some sleep queue; the idle dispatcher must not
  /// resched them (only a wakeup can).
  std::set<ThreadId> Sleeping;
};

/// Replays the scheduler state from the log; std::nullopt when a
/// scheduling event violates the protocol.
using SchedReplayFn =
    std::function<std::optional<SchedView>(const Log &)>;

/// One thread of the machine.
struct ThreadSpec {
  ThreadId Tid = 0;
  ThreadId Cpu = 0;
  std::vector<CpuWorkItem> Items;
};

/// Immutable description of a multithreaded run.
struct ThreadedConfig {
  std::string Name;
  LayerPtr Layer;
  AsmProgramPtr Program;
  std::vector<ThreadSpec> Threads;
  SchedReplayFn Sched;
  std::uint64_t SliceBudget = 1u << 20;

  /// The multithreaded machine is SC-only (the §5 machines live above the
  /// lock layers, where weak memory is already abstracted away); the
  /// constructor rejects weak models rather than ignoring them.  Null
  /// means ScMemory.
  MemoryModelPtr Model;
};

using ThreadedConfigPtr = std::shared_ptr<const ThreadedConfig>;

/// Copyable multithreaded machine state; satisfies the generic Explorer's
/// machine concept.
class ThreadedMachine {
public:
  explicit ThreadedMachine(ThreadedConfigPtr Cfg);

  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }

  /// True when every thread has finished its workload.
  bool allIdle() const;

  /// Threads that are current on their CPU, parked at a shared primitive,
  /// and not Blocked.
  std::vector<ThreadId> schedulable() const;

  /// Executes thread \p T's pending shared primitive, then settles every
  /// CPU (runs new current threads to their query points).
  bool step(ThreadId T);

  const Log &log() const { return GlobalLog; }

  /// Per-thread return values of completed work items.
  std::map<ThreadId, std::vector<std::int64_t>> returns() const;

  const std::vector<std::int64_t> &cpuMemory(ThreadId Cpu) const;

  /// Step footprint for the Explorer's partial-order reduction: opaque
  /// for every thread in v1.  Any threaded step may interact with the
  /// scheduler replay through settle() — the machine itself appends
  /// `texit`/`resched` events and re-dispatches threads as a side effect
  /// of the step — so no layer-declared primitive footprint covers a
  /// step's full log effect here.  Opaque footprints make POR explore the
  /// complete schedule space (sound, no reduction); refining this needs
  /// footprints on the scheduling replay itself and is future work.
  Footprint stepFootprint(ThreadId) const { return Footprint::opaque(); }

  /// Event footprint matching stepFootprint: opaque, so canonical trace
  /// forms degenerate to the identity on this machine.
  Footprint eventFootprint(const Event &) const {
    return Footprint::opaque();
  }

  /// Structural snapshot hash / equality for the Explorer's state-dedup
  /// cache (see MultiCoreMachine::snapshotHash): per-thread VM states and
  /// flags, the CPU-local memories, and the global log.
  std::uint64_t snapshotHash() const;
  bool sameSnapshot(const ThreadedMachine &O) const;

  /// Estimated resident bytes of one retained snapshot (see
  /// MultiCoreMachine::snapshotBytes).
  std::size_t snapshotBytes() const;

private:
  struct Thr {
    Vm Machine;
    ThreadId Cpu = 0;
    size_t NextWork = 0;
    bool Active = false;   ///< a work item is in flight in the VM
    bool Parked = false;   ///< waiting at a shared primitive
    bool NeedsRun = false; ///< resumed (or fresh) but not yet run
    bool Exited = false;
    std::vector<std::int64_t> Returns;

    explicit Thr(AsmProgramPtr P) : Machine(std::move(P)) {}
  };

  /// Runs local code of every CPU's current thread until each is parked,
  /// exited, or its CPU is idle.
  bool settle();
  bool runThread(ThreadId Tid, Thr &T);
  void fault(ThreadId Tid, const std::string &Msg);
  std::optional<std::int64_t> currentOf(ThreadId Cpu) const;

  ThreadedConfigPtr Cfg;
  std::map<ThreadId, Thr> Threads;
  std::map<ThreadId, std::vector<std::int64_t>> CpuMem;
  Log GlobalLog;
  std::string Err;
};

/// Options alias and explorer wrapper for the multithreaded machine.
using ThreadedExploreOptions = GenericExploreOptions<ThreadedMachine>;

ExploreResult exploreThreaded(ThreadedConfigPtr Cfg,
                              const ThreadedExploreOptions &Opts);

/// Outcome of a threaded refinement check.
struct ThreadedRefinementReport {
  /// True only when every obligation held AND both explorations were
  /// exhaustive; a truncated sweep never reports Holds.
  bool Holds = false;

  /// Per-side completion flags and a coverage note ("exhaustive", or which
  /// budget truncated which side) — see ContextualRefinementReport.
  bool SpecComplete = false;
  bool ImplComplete = false;
  std::string Coverage;

  std::uint64_t ImplOutcomes = 0;
  std::uint64_t SpecOutcomes = 0;
  std::uint64_t ObligationsChecked = 0;
  std::uint64_t SchedulesExplored = 0;
  std::uint64_t StatesExplored = 0;
  std::string Counterexample;
};

/// Contextual refinement between two multithreaded machines, with separate
/// event maps on each side (machine-internal events are erased by both).
ThreadedRefinementReport
checkThreadedRefinement(ThreadedConfigPtr Impl, ThreadedConfigPtr Spec,
                        const EventMap &RImpl, const EventMap &RSpec,
                        const ThreadedExploreOptions &ImplOpts,
                        const ThreadedExploreOptions &SpecOpts);

} // namespace ccal

#endif // CCAL_THREADS_THREADMACHINE_H
