//===- threads/Ipc.h - Message-passing IPC ---------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synchronous IPC protocol of §6 ("a synchronous inter-process
/// communication (IPC) protocol using the queuing lock"): a bounded ring
/// channel whose send/recv block via two condition-variable queues over
/// the monitor layer — the top of the Fig. 1 tower (QLock -> CV -> IPC).
///
/// Verified properties over all schedules: every message is delivered
/// exactly once, in order, with no deadlock, for 1-sender/1-receiver
/// workloads that overflow and drain the ring.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_THREADS_IPC_H
#define CCAL_THREADS_IPC_H

#include "threads/CondVar.h"

namespace ccal {

/// Ring capacity of the channel.
inline constexpr int IpcRingCap = 2;

/// The channel module: send/recv over cv_wait/cv_signal and the monitor.
ClightModule makeIpcChannelModule();

/// Explores every schedule of a 1-sender/1-receiver channel exchanging
/// \p Items messages (Items > IpcRingCap forces both full and empty
/// blocking paths) and checks exactly-once, in-order delivery.
MonitorCheck checkIpcChannel(unsigned Items);

} // namespace ccal

#endif // CCAL_THREADS_IPC_H
