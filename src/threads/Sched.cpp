//===- threads/Sched.cpp - Thread schedulers ----------------------------------===//

#include "threads/Sched.h"

#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "support/Check.h"

#include <algorithm>

using namespace ccal;

Replayer<HighSchedState>
ccal::makeHighSchedReplayer(std::map<ThreadId, ThreadId> CpuOf,
                            bool PreloadReady) {
  HighSchedState Init;
  for (const auto &[Tid, Cpu] : CpuOf) {
    if (!Init.Current.count(Cpu))
      Init.Current.emplace(Cpu, -1);
    if (PreloadReady)
      Init.Ready[Cpu].push_back(Tid);
  }

  auto Step = [CpuOf](const HighSchedState &S,
                      const Event &E) -> std::optional<HighSchedState> {
    auto CpuOfTid = [&CpuOf](ThreadId T) -> std::optional<ThreadId> {
      auto It = CpuOf.find(T);
      if (It == CpuOf.end())
        return std::nullopt;
      return It->second;
    };

    HighSchedState N = S;
    auto PopReady = [&N](ThreadId Cpu) -> std::int64_t {
      auto &Q = N.Ready[Cpu];
      if (Q.empty())
        return -1;
      ThreadId T = Q.front();
      Q.erase(Q.begin());
      return T;
    };

    if (E.Kind == "spawn") {
      if (E.Args.size() != 1)
        return std::nullopt;
      ThreadId T = static_cast<ThreadId>(E.Args[0]);
      std::optional<ThreadId> Cpu = CpuOfTid(T);
      if (!Cpu)
        return std::nullopt;
      // Set semantics: re-spawning a queued or running thread is a no-op.
      auto &Q = N.Ready[*Cpu];
      if (std::find(Q.begin(), Q.end(), T) == Q.end() &&
          N.Current[*Cpu] != static_cast<std::int64_t>(T))
        Q.push_back(T);
      return N;
    }
    if (E.Kind == "yield") {
      std::optional<ThreadId> Cpu = CpuOfTid(E.Tid);
      if (!Cpu || N.Current[*Cpu] != static_cast<std::int64_t>(E.Tid))
        return std::nullopt; // only the current thread may yield
      N.Ready[*Cpu].push_back(E.Tid);
      N.Current[*Cpu] = PopReady(*Cpu);
      return N;
    }
    if (E.Kind == "sleep") {
      if (E.Args.empty())
        return std::nullopt;
      std::optional<ThreadId> Cpu = CpuOfTid(E.Tid);
      if (!Cpu || N.Current[*Cpu] != static_cast<std::int64_t>(E.Tid))
        return std::nullopt;
      N.Sleep[E.Args[0]].push_back(E.Tid);
      N.Sleeping.insert(E.Tid);
      N.Current[*Cpu] = PopReady(*Cpu);
      return N;
    }
    if (E.Kind == "wakeup") {
      if (E.Args.empty())
        return std::nullopt;
      auto &Q = N.Sleep[E.Args[0]];
      if (Q.empty())
        return N; // waking an empty queue is a no-op
      ThreadId W = Q.front();
      Q.erase(Q.begin());
      N.Sleeping.erase(W);
      std::optional<ThreadId> Cpu = CpuOfTid(W);
      if (!Cpu)
        return std::nullopt;
      if (N.Current[*Cpu] == -1)
        N.Current[*Cpu] = W; // idle CPU: dispatch directly
      else
        N.Ready[*Cpu].push_back(W);
      return N;
    }
    if (E.Kind == ThreadExitEventKind) {
      std::optional<ThreadId> Cpu = CpuOfTid(E.Tid);
      if (!Cpu || N.Current[*Cpu] != static_cast<std::int64_t>(E.Tid))
        return std::nullopt;
      N.Current[*Cpu] = PopReady(*Cpu);
      return N;
    }
    if (E.Kind == ReschedEventKind) {
      std::optional<ThreadId> Cpu = CpuOfTid(E.Tid);
      if (!Cpu || N.Current[*Cpu] != -1)
        return std::nullopt; // resched only fills an idle CPU
      auto &Q = N.Ready[*Cpu];
      auto It = std::find(Q.begin(), Q.end(), E.Tid);
      if (It != Q.end())
        Q.erase(It);
      N.Current[*Cpu] = E.Tid;
      return N;
    }
    return N;
  };
  return Replayer<HighSchedState>(std::move(Init), std::move(Step));
}

SchedReplayFn ccal::makeHighSchedFn(std::map<ThreadId, ThreadId> CpuOf,
                                    bool PreloadReady) {
  Replayer<HighSchedState> R =
      makeHighSchedReplayer(std::move(CpuOf), PreloadReady);
  return [R](const Log &L) -> std::optional<SchedView> {
    std::optional<HighSchedState> S = R.replay(L);
    if (!S)
      return std::nullopt;
    SchedView V;
    V.Current = S->Current;
    V.Sleeping = S->Sleeping;
    return V;
  };
}

SchedReplayFn ccal::makeLowSchedFn(std::map<ThreadId, ThreadId> CpuOf) {
  std::map<ThreadId, std::int64_t> Init;
  for (const auto &[Tid, Cpu] : CpuOf) {
    (void)Tid;
    Init.emplace(Cpu, -1);
  }
  return [CpuOf, Init](const Log &L) -> std::optional<SchedView> {
    SchedView V;
    V.Current = Init;
    for (const Event &E : L) {
      auto CpuIt = CpuOf.find(E.Tid);
      if (CpuIt == CpuOf.end())
        continue;
      ThreadId Cpu = CpuIt->second;
      if (E.Kind == "cswitch") {
        if (E.Args.size() != 1 ||
            V.Current[Cpu] != static_cast<std::int64_t>(E.Tid))
          return std::nullopt;
        V.Current[Cpu] = E.Args[0];
      } else if (E.Kind == ThreadExitEventKind) {
        if (V.Current[Cpu] != static_cast<std::int64_t>(E.Tid))
          return std::nullopt;
        V.Current[Cpu] = E.Args.empty() ? -1 : E.Args[0];
      } else if (E.Kind == ReschedEventKind) {
        if (V.Current[Cpu] != -1)
          return std::nullopt;
        V.Current[Cpu] = E.Tid;
      }
    }
    return V;
  };
}

void ccal::installHighSchedPrims(LayerInterface &L,
                                 std::map<ThreadId, ThreadId> CpuOf,
                                 bool PreloadReady) {
  Replayer<HighSchedState> R = makeHighSchedReplayer(CpuOf, PreloadReady);

  auto RequireCurrent = [R, CpuOf](ThreadId Tid,
                                   const Log &Prefix) -> bool {
    std::optional<HighSchedState> S = R.replay(Prefix);
    if (!S)
      return false;
    auto It = CpuOf.find(Tid);
    return It != CpuOf.end() &&
           S->Current[It->second] == static_cast<std::int64_t>(Tid);
  };

  L.addShared("yield", [RequireCurrent](const PrimCall &Call)
                  -> std::optional<PrimResult> {
    if (!RequireCurrent(Call.Tid, *Call.L))
      return std::nullopt;
    PrimResult Res;
    Res.Events.push_back(Event(Call.Tid, "yield"));
    return Res;
  });

  L.addShared("spawn", [](const PrimCall &Call)
                  -> std::optional<PrimResult> {
    if (Call.Args.size() != 1)
      return std::nullopt;
    PrimResult Res;
    Res.Events.push_back(Event(Call.Tid, "spawn", Call.Args));
    return Res;
  });

  L.addShared("sleep", [RequireCurrent](const PrimCall &Call)
                  -> std::optional<PrimResult> {
    if (Call.Args.size() != 1 || !RequireCurrent(Call.Tid, *Call.L))
      return std::nullopt;
    PrimResult Res;
    Res.Events.push_back(Event(Call.Tid, "sleep", Call.Args));
    return Res;
  });

  L.addShared("wakeup", [R](const PrimCall &Call)
                  -> std::optional<PrimResult> {
    if (Call.Args.size() != 1)
      return std::nullopt;
    std::optional<HighSchedState> S = R.replay(*Call.L);
    if (!S)
      return std::nullopt;
    PrimResult Res;
    auto It = S->Sleep.find(Call.Args[0]);
    Res.Ret = (It == S->Sleep.end() || It->second.empty())
                  ? -1
                  : static_cast<std::int64_t>(It->second.front());
    Res.Events.push_back(Event(Call.Tid, "wakeup", Call.Args));
    return Res;
  });

  {
    Primitive P;
    P.Name = "thread_exit";
    P.Shared = true;
    P.ExitsThread = true;
    P.Sem = [RequireCurrent](const PrimCall &Call)
        -> std::optional<PrimResult> {
      if (!RequireCurrent(Call.Tid, *Call.L))
        return std::nullopt;
      PrimResult Res;
      Res.Events.push_back(Event(Call.Tid, ThreadExitEventKind));
      return Res;
    };
    L.addPrim(std::move(P));
  }

  L.addPrivate("get_tid", makeSelfIdPrim());
}

void ccal::installLowSchedPrims(LayerInterface &L,
                                std::map<ThreadId, ThreadId> CpuOf) {
  SchedReplayFn Low = makeLowSchedFn(std::move(CpuOf));

  L.addShared("cswitch", [Low](const PrimCall &Call)
                  -> std::optional<PrimResult> {
    if (Call.Args.size() != 1)
      return std::nullopt;
    std::optional<SchedView> V = Low(*Call.L);
    if (!V)
      return std::nullopt;
    PrimResult Res;
    Res.Events.push_back(Event(Call.Tid, "cswitch", Call.Args));
    return Res;
  });

  {
    Primitive P;
    P.Name = "texit";
    P.Shared = true;
    P.ExitsThread = true;
    P.Sem = [](const PrimCall &Call) -> std::optional<PrimResult> {
      if (Call.Args.size() != 1)
        return std::nullopt;
      PrimResult Res;
      Res.Events.push_back(
          Event(Call.Tid, ThreadExitEventKind, Call.Args));
      return Res;
    };
    L.addPrim(std::move(P));
  }

  L.addPrivate("get_tid", makeSelfIdPrim());
}

ClightModule ccal::makeSchedModule() {
  ClightModule M = parseModuleOrDie("M_sched", R"(
    extern void enQ(int t);
    extern int deQ();
    extern int get_tid();
    extern void cswitch(int next);
    extern void texit(int next);

    void yield() {
      enQ(get_tid());
      cswitch(deQ());
    }

    void spawn(int t) { enQ(t); }

    void thread_exit() { texit(deQ()); }
  )");
  typeCheckOrDie(M);
  return M;
}
