//===- threads/Linking.h - Multithreaded linking (Thm 5.1) -----*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multithreaded linking theorem (Thm 5.1): `Lbtd[c] <=id Lhtd[c][Tc]`
/// — once the whole thread set is focused, the machine whose scheduling is
/// *implemented* (ready queue as linked local-queue code, concrete cswitch
/// transfers) behaves exactly like the machine with atomic scheduling
/// primitives.
///
/// checkMultithreadedLinking builds both machines from the *same* client
/// program: on Lbtd the scheduler module M_sched and the local-queue module
/// are linked in (so yield/spawn/thread_exit are code and the only events
/// are cswitch/texit), on Lhtd they stay atomic primitives.  The relation
/// maps cswitch to yield and erases the machine-internal events.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_THREADS_LINKING_H
#define CCAL_THREADS_LINKING_H

#include "threads/Sched.h"

namespace ccal {

/// Configuration of a linking check.
struct LinkingSetup {
  unsigned NumThreads = 2; ///< worker threads (plus the spawner thread 0)
  unsigned Rounds = 2;     ///< bump/yield rounds per worker
};

/// Result of the linking check, with the two machines' statistics.
struct LinkingReport {
  ThreadedRefinementReport Refinement;
  CertPtr Cert;
};

/// Checks Thm 5.1 on the given setup (single CPU, as in the theorem's
/// statement Lbtd[c]).
LinkingReport checkMultithreadedLinking(const LinkingSetup &Setup);

} // namespace ccal

#endif // CCAL_THREADS_LINKING_H
