//===- threads/Linking.cpp - Multithreaded linking (Thm 5.1) ------------------===//

#include "threads/Linking.h"

#include "cert/CertKeys.h"
#include "cert/CertStore.h"
#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "objects/LocalQueue.h"
#include "support/Text.h"

using namespace ccal;

namespace {

const char LinkCheckerVersion[] = "link-v1";

JsonValue threadedToPayload(const ThreadedRefinementReport &R) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["holds"] = jsonBool(R.Holds);
  V.Fields["spec_complete"] = jsonBool(R.SpecComplete);
  V.Fields["impl_complete"] = jsonBool(R.ImplComplete);
  V.Fields["coverage"] = jsonStr(R.Coverage);
  V.Fields["impl_outcomes"] = jsonUInt(R.ImplOutcomes);
  V.Fields["spec_outcomes"] = jsonUInt(R.SpecOutcomes);
  V.Fields["obligations"] = jsonUInt(R.ObligationsChecked);
  V.Fields["schedules"] = jsonUInt(R.SchedulesExplored);
  V.Fields["states"] = jsonUInt(R.StatesExplored);
  V.Fields["counterexample"] = jsonStr(R.Counterexample);
  return V;
}

bool threadedFromPayload(const JsonValue &V, ThreadedRefinementReport &R) {
  const JsonValue *Holds = V.field("holds");
  const JsonValue *SpecC = V.field("spec_complete");
  const JsonValue *ImplC = V.field("impl_complete");
  const JsonValue *Cov = V.field("coverage");
  const JsonValue *IO = V.field("impl_outcomes");
  const JsonValue *SO = V.field("spec_outcomes");
  const JsonValue *Ob = V.field("obligations");
  const JsonValue *Sch = V.field("schedules");
  const JsonValue *St = V.field("states");
  const JsonValue *Cex = V.field("counterexample");
  if (!Holds || !Holds->isBool() || !SpecC || !SpecC->isBool() || !ImplC ||
      !ImplC->isBool() || !Cov || !Cov->isString() || !IO || !IO->IsInt ||
      !SO || !SO->IsInt || !Ob || !Ob->IsInt || !Sch || !Sch->IsInt ||
      !St || !St->IsInt || !Cex || !Cex->isString())
    return false;
  R.Holds = Holds->BoolVal;
  R.SpecComplete = SpecC->BoolVal;
  R.ImplComplete = ImplC->BoolVal;
  R.Coverage = Cov->StrVal;
  R.ImplOutcomes = static_cast<std::uint64_t>(IO->IntVal);
  R.SpecOutcomes = static_cast<std::uint64_t>(SO->IntVal);
  R.ObligationsChecked = static_cast<std::uint64_t>(Ob->IntVal);
  R.SchedulesExplored = static_cast<std::uint64_t>(Sch->IntVal);
  R.StatesExplored = static_cast<std::uint64_t>(St->IntVal);
  R.Counterexample = Cex->StrVal;
  return true;
}

} // namespace

namespace {

ClightModule makeLinkingClient(unsigned NumThreads) {
  std::string Spawns;
  for (unsigned T = 1; T <= NumThreads; ++T)
    Spawns += strFormat("      spawn(%u);\n", T);
  std::string Src = strFormat(R"(
    extern void yield();
    extern void spawn(int t);
    extern void thread_exit();
    extern int bump();
    extern void done(int v);

    int t_boot() {
%s      thread_exit();
      return 0;
    }

    int t_worker(int rounds) {
      int acc = 0;
      int i = 0;
      while (i < rounds) {
        acc = acc * 100 + bump();
        yield();
        i = i + 1;
      }
      done(acc);
      thread_exit();
      return 0;
    }
  )",
                              Spawns.c_str());
  ClightModule M = parseModuleOrDie("P_linking_client", Src);
  typeCheckOrDie(M);
  return M;
}

} // namespace

LinkingReport ccal::checkMultithreadedLinking(const LinkingSetup &Setup) {
  // Thread placement: everything on CPU 0 (the theorem is per CPU).
  std::map<ThreadId, ThreadId> CpuOf;
  for (ThreadId T = 0; T <= Setup.NumThreads; ++T)
    CpuOf.emplace(T, 0);

  static ClightModule Client;
  static ClightModule Sched;
  static ClightModule Queue;
  Client = makeLinkingClient(Setup.NumThreads);
  Sched = makeSchedModule();
  Queue = makeLocalQueueModule();

  // --- Lbtd[c]: scheduler and ready queue are linked code.
  auto Low = makeInterface("Lbtd");
  installLowSchedPrims(*Low, CpuOf);
  Low->addShared("bump", makeFetchIncPrim("bump"));
  Low->addShared("done", makeEventPrim("done"));

  auto LowCfg = std::make_shared<ThreadedConfig>();
  LowCfg->Name = "linking.low";
  LowCfg->Layer = Low;
  LowCfg->Program =
      compileAndLink("linking.low.lasm", {&Client, &Sched, &Queue});
  LowCfg->Sched = makeLowSchedFn(CpuOf);

  // --- Lhtd[c][Tc]: scheduling primitives are atomic.
  auto High = makeInterface("Lhtd");
  installHighSchedPrims(*High, CpuOf, /*PreloadReady=*/false);
  High->addShared("bump", makeFetchIncPrim("bump"));
  High->addShared("done", makeEventPrim("done"));

  auto HighCfg = std::make_shared<ThreadedConfig>();
  HighCfg->Name = "linking.high";
  HighCfg->Layer = High;
  HighCfg->Program = compileAndLink("linking.high.lasm", {&Client});
  HighCfg->Sched = makeHighSchedFn(CpuOf, /*PreloadReady=*/false);

  // Same workloads on both.
  for (auto *Cfg : {LowCfg.get(), HighCfg.get()}) {
    Cfg->Threads.push_back({0, 0, {{"t_boot", {}}}});
    for (ThreadId T = 1; T <= Setup.NumThreads; ++T)
      Cfg->Threads.push_back(
          {T, 0, {{"t_worker", {static_cast<std::int64_t>(Setup.Rounds)}}}});
  }

  // Relations: concrete context switches become atomic yields; the
  // machine-internal events are erased on both sides.
  EventMap RImpl("Rbtd", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "cswitch")
      return Event(E.Tid, "yield");
    if (E.Kind == ThreadExitEventKind || E.Kind == ReschedEventKind)
      return std::nullopt;
    return E;
  });
  EventMap RSpec("Rhtd", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "spawn" || E.Kind == ThreadExitEventKind ||
        E.Kind == ReschedEventKind)
      return std::nullopt;
    return E;
  });

  ThreadedExploreOptions Opts;
  Opts.MaxSteps = 4096;

  auto RunCheck = [&] {
    LinkingReport Rep;
    Rep.Refinement = checkThreadedRefinement(LowCfg, HighCfg, RImpl, RSpec,
                                             Opts, Opts);
    auto C = std::make_shared<RefinementCertificate>();
    C->Rule = "MultithreadLink";
    C->Underlay = "Lbtd[0]";
    C->Module = "M_sched (+) M_local_queue";
    C->Overlay = "Lhtd[0][Tc]";
    C->Relation = "Rbtd";
    C->CoverageComplete =
        Rep.Refinement.SpecComplete && Rep.Refinement.ImplComplete;
    C->Coverage = Rep.Refinement.Coverage;
    C->Valid = Rep.Refinement.Holds && C->CoverageComplete;
    C->Obligations = Rep.Refinement.ObligationsChecked;
    C->Runs = Rep.Refinement.SchedulesExplored;
    C->Moves = Rep.Refinement.StatesExplored;
    if (!Rep.Refinement.Holds)
      C->Notes.push_back(Rep.Refinement.Counterexample);
    Rep.Cert = C;
    return Rep;
  };

  cert::CertStore *Store = cert::store();
  if (!Store)
    return RunCheck();

  // Load-or-recheck front-end.  Both configs are fully built above, so
  // the key sees the compiled programs, layer interfaces, workloads, and
  // relations; the opaque schedule replay functions are represented by
  // the config names they were constructed alongside.  Editing any of the
  // linked modules (client, scheduler, ready queue) changes the compiled
  // program hash and re-explores; an unchanged setup loads.
  cert::CertKey Key;
  Key.Checker = "link";
  Key.Version = LinkCheckerVersion;
  Key.Desc = strFormat("Thm 5.1 linking: %u threads x %u rounds",
                       Setup.NumThreads, Setup.Rounds);
  Hasher H;
  H.u64(Setup.NumThreads).u64(Setup.Rounds);
  cert::keyAddThreadedConfig(H, *LowCfg);
  cert::keyAddThreadedConfig(H, *HighCfg);
  H.str(RImpl.name()).str(RSpec.name());
  cert::keyAddExploreOptions(H, Opts);
  cert::keyAddExploreOptions(H, Opts);
  Key.Hash = H.value();

  LinkingReport Out;
  Store->getOrCheck(
      Key,
      [&](const cert::CertStore::Entry &E) {
        if (!E.Cert || !threadedFromPayload(E.Payload, Out.Refinement))
          return false;
        Out.Cert = E.Cert;
        return true;
      },
      [&] {
        Out = RunCheck();
        cert::CertStore::Entry Fresh;
        Fresh.Cert = Out.Cert;
        Fresh.Payload = threadedToPayload(Out.Refinement);
        return Fresh;
      });
  return Out;
}
