//===- threads/Linking.cpp - Multithreaded linking (Thm 5.1) ------------------===//

#include "threads/Linking.h"

#include "compcertx/Linker.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "objects/LocalQueue.h"
#include "support/Text.h"

using namespace ccal;

namespace {

ClightModule makeLinkingClient(unsigned NumThreads) {
  std::string Spawns;
  for (unsigned T = 1; T <= NumThreads; ++T)
    Spawns += strFormat("      spawn(%u);\n", T);
  std::string Src = strFormat(R"(
    extern void yield();
    extern void spawn(int t);
    extern void thread_exit();
    extern int bump();
    extern void done(int v);

    int t_boot() {
%s      thread_exit();
      return 0;
    }

    int t_worker(int rounds) {
      int acc = 0;
      int i = 0;
      while (i < rounds) {
        acc = acc * 100 + bump();
        yield();
        i = i + 1;
      }
      done(acc);
      thread_exit();
      return 0;
    }
  )",
                              Spawns.c_str());
  ClightModule M = parseModuleOrDie("P_linking_client", Src);
  typeCheckOrDie(M);
  return M;
}

} // namespace

LinkingReport ccal::checkMultithreadedLinking(const LinkingSetup &Setup) {
  // Thread placement: everything on CPU 0 (the theorem is per CPU).
  std::map<ThreadId, ThreadId> CpuOf;
  for (ThreadId T = 0; T <= Setup.NumThreads; ++T)
    CpuOf.emplace(T, 0);

  static ClightModule Client;
  static ClightModule Sched;
  static ClightModule Queue;
  Client = makeLinkingClient(Setup.NumThreads);
  Sched = makeSchedModule();
  Queue = makeLocalQueueModule();

  // --- Lbtd[c]: scheduler and ready queue are linked code.
  auto Low = makeInterface("Lbtd");
  installLowSchedPrims(*Low, CpuOf);
  Low->addShared("bump", makeFetchIncPrim("bump"));
  Low->addShared("done", makeEventPrim("done"));

  auto LowCfg = std::make_shared<ThreadedConfig>();
  LowCfg->Name = "linking.low";
  LowCfg->Layer = Low;
  LowCfg->Program =
      compileAndLink("linking.low.lasm", {&Client, &Sched, &Queue});
  LowCfg->Sched = makeLowSchedFn(CpuOf);

  // --- Lhtd[c][Tc]: scheduling primitives are atomic.
  auto High = makeInterface("Lhtd");
  installHighSchedPrims(*High, CpuOf, /*PreloadReady=*/false);
  High->addShared("bump", makeFetchIncPrim("bump"));
  High->addShared("done", makeEventPrim("done"));

  auto HighCfg = std::make_shared<ThreadedConfig>();
  HighCfg->Name = "linking.high";
  HighCfg->Layer = High;
  HighCfg->Program = compileAndLink("linking.high.lasm", {&Client});
  HighCfg->Sched = makeHighSchedFn(CpuOf, /*PreloadReady=*/false);

  // Same workloads on both.
  for (auto *Cfg : {LowCfg.get(), HighCfg.get()}) {
    Cfg->Threads.push_back({0, 0, {{"t_boot", {}}}});
    for (ThreadId T = 1; T <= Setup.NumThreads; ++T)
      Cfg->Threads.push_back(
          {T, 0, {{"t_worker", {static_cast<std::int64_t>(Setup.Rounds)}}}});
  }

  // Relations: concrete context switches become atomic yields; the
  // machine-internal events are erased on both sides.
  EventMap RImpl("Rbtd", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "cswitch")
      return Event(E.Tid, "yield");
    if (E.Kind == ThreadExitEventKind || E.Kind == ReschedEventKind)
      return std::nullopt;
    return E;
  });
  EventMap RSpec("Rhtd", [](const Event &E) -> std::optional<Event> {
    if (E.Kind == "spawn" || E.Kind == ThreadExitEventKind ||
        E.Kind == ReschedEventKind)
      return std::nullopt;
    return E;
  });

  ThreadedExploreOptions Opts;
  Opts.MaxSteps = 4096;

  LinkingReport Out;
  Out.Refinement = checkThreadedRefinement(LowCfg, HighCfg, RImpl, RSpec,
                                           Opts, Opts);
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "MultithreadLink";
  C->Underlay = "Lbtd[0]";
  C->Module = "M_sched (+) M_local_queue";
  C->Overlay = "Lhtd[0][Tc]";
  C->Relation = "Rbtd";
  C->CoverageComplete =
      Out.Refinement.SpecComplete && Out.Refinement.ImplComplete;
  C->Coverage = Out.Refinement.Coverage;
  C->Valid = Out.Refinement.Holds && C->CoverageComplete;
  C->Obligations = Out.Refinement.ObligationsChecked;
  C->Runs = Out.Refinement.SchedulesExplored;
  C->Moves = Out.Refinement.StatesExplored;
  if (!Out.Refinement.Holds)
    C->Notes.push_back(Out.Refinement.Counterexample);
  Out.Cert = C;
  return Out;
}
