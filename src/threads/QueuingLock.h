//===- threads/QueuingLock.h - Certified queuing lock ----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The queuing lock of §5.4 / Fig. 11: waiting threads sleep instead of
/// spinning.  The implementation mixes a certified spinlock (already
/// atomic at this layer — vertical composition again) with the scheduler's
/// sleep/wakeup primitives and the lock's `busy` word:
///
///   acq_q:  acq; if busy != -1 then sleep (atomically releasing the
///           spinlock) and, once woken, hold the queuing lock (it was
///           handed over); else busy = tid; rel.
///   rel_q:  acq; busy = wakeup();  (handoff, -1 frees)  rel.
///
/// The overlay is a blocking atomic acq_q/rel_q interface — the same shape
/// as the spinlock's L1, one more level up the Fig. 1 tower.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_THREADS_QUEUINGLOCK_H
#define CCAL_THREADS_QUEUINGLOCK_H

#include "lang/Ast.h"
#include "objects/ObjectSpec.h"
#include "threads/ThreadMachine.h"

namespace ccal {

/// The queuing-lock pieces.
struct QueuingLockSetup {
  ClightModule Module;
  ClightModule Client;
  LayerPtr Underlay;
  LayerPtr Overlay;
  EventMap RImpl;
  EventMap RSpec;
  ThreadedConfigPtr ImplConfig;
  ThreadedConfigPtr SpecConfig;
  std::map<ThreadId, ThreadId> CpuOf;
};

/// Builds the queuing-lock stack for \p ThreadsPerCpu worker threads on
/// each of \p Cpus CPUs, each doing \p Rounds lock/crit/unlock rounds.
QueuingLockSetup makeQueuingLockSetup(unsigned Cpus, unsigned ThreadsPerCpu,
                                      unsigned Rounds);

/// Certifies the queuing lock: contextual refinement into the blocking
/// atomic interface, plus the mutual-exclusion invariant on every state.
struct QueuingLockOutcome {
  ThreadedRefinementReport Report;
  CertPtr Cert;
  std::uint64_t ImplLoC = 0;
};
QueuingLockOutcome certifyQueuingLock(unsigned Cpus = 2,
                                      unsigned ThreadsPerCpu = 1,
                                      unsigned Rounds = 2);

} // namespace ccal

#endif // CCAL_THREADS_QUEUINGLOCK_H
