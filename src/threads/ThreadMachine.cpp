//===- threads/ThreadMachine.cpp - The multithreaded machine ------------------===//

#include "threads/ThreadMachine.h"

#include "support/Check.h"
#include "support/Text.h"

using namespace ccal;

ThreadedMachine::ThreadedMachine(ThreadedConfigPtr CfgIn)
    : Cfg(std::move(CfgIn)) {
  CCAL_CHECK(Cfg && Cfg->Layer && Cfg->Program && Cfg->Program->Linked &&
                 Cfg->Sched,
             "threaded config needs layer, linked program, and scheduler");
  CCAL_CHECK(!Cfg->Model || !Cfg->Model->weak(),
             "the multithreaded machine is SC-only; run weak-memory "
             "verification on the MultiCoreMachine lock layers");
  std::vector<std::int64_t> Image = Cfg->Program->initialGlobals();
  for (const ThreadSpec &TS : Cfg->Threads) {
    auto [It, Inserted] = Threads.emplace(TS.Tid, Thr(Cfg->Program));
    CCAL_CHECK(Inserted, "duplicate thread id");
    It->second.Cpu = TS.Cpu;
    It->second.NeedsRun = true;
    if (!CpuMem.count(TS.Cpu))
      CpuMem.emplace(TS.Cpu, Image);
  }
  settle();
}

void ThreadedMachine::fault(ThreadId Tid, const std::string &Msg) {
  if (Err.empty())
    Err = strFormat("thread %u: %s", Tid, Msg.c_str());
}

std::optional<std::int64_t> ThreadedMachine::currentOf(ThreadId Cpu) const {
  std::optional<SchedView> View = Cfg->Sched(GlobalLog);
  if (!View)
    return std::nullopt;
  auto It = View->Current.find(Cpu);
  return It == View->Current.end() ? -1 : It->second;
}

bool ThreadedMachine::settle() {
  // Iterate until no CPU makes progress: a thread exit or resched event
  // changes the scheduler view of its own CPU only, but a wakeup executed
  // earlier can change any CPU, so loop over all of them.
  bool Changed = true;
  while (Changed && Err.empty()) {
    Changed = false;
    std::optional<SchedView> View = Cfg->Sched(GlobalLog);
    if (!View) {
      if (Err.empty())
        Err = "scheduler replay stuck on log: " + logToString(GlobalLog);
      return false;
    }
    for (auto &[Cpu, Mem] : CpuMem) {
      (void)Mem;
      auto CurIt = View->Current.find(Cpu);
      std::int64_t Cur = CurIt == View->Current.end() ? -1 : CurIt->second;

      if (Cur >= 0) {
        auto TIt = Threads.find(static_cast<ThreadId>(Cur));
        if (TIt == Threads.end()) {
          fault(static_cast<ThreadId>(Cur), "scheduler chose unknown thread");
          return false;
        }
        Thr &T = TIt->second;
        if (T.Exited) {
          Cur = -1; // fall through to dispatch below
        } else if (T.NeedsRun) {
          if (!runThread(TIt->first, T))
            return false;
          Changed = true;
          break; // log may have changed (exit events); re-replay
        } else {
          continue; // parked at a shared primitive: explorer's turn
        }
      }

      if (Cur < 0) {
        // CPU has nothing current: dispatch the lowest-id unfinished,
        // non-sleeping thread, if any (the deterministic idle dispatcher;
        // both layers of Thm 5.1 share it).
        for (auto &[Tid, T] : Threads) {
          if (T.Cpu != Cpu || T.Exited || View->Sleeping.count(Tid))
            continue;
          logAppend(GlobalLog, Event(Tid, ReschedEventKind));
          Changed = true;
          break;
        }
        if (Changed)
          break;
      }
    }
  }
  return Err.empty();
}

bool ThreadedMachine::runThread(ThreadId Tid, Thr &T) {
  std::vector<std::int64_t> &Globals = CpuMem.at(T.Cpu);
  const std::vector<CpuWorkItem> *Items = nullptr;
  for (const ThreadSpec &TS : Cfg->Threads)
    if (TS.Tid == Tid)
      Items = &TS.Items;
  CCAL_CHECK(Items, "thread spec must exist");

  T.NeedsRun = false;
  std::uint64_t PrivateCalls = 0;
  while (true) {
    if (++PrivateCalls > Cfg->SliceBudget) {
      fault(Tid, "local slice diverged (private-primitive loop?)");
      return false;
    }
    if (!T.Active) {
      if (T.NextWork >= Items->size()) {
        T.Exited = true;
        logAppend(GlobalLog, Event(Tid, ThreadExitEventKind));
        return true;
      }
      const CpuWorkItem &Item = (*Items)[T.NextWork];
      T.Machine.start(Item.Fn, Item.Args);
      T.Active = true;
    }
    Vm::Status St = T.Machine.run(Globals, Cfg->SliceBudget);
    if (St == Vm::Status::Done) {
      T.Returns.push_back(T.Machine.result());
      T.Active = false;
      ++T.NextWork;
      continue;
    }
    if (St == Vm::Status::Error) {
      fault(Tid, T.Machine.error());
      return false;
    }
    CCAL_CHECK(St == Vm::Status::AtPrim, "unexpected VM status");
    const Primitive *P = Cfg->Layer->lookup(T.Machine.primKind());
    if (!P) {
      fault(Tid, "call to primitive '" + T.Machine.primName() +
                     "' not provided by layer " + Cfg->Layer->name());
      return false;
    }
    if (P->Shared) {
      T.Parked = true;
      return true;
    }
    PrimCall Call;
    Call.Tid = Tid;
    Call.Args = T.Machine.primArgs();
    Call.L = &GlobalLog;
    Call.LocalMem = &Globals;
    std::optional<PrimResult> Res = P->Sem(Call);
    if (!Res) {
      fault(Tid, "private primitive '" + P->Name + "' got stuck");
      return false;
    }
    CCAL_CHECK(Res->Events.empty(),
               "private primitives must not emit events");
    for (auto [Addr, V] : Res->LocalWrites) {
      CCAL_CHECK(Addr >= 0 && static_cast<size_t>(Addr) < Globals.size(),
                 "primitive local write out of range");
      Globals[static_cast<size_t>(Addr)] = V;
    }
    T.Machine.resumePrim(Res->Ret);
  }
}

bool ThreadedMachine::allIdle() const {
  for (const auto &[Tid, T] : Threads)
    if (!T.Exited)
      return false;
  return true;
}

std::vector<ThreadId> ThreadedMachine::schedulable() const {
  std::vector<ThreadId> Out;
  std::optional<SchedView> View = Cfg->Sched(GlobalLog);
  if (!View)
    return Out;
  for (const auto &[Cpu, Cur] : View->Current) {
    if (Cur < 0)
      continue;
    auto It = Threads.find(static_cast<ThreadId>(Cur));
    if (It == Threads.end() || !It->second.Parked || It->second.Exited)
      continue;
    const Thr &T = It->second;
    const Primitive *P = Cfg->Layer->lookup(T.Machine.primKind());
    if (P && P->Shared) {
      PrimCall Call;
      Call.Tid = It->first;
      Call.Args = T.Machine.primArgs();
      Call.L = &GlobalLog;
      Call.LocalMem = &CpuMem.at(Cpu);
      std::optional<PrimResult> Res = P->Sem(Call);
      if (Res && Res->Blocked)
        continue;
    }
    Out.push_back(It->first);
  }
  return Out;
}

bool ThreadedMachine::step(ThreadId Tid) {
  if (!ok())
    return false;
  auto It = Threads.find(Tid);
  CCAL_CHECK(It != Threads.end(), "step: unknown thread");
  Thr &T = It->second;
  CCAL_CHECK(T.Parked, "step: thread is not parked at a shared primitive");

  const Primitive *P = Cfg->Layer->lookup(T.Machine.primKind());
  CCAL_CHECK(P && P->Shared, "parked primitive must be shared");

  std::vector<std::int64_t> &Globals = CpuMem.at(T.Cpu);
  PrimCall Call;
  Call.Tid = Tid;
  Call.Args = T.Machine.primArgs();
  Call.L = &GlobalLog;
  Call.LocalMem = &Globals;
  std::optional<PrimResult> Res = P->Sem(Call);
  if (!Res) {
    fault(Tid, "shared primitive '" + P->Name +
                   "' got stuck; log: " + logToString(GlobalLog));
    return false;
  }
  CCAL_CHECK(!Res->Blocked, "step: blocked threads are not schedulable");
  logAppendAll(GlobalLog, Res->Events);
  for (auto [Addr, V] : Res->LocalWrites) {
    CCAL_CHECK(Addr >= 0 && static_cast<size_t>(Addr) < Globals.size(),
               "primitive local write out of range");
    Globals[static_cast<size_t>(Addr)] = V;
  }
  if (P->ExitsThread) {
    // The thread never resumes (cswitch-out without return, §5.1); its VM
    // state is abandoned exactly like a kernel context that is never
    // loaded again.
    T.Parked = false;
    T.Active = false;
    T.Exited = true;
    return settle();
  }
  T.Machine.resumePrim(Res->Ret);
  T.Parked = false;
  T.NeedsRun = true;
  return settle();
}

std::map<ThreadId, std::vector<std::int64_t>>
ThreadedMachine::returns() const {
  std::map<ThreadId, std::vector<std::int64_t>> Out;
  for (const auto &[Tid, T] : Threads)
    Out.emplace(Tid, T.Returns);
  return Out;
}

const std::vector<std::int64_t> &
ThreadedMachine::cpuMemory(ThreadId Cpu) const {
  auto It = CpuMem.find(Cpu);
  CCAL_CHECK(It != CpuMem.end(), "unknown CPU");
  return It->second;
}

std::uint64_t ThreadedMachine::snapshotHash() const {
  Hasher H(hashLog(GlobalLog));
  H.u64(Threads.size());
  for (const auto &[Tid, T] : Threads)
    H.u64(Tid)
        .u64(T.Machine.stateHash())
        .u64(T.Cpu)
        .u64(T.NextWork)
        .u64(static_cast<std::uint64_t>(T.Active))
        .u64(static_cast<std::uint64_t>(T.Parked))
        .u64(static_cast<std::uint64_t>(T.NeedsRun))
        .u64(static_cast<std::uint64_t>(T.Exited))
        .i64s(T.Returns);
  H.u64(CpuMem.size());
  for (const auto &[Cpu, Mem] : CpuMem)
    H.u64(Cpu).i64s(Mem);
  return H.value();
}

std::size_t ThreadedMachine::snapshotBytes() const {
  std::size_t B = sizeof(ThreadedMachine) + GlobalLog.snapshotCopyBytes();
  for (const auto &[Tid, T] : Threads) {
    (void)Tid;
    B += sizeof(Thr) + T.Returns.size() * sizeof(std::int64_t);
  }
  for (const auto &[Cpu, Mem] : CpuMem) {
    (void)Cpu;
    B += sizeof(Mem) + Mem.size() * sizeof(std::int64_t);
  }
  return B;
}

bool ThreadedMachine::sameSnapshot(const ThreadedMachine &O) const {
  if (Cfg.get() != O.Cfg.get() || Err != O.Err ||
      GlobalLog != O.GlobalLog || CpuMem != O.CpuMem ||
      Threads.size() != O.Threads.size())
    return false;
  auto It = O.Threads.begin();
  for (const auto &[Tid, T] : Threads) {
    const auto &[OTid, OT] = *It++;
    if (Tid != OTid || T.Cpu != OT.Cpu || T.NextWork != OT.NextWork ||
        T.Active != OT.Active || T.Parked != OT.Parked ||
        T.NeedsRun != OT.NeedsRun || T.Exited != OT.Exited ||
        T.Returns != OT.Returns || !T.Machine.sameState(OT.Machine))
      return false;
  }
  return true;
}

ExploreResult ccal::exploreThreaded(ThreadedConfigPtr Cfg,
                                    const ThreadedExploreOptions &Opts) {
  ThreadedMachine Root(std::move(Cfg));
  return exploreGeneric(Root, Opts);
}

namespace {

ThreadedRefinementReport checkThreadedRefinementImpl(
    ThreadedConfigPtr Impl, ThreadedConfigPtr Spec, const EventMap &RImpl,
    const EventMap &RSpec, const ThreadedExploreOptions &ImplOpts,
    const ThreadedExploreOptions &SpecOpts) {
  ThreadedRefinementReport Report;

  ExploreResult SpecRes = [&] {
    obs::Span SpecSpan("refine.spec_explore", "refine");
    return exploreThreaded(std::move(Spec), SpecOpts);
  }();
  if (!SpecRes.Ok) {
    Report.Counterexample =
        "specification machine violation: " + SpecRes.Violation;
    return Report;
  }
  // A truncated (e.g. MaxStoredOutcomes-capped) spec outcome set would
  // turn refining implementation outcomes into false counterexamples;
  // fail closed before comparing anything.
  if (!SpecRes.Complete) {
    Report.Coverage = "spec exploration truncated: " + SpecRes.Truncation;
    Report.Counterexample =
        "specification exploration is incomplete (" + SpecRes.Truncation +
        "): the spec outcome set may be silently capped; raise the "
        "truncating budget and re-run";
    return Report;
  }
  Report.SpecComplete = true;

  OutcomeSet SpecSet;
  for (const Outcome &O : SpecRes.Outcomes) {
    Outcome Key;
    Key.FinalLog = RSpec.apply(O.FinalLog);
    Key.Returns = O.Returns;
    SpecSet.insert(Key);
  }

  // Stream implementation outcomes through the matcher (memory-bounded).
  std::uint64_t ImplOutcomes = 0, Obligations = 0;
  ThreadedExploreOptions ImplStream = ImplOpts;
  ImplStream.OnOutcome = [&](const Outcome &O) -> std::string {
    ++ImplOutcomes;
    Outcome Key;
    Key.FinalLog = RImpl.apply(O.FinalLog);
    Key.Returns = O.Returns;
    if (!SpecSet.contains(Key))
      return strFormat(
          "no specification behavior matches implementation outcome\n"
          "  impl log:   %s\n  mapped (R): %s",
          logToString(O.FinalLog).c_str(),
          logToString(Key.FinalLog).c_str());
    ++Obligations;
    return "";
  };
  ExploreResult ImplRes = [&] {
    obs::Span ImplSpan("refine.impl_explore", "refine");
    return exploreThreaded(std::move(Impl), ImplStream);
  }();
  Report.ImplOutcomes = ImplOutcomes;
  Report.SpecOutcomes = SpecRes.Outcomes.size();
  Report.SchedulesExplored =
      ImplRes.SchedulesExplored + SpecRes.SchedulesExplored;
  Report.StatesExplored = ImplRes.StatesExplored + SpecRes.StatesExplored;
  Report.ObligationsChecked = Obligations;
  if (!ImplRes.Ok) {
    Report.Counterexample =
        "implementation machine violation: " + ImplRes.Violation;
    return Report;
  }
  if (!ImplRes.Complete) {
    Report.Coverage = "impl exploration truncated: " + ImplRes.Truncation;
    Report.Counterexample =
        "implementation exploration is incomplete (" + ImplRes.Truncation +
        "): only a prefix of the schedule space was matched; raise the "
        "truncating budget and re-run";
    return Report;
  }
  Report.ImplComplete = true;
  Report.Coverage = "exhaustive";
  Report.Holds = true;
  return Report;
}

} // namespace

ThreadedRefinementReport ccal::checkThreadedRefinement(
    ThreadedConfigPtr Impl, ThreadedConfigPtr Spec, const EventMap &RImpl,
    const EventMap &RSpec, const ThreadedExploreOptions &ImplOpts,
    const ThreadedExploreOptions &SpecOpts) {
  obs::Span CheckSpan("refine.threaded_check", "refine");
  ThreadedRefinementReport Report = checkThreadedRefinementImpl(
      std::move(Impl), std::move(Spec), RImpl, RSpec, ImplOpts, SpecOpts);
  if (obs::enabled()) {
    obs::counterAdd("refine.threaded_checks", 1);
    obs::counterAdd("refine.obligations_discharged",
                    Report.ObligationsChecked);
    obs::counterAdd("refine.impl_outcomes", Report.ImplOutcomes);
    obs::counterAdd("refine.spec_outcomes", Report.SpecOutcomes);
    if (Report.Holds)
      obs::counterAdd("refine.holds", 1);
    if (!Report.SpecComplete || !Report.ImplComplete) {
      obs::counterAdd("refine.truncated", 1);
      obs::traceInstant("refine.truncation: " + Report.Coverage, "refine");
    }
  }
  return Report;
}
