//===- mem/AlgebraicMemory.cpp - Algebraic memory model (Fig. 12) ----------===//

#include "mem/AlgebraicMemory.h"

#include "support/Check.h"
#include "support/Text.h"

#include <algorithm>

using namespace ccal;

std::uint32_t AlgMem::alloc(std::int64_t Lo, std::int64_t Hi) {
  CCAL_CHECK(Lo <= Hi, "alloc bounds must be ordered");
  Block B;
  B.Lo = Lo;
  B.Hi = Hi;
  B.HasPerm = true;
  B.Data.assign(static_cast<size_t>(Hi - Lo), 0);
  Blocks.push_back(std::move(B));
  return nb() - 1;
}

void AlgMem::liftnb(std::uint32_t N) {
  for (std::uint32_t I = 0; I != N; ++I)
    Blocks.push_back(Block{}); // normalized empty placeholder
}

std::optional<std::int64_t> AlgMem::load(MemLoc Loc) const {
  const Block *B = block(Loc.Block);
  if (!B || !B->HasPerm || Loc.Off < B->Lo || Loc.Off >= B->Hi)
    return std::nullopt;
  return B->Data[static_cast<size_t>(Loc.Off - B->Lo)];
}

bool AlgMem::store(MemLoc Loc, std::int64_t V) {
  if (Loc.Block >= Blocks.size())
    return false;
  Block &B = Blocks[Loc.Block];
  if (!B.HasPerm || Loc.Off < B.Lo || Loc.Off >= B.Hi)
    return false;
  B.Data[static_cast<size_t>(Loc.Off - B.Lo)] = V;
  return true;
}

bool AlgMem::freeBlock(std::uint32_t Idx) {
  if (Idx >= Blocks.size() || !Blocks[Idx].HasPerm)
    return false;
  Blocks[Idx] = Block{}; // block number stays allocated, permissions gone
  return true;
}

std::string AlgMem::toString() const {
  std::string Out = "{";
  for (std::uint32_t I = 0; I != nb(); ++I) {
    const Block &B = Blocks[I];
    if (I != 0)
      Out += ", ";
    if (!B.HasPerm) {
      Out += strFormat("b%u:empty", I);
      continue;
    }
    Out += strFormat("b%u:[%lld,%lld)", I, static_cast<long long>(B.Lo),
                     static_cast<long long>(B.Hi));
  }
  return Out + "}";
}

std::optional<AlgMem> AlgMem::compose(const AlgMem &A, const AlgMem &B) {
  AlgMem M;
  std::uint32_t N = std::max(A.nb(), B.nb());
  for (std::uint32_t I = 0; I != N; ++I) {
    const Block *BA = A.block(I);
    const Block *BB = B.block(I);
    bool PermA = BA && BA->HasPerm;
    bool PermB = BB && BB->HasPerm;
    if (PermA && PermB)
      return std::nullopt; // both sides own the block: not composable
    if (PermA)
      M.Blocks.push_back(*BA);
    else if (PermB)
      M.Blocks.push_back(*BB);
    else
      M.Blocks.push_back(Block{});
  }
  return M;
}

namespace ccal {
namespace memaxioms {

bool checkNb(const AlgMem &M1, const AlgMem &M2) {
  std::optional<AlgMem> M = AlgMem::compose(M1, M2);
  if (!M)
    return true; // vacuous: the relation does not hold
  return M->nb() == std::max(M1.nb(), M2.nb());
}

bool checkComm(const AlgMem &M1, const AlgMem &M2) {
  std::optional<AlgMem> M = AlgMem::compose(M1, M2);
  std::optional<AlgMem> N = AlgMem::compose(M2, M1);
  if (!M)
    return !N;
  return N && *M == *N;
}

bool checkLd(const AlgMem &M1, const AlgMem &M2, MemLoc Loc) {
  std::optional<AlgMem> M = AlgMem::compose(M1, M2);
  if (!M)
    return true;
  std::optional<std::int64_t> V = M2.load(Loc);
  if (!V)
    return true; // premise ld(m2, l) = |v| fails
  std::optional<std::int64_t> VM = M->load(Loc);
  return VM && *VM == *V;
}

bool checkSt(const AlgMem &M1, const AlgMem &M2, MemLoc Loc,
             std::int64_t V) {
  std::optional<AlgMem> M = AlgMem::compose(M1, M2);
  AlgMem M2s = M2;
  if (!M || !M2s.store(Loc, V))
    return true; // vacuous
  AlgMem Ms = *M;
  if (!Ms.store(Loc, V))
    return false; // store must be preserved by the composed memory
  std::optional<AlgMem> MPrime = AlgMem::compose(M1, M2s);
  return MPrime && *MPrime == Ms;
}

bool checkAlloc(const AlgMem &M1, const AlgMem &M2, std::int64_t Lo,
                std::int64_t Hi) {
  if (M1.nb() > M2.nb())
    return true; // side condition nb(m1) <= nb(m2)
  std::optional<AlgMem> M = AlgMem::compose(M1, M2);
  if (!M)
    return true;
  AlgMem M2a = M2;
  M2a.alloc(Lo, Hi);
  AlgMem Ma = *M;
  Ma.alloc(Lo, Hi);
  std::optional<AlgMem> MPrime = AlgMem::compose(M1, M2a);
  return MPrime && *MPrime == Ma;
}

bool checkLiftR(const AlgMem &M1, const AlgMem &M2, std::uint32_t N) {
  if (M1.nb() > M2.nb())
    return true;
  std::optional<AlgMem> M = AlgMem::compose(M1, M2);
  if (!M)
    return true;
  AlgMem M2l = M2;
  M2l.liftnb(N);
  AlgMem Ml = *M;
  Ml.liftnb(N);
  std::optional<AlgMem> MPrime = AlgMem::compose(M1, M2l);
  return MPrime && *MPrime == Ml;
}

bool checkLiftL(const AlgMem &M1, const AlgMem &M2, std::uint32_t N) {
  if (M1.nb() > M2.nb())
    return true;
  std::optional<AlgMem> M = AlgMem::compose(M1, M2);
  if (!M)
    return true;
  AlgMem M1l = M1;
  M1l.liftnb(N);
  // liftnb(m, n - (nb(m) - nb(m1))), clamped at zero: lifting m1 below
  // nb(m2) only fills existing placeholders.
  std::uint32_t Gap = M->nb() - M1.nb();
  AlgMem Ml = *M;
  Ml.liftnb(N > Gap ? N - Gap : 0);
  std::optional<AlgMem> MPrime = AlgMem::compose(M1l, M2);
  return MPrime && *MPrime == Ml;
}

} // namespace memaxioms
} // namespace ccal
