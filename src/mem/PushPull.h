//===- mem/PushPull.h - Push/pull shared-memory model ----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The push/pull memory model (§3.1, Fig. 6/8): every shared memory
/// location has an ownership status; `pull(b)` takes ownership from "free"
/// to "owned by c" and materializes the current contents into c's local
/// copy, `push(b)` publishes c's local copy into the log and frees the
/// ownership.  Pulling a non-free location, or pushing a location one does
/// not own, is a potential data race and makes the machine *stuck*; race
/// freedom is verified by showing no execution gets stuck.
///
/// Shared contents travel inside the events themselves (`c.push(b, v)`),
/// so the replay function `Rshared` reconstructs both ownership and
/// contents from the log alone (Fig. 8).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MEM_PUSHPULL_H
#define CCAL_MEM_PUSHPULL_H

#include "core/LayerInterface.h"
#include "core/Replay.h"

#include <map>
#include <optional>

namespace ccal {

/// Event kinds used by the model.
inline const char *const PullEventKind = "pull";
inline const char *const PushEventKind = "push";

/// Replay state of one shared location.
struct CellState {
  std::vector<std::int64_t> Contents;
  std::optional<ThreadId> Owner; ///< nullopt = free

  bool operator==(const CellState &O) const {
    return Contents == O.Contents && Owner == O.Owner;
  }
};

/// Replay state of the whole shared memory: location -> cell.
using SharedMemState = std::map<std::int64_t, CellState>;

/// Declares the shared locations of a machine, their sizes, their initial
/// contents, and where each CPU's local copy of a location lives in its
/// CPU-local memory.  Produces the `Rshared` replayer and installs the
/// pull/push primitives of the CPU-local interface `Lx86[c]`.
class PushPullModel {
public:
  struct Location {
    std::int64_t Loc = 0;       ///< the shared location id `b`
    std::int32_t LocalBase = 0; ///< address of the local copy
    std::int32_t Size = 1;      ///< number of words
    std::vector<std::int64_t> Init;
  };

  /// Registers location \p Loc; ids must be fresh.
  void addLocation(Location Loc);

  const Location *lookup(std::int64_t Loc) const;

  /// The replay function `Rshared` over full logs (Fig. 8): stuck exactly
  /// when a race occurred.
  Replayer<SharedMemState> replayer() const;

  /// Replays the full log; std::nullopt on a data race.
  std::optional<SharedMemState> replay(const Log &L) const;

  /// Installs `pull` and `push` shared primitives into \p L.
  ///
  /// pull(b):  appends `c.pull(b)`, gets stuck if b is not free, and
  ///           delivers the replayed contents into the caller's local copy.
  /// push(b):  reads the caller's local copy, appends `c.push(b, vals)`,
  ///           and gets stuck if the caller does not own b.
  void installPrims(LayerInterface &L) const;

private:
  std::map<std::int64_t, Location> Locations;
};

} // namespace ccal

#endif // CCAL_MEM_PUSHPULL_H
