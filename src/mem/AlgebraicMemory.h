//===- mem/AlgebraicMemory.h - Algebraic memory model (Fig. 12) -*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extended algebraic memory model of §5.5 / Fig. 12, used by the
/// thread-safe CompCertX to merge per-thread stack frames into one coherent
/// CompCert-style memory.
///
/// A memory is a sequence of blocks.  A block either carries access
/// permissions and data (a real stack frame) or is an *empty placeholder*
/// allocated by the extended yield/sleep semantics to stand for another
/// thread's frame.  The ternary relation `m1 (*) m2 ~ m` ("m is the
/// composition of the private memories m1 and m2") is defined when, at
/// every block index, at most one side holds permissions; `liftnb(m, n)`
/// extends m with n fresh empty blocks.
///
/// All seven axioms of Fig. 12 (Nb, Comm, Ld, St, Alloc, Lift-R, Lift-L)
/// are implemented as executable checks and verified by property tests.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MEM_ALGEBRAICMEMORY_H
#define CCAL_MEM_ALGEBRAICMEMORY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ccal {

/// A memory address (block, offset) in the CompCert style.
struct MemLoc {
  std::uint32_t Block = 0;
  std::int64_t Off = 0;

  bool operator==(const MemLoc &O) const {
    return Block == O.Block && Off == O.Off;
  }
};

/// A CompCert-style memory made of numbered blocks.
class AlgMem {
public:
  /// One block: bounds [Lo, Hi) plus a permission bit.  An empty block
  /// (no permissions) is the placeholder for another thread's frame.
  struct Block {
    std::int64_t Lo = 0;
    std::int64_t Hi = 0;
    bool HasPerm = false;
    std::vector<std::int64_t> Data; ///< Hi - Lo words when HasPerm

    bool operator==(const Block &O) const {
      return Lo == O.Lo && Hi == O.Hi && HasPerm == O.HasPerm &&
             Data == O.Data;
    }
  };

  AlgMem() = default;

  /// The paper's `nb(m)`: total number of blocks.
  std::uint32_t nb() const { return static_cast<std::uint32_t>(Blocks.size()); }

  /// `alloc(m, l, h)`: appends a fresh permissioned block with bounds
  /// [l, h); returns its index.
  std::uint32_t alloc(std::int64_t Lo, std::int64_t Hi);

  /// `liftnb(m, n)`: appends n empty placeholder blocks.
  void liftnb(std::uint32_t N);

  /// `ld(m, loc)`: loads a word; std::nullopt when the block is absent,
  /// unpermissioned, or the offset is out of bounds.
  std::optional<std::int64_t> load(MemLoc Loc) const;

  /// `st(m, loc, v)`: stores a word; false on a permission/bounds error.
  bool store(MemLoc Loc, std::int64_t V);

  /// Frees the permissions of a block (frame deallocation on return);
  /// the block number stays allocated, CompCert-style.
  bool freeBlock(std::uint32_t Block);

  const Block *block(std::uint32_t Idx) const {
    return Idx < Blocks.size() ? &Blocks[Idx] : nullptr;
  }

  bool operator==(const AlgMem &O) const { return Blocks == O.Blocks; }

  std::string toString() const;

  /// The composition `m1 (*) m2 ~ m`: defined when at every index at most
  /// one side has permissions; the result takes each index's permissioned
  /// block (or an empty placeholder when neither side has one) and has
  /// `nb = max(nb(m1), nb(m2))` (axiom Nb).
  static std::optional<AlgMem> compose(const AlgMem &A, const AlgMem &B);

private:
  std::vector<Block> Blocks;
};

/// Executable forms of the Fig. 12 axioms.  Each returns true when the
/// axiom instance holds for the given memories; property tests quantify
/// over randomized memories and operations.
namespace memaxioms {

/// Nb: m1 (*) m2 ~ m implies nb(m) == max(nb(m1), nb(m2)).
bool checkNb(const AlgMem &M1, const AlgMem &M2);

/// Comm: m1 (*) m2 ~ m implies m2 (*) m1 ~ m.
bool checkComm(const AlgMem &M1, const AlgMem &M2);

/// Ld: composition preserves loads of the composed parts.
bool checkLd(const AlgMem &M1, const AlgMem &M2, MemLoc Loc);

/// St: m1 (*) st(m2, loc, v) ~ st(m, loc, v).
bool checkSt(const AlgMem &M1, const AlgMem &M2, MemLoc Loc, std::int64_t V);

/// Alloc: when nb(m1) <= nb(m2), m1 (*) alloc(m2,l,h) ~ alloc(m,l,h).
bool checkAlloc(const AlgMem &M1, const AlgMem &M2, std::int64_t Lo,
                std::int64_t Hi);

/// Lift-R: when nb(m1) <= nb(m2), m1 (*) liftnb(m2,n) ~ liftnb(m,n).
bool checkLiftR(const AlgMem &M1, const AlgMem &M2, std::uint32_t N);

/// Lift-L: when nb(m1) <= nb(m2),
/// liftnb(m1,n) (*) m2 ~ liftnb(m, n - (nb(m) - nb(m1))).
bool checkLiftL(const AlgMem &M1, const AlgMem &M2, std::uint32_t N);

} // namespace memaxioms
} // namespace ccal

#endif // CCAL_MEM_ALGEBRAICMEMORY_H
