//===- mem/PushPull.cpp - Push/pull shared-memory model --------------------===//

#include "mem/PushPull.h"

#include "support/Check.h"

using namespace ccal;

void PushPullModel::addLocation(Location Loc) {
  CCAL_CHECK(Loc.Size >= 1, "shared location needs at least one word");
  if (Loc.Init.empty())
    Loc.Init.assign(static_cast<size_t>(Loc.Size), 0);
  CCAL_CHECK(Loc.Init.size() == static_cast<size_t>(Loc.Size),
             "initial contents must match the location size");
  auto [It, Inserted] = Locations.emplace(Loc.Loc, std::move(Loc));
  (void)It;
  CCAL_CHECK(Inserted, "duplicate shared location");
}

const PushPullModel::Location *
PushPullModel::lookup(std::int64_t Loc) const {
  auto It = Locations.find(Loc);
  return It == Locations.end() ? nullptr : &It->second;
}

Replayer<SharedMemState> PushPullModel::replayer() const {
  SharedMemState Init;
  for (const auto &[Id, Loc] : Locations)
    Init.emplace(Id, CellState{Loc.Init, std::nullopt});

  auto Step = [](const SharedMemState &S,
                 const Event &E) -> std::optional<SharedMemState> {
    if (E.Kind != PullEventKind && E.Kind != PushEventKind)
      return S; // other events do not touch the shared memory
    if (E.Args.empty())
      return std::nullopt;
    auto It = S.find(E.Args[0]);
    if (It == S.end())
      return std::nullopt; // unknown location
    SharedMemState Next = S;
    CellState &Cell = Next[E.Args[0]];
    if (E.Kind == PullEventKind) {
      // (v, free) -> (v, own c); anything else is a race.
      if (Cell.Owner.has_value())
        return std::nullopt;
      Cell.Owner = E.Tid;
      return Next;
    }
    // push: (_, own c) -> (vals, free); anything else is a race.
    if (!Cell.Owner || *Cell.Owner != E.Tid)
      return std::nullopt;
    if (E.Args.size() != 1 + Cell.Contents.size())
      return std::nullopt;
    Cell.Contents.assign(E.Args.begin() + 1, E.Args.end());
    Cell.Owner = std::nullopt;
    return Next;
  };
  return Replayer<SharedMemState>(std::move(Init), std::move(Step));
}

std::optional<SharedMemState> PushPullModel::replay(const Log &L) const {
  return replayer().replay(L);
}

void PushPullModel::installPrims(LayerInterface &L) const {
  Replayer<SharedMemState> R = replayer();
  std::map<std::int64_t, Location> Locs = Locations;

  // Both primitives read and write the shared-memory cells (pull takes
  // ownership and materializes contents, push publishes and releases), so
  // they all conflict under the Explorer's partial-order reduction — one
  // coarse location for the whole model, which is exact for the common
  // single-cell case.
  Footprint MemFoot = Footprint::of({"pp_mem"}, {"pp_mem"});

  // Fig. 8, sigma_pull: append c.pull(b), replay, deliver the contents.
  L.addShared(PullEventKind, [R, Locs](const PrimCall &Call)
                  -> std::optional<PrimResult> {
    if (Call.Args.size() != 1)
      return std::nullopt;
    auto It = Locs.find(Call.Args[0]);
    if (It == Locs.end())
      return std::nullopt;
    const Location &Loc = It->second;

    Event E(Call.Tid, PullEventKind, {Loc.Loc});
    Log Extended = *Call.L;
    Extended.push_back(E);
    std::optional<SharedMemState> S = R.replay(Extended);
    if (!S)
      return std::nullopt; // race: machine gets stuck

    PrimResult Res;
    Res.Events.push_back(std::move(E));
    const CellState &Cell = S->at(Loc.Loc);
    for (std::int32_t I = 0; I != Loc.Size; ++I)
      Res.LocalWrites.emplace_back(Loc.LocalBase + I,
                                   Cell.Contents[static_cast<size_t>(I)]);
    return Res;
  }, MemFoot);

  // Fig. 8, sigma_push: read the local copy, append c.push(b, vals).
  L.addShared(PushEventKind, [R, Locs](const PrimCall &Call)
                  -> std::optional<PrimResult> {
    if (Call.Args.size() != 1 || !Call.LocalMem)
      return std::nullopt;
    auto It = Locs.find(Call.Args[0]);
    if (It == Locs.end())
      return std::nullopt;
    const Location &Loc = It->second;

    std::vector<std::int64_t> Args = {Loc.Loc};
    for (std::int32_t I = 0; I != Loc.Size; ++I) {
      size_t Addr = static_cast<size_t>(Loc.LocalBase + I);
      if (Addr >= Call.LocalMem->size())
        return std::nullopt;
      Args.push_back((*Call.LocalMem)[Addr]);
    }
    Event E(Call.Tid, PushEventKind, std::move(Args));
    Log Extended = *Call.L;
    Extended.push_back(E);
    if (!R.replay(Extended))
      return std::nullopt; // push without ownership: stuck

    PrimResult Res;
    Res.Events.push_back(std::move(E));
    return Res;
  }, MemFoot);
}
