//===- cert/CertStore.cpp - Persistent certificate store ---------------------===//

#include "cert/CertStore.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace ccal;
using cert::CertStore;

namespace fs = std::filesystem;

namespace {

void count(const char *Name) {
  if (obs::enabled())
    obs::counterAdd(Name);
}

/// Reads \p P whole.  With several PROCESSES sharing one store directory
/// (the certd daemon's contract) a file can be evicted between the
/// caller's existence probe and this open — \p Vanished distinguishes
/// that (ENOENT: treat as a plain cache miss) from genuine I/O failure
/// (treat as a rejected entry).
std::string readFile(const fs::path &P, bool &Ok, bool &Vanished) {
  Ok = false;
  Vanished = false;
  std::FILE *F = std::fopen(P.string().c_str(), "rb");
  if (!F) {
    Vanished = errno == ENOENT;
    return "";
  }
  std::string Out;
  char Buf[1 << 16];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) != 0)
    Out.append(Buf, N);
  Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Out;
}

} // namespace

CertStore::CertStore(std::string Dir, std::size_t MaxEntries)
    : Dir(std::move(Dir)), MaxEntries(MaxEntries) {
  std::error_code Ec;
  fs::create_directories(this->Dir, Ec); // best effort; load/store re-fail
}

std::string CertStore::render(const CertKey &Key, const Entry &E) {
  JsonValue Doc;
  Doc.K = JsonValue::Kind::Object;
  Doc.Fields["schema"] = jsonInt(StoreSchemaVersion);
  Doc.Fields["checker"] = jsonStr(Key.Checker);
  Doc.Fields["version"] = jsonStr(Key.Version);
  char Hex[24];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(Key.Hash));
  Doc.Fields["key"] = jsonStr(Hex);
  Doc.Fields["desc"] = jsonStr(Key.Desc);
  Doc.Fields["certificate"] = certToJson(*E.Cert);
  Doc.Fields["payload"] = E.Payload;
  return jsonToString(Doc) + "\n";
}

bool CertStore::load(const CertKey &Key, Entry &Out) {
  fs::path Path = fs::path(Dir) / (Key.fileStem() + ".cert.json");
  std::error_code Ec;

  auto Reject = [&] {
    count("cert.rejections");
    fs::remove(Path, Ec); // rejected evidence is dead weight; re-check
    return false;
  };

  // No existence pre-probe: with multiple processes sharing the store a
  // file can vanish between any two steps (a concurrent eviction), so the
  // open itself is the probe and ENOENT at ANY point is a plain miss —
  // never a rejection, which would charge an innocent entry's slot and
  // count corruption that never happened.
  bool ReadOk = false, Vanished = false;
  std::string Text = readFile(Path, ReadOk, Vanished);
  if (Vanished)
    return false; // plain miss; getOrCheck counts it
  if (!ReadOk)
    return Reject();
  JsonParseResult Parsed = parseJson(Text);
  if (!Parsed)
    return Reject();
  const JsonValue &Doc = Parsed.Value;

  const JsonValue *Schema = Doc.field("schema");
  if (!Schema || !Schema->isNumber() || !Schema->IsInt ||
      Schema->IntVal != StoreSchemaVersion)
    return Reject();

  // The recomputed address must match the recorded one in every part:
  // a different checker, version tag, or input hash under this file name
  // means the entry answers a different question than the one asked.
  char Hex[24];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(Key.Hash));
  const JsonValue *Checker = Doc.field("checker");
  const JsonValue *Version = Doc.field("version");
  const JsonValue *KeyHex = Doc.field("key");
  if (!Checker || !Checker->isString() || Checker->StrVal != Key.Checker ||
      !Version || !Version->isString() || Version->StrVal != Key.Version ||
      !KeyHex || !KeyHex->isString() || KeyHex->StrVal != Hex)
    return Reject();

  const JsonValue *CertDoc = Doc.field("certificate");
  if (!CertDoc)
    return Reject();
  std::string Error;
  CertPtr C = certFromJson(*CertDoc, Error);
  if (!C)
    return Reject();
  // Valid without complete coverage cannot be minted honestly; incomplete
  // coverage discharges nothing and is not worth serving either way.
  if (C->Valid && !C->CoverageComplete)
    return Reject();
  if (!C->CoverageComplete)
    return Reject();

  const JsonValue *Payload = Doc.field("payload");
  if (!Payload)
    return Reject();

  Out.Cert = std::move(C);
  Out.Payload = *Payload;
  return true;
}

void CertStore::store(const CertKey &Key, const Entry &E) {
  // Only evidence worth reusing is kept: a missing certificate or an
  // incomplete exploration would be rejected at load time anyway.
  if (!E.Cert || !E.Cert->CoverageComplete)
    return;
  evictIfFull();
  std::string Text = render(Key, E);
  fs::path Final = fs::path(Dir) / (Key.fileStem() + ".cert.json");
  // Atomic publish: concurrent checkers (ctest -j sharing one directory)
  // must never observe a torn entry, so write to a process-unique temp
  // file and rename over the final name.
  // The temp name must be unique per WRITER, not per process: the daemon's
  // worker threads share one CertStore, and two workers storing the same
  // key from a pid-only suffix would interleave writes into one temp file.
  static std::atomic<std::uint64_t> WriteSeq{0};
  fs::path Tmp = Final;
  Tmp += ".tmp." + std::to_string(
#ifdef _WIN32
                       0
#else
                       static_cast<long long>(::getpid())
#endif
                       ) +
         "." + std::to_string(WriteSeq.fetch_add(1));
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return;
    OutF << Text;
    if (!OutF)
      return;
  }
  std::error_code Ec;
  fs::rename(Tmp, Final, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return;
  }
  count("cert.stores");
}

void CertStore::evictIfFull() {
  if (MaxEntries == 0)
    return;
  std::error_code Ec;
  std::vector<std::pair<fs::file_time_type, fs::path>> Entries;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir, Ec)) {
    const fs::path &P = DE.path();
    if (P.extension() != ".json")
      continue;
    // A failed stat yields a default-constructed (epoch) time that sorts
    // OLDEST — evicting healthy entries while the unstattable one (a
    // vanished or broken file) survives every round.  Skip it: it cannot
    // be meaningfully ordered, and if it is truly gone it no longer
    // occupies a slot anyway.  ENOENT specifically means another process
    // evicted it between the directory walk and the stat — a lost race,
    // not an error.
    std::error_code StatEc;
    fs::file_time_type T = fs::last_write_time(P, StatEc);
    if (StatEc) {
      // ENOENT with the directory entry itself gone means another process
      // evicted it between the walk and the stat — a lost race, not an
      // error.  ENOENT with the entry still present is a broken symlink
      // (the stat followed it), which stays a stat error like any other.
      std::error_code LinkEc;
      bool EntryGone = StatEc == std::errc::no_such_file_or_directory &&
                       fs::symlink_status(P, LinkEc).type() ==
                           fs::file_type::not_found;
      count(EntryGone ? "cert.evict_lost_race" : "cert.evict_stat_errors");
      continue;
    }
    Entries.emplace_back(T, P);
  }
  // Ties on coarse filesystem mtime granularity are broken by path (the
  // pair's second field), so eviction order is reproducible when several
  // entries land in one mtime tick.
  while (Entries.size() >= MaxEntries) {
    auto Oldest = std::min_element(Entries.begin(), Entries.end());
    if (Oldest == Entries.end())
      break;
    // Idempotent under concurrent evictors: remove() reporting "nothing
    // removed" (or ENOENT) means a peer got there first — its eviction
    // freed the slot, so counting ours too would double-book the cap.
    bool Removed = fs::remove(Oldest->second, Ec) && !Ec;
    Entries.erase(Oldest);
    count(Removed ? "cert.evictions" : "cert.evict_lost_race");
  }
}

bool CertStore::getOrCheck(const CertKey &Key,
                           const std::function<bool(const Entry &)> &Decode,
                           const std::function<Entry()> &Check) {
  Entry Stored;
  if (load(Key, Stored)) {
    if (Decode(Stored)) {
      count("cert.hits");
      return true;
    }
    // The document was well-formed but the checker could not rebuild its
    // report from the payload: same fail-closed treatment.
    count("cert.rejections");
    std::error_code Ec;
    std::filesystem::remove(
        fs::path(Dir) / (Key.fileStem() + ".cert.json"), Ec);
  }
  count("cert.misses");
  Entry Fresh = Check();
  store(Key, Fresh);
  return false;
}

namespace {

std::mutex StoreMutex;
CertStore *GlobalStore = nullptr; // leaked deliberately (see obs/)
bool StoreInitialized = false;

} // namespace

CertStore *cert::store() {
  std::lock_guard<std::mutex> Lock(StoreMutex);
  if (!StoreInitialized) {
    StoreInitialized = true;
    const char *Dir = std::getenv("CCAL_CERT_CACHE");
    if (Dir && *Dir) {
      std::size_t Max = 0;
      if (const char *MaxStr = std::getenv("CCAL_CERT_CACHE_MAX"))
        Max = static_cast<std::size_t>(std::strtoull(MaxStr, nullptr, 10));
      GlobalStore = new CertStore(Dir, Max);
    }
  }
  return GlobalStore;
}

void cert::setStoreDir(const std::string &Dir, std::size_t MaxEntries) {
  std::lock_guard<std::mutex> Lock(StoreMutex);
  StoreInitialized = true;
  delete GlobalStore;
  GlobalStore = Dir.empty() ? nullptr : new CertStore(Dir, MaxEntries);
}
