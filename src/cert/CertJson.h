//===- cert/CertJson.h - Certificate (de)serialization ---------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON (de)serialization of RefinementCertificate trees, event logs, and
/// implication reports — the payloads the certificate store persists.  The
/// writer goes through support/Json.h's deterministic renderer, so equal
/// derivations always serialize to byte-identical text (what lets CI
/// compare a warm cache to a cold one by checksum), and the reader is
/// strict: any missing or ill-typed field fails the whole parse, which the
/// store turns into a rejection and a fresh re-check.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CERT_CERTJSON_H
#define CCAL_CERT_CERTJSON_H

#include "core/Certificate.h"
#include "core/Log.h"
#include "core/RelyGuarantee.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace ccal {
namespace cert {

/// Serializes a certificate tree (premises recursively).
JsonValue certToJson(const RefinementCertificate &C);

/// Strict inverse of certToJson; nullptr (with \p Error set) on any
/// missing or ill-typed field.
CertPtr certFromJson(const JsonValue &V, std::string &Error);

/// Events as compact triples `[tid, "kind", [args...]]`.
JsonValue eventToJson(const Event &E);
bool eventFromJson(const JsonValue &V, Event &Out);

JsonValue logToJson(const Log &L);
bool logFromJson(const JsonValue &V, Log &Out);

JsonValue logsToJson(const std::vector<Log> &Ls);
bool logsFromJson(const JsonValue &V, std::vector<Log> &Out);

JsonValue implicationToJson(const ImplicationReport &R);
bool implicationFromJson(const JsonValue &V, ImplicationReport &Out);

} // namespace cert
} // namespace ccal

#endif // CCAL_CERT_CERTJSON_H
