//===- cert/CertStore.h - Persistent certificate store ---------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed, persistent store of refinement certificates: the
/// executable analogue of the paper's reusable proof objects.  A derivation
/// checked once is serialized under the CertKey of everything it quantifies
/// over; later runs whose inputs hash to the same address load the
/// certificate instead of re-exploring the schedule space, so editing one
/// layer's module re-discharges only that layer's obligations.
///
/// The store FAILS CLOSED, mirroring how the calculus combinators reject
/// ill-formed derivations.  A loaded entry is discarded (counted as a
/// rejection, and the check re-runs) when any of these mismatch:
///   * the document does not parse, or its schema version is unknown;
///   * the recorded checker / version tag / key differ from the recomputed
///     CertKey;
///   * the certificate fails strict deserialization;
///   * the certificate claims Valid without CoverageComplete (impossible
///     to mint honestly — evidence of tampering);
///   * the certificate's coverage is incomplete — a truncated exploration
///     discharges nothing, so caching it would be pure down-side.
/// A stale or tampered entry can therefore never surface as Valid.
///
/// Enabled by `CCAL_CERT_CACHE=<dir>` (created on demand); an optional
/// `CCAL_CERT_CACHE_MAX=<n>` caps the entry count, evicting oldest-mtime
/// files.  Hits/misses/stores/rejections/evictions are exported through
/// the obs:: registry as `cert.*`.
///
/// Cross-process contract.  The directory may be shared by any number of
/// threads AND processes concurrently (ctest -j, N ccal-verify clients
/// against one certd, several daemons): writes are atomic (writer-unique
/// temp file + rename), a file vanishing at any point between directory
/// walk, stat, open, and read is treated as a plain cache miss — another
/// process evicted it, which is never an error — and eviction is
/// idempotent: a remove that finds the file already gone counts
/// `cert.evict_lost_race` instead of double-booking an eviction.  A torn
/// or tampered read can therefore only ever produce a fail-closed
/// rejection followed by a re-check, never a wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CERT_CERTSTORE_H
#define CCAL_CERT_CERTSTORE_H

#include "cert/CertJson.h"
#include "cert/CertKey.h"

#include <functional>
#include <string>

namespace ccal {
namespace cert {

/// Schema version of the on-disk entry format; bump on layout changes so
/// old stores miss instead of half-parsing.
constexpr int StoreSchemaVersion = 1;

class CertStore {
public:
  /// \p MaxEntries of 0 means unbounded.
  explicit CertStore(std::string Dir, std::size_t MaxEntries = 0);

  /// One stored entry: the certificate tree plus the checker-specific
  /// report payload (whatever the front-end needs to reconstruct its full
  /// report — evidence counters, corpus logs, implication details).
  struct Entry {
    CertPtr Cert;
    JsonValue Payload;
  };

  /// The load-or-recheck front-end.  \p Decode rebuilds the caller's
  /// report from a stored entry, returning false to reject it (counted);
  /// \p Check runs the real check and returns the entry to persist.
  /// Returns true when the result was served from the store.  Entries
  /// whose certificate is null or has incomplete coverage are not
  /// persisted — only evidence worth reusing is kept.
  bool getOrCheck(const CertKey &Key,
                  const std::function<bool(const Entry &)> &Decode,
                  const std::function<Entry()> &Check);

  /// Loads and validates the entry at \p Key; false on miss or rejection
  /// (rejected files are deleted so the next run does not re-reject).
  bool load(const CertKey &Key, Entry &Out);

  /// Persists \p E under \p Key (atomic write; no-op with a rejection
  /// count when the entry is unfit to store).
  void store(const CertKey &Key, const Entry &E);

  /// Serializes an entry exactly as `store` writes it (exposed so tests
  /// and CI can compare stored bytes).
  static std::string render(const CertKey &Key, const Entry &E);

  const std::string &dir() const { return Dir; }

private:
  void evictIfFull();

  std::string Dir;
  std::size_t MaxEntries;
};

/// The process-wide store, configured from CCAL_CERT_CACHE on first use;
/// nullptr when caching is disabled (the default — every checker then
/// behaves exactly as before the store existed).
CertStore *store();

/// Points the process-wide store at \p Dir programmatically ("" disables).
/// Used by tests, benches, and the examples; overrides the environment.
void setStoreDir(const std::string &Dir, std::size_t MaxEntries = 0);

} // namespace cert
} // namespace ccal

#endif // CCAL_CERT_CERTSTORE_H
