//===- cert/CertKeys.h - Key adders for programs & machines ----*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CertKey adders for the bigger inputs: ClightX modules (full AST walk),
/// LAsm programs (instruction-exact), exploration options, and machine
/// configurations.  The machine-configuration adders are duck-typed
/// templates so this header needs no machine/threads includes — they
/// instantiate at the checker front-ends, where the concrete types exist,
/// keeping cert/ below machine/ in the library layering.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CERT_CERTKEYS_H
#define CCAL_CERT_CERTKEYS_H

#include "cert/CertKey.h"
#include "lang/Ast.h"
#include "lasm/Program.h"

namespace ccal {
namespace cert {

void keyAddExpr(Hasher &H, const Expr &E);
void keyAddStmt(Hasher &H, const Stmt &S);

/// Folds a ClightX module into \p H, structurally: globals with their
/// initializers, every function's signature and full AST.  Source lines
/// are deliberately excluded — reformatting a module must not invalidate
/// its certificates.
void keyAddModule(Hasher &H, const ClightModule &M);

/// Folds a compiled LAsm program into \p H, instruction-exact.
void keyAddProgram(Hasher &H, const AsmProgram &P);

/// Folds the semantic knobs of a GenericExploreOptions into \p H: the
/// budgets and regimes that shape the explored schedule space.  Threads,
/// StateCache/MaxStateCache, Metrics and the callbacks are excluded — they
/// change how the space is walked, never which outcomes exist.  The
/// invariant enters through its declared InvariantName; callers must
/// refuse to cache when an invariant is set without a name (the
/// `cacheableOptions` predicate below).
template <typename OptsT>
void keyAddExploreOptions(Hasher &H, const OptsT &O) {
  H.u64(O.FairnessBound)
      .u64(O.MaxSchedules)
      .u64(O.MaxSteps)
      .b(O.Por)
      .u64(O.MaxParticipantSteps)
      .b(static_cast<bool>(O.Invariant))
      .str(O.InvariantName)
      .b(O.CollectCorpus)
      .u64(O.MaxCorpus)
      .u64(O.MaxStoredOutcomes);
}

/// True when \p O carries no anonymous callable that the key cannot see.
/// OnOutcome is installed by the checker front-ends themselves and is a
/// function of already-keyed inputs, so only the invariant matters here.
template <typename OptsT> bool cacheableOptions(const OptsT &O) {
  return !O.Invariant || !O.InvariantName.empty();
}

/// Folds a multicore MachineConfig (machine/MultiCore.h shape: Name,
/// Layer, Program, Work, SliceBudget) into \p H.
template <typename CfgT> void keyAddMachineConfig(Hasher &H, const CfgT &C) {
  H.str(C.Name);
  keyAddLayer(H, *C.Layer);
  keyAddProgram(H, *C.Program);
  H.u64(C.Work.size());
  for (const auto &[Tid, Items] : C.Work) {
    H.u64(Tid).u64(Items.size());
    for (const auto &It : Items)
      H.str(It.Fn).i64s(It.Args);
  }
  H.u64(C.SliceBudget);
  // Memory-model tag: folded only when a weak model is configured, so SC
  // keys — with or without an explicit ScMemory — keep their pre-model
  // hashes and SC/RA certificates can never collide (an RA job presented
  // an SC certificate sees a different file stem entirely).
  if (C.Model && C.Model->weak())
    H.str("memmodel").str(C.Model->name()).u64(C.MaxReadsFromPerStep);
}

/// Folds a ThreadedConfig (threads/ThreadMachine.h shape) into \p H.  The
/// schedule replay function is opaque; it is represented by the config's
/// Name, which the linking front-end constructs alongside it.
template <typename CfgT> void keyAddThreadedConfig(Hasher &H, const CfgT &C) {
  H.str(C.Name);
  keyAddLayer(H, *C.Layer);
  keyAddProgram(H, *C.Program);
  H.u64(C.Threads.size());
  for (const auto &T : C.Threads) {
    H.u64(T.Tid).u64(T.Cpu).u64(T.Items.size());
    for (const auto &It : T.Items)
      H.str(It.Fn).i64s(It.Args);
  }
  H.u64(C.SliceBudget);
  // Same conditional memory-model tag as keyAddMachineConfig.  The
  // threaded machine is SC-only today (its constructor rejects weak
  // models), but the tag keeps link-certificate keys honest the day that
  // changes.
  if (C.Model && C.Model->weak())
    H.str("memmodel").str(C.Model->name());
}

} // namespace cert
} // namespace ccal

#endif // CCAL_CERT_CERTKEYS_H
