//===- cert/CertKeys.cpp - Key adders for programs ---------------------------===//

#include "cert/CertKeys.h"

using namespace ccal;

void cert::keyAddExpr(Hasher &H, const Expr &E) {
  H.u64(static_cast<std::uint64_t>(E.K))
      .i64(E.IntVal)
      .str(E.Name)
      .str(E.Op)
      .u64(E.Args.size());
  for (const ExprPtr &A : E.Args)
    keyAddExpr(H, *A);
}

void cert::keyAddStmt(Hasher &H, const Stmt &S) {
  H.u64(static_cast<std::uint64_t>(S.K)).str(S.Name);
  H.u64(S.Body.size());
  for (const StmtPtr &B : S.Body)
    keyAddStmt(H, *B);
  // Optional children are presence-prefixed so `If(c){a}{}` and
  // `If(c){}{a}` cannot collide.
  H.b(S.Cond != nullptr);
  if (S.Cond)
    keyAddExpr(H, *S.Cond);
  H.b(S.A != nullptr);
  if (S.A)
    keyAddExpr(H, *S.A);
  H.b(S.B != nullptr);
  if (S.B)
    keyAddExpr(H, *S.B);
  H.b(S.Then != nullptr);
  if (S.Then)
    keyAddStmt(H, *S.Then);
  H.b(S.Else != nullptr);
  if (S.Else)
    keyAddStmt(H, *S.Else);
}

void cert::keyAddModule(Hasher &H, const ClightModule &M) {
  H.str(M.Name);
  H.u64(M.Globals.size());
  for (const GlobalDecl &G : M.Globals)
    H.str(G.Name).u64(static_cast<std::uint64_t>(G.Size)).i64s(G.Init);
  H.u64(M.Funcs.size());
  for (const FuncDecl &F : M.Funcs) {
    H.str(F.Name).b(F.IsExtern).b(F.ReturnsVoid).strs(F.Params);
    H.b(F.Body != nullptr);
    if (F.Body)
      keyAddStmt(H, *F.Body);
  }
}

void cert::keyAddProgram(Hasher &H, const AsmProgram &P) {
  H.str(P.Name).b(P.Linked);
  H.u64(P.Funcs.size());
  for (const AsmFunc &F : P.Funcs) {
    H.str(F.Name).u64(F.NumParams).u64(F.NumSlots).u64(F.Code.size());
    for (const Instr &I : F.Code)
      H.u64(static_cast<std::uint64_t>(I.Op))
          .i64(I.Target)
          .i64(I.Imm)
          .str(I.Sym);
  }
  H.u64(P.Globals.size());
  for (const AsmGlobal &G : P.Globals)
    H.str(G.Name).i64(G.Addr).i64(G.Size).i64s(G.Init);
}
