//===- cert/CertKey.h - Content addresses for checks -----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed keys for the certificate store.  A CertKey names one
/// *check*: a canonical structural hash of everything the check quantifies
/// over — machine/layer configuration, exploration options, programs, the
/// relation — plus the checker's own version tag, so that changing any
/// input (or the checker's semantics) changes the address and the stored
/// certificate can never be confused with a different obligation.
///
/// Opaque std::function values (primitive semantics, strategies,
/// environment models, schedule replay functions) cannot be hashed
/// structurally; they enter the key through their declared *names*
/// (layer name + primitive names/flags/footprints, Strategy::describe(),
/// EventMap::name(), caller-provided tags).  This is the store's caching
/// contract: a semantic change hiding under an unchanged name requires a
/// checker version bump or a cleared cache.  Checks carrying genuinely
/// anonymous callables (an unnamed Explorer invariant, an untagged env
/// model) are treated as UNCACHEABLE — the front-ends bypass the store
/// rather than risk a collision, which is the fail-closed direction.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CERT_CERTKEY_H
#define CCAL_CERT_CERTKEY_H

#include "core/Footprint.h"
#include "core/LayerInterface.h"
#include "core/Log.h"
#include "support/Hash.h"

#include <cstdio>
#include <string>

namespace ccal {
namespace cert {

/// The address of one check's certificate in the store.
struct CertKey {
  /// Checker family: "refine", "sim", "link", "compat", "validate".
  std::string Checker;

  /// The checker's version tag; bumped whenever the checker's semantics
  /// change so stale entries miss instead of lying.
  std::string Version;

  /// Structural hash of every input the check quantifies over.
  std::uint64_t Hash = 0;

  /// Human-readable summary of the statement being checked (goes into the
  /// stored entry for auditing; not part of the address).
  std::string Desc;

  /// "<checker>-<16-hex-digit hash>": the store's file stem.
  std::string fileStem() const {
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%016llx",
                  static_cast<unsigned long long>(Hash));
    return Checker + "-" + Buf;
  }
};

/// Folds an event into \p H.
inline void keyAddEvent(Hasher &H, const Event &E) {
  H.u64(E.Tid).str(E.Kind.str()).i64s(E.Args);
}

/// Folds a log (length-prefixed) into \p H.
inline void keyAddLog(Hasher &H, const Log &L) {
  H.u64(L.size());
  for (const Event &E : L)
    keyAddEvent(H, E);
}

inline void keyAddFootprint(Hasher &H, const Footprint &F) {
  H.b(F.Opaque).strs(F.Reads).strs(F.Writes);
  // Ordering annotations fold only when non-default, so every key minted
  // before the memory-model refactor — all-SC by construction — hashes
  // byte-identically and stored SC certificates keep verifying.
  if (F.weakOrdered())
    H.str("ord").str(memOrderName(F.ReadOrd)).str(memOrderName(F.WriteOrd))
        .b(F.Atomic).b(F.ScFence).b(F.FairRead);
}

/// Folds a layer interface into \p H: its name, every primitive's name,
/// sharing/exit flags and declared footprint, and the rely/guarantee
/// invariant names.  Primitive *semantics* are represented by the
/// primitive's name (see the caching contract above).
inline void keyAddLayer(Hasher &H, const LayerInterface &L) {
  H.str(L.name());
  std::vector<std::string> Names = L.primNames();
  H.u64(Names.size());
  for (const std::string &N : Names) {
    const Primitive *P = L.lookup(N);
    H.str(N).b(P->Shared).b(P->ExitsThread);
    keyAddFootprint(H, P->Foot);
  }
  const RelyGuarantee &RG = L.rg();
  H.u64(RG.Rely.size());
  for (const auto &[Tid, Inv] : RG.Rely)
    H.u64(Tid).str(Inv.Name);
  H.u64(RG.Guar.size());
  for (const auto &[Tid, Inv] : RG.Guar)
    H.u64(Tid).str(Inv.Name);
}

} // namespace cert
} // namespace ccal

#endif // CCAL_CERT_CERTKEY_H
