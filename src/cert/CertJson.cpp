//===- cert/CertJson.cpp - Certificate (de)serialization ---------------------===//

#include "cert/CertJson.h"

using namespace ccal;

namespace {

// Strict field accessors: every helper returns false on a missing or
// ill-typed field so a malformed document can never half-populate a
// certificate.

bool getStr(const JsonValue &V, const char *Name, std::string &Out,
            std::string &Error) {
  const JsonValue *F = V.field(Name);
  if (!F || !F->isString()) {
    Error = std::string("missing or non-string field '") + Name + "'";
    return false;
  }
  Out = F->StrVal;
  return true;
}

bool getBool(const JsonValue &V, const char *Name, bool &Out,
             std::string &Error) {
  const JsonValue *F = V.field(Name);
  if (!F || !F->isBool()) {
    Error = std::string("missing or non-bool field '") + Name + "'";
    return false;
  }
  Out = F->BoolVal;
  return true;
}

bool getU64(const JsonValue &V, const char *Name, std::uint64_t &Out,
            std::string &Error) {
  const JsonValue *F = V.field(Name);
  if (!F || !F->isNumber() || !F->IsInt || F->IntVal < 0) {
    Error = std::string("missing or non-integer field '") + Name + "'";
    return false;
  }
  Out = static_cast<std::uint64_t>(F->IntVal);
  return true;
}

} // namespace

JsonValue cert::certToJson(const RefinementCertificate &C) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["rule"] = jsonStr(C.Rule);
  V.Fields["underlay"] = jsonStr(C.Underlay);
  V.Fields["module"] = jsonStr(C.Module);
  V.Fields["overlay"] = jsonStr(C.Overlay);
  V.Fields["relation"] = jsonStr(C.Relation);
  V.Fields["valid"] = jsonBool(C.Valid);
  V.Fields["coverage_complete"] = jsonBool(C.CoverageComplete);
  V.Fields["coverage"] = jsonStr(C.Coverage);
  V.Fields["obligations"] = jsonUInt(C.Obligations);
  V.Fields["runs"] = jsonUInt(C.Runs);
  V.Fields["moves"] = jsonUInt(C.Moves);
  V.Fields["invariants"] = jsonUInt(C.Invariants);
  std::vector<JsonValue> Premises;
  for (const CertPtr &P : C.Premises)
    Premises.push_back(certToJson(*P));
  V.Fields["premises"] = jsonArray(std::move(Premises));
  std::vector<JsonValue> Notes;
  for (const std::string &N : C.Notes)
    Notes.push_back(jsonStr(N));
  V.Fields["notes"] = jsonArray(std::move(Notes));
  return V;
}

CertPtr cert::certFromJson(const JsonValue &V, std::string &Error) {
  if (!V.isObject()) {
    Error = "certificate is not an object";
    return nullptr;
  }
  auto C = std::make_shared<RefinementCertificate>();
  if (!getStr(V, "rule", C->Rule, Error) ||
      !getStr(V, "underlay", C->Underlay, Error) ||
      !getStr(V, "module", C->Module, Error) ||
      !getStr(V, "overlay", C->Overlay, Error) ||
      !getStr(V, "relation", C->Relation, Error) ||
      !getBool(V, "valid", C->Valid, Error) ||
      !getBool(V, "coverage_complete", C->CoverageComplete, Error) ||
      !getStr(V, "coverage", C->Coverage, Error) ||
      !getU64(V, "obligations", C->Obligations, Error) ||
      !getU64(V, "runs", C->Runs, Error) ||
      !getU64(V, "moves", C->Moves, Error) ||
      !getU64(V, "invariants", C->Invariants, Error))
    return nullptr;
  const JsonValue *Premises = V.field("premises");
  if (!Premises || !Premises->isArray()) {
    Error = "missing or non-array field 'premises'";
    return nullptr;
  }
  for (const JsonValue &P : Premises->Items) {
    CertPtr Sub = certFromJson(P, Error);
    if (!Sub)
      return nullptr;
    C->Premises.push_back(std::move(Sub));
  }
  const JsonValue *Notes = V.field("notes");
  if (!Notes || !Notes->isArray()) {
    Error = "missing or non-array field 'notes'";
    return nullptr;
  }
  for (const JsonValue &N : Notes->Items) {
    if (!N.isString()) {
      Error = "non-string note";
      return nullptr;
    }
    C->Notes.push_back(N.StrVal);
  }
  return C;
}

JsonValue cert::eventToJson(const Event &E) {
  std::vector<JsonValue> Args;
  for (std::int64_t A : E.Args)
    Args.push_back(jsonInt(A));
  return jsonArray(
      {jsonUInt(E.Tid), jsonStr(E.Kind.str()), jsonArray(std::move(Args))});
}

bool cert::eventFromJson(const JsonValue &V, Event &Out) {
  if (!V.isArray() || V.Items.size() != 3)
    return false;
  const JsonValue &Tid = V.Items[0], &Kind = V.Items[1], &Args = V.Items[2];
  if (!Tid.isNumber() || !Tid.IsInt || Tid.IntVal < 0 || !Kind.isString() ||
      !Args.isArray())
    return false;
  Out.Tid = static_cast<ThreadId>(Tid.IntVal);
  Out.Kind = Kind.StrVal;
  Out.Args.clear();
  for (const JsonValue &A : Args.Items) {
    if (!A.isNumber() || !A.IsInt)
      return false;
    Out.Args.push_back(A.IntVal);
  }
  return true;
}

JsonValue cert::logToJson(const Log &L) {
  std::vector<JsonValue> Events;
  for (const Event &E : L)
    Events.push_back(eventToJson(E));
  return jsonArray(std::move(Events));
}

bool cert::logFromJson(const JsonValue &V, Log &Out) {
  if (!V.isArray())
    return false;
  Out.clear();
  for (const JsonValue &E : V.Items) {
    Event Ev;
    if (!eventFromJson(E, Ev))
      return false;
    Out.push_back(std::move(Ev));
  }
  return true;
}

JsonValue cert::logsToJson(const std::vector<Log> &Ls) {
  std::vector<JsonValue> Logs;
  for (const Log &L : Ls)
    Logs.push_back(logToJson(L));
  return jsonArray(std::move(Logs));
}

bool cert::logsFromJson(const JsonValue &V, std::vector<Log> &Out) {
  if (!V.isArray())
    return false;
  Out.clear();
  for (const JsonValue &L : V.Items) {
    Log Lg;
    if (!logFromJson(L, Lg))
      return false;
    Out.push_back(std::move(Lg));
  }
  return true;
}

JsonValue cert::implicationToJson(const ImplicationReport &R) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["premise"] = jsonStr(R.Premise);
  V.Fields["conclusion"] = jsonStr(R.Conclusion);
  V.Fields["logs_checked"] = jsonUInt(R.LogsChecked);
  V.Fields["holds"] = jsonBool(R.Holds);
  V.Fields["counterexample"] = logToJson(R.Counterexample);
  return V;
}

bool cert::implicationFromJson(const JsonValue &V, ImplicationReport &Out) {
  std::string Error;
  const JsonValue *Cex = V.field("counterexample");
  return V.isObject() && getStr(V, "premise", Out.Premise, Error) &&
         getStr(V, "conclusion", Out.Conclusion, Error) &&
         getU64(V, "logs_checked", Out.LogsChecked, Error) &&
         getBool(V, "holds", Out.Holds, Error) && Cex &&
         logFromJson(*Cex, Out.Counterexample);
}
