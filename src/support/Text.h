//===- support/Text.h - Small string utilities -----------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the diagnostics, the mini-C front end, and the
/// bench table printers.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SUPPORT_TEXT_H
#define CCAL_SUPPORT_TEXT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {

/// Joins \p Parts with \p Sep ("a", "b" -> "a,b").
std::string strJoin(const std::vector<std::string> &Parts,
                    const std::string &Sep);

/// Splits \p S at every occurrence of \p Sep (no empty-trailing removal).
std::vector<std::string> strSplit(const std::string &S, char Sep);

/// Removes leading and trailing whitespace.
std::string strTrim(const std::string &S);

/// Returns true if \p S starts with \p Prefix.
bool strStartsWith(const std::string &S, const std::string &Prefix);

/// printf-style formatting into a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a signed integer list as "[1, 2, 3]".
std::string intListToString(const std::vector<std::int64_t> &Vals);

} // namespace ccal

#endif // CCAL_SUPPORT_TEXT_H
