//===- support/Json.cpp - Minimal JSON parser -------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace ccal;

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::size_t MaxDepth)
      : Text(Text), MaxDepth(MaxDepth) {}

  JsonParseResult run() {
    JsonParseResult R;
    skipWs();
    if (!parseValue(R.Value)) {
      R.Error = "offset " + std::to_string(Pos) + ": " + Err;
      return R;
    }
    skipWs();
    if (Pos != Text.size()) {
      R.Error = "offset " + std::to_string(Pos) + ": trailing garbage";
      return R;
    }
    R.Ok = true;
    return R;
  }

private:
  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    std::size_t P = Pos;
    for (const char *C = Lit; *C; ++C, ++P)
      if (P >= Text.size() || Text[P] != *C)
        return false;
    Pos = P;
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
    case '[': {
      if (!enter())
        return false;
      bool Ok = C == '{' ? parseObject(Out) : parseArray(Out);
      --Depth;
      return Ok;
    }
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.StrVal);
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = true;
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = false;
      return true;
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out.K = JsonValue::Kind::Null;
      return true;
    default:
      return parseNumber(Out);
    }
  }

  /// Containers recurse; a depth past MaxDepth is an error, not a deeper
  /// recursion — adversarial input ("[[[[…" from the daemon socket) must
  /// not be able to overflow the C++ stack.
  bool enter() {
    if (Depth >= MaxDepth) {
      fail("nesting depth cap exceeded");
      return false;
    }
    ++Depth;
    return true;
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Fields[Key] = std::move(V);
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Items.push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("bad escape");
        char E = Text[Pos];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out += E;
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 >= Text.size())
            return fail("bad \\u escape");
          unsigned V = 0;
          for (int I = 0; I != 4; ++I) {
            char H = Text[Pos + 1 + static_cast<std::size_t>(I)];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          Pos += 4;
          // UTF-8 encode the BMP code point (surrogates passed through
          // as-is — trace/bench output never emits them).
          if (V < 0x80) {
            Out += static_cast<char>(V);
          } else if (V < 0x800) {
            Out += static_cast<char>(0xC0 | (V >> 6));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (V >> 12));
            Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape");
        }
        ++Pos;
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    std::size_t Start = Pos;
    bool Fractional = false;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-')) {
      if (Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E')
        Fractional = true;
      ++Pos;
    }
    if (Pos == Start)
      return fail("expected value");
    std::string Num = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    Out.K = JsonValue::Kind::Number;
    Out.NumVal = std::strtod(Num.c_str(), &End);
    if (End == nullptr || *End != '\0')
      return fail("malformed number");
    if (!Fractional) {
      // Keep the exact 64-bit value for counters; out-of-range integer
      // literals (which this repository never writes) degrade to double.
      errno = 0;
      char *IEnd = nullptr;
      long long I = std::strtoll(Num.c_str(), &IEnd, 10);
      if (IEnd != nullptr && *IEnd == '\0' && errno == 0) {
        Out.IsInt = true;
        Out.IntVal = I;
      }
    }
    return true;
  }

  const std::string &Text;
  const std::size_t MaxDepth;
  std::size_t Pos = 0;
  std::size_t Depth = 0;
  std::string Err;
};

} // namespace

JsonParseResult ccal::parseJson(const std::string &Text,
                                std::size_t MaxDepth) {
  return Parser(Text, MaxDepth).run();
}

JsonValue ccal::jsonNull() { return JsonValue(); }

JsonValue ccal::jsonBool(bool V) {
  JsonValue J;
  J.K = JsonValue::Kind::Bool;
  J.BoolVal = V;
  return J;
}

JsonValue ccal::jsonInt(std::int64_t V) {
  JsonValue J;
  J.K = JsonValue::Kind::Number;
  J.IsInt = true;
  J.IntVal = V;
  J.NumVal = static_cast<double>(V);
  return J;
}

JsonValue ccal::jsonUInt(std::uint64_t V) {
  return jsonInt(static_cast<std::int64_t>(V));
}

JsonValue ccal::jsonNum(double V) {
  JsonValue J;
  J.K = JsonValue::Kind::Number;
  J.NumVal = V;
  return J;
}

JsonValue ccal::jsonStr(std::string V) {
  JsonValue J;
  J.K = JsonValue::Kind::String;
  J.StrVal = std::move(V);
  return J;
}

JsonValue ccal::jsonArray(std::vector<JsonValue> Items) {
  JsonValue J;
  J.K = JsonValue::Kind::Array;
  J.Items = std::move(Items);
  return J;
}

namespace {

void writeString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (U < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", U);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void writeValue(std::string &Out, const JsonValue &V) {
  switch (V.K) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.BoolVal ? "true" : "false";
    break;
  case JsonValue::Kind::Number: {
    char Buf[40];
    if (V.IsInt)
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(V.IntVal));
    else
      std::snprintf(Buf, sizeof(Buf), "%.17g", V.NumVal);
    Out += Buf;
    break;
  }
  case JsonValue::Kind::String:
    writeString(Out, V.StrVal);
    break;
  case JsonValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &Item : V.Items) {
      if (!First)
        Out += ',';
      First = false;
      writeValue(Out, Item);
    }
    Out += ']';
    break;
  }
  case JsonValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, Field] : V.Fields) {
      if (!First)
        Out += ',';
      First = false;
      writeString(Out, Key);
      Out += ':';
      writeValue(Out, Field);
    }
    Out += '}';
    break;
  }
  }
}

} // namespace

std::string ccal::jsonToString(const JsonValue &V) {
  std::string Out;
  writeValue(Out, V);
  return Out;
}
