//===- support/Hash.h - Structural hashing helpers -------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One hashing discipline for the whole repository: the splitmix64-based
/// mixer behind the explorer's snapshot dedup (machine/ThreadMachine
/// `snapshotHash`) and the certificate store's content-addressed keys
/// (cert/CertKey.h).  The `Hasher` accumulator enforces the two rules that
/// make structural hashes trustworthy:
///
///   * every value is avalanched before combining, so adjacent fields act
///     as separated words rather than a raw multiply-add chain;
///   * variable-length data (strings, sequences) is always length-prefixed,
///     so `["ab"]` and `["a","b"]` cannot collide by concatenation.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SUPPORT_HASH_H
#define CCAL_SUPPORT_HASH_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {

/// Finalizer of splitmix64: a full-avalanche 64-bit mixer.  Used to build
/// composite hashes whose fields cannot cancel each other out.
inline std::uint64_t hashMix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Folds \p V into the running hash \p Seed, order-sensitively.  Each value
/// is avalanched before combining, so adjacent fields act as separated
/// words rather than a raw multiply-add chain (which lets distinct field
/// sequences collide, e.g. `[1], [2]` vs `[1, 2]` under plain FNV).
/// Callers hashing variable-length sequences must also fold the length.
inline std::uint64_t hashCombine(std::uint64_t Seed, std::uint64_t V) {
  return (Seed ^ hashMix64(V)) * 1099511628211ULL;
}

/// Order-sensitive structural hash accumulator.  All adders return *this
/// so field sequences read as one chain:
///
///   Hasher H;
///   H.str(Cfg.Name).u64(Cfg.SliceBudget).i64s(Mem);
///   use(H.value());
///
class Hasher {
public:
  Hasher() = default;
  explicit Hasher(std::uint64_t Seed) : H(Seed) {}

  Hasher &u64(std::uint64_t V) {
    H = hashCombine(H, V);
    return *this;
  }
  Hasher &i64(std::int64_t V) { return u64(static_cast<std::uint64_t>(V)); }
  Hasher &b(bool V) { return u64(V ? 1u : 0u); }

  /// Length-prefixed string hash (8 bytes per combine step).
  Hasher &str(const std::string &S) {
    u64(S.size());
    std::uint64_t Word = 0;
    unsigned Fill = 0;
    for (char C : S) {
      Word = (Word << 8) | static_cast<unsigned char>(C);
      if (++Fill == 8) {
        u64(Word);
        Word = 0;
        Fill = 0;
      }
    }
    if (Fill != 0)
      u64(Word);
    return *this;
  }

  /// Length-prefixed sequences.
  Hasher &i64s(const std::vector<std::int64_t> &Vs) {
    u64(Vs.size());
    for (std::int64_t V : Vs)
      i64(V);
    return *this;
  }
  Hasher &strs(const std::vector<std::string> &Ss) {
    u64(Ss.size());
    for (const std::string &S : Ss)
      str(S);
    return *this;
  }

  std::uint64_t value() const { return H; }

private:
  std::uint64_t H = 0;
};

} // namespace ccal

#endif // CCAL_SUPPORT_HASH_H
