//===- support/Check.cpp - Assertions and fatal errors -------------------===//

#include "support/Check.h"

#include <cstdio>
#include <cstdlib>

void ccal::reportFatal(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "ccal fatal error: %s at %s:%d\n", Msg, File, Line);
  std::fflush(stderr);
  std::abort();
}
