//===- support/Json.h - Minimal JSON parser --------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser plus a deterministic writer,
/// enough to validate the files this repository emits (BENCH_*.json,
/// Chrome trace_event dumps) inside its own tests and to round-trip the
/// certificate store's entries byte-identically — the schema checks must
/// not depend on a JSON library the container may not have.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SUPPORT_JSON_H
#define CCAL_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ccal {

/// One parsed JSON value (a tree; object keys are unique, last wins).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;

  bool BoolVal = false;
  double NumVal = 0.0;
  /// Numbers written without '.' or an exponent keep their exact 64-bit
  /// value here (NumVal still mirrors it, lossily above 2^53) so evidence
  /// counters survive parse→serialize round trips bit-for-bit.
  bool IsInt = false;
  std::int64_t IntVal = 0;
  std::string StrVal;
  std::vector<JsonValue> Items;                ///< arrays
  std::map<std::string, JsonValue> Fields;     ///< objects

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Field \p Name of an object, or null when absent / not an object.
  const JsonValue *field(const std::string &Name) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Fields.find(Name);
    return It == Fields.end() ? nullptr : &It->second;
  }
};

/// Result of a parse: either a value or a position-tagged error.
struct JsonParseResult {
  bool Ok = false;
  JsonValue Value;
  std::string Error; ///< "offset N: message" when !Ok

  explicit operator bool() const { return Ok; }
};

/// Maximum container nesting the recursive-descent parser will follow.
/// The parser recurses once per '[' / '{', so without a cap a short
/// adversarial input ("[[[[…") overflows the C++ stack — fatal, not an
/// error return.  Documents this repository emits nest a few dozen levels
/// at most (certificate derivation trees), so 256 is generous headroom
/// while keeping worst-case recursion ~100 KiB of stack.
constexpr std::size_t JsonMaxDepth = 256;

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage is an error).  Containers nested deeper than
/// \p MaxDepth fail with a position-tagged error instead of recursing —
/// the input may come from an untrusted socket (serve/), where a
/// stack overflow would take the whole daemon down.
JsonParseResult parseJson(const std::string &Text,
                          std::size_t MaxDepth = JsonMaxDepth);

/// Value constructors for building documents programmatically.
JsonValue jsonNull();
JsonValue jsonBool(bool V);
JsonValue jsonInt(std::int64_t V);
/// Counters are unsigned; values above INT64_MAX are unreachable for any
/// real evidence count, and the cast keeps one integer representation.
JsonValue jsonUInt(std::uint64_t V);
JsonValue jsonNum(double V);
JsonValue jsonStr(std::string V);
JsonValue jsonArray(std::vector<JsonValue> Items);

/// Renders \p V compactly (no whitespace) and deterministically: object
/// keys come out in sorted (std::map) order, integers print exactly, and
/// doubles use a fixed shortest-ish "%.17g" form — so equal values always
/// produce byte-identical text.  serialize∘parse is the identity on the
/// writer's image, which is what makes stored certificates comparable by
/// checksum.
std::string jsonToString(const JsonValue &V);

} // namespace ccal

#endif // CCAL_SUPPORT_JSON_H
