//===- support/Json.h - Minimal JSON parser --------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser, enough to validate the files
/// this repository emits (BENCH_*.json, Chrome trace_event dumps) inside
/// its own tests — the schema checks must not depend on a JSON library
/// the container may not have.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SUPPORT_JSON_H
#define CCAL_SUPPORT_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ccal {

/// One parsed JSON value (a tree; object keys are unique, last wins).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;

  bool BoolVal = false;
  double NumVal = 0.0;
  std::string StrVal;
  std::vector<JsonValue> Items;                ///< arrays
  std::map<std::string, JsonValue> Fields;     ///< objects

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Field \p Name of an object, or null when absent / not an object.
  const JsonValue *field(const std::string &Name) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Fields.find(Name);
    return It == Fields.end() ? nullptr : &It->second;
  }
};

/// Result of a parse: either a value or a position-tagged error.
struct JsonParseResult {
  bool Ok = false;
  JsonValue Value;
  std::string Error; ///< "offset N: message" when !Ok

  explicit operator bool() const { return Ok; }
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
JsonParseResult parseJson(const std::string &Text);

} // namespace ccal

#endif // CCAL_SUPPORT_JSON_H
