//===- support/Rng.h - Deterministic random number generator ---*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (splitmix64) so that property tests, the
/// schedule sampler, and the ClightX program fuzzer are reproducible from a
/// seed.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SUPPORT_RNG_H
#define CCAL_SUPPORT_RNG_H

#include <cstdint>

namespace ccal {

/// splitmix64: tiny, fast, and deterministic across platforms.
class Rng {
public:
  explicit Rng(std::uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound); Bound must be nonzero.
  std::uint64_t below(std::uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  std::int64_t range(std::int64_t Lo, std::int64_t Hi) {
    return Lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(Hi - Lo + 1)));
  }

  /// Bernoulli draw with probability Num/Den.
  bool chance(std::uint64_t Num, std::uint64_t Den) {
    return below(Den) < Num;
  }

private:
  std::uint64_t State;
};

} // namespace ccal

#endif // CCAL_SUPPORT_RNG_H
