//===- support/Table.cpp - ASCII table printer ----------------------------===//

#include "support/Table.h"

#include <algorithm>

using namespace ccal;

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string Table::render() const {
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Widths.size() < Row.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  }

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line = "  ";
    for (size_t I = 0, E = Row.size(); I != E; ++I) {
      std::string Cell = Row[I];
      Cell.resize(Widths[I], ' ');
      Line += Cell;
      if (I + 1 != E)
        Line += "  ";
    }
    // Trim trailing padding.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += "\n";
    return Line;
  };

  std::string Out = Title + "\n";
  for (size_t R = 0, E = Rows.size(); R != E; ++R) {
    Out += RenderRow(Rows[R]);
    if (R == 0 && E > 1) {
      size_t Total = 2;
      for (size_t I = 0, N = Widths.size(); I != N; ++I)
        Total += Widths[I] + (I + 1 != N ? 2 : 0);
      Out += std::string(Total, '-') + "\n";
    }
  }
  return Out;
}
