//===- support/Intern.cpp - Interned strings -------------------------------===//

#include "support/Intern.h"

#include "support/Check.h"
#include "support/Hash.h"

#include <atomic>
#include <mutex>
#include <ostream>

using namespace ccal;
using ccal::detail::InternEntry;

namespace {

/// Fixed-capacity open-addressing table.  Capacities are generous: kinds
/// are primitive names, a vocabulary of dozens, and the table asserts
/// rather than resizes (resizing would invalidate lock-free readers).
constexpr std::uint32_t SlotBits = 16;
constexpr std::uint32_t NumSlots = 1u << SlotBits;   // probe slots
constexpr std::uint32_t SlotMask = NumSlots - 1;
constexpr std::uint32_t MaxKinds = NumSlots / 2;     // load factor <= 0.5

std::uint64_t contentHashOf(std::string_view S) {
  Hasher H;
  H.u64(S.size());
  std::uint64_t Word = 0;
  unsigned Fill = 0;
  for (char C : S) {
    Word = (Word << 8) | static_cast<unsigned char>(C);
    if (++Fill == 8) {
      H.u64(Word);
      Word = 0;
      Fill = 0;
    }
  }
  if (Fill != 0)
    H.u64(Word);
  return H.value();
}

struct Interner {
  /// Probe slots hold id+1 (0 = empty); published with release stores so
  /// a reader that sees a slot also sees its entry.
  std::atomic<std::uint32_t> Slots[NumSlots];
  /// Dense entries, indexed by id; pointers are stable (entries leak).
  std::atomic<const InternEntry *> Entries[MaxKinds];
  std::atomic<std::uint32_t> Count{0};
  std::mutex WriteMu;

  Interner() {
    for (auto &S : Slots)
      S.store(0, std::memory_order_relaxed);
    for (auto &E : Entries)
      E.store(nullptr, std::memory_order_relaxed);
    // Pre-intern "" as id 0 so a default KindId resolves without probing.
    intern(std::string_view());
  }

  const InternEntry *intern(std::string_view S) {
    const std::uint64_t H = contentHashOf(S);
    std::uint32_t Idx = static_cast<std::uint32_t>(H) & SlotMask;
    // Lock-free fast path: find an existing entry.
    while (true) {
      std::uint32_t V = Slots[Idx].load(std::memory_order_acquire);
      if (V == 0)
        break;
      const InternEntry *E = Entries[V - 1].load(std::memory_order_acquire);
      if (E->ContentHash == H && E->Str == S)
        return E;
      Idx = (Idx + 1) & SlotMask;
    }
    // Miss: take the write lock and re-probe (another thread may have
    // inserted S while we were probing).
    std::lock_guard<std::mutex> L(WriteMu);
    Idx = static_cast<std::uint32_t>(H) & SlotMask;
    while (true) {
      std::uint32_t V = Slots[Idx].load(std::memory_order_acquire);
      if (V == 0)
        break;
      const InternEntry *E = Entries[V - 1].load(std::memory_order_acquire);
      if (E->ContentHash == H && E->Str == S)
        return E;
      Idx = (Idx + 1) & SlotMask;
    }
    std::uint32_t Id = Count.load(std::memory_order_relaxed);
    CCAL_CHECK(Id < MaxKinds, "event-kind interner capacity exhausted");
    auto *E = new InternEntry{std::string(S), H}; // leaked: stable forever
    Entries[Id].store(E, std::memory_order_release);
    Count.store(Id + 1, std::memory_order_relaxed);
    Slots[Idx].store(Id + 1, std::memory_order_release);
    return E;
  }

  const InternEntry *byId(std::uint32_t Id) const {
    const InternEntry *E = Entries[Id].load(std::memory_order_acquire);
    CCAL_CHECK(E, "KindId refers to an unknown intern entry");
    return E;
  }
};

Interner &interner() {
  static Interner *I = new Interner(); // leaked: outlives static dtors
  return *I;
}

} // namespace

const InternEntry *ccal::detail::internString(std::string_view S) {
  return interner().intern(S);
}

const InternEntry *ccal::detail::internEntryOf(std::uint32_t Id) {
  return interner().byId(Id);
}

std::uint32_t KindId::idOf(std::string_view S) {
  if (S.empty())
    return 0;
  Interner &I = interner();
  const std::uint64_t H = contentHashOf(S);
  std::uint32_t Idx = static_cast<std::uint32_t>(H) & SlotMask;
  while (true) {
    std::uint32_t V = I.Slots[Idx].load(std::memory_order_acquire);
    if (V == 0) {
      // Slow path inserts (or finds, under the lock) and we re-probe for
      // the slot value to learn the id.
      I.intern(S);
      Idx = static_cast<std::uint32_t>(H) & SlotMask;
      continue;
    }
    const InternEntry *E = I.Entries[V - 1].load(std::memory_order_acquire);
    if (E->ContentHash == H && E->Str == S)
      return V - 1;
    Idx = (Idx + 1) & SlotMask;
  }
}

std::ostream &ccal::operator<<(std::ostream &OS, KindId K) {
  return OS << K.str();
}
