//===- support/Check.h - Assertions and fatal errors ----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-on checked assertions and an unreachable marker.
///
/// The library follows the paper's discipline: a violated invariant is a
/// *programmatic* error (the analogue of a Coq proof failing to typecheck),
/// so we abort at the point of failure with a diagnostic rather than throw.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SUPPORT_CHECK_H
#define CCAL_SUPPORT_CHECK_H

namespace ccal {

/// Prints "ccal fatal error: <Msg> at <File>:<Line>" to stderr and aborts.
[[noreturn]] void reportFatal(const char *Msg, const char *File, int Line);

} // namespace ccal

/// Always-on assertion (enabled in release builds too).  Refinement
/// obligations, calculus side conditions, and machine-model invariants are
/// checked with CCAL_CHECK so that a certificate can never be produced from
/// a violated premise.
#define CCAL_CHECK(Cond, Msg)                                                  \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::ccal::reportFatal(Msg, __FILE__, __LINE__);                            \
  } while (false)

/// Marks a point in the code that is unreachable if the library invariants
/// hold.
#define CCAL_UNREACHABLE(Msg) ::ccal::reportFatal(Msg, __FILE__, __LINE__)

#endif // CCAL_SUPPORT_CHECK_H
