//===- support/Intern.h - Interned strings ---------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global, thread-safe string interner mapping event-kind
/// strings to dense integer ids.  Event kinds are drawn from a small fixed
/// vocabulary (the primitive names of the layer interfaces plus "sched"),
/// yet every event used to carry its kind as a heap std::string — copied
/// on every snapshot, compared byte-wise in every replay fold, hashed
/// byte-wise in every dedup probe.  A KindId is 4 bytes, compares and
/// copies as an integer, and resolves back to its string in O(1).
///
/// Determinism contract: a KindId's *id* depends on interning order (which
/// differs across runs and across Explorer workers), so ids must never
/// leak into hashes, certificates, or any ordering the seed baseline
/// pins.  Everything observable goes through the string: strHash() is a
/// content hash computed once at intern time, operator< compares the
/// resolved strings, and CertJson serializes str().  Ids are only ever
/// used for equality and as dense table indices within one process.
///
/// The table is append-only and leaked: entries live until process exit,
/// so `const std::string &` returned by str() is stable forever — hot
/// accessors can hand out references without lifetime hazards.  Reads are
/// lock-free (acquire loads on a fixed open-addressing slot array);
/// writers serialize on a mutex.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SUPPORT_INTERN_H
#define CCAL_SUPPORT_INTERN_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace ccal {

namespace detail {
struct InternEntry {
  std::string Str;
  std::uint64_t ContentHash = 0; ///< Hasher{}.str(Str), interning-order free
};
/// Returns the entry for \p S, interning it on first sight.
const InternEntry *internString(std::string_view S);
/// Entry lookup by id (0 is always the empty string).
const InternEntry *internEntryOf(std::uint32_t Id);
} // namespace detail

/// An interned event-kind string.  Implicitly constructible from string
/// types so existing call sites (`E.Kind == "FAI_t"`, `Event(1, Name)`)
/// compile unchanged; the conversion interns, so build KindIds once
/// outside hot loops.
class KindId {
public:
  /// The empty kind "" (id 0 is pre-interned).
  KindId() = default;

  KindId(std::string_view S) : Id(idOf(S)) {}
  KindId(const std::string &S) : Id(idOf(S)) {}
  KindId(const char *S) : Id(idOf(S)) {}

  std::uint32_t id() const { return Id; }
  bool empty() const { return Id == 0; }

  /// The interned string; the reference is stable for the process
  /// lifetime (entries are never freed).
  const std::string &str() const { return detail::internEntryOf(Id)->Str; }
  const char *c_str() const { return str().c_str(); }

  /// Content hash of the string, cached at intern time — identical across
  /// processes and interning orders, so it is safe inside structural
  /// hashes (hashEvent) that the seed baseline depends on.
  std::uint64_t strHash() const {
    return detail::internEntryOf(Id)->ContentHash;
  }

  friend bool operator==(KindId A, KindId B) { return A.Id == B.Id; }
  friend bool operator!=(KindId A, KindId B) { return A.Id != B.Id; }

  /// String order, NOT id order: kind ids are assigned in interning order,
  /// which is nondeterministic across worker threads, while containers
  /// ordered by kind (Event::operator<, canonical-log sorts) must match
  /// the seed baseline byte for byte.
  friend bool operator<(KindId A, KindId B) {
    return A.Id != B.Id && A.str() < B.str();
  }

private:
  static std::uint32_t idOf(std::string_view S);

  std::uint32_t Id = 0;
};

/// gtest / diagnostics printing.
std::ostream &operator<<(std::ostream &OS, KindId K);

} // namespace ccal

#endif // CCAL_SUPPORT_INTERN_H
