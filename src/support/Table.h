//===- support/Table.h - ASCII table printer -------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column-aligned ASCII table used by the bench harnesses to print the
/// same rows as the paper's Tables 1 and 2.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SUPPORT_TABLE_H
#define CCAL_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace ccal {

/// Accumulates rows of strings and renders them with every column padded to
/// its widest cell.  The first row added is treated as the header and is
/// separated from the body by a dashed rule.
class Table {
public:
  explicit Table(std::string Title) : Title(std::move(Title)) {}

  /// Appends one row; all rows should have the same number of cells.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (title, header, rule, body) as one string.
  std::string render() const;

private:
  std::string Title;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ccal

#endif // CCAL_SUPPORT_TABLE_H
