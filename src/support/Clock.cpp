//===- support/Clock.cpp - Shared monotonic clock ----------------------------===//

#include "support/Clock.h"

#include <chrono>

std::uint64_t ccal::support::monotonicNowNs() {
  using Clock = std::chrono::steady_clock;
  // Magic-static init pins the origin at the first call in the process;
  // every later caller (obs, audit recorder, benches) measures from it.
  static const Clock::time_point Origin = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Origin)
          .count());
}
