//===- support/Clock.h - Shared monotonic clock ----------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single monotonic timestamp source every runtime-side consumer
/// shares: the obs layer's `nowNs` (latency histograms, Chrome trace
/// spans, the ghost-log contention reconstruction they are correlated
/// against) and the audit recorder's invocation/response stamps all read
/// this clock, anchored to one process-wide origin.  Keeping them on one
/// source is a correctness matter, not a convenience: the audit checker
/// derives real-time *precedence* from these stamps (response(A) <
/// invoke(B) means A must linearize before B), so two subsystems reading
/// clocks with different origins — or a monotonic clock here and a
/// wall clock there — could manufacture or hide precedence edges and make
/// the trace auditor disagree with the ghost-log view of the same run.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_SUPPORT_CLOCK_H
#define CCAL_SUPPORT_CLOCK_H

#include <cstdint>

namespace ccal {
namespace support {

/// Monotonic nanoseconds since the process-wide origin (the first call in
/// the process).  Never decreases, within a thread or across threads that
/// synchronize; the small origin keeps Chrome-trace timestamps and trace
/// dumps compact.
std::uint64_t monotonicNowNs();

} // namespace support
} // namespace ccal

#endif // CCAL_SUPPORT_CLOCK_H
