//===- support/Text.cpp - Small string utilities --------------------------===//

#include "support/Text.h"

#include <cstdarg>
#include <cstdio>

using namespace ccal;

std::string ccal::strJoin(const std::vector<std::string> &Parts,
                          const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::vector<std::string> ccal::strSplit(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == Sep) {
      Out.push_back(Cur);
      Cur.clear();
      continue;
    }
    Cur += C;
  }
  Out.push_back(Cur);
  return Out;
}

std::string ccal::strTrim(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && (S[B] == ' ' || S[B] == '\t' || S[B] == '\n' || S[B] == '\r'))
    ++B;
  while (E > B &&
         (S[E - 1] == ' ' || S[E - 1] == '\t' || S[E - 1] == '\n' ||
          S[E - 1] == '\r'))
    --E;
  return S.substr(B, E - B);
}

bool ccal::strStartsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

std::string ccal::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(static_cast<size_t>(Len));
  }
  va_end(Args);
  return Out;
}

std::string ccal::intListToString(const std::vector<std::int64_t> &Vals) {
  std::string Out = "[";
  for (size_t I = 0, E = Vals.size(); I != E; ++I) {
    if (I != 0)
      Out += ", ";
    Out += std::to_string(Vals[I]);
  }
  Out += "]";
  return Out;
}
