//===- support/Rng.cpp - Deterministic random number generator ------------===//

#include "support/Rng.h"

// Header-only; this file anchors the translation unit for the library.
