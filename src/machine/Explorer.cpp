//===- machine/Explorer.cpp - Schedule enumeration ---------------------------===//

#include "machine/Explorer.h"

#include "support/Text.h"

#include <algorithm>

using namespace ccal;

ExploreResult ccal::exploreMachine(MachineConfigPtr Cfg,
                                   const ExploreOptions &Opts) {
  MultiCoreMachine Root(std::move(Cfg));
  return exploreGeneric(Root, Opts);
}

PorEquivalenceReport ccal::checkPorEquivalence(MachineConfigPtr Cfg,
                                               ExploreOptions Opts) {
  MultiCoreMachine Root(std::move(Cfg));
  return checkPorEquivalence(Root, std::move(Opts));
}

Outcome ccal::runSchedule(
    MachineConfigPtr Cfg,
    const std::function<ThreadId(const std::vector<ThreadId> &, const Log &)>
        &Pick,
    std::string *Error) {
  MultiCoreMachine M(std::move(Cfg));
  std::string SchedErr;
  while (M.ok()) {
    std::vector<ThreadId> Ready = M.schedulable();
    if (Ready.empty())
      break;
    ThreadId C = Pick(Ready, M.log());
    // A pick outside the schedulable set is a bug in the schedule
    // callback, not in the machine; report it as such instead of letting
    // it surface as a confusing machine-level error.
    if (std::find(Ready.begin(), Ready.end(), C) == Ready.end()) {
      SchedErr = strFormat("schedule callback picked CPU %u which is not "
                           "schedulable (schedulable: %s)",
                           C, intListToString({Ready.begin(), Ready.end()})
                                  .c_str());
      break;
    }
    if (!M.step(C))
      break;
  }
  if (Error)
    *Error = !SchedErr.empty() ? SchedErr : M.error();
  Outcome O;
  O.FinalLog = M.log();
  O.Returns = M.returns();
  return O;
}
