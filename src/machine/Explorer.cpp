//===- machine/Explorer.cpp - Schedule enumeration ---------------------------===//

#include "machine/Explorer.h"

using namespace ccal;

ExploreResult ccal::exploreMachine(MachineConfigPtr Cfg,
                                   const ExploreOptions &Opts) {
  MultiCoreMachine Root(std::move(Cfg));
  return exploreGeneric(Root, Opts);
}

Outcome ccal::runSchedule(
    MachineConfigPtr Cfg,
    const std::function<ThreadId(const std::vector<ThreadId> &, const Log &)>
        &Pick,
    std::string *Error) {
  MultiCoreMachine M(std::move(Cfg));
  while (M.ok()) {
    std::vector<ThreadId> Ready = M.schedulable();
    if (Ready.empty())
      break;
    ThreadId C = Pick(Ready, M.log());
    if (!M.step(C))
      break;
  }
  if (Error)
    *Error = M.error();
  Outcome O;
  O.FinalLog = M.log();
  O.Returns = M.returns();
  return O;
}
