//===- machine/Explorer.cpp - Schedule enumeration ---------------------------===//

#include "machine/Explorer.h"

#include "support/Text.h"

#include <algorithm>

using namespace ccal;

void ccal::detail::publishExploreMetrics(const ExploreResult &Res) {
  obs::counterAdd("explorer.runs", 1);
  obs::counterAdd("explorer.schedules_explored", Res.SchedulesExplored);
  obs::counterAdd("explorer.states_explored", Res.StatesExplored);
  obs::counterAdd("explorer.invariant_checks", Res.InvariantChecks);
  obs::counterAdd("explorer.cache_hits", Res.CacheHits);
  obs::counterAdd("explorer.sleep_skips", Res.PorSleepSkips);
  obs::counterAdd("explorer.steals", Res.Steals);
  obs::counterAdd("explorer.donations", Res.Donations);
  obs::counterAdd("dpor.backtracks", Res.DporBacktracks);
  obs::counterAdd("explorer.readsfrom_branch_points",
                  Res.ReadsFromBranchPoints);
  obs::counterAdd("explorer.readsfrom_variants", Res.ReadsFromVariants);
  obs::counterAdd("cache.evictions", Res.CacheEvictions);
  obs::counterAdd("cache.spill_hits", Res.CacheSpillHits);
  obs::counterAdd("steal.batches", Res.StealBatches);
  if (Res.PorApplied)
    obs::counterAdd("explorer.por_runs", 1);
  if (!Res.Complete) {
    obs::counterAdd("explorer.truncated_runs", 1);
    obs::traceInstant("explorer.truncation: " + Res.Truncation, "explorer");
  }
  if (!Res.Ok)
    obs::counterAdd("explorer.violations", 1);
  // Per-worker balance as gauges (last run wins — the sweep benches read
  // them between runs).
  obs::gaugeSet("explorer.workers",
                static_cast<std::int64_t>(Res.WorkerStates.size()));
  for (size_t I = 0; I != Res.WorkerStates.size(); ++I) {
    std::string W = "explorer.worker." + std::to_string(I);
    obs::gaugeSet(W + ".states",
                  static_cast<std::int64_t>(Res.WorkerStates[I]));
    obs::gaugeSet(W + ".max_stack",
                  static_cast<std::int64_t>(Res.WorkerMaxStack[I]));
  }
}

ExploreResult ccal::exploreMachine(MachineConfigPtr Cfg,
                                   const ExploreOptions &Opts) {
  MultiCoreMachine Root(std::move(Cfg));
  return exploreGeneric(Root, Opts);
}

PorEquivalenceReport ccal::checkPorEquivalence(MachineConfigPtr Cfg,
                                               ExploreOptions Opts) {
  MultiCoreMachine Root(std::move(Cfg));
  return checkPorEquivalence(Root, std::move(Opts));
}

Outcome ccal::runSchedule(
    MachineConfigPtr Cfg,
    const std::function<ThreadId(const std::vector<ThreadId> &, const Log &)>
        &Pick,
    std::string *Error) {
  MultiCoreMachine M(std::move(Cfg));
  std::string SchedErr;
  while (M.ok()) {
    std::vector<ThreadId> Ready = M.schedulable();
    if (Ready.empty())
      break;
    ThreadId C = Pick(Ready, M.log());
    // A pick outside the schedulable set is a bug in the schedule
    // callback, not in the machine; report it as such instead of letting
    // it surface as a confusing machine-level error.
    if (std::find(Ready.begin(), Ready.end(), C) == Ready.end()) {
      SchedErr = strFormat("schedule callback picked CPU %u which is not "
                           "schedulable (schedulable: %s)",
                           C, intListToString({Ready.begin(), Ready.end()})
                                  .c_str());
      break;
    }
    if (!M.step(C))
      break;
  }
  if (Error)
    *Error = !SchedErr.empty() ? SchedErr : M.error();
  Outcome O;
  O.FinalLog = M.log();
  O.Returns = M.returns();
  return O;
}
