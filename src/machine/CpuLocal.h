//===- machine/CpuLocal.h - CPU-local layer interfaces ---------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for CPU-local layer interfaces `Lx86[c]` (§3.2) and for the
/// common log-replay primitive shapes the paper's bottom interfaces use:
/// atomic x86 instructions whose return values are reconstructed from the
/// log by replay functions ("this seemingly inefficient way of treating
/// shared atomic objects is actually great for compositional
/// specification", §7).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_CPULOCAL_H
#define CCAL_MACHINE_CPULOCAL_H

#include "core/LayerInterface.h"

#include <memory>

namespace ccal {

/// Fetch-and-increment over a logical counter: appends `c.Kind(Args)` and
/// returns the number of earlier `Kind` events (so the counter starts at 0
/// and each call fetches the pre-increment value).  This is the paper's
/// `FAI_t`.
PrimSemantics makeFetchIncPrim(std::string Kind);

/// Reads a logical counter: appends `c.Kind(Args)` and returns the number
/// of `CountedKind` events so far.  This is the paper's `get_n`, reading
/// the "now serving" number maintained by `inc_n` events.
PrimSemantics makeReadCounterPrim(std::string Kind, std::string CountedKind);

/// An event-only primitive: appends `c.Kind(Args)` and returns 0 (the
/// paper's `hold`, `inc_n`, `f`, `g`, ...).
PrimSemantics makeEventPrim(std::string Kind);

/// A private no-op primitive returning a constant (useful as a ghost
/// "logical primitive" — the calls §6 measures the cost of).
PrimSemantics makeConstPrim(std::int64_t Value);

/// A private primitive returning the calling CPU/thread id (the paper's
/// `get_tid` / CurID).
PrimSemantics makeSelfIdPrim();

/// Creates an empty mutable CPU-local interface to be populated by the
/// object layers.
std::shared_ptr<LayerInterface> makeInterface(std::string Name);

} // namespace ccal

#endif // CCAL_MACHINE_CPULOCAL_H
