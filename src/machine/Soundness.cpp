//===- machine/Soundness.cpp - Contextual refinement (Thm 2.2) --------------===//

#include "machine/Soundness.h"

#include "support/Text.h"

#include <set>

using namespace ccal;

namespace {

/// Canonical key of an outcome: the (mapped) log plus the client returns.
std::string outcomeKey(const Log &L,
                       const std::map<ThreadId, std::vector<std::int64_t>>
                           &Returns) {
  std::string Key = logToString(L);
  for (const auto &[Tid, Rets] : Returns) {
    Key += strFormat("|%u:", Tid);
    Key += intListToString(Rets);
  }
  return Key;
}

} // namespace

ContextualRefinementReport ccal::checkContextualRefinement(
    MachineConfigPtr Impl, MachineConfigPtr Spec, const EventMap &R,
    const ExploreOptions &ImplOpts, const ExploreOptions &SpecOpts) {
  ContextualRefinementReport Report;

  ExploreResult SpecRes = exploreMachine(std::move(Spec), SpecOpts);
  if (!SpecRes.Ok) {
    Report.Counterexample =
        "specification machine violation: " + SpecRes.Violation;
    return Report;
  }

  std::set<std::string> SpecSet;
  for (const Outcome &O : SpecRes.Outcomes)
    SpecSet.insert(outcomeKey(O.FinalLog, O.Returns));

  // Stream implementation outcomes through the matcher instead of storing
  // them: large schedule spaces would not fit in memory otherwise.
  std::uint64_t ImplOutcomes = 0, Obligations = 0;
  ExploreOptions ImplOptsCorpus = ImplOpts;
  ImplOptsCorpus.CollectCorpus = true;
  ImplOptsCorpus.OnOutcome = [&](const Outcome &O) -> std::string {
    ++ImplOutcomes;
    Log Mapped = R.apply(O.FinalLog);
    if (!SpecSet.count(outcomeKey(Mapped, O.Returns)))
      return strFormat(
          "no specification behavior matches implementation outcome\n"
          "  impl log:   %s\n  mapped (R): %s",
          logToString(O.FinalLog).c_str(), logToString(Mapped).c_str());
    ++Obligations;
    return "";
  };
  ExploreResult ImplRes = exploreMachine(std::move(Impl), ImplOptsCorpus);
  Report.ImplOutcomes = ImplOutcomes;
  Report.SpecOutcomes = SpecRes.Outcomes.size();
  Report.SchedulesExplored =
      ImplRes.SchedulesExplored + SpecRes.SchedulesExplored;
  Report.StatesExplored = ImplRes.StatesExplored + SpecRes.StatesExplored;
  Report.ObligationsChecked = Obligations;
  Report.Corpus = std::move(ImplRes.Corpus);
  if (!ImplRes.Ok) {
    Report.Counterexample =
        "implementation machine violation: " + ImplRes.Violation;
    return Report;
  }
  Report.Holds = true;
  return Report;
}

CertPtr ccal::makeMachineCertificate(
    const std::string &Rule, const std::string &Underlay,
    const std::string &Module, const std::string &Overlay, const EventMap &R,
    const ContextualRefinementReport &Report) {
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = Rule;
  C->Underlay = Underlay;
  C->Module = Module;
  C->Overlay = Overlay;
  C->Relation = R.name();
  C->Valid = Report.Holds;
  C->Obligations = Report.ObligationsChecked;
  C->Runs = Report.SchedulesExplored;
  C->Moves = Report.StatesExplored;
  if (!Report.Holds)
    C->Notes.push_back(Report.Counterexample);
  return C;
}
