//===- machine/Soundness.cpp - Contextual refinement (Thm 2.2) --------------===//

#include "machine/Soundness.h"

#include "cert/CertKeys.h"
#include "cert/CertStore.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Text.h"

using namespace ccal;

namespace {

/// Bump when this checker's semantics change: stored certificates from the
/// old semantics must miss, not lie.
const char RefineCheckerVersion[] = "refine-v1";

JsonValue refinementToPayload(const ContextualRefinementReport &R) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["holds"] = jsonBool(R.Holds);
  V.Fields["spec_complete"] = jsonBool(R.SpecComplete);
  V.Fields["impl_complete"] = jsonBool(R.ImplComplete);
  V.Fields["coverage"] = jsonStr(R.Coverage);
  V.Fields["impl_outcomes"] = jsonUInt(R.ImplOutcomes);
  V.Fields["spec_outcomes"] = jsonUInt(R.SpecOutcomes);
  V.Fields["obligations"] = jsonUInt(R.ObligationsChecked);
  V.Fields["schedules"] = jsonUInt(R.SchedulesExplored);
  V.Fields["states"] = jsonUInt(R.StatesExplored);
  V.Fields["counterexample"] = jsonStr(R.Counterexample);
  V.Fields["corpus"] = cert::logsToJson(R.Corpus);
  return V;
}

bool refinementFromPayload(const JsonValue &V,
                           ContextualRefinementReport &R) {
  const JsonValue *Holds = V.field("holds");
  const JsonValue *SpecC = V.field("spec_complete");
  const JsonValue *ImplC = V.field("impl_complete");
  const JsonValue *Cov = V.field("coverage");
  const JsonValue *IO = V.field("impl_outcomes");
  const JsonValue *SO = V.field("spec_outcomes");
  const JsonValue *Ob = V.field("obligations");
  const JsonValue *Sch = V.field("schedules");
  const JsonValue *St = V.field("states");
  const JsonValue *Cex = V.field("counterexample");
  const JsonValue *Corpus = V.field("corpus");
  if (!Holds || !Holds->isBool() || !SpecC || !SpecC->isBool() || !ImplC ||
      !ImplC->isBool() || !Cov || !Cov->isString() || !IO || !IO->IsInt ||
      !SO || !SO->IsInt || !Ob || !Ob->IsInt || !Sch || !Sch->IsInt ||
      !St || !St->IsInt || !Cex || !Cex->isString() || !Corpus ||
      !cert::logsFromJson(*Corpus, R.Corpus))
    return false;
  R.Holds = Holds->BoolVal;
  R.SpecComplete = SpecC->BoolVal;
  R.ImplComplete = ImplC->BoolVal;
  R.Coverage = Cov->StrVal;
  R.ImplOutcomes = static_cast<std::uint64_t>(IO->IntVal);
  R.SpecOutcomes = static_cast<std::uint64_t>(SO->IntVal);
  R.ObligationsChecked = static_cast<std::uint64_t>(Ob->IntVal);
  R.SchedulesExplored = static_cast<std::uint64_t>(Sch->IntVal);
  R.StatesExplored = static_cast<std::uint64_t>(St->IntVal);
  R.Counterexample = Cex->StrVal;
  return true;
}

} // namespace

namespace {

/// Publishes one refinement check's aggregates; the Explorer has already
/// published the per-exploration counters underneath.
void publishRefinementMetrics(const ContextualRefinementReport &Report) {
  if (!obs::enabled())
    return;
  obs::counterAdd("refine.checks", 1);
  obs::counterAdd("refine.obligations_discharged",
                  Report.ObligationsChecked);
  obs::counterAdd("refine.impl_outcomes", Report.ImplOutcomes);
  obs::counterAdd("refine.spec_outcomes", Report.SpecOutcomes);
  if (Report.Holds)
    obs::counterAdd("refine.holds", 1);
  if (!Report.SpecComplete || !Report.ImplComplete) {
    obs::counterAdd("refine.truncated", 1);
    obs::traceInstant("refine.truncation: " + Report.Coverage, "refine");
  }
}

} // namespace

namespace {

ContextualRefinementReport checkContextualRefinementImpl(
    MachineConfigPtr Impl, MachineConfigPtr Spec, const EventMap &R,
    const ExploreOptions &ImplOpts, const ExploreOptions &SpecOpts) {
  ContextualRefinementReport Report;

  // When either side runs under the partial-order reduction, outcome logs
  // on that side are canonical trace forms; the other side's must be
  // canonicalized the same way (over the SPEC layer's footprints — both
  // keys are spec-level logs after R) or nothing would ever match.
  // Canonicalizing both sides unconditionally in that case keeps the
  // comparison symmetric; with honest spec footprints logs with equal
  // canonical forms are observationally equivalent, so this never accepts
  // an outcome full comparison would reject.
  LayerPtr SpecLayer = Spec->Layer;
  const bool Canon = ImplOpts.Por || SpecOpts.Por;
  auto CanonSpecLog = [&SpecLayer, Canon](Log L) {
    if (!Canon)
      return L;
    return canonicalizeLog(L, [&SpecLayer](KindId Kind) {
      return SpecLayer->footprintOf(Kind);
    });
  };

  ExploreResult SpecRes = [&] {
    obs::Span SpecSpan("refine.spec_explore", "refine");
    return exploreMachine(std::move(Spec), SpecOpts);
  }();
  if (!SpecRes.Ok) {
    Report.Counterexample =
        "specification machine violation: " + SpecRes.Violation;
    return Report;
  }
  // A truncated spec sweep is worse than inconclusive: a capped outcome
  // set (MaxStoredOutcomes) makes genuinely-refining implementation
  // outcomes look like counterexamples.  Fail closed before comparing.
  if (!SpecRes.Complete) {
    Report.Coverage = "spec exploration truncated: " + SpecRes.Truncation;
    Report.Counterexample =
        "specification exploration is incomplete (" + SpecRes.Truncation +
        "): the spec outcome set may be silently capped, so any mismatch "
        "below would be a false counterexample and any match proves "
        "nothing; raise the truncating budget and re-run";
    return Report;
  }
  Report.SpecComplete = true;

  OutcomeSet SpecSet;
  for (const Outcome &O : SpecRes.Outcomes) {
    Outcome Key;
    Key.FinalLog = CanonSpecLog(O.FinalLog);
    Key.Returns = O.Returns;
    SpecSet.insert(Key);
  }

  // Stream implementation outcomes through the matcher instead of storing
  // them: large schedule spaces would not fit in memory otherwise.
  std::uint64_t ImplOutcomes = 0, Obligations = 0;
  ExploreOptions ImplOptsCorpus = ImplOpts;
  ImplOptsCorpus.CollectCorpus = true;
  ImplOptsCorpus.OnOutcome = [&](const Outcome &O) -> std::string {
    ++ImplOutcomes;
    Log Mapped = R.apply(O.FinalLog);
    Outcome Key;
    Key.FinalLog = CanonSpecLog(Mapped);
    Key.Returns = O.Returns;
    if (!SpecSet.contains(Key))
      return strFormat(
          "no specification behavior matches implementation outcome\n"
          "  impl log:   %s\n  mapped (R): %s",
          logToString(O.FinalLog).c_str(), logToString(Mapped).c_str());
    ++Obligations;
    return "";
  };
  ExploreResult ImplRes = [&] {
    obs::Span ImplSpan("refine.impl_explore", "refine");
    return exploreMachine(std::move(Impl), ImplOptsCorpus);
  }();
  Report.ImplOutcomes = ImplOutcomes;
  Report.SpecOutcomes = SpecRes.Outcomes.size();
  Report.SchedulesExplored =
      ImplRes.SchedulesExplored + SpecRes.SchedulesExplored;
  Report.StatesExplored = ImplRes.StatesExplored + SpecRes.StatesExplored;
  Report.ObligationsChecked = Obligations;
  Report.Corpus = std::move(ImplRes.Corpus);
  if (!ImplRes.Ok) {
    Report.Counterexample =
        "implementation machine violation: " + ImplRes.Violation;
    return Report;
  }
  // Obligations cover only the explored prefix of a truncated sweep; the
  // refinement statement quantifies over every schedule, so Holds must
  // stay false.
  if (!ImplRes.Complete) {
    Report.Coverage = "impl exploration truncated: " + ImplRes.Truncation;
    Report.Counterexample =
        "implementation exploration is incomplete (" + ImplRes.Truncation +
        "): only a prefix of the schedule space was matched; raise the "
        "truncating budget and re-run";
    return Report;
  }
  Report.ImplComplete = true;
  Report.Coverage = "exhaustive";
  Report.Holds = true;
  return Report;
}

} // namespace

ContextualRefinementReport ccal::checkContextualRefinement(
    MachineConfigPtr Impl, MachineConfigPtr Spec, const EventMap &R,
    const ExploreOptions &ImplOpts, const ExploreOptions &SpecOpts) {
  obs::Span CheckSpan("refine.check", "refine");

  // Load-or-recheck front-end.  Uncacheable checks — store disabled, or
  // an anonymous invariant the key cannot see — run exactly as before.
  cert::CertStore *Store = cert::store();
  if (!Store || !cert::cacheableOptions(ImplOpts) ||
      !cert::cacheableOptions(SpecOpts)) {
    ContextualRefinementReport Report = checkContextualRefinementImpl(
        std::move(Impl), std::move(Spec), R, ImplOpts, SpecOpts);
    publishRefinementMetrics(Report);
    return Report;
  }

  cert::CertKey Key;
  Key.Checker = "refine";
  Key.Version = RefineCheckerVersion;
  Key.Desc = Impl->Name + " refines " + Spec->Name + " via " + R.name();
  Hasher H;
  cert::keyAddMachineConfig(H, *Impl);
  cert::keyAddMachineConfig(H, *Spec);
  H.str(R.name());
  cert::keyAddExploreOptions(H, ImplOpts);
  cert::keyAddExploreOptions(H, SpecOpts);
  Key.Hash = H.value();

  ContextualRefinementReport Report;
  bool Hit = Store->getOrCheck(
      Key,
      [&](const cert::CertStore::Entry &E) {
        return refinementFromPayload(E.Payload, Report);
      },
      [&] {
        Report = checkContextualRefinementImpl(Impl, Spec, R, ImplOpts,
                                               SpecOpts);
        publishRefinementMetrics(Report);
        cert::CertStore::Entry Out;
        Out.Cert = makeMachineCertificate("Soundness", Impl->Layer->name(),
                                          Impl->Name, Spec->Layer->name(),
                                          R, Report);
        Out.Payload = refinementToPayload(Report);
        return Out;
      });
  // A hit re-runs nothing: only the check-happened counter moves, never
  // the exploration counters (which is what the warm-cache CI asserts).
  if (Hit && obs::enabled())
    obs::counterAdd("refine.checks", 1);
  return Report;
}

CertPtr ccal::makeMachineCertificate(
    const std::string &Rule, const std::string &Underlay,
    const std::string &Module, const std::string &Overlay, const EventMap &R,
    const ContextualRefinementReport &Report) {
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = Rule;
  C->Underlay = Underlay;
  C->Module = Module;
  C->Overlay = Overlay;
  C->Relation = R.name();
  // Belt and braces: the checker already refuses Holds on a truncated
  // sweep, but a certificate must be impossible to mint Valid from one
  // even if a future checker forgets.
  C->CoverageComplete = Report.SpecComplete && Report.ImplComplete;
  C->Coverage = Report.Coverage;
  C->Valid = Report.Holds && C->CoverageComplete;
  C->Obligations = Report.ObligationsChecked;
  C->Runs = Report.SchedulesExplored;
  C->Moves = Report.StatesExplored;
  if (!Report.Holds)
    C->Notes.push_back(Report.Counterexample);
  return C;
}
