//===- machine/Explorer.h - Schedule enumeration ---------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Explorer enumerates *all* schedules of a machine up to a fairness
/// bound, by depth-first search over machine snapshots.  This is the
/// executable counterpart of the paper's universal quantification over
/// environment contexts / schedulers: a property checked by the Explorer
/// holds for every interleaving the bound admits.
///
/// The fairness bound caps how many consecutive steps one participant may
/// take while others are runnable — the finite form of the paper's fair
/// hardware scheduler assumption (§3.2), without which a spinning CPU
/// would generate infinitely many schedules.
///
/// The DFS is generic over the machine: the multicore machine (§3) and the
/// multithreaded machine (§5) both instantiate it.  A machine must be
/// copyable and provide ok()/error(), allIdle(), schedulable(), step(),
/// log(), and returns().
///
/// Machines additionally providing stepFootprint()/eventFootprint() (see
/// core/Footprint.h) unlock the opt-in partial-order reduction
/// (GenericExploreOptions::Por): source-set DPOR (Abdulla et al., Optimal
/// Dynamic Partial Order Reduction) over the footprint-conflict
/// independence relation.  Instead of statically enumerating every
/// schedulable child, each node starts with ONE child and grows a
/// backtrack (source) set on demand: whenever an explored step races with
/// an earlier event on the DFS path, the reversal is scheduled at the
/// race's pre-state — unless the source-set check shows an already-
/// scheduled child covers it.  Godefroid-style sleep sets prune siblings
/// of already-explored commuting subtrees on top, and outcomes are
/// recorded with canonical (Mazurkiewicz-trace) logs so the deduplicated
/// outcome set is identical to full exploration's.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_EXPLORER_H
#define CCAL_MACHINE_EXPLORER_H

#include "core/Footprint.h"
#include "machine/MultiCore.h"
#include "machine/StateCache.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace ccal {

/// One terminal execution.
struct Outcome {
  Log FinalLog;
  std::map<ThreadId, std::vector<std::int64_t>> Returns;
};

/// Exploration knobs, parameterized by the machine type so invariants can
/// inspect the concrete machine.
template <typename MachineT> struct GenericExploreOptions {
  /// Max consecutive steps of one participant while another is schedulable
  /// (the paper's "any CPU can be scheduled within m steps").  Ignored
  /// under Por — see there.
  unsigned FairnessBound = 6;

  /// Budgets; exceeding MaxSteps along a path is reported as divergence.
  std::uint64_t MaxSchedules = 1u << 22;
  std::uint64_t MaxSteps = 4096;

  /// External cancellation: when set, every worker polls this flag at
  /// node expansion (one relaxed load) and a raised flag truncates the
  /// search through the SAME fail-closed path as an exhausted budget —
  /// Complete=false with CancelReason in Truncation — so checkers refuse
  /// Holds and the certificate store never persists the partial evidence.
  /// This is the certd daemon's per-job timeout hook; excluded from
  /// certificate keys (keyAddExploreOptions) because cancellation changes
  /// when a run stops, never which outcomes exist.
  std::shared_ptr<std::atomic<bool>> Cancel;

  /// Truncation text recorded when Cancel fires (name WHO cancelled —
  /// "job timeout (2000 ms)" — so the diagnostic a client sees is
  /// actionable).
  std::string CancelReason = "cancelled by caller";

  /// Partial-order reduction: source-set DPOR with sleep sets over the
  /// machine's declared step footprints (see the file comment).  Opt-in,
  /// and changes the exploration regime in four documented ways:
  ///
  ///  - FairnessBound is IGNORED.  The consecutive-steps filter is a
  ///    property of one linearization, not of its Mazurkiewicz trace: the
  ///    interleaving POR explores on behalf of a skipped one can contain
  ///    a longer consecutive run and be pruned even though the skipped
  ///    interleaving would not be, losing outcomes.  Bound spinning
  ///    workloads with MaxParticipantSteps instead, which is
  ///    trace-invariant (a per-participant total is the same in every
  ///    linearization of a trace).
  ///  - The StateCache runs a stricter protocol.  A hit must assert the
  ///    first visit explored every schedule admissible from the revisit,
  ///    so entries are inserted only for FULLY explored subtrees and
  ///    carry their visit's sleep/tally context plus a subtree step
  ///    summary; a revisit is pruned only when the entry's context is no
  ///    more pruned than its own, and the summary's race detections are
  ///    replayed against the revisit's prefix (see StateCache.h).  When a
  ///    subtree's summary overflows, that state is simply not cached.
  ///  - Work sharing is DISABLED (donations stop; extra workers idle).
  ///    DPOR's race detection inserts backtrack points into the ANCESTORS
  ///    of the step being explored, which must therefore still sit on the
  ///    exploring worker's own stack — a donated subtree would race-walk
  ///    into frames its donor still owns.  Run POR single-threaded.
  ///  - Outcome logs are CANONICALIZED (see canonicalizeLog): every
  ///    shared step appends a participant-tagged event, so raw final logs
  ///    are in bijection with schedules and POR would otherwise lose
  ///    outcomes by construction.  Canonical logs identify exactly the
  ///    schedules POR deduplicates.
  ///
  /// On machines without stepFootprint()/eventFootprint() the reduction
  /// silently degrades to full exploration (ExploreResult::PorApplied
  /// reports which happened).  Soundness rests on honest footprints;
  /// checkPorEquivalence verifies it differentially.  Over-approximated
  /// footprints (up to Footprint::opaque) stay sound and degrade toward
  /// full exploration — exactly where the POR-aware StateCache earns its
  /// keep, by pruning the reconvergent states DPOR cannot prove
  /// commuting.
  bool Por = false;

  /// Cap on the TOTAL steps any one participant takes along a path; 0 is
  /// unlimited.  Exceeding it prunes silently, like the fairness bound —
  /// it is the trace-invariant divergence bound to use with Por (and is
  /// honored without Por too, so differential runs prune identically).
  std::uint64_t MaxParticipantSteps = 0;

  /// Invariant checked after every machine step; a non-empty return is a
  /// violation (used for mutual exclusion, guarantee conditions, ...).
  std::function<std::string(const MachineT &)> Invariant;

  /// Stable name identifying Invariant's semantics in certificate-store
  /// keys ("ticket.mutex", ...).  The function itself is opaque, so the
  /// store can only key what is named: a check whose Invariant is set
  /// without a name is UNCACHEABLE and bypasses the store (fail closed).
  /// Renaming the invariant — or keeping the name while changing what it
  /// checks — is a semantic change; the latter requires clearing the
  /// cache or bumping the checker version.
  std::string InvariantName;

  /// When true, terminal logs (and sampled intermediate logs) are retained
  /// in ExploreResult::Corpus for compat implication checking, capped at
  /// MaxCorpus entries.
  bool CollectCorpus = false;
  size_t MaxCorpus = 2048;

  /// When set, every (deduplicated) terminal outcome is passed to this
  /// callback *instead of* being stored in ExploreResult::Outcomes —
  /// essential for large schedule spaces.  Returning a non-empty string
  /// aborts the exploration with that violation.
  std::function<std::string(const Outcome &)> OnOutcome;

  /// Cap on stored outcomes when OnOutcome is not set.
  size_t MaxStoredOutcomes = 1u << 18;

  /// Worker threads sharing the search frontier.  1 (the default) runs the
  /// exact sequential DFS and produces bit-identical results to the
  /// single-threaded Explorer; 0 means one worker per hardware thread.
  /// With more than one worker, Invariant must be safe to call
  /// concurrently on distinct machine snapshots (log-replay invariants
  /// are); OnOutcome calls are serialized by the Explorer itself.
  unsigned Threads = 1;

  /// When true, prune states the search has already visited (snapshot
  /// hash, with full structural comparison on hash collision — never a
  /// silent merge).  Sound because a machine snapshot determines the
  /// entire subtree: a revisit is pruned only when the first visit's
  /// fairness context was at least as permissive (same last participant,
  /// no larger consecutive-run count) and its remaining step budget at
  /// least as large, so every schedule admissible from the revisit was
  /// already explored from the first visit.  Off by default: pruning
  /// changes SchedulesExplored/StatesExplored (they then count *distinct*
  /// states) and resolves log-invisible cycles as termination rather than
  /// a step-budget divergence report.
  bool StateCache = false;

  /// Cap on cached snapshots; past it the search stays sound but stops
  /// remembering new states.
  size_t MaxStateCache = 1u << 20;

  /// Byte budget for the cache's resident snapshots (approximate,
  /// process-wide across worker threads); past it least-recently-used
  /// entries are evicted, counted in ExploreResult::CacheEvictions.  0
  /// (the default) never evicts, preserving the unbounded semantics.
  size_t CacheBudgetBytes = 0;

  /// When non-empty, fingerprints of evicted plain-DFS cache entries
  /// spill to <dir>/statecache.spill (written atomically, temp+rename)
  /// and keep serving revisit pruning after their snapshots are gone.
  /// OPT-IN and off by default: a fingerprint hit cannot structurally
  /// compare snapshots, so a 64-bit collision could prune an unexplored
  /// state — acceptable for bug hunting, not for certification runs.
  std::string CacheSpillDir;

  /// Frames moved per donation when work sharing rebalances (see
  /// ExploreResult::Donations).  Donating single frames made donors stop
  /// for the injector lock on nearly every expansion under hungry
  /// workers — the bench regression this batching fixes; donations also
  /// only happen when the injector is observed empty.
  unsigned StealBatch = 8;

  /// Publish this run's aggregate counters (schedules, states, sleep-set
  /// prunes, cache hits, steals, per-worker balance) into the obs metrics
  /// registry and record an "explorer.explore" span.  Setting this
  /// force-enables the observability layer (obs::setEnabled) for the
  /// process, like the CCAL_TRACE environment toggle; when neither is on,
  /// instrumentation costs one relaxed atomic load per exploration.  The
  /// counters are published once at the end of the run from the
  /// per-worker shards the search keeps anyway, so the DFS hot loop is
  /// untouched either way.
  bool Metrics = false;
};

/// Aggregate result over all schedules.
struct ExploreResult {
  bool Ok = true;

  /// False when a budget (MaxSchedules, MaxStoredOutcomes) truncated the
  /// search; obligations then cover only the explored prefix, and no
  /// checker may report Holds from such a result.
  bool Complete = true;

  /// Which budget truncated the search ("" when Complete).
  std::string Truncation;

  /// True when the partial-order reduction was actually active (Por
  /// requested and the machine provides footprints); outcome logs are
  /// then canonical trace forms rather than raw linearizations.
  bool PorApplied = false;

  std::uint64_t PorSleepSkips = 0; ///< children skipped via sleep sets

  /// Backtrack points DPOR's race detection inserted into ancestor
  /// frames' source sets (one count per NEW entry; re-detections of an
  /// already-scheduled reversal are free).
  std::uint64_t DporBacktracks = 0;

  std::string Violation; ///< first violation with its log

  std::vector<Outcome> Outcomes; ///< one per schedule (deduplicated)
  std::uint64_t SchedulesExplored = 0;
  std::uint64_t StatesExplored = 0;
  std::uint64_t InvariantChecks = 0;
  std::uint64_t MaxLogLen = 0;
  std::uint64_t CacheHits = 0;      ///< states pruned by the StateCache
  std::uint64_t CacheEvictions = 0; ///< LRU evictions (CacheBudgetBytes)
  std::uint64_t CacheSpillHits = 0; ///< revisits pruned via spilled records

  /// Weak-memory enumeration telemetry: a branch point is a candidate
  /// step whose reads-from menu had more than one entry, and Variants
  /// sums those menus — so Variants/BranchPoints is the average branching
  /// factor the memory model imposed on top of the schedule tree.  Both
  /// stay 0 under SC (every menu is a singleton).
  std::uint64_t ReadsFromBranchPoints = 0;
  std::uint64_t ReadsFromVariants = 0;

  /// Work-sharing telemetry.  Donations and Steals measure DISTINCT
  /// events on the two sides of the injector: Donations counts frames a
  /// busy worker moved IN, Steals counts frames idle workers took OUT —
  /// excluding the root frame's initial pull, which seeds the search
  /// rather than rebalancing it (the same exemption before and after
  /// batching: the seed is the one pull that exists with no donation).
  /// On a run that drains its injector the two are equal by conservation;
  /// they differ when an early abort strands donated frames.  A donation
  /// moves up to StealBatch frames but counts each frame once;
  /// StealBatches counts the batches, so Donations/StealBatches is the
  /// realized batch size.  All are 0 on single-threaded runs.
  std::uint64_t Donations = 0;
  std::uint64_t Steals = 0;
  std::uint64_t StealBatches = 0;

  /// States expanded by each worker (index = worker id) — the per-worker
  /// balance bench_explorer reports; WorkerMaxStack is the deepest DFS
  /// stack each worker held (its peak queue depth).
  std::vector<std::uint64_t> WorkerStates;
  std::vector<std::uint64_t> WorkerMaxStack;

  std::vector<Log> Corpus;
};

/// Sound outcome set with structural comparison.  An earlier version
/// hashed returns and thread ids by chain-multiplying with no field
/// separators, so e.g. returns {1:[], 2:[]} and {1:[2]} hashed equal over
/// the same log and one outcome was silently dropped — an unsoundness in
/// every checker built on the Explorer.  This version mixes each field
/// through hashMix64 with length prefixes, and resolves residual 64-bit
/// collisions by structural comparison instead of merging.  It is also
/// the outcome-matching structure of the refinement checkers, replacing
/// their former string keys (log text joined with separators that can
/// occur in the data — ambiguous, and O(log length) per comparison even
/// on hash-distinguishable outcomes).
class OutcomeSet {
public:
  static std::uint64_t hash(const Outcome &O) {
    std::uint64_t H = hashLog(O.FinalLog);
    H = hashCombine(H, O.Returns.size());
    for (const auto &[Tid, Rets] : O.Returns) {
      H = hashCombine(H, Tid);
      H = hashCombine(H, Rets.size());
      for (std::int64_t R : Rets)
        H = hashCombine(H, static_cast<std::uint64_t>(R));
    }
    return H;
  }

  static bool same(const Outcome &A, const Outcome &B) {
    return A.FinalLog == B.FinalLog && A.Returns == B.Returns;
  }

  /// True when \p O was not seen before.
  bool insert(const Outcome &O) {
    std::vector<Outcome> &Bucket = Seen[hash(O)];
    for (const Outcome &Prev : Bucket)
      if (same(Prev, O))
        return false;
    Bucket.push_back(O);
    ++Count;
    return true;
  }

  /// True when \p O is in the set.
  bool contains(const Outcome &O) const {
    auto It = Seen.find(hash(O));
    if (It == Seen.end())
      return false;
    for (const Outcome &Prev : It->second)
      if (same(Prev, O))
        return true;
    return false;
  }

  size_t size() const { return Count; }

private:
  std::unordered_map<std::uint64_t, std::vector<Outcome>> Seen;
  size_t Count = 0;
};

namespace detail {

/// Detects machines providing snapshotHash()/sameSnapshot(); the
/// StateCache option silently degrades to no caching without them.
template <typename M, typename = void>
struct MachineHasSnapshot : std::false_type {};
template <typename M>
struct MachineHasSnapshot<
    M, std::void_t<decltype(std::declval<const M &>().snapshotHash()),
                   decltype(std::declval<const M &>().sameSnapshot(
                       std::declval<const M &>()))>> : std::true_type {};

/// Detects machines providing stepFootprint()/eventFootprint(); the Por
/// option degrades to full exploration without them.
template <typename M, typename = void>
struct MachineHasFootprint : std::false_type {};
template <typename M>
struct MachineHasFootprint<
    M, std::void_t<decltype(std::declval<const M &>().stepFootprint(
                       std::declval<ThreadId>())),
                   decltype(std::declval<const M &>().eventFootprint(
                       std::declval<const Event &>()))>> : std::true_type {};

/// Detects machines providing stepVariants()/step(Tid, Variant) — a weak
/// memory model whose steps have several reads-from choices.  Without
/// them every step has exactly one variant (classic SC exploration, zero
/// overhead on the hot path).
template <typename M, typename = void>
struct MachineHasVariants : std::false_type {};
template <typename M>
struct MachineHasVariants<
    M, std::void_t<decltype(std::declval<const M &>().stepVariants(
                       std::declval<ThreadId>())),
                   decltype(std::declval<M &>().step(
                       std::declval<ThreadId>(),
                       std::declval<unsigned>()))>> : std::true_type {};

/// Former name of OutcomeSet, kept for the Explorer's internal use.
using OutcomeDeduper = OutcomeSet;

/// The search engine shared by all machine types: an explicit-stack DFS
/// run by a pool of workers over a shared frontier.
///
/// Each worker owns a stack of frames; a frame is one machine snapshot
/// plus the iteration state over its schedulable children, so the top of
/// the stack advances exactly like the recursive formulation (a child
/// subtree is fully explored before the next sibling starts).  Work
/// sharing: when some worker is idle, a busy worker moves the
/// *shallowest* frame with unvisited children — the largest pending
/// subtree — into the shared injector deque, where an idle worker picks
/// it up.  Every node is expanded exactly once, so all counters are
/// schedule-deterministic; only the order of Outcomes/Corpus depends on
/// the number of workers.
///
/// A single shared first-violation slot plus an atomic stop flag give
/// early abort: the first worker to find a violation wins, everyone else
/// drains.  With one worker the engine visits states in exactly the
/// recursive order and produces bit-identical results to the sequential
/// Explorer.
template <typename MachineT> class GenericDfs {
public:
  using Options = GenericExploreOptions<MachineT>;

  GenericDfs(const Options &Opts, unsigned Workers)
      : Opts(Opts), Workers(Workers),
        PorOn(Opts.Por && MachineHasFootprint<MachineT>::value),
        Shards(Workers) {}

  ExploreResult run(const MachineT &Root) {
    ExploreResult Res;
    if (!Root.ok()) {
      Res.Ok = false;
      Res.Violation = Root.error();
      return Res;
    }
    if (Opts.StateCache)
      Cache.configure(Opts.MaxStateCache, Opts.CacheBudgetBytes,
                      Opts.CacheSpillDir);
    Injector.emplace_back(Root, /*LastId=*/~0u, /*Consec=*/0, /*Depth=*/0);
    InjectorSize.store(1, std::memory_order_relaxed);
    if (Workers == 1) {
      worker(0);
    } else {
      std::vector<std::thread> Pool;
      Pool.reserve(Workers);
      for (unsigned I = 0; I != Workers; ++I)
        Pool.emplace_back([this, I] { worker(I); });
      for (std::thread &T : Pool)
        T.join();
    }
    Res.Ok = !Violated;
    Res.Violation = std::move(Violation);
    Res.Complete = Complete;
    Res.Truncation = std::move(Truncation);
    Res.PorApplied = PorOn;
    Res.SchedulesExplored = Schedules.load();
    std::uint64_t Pulls = 0;
    for (const Shard &S : Shards) {
      Res.StatesExplored += S.States;
      Res.InvariantChecks += S.InvariantChecks;
      Res.CacheHits += S.CacheHits;
      Res.PorSleepSkips += S.PorSkips;
      Res.DporBacktracks += S.DporBacktracks;
      Res.ReadsFromBranchPoints += S.RfBranchPoints;
      Res.ReadsFromVariants += S.RfVariants;
      Res.Donations += S.Donations;
      Res.StealBatches += S.DonationBatches;
      Pulls += S.Pulls;
      Res.WorkerStates.push_back(S.States);
      Res.WorkerMaxStack.push_back(S.MaxStack);
      Res.MaxLogLen = std::max(Res.MaxLogLen, S.MaxLogLen);
    }
    // The root frame's pull is a seed, not a steal (see
    // ExploreResult::Donations — the seed is the one pull with no
    // matching donation, at every batch size).
    Res.Steals = Pulls > 0 ? Pulls - 1 : 0;
    Res.CacheEvictions = Cache.evictions();
    Res.CacheSpillHits = Cache.spillHits();
    mergeShardResults(Res);
    return Res;
  }

private:
  /// A sleep-set entry: participant Tid's next step (with footprint Foot)
  /// is already covered — a sibling subtree explored it first and every
  /// continuation interleaving it later commutes into that subtree.
  using SleepEntry = ParticipantFootprint;

  /// One DFS node: a machine snapshot plus sibling-iteration state.
  struct Frame {
    MachineT M;
    ThreadId LastId;
    unsigned Consec;
    std::uint64_t Depth;
    /// The full schedulable set (fairness reads its size even after some
    /// children have been visited or the frame has been donated).
    std::vector<ThreadId> Ready;
    size_t NextChild = 0;
    bool Expanded = false;

    /// Reads-from choices per Ready entry (weak memory models only; empty
    /// means one variant each).  Every variant of a candidate is explored
    /// before the candidate cursor advances, so the machine-move and
    /// donation conditions on NextChild/NextBt stay valid unchanged.
    std::vector<unsigned> ReadyVars;
    unsigned NextVariant = 0; ///< variant cursor within Ready[NextChild]
    unsigned BtVariant = 0;   ///< variant cursor within Backtrack[NextBt]

    // POR state (filled only when the reduction is on).
    Footprint StepFoot;               ///< footprint of the step INTO this node
    std::vector<SleepEntry> Sleep;    ///< asleep at this node
    std::vector<SleepEntry> DoneSibs; ///< children already pushed here
    std::vector<Footprint> ReadyFoot; ///< footprint per Ready entry

    /// DPOR source set: indices into Ready, seeded with one child at
    /// expansion and grown by race detection in the subtree below (so it
    /// can grow while this frame is NOT on top of the stack — which is
    /// why iteration is by cursor, not by a precomputed child list, and
    /// why the machine-move last-child optimization is off under POR).
    std::vector<size_t> Backtrack;
    size_t NextBt = 0;

    /// Deduped (participant, footprint) summary of every step strictly
    /// below this node, folded up at child pops; the payload a cache
    /// entry needs for race replay.  Capped — overflow makes this state
    /// (and its ancestors) uncacheable, never unsound.
    std::vector<SleepEntry> SubFoots;
    bool SubOverflow = false;
    bool CacheEligible = false; ///< subtree fully explored, OK to cache

    /// Total steps per participant along the path to this node (kept only
    /// when MaxParticipantSteps bounds paths).
    std::map<ThreadId, std::uint64_t> StepTally;

    Frame(MachineT M, ThreadId LastId, unsigned Consec, std::uint64_t Depth)
        : M(std::move(M)), LastId(LastId), Consec(Consec), Depth(Depth) {}
  };

  /// Per-worker counters AND result buffers, merged after the join (no
  /// hot-path sharing).  The stored-outcome path deduplicates into the
  /// worker's own Dedup/Outcomes/Corpus, so recording a terminal outcome
  /// takes no lock at all; cross-worker duplicates collapse at the join
  /// (mergeShardResults).  With one worker this is exactly the former
  /// globally-locked recording, entry for entry.
  struct Shard {
    std::uint64_t States = 0;
    std::uint64_t InvariantChecks = 0;
    std::uint64_t MaxLogLen = 0;
    std::uint64_t CacheHits = 0;
    std::uint64_t PorSkips = 0;
    std::uint64_t DporBacktracks = 0;
    std::uint64_t RfBranchPoints = 0;  ///< candidates with >1 reads-from
    std::uint64_t RfVariants = 0;      ///< menu entries over those
    std::uint64_t Pulls = 0;           ///< frames taken from the injector
    std::uint64_t Donations = 0;       ///< frames moved into the injector
    std::uint64_t DonationBatches = 0; ///< donate() calls that moved frames
    std::uint64_t MaxStack = 0;        ///< deepest DFS stack held

    OutcomeDeduper Dedup;          ///< this worker's distinct outcomes
    std::vector<Outcome> Outcomes; ///< stored-path results, search order
    std::vector<Log> Corpus;       ///< terminal + sampled logs
    bool StoreTruncated = false;   ///< hit MaxStoredOutcomes locally
  };

  void worker(unsigned Idx) {
    Shard &S = Shards[Idx];
    std::vector<Frame> Stack;
    while (true) {
      if (Stop.load(std::memory_order_relaxed))
        Stack.clear();
      if (Stack.empty()) {
        if (!pullWork(Stack))
          return;
        ++S.Pulls;
        continue;
      }
      // Donations are gated on an EMPTY injector (the atomic mirror): a
      // hungry count alone made donors push one frame per loop iteration
      // faster than thieves could drain them — the single-frame churn
      // behind the old sub-1.0 multi-thread speedups.  Off under POR
      // (see GenericExploreOptions::Por: backtrack insertion needs the
      // full ancestor chain on one stack).
      if (Workers > 1 && !PorOn &&
          Hungry.load(std::memory_order_relaxed) > 0 &&
          InjectorSize.load(std::memory_order_relaxed) == 0)
        donate(Stack, S);
      Frame &Top = Stack.back();
      if (!Top.Expanded) {
        if (!expand(Stack, Top, S)) {
          popFrame(Stack);
          continue;
        }
      }
      size_t ChildIdx;
      unsigned Variant = 0;
      if (PorOn) {
        // DPOR: iterate the backtrack (source) set by cursor — race
        // detection below this frame appends to it while it is buried.
        // Entries found asleep when their turn comes are covered by an
        // explored sibling subtree: prune, like the static sleep-set
        // skip.  Every reads-from variant of a candidate is consumed
        // before the cursor advances (asleep is decided once per
        // candidate, at variant 0 — sleeping covers the whole menu, since
        // independent steps preserve variant menus).
        bool Have = false;
        while (Top.NextBt < Top.Backtrack.size()) {
          size_t Cand = Top.Backtrack[Top.NextBt];
          if (Top.BtVariant == 0 && asleep(Top, Top.Ready[Cand])) {
            ++S.PorSkips;
            ++Top.NextBt;
            continue;
          }
          ChildIdx = Cand;
          Variant = Top.BtVariant;
          if (++Top.BtVariant >= variantsOf(Top, Cand)) {
            ++Top.NextBt;
            Top.BtVariant = 0;
          }
          Have = true;
          break;
        }
        if (!Have) {
          popFrame(Stack);
          continue;
        }
      } else {
        if (Top.NextChild >= Top.Ready.size()) {
          popFrame(Stack);
          continue;
        }
        ChildIdx = Top.NextChild;
        // Fairness: one participant may not run more than FairnessBound
        // consecutive steps while someone else is waiting.  Skipped under
        // Por — the filter is linearization-dependent, which breaks the
        // coverage argument (see GenericExploreOptions::Por).  Decided
        // once per candidate, at variant 0.
        if (Top.NextVariant == 0 && Top.Ready.size() > 1 &&
            Top.Ready[ChildIdx] == Top.LastId &&
            Top.Consec >= Opts.FairnessBound) {
          ++Top.NextChild;
          continue;
        }
        Variant = Top.NextVariant;
        if (++Top.NextVariant >= variantsOf(Top, ChildIdx)) {
          ++Top.NextChild;
          Top.NextVariant = 0;
        }
      }
      ThreadId C = Top.Ready[ChildIdx];
      // Trace-invariant divergence bound: a per-participant total is the
      // same in every linearization, so this prunes whole traces and is
      // safe alongside the reduction — PROVIDED the reduction reacts.
      // DPOR's coverage argument assumes every scheduled child subtree is
      // fully explored so the races inside it surface; a child pruned by
      // the cap surfaces nothing, and the reversals it would have
      // demanded die with it (concretely: a spinning acquirer dead-ends
      // at the cap and no race ever schedules the lock holder).  Like
      // the blocked-participant case, collapse the frame to all enabled
      // alternatives; their subtrees re-detect whatever the pruned one
      // hid.
      if (Opts.MaxParticipantSteps != 0 &&
          tallyOf(Top, C) >= Opts.MaxParticipantSteps) {
        // Skip the candidate's remaining variants too — the cap prunes
        // the participant, not one reads-from choice.
        if (PorOn) {
          for (size_t R = 0; R != Top.Ready.size(); ++R)
            addBacktrack(Top, R, S);
          if (Top.BtVariant != 0) {
            ++Top.NextBt;
            Top.BtVariant = 0;
          }
        } else if (Top.NextVariant != 0) {
          ++Top.NextChild;
          Top.NextVariant = 0;
        }
        continue;
      }
      // The final child may take the parent's machine by move: NextChild
      // is already past the end, so the frame can only be popped from here
      // on (donate() skips child-less frames) and its machine is dead
      // weight.  Saves one full machine copy per interior node.  Not
      // under POR: race detection can schedule NEW children on a frame
      // whose cursor looked exhausted, and the machine must survive for
      // them (and for the cache insert at pop).
      const bool LastChild = !PorOn && Top.NextChild >= Top.Ready.size();
      Frame Child(LastChild ? MachineT(std::move(Top.M)) : MachineT(Top.M),
                  C, C == Top.LastId ? Top.Consec + 1 : 1, Top.Depth + 1);
      if (PorOn) {
        const Footprint &CF = Top.ReadyFoot[ChildIdx];
        Child.StepFoot = CF;
        childSleep(Top, C, CF, Child.Sleep);
        // Added at push (not pop): coverage only needs this subtree to be
        // explored *eventually*, and an abort that leaves it unexplored
        // also reports Complete=false, so nothing unsound is claimed.
        // Once per candidate: the footprint — and hence the sleep and
        // race structure — is shared by all its reads-from variants.
        if (Variant == 0) {
          Top.DoneSibs.push_back(SleepEntry{C, CF});
          // Source-set DPOR race detection: schedule the reversal of
          // every race this step closes with an event already on the
          // path.
          dporRaces(Stack, C, CF, /*Refine=*/true, S);
        }
      }
      if (Opts.MaxParticipantSteps != 0) {
        Child.StepTally = Top.StepTally;
        ++Child.StepTally[C];
      }
      if (!stepOn(Child.M, C, Variant)) {
        violate(Child.M, Child.M.error());
        continue;
      }
      if (Opts.CollectCorpus && (Top.Depth & 3) == 0)
        pushCorpus(Child.M.log(), S);
      Stack.push_back(std::move(Child));
      S.MaxStack = std::max(S.MaxStack,
                            static_cast<std::uint64_t>(Stack.size()));
    }
  }

  /// First visit of a node: budget, cache, invariant, terminal, and depth
  /// checks.  True when the node has children to iterate.  Takes the
  /// whole stack (F is its top) because a POR cache hit replays the
  /// pruned subtree's race detection against the current prefix.
  bool expand(std::vector<Frame> &Stack, Frame &F, Shard &S) {
    if (Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> L(ResMu);
        Complete = false;
        if (Truncation.empty())
          Truncation = Opts.CancelReason;
      }
      stopAll();
      return false;
    }
    if (Schedules.load(std::memory_order_relaxed) >= Opts.MaxSchedules) {
      {
        std::lock_guard<std::mutex> L(ResMu);
        Complete = false;
        if (Truncation.empty())
          Truncation = "MaxSchedules budget (" +
                       std::to_string(Opts.MaxSchedules) + ") exhausted";
      }
      stopAll();
      return false;
    }
    ++S.States;
    S.MaxLogLen =
        std::max(S.MaxLogLen, static_cast<std::uint64_t>(F.M.log().size()));
    if constexpr (MachineHasSnapshot<MachineT>::value) {
      if (Opts.StateCache && !PorOn &&
          Cache.checkOrRemember(F.M, F.LastId, F.Consec, F.Depth)) {
        ++S.CacheHits;
        return false;
      }
      if (Opts.StateCache && PorOn) {
        std::vector<SleepEntry> Replay;
        if (Cache.porProbe(F.M, F.Sleep, F.StepTally, F.Depth, Replay)) {
          ++S.CacheHits;
          // The pruned subtree's steps still race with the CURRENT
          // prefix: replay race detection for each summarized step so the
          // backtrack points the subtree would have inserted into our
          // ancestors are not lost.  No source-set refinement on replay —
          // the refinement needs the intermediate steps, which a deduped
          // summary does not keep; over-inserting is merely slower.
          for (const SleepEntry &E : Replay)
            dporRaces(Stack, E.Tid, E.Foot, /*Refine=*/false, S);
          return false;
        }
      }
    }
    if (Opts.Invariant) {
      ++S.InvariantChecks;
      std::string V = Opts.Invariant(F.M);
      if (!V.empty()) {
        violate(F.M, "invariant violated: " + V);
        return false;
      }
    }
    F.Ready = F.M.schedulable();
    if constexpr (MachineHasFootprint<MachineT>::value) {
      if (PorOn) {
        F.ReadyFoot.reserve(F.Ready.size());
        for (ThreadId C : F.Ready)
          F.ReadyFoot.push_back(F.M.stepFootprint(C));
      }
    }
    if constexpr (MachineHasVariants<MachineT>::value) {
      // One menu query per candidate per node; a budget overflow shows up
      // as a count above the machine's cap and the step itself faults
      // fail-closed, so no clamping happens here.
      F.ReadyVars.reserve(F.Ready.size());
      for (ThreadId C : F.Ready) {
        unsigned V = std::max(1u, F.M.stepVariants(C));
        F.ReadyVars.push_back(V);
        if (V > 1) {
          ++S.RfBranchPoints;
          S.RfVariants += V;
        }
      }
    }
    if (F.Ready.empty()) {
      if (!F.M.allIdle()) {
        violate(F.M, "deadlock: nothing schedulable but work remains");
        return false;
      }
      Schedules.fetch_add(1, std::memory_order_relaxed);
      F.CacheEligible = true;
      recordOutcome(F.M, S);
      return false;
    }
    if (F.Depth >= Opts.MaxSteps) {
      violate(F.M, "step bound exceeded (divergence under fair schedules?)");
      return false;
    }
    if (PorOn) {
      // Seed the source set with the first non-sleeping child; every
      // other child waits until race detection proves its order can
      // matter.  All children asleep means the whole node is covered by
      // explored sibling subtrees.
      size_t Seed = 0;
      while (Seed != F.Ready.size() && asleep(F, F.Ready[Seed]))
        ++Seed;
      if (Seed == F.Ready.size()) {
        S.PorSkips += F.Ready.size();
        F.CacheEligible = true;
        return false;
      }
      F.Backtrack.push_back(Seed);
    }
    F.Expanded = true;
    F.CacheEligible = true;
    return true;
  }

  /// Pops the top frame; under POR with caching, first folds its subtree
  /// step summary into its parent and inserts fully explored subtrees
  /// into the cache (insert at POP, not expansion: only then is "every
  /// admissible schedule below this state was explored" actually true).
  void popFrame(std::vector<Frame> &Stack) {
    if (PorCacheOn()) {
      Frame &F = Stack.back();
      if (Stack.size() > 1) {
        Frame &Par = Stack[Stack.size() - 2];
        if (F.SubOverflow)
          Par.SubOverflow = true;
        addSubFoot(Par, SleepEntry{F.LastId, F.StepFoot});
        for (const SleepEntry &E : F.SubFoots)
          addSubFoot(Par, E);
      }
      if constexpr (MachineHasSnapshot<MachineT>::value) {
        if (F.CacheEligible && !F.SubOverflow &&
            !Stop.load(std::memory_order_relaxed))
          Cache.porInsert(std::move(F.M), F.Depth, std::move(F.Sleep),
                          std::move(F.StepTally), std::move(F.SubFoots));
      }
    }
    Stack.pop_back();
  }

  bool PorCacheOn() const {
    return PorOn && Opts.StateCache && MachineHasSnapshot<MachineT>::value;
  }

  /// Folds one subtree step into a frame's deduped summary; local steps
  /// race with nothing and are not kept.  Overflow poisons cacheability
  /// up the chain (handled by the caller), never soundness.
  static void addSubFoot(Frame &F, const SleepEntry &E) {
    if (F.SubOverflow || E.Foot.local())
      return;
    for (const SleepEntry &Have : F.SubFoots)
      if (Have == E)
        return;
    if (F.SubFoots.size() >= 64) {
      F.SubOverflow = true;
      return;
    }
    F.SubFoots.push_back(E);
  }

  /// Source-set DPOR race detection for a step of participant \p P with
  /// footprint \p PF taken (or, on cache replay, summarized) from
  /// Stack.back(): walk the executed path deepest-first and treat every
  /// event e of ANOTHER participant whose footprint conflicts as a race
  /// candidate.  This over-approximates the true races (the hb-adjacent
  /// pairs): a candidate with an intervening dependence chain to the new
  /// step is not reversible, but processing it merely schedules an extra
  /// child, never loses one.  The walk must NOT stop at the deepest
  /// candidate — two events in different threads can both race the same
  /// new step (neither happens-before the other), and stopping early
  /// silently drops the shallower reversal.
  ///
  /// At candidates whose pre-state has P schedulable, raceInsert applies
  /// the source-set rule.  Where P is NOT schedulable (it was blocked,
  /// e.g. on a lock the suffix releases) — or on cache replay
  /// (\p Refine false), where the pruned subtree's intermediate steps are
  /// unavailable so initials cannot be computed — reversing needs some
  /// other participant first; conservatively schedule every alternative.
  void dporRaces(std::vector<Frame> &Stack, ThreadId P, const Footprint &PF,
                 bool Refine, Shard &S) {
    if (PF.local())
      return;
    for (size_t I = Stack.size(); I-- > 1;) {
      const Frame &Ev = Stack[I];
      if (Ev.LastId == P || !footprintsConflict(Ev.StepFoot, PF))
        continue;
      Frame &Pre = Stack[I - 1];
      size_t PIdx = readyIndex(Pre, P);
      if (PIdx == SIZE_MAX || !Refine) {
        for (size_t R = 0; R != Pre.Ready.size(); ++R)
          addBacktrack(Pre, R, S);
        continue;
      }
      raceInsert(Stack, I, P, PF, PIdx, S);
    }
  }

  /// The source-set insertion rule (Abdulla et al.) for the race between
  /// the event e entering Stack[EvIdx] and the new step (P, PF).  With
  /// E' = pre(E, e) and v = notdep(e, E)·(P, PF), the reversal is covered
  /// iff some already-scheduled child of E' is an initial of v — a thread
  /// whose first step in v has no dependent predecessor within v can run
  /// first in SOME linearization of the reversal's trace, so exploring it
  /// explores that trace.  When uncovered, an INITIAL of v must be
  /// scheduled; inserting P itself is wrong when P is not an initial
  /// (its first v-step has a dependent predecessor): the P-first subtree
  /// then lies in a different trace class, and sleep sets — sound only on
  /// top of genuine source sets — may prune the reversal everywhere else.
  /// P is preferred when it qualifies; otherwise v's first step's thread
  /// (trivially an initial) is used.  Initials are computed from the
  /// concrete suffix and under-approximated when in doubt, which costs
  /// insertions, never soundness.
  void raceInsert(std::vector<Frame> &Stack, size_t EvIdx, ThreadId P,
                  const Footprint &PF, size_t PIdx, Shard &S) {
    Frame &Pre = Stack[EvIdx - 1];
    const Frame &Ev = Stack[EvIdx];
    // Mark which suffix steps (strictly after e) transitively
    // happen-after e: same participant as e or conflicting with e, or
    // dependent on an earlier marked step.
    const size_t N = Stack.size() - (EvIdx + 1);
    std::vector<char> AfterE(N, 0);
    for (size_t J = 0; J != N; ++J) {
      const Frame &FJ = Stack[EvIdx + 1 + J];
      if (FJ.LastId == Ev.LastId ||
          footprintsConflict(FJ.StepFoot, Ev.StepFoot)) {
        AfterE[J] = 1;
        continue;
      }
      for (size_t K = 0; K != J; ++K) {
        const Frame &FK = Stack[EvIdx + 1 + K];
        if (AfterE[K] && (FK.LastId == FJ.LastId ||
                          footprintsConflict(FK.StepFoot, FJ.StepFoot))) {
          AfterE[J] = 1;
          break;
        }
      }
    }
    // v = notdep(e, E) · (P, PF).
    std::vector<SleepEntry> W;
    for (size_t J = 0; J != N; ++J)
      if (!AfterE[J]) {
        const Frame &FJ = Stack[EvIdx + 1 + J];
        W.push_back(SleepEntry{FJ.LastId, FJ.StepFoot});
      }
    W.push_back(SleepEntry{P, PF});
    // Covered: some scheduled child of E' is an initial of v.
    for (size_t BIdx : Pre.Backtrack)
      if (initialOf(W, Pre.Ready[BIdx]))
        return;
    // Uncovered: schedule an initial — P when it qualifies, else the
    // thread of v's first step (enabled at E' by commutation with e when
    // footprints are honest; fall back to P if the machine disagrees).
    if (initialOf(W, P)) {
      addBacktrack(Pre, PIdx, S);
      return;
    }
    size_t QIdx = readyIndex(Pre, W.front().Tid);
    addBacktrack(Pre, QIdx != SIZE_MAX ? QIdx : PIdx, S);
  }

  /// True when \p Q's first step in \p W exists and has no dependent
  /// (footprint-conflicting) predecessor within W — i.e. Q ∈ I(W).
  static bool initialOf(const std::vector<SleepEntry> &W, ThreadId Q) {
    size_t First = W.size();
    for (size_t J = 0; J != W.size(); ++J)
      if (W[J].Tid == Q) {
        First = J;
        break;
      }
    if (First == W.size())
      return false; // Q takes no step in v: not an initial
    for (size_t K = 0; K != First; ++K)
      if (footprintsConflict(W[K].Foot, W[First].Foot))
        return false;
    return true;
  }

  size_t readyIndex(const Frame &F, ThreadId C) const {
    for (size_t I = 0; I != F.Ready.size(); ++I)
      if (F.Ready[I] == C)
        return I;
    return SIZE_MAX;
  }

  /// Adds Ready index \p Idx to F's backtrack set unless present (the set
  /// keeps consumed entries precisely so this membership test also covers
  /// "already explored").
  void addBacktrack(Frame &F, size_t Idx, Shard &S) {
    for (size_t Have : F.Backtrack)
      if (Have == Idx)
        return;
    F.Backtrack.push_back(Idx);
    ++S.DporBacktracks;
  }

  /// True when participant \p C's next step is asleep at \p F.
  bool asleep(const Frame &F, ThreadId C) const {
    for (const SleepEntry &E : F.Sleep)
      if (E.Tid == C)
        return true;
    return false;
  }

  std::uint64_t tallyOf(const Frame &F, ThreadId C) const {
    auto It = F.StepTally.find(C);
    return It == F.StepTally.end() ? 0 : It->second;
  }

  /// Reads-from choices of Ready entry \p Idx (1 without a weak model).
  static unsigned variantsOf(const Frame &F, size_t Idx) {
    return F.ReadyVars.empty() ? 1u : F.ReadyVars[Idx];
  }

  /// Steps \p C with reads-from choice \p V; machines without variants
  /// take their single step (V is then always 0).
  static bool stepOn(MachineT &M, ThreadId C, unsigned V) {
    if constexpr (MachineHasVariants<MachineT>::value)
      return M.step(C, V);
    else
      return M.step(C);
  }

  /// Sleep set of the child reached by stepping \p C with footprint \p CF:
  /// the parent's sleeping entries plus its already-pushed siblings, minus
  /// C itself (it just ran) and minus everything whose footprint conflicts
  /// with CF (the covering interleaving no longer commutes past C's step).
  void childSleep(const Frame &F, ThreadId C, const Footprint &CF,
                  std::vector<SleepEntry> &Out) const {
    for (const std::vector<SleepEntry> *Src : {&F.Sleep, &F.DoneSibs})
      for (const SleepEntry &E : *Src)
        if (E.Tid != C && !footprintsConflict(E.Foot, CF))
          Out.push_back(E);
  }

  void recordOutcome(const MachineT &M, Shard &S) {
    Outcome O;
    O.FinalLog = M.log();
    O.Returns = M.returns();
    if constexpr (MachineHasFootprint<MachineT>::value) {
      // Under POR raw final logs are in bijection with schedules, so the
      // reduction must deduplicate canonical trace forms instead (see
      // GenericExploreOptions::Por).
      if (PorOn)
        O.FinalLog = canonicalizeLog(O.FinalLog, [&M](KindId Kind) {
          return M.eventFootprint(Event(0, Kind));
        });
    }
    if (Opts.OnOutcome) {
      // Callback path: the dedup set must stay global — the callback fires
      // exactly once per DISTINCT outcome and checkers count those calls —
      // so it remains serialized under ResMu, which also means callbacks
      // need no locking of their own.
      bool DoStop = false;
      {
        std::lock_guard<std::mutex> L(ResMu);
        if (!Dedup.insert(O))
          return;
        // The corpus retains only deduplicated outcomes: pushing before
        // the dedup test (as an earlier version did) stored one copy of a
        // terminal log PER SCHEDULE reaching it, crowding the capped
        // buffer with duplicates.
        if (Opts.CollectCorpus && S.Corpus.size() < Opts.MaxCorpus)
          S.Corpus.push_back(O.FinalLog);
        std::string V = Opts.OnOutcome(O);
        if (!V.empty()) {
          if (!Violated) {
            Violated = true;
            Violation = V + "\n  log: " + logToString(M.log());
          }
          DoStop = true;
        }
      }
      if (DoStop)
        stopAll();
      return;
    }
    // Stored path: everything is worker-local, so recording an outcome
    // takes no lock; cross-worker duplicates collapse at the join.
    if (!S.Dedup.insert(O))
      return;
    if (Opts.CollectCorpus && S.Corpus.size() < Opts.MaxCorpus)
      S.Corpus.push_back(O.FinalLog);
    if (S.Outcomes.size() < Opts.MaxStoredOutcomes)
      S.Outcomes.push_back(std::move(O));
    else
      S.StoreTruncated = true; // reported as truncation at the join
  }

  /// Joins the per-worker result shards after the workers exit, in worker
  /// order.  Outcomes flow through a fresh dedup set (each worker
  /// deduplicated only its own stream); the corpus concatenates up to its
  /// cap; any shard-local truncation fails the run closed.  With one
  /// worker this moves the single shard's vectors unchanged, so
  /// sequential runs are bit-identical to the former global recording.
  void mergeShardResults(ExploreResult &Res) {
    bool Truncated = false;
    if (!Opts.OnOutcome) {
      OutcomeDeduper Merged;
      for (Shard &S : Shards) {
        Truncated |= S.StoreTruncated;
        for (Outcome &O : S.Outcomes) {
          if (!Merged.insert(O))
            continue;
          if (Res.Outcomes.size() < Opts.MaxStoredOutcomes)
            Res.Outcomes.push_back(std::move(O));
          else
            Truncated = true;
        }
      }
    }
    for (Shard &S : Shards)
      for (Log &L : S.Corpus) {
        if (Res.Corpus.size() >= Opts.MaxCorpus)
          break;
        Res.Corpus.push_back(std::move(L));
      }
    if (Truncated) {
      Res.Complete = false;
      if (Res.Truncation.empty())
        Res.Truncation = "MaxStoredOutcomes budget (" +
                         std::to_string(Opts.MaxStoredOutcomes) +
                         ") exhausted";
    }
  }

  void violate(const MachineT &M, const std::string &Msg) {
    std::string Full = Msg + "\n  log: " + logToString(M.log());
    {
      std::lock_guard<std::mutex> L(ResMu);
      if (!Violated) {
        Violated = true;
        Violation = std::move(Full);
      }
    }
    stopAll();
  }

  void stopAll() {
    Stop.store(true, std::memory_order_relaxed);
    QCv.notify_all();
  }

  /// Sampled intermediate logs go straight into the worker's own shard —
  /// the former global buffer serialized every worker on ResMu mid-search.
  void pushCorpus(const Log &L, Shard &S) {
    if (S.Corpus.size() < Opts.MaxCorpus)
      S.Corpus.push_back(L);
  }

  /// Blocks until a frame is available or the search is over; false means
  /// the worker should exit.
  bool pullWork(std::vector<Frame> &Stack) {
    std::unique_lock<std::mutex> L(QMu);
    ++Idle;
    Hungry.store(Idle, std::memory_order_relaxed);
    while (true) {
      if (Finished)
        return false;
      if (!Injector.empty() && !Stop.load(std::memory_order_relaxed)) {
        Stack.push_back(std::move(Injector.front()));
        Injector.pop_front();
        InjectorSize.store(Injector.size(), std::memory_order_relaxed);
        --Idle;
        Hungry.store(Idle, std::memory_order_relaxed);
        return true;
      }
      if (Stop.load(std::memory_order_relaxed) || Idle == Workers) {
        // Nothing left anywhere and nobody can produce more (or we are
        // aborting): wake everyone up to exit.
        Finished = true;
        QCv.notify_all();
        return false;
      }
      QCv.wait(L);
    }
  }

  /// Moves up to StealBatch of the shallowest frames with unvisited
  /// children — the largest pending subtrees — into the shared injector
  /// as one batch under one lock acquisition; the donor keeps the rest
  /// of its stack.  Donating one frame per call (the old behavior) made
  /// a donor re-enter the injector lock on nearly every expansion while
  /// any worker was hungry; batching plus the caller's injector-empty
  /// gate bounds donation traffic by steals actually taken.  True when
  /// anything was donated.  Never called under POR (see worker()).
  bool donate(std::vector<Frame> &Stack, Shard &S) {
    const size_t Batch = std::max(1u, Opts.StealBatch);
    std::vector<Frame> Moved;
    for (Frame &F : Stack) {
      if (Moved.size() >= Batch)
        break;
      if (!F.Expanded || F.NextChild >= F.Ready.size())
        continue;
      Frame Rest(F.M, F.LastId, F.Consec, F.Depth);
      Rest.Ready = F.Ready;
      Rest.NextChild = F.NextChild;
      Rest.ReadyVars = F.ReadyVars;
      Rest.NextVariant = F.NextVariant;
      Rest.Expanded = true;
      Rest.StepTally = F.StepTally;
      F.NextChild = F.Ready.size();
      F.NextVariant = 0;
      Moved.push_back(std::move(Rest));
    }
    if (Moved.empty())
      return false;
    S.Donations += Moved.size();
    ++S.DonationBatches;
    {
      std::lock_guard<std::mutex> L(QMu);
      for (Frame &F : Moved)
        Injector.push_back(std::move(F));
      InjectorSize.store(Injector.size(), std::memory_order_relaxed);
    }
    QCv.notify_all();
    return true;
  }

  const Options &Opts;
  const unsigned Workers;

  /// The reduction is actually on: requested AND the machine declares
  /// footprints.
  const bool PorOn;

  // Work sharing.
  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<Frame> Injector;      ///< guarded by QMu
  unsigned Idle = 0;               ///< guarded by QMu
  bool Finished = false;           ///< guarded by QMu
  std::atomic<unsigned> Hungry{0}; ///< lock-free mirror of Idle
  std::atomic<size_t> InjectorSize{0}; ///< lock-free mirror of the deque

  // Early abort + schedule budget.
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Schedules{0};

  // Shared result slots (first violation wins).  Outcome/corpus storage
  // lives in the per-worker Shards; only the OnOutcome callback path
  // still deduplicates globally here.
  std::mutex ResMu;
  bool Violated = false;  ///< guarded by ResMu
  std::string Violation;  ///< guarded by ResMu
  bool Complete = true;   ///< guarded by ResMu
  std::string Truncation; ///< guarded by ResMu
  OutcomeDeduper Dedup;   ///< guarded by ResMu (OnOutcome path only)

  // State-dedup cache (machine/StateCache.h): bounded, lock-striped,
  // shared by all workers; configured in run().
  BoundedStateCache<MachineT> Cache;

  std::vector<Shard> Shards;
};

/// Publishes one run's aggregate counters into the obs metrics registry
/// (no-op while the registry is disabled); defined in Explorer.cpp so the
/// template below stays header-only.
void publishExploreMetrics(const ExploreResult &Res);

} // namespace detail

/// Explores every schedule reachable from \p Root, on Opts.Threads
/// workers.
template <typename MachineT>
ExploreResult exploreGeneric(const MachineT &Root,
                             const GenericExploreOptions<MachineT> &Opts) {
  if (Opts.Metrics)
    obs::setEnabled(true);
  obs::Span ExploreSpan("explorer.explore", "explorer");
  unsigned Workers = Opts.Threads;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  detail::GenericDfs<MachineT> D(Opts, Workers);
  ExploreResult Res = D.run(Root);
  if (obs::enabled())
    detail::publishExploreMetrics(Res);
  return Res;
}

/// Result of a differential POR-vs-full run (checkPorEquivalence).
struct PorEquivalenceReport {
  bool Ok = false;    ///< both explorations ran to completion, no violation
  bool Match = false; ///< the deduplicated canonical outcome sets agree
  std::string Detail; ///< failure reason / first diverging outcome
  std::uint64_t FullSchedules = 0;
  std::uint64_t PorSchedules = 0;
  std::uint64_t FullStates = 0;
  std::uint64_t PorStates = 0;
  std::uint64_t FullOutcomes = 0; ///< size of the canonicalized full set
  std::uint64_t PorOutcomes = 0;
  std::uint64_t SleepSkips = 0;
  std::uint64_t Backtracks = 0; ///< DPOR backtrack insertions (reduced run)
};

/// Differential soundness check for the partial-order reduction: explores
/// \p Root twice from the same options — once in full (Por off, fairness
/// off, so both runs range over the same trace space) and once reduced —
/// and compares the deduplicated outcome sets after canonicalizing the
/// full run's logs the same way the reduced run does.  A mismatch means a
/// machine's declared footprints under-report a dependence (or a reduction
/// bug); Match=false with the first diverging outcome in Detail.
///
/// Bound divergent workloads with Opts.MaxParticipantSteps/MaxSteps, not
/// FairnessBound (which this check clears on both sides).
template <typename MachineT>
PorEquivalenceReport
checkPorEquivalence(const MachineT &Root,
                    GenericExploreOptions<MachineT> Opts) {
  PorEquivalenceReport R;
  // Same trace space on both sides: the consecutive-run fairness filter is
  // linearization-dependent (POR ignores it), so the full run must not
  // apply it either; divergence is bounded by the trace-invariant knobs.
  Opts.FairnessBound = ~0u;
  Opts.OnOutcome = nullptr;
  Opts.CollectCorpus = false;

  GenericExploreOptions<MachineT> FullOpts = Opts;
  FullOpts.Por = false;
  ExploreResult Full = exploreGeneric(Root, FullOpts);
  R.FullSchedules = Full.SchedulesExplored;
  R.FullStates = Full.StatesExplored;
  if (!Full.Ok) {
    R.Detail = "full exploration violated: " + Full.Violation;
    return R;
  }
  if (!Full.Complete) {
    R.Detail = "full exploration truncated: " + Full.Truncation;
    return R;
  }

  GenericExploreOptions<MachineT> PorOpts = Opts;
  PorOpts.Por = true;
  ExploreResult Por = exploreGeneric(Root, PorOpts);
  R.PorSchedules = Por.SchedulesExplored;
  R.PorStates = Por.StatesExplored;
  R.SleepSkips = Por.PorSleepSkips;
  R.Backtracks = Por.DporBacktracks;
  if (!Por.Ok) {
    R.Detail = "reduced exploration violated: " + Por.Violation;
    return R;
  }
  if (!Por.Complete) {
    R.Detail = "reduced exploration truncated: " + Por.Truncation;
    return R;
  }
  R.Ok = true;

  OutcomeSet PorSet;
  for (const Outcome &O : Por.Outcomes)
    PorSet.insert(O);
  R.PorOutcomes = PorSet.size();

  // Canonicalize the full run's raw linearization logs exactly the way the
  // reduced run recorded its outcomes, then compare both directions.
  R.Match = true;
  OutcomeSet FullSet;
  for (Outcome O : Full.Outcomes) {
    if constexpr (detail::MachineHasFootprint<MachineT>::value) {
      if (Por.PorApplied)
        O.FinalLog = canonicalizeLog(O.FinalLog, [&Root](KindId Kind) {
          return Root.eventFootprint(Event(0, Kind));
        });
    }
    if (!FullSet.insert(O))
      continue; // several linearizations of one trace
    if (R.Match && !PorSet.contains(O)) {
      R.Match = false;
      R.Detail = "outcome reachable in full exploration is missing under "
                 "POR (under-reported footprint?)\n  canonical log: " +
                 logToString(O.FinalLog);
    }
  }
  R.FullOutcomes = FullSet.size();
  if (R.Match)
    for (const Outcome &O : Por.Outcomes)
      if (!FullSet.contains(O)) {
        R.Match = false;
        R.Detail = "outcome recorded under POR does not occur in full "
                   "exploration\n  canonical log: " +
                   logToString(O.FinalLog);
        break;
      }
  return R;
}

/// Options alias for the multicore machine (the common case).
using ExploreOptions = GenericExploreOptions<MultiCoreMachine>;

/// Explores every schedule of the multicore machine described by \p Cfg.
ExploreResult exploreMachine(MachineConfigPtr Cfg,
                             const ExploreOptions &Opts);

/// checkPorEquivalence on the multicore machine described by \p Cfg.
PorEquivalenceReport checkPorEquivalence(MachineConfigPtr Cfg,
                                         ExploreOptions Opts);

/// Runs a single schedule chosen by \p Pick (given the schedulable set and
/// the log, return the CPU to step); used to replay specific interleavings
/// such as the paper's §2 example.
Outcome runSchedule(
    MachineConfigPtr Cfg,
    const std::function<ThreadId(const std::vector<ThreadId> &, const Log &)>
        &Pick,
    std::string *Error = nullptr);

} // namespace ccal

#endif // CCAL_MACHINE_EXPLORER_H
