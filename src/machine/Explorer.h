//===- machine/Explorer.h - Schedule enumeration ---------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Explorer enumerates *all* schedules of a machine up to a fairness
/// bound, by depth-first search over machine snapshots.  This is the
/// executable counterpart of the paper's universal quantification over
/// environment contexts / schedulers: a property checked by the Explorer
/// holds for every interleaving the bound admits.
///
/// The fairness bound caps how many consecutive steps one participant may
/// take while others are runnable — the finite form of the paper's fair
/// hardware scheduler assumption (§3.2), without which a spinning CPU
/// would generate infinitely many schedules.
///
/// The DFS is generic over the machine: the multicore machine (§3) and the
/// multithreaded machine (§5) both instantiate it.  A machine must be
/// copyable and provide ok()/error(), allIdle(), schedulable(), step(),
/// log(), and returns().
///
/// Machines additionally providing stepFootprint()/eventFootprint() (see
/// core/Footprint.h) unlock the opt-in partial-order reduction
/// (GenericExploreOptions::Por): sleep sets over the footprint-conflict
/// independence relation skip schedules that differ from an explored one
/// only in the order of commuting steps, and outcomes are recorded with
/// canonical (Mazurkiewicz-trace) logs so the deduplicated outcome set is
/// identical to full exploration's.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_EXPLORER_H
#define CCAL_MACHINE_EXPLORER_H

#include "core/Footprint.h"
#include "machine/MultiCore.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace ccal {

/// One terminal execution.
struct Outcome {
  Log FinalLog;
  std::map<ThreadId, std::vector<std::int64_t>> Returns;
};

/// Exploration knobs, parameterized by the machine type so invariants can
/// inspect the concrete machine.
template <typename MachineT> struct GenericExploreOptions {
  /// Max consecutive steps of one participant while another is schedulable
  /// (the paper's "any CPU can be scheduled within m steps").  Ignored
  /// under Por — see there.
  unsigned FairnessBound = 6;

  /// Budgets; exceeding MaxSteps along a path is reported as divergence.
  std::uint64_t MaxSchedules = 1u << 22;
  std::uint64_t MaxSteps = 4096;

  /// Partial-order reduction (sleep sets over the machine's declared step
  /// footprints; Godefroid-style).  Opt-in, and changes the exploration
  /// regime in three documented ways:
  ///
  ///  - FairnessBound is IGNORED.  The consecutive-steps filter is a
  ///    property of one linearization, not of its Mazurkiewicz trace: the
  ///    interleaving POR explores on behalf of a skipped one can contain
  ///    a longer consecutive run and be pruned even though the skipped
  ///    interleaving would not be, losing outcomes.  Bound spinning
  ///    workloads with MaxParticipantSteps instead, which is
  ///    trace-invariant (a per-participant total is the same in every
  ///    linearization of a trace).
  ///  - The StateCache is DISABLED.  A cache hit asserts the first visit
  ///    explored every schedule admissible from the revisit, but under
  ///    POR the first visit's subtree was itself pruned by *its* sleep
  ///    set, which the revisit's may not subsume; a sound compatibility
  ///    test would need the full sleep-set context in every entry.  v1
  ///    runs POR uncached.
  ///  - Outcome logs are CANONICALIZED (see canonicalizeLog): every
  ///    shared step appends a participant-tagged event, so raw final logs
  ///    are in bijection with schedules and POR would otherwise lose
  ///    outcomes by construction.  Canonical logs identify exactly the
  ///    schedules POR deduplicates.
  ///
  /// On machines without stepFootprint()/eventFootprint() the reduction
  /// silently degrades to full exploration (ExploreResult::PorApplied
  /// reports which happened).  Soundness rests on honest footprints;
  /// checkPorEquivalence verifies it differentially.
  bool Por = false;

  /// Cap on the TOTAL steps any one participant takes along a path; 0 is
  /// unlimited.  Exceeding it prunes silently, like the fairness bound —
  /// it is the trace-invariant divergence bound to use with Por (and is
  /// honored without Por too, so differential runs prune identically).
  std::uint64_t MaxParticipantSteps = 0;

  /// Invariant checked after every machine step; a non-empty return is a
  /// violation (used for mutual exclusion, guarantee conditions, ...).
  std::function<std::string(const MachineT &)> Invariant;

  /// Stable name identifying Invariant's semantics in certificate-store
  /// keys ("ticket.mutex", ...).  The function itself is opaque, so the
  /// store can only key what is named: a check whose Invariant is set
  /// without a name is UNCACHEABLE and bypasses the store (fail closed).
  /// Renaming the invariant — or keeping the name while changing what it
  /// checks — is a semantic change; the latter requires clearing the
  /// cache or bumping the checker version.
  std::string InvariantName;

  /// When true, terminal logs (and sampled intermediate logs) are retained
  /// in ExploreResult::Corpus for compat implication checking, capped at
  /// MaxCorpus entries.
  bool CollectCorpus = false;
  size_t MaxCorpus = 2048;

  /// When set, every (deduplicated) terminal outcome is passed to this
  /// callback *instead of* being stored in ExploreResult::Outcomes —
  /// essential for large schedule spaces.  Returning a non-empty string
  /// aborts the exploration with that violation.
  std::function<std::string(const Outcome &)> OnOutcome;

  /// Cap on stored outcomes when OnOutcome is not set.
  size_t MaxStoredOutcomes = 1u << 18;

  /// Worker threads sharing the search frontier.  1 (the default) runs the
  /// exact sequential DFS and produces bit-identical results to the
  /// single-threaded Explorer; 0 means one worker per hardware thread.
  /// With more than one worker, Invariant must be safe to call
  /// concurrently on distinct machine snapshots (log-replay invariants
  /// are); OnOutcome calls are serialized by the Explorer itself.
  unsigned Threads = 1;

  /// When true, prune states the search has already visited (snapshot
  /// hash, with full structural comparison on hash collision — never a
  /// silent merge).  Sound because a machine snapshot determines the
  /// entire subtree: a revisit is pruned only when the first visit's
  /// fairness context was at least as permissive (same last participant,
  /// no larger consecutive-run count) and its remaining step budget at
  /// least as large, so every schedule admissible from the revisit was
  /// already explored from the first visit.  Off by default: pruning
  /// changes SchedulesExplored/StatesExplored (they then count *distinct*
  /// states) and resolves log-invisible cycles as termination rather than
  /// a step-budget divergence report.
  bool StateCache = false;

  /// Cap on cached snapshots; past it the search stays sound but stops
  /// remembering new states.
  size_t MaxStateCache = 1u << 20;

  /// Publish this run's aggregate counters (schedules, states, sleep-set
  /// prunes, cache hits, steals, per-worker balance) into the obs metrics
  /// registry and record an "explorer.explore" span.  Setting this
  /// force-enables the observability layer (obs::setEnabled) for the
  /// process, like the CCAL_TRACE environment toggle; when neither is on,
  /// instrumentation costs one relaxed atomic load per exploration.  The
  /// counters are published once at the end of the run from the
  /// per-worker shards the search keeps anyway, so the DFS hot loop is
  /// untouched either way.
  bool Metrics = false;
};

/// Aggregate result over all schedules.
struct ExploreResult {
  bool Ok = true;

  /// False when a budget (MaxSchedules, MaxStoredOutcomes) truncated the
  /// search; obligations then cover only the explored prefix, and no
  /// checker may report Holds from such a result.
  bool Complete = true;

  /// Which budget truncated the search ("" when Complete).
  std::string Truncation;

  /// True when the partial-order reduction was actually active (Por
  /// requested and the machine provides footprints); outcome logs are
  /// then canonical trace forms rather than raw linearizations.
  bool PorApplied = false;

  std::uint64_t PorSleepSkips = 0; ///< children skipped via sleep sets

  std::string Violation; ///< first violation with its log

  std::vector<Outcome> Outcomes; ///< one per schedule (deduplicated)
  std::uint64_t SchedulesExplored = 0;
  std::uint64_t StatesExplored = 0;
  std::uint64_t InvariantChecks = 0;
  std::uint64_t MaxLogLen = 0;
  std::uint64_t CacheHits = 0; ///< states pruned by the StateCache

  /// Work-sharing telemetry: frames a busy worker moved into the shared
  /// injector (Donations) and frames workers picked up from it beyond the
  /// root (Steals).  Both are 0 on single-threaded runs.
  std::uint64_t Donations = 0;
  std::uint64_t Steals = 0;

  /// States expanded by each worker (index = worker id) — the per-worker
  /// balance bench_explorer reports; WorkerMaxStack is the deepest DFS
  /// stack each worker held (its peak queue depth).
  std::vector<std::uint64_t> WorkerStates;
  std::vector<std::uint64_t> WorkerMaxStack;

  std::vector<Log> Corpus;
};

/// Sound outcome set with structural comparison.  An earlier version
/// hashed returns and thread ids by chain-multiplying with no field
/// separators, so e.g. returns {1:[], 2:[]} and {1:[2]} hashed equal over
/// the same log and one outcome was silently dropped — an unsoundness in
/// every checker built on the Explorer.  This version mixes each field
/// through hashMix64 with length prefixes, and resolves residual 64-bit
/// collisions by structural comparison instead of merging.  It is also
/// the outcome-matching structure of the refinement checkers, replacing
/// their former string keys (log text joined with separators that can
/// occur in the data — ambiguous, and O(log length) per comparison even
/// on hash-distinguishable outcomes).
class OutcomeSet {
public:
  static std::uint64_t hash(const Outcome &O) {
    std::uint64_t H = hashLog(O.FinalLog);
    H = hashCombine(H, O.Returns.size());
    for (const auto &[Tid, Rets] : O.Returns) {
      H = hashCombine(H, Tid);
      H = hashCombine(H, Rets.size());
      for (std::int64_t R : Rets)
        H = hashCombine(H, static_cast<std::uint64_t>(R));
    }
    return H;
  }

  static bool same(const Outcome &A, const Outcome &B) {
    return A.FinalLog == B.FinalLog && A.Returns == B.Returns;
  }

  /// True when \p O was not seen before.
  bool insert(const Outcome &O) {
    std::vector<Outcome> &Bucket = Seen[hash(O)];
    for (const Outcome &Prev : Bucket)
      if (same(Prev, O))
        return false;
    Bucket.push_back(O);
    ++Count;
    return true;
  }

  /// True when \p O is in the set.
  bool contains(const Outcome &O) const {
    auto It = Seen.find(hash(O));
    if (It == Seen.end())
      return false;
    for (const Outcome &Prev : It->second)
      if (same(Prev, O))
        return true;
    return false;
  }

  size_t size() const { return Count; }

private:
  std::unordered_map<std::uint64_t, std::vector<Outcome>> Seen;
  size_t Count = 0;
};

namespace detail {

/// Detects machines providing snapshotHash()/sameSnapshot(); the
/// StateCache option silently degrades to no caching without them.
template <typename M, typename = void>
struct MachineHasSnapshot : std::false_type {};
template <typename M>
struct MachineHasSnapshot<
    M, std::void_t<decltype(std::declval<const M &>().snapshotHash()),
                   decltype(std::declval<const M &>().sameSnapshot(
                       std::declval<const M &>()))>> : std::true_type {};

/// Detects machines providing stepFootprint()/eventFootprint(); the Por
/// option degrades to full exploration without them.
template <typename M, typename = void>
struct MachineHasFootprint : std::false_type {};
template <typename M>
struct MachineHasFootprint<
    M, std::void_t<decltype(std::declval<const M &>().stepFootprint(
                       std::declval<ThreadId>())),
                   decltype(std::declval<const M &>().eventFootprint(
                       std::declval<const Event &>()))>> : std::true_type {};

/// Former name of OutcomeSet, kept for the Explorer's internal use.
using OutcomeDeduper = OutcomeSet;

/// The search engine shared by all machine types: an explicit-stack DFS
/// run by a pool of workers over a shared frontier.
///
/// Each worker owns a stack of frames; a frame is one machine snapshot
/// plus the iteration state over its schedulable children, so the top of
/// the stack advances exactly like the recursive formulation (a child
/// subtree is fully explored before the next sibling starts).  Work
/// sharing: when some worker is idle, a busy worker moves the
/// *shallowest* frame with unvisited children — the largest pending
/// subtree — into the shared injector deque, where an idle worker picks
/// it up.  Every node is expanded exactly once, so all counters are
/// schedule-deterministic; only the order of Outcomes/Corpus depends on
/// the number of workers.
///
/// A single shared first-violation slot plus an atomic stop flag give
/// early abort: the first worker to find a violation wins, everyone else
/// drains.  With one worker the engine visits states in exactly the
/// recursive order and produces bit-identical results to the sequential
/// Explorer.
template <typename MachineT> class GenericDfs {
public:
  using Options = GenericExploreOptions<MachineT>;

  GenericDfs(const Options &Opts, unsigned Workers)
      : Opts(Opts), Workers(Workers),
        PorOn(Opts.Por && MachineHasFootprint<MachineT>::value),
        Shards(Workers) {}

  ExploreResult run(const MachineT &Root) {
    ExploreResult Res;
    if (!Root.ok()) {
      Res.Ok = false;
      Res.Violation = Root.error();
      return Res;
    }
    Injector.emplace_back(Root, /*LastId=*/~0u, /*Consec=*/0, /*Depth=*/0);
    if (Workers == 1) {
      worker(0);
    } else {
      std::vector<std::thread> Pool;
      Pool.reserve(Workers);
      for (unsigned I = 0; I != Workers; ++I)
        Pool.emplace_back([this, I] { worker(I); });
      for (std::thread &T : Pool)
        T.join();
    }
    Res.Ok = !Violated;
    Res.Violation = std::move(Violation);
    Res.Complete = Complete;
    Res.Truncation = std::move(Truncation);
    Res.PorApplied = PorOn;
    Res.SchedulesExplored = Schedules.load();
    std::uint64_t Pulls = 0;
    for (const Shard &S : Shards) {
      Res.StatesExplored += S.States;
      Res.InvariantChecks += S.InvariantChecks;
      Res.CacheHits += S.CacheHits;
      Res.PorSleepSkips += S.PorSkips;
      Res.Donations += S.Donations;
      Pulls += S.Pulls;
      Res.WorkerStates.push_back(S.States);
      Res.WorkerMaxStack.push_back(S.MaxStack);
      Res.MaxLogLen = std::max(Res.MaxLogLen, S.MaxLogLen);
    }
    // The root frame's pull is a seed, not a steal.
    Res.Steals = Pulls > 0 ? Pulls - 1 : 0;
    mergeShardResults(Res);
    return Res;
  }

private:
  /// A sleep-set entry: participant \p Tid's next step (with footprint
  /// \p Foot) is already covered — a sibling subtree explored it first and
  /// every continuation interleaving it later commutes into that subtree.
  struct SleepEntry {
    ThreadId Tid;
    Footprint Foot;
  };

  /// One DFS node: a machine snapshot plus sibling-iteration state.
  struct Frame {
    MachineT M;
    ThreadId LastId;
    unsigned Consec;
    std::uint64_t Depth;
    /// The full schedulable set (fairness reads its size even after some
    /// children have been visited or the frame has been donated).
    std::vector<ThreadId> Ready;
    size_t NextChild = 0;
    bool Expanded = false;

    // POR state (filled only when the reduction is on).
    std::vector<SleepEntry> Sleep;    ///< asleep at this node
    std::vector<SleepEntry> DoneSibs; ///< children already pushed here
    std::vector<Footprint> ReadyFoot; ///< footprint per Ready entry

    /// Total steps per participant along the path to this node (kept only
    /// when MaxParticipantSteps bounds paths).
    std::map<ThreadId, std::uint64_t> StepTally;

    Frame(MachineT M, ThreadId LastId, unsigned Consec, std::uint64_t Depth)
        : M(std::move(M)), LastId(LastId), Consec(Consec), Depth(Depth) {}
  };

  /// Per-worker counters AND result buffers, merged after the join (no
  /// hot-path sharing).  The stored-outcome path deduplicates into the
  /// worker's own Dedup/Outcomes/Corpus, so recording a terminal outcome
  /// takes no lock at all; cross-worker duplicates collapse at the join
  /// (mergeShardResults).  With one worker this is exactly the former
  /// globally-locked recording, entry for entry.
  struct Shard {
    std::uint64_t States = 0;
    std::uint64_t InvariantChecks = 0;
    std::uint64_t MaxLogLen = 0;
    std::uint64_t CacheHits = 0;
    std::uint64_t PorSkips = 0;
    std::uint64_t Pulls = 0;     ///< frames taken from the injector
    std::uint64_t Donations = 0; ///< frames moved into the injector
    std::uint64_t MaxStack = 0;  ///< deepest DFS stack held

    OutcomeDeduper Dedup;          ///< this worker's distinct outcomes
    std::vector<Outcome> Outcomes; ///< stored-path results, search order
    std::vector<Log> Corpus;       ///< terminal + sampled logs
    bool StoreTruncated = false;   ///< hit MaxStoredOutcomes locally
  };

  struct CacheEntry {
    MachineT M;
    ThreadId LastId;
    unsigned Consec;
    std::uint64_t Depth;

    CacheEntry(MachineT M, ThreadId LastId, unsigned Consec,
               std::uint64_t Depth)
        : M(std::move(M)), LastId(LastId), Consec(Consec), Depth(Depth) {}
  };

  void worker(unsigned Idx) {
    Shard &S = Shards[Idx];
    std::vector<Frame> Stack;
    while (true) {
      if (Stop.load(std::memory_order_relaxed))
        Stack.clear();
      if (Stack.empty()) {
        if (!pullWork(Stack))
          return;
        ++S.Pulls;
        continue;
      }
      if (Workers > 1 && Hungry.load(std::memory_order_relaxed) > 0 &&
          donate(Stack))
        ++S.Donations;
      Frame &Top = Stack.back();
      if (!Top.Expanded) {
        if (!expand(Top, S)) {
          Stack.pop_back();
          continue;
        }
      }
      if (Top.NextChild >= Top.Ready.size()) {
        Stack.pop_back();
        continue;
      }
      size_t ChildIdx = Top.NextChild++;
      ThreadId C = Top.Ready[ChildIdx];
      // Sleep set: C's next step is covered by an explored sibling subtree
      // every continuation of this one commutes into.
      if (PorOn && asleep(Top, C)) {
        ++S.PorSkips;
        continue;
      }
      // Fairness: one participant may not run more than FairnessBound
      // consecutive steps while someone else is waiting.  Skipped under
      // Por — the filter is linearization-dependent, which breaks the
      // sleep-set coverage argument (see GenericExploreOptions::Por).
      if (!Opts.Por && Top.Ready.size() > 1 && C == Top.LastId &&
          Top.Consec >= Opts.FairnessBound)
        continue;
      // Trace-invariant divergence bound: a per-participant total is the
      // same in every linearization, so this prunes whole traces and is
      // safe alongside the sleep sets.
      if (Opts.MaxParticipantSteps != 0 &&
          tallyOf(Top, C) >= Opts.MaxParticipantSteps)
        continue;
      // The final child may take the parent's machine by move: NextChild
      // is already past the end, so the frame can only be popped from here
      // on (donate() skips child-less frames) and its machine is dead
      // weight.  Saves one full machine copy per interior node.
      const bool LastChild = Top.NextChild >= Top.Ready.size();
      Frame Child(LastChild ? MachineT(std::move(Top.M)) : MachineT(Top.M),
                  C, C == Top.LastId ? Top.Consec + 1 : 1, Top.Depth + 1);
      if (PorOn) {
        const Footprint &CF = Top.ReadyFoot[ChildIdx];
        childSleep(Top, C, CF, Child.Sleep);
        // Added at push (not pop): coverage only needs this subtree to be
        // explored *eventually*, and an abort that leaves it unexplored
        // also reports Complete=false, so nothing unsound is claimed.
        Top.DoneSibs.push_back(SleepEntry{C, CF});
      }
      if (Opts.MaxParticipantSteps != 0) {
        Child.StepTally = Top.StepTally;
        ++Child.StepTally[C];
      }
      if (!Child.M.step(C)) {
        violate(Child.M, Child.M.error());
        continue;
      }
      if (Opts.CollectCorpus && (Top.Depth & 3) == 0)
        pushCorpus(Child.M.log(), S);
      Stack.push_back(std::move(Child));
      S.MaxStack = std::max(S.MaxStack,
                            static_cast<std::uint64_t>(Stack.size()));
    }
  }

  /// First visit of a node: budget, cache, invariant, terminal, and depth
  /// checks.  True when the node has children to iterate.
  bool expand(Frame &F, Shard &S) {
    if (Schedules.load(std::memory_order_relaxed) >= Opts.MaxSchedules) {
      {
        std::lock_guard<std::mutex> L(ResMu);
        Complete = false;
        if (Truncation.empty())
          Truncation = "MaxSchedules budget (" +
                       std::to_string(Opts.MaxSchedules) + ") exhausted";
      }
      stopAll();
      return false;
    }
    ++S.States;
    S.MaxLogLen =
        std::max(S.MaxLogLen, static_cast<std::uint64_t>(F.M.log().size()));
    // The cache is incompatible with the sleep sets (a hit's coverage
    // argument would need the first visit's sleep context; see
    // GenericExploreOptions::Por), so it is bypassed while they are on.
    if (Opts.StateCache && !PorOn && cachedOrRemember(F)) {
      ++S.CacheHits;
      return false;
    }
    if (Opts.Invariant) {
      ++S.InvariantChecks;
      std::string V = Opts.Invariant(F.M);
      if (!V.empty()) {
        violate(F.M, "invariant violated: " + V);
        return false;
      }
    }
    F.Ready = F.M.schedulable();
    if constexpr (MachineHasFootprint<MachineT>::value) {
      if (PorOn) {
        F.ReadyFoot.reserve(F.Ready.size());
        for (ThreadId C : F.Ready)
          F.ReadyFoot.push_back(F.M.stepFootprint(C));
      }
    }
    if (F.Ready.empty()) {
      if (!F.M.allIdle()) {
        violate(F.M, "deadlock: nothing schedulable but work remains");
        return false;
      }
      Schedules.fetch_add(1, std::memory_order_relaxed);
      recordOutcome(F.M, S);
      return false;
    }
    if (F.Depth >= Opts.MaxSteps) {
      violate(F.M, "step bound exceeded (divergence under fair schedules?)");
      return false;
    }
    F.Expanded = true;
    return true;
  }

  /// True when an equivalent-or-more-permissive visit of F's state is
  /// already cached; otherwise remembers F.  A cached visit covers the
  /// revisit only when its last participant is the same with no larger
  /// consecutive-run count (so fairness pruned no schedule the revisit
  /// would explore) and its depth no larger (so the step budget pruned
  /// none either).
  bool cachedOrRemember(const Frame &F) {
    if constexpr (MachineHasSnapshot<MachineT>::value) {
      // Consec/Depth stay out of the key: compatibility is an inequality,
      // so entries differing only there must share a bucket.
      std::uint64_t H = hashCombine(F.M.snapshotHash(), F.LastId);
      // Lock striping by hash: workers probing distinct states proceed in
      // parallel instead of serializing on one global cache mutex.  The
      // size cap is checked against a relaxed atomic, so it is approximate
      // under contention — the cache may overshoot by at most one entry
      // per worker, which only affects memory, never soundness.
      CacheStripe &Stripe = CacheStripes[H & (NumCacheStripes - 1)];
      std::lock_guard<std::mutex> L(Stripe.Mu);
      std::vector<CacheEntry> &Bucket = Stripe.Map[H];
      for (const CacheEntry &E : Bucket)
        if (E.LastId == F.LastId && E.Consec <= F.Consec &&
            E.Depth <= F.Depth && E.M.sameSnapshot(F.M))
          return true;
      if (CacheCount.load(std::memory_order_relaxed) < Opts.MaxStateCache) {
        Bucket.emplace_back(F.M, F.LastId, F.Consec, F.Depth);
        CacheCount.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    } else {
      (void)F;
      return false;
    }
  }

  /// True when participant \p C's next step is asleep at \p F.
  bool asleep(const Frame &F, ThreadId C) const {
    for (const SleepEntry &E : F.Sleep)
      if (E.Tid == C)
        return true;
    return false;
  }

  std::uint64_t tallyOf(const Frame &F, ThreadId C) const {
    auto It = F.StepTally.find(C);
    return It == F.StepTally.end() ? 0 : It->second;
  }

  /// Sleep set of the child reached by stepping \p C with footprint \p CF:
  /// the parent's sleeping entries plus its already-pushed siblings, minus
  /// C itself (it just ran) and minus everything whose footprint conflicts
  /// with CF (the covering interleaving no longer commutes past C's step).
  void childSleep(const Frame &F, ThreadId C, const Footprint &CF,
                  std::vector<SleepEntry> &Out) const {
    for (const std::vector<SleepEntry> *Src : {&F.Sleep, &F.DoneSibs})
      for (const SleepEntry &E : *Src)
        if (E.Tid != C && !footprintsConflict(E.Foot, CF))
          Out.push_back(E);
  }

  void recordOutcome(const MachineT &M, Shard &S) {
    Outcome O;
    O.FinalLog = M.log();
    O.Returns = M.returns();
    if constexpr (MachineHasFootprint<MachineT>::value) {
      // Under POR raw final logs are in bijection with schedules, so the
      // reduction must deduplicate canonical trace forms instead (see
      // GenericExploreOptions::Por).
      if (PorOn)
        O.FinalLog = canonicalizeLog(O.FinalLog, [&M](KindId Kind) {
          return M.eventFootprint(Event(0, Kind));
        });
    }
    if (Opts.OnOutcome) {
      // Callback path: the dedup set must stay global — the callback fires
      // exactly once per DISTINCT outcome and checkers count those calls —
      // so it remains serialized under ResMu, which also means callbacks
      // need no locking of their own.
      bool DoStop = false;
      {
        std::lock_guard<std::mutex> L(ResMu);
        if (!Dedup.insert(O))
          return;
        // The corpus retains only deduplicated outcomes: pushing before
        // the dedup test (as an earlier version did) stored one copy of a
        // terminal log PER SCHEDULE reaching it, crowding the capped
        // buffer with duplicates.
        if (Opts.CollectCorpus && S.Corpus.size() < Opts.MaxCorpus)
          S.Corpus.push_back(O.FinalLog);
        std::string V = Opts.OnOutcome(O);
        if (!V.empty()) {
          if (!Violated) {
            Violated = true;
            Violation = V + "\n  log: " + logToString(M.log());
          }
          DoStop = true;
        }
      }
      if (DoStop)
        stopAll();
      return;
    }
    // Stored path: everything is worker-local, so recording an outcome
    // takes no lock; cross-worker duplicates collapse at the join.
    if (!S.Dedup.insert(O))
      return;
    if (Opts.CollectCorpus && S.Corpus.size() < Opts.MaxCorpus)
      S.Corpus.push_back(O.FinalLog);
    if (S.Outcomes.size() < Opts.MaxStoredOutcomes)
      S.Outcomes.push_back(std::move(O));
    else
      S.StoreTruncated = true; // reported as truncation at the join
  }

  /// Joins the per-worker result shards after the workers exit, in worker
  /// order.  Outcomes flow through a fresh dedup set (each worker
  /// deduplicated only its own stream); the corpus concatenates up to its
  /// cap; any shard-local truncation fails the run closed.  With one
  /// worker this moves the single shard's vectors unchanged, so
  /// sequential runs are bit-identical to the former global recording.
  void mergeShardResults(ExploreResult &Res) {
    bool Truncated = false;
    if (!Opts.OnOutcome) {
      OutcomeDeduper Merged;
      for (Shard &S : Shards) {
        Truncated |= S.StoreTruncated;
        for (Outcome &O : S.Outcomes) {
          if (!Merged.insert(O))
            continue;
          if (Res.Outcomes.size() < Opts.MaxStoredOutcomes)
            Res.Outcomes.push_back(std::move(O));
          else
            Truncated = true;
        }
      }
    }
    for (Shard &S : Shards)
      for (Log &L : S.Corpus) {
        if (Res.Corpus.size() >= Opts.MaxCorpus)
          break;
        Res.Corpus.push_back(std::move(L));
      }
    if (Truncated) {
      Res.Complete = false;
      if (Res.Truncation.empty())
        Res.Truncation = "MaxStoredOutcomes budget (" +
                         std::to_string(Opts.MaxStoredOutcomes) +
                         ") exhausted";
    }
  }

  void violate(const MachineT &M, const std::string &Msg) {
    std::string Full = Msg + "\n  log: " + logToString(M.log());
    {
      std::lock_guard<std::mutex> L(ResMu);
      if (!Violated) {
        Violated = true;
        Violation = std::move(Full);
      }
    }
    stopAll();
  }

  void stopAll() {
    Stop.store(true, std::memory_order_relaxed);
    QCv.notify_all();
  }

  /// Sampled intermediate logs go straight into the worker's own shard —
  /// the former global buffer serialized every worker on ResMu mid-search.
  void pushCorpus(const Log &L, Shard &S) {
    if (S.Corpus.size() < Opts.MaxCorpus)
      S.Corpus.push_back(L);
  }

  /// Blocks until a frame is available or the search is over; false means
  /// the worker should exit.
  bool pullWork(std::vector<Frame> &Stack) {
    std::unique_lock<std::mutex> L(QMu);
    ++Idle;
    Hungry.store(Idle, std::memory_order_relaxed);
    while (true) {
      if (Finished)
        return false;
      if (!Injector.empty() && !Stop.load(std::memory_order_relaxed)) {
        Stack.push_back(std::move(Injector.front()));
        Injector.pop_front();
        --Idle;
        Hungry.store(Idle, std::memory_order_relaxed);
        return true;
      }
      if (Stop.load(std::memory_order_relaxed) || Idle == Workers) {
        // Nothing left anywhere and nobody can produce more (or we are
        // aborting): wake everyone up to exit.
        Finished = true;
        QCv.notify_all();
        return false;
      }
      QCv.wait(L);
    }
  }

  /// Moves the shallowest frame with unvisited children into the shared
  /// injector for an idle worker; the donor keeps the rest of its stack.
  /// True when a frame was donated.
  bool donate(std::vector<Frame> &Stack) {
    for (Frame &F : Stack) {
      if (!F.Expanded || F.NextChild >= F.Ready.size())
        continue;
      Frame Rest(F.M, F.LastId, F.Consec, F.Depth);
      Rest.Ready = F.Ready;
      Rest.NextChild = F.NextChild;
      Rest.Expanded = true;
      Rest.Sleep = F.Sleep;
      Rest.DoneSibs = F.DoneSibs;
      Rest.ReadyFoot = F.ReadyFoot;
      Rest.StepTally = F.StepTally;
      F.NextChild = F.Ready.size();
      {
        std::lock_guard<std::mutex> L(QMu);
        Injector.push_back(std::move(Rest));
      }
      QCv.notify_one();
      return true;
    }
    return false;
  }

  const Options &Opts;
  const unsigned Workers;

  /// The reduction is actually on: requested AND the machine declares
  /// footprints.
  const bool PorOn;

  // Work sharing.
  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<Frame> Injector;      ///< guarded by QMu
  unsigned Idle = 0;               ///< guarded by QMu
  bool Finished = false;           ///< guarded by QMu
  std::atomic<unsigned> Hungry{0}; ///< lock-free mirror of Idle

  // Early abort + schedule budget.
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Schedules{0};

  // Shared result slots (first violation wins).  Outcome/corpus storage
  // lives in the per-worker Shards; only the OnOutcome callback path
  // still deduplicates globally here.
  std::mutex ResMu;
  bool Violated = false;  ///< guarded by ResMu
  std::string Violation;  ///< guarded by ResMu
  bool Complete = true;   ///< guarded by ResMu
  std::string Truncation; ///< guarded by ResMu
  OutcomeDeduper Dedup;   ///< guarded by ResMu (OnOutcome path only)

  // State-dedup cache, lock-striped by snapshot hash so concurrent
  // workers only contend when probing the same stripe.
  static constexpr std::size_t NumCacheStripes = 16;
  struct CacheStripe {
    std::mutex Mu;
    std::unordered_map<std::uint64_t, std::vector<CacheEntry>> Map;
  };
  std::array<CacheStripe, NumCacheStripes> CacheStripes;
  std::atomic<std::size_t> CacheCount{0}; ///< approximate (relaxed)

  std::vector<Shard> Shards;
};

/// Publishes one run's aggregate counters into the obs metrics registry
/// (no-op while the registry is disabled); defined in Explorer.cpp so the
/// template below stays header-only.
void publishExploreMetrics(const ExploreResult &Res);

} // namespace detail

/// Explores every schedule reachable from \p Root, on Opts.Threads
/// workers.
template <typename MachineT>
ExploreResult exploreGeneric(const MachineT &Root,
                             const GenericExploreOptions<MachineT> &Opts) {
  if (Opts.Metrics)
    obs::setEnabled(true);
  obs::Span ExploreSpan("explorer.explore", "explorer");
  unsigned Workers = Opts.Threads;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  detail::GenericDfs<MachineT> D(Opts, Workers);
  ExploreResult Res = D.run(Root);
  if (obs::enabled())
    detail::publishExploreMetrics(Res);
  return Res;
}

/// Result of a differential POR-vs-full run (checkPorEquivalence).
struct PorEquivalenceReport {
  bool Ok = false;    ///< both explorations ran to completion, no violation
  bool Match = false; ///< the deduplicated canonical outcome sets agree
  std::string Detail; ///< failure reason / first diverging outcome
  std::uint64_t FullSchedules = 0;
  std::uint64_t PorSchedules = 0;
  std::uint64_t FullStates = 0;
  std::uint64_t PorStates = 0;
  std::uint64_t FullOutcomes = 0; ///< size of the canonicalized full set
  std::uint64_t PorOutcomes = 0;
  std::uint64_t SleepSkips = 0;
};

/// Differential soundness check for the partial-order reduction: explores
/// \p Root twice from the same options — once in full (Por off, fairness
/// off, so both runs range over the same trace space) and once reduced —
/// and compares the deduplicated outcome sets after canonicalizing the
/// full run's logs the same way the reduced run does.  A mismatch means a
/// machine's declared footprints under-report a dependence (or a reduction
/// bug); Match=false with the first diverging outcome in Detail.
///
/// Bound divergent workloads with Opts.MaxParticipantSteps/MaxSteps, not
/// FairnessBound (which this check clears on both sides).
template <typename MachineT>
PorEquivalenceReport
checkPorEquivalence(const MachineT &Root,
                    GenericExploreOptions<MachineT> Opts) {
  PorEquivalenceReport R;
  // Same trace space on both sides: the consecutive-run fairness filter is
  // linearization-dependent (POR ignores it), so the full run must not
  // apply it either; divergence is bounded by the trace-invariant knobs.
  Opts.FairnessBound = ~0u;
  Opts.OnOutcome = nullptr;
  Opts.CollectCorpus = false;

  GenericExploreOptions<MachineT> FullOpts = Opts;
  FullOpts.Por = false;
  ExploreResult Full = exploreGeneric(Root, FullOpts);
  R.FullSchedules = Full.SchedulesExplored;
  R.FullStates = Full.StatesExplored;
  if (!Full.Ok) {
    R.Detail = "full exploration violated: " + Full.Violation;
    return R;
  }
  if (!Full.Complete) {
    R.Detail = "full exploration truncated: " + Full.Truncation;
    return R;
  }

  GenericExploreOptions<MachineT> PorOpts = Opts;
  PorOpts.Por = true;
  ExploreResult Por = exploreGeneric(Root, PorOpts);
  R.PorSchedules = Por.SchedulesExplored;
  R.PorStates = Por.StatesExplored;
  R.SleepSkips = Por.PorSleepSkips;
  if (!Por.Ok) {
    R.Detail = "reduced exploration violated: " + Por.Violation;
    return R;
  }
  if (!Por.Complete) {
    R.Detail = "reduced exploration truncated: " + Por.Truncation;
    return R;
  }
  R.Ok = true;

  OutcomeSet PorSet;
  for (const Outcome &O : Por.Outcomes)
    PorSet.insert(O);
  R.PorOutcomes = PorSet.size();

  // Canonicalize the full run's raw linearization logs exactly the way the
  // reduced run recorded its outcomes, then compare both directions.
  R.Match = true;
  OutcomeSet FullSet;
  for (Outcome O : Full.Outcomes) {
    if constexpr (detail::MachineHasFootprint<MachineT>::value) {
      if (Por.PorApplied)
        O.FinalLog = canonicalizeLog(O.FinalLog, [&Root](KindId Kind) {
          return Root.eventFootprint(Event(0, Kind));
        });
    }
    if (!FullSet.insert(O))
      continue; // several linearizations of one trace
    if (R.Match && !PorSet.contains(O)) {
      R.Match = false;
      R.Detail = "outcome reachable in full exploration is missing under "
                 "POR (under-reported footprint?)\n  canonical log: " +
                 logToString(O.FinalLog);
    }
  }
  R.FullOutcomes = FullSet.size();
  if (R.Match)
    for (const Outcome &O : Por.Outcomes)
      if (!FullSet.contains(O)) {
        R.Match = false;
        R.Detail = "outcome recorded under POR does not occur in full "
                   "exploration\n  canonical log: " +
                   logToString(O.FinalLog);
        break;
      }
  return R;
}

/// Options alias for the multicore machine (the common case).
using ExploreOptions = GenericExploreOptions<MultiCoreMachine>;

/// Explores every schedule of the multicore machine described by \p Cfg.
ExploreResult exploreMachine(MachineConfigPtr Cfg,
                             const ExploreOptions &Opts);

/// checkPorEquivalence on the multicore machine described by \p Cfg.
PorEquivalenceReport checkPorEquivalence(MachineConfigPtr Cfg,
                                         ExploreOptions Opts);

/// Runs a single schedule chosen by \p Pick (given the schedulable set and
/// the log, return the CPU to step); used to replay specific interleavings
/// such as the paper's §2 example.
Outcome runSchedule(
    MachineConfigPtr Cfg,
    const std::function<ThreadId(const std::vector<ThreadId> &, const Log &)>
        &Pick,
    std::string *Error = nullptr);

} // namespace ccal

#endif // CCAL_MACHINE_EXPLORER_H
