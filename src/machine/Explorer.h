//===- machine/Explorer.h - Schedule enumeration ---------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Explorer enumerates *all* schedules of a machine up to a fairness
/// bound, by depth-first search over machine snapshots.  This is the
/// executable counterpart of the paper's universal quantification over
/// environment contexts / schedulers: a property checked by the Explorer
/// holds for every interleaving the bound admits.
///
/// The fairness bound caps how many consecutive steps one participant may
/// take while others are runnable — the finite form of the paper's fair
/// hardware scheduler assumption (§3.2), without which a spinning CPU
/// would generate infinitely many schedules.
///
/// The DFS is generic over the machine: the multicore machine (§3) and the
/// multithreaded machine (§5) both instantiate it.  A machine must be
/// copyable and provide ok()/error(), allIdle(), schedulable(), step(),
/// log(), and returns().
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_EXPLORER_H
#define CCAL_MACHINE_EXPLORER_H

#include "machine/MultiCore.h"

#include <functional>
#include <set>
#include <string>
#include <vector>

namespace ccal {

/// One terminal execution.
struct Outcome {
  Log FinalLog;
  std::map<ThreadId, std::vector<std::int64_t>> Returns;
};

/// Exploration knobs, parameterized by the machine type so invariants can
/// inspect the concrete machine.
template <typename MachineT> struct GenericExploreOptions {
  /// Max consecutive steps of one participant while another is schedulable
  /// (the paper's "any CPU can be scheduled within m steps").
  unsigned FairnessBound = 6;

  /// Budgets; exceeding MaxSteps along a path is reported as divergence.
  std::uint64_t MaxSchedules = 1u << 22;
  std::uint64_t MaxSteps = 4096;

  /// Invariant checked after every machine step; a non-empty return is a
  /// violation (used for mutual exclusion, guarantee conditions, ...).
  std::function<std::string(const MachineT &)> Invariant;

  /// When true, terminal logs (and sampled intermediate logs) are retained
  /// in ExploreResult::Corpus for compat implication checking, capped at
  /// MaxCorpus entries.
  bool CollectCorpus = false;
  size_t MaxCorpus = 2048;

  /// When set, every (deduplicated) terminal outcome is passed to this
  /// callback *instead of* being stored in ExploreResult::Outcomes —
  /// essential for large schedule spaces.  Returning a non-empty string
  /// aborts the exploration with that violation.
  std::function<std::string(const Outcome &)> OnOutcome;

  /// Cap on stored outcomes when OnOutcome is not set.
  size_t MaxStoredOutcomes = 1u << 18;
};

/// Aggregate result over all schedules.
struct ExploreResult {
  bool Ok = true;

  /// False when a budget (MaxSchedules) truncated the search; obligations
  /// then cover only the explored prefix.
  bool Complete = true;

  std::string Violation; ///< first violation with its log

  std::vector<Outcome> Outcomes; ///< one per schedule (deduplicated)
  std::uint64_t SchedulesExplored = 0;
  std::uint64_t StatesExplored = 0;
  std::uint64_t InvariantChecks = 0;
  std::uint64_t MaxLogLen = 0;
  std::vector<Log> Corpus;
};

namespace detail {

/// The DFS worker shared by all machine types.
template <typename MachineT> class GenericDfs {
public:
  GenericDfs(const GenericExploreOptions<MachineT> &Opts, ExploreResult &Res)
      : Opts(Opts), Res(Res) {}

  void explore(const MachineT &M, ThreadId LastId, unsigned Consec,
               std::uint64_t Depth) {
    if (!Res.Ok)
      return;
    if (Res.SchedulesExplored >= Opts.MaxSchedules) {
      Res.Complete = false;
      return;
    }
    ++Res.StatesExplored;
    Res.MaxLogLen = std::max(Res.MaxLogLen,
                             static_cast<std::uint64_t>(M.log().size()));

    if (Opts.Invariant) {
      ++Res.InvariantChecks;
      std::string V = Opts.Invariant(M);
      if (!V.empty()) {
        violate(M, "invariant violated: " + V);
        return;
      }
    }

    std::vector<ThreadId> Ready = M.schedulable();
    if (Ready.empty()) {
      if (!M.allIdle()) {
        violate(M, "deadlock: nothing schedulable but work remains");
        return;
      }
      ++Res.SchedulesExplored;
      recordOutcome(M);
      return;
    }
    if (Depth >= Opts.MaxSteps) {
      violate(M, "step bound exceeded (divergence under fair schedules?)");
      return;
    }

    for (ThreadId C : Ready) {
      // Fairness: one participant may not run more than FairnessBound
      // consecutive steps while someone else is waiting.
      if (Ready.size() > 1 && C == LastId && Consec >= Opts.FairnessBound)
        continue;
      MachineT Next = M;
      if (!Next.step(C)) {
        violate(Next, Next.error());
        return;
      }
      if (Opts.CollectCorpus && (Depth & 3) == 0 &&
          Res.Corpus.size() < Opts.MaxCorpus)
        Res.Corpus.push_back(Next.log());
      explore(Next, C, C == LastId ? Consec + 1 : 1, Depth + 1);
      if (!Res.Ok)
        return;
    }
  }

private:
  void violate(const MachineT &M, const std::string &Msg) {
    if (!Res.Ok)
      return;
    Res.Ok = false;
    Res.Violation = Msg + "\n  log: " + logToString(M.log());
  }

  void recordOutcome(const MachineT &M) {
    Outcome O;
    O.FinalLog = M.log();
    O.Returns = M.returns();
    if (Opts.CollectCorpus && Res.Corpus.size() < Opts.MaxCorpus)
      Res.Corpus.push_back(O.FinalLog);
    // Deduplicate by hash of log + returns.
    std::uint64_t H = hashLog(O.FinalLog);
    for (const auto &[Tid, Rets] : O.Returns) {
      H = H * 1099511628211ULL + Tid;
      for (std::int64_t R : Rets)
        H = H * 1099511628211ULL + static_cast<std::uint64_t>(R);
    }
    if (!Seen.insert(H).second)
      return;
    if (Opts.OnOutcome) {
      std::string V = Opts.OnOutcome(O);
      if (!V.empty())
        violate(M, V);
      return;
    }
    if (Res.Outcomes.size() < Opts.MaxStoredOutcomes)
      Res.Outcomes.push_back(std::move(O));
    else
      Res.Complete = false; // stored set truncated
  }

  const GenericExploreOptions<MachineT> &Opts;
  ExploreResult &Res;
  std::set<std::uint64_t> Seen;
};

} // namespace detail

/// Explores every schedule reachable from \p Root.
template <typename MachineT>
ExploreResult exploreGeneric(const MachineT &Root,
                             const GenericExploreOptions<MachineT> &Opts) {
  ExploreResult Res;
  if (!Root.ok()) {
    Res.Ok = false;
    Res.Violation = Root.error();
    return Res;
  }
  detail::GenericDfs<MachineT> D(Opts, Res);
  D.explore(Root, /*LastId=*/~0u, /*Consec=*/0, /*Depth=*/0);
  return Res;
}

/// Options alias for the multicore machine (the common case).
using ExploreOptions = GenericExploreOptions<MultiCoreMachine>;

/// Explores every schedule of the multicore machine described by \p Cfg.
ExploreResult exploreMachine(MachineConfigPtr Cfg,
                             const ExploreOptions &Opts);

/// Runs a single schedule chosen by \p Pick (given the schedulable set and
/// the log, return the CPU to step); used to replay specific interleavings
/// such as the paper's §2 example.
Outcome runSchedule(
    MachineConfigPtr Cfg,
    const std::function<ThreadId(const std::vector<ThreadId> &, const Log &)>
        &Pick,
    std::string *Error = nullptr);

} // namespace ccal

#endif // CCAL_MACHINE_EXPLORER_H
