//===- machine/Explorer.h - Schedule enumeration ---------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Explorer enumerates *all* schedules of a machine up to a fairness
/// bound, by depth-first search over machine snapshots.  This is the
/// executable counterpart of the paper's universal quantification over
/// environment contexts / schedulers: a property checked by the Explorer
/// holds for every interleaving the bound admits.
///
/// The fairness bound caps how many consecutive steps one participant may
/// take while others are runnable — the finite form of the paper's fair
/// hardware scheduler assumption (§3.2), without which a spinning CPU
/// would generate infinitely many schedules.
///
/// The DFS is generic over the machine: the multicore machine (§3) and the
/// multithreaded machine (§5) both instantiate it.  A machine must be
/// copyable and provide ok()/error(), allIdle(), schedulable(), step(),
/// log(), and returns().
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_EXPLORER_H
#define CCAL_MACHINE_EXPLORER_H

#include "machine/MultiCore.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace ccal {

/// One terminal execution.
struct Outcome {
  Log FinalLog;
  std::map<ThreadId, std::vector<std::int64_t>> Returns;
};

/// Exploration knobs, parameterized by the machine type so invariants can
/// inspect the concrete machine.
template <typename MachineT> struct GenericExploreOptions {
  /// Max consecutive steps of one participant while another is schedulable
  /// (the paper's "any CPU can be scheduled within m steps").
  unsigned FairnessBound = 6;

  /// Budgets; exceeding MaxSteps along a path is reported as divergence.
  std::uint64_t MaxSchedules = 1u << 22;
  std::uint64_t MaxSteps = 4096;

  /// Invariant checked after every machine step; a non-empty return is a
  /// violation (used for mutual exclusion, guarantee conditions, ...).
  std::function<std::string(const MachineT &)> Invariant;

  /// When true, terminal logs (and sampled intermediate logs) are retained
  /// in ExploreResult::Corpus for compat implication checking, capped at
  /// MaxCorpus entries.
  bool CollectCorpus = false;
  size_t MaxCorpus = 2048;

  /// When set, every (deduplicated) terminal outcome is passed to this
  /// callback *instead of* being stored in ExploreResult::Outcomes —
  /// essential for large schedule spaces.  Returning a non-empty string
  /// aborts the exploration with that violation.
  std::function<std::string(const Outcome &)> OnOutcome;

  /// Cap on stored outcomes when OnOutcome is not set.
  size_t MaxStoredOutcomes = 1u << 18;

  /// Worker threads sharing the search frontier.  1 (the default) runs the
  /// exact sequential DFS and produces bit-identical results to the
  /// single-threaded Explorer; 0 means one worker per hardware thread.
  /// With more than one worker, Invariant must be safe to call
  /// concurrently on distinct machine snapshots (log-replay invariants
  /// are); OnOutcome calls are serialized by the Explorer itself.
  unsigned Threads = 1;

  /// When true, prune states the search has already visited (snapshot
  /// hash, with full structural comparison on hash collision — never a
  /// silent merge).  Sound because a machine snapshot determines the
  /// entire subtree: a revisit is pruned only when the first visit's
  /// fairness context was at least as permissive (same last participant,
  /// no larger consecutive-run count) and its remaining step budget at
  /// least as large, so every schedule admissible from the revisit was
  /// already explored from the first visit.  Off by default: pruning
  /// changes SchedulesExplored/StatesExplored (they then count *distinct*
  /// states) and resolves log-invisible cycles as termination rather than
  /// a step-budget divergence report.
  bool StateCache = false;

  /// Cap on cached snapshots; past it the search stays sound but stops
  /// remembering new states.
  size_t MaxStateCache = 1u << 20;
};

/// Aggregate result over all schedules.
struct ExploreResult {
  bool Ok = true;

  /// False when a budget (MaxSchedules) truncated the search; obligations
  /// then cover only the explored prefix.
  bool Complete = true;

  std::string Violation; ///< first violation with its log

  std::vector<Outcome> Outcomes; ///< one per schedule (deduplicated)
  std::uint64_t SchedulesExplored = 0;
  std::uint64_t StatesExplored = 0;
  std::uint64_t InvariantChecks = 0;
  std::uint64_t MaxLogLen = 0;
  std::uint64_t CacheHits = 0; ///< states pruned by the StateCache
  std::vector<Log> Corpus;
};

namespace detail {

/// Detects machines providing snapshotHash()/sameSnapshot(); the
/// StateCache option silently degrades to no caching without them.
template <typename M, typename = void>
struct MachineHasSnapshot : std::false_type {};
template <typename M>
struct MachineHasSnapshot<
    M, std::void_t<decltype(std::declval<const M &>().snapshotHash()),
                   decltype(std::declval<const M &>().sameSnapshot(
                       std::declval<const M &>()))>> : std::true_type {};

/// Sound terminal-outcome deduplication.  An earlier version hashed
/// returns and thread ids by chain-multiplying with no field separators,
/// so e.g. returns {1:[], 2:[]} and {1:[2]} hashed equal over the same log
/// and one outcome was silently dropped — an unsoundness in every checker
/// built on the Explorer.  This version mixes each field through
/// hashMix64 with length prefixes, and resolves residual 64-bit
/// collisions by structural comparison instead of merging.
class OutcomeDeduper {
public:
  static std::uint64_t hash(const Outcome &O) {
    std::uint64_t H = hashLog(O.FinalLog);
    H = hashCombine(H, O.Returns.size());
    for (const auto &[Tid, Rets] : O.Returns) {
      H = hashCombine(H, Tid);
      H = hashCombine(H, Rets.size());
      for (std::int64_t R : Rets)
        H = hashCombine(H, static_cast<std::uint64_t>(R));
    }
    return H;
  }

  static bool same(const Outcome &A, const Outcome &B) {
    return A.FinalLog == B.FinalLog && A.Returns == B.Returns;
  }

  /// True when \p O was not seen before.
  bool insert(const Outcome &O) {
    std::vector<Outcome> &Bucket = Seen[hash(O)];
    for (const Outcome &Prev : Bucket)
      if (same(Prev, O))
        return false;
    Bucket.push_back(O);
    return true;
  }

private:
  std::unordered_map<std::uint64_t, std::vector<Outcome>> Seen;
};

/// The search engine shared by all machine types: an explicit-stack DFS
/// run by a pool of workers over a shared frontier.
///
/// Each worker owns a stack of frames; a frame is one machine snapshot
/// plus the iteration state over its schedulable children, so the top of
/// the stack advances exactly like the recursive formulation (a child
/// subtree is fully explored before the next sibling starts).  Work
/// sharing: when some worker is idle, a busy worker moves the
/// *shallowest* frame with unvisited children — the largest pending
/// subtree — into the shared injector deque, where an idle worker picks
/// it up.  Every node is expanded exactly once, so all counters are
/// schedule-deterministic; only the order of Outcomes/Corpus depends on
/// the number of workers.
///
/// A single shared first-violation slot plus an atomic stop flag give
/// early abort: the first worker to find a violation wins, everyone else
/// drains.  With one worker the engine visits states in exactly the
/// recursive order and produces bit-identical results to the sequential
/// Explorer.
template <typename MachineT> class GenericDfs {
public:
  using Options = GenericExploreOptions<MachineT>;

  GenericDfs(const Options &Opts, unsigned Workers)
      : Opts(Opts), Workers(Workers), Shards(Workers) {}

  ExploreResult run(const MachineT &Root) {
    ExploreResult Res;
    if (!Root.ok()) {
      Res.Ok = false;
      Res.Violation = Root.error();
      return Res;
    }
    Injector.emplace_back(Root, /*LastId=*/~0u, /*Consec=*/0, /*Depth=*/0);
    if (Workers == 1) {
      worker(0);
    } else {
      std::vector<std::thread> Pool;
      Pool.reserve(Workers);
      for (unsigned I = 0; I != Workers; ++I)
        Pool.emplace_back([this, I] { worker(I); });
      for (std::thread &T : Pool)
        T.join();
    }
    Res.Ok = !Violated;
    Res.Violation = std::move(Violation);
    Res.Complete = Complete;
    Res.SchedulesExplored = Schedules.load();
    for (const Shard &S : Shards) {
      Res.StatesExplored += S.States;
      Res.InvariantChecks += S.InvariantChecks;
      Res.CacheHits += S.CacheHits;
      Res.MaxLogLen = std::max(Res.MaxLogLen, S.MaxLogLen);
    }
    Res.Outcomes = std::move(Outcomes);
    Res.Corpus = std::move(Corpus);
    return Res;
  }

private:
  /// One DFS node: a machine snapshot plus sibling-iteration state.
  struct Frame {
    MachineT M;
    ThreadId LastId;
    unsigned Consec;
    std::uint64_t Depth;
    /// The full schedulable set (fairness reads its size even after some
    /// children have been visited or the frame has been donated).
    std::vector<ThreadId> Ready;
    size_t NextChild = 0;
    bool Expanded = false;

    Frame(MachineT M, ThreadId LastId, unsigned Consec, std::uint64_t Depth)
        : M(std::move(M)), LastId(LastId), Consec(Consec), Depth(Depth) {}
  };

  /// Per-worker counters, merged after the join (no hot-path sharing).
  struct Shard {
    std::uint64_t States = 0;
    std::uint64_t InvariantChecks = 0;
    std::uint64_t MaxLogLen = 0;
    std::uint64_t CacheHits = 0;
  };

  struct CacheEntry {
    MachineT M;
    ThreadId LastId;
    unsigned Consec;
    std::uint64_t Depth;

    CacheEntry(MachineT M, ThreadId LastId, unsigned Consec,
               std::uint64_t Depth)
        : M(std::move(M)), LastId(LastId), Consec(Consec), Depth(Depth) {}
  };

  void worker(unsigned Idx) {
    Shard &S = Shards[Idx];
    std::vector<Frame> Stack;
    while (true) {
      if (Stop.load(std::memory_order_relaxed))
        Stack.clear();
      if (Stack.empty()) {
        if (!pullWork(Stack))
          return;
        continue;
      }
      if (Workers > 1 && Hungry.load(std::memory_order_relaxed) > 0)
        donate(Stack);
      Frame &Top = Stack.back();
      if (!Top.Expanded) {
        if (!expand(Top, S)) {
          Stack.pop_back();
          continue;
        }
      }
      if (Top.NextChild >= Top.Ready.size()) {
        Stack.pop_back();
        continue;
      }
      ThreadId C = Top.Ready[Top.NextChild++];
      // Fairness: one participant may not run more than FairnessBound
      // consecutive steps while someone else is waiting.
      if (Top.Ready.size() > 1 && C == Top.LastId &&
          Top.Consec >= Opts.FairnessBound)
        continue;
      Frame Child(Top.M, C, C == Top.LastId ? Top.Consec + 1 : 1,
                  Top.Depth + 1);
      if (!Child.M.step(C)) {
        violate(Child.M, Child.M.error());
        continue;
      }
      if (Opts.CollectCorpus && (Top.Depth & 3) == 0)
        pushCorpus(Child.M.log());
      Stack.push_back(std::move(Child));
    }
  }

  /// First visit of a node: budget, cache, invariant, terminal, and depth
  /// checks.  True when the node has children to iterate.
  bool expand(Frame &F, Shard &S) {
    if (Schedules.load(std::memory_order_relaxed) >= Opts.MaxSchedules) {
      {
        std::lock_guard<std::mutex> L(ResMu);
        Complete = false;
      }
      stopAll();
      return false;
    }
    ++S.States;
    S.MaxLogLen =
        std::max(S.MaxLogLen, static_cast<std::uint64_t>(F.M.log().size()));
    if (Opts.StateCache && cachedOrRemember(F)) {
      ++S.CacheHits;
      return false;
    }
    if (Opts.Invariant) {
      ++S.InvariantChecks;
      std::string V = Opts.Invariant(F.M);
      if (!V.empty()) {
        violate(F.M, "invariant violated: " + V);
        return false;
      }
    }
    F.Ready = F.M.schedulable();
    if (F.Ready.empty()) {
      if (!F.M.allIdle()) {
        violate(F.M, "deadlock: nothing schedulable but work remains");
        return false;
      }
      Schedules.fetch_add(1, std::memory_order_relaxed);
      recordOutcome(F.M);
      return false;
    }
    if (F.Depth >= Opts.MaxSteps) {
      violate(F.M, "step bound exceeded (divergence under fair schedules?)");
      return false;
    }
    F.Expanded = true;
    return true;
  }

  /// True when an equivalent-or-more-permissive visit of F's state is
  /// already cached; otherwise remembers F.  A cached visit covers the
  /// revisit only when its last participant is the same with no larger
  /// consecutive-run count (so fairness pruned no schedule the revisit
  /// would explore) and its depth no larger (so the step budget pruned
  /// none either).
  bool cachedOrRemember(const Frame &F) {
    if constexpr (MachineHasSnapshot<MachineT>::value) {
      // Consec/Depth stay out of the key: compatibility is an inequality,
      // so entries differing only there must share a bucket.
      std::uint64_t H = hashCombine(F.M.snapshotHash(), F.LastId);
      std::lock_guard<std::mutex> L(CacheMu);
      std::vector<CacheEntry> &Bucket = Cache[H];
      for (const CacheEntry &E : Bucket)
        if (E.LastId == F.LastId && E.Consec <= F.Consec &&
            E.Depth <= F.Depth && E.M.sameSnapshot(F.M))
          return true;
      if (CacheCount < Opts.MaxStateCache) {
        Bucket.emplace_back(F.M, F.LastId, F.Consec, F.Depth);
        ++CacheCount;
      }
      return false;
    } else {
      (void)F;
      return false;
    }
  }

  void recordOutcome(const MachineT &M) {
    Outcome O;
    O.FinalLog = M.log();
    O.Returns = M.returns();
    bool DoStop = false;
    {
      std::lock_guard<std::mutex> L(ResMu);
      if (Opts.CollectCorpus && Corpus.size() < Opts.MaxCorpus)
        Corpus.push_back(O.FinalLog);
      if (!Dedup.insert(O))
        return;
      if (Opts.OnOutcome) {
        // Serialized under ResMu so callbacks need no locking of their
        // own.
        std::string V = Opts.OnOutcome(O);
        if (!V.empty()) {
          if (!Violated) {
            Violated = true;
            Violation = V + "\n  log: " + logToString(M.log());
          }
          DoStop = true;
        }
      } else if (Outcomes.size() < Opts.MaxStoredOutcomes) {
        Outcomes.push_back(std::move(O));
      } else {
        Complete = false; // stored set truncated
      }
    }
    if (DoStop)
      stopAll();
  }

  void violate(const MachineT &M, const std::string &Msg) {
    std::string Full = Msg + "\n  log: " + logToString(M.log());
    {
      std::lock_guard<std::mutex> L(ResMu);
      if (!Violated) {
        Violated = true;
        Violation = std::move(Full);
      }
    }
    stopAll();
  }

  void stopAll() {
    Stop.store(true, std::memory_order_relaxed);
    QCv.notify_all();
  }

  void pushCorpus(const Log &L) {
    std::lock_guard<std::mutex> G(ResMu);
    if (Corpus.size() < Opts.MaxCorpus)
      Corpus.push_back(L);
  }

  /// Blocks until a frame is available or the search is over; false means
  /// the worker should exit.
  bool pullWork(std::vector<Frame> &Stack) {
    std::unique_lock<std::mutex> L(QMu);
    ++Idle;
    Hungry.store(Idle, std::memory_order_relaxed);
    while (true) {
      if (Finished)
        return false;
      if (!Injector.empty() && !Stop.load(std::memory_order_relaxed)) {
        Stack.push_back(std::move(Injector.front()));
        Injector.pop_front();
        --Idle;
        Hungry.store(Idle, std::memory_order_relaxed);
        return true;
      }
      if (Stop.load(std::memory_order_relaxed) || Idle == Workers) {
        // Nothing left anywhere and nobody can produce more (or we are
        // aborting): wake everyone up to exit.
        Finished = true;
        QCv.notify_all();
        return false;
      }
      QCv.wait(L);
    }
  }

  /// Moves the shallowest frame with unvisited children into the shared
  /// injector for an idle worker; the donor keeps the rest of its stack.
  void donate(std::vector<Frame> &Stack) {
    for (Frame &F : Stack) {
      if (!F.Expanded || F.NextChild >= F.Ready.size())
        continue;
      Frame Rest(F.M, F.LastId, F.Consec, F.Depth);
      Rest.Ready = F.Ready;
      Rest.NextChild = F.NextChild;
      Rest.Expanded = true;
      F.NextChild = F.Ready.size();
      {
        std::lock_guard<std::mutex> L(QMu);
        Injector.push_back(std::move(Rest));
      }
      QCv.notify_one();
      return;
    }
  }

  const Options &Opts;
  const unsigned Workers;

  // Work sharing.
  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<Frame> Injector;      ///< guarded by QMu
  unsigned Idle = 0;               ///< guarded by QMu
  bool Finished = false;           ///< guarded by QMu
  std::atomic<unsigned> Hungry{0}; ///< lock-free mirror of Idle

  // Early abort + schedule budget.
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Schedules{0};

  // Shared result slots (first violation wins).
  std::mutex ResMu;
  bool Violated = false;         ///< guarded by ResMu
  std::string Violation;         ///< guarded by ResMu
  bool Complete = true;          ///< guarded by ResMu
  OutcomeDeduper Dedup;          ///< guarded by ResMu
  std::vector<Outcome> Outcomes; ///< guarded by ResMu
  std::vector<Log> Corpus;       ///< guarded by ResMu

  // State-dedup cache.
  std::mutex CacheMu;
  std::unordered_map<std::uint64_t, std::vector<CacheEntry>>
      Cache;             ///< guarded by CacheMu
  size_t CacheCount = 0; ///< guarded by CacheMu

  std::vector<Shard> Shards;
};

} // namespace detail

/// Explores every schedule reachable from \p Root, on Opts.Threads
/// workers.
template <typename MachineT>
ExploreResult exploreGeneric(const MachineT &Root,
                             const GenericExploreOptions<MachineT> &Opts) {
  unsigned Workers = Opts.Threads;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  detail::GenericDfs<MachineT> D(Opts, Workers);
  return D.run(Root);
}

/// Options alias for the multicore machine (the common case).
using ExploreOptions = GenericExploreOptions<MultiCoreMachine>;

/// Explores every schedule of the multicore machine described by \p Cfg.
ExploreResult exploreMachine(MachineConfigPtr Cfg,
                             const ExploreOptions &Opts);

/// Runs a single schedule chosen by \p Pick (given the schedulable set and
/// the log, return the CPU to step); used to replay specific interleavings
/// such as the paper's §2 example.
Outcome runSchedule(
    MachineConfigPtr Cfg,
    const std::function<ThreadId(const std::vector<ThreadId> &, const Log &)>
        &Pick,
    std::string *Error = nullptr);

} // namespace ccal

#endif // CCAL_MACHINE_EXPLORER_H
