//===- machine/Soundness.h - Contextual refinement (Thm 2.2) ---*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The soundness theorem (Thm 2.2), checked executably: from
/// `L'[D] |-R M : L[D]`, for any client program P, every behavior (log) of
/// `P (+) M` over the underlay machine must have an R-related behavior of
/// P over the overlay machine, with the same client return values.
///
/// The implementation machine runs P *linked with* M (so M's functions are
/// code); the specification machine runs P with M's functions left as
/// `extern` — they remain Prim instructions bound to the overlay's atomic
/// primitives.  This is exactly the paper's picture, including the
/// compiler: both sides are CompCertX-compiled LAsm.
///
/// The same checker discharges the multicore linking theorem (Thm 3.1)
/// when the two configs are the hardware machine and `Lx86[D]`.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_SOUNDNESS_H
#define CCAL_MACHINE_SOUNDNESS_H

#include "core/Certificate.h"
#include "core/Simulation.h"
#include "machine/Explorer.h"

namespace ccal {

/// Outcome of a contextual refinement check between two machines.
struct ContextualRefinementReport {
  /// True only when every obligation held AND both explorations were
  /// exhaustive (SpecComplete && ImplComplete): a truncated sweep covers a
  /// prefix of the schedule space and discharges nothing.
  bool Holds = false;

  /// Whether each side's exploration ran to completion; when false, the
  /// Counterexample names the budget that truncated it.
  bool SpecComplete = false;
  bool ImplComplete = false;

  /// "exhaustive", or which budget truncated which side — recorded in the
  /// certificate so partial coverage is auditable.
  std::string Coverage;

  std::uint64_t ImplOutcomes = 0;
  std::uint64_t SpecOutcomes = 0;
  std::uint64_t ObligationsChecked = 0; ///< impl outcomes matched
  std::uint64_t SchedulesExplored = 0;
  std::uint64_t StatesExplored = 0;
  std::string Counterexample;

  /// Logs gathered from the implementation exploration (for compat checks).
  std::vector<Log> Corpus;
};

/// Checks `[[Impl]] <=_R [[Spec]]`: every implementation outcome has a
/// specification outcome with the R-mapped log and equal client returns.
ContextualRefinementReport
checkContextualRefinement(MachineConfigPtr Impl, MachineConfigPtr Spec,
                          const EventMap &R, const ExploreOptions &ImplOpts,
                          const ExploreOptions &SpecOpts);

/// Wraps a report into a certificate for the given rule name
/// ("Soundness", "MulticoreLink", "MultithreadLink", "LogLift", ...).
CertPtr makeMachineCertificate(const std::string &Rule,
                               const std::string &Underlay,
                               const std::string &Module,
                               const std::string &Overlay,
                               const EventMap &R,
                               const ContextualRefinementReport &Report);

} // namespace ccal

#endif // CCAL_MACHINE_SOUNDNESS_H
