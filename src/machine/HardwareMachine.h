//===- machine/HardwareMachine.h - Instruction-level Mx86 ------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *hardware* multicore machine Mx86 (§3.1): "program transitions and
/// hardware scheduling ... are arbitrarily and nondeterministically
/// interleaved" — the scheduler may preempt between any two instructions,
/// not just at shared-primitive query points.
///
/// The multicore linking theorem (Thm 3.1) says all code verification over
/// the layer machine Lx86[D] (which interleaves only at query points)
/// propagates down to this machine: `[[P]]Mx86 <= [[P]]Lx86[D]`.
/// checkMulticoreLinking discharges it executably by exploring *every*
/// instruction-granularity schedule and checking its outcomes against the
/// query-point machine's — the partial-order-reduction fact that local
/// instructions only touch CPU-private state, so their interleavings
/// cannot be observed.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_HARDWAREMACHINE_H
#define CCAL_MACHINE_HARDWAREMACHINE_H

#include "core/Certificate.h"
#include "machine/Explorer.h"

namespace ccal {

/// Instruction-granularity machine over the same MachineConfig as the
/// query-point MultiCoreMachine; satisfies the generic Explorer concept.
class HardwareMachine {
public:
  explicit HardwareMachine(MachineConfigPtr Cfg);

  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }
  bool allIdle() const;

  /// Every CPU with work left and no Blocked pending primitive: hardware
  /// scheduling may hand any of them the next cycle.
  std::vector<ThreadId> schedulable() const;

  /// Executes ONE unit on CPU \p C: a single instruction, or the pending
  /// primitive call (private: silent; shared: appends events).
  bool step(ThreadId C);

  const Log &log() const { return GlobalLog; }
  std::map<ThreadId, std::vector<std::int64_t>> returns() const;

  /// Declared footprint of CPU \p C's next hardware cycle.  A single
  /// instruction and a private primitive touch only CPU-local state, so
  /// they get the local (empty) footprint and commute with every other
  /// CPU's step — the structural fact behind Thm 3.1's reduction.  A
  /// pending shared primitive contributes its layer-declared footprint
  /// (opaque when undeclared).
  Footprint stepFootprint(ThreadId C) const;

  /// Footprint of a logged event's kind, from the layer declaration (see
  /// MultiCoreMachine::eventFootprint).
  Footprint eventFootprint(const Event &E) const;

  /// Structural snapshot hash / equality for the Explorer's state-dedup
  /// cache (see MultiCoreMachine::snapshotHash).
  std::uint64_t snapshotHash() const;
  bool sameSnapshot(const HardwareMachine &O) const;

  /// Estimated resident bytes of one retained snapshot (see
  /// MultiCoreMachine::snapshotBytes).
  std::size_t snapshotBytes() const;

private:
  struct Cpu {
    Vm Machine;
    std::vector<std::int64_t> Globals;
    size_t NextWork = 0;
    bool Active = false;
    bool AtPrim = false; ///< parked at a primitive (private or shared)
    bool Done = false;
    std::vector<std::int64_t> Returns;

    Cpu(AsmProgramPtr P, std::vector<std::int64_t> G)
        : Machine(std::move(P)), Globals(std::move(G)) {}
  };

  void fault(ThreadId Id, const std::string &Msg);

  MachineConfigPtr Cfg;
  std::map<ThreadId, Cpu> Cpus;
  Log GlobalLog;
  std::string Err;
};

/// Outcome of the Thm 3.1 check.
struct MulticoreLinkReport {
  /// True only when the forward inclusion held on an EXHAUSTIVE sweep of
  /// both machines; truncation never reports Holds.
  bool Holds = false;

  /// Per-side completion flags and a coverage note — see
  /// ContextualRefinementReport.
  bool HardwareComplete = false;
  bool LayerComplete = false;
  std::string Coverage;

  std::uint64_t HardwareSchedules = 0;
  std::uint64_t LayerSchedules = 0;
  std::uint64_t HardwareOutcomes = 0;
  std::uint64_t LayerOutcomes = 0;
  std::uint64_t ObligationsChecked = 0;
  std::string Counterexample;
};

/// Checks `[[P]]Mx86 <= [[P]]Lx86[D]` for the program/workload in \p Cfg:
/// every instruction-granularity outcome must be a query-point outcome.
/// With \p CheckExactness, additionally requires the reverse inclusion
/// (the reduction loses nothing); that needs an exhaustive hardware sweep
/// with a fairness bound at least as long as the longest local stretch
/// between query points, so it is opt-in.
MulticoreLinkReport checkMulticoreLinking(MachineConfigPtr Cfg,
                                          unsigned FairnessBound = 4,
                                          std::uint64_t MaxSchedules
                                          = 1u << 22,
                                          bool CheckExactness = false);

/// Wraps a successful report into a "MulticoreLink" certificate.
CertPtr makeMulticoreLinkCertificate(const std::string &MachineName,
                                     const MulticoreLinkReport &Report);

} // namespace ccal

#endif // CCAL_MACHINE_HARDWAREMACHINE_H
