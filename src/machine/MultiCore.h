//===- machine/MultiCore.h - The multicore machine model -------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multicore machine `Mx86` (§3.1): per-CPU private state (an LAsm VM
/// plus CPU-local memory), shared state represented by the global event
/// log, and two kinds of transitions — program transitions (instructions,
/// private primitive calls, shared primitive calls) and hardware
/// scheduling.
///
/// Instructions and private primitives are silent; shared primitives are
/// the only interleaving points, so the machine runs each CPU's local code
/// deterministically up to its next shared call ("query point") and parks
/// it there.  A step() then executes one parked CPU's shared primitive,
/// appends its events, and advances that CPU to its next query point.
/// Hardware scheduling = the choice of which parked CPU steps; the
/// Explorer enumerates those choices.
///
/// The whole machine state is copyable, enabling snapshot-based DFS.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_MULTICORE_H
#define CCAL_MACHINE_MULTICORE_H

#include "core/LayerInterface.h"
#include "lasm/Vm.h"
#include "machine/MemoryModel.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ccal {

/// One client call a CPU performs, in order.
struct CpuWorkItem {
  std::string Fn;
  std::vector<std::int64_t> Args;
};

/// Immutable description of a machine run: the underlay interface, the
/// linked program every CPU executes, and each CPU's client workload.
struct MachineConfig {
  std::string Name;
  LayerPtr Layer;
  AsmProgramPtr Program;
  std::map<ThreadId, std::vector<CpuWorkItem>> Work;

  /// Instruction budget for one local slice (between query points); an
  /// exhausted budget is a divergence fault.
  std::uint64_t SliceBudget = 1u << 20;

  /// Memory model resolving shared visibility (DESIGN.md §13).  Null
  /// means ScMemory; a machine with a null or SC model is bit-identical
  /// to the pre-model machine.
  MemoryModelPtr Model;

  /// Fail-closed cap on the reads-from choices one step may offer under a
  /// weak model; exceeding it faults the machine with a raise-the-budget
  /// message rather than silently truncating the enumeration.
  unsigned MaxReadsFromPerStep = 64;
};

using MachineConfigPtr = std::shared_ptr<const MachineConfig>;

/// The executable machine state.
class MultiCoreMachine {
public:
  explicit MultiCoreMachine(MachineConfigPtr Cfg);

  /// False once any CPU faulted (race, trap, stuck primitive, divergence).
  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }

  /// True when every CPU has finished its workload.
  bool allIdle() const;

  /// CPUs currently parked at a shared primitive (the scheduler's menu).
  std::vector<ThreadId> schedulable() const;

  /// Executes CPU \p C's pending shared primitive and advances it to its
  /// next query point.  Returns false when the machine faulted.
  /// step(C) is step(C, 0): variant 0 is always the SC-coincident
  /// all-latest reads-from choice.
  bool step(ThreadId C);
  bool step(ThreadId C, unsigned Variant);

  /// Number of distinct reads-from choices CPU \p C's next step has under
  /// the configured memory model — the Explorer enumerates step(C, V) for
  /// V in [0, stepVariants(C)).  Always 1 under SC.  A value above
  /// MachineConfig::MaxReadsFromPerStep means the budget is exhausted;
  /// attempting any such step faults the machine fail-closed.
  unsigned stepVariants(ThreadId C) const;

  const Log &log() const { return GlobalLog; }

  /// Per-CPU return values of completed work items, in order.
  std::map<ThreadId, std::vector<std::int64_t>> returns() const;

  /// CPU \p C's local memory image.
  const std::vector<std::int64_t> &cpuMemory(ThreadId C) const;

  /// Name of the shared primitive CPU \p C is parked at ("" when none).
  /// Returns a reference into interned storage — no allocation per query.
  const std::string &pendingPrim(ThreadId C) const;

  /// Interned form of pendingPrim (the POR hot path queries this).
  KindId pendingPrimKind(ThreadId C) const;

  /// Declared footprint of CPU \p C's next step — the pending shared
  /// primitive's footprint (the subsequent local slice touches only
  /// CPU-private state, so the primitive's declaration covers the whole
  /// step).  Opaque when the primitive declares none, which makes the
  /// Explorer's partial-order reduction treat the step as conflicting
  /// with everything.
  Footprint stepFootprint(ThreadId C) const;

  /// Footprint governing how a logged event commutes, for canonical trace
  /// forms: event kinds coincide with primitive names on this machine, so
  /// this is the emitting primitive's declared footprint (opaque for
  /// unknown kinds).  Depends only on the immutable config, never on the
  /// machine state.
  Footprint eventFootprint(const Event &E) const;

  /// Total shared-primitive steps executed so far.
  std::uint64_t stepsTaken() const { return StepsTaken; }

  /// Structural hash of the full machine snapshot (per-CPU VM states,
  /// local memories, workload progress, the global log) for the Explorer's
  /// state-dedup cache.  The cumulative step counter is excluded: it never
  /// influences transitions, so two snapshots differing only in it have
  /// identical futures.
  std::uint64_t snapshotHash() const;

  /// Exact structural equality of two snapshots (same config, same
  /// per-CPU states, same log); resolves snapshotHash collisions instead
  /// of merging distinct states silently.
  bool sameSnapshot(const MultiCoreMachine &O) const;

  /// Estimated resident bytes of one retained snapshot (per-CPU
  /// structures, local memories, and the log's physical copy cost) — the
  /// currency of the Explorer StateCache's CacheBudgetBytes accounting.
  /// An estimate: VM-internal heap is approximated by the inline size.
  std::size_t snapshotBytes() const;

private:
  enum class CpuPhase {
    Idle,     ///< workload finished
    AtShared, ///< parked at a shared primitive
    Faulted,
  };

  struct Cpu {
    Vm Machine;
    std::vector<std::int64_t> Globals;
    size_t NextWork = 0;
    bool Active = false; ///< a work item is running in the VM
    CpuPhase Phase = CpuPhase::Idle;
    std::vector<std::int64_t> Returns;

    Cpu(AsmProgramPtr P, std::vector<std::int64_t> G)
        : Machine(std::move(P)), Globals(std::move(G)) {}
  };

  /// Runs CPU \p Id's local code (instructions + private primitives) until
  /// the next shared call or workload completion.
  bool advance(Cpu &C, ThreadId Id);
  void fault(ThreadId Id, const std::string &Msg);

  /// The configured model, defaulting to SC when the config has none.
  const MemoryModel &model() const;
  bool weakModel() const { return Cfg->Model && Cfg->Model->weak(); }

  MachineConfigPtr Cfg;
  std::map<ThreadId, Cpu> Cpus;
  Log GlobalLog;
  /// Weak-memory state (view fronts, modification orders).  Stays empty —
  /// and excluded from snapshot hashing/equality — under an SC model, so
  /// SC snapshots are bit-identical to the pre-model machine.
  RaState Ra;
  std::string Err;
  std::uint64_t StepsTaken = 0;
};

} // namespace ccal

#endif // CCAL_MACHINE_MULTICORE_H
